package taskprune

import "testing"

// TestFacadeEndToEnd exercises the public API exactly the way the package
// documentation advertises it.
func TestFacadeEndToEnd(t *testing.T) {
	matrix := SPECPET()
	cfg := MustConfigFor("PAM", matrix)
	tasks := MustGenerateWorkload(WorkloadConfig{
		NumTasks: 200,
		Rate:     RateForLevel(Level19k),
		VarFrac:  0.10,
		Beta:     2.0,
	}, matrix, NewRNG(42))
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 200 {
		t.Errorf("Total = %d, want 200", st.Total)
	}
	if st.RobustnessPct < 0 || st.RobustnessPct > 100 {
		t.Errorf("RobustnessPct = %v", st.RobustnessPct)
	}
}

// TestFacadeHeuristics constructs every advertised heuristic through the
// facade.
func TestFacadeHeuristics(t *testing.T) {
	for _, name := range HeuristicNames() {
		h, err := NewHeuristic(name)
		if err != nil {
			t.Fatalf("NewHeuristic(%q): %v", name, err)
		}
		if h.Name() != name {
			t.Errorf("Name = %q, want %q", h.Name(), name)
		}
	}
}

// TestFacadeCustomPET builds a user-defined PET through the facade, the way
// a downstream adopter with their own profiling data would.
func TestFacadeCustomPET(t *testing.T) {
	means := [][]float64{
		{20, 60},
		{60, 20},
	}
	matrix, err := BuildPET(means, DefaultPETBuildConfig(), NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if matrix.NumTypes() != 2 || matrix.NumMachines() != 2 {
		t.Fatalf("matrix %dx%d", matrix.NumTypes(), matrix.NumMachines())
	}
	cfg := MustConfigFor("PAMF", matrix)
	tasks := MustGenerateWorkload(WorkloadConfig{
		NumTasks: 100, Rate: 0.08, VarFrac: 0.1, Beta: 2,
	}, matrix, NewRNG(6))
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
}

// TestPaperHeadlineOrdering is the repository's headline assertion: at the
// extreme oversubscription level, the pruning mapper beats every baseline,
// MOC beats the scalar baselines, and the deadline/urgency-chasing
// heuristics collapse — the ordering of the paper's Figure 7.
func TestPaperHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-heuristic comparison is slow; skipped in -short")
	}
	matrix := SPECPET()
	const trials = 3
	mean := map[string]float64{}
	for _, name := range []string{"PAM", "MOC", "MM", "MSD"} {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			tasks := MustGenerateWorkload(WorkloadConfig{
				NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0,
			}, matrix, NewRNG(1000+int64(trial)))
			sim, err := NewSimulator(MustConfigFor(name, matrix))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.RobustnessPct
		}
		mean[name] = sum / trials
	}
	t.Logf("robustness @34k: PAM=%.1f MOC=%.1f MM=%.1f MSD=%.1f",
		mean["PAM"], mean["MOC"], mean["MM"], mean["MSD"])
	if !(mean["PAM"] > mean["MOC"]) {
		t.Errorf("PAM (%.1f) must beat MOC (%.1f)", mean["PAM"], mean["MOC"])
	}
	if !(mean["PAM"] > mean["MM"]+10) {
		t.Errorf("PAM (%.1f) must beat MM (%.1f) decisively", mean["PAM"], mean["MM"])
	}
	if !(mean["MSD"] < mean["MM"]) {
		t.Errorf("MSD (%.1f) should collapse below MM (%.1f) at extreme load", mean["MSD"], mean["MM"])
	}
}
