#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the scheduling daemon.
#
# Builds the static hcsim binary (CGO_ENABLED=0, the same shape the
# Dockerfile ships), boots `hcsim serve` on a fixed port, and drives the
# full lifecycle over HTTP: health check, batch submission, queue drain,
# a what-if replay, the metrics and status-page surfaces, then SIGTERM —
# which must drain gracefully and exit 0.
set -eu

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="${TMPDIR:-/tmp}/hcsim-smoke"
LOG="${TMPDIR:-/tmp}/hcsim-smoke.log"

say() { echo "serve-smoke: $*"; }
die() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

say "building static binary"
CGO_ENABLED=0 go build -trimpath -o "$BIN" ./cmd/hcsim

say "booting on $BASE"
"$BIN" serve -config examples/serve/fleet.json -addr "127.0.0.1:$PORT" >"$LOG" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && die "daemon never became healthy"
    kill -0 "$pid" 2>/dev/null || die "daemon exited during boot"
    sleep 0.2
done
say "healthy"

accepted=$(curl -fsS -X POST -d '{"tasks":[{"type":0,"count":100},{"type":5,"count":100}]}' \
    "$BASE/v1/tasks" | jq .accepted)
[ "$accepted" = 200 ] || die "batch submit accepted $accepted of 200"
say "submitted 200 tasks"

i=0
until [ "$(curl -fsS "$BASE/v1/status" | jq '.queue_depth == 0 and .submitted == 200')" = true ]; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && die "queue never drained: $(curl -fsS "$BASE/v1/status")"
    sleep 0.2
done
say "queue drained, 200 admitted"

delta=$(curl -fsS -X POST -d '{"route":"round-robin"}' "$BASE/v1/whatif" | jq .delta_pct)
[ -n "$delta" ] || die "what-if replay returned no delta"
say "what-if replay ok (delta_pct $delta vs round-robin)"

curl -fsS "$BASE/metrics" | grep -c '^hcsim_' >/dev/null || die "/metrics has no hcsim_ series"
curl -fsS "$BASE/metrics.json" | jq -e . >/dev/null || die "/metrics.json is not JSON"
curl -fsS "$BASE/" | grep -c 'hcsim serve' >/dev/null || die "status page missing"
say "metrics + status page ok"

say "sending SIGTERM"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
trap - EXIT
[ "$rc" -eq 0 ] || die "daemon exited $rc after SIGTERM (want graceful 0)"

grep -q 'drained' "$LOG" || die "daemon log has no drain summary"
total=$(sed -n 's/^serve: drained — \([0-9]*\) tasks.*/\1/p' "$LOG")
[ "$total" = 200 ] || die "drain summary accounts $total tasks, want 200"
say "graceful drain ok — all 200 tasks accounted"
say "PASS"
