#!/bin/sh
# bench_guard.sh: allocation-regression tripwire. Runs every benchmark
# recorded in the committed baseline (BENCH_<date>.json, written by
# `make bench`) once and fails if any benchmark's allocs/op or B/op exceed
# 2x its baseline (plus a small absolute slack — 512 allocs / 256 KiB —
# since sync.Pool refills after GC make near-zero baselines jittery; the
# slack is kept well under the smallest baselines so the 2x gate stays
# meaningful even for the sub-thousand-alloc streaming trials). Time per
# op is too noisy for
# shared CI runners to gate on; allocation counts are deterministic modulo
# pool refills, and they are exactly what the arena/cache/streaming
# engineering of PRs 1 and 3 bought.
set -eu

baseline_file=${1:-BENCH_20260728.json}

names=$(grep -o '"name":"[^"]*"' "$baseline_file" | cut -d'"' -f4)
if [ -z "$names" ]; then
	echo "bench-guard: no benchmarks in $baseline_file" >&2
	exit 1
fi

# A baseline recorded from a single iteration bakes first-run warm-up
# (process-wide PET caches, sync.Pool fills) into its allocs/op — roughly
# double the steady state for the trial benches — which silently loosens
# the 2x gate to ~4x. Refuse such baselines; `make bench` records at
# -benchtime 3x precisely so every committed entry is steady-state.
cold=$(grep -o '"name":"[^"]*","iterations":1,' "$baseline_file" | cut -d'"' -f4)
if [ -n "$cold" ]; then
	for name in $cold; do
		echo "bench-guard: $name in $baseline_file was recorded from a single iteration (warm-up, not steady state)" >&2
	done
	echo "bench-guard: re-record the baseline with 'make bench' (-benchtime 3x)" >&2
	exit 1
fi
pattern=$(printf '%s|' $names | sed 's/|$//')

out=$(go test -run xxx -bench "^($pattern)\$" -benchtime 1x -benchmem .)
echo "$out"

# Structural coverage gate, before any metric parsing: every benchmark in
# the baseline must have produced a result line in this run. A renamed or
# deleted benchmark otherwise shrinks the guarded surface silently — the
# bench run exits 0 on a pattern that matches nothing.
missing=
for name in $names; do
	if ! echo "$out" | awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" { found = 1 } END { exit !found }'; then
		missing="$missing $name"
	fi
done
if [ -n "$missing" ]; then
	for name in $missing; do
		echo "bench-guard: $name is in $baseline_file but produced no result — renamed, deleted, or failed to run" >&2
	done
	echo "bench-guard: refresh the baseline with 'make bench' if the removal is intentional" >&2
	exit 1
fi

status=0
for name in $names; do
	# Extract exactly this benchmark's entry (up to its metrics object's
	# closing brace) so the lookup is immune to JSON formatting.
	entry=$(grep -o "\"name\":\"$name\"[^{]*{[^}]*}" "$baseline_file" | head -n1)
	base_allocs=$(echo "$entry" | grep -o '"allocs/op":[0-9]*' | head -n1 | cut -d: -f2)
	base_bytes=$(echo "$entry" | grep -o '"B/op":[0-9]*' | head -n1 | cut -d: -f2)
	now_allocs=$(echo "$out" | awk -v n="$name" \
		'$1 ~ "^"n"(-[0-9]+)?$" { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }' | head -n1)
	now_bytes=$(echo "$out" | awk -v n="$name" \
		'$1 ~ "^"n"(-[0-9]+)?$" { for (i = 1; i < NF; i++) if ($(i+1) == "B/op") print $i }' | head -n1)
	if [ -z "$now_allocs" ] || [ -z "$now_bytes" ]; then
		echo "bench-guard: $name present in baseline but did not run" >&2
		status=1
		continue
	fi
	if [ -n "$base_allocs" ]; then
		limit=$((base_allocs * 2 + 512))
		echo "bench-guard: $name allocs/op now=$now_allocs baseline=$base_allocs limit=$limit"
		if [ "$now_allocs" -gt "$limit" ]; then
			echo "bench-guard: $name allocs/op regressed more than 2x against $baseline_file" >&2
			status=1
		fi
	fi
	if [ -n "$base_bytes" ]; then
		limit=$((base_bytes * 2 + 262144))
		echo "bench-guard: $name B/op now=$now_bytes baseline=$base_bytes limit=$limit"
		if [ "$now_bytes" -gt "$limit" ]; then
			echo "bench-guard: $name B/op regressed more than 2x against $baseline_file" >&2
			status=1
		fi
	fi
done

# Telemetry-overhead gate: the single-trial benchmark with a live
# registry + sampler + phase timers must stay within 1.1x of the disabled
# variant's allocs/op, measured side by side in the same run (plus a
# 64-alloc absolute slack for pool-refill jitter). This pins the cheap
# half of the telemetry contract — probes are counter bumps and reused
# sampler rows, not per-event allocations; the free-when-disabled half is
# pinned by the baseline gate on BenchmarkSingleTrialPAM above.
tel_out=$(go test -run xxx -bench '^BenchmarkSingleTrialPAM(Telemetry)?$' -benchtime 3x -benchmem .)
echo "$tel_out"
allocs_of() {
	echo "$tel_out" | awk -v n="$1" \
		'$1 ~ "^"n"(-[0-9]+)?$" { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }' | head -n1
}
off_allocs=$(allocs_of BenchmarkSingleTrialPAM)
on_allocs=$(allocs_of BenchmarkSingleTrialPAMTelemetry)
if [ -z "$off_allocs" ] || [ -z "$on_allocs" ]; then
	echo "bench-guard: telemetry-overhead pair did not both run (off='${off_allocs:-}' on='${on_allocs:-}')" >&2
	status=1
else
	limit=$((off_allocs * 11 / 10 + 64))
	echo "bench-guard: telemetry allocs/op live=$on_allocs disabled=$off_allocs limit=$limit"
	if [ "$on_allocs" -gt "$limit" ]; then
		echo "bench-guard: live telemetry exceeds 1.1x the disabled allocs/op" >&2
		status=1
	fi
fi
exit $status
