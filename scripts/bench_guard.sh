#!/bin/sh
# bench_guard.sh: allocation-regression tripwire. Runs the single-trial PAM
# benchmark once and fails if its allocs/op exceed 2x the committed baseline
# (BENCH_<date>.json, written by `make bench`). Time per op is too noisy for
# shared CI runners to gate on; the allocation count is deterministic, and
# it is exactly what the arena/cache engineering of PR 1 bought.
set -eu

baseline_file=${1:-BENCH_20260728.json}

base=$(grep 'BenchmarkSingleTrialPAM"' "$baseline_file" |
	grep -o '"allocs/op":[0-9]*' | head -n1 | cut -d: -f2)
if [ -z "$base" ]; then
	echo "bench-guard: no BenchmarkSingleTrialPAM entry in $baseline_file" >&2
	exit 1
fi

out=$(go test -run xxx -bench 'BenchmarkSingleTrialPAM$' -benchtime 1x -benchmem .)
echo "$out"
now=$(echo "$out" | awk '/^BenchmarkSingleTrialPAM/ {
	for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }' | head -n1)
if [ -z "$now" ]; then
	echo "bench-guard: BenchmarkSingleTrialPAM did not run" >&2
	exit 1
fi

limit=$((base * 2))
echo "bench-guard: allocs/op now=$now baseline=$base limit=$limit"
if [ "$now" -gt "$limit" ]; then
	echo "bench-guard: allocs/op regressed more than 2x against $baseline_file" >&2
	exit 1
fi
