#!/bin/sh
# check_tree.sh [dir] — refuse build artifacts in the git tree.
#
# Fails if the repository at dir (default: .) tracks any *.test binary or
# any blob over 1MB outside a testdata/ directory. Compiled test binaries
# are gitignored, but an explicit `git add -f` (or a .gitignore edit) can
# still sneak one in; this guard makes that a CI failure instead of a
# 7MB blob in every clone forever.
set -eu

dir="${1:-.}"
limit=1048576 # 1MB
fail=0

tests=$(git -C "$dir" ls-files -- '*.test')
if [ -n "$tests" ]; then
    echo "check-tree: tracked compiled test binaries:" >&2
    echo "$tests" | sed 's/^/  /' >&2
    fail=1
fi

for f in $(git -C "$dir" ls-files); do
    case "$f" in
    testdata/* | */testdata/*) continue ;;
    esac
    [ -f "$dir/$f" ] || continue
    size=$(wc -c <"$dir/$f")
    if [ "$size" -gt "$limit" ]; then
        echo "check-tree: tracked blob $f is $size bytes (limit $limit outside testdata/)" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check-tree: clean"
