# Static deployment image for the scheduling daemon: a scratch container
# holding one CGO-free binary and the example fleet config. Override the
# config by mounting your own at /etc/hcsim/fleet.json (or change the
# entrypoint args).
#
#   docker build -t hcsim .
#   docker run -p 8080:8080 hcsim
#   docker run -p 8080:8080 -v $PWD/fleet.json:/etc/hcsim/fleet.json hcsim

FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/hcsim ./cmd/hcsim

FROM scratch
COPY --from=build /out/hcsim /usr/bin/hcsim
COPY --from=build /src/examples/serve/fleet.json /etc/hcsim/fleet.json
EXPOSE 8080
ENTRYPOINT ["/usr/bin/hcsim", "serve", "-config", "/etc/hcsim/fleet.json"]
