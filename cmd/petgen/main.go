// Command petgen inspects and exports the PET matrices used by the
// evaluation: the 12×8 SPEC-like main matrix and the 4×4 video-transcoding
// matrix.
//
// Usage:
//
//	petgen                # summary of the SPEC-like PET
//	petgen -video         # summary of the video PET
//	petgen -entry 3,2     # full PMF of task type 3 on machine 2
//	petgen -csv means.csv # export the mean matrix as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"taskprune/internal/experiments"
	"taskprune/internal/pet"
	"taskprune/internal/report"
	"taskprune/internal/task"
)

func main() {
	var (
		video   = flag.Bool("video", false, "use the 4×4 video-transcoding PET")
		entry   = flag.String("entry", "", "print the full PMF of one entry, as \"type,machine\"")
		csvPath = flag.String("csv", "", "export the mean matrix as CSV")
	)
	flag.Parse()

	matrix := experiments.SPECPET()
	means := pet.SPECLikeMeans()
	label := "SPEC-like (12 task types × 8 machines)"
	if *video {
		matrix = experiments.VideoPET()
		means = pet.VideoMeans()
		label = "video transcoding (4 task types × 4 EC2 VM types)"
	}

	if *entry != "" {
		var ti, mi int
		if _, err := fmt.Sscanf(*entry, "%d,%d", &ti, &mi); err != nil {
			fatal(fmt.Errorf("bad -entry %q: %v", *entry, err))
		}
		if ti < 0 || ti >= matrix.NumTypes() || mi < 0 || mi >= matrix.NumMachines() {
			fatal(fmt.Errorf("entry (%d,%d) out of range %dx%d", ti, mi, matrix.NumTypes(), matrix.NumMachines()))
		}
		e := matrix.Entry(task.Type(ti), mi)
		fmt.Printf("PET(%d,%d): truth mean %.1f (gamma shape %.2f), profiled mean %.1f\n",
			ti, mi, e.Mean, e.Shape, e.PMF.Mean())
		fmt.Printf("impulses: %s\n", e.PMF)
		return
	}

	fmt.Printf("PET matrix: %s\n\n", label)
	headers := []string{"type \\ machine"}
	for mi := 0; mi < matrix.NumMachines(); mi++ {
		name := fmt.Sprintf("m%d", mi)
		if *video {
			name = pet.VideoMachineNames[mi]
		}
		headers = append(headers, name)
	}
	tbl := report.NewTable("mean execution times (ticks)", headers...)
	for ti := 0; ti < matrix.NumTypes(); ti++ {
		row := make([]any, 0, matrix.NumMachines()+1)
		name := fmt.Sprintf("t%d", ti)
		if *video {
			name = pet.VideoTypeNames[ti]
		}
		row = append(row, name)
		for mi := 0; mi < matrix.NumMachines(); mi++ {
			row = append(row, means[ti][mi])
		}
		tbl.AddRow(row...)
	}
	fmt.Println(tbl.String())
	fmt.Printf("grand mean %.1f ticks; capacity ≈ %.4f tasks/tick\n",
		matrix.GrandMean(), float64(matrix.NumMachines())/matrix.GrandMean())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tbl.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV written to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "petgen:", err)
	os.Exit(1)
}
