// Command hctrace runs one fully traced trial and prints what happened
// inside it: outcome breakdown, latency percentiles, deferral/preemption
// activity, per-machine utilization, and (optionally) the queue-occupancy
// timeline or the raw decision stream.
//
// Usage:
//
//	hctrace -heuristic PAM -level 34000
//	hctrace -heuristic MM -timeline-csv timeline.csv
//	hctrace -heuristic PAMF -dump-trace trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"taskprune/internal/analysis"
	"taskprune/internal/experiments"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

func main() {
	var (
		heuristic   = flag.String("heuristic", "PAM", "mapping heuristic")
		level       = flag.Float64("level", workload.Level34k, "oversubscription level")
		tasks       = flag.Int("tasks", 800, "tasks in the trial")
		seed        = flag.Int64("seed", 1, "workload seed")
		beta        = flag.Float64("beta", 2.0, "deadline slack coefficient")
		preempt     = flag.Bool("preempt", false, "enable the preemption extension")
		timelineCSV = flag.String("timeline-csv", "", "write the queue-occupancy timeline as CSV")
		dumpTrace   = flag.String("dump-trace", "", "write the raw decision stream to this file")
	)
	flag.Parse()

	matrix := experiments.SPECPET()
	cfg, err := simulator.ConfigFor(*heuristic, matrix)
	if err != nil {
		fatal(err)
	}
	cfg.Preempt = *preempt
	rec := trace.NewRecorder()
	cfg.Trace = rec

	list, err := workload.Generate(workload.Config{
		NumTasks: *tasks,
		Rate:     workload.RateForLevel(*level),
		VarFrac:  0.10,
		Beta:     *beta,
	}, matrix, stats.NewRNG(*seed))
	if err != nil {
		fatal(err)
	}
	sim, err := simulator.New(cfg)
	if err != nil {
		fatal(err)
	}
	st, err := sim.Run(list)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s @%s, %d tasks, seed %d — robustness %.1f%%\n\n",
		*heuristic, workload.LevelLabel(*level), *tasks, *seed, st.RobustnessPct)
	a := analysis.AnalyzeTrial(list, sim.Machines(), sim.Now())
	fmt.Println(a.Table().String())

	timeline := analysis.QueueTimeline(rec)
	fmt.Printf("peak batch-queue occupancy: %d tasks (%d trace events)\n",
		analysis.PeakBatch(timeline), rec.Len())

	if *timelineCSV != "" {
		f, err := os.Create(*timelineCSV)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := analysis.WriteTimelineCSV(f, timeline); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline written to %s\n", *timelineCSV)
	}
	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteText(f); err != nil {
			fatal(err)
		}
		fmt.Printf("decision stream written to %s\n", *dumpTrace)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hctrace:", err)
	os.Exit(1)
}
