// Command wlgen generates a workload trial and prints it as CSV — useful
// for eyeballing arrival processes and for feeding external tooling.
//
// Usage:
//
//	wlgen -level 34000 -tasks 800 -seed 7 > trial.csv
//	wlgen -video -level 15000
package main

import (
	"flag"
	"fmt"
	"os"

	"taskprune/internal/experiments"
	"taskprune/internal/stats"
	"taskprune/internal/workload"
)

func main() {
	var (
		level   = flag.Float64("level", workload.Level34k, "oversubscription level (tasks per nominal full span)")
		tasks   = flag.Int("tasks", 800, "number of tasks")
		seed    = flag.Int64("seed", 1, "workload seed")
		beta    = flag.Float64("beta", 2.0, "deadline slack coefficient β")
		varFrac = flag.Float64("arrival-var", 0.10, "arrival variance fraction")
		video   = flag.Bool("video", false, "generate against the video-transcoding PET")
	)
	flag.Parse()

	matrix := experiments.SPECPET()
	rate := workload.RateForLevel(*level)
	if *video {
		matrix = experiments.VideoPET()
		rate = workload.VideoRateForLevel(*level)
	}
	cfg := workload.Config{
		NumTasks: *tasks,
		Rate:     rate,
		VarFrac:  *varFrac,
		Beta:     *beta,
	}
	list, err := workload.Generate(cfg, matrix, stats.NewRNG(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	fmt.Println("id,type,arrival,deadline,true_exec_per_machine")
	for _, t := range list {
		fmt.Printf("%d,%d,%d,%d,", t.ID, t.Type, t.Arrival, t.Deadline)
		for mi, e := range t.TrueExec {
			if mi > 0 {
				fmt.Print(";")
			}
			fmt.Print(e)
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "wlgen: %d tasks at %s (rate %.4f tasks/tick, span %d ticks)\n",
		len(list), workload.LevelLabel(*level), cfg.Rate,
		list[len(list)-1].Arrival-list[0].Arrival)
}
