package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateServeFlags pins the serve-mode boot contract: bad flag
// combinations are rejected with an explanation before any listener binds.
func TestValidateServeFlags(t *testing.T) {
	ok := func(f serveFlags) serveFlags {
		if f.DrainTimeout == 0 {
			f.DrainTimeout = defaultDrainTimeout
		}
		return f
	}
	cases := []struct {
		name string
		f    serveFlags
		want string // "" = valid
	}{
		{"valid-minimal", ok(serveFlags{Config: "fleet.json", Addr: ":8080"}), ""},
		{"valid-split-listeners", ok(serveFlags{Config: "fleet.json", Addr: ":8080", MetricsAddr: ":9090"}), ""},
		{"valid-ephemeral-both", ok(serveFlags{Config: "fleet.json", Addr: ":0", MetricsAddr: ":0"}), ""},
		{"missing-config", ok(serveFlags{Addr: ":8080"}), "-config is required"},
		{"empty-addr", ok(serveFlags{Config: "fleet.json", Addr: ""}), "-addr"},
		{"port-conflict", ok(serveFlags{Config: "fleet.json", Addr: ":8080", MetricsAddr: ":8080"}), "collides"},
		{"port-conflict-hosts", ok(serveFlags{Config: "fleet.json", Addr: "0.0.0.0:9090", MetricsAddr: "localhost:9090"}), "collides"},
		{"zero-drain", serveFlags{Config: "fleet.json", Addr: ":8080", DrainTimeout: 0}, "drain-timeout"},
		{"negative-drain", serveFlags{Config: "fleet.json", Addr: ":8080", DrainTimeout: -time.Second}, "drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServeFlags(tc.f)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted: %+v", tc.f)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunServeBadFlags: the subcommand exits 1 (not 0, not a panic) on
// unbootable invocations.
func TestRunServeBadFlags(t *testing.T) {
	cases := [][]string{
		{},                          // no -config
		{"-config", ""},             // empty -config
		{"-unknown-flag"},           // flag parse error
		{"-config", "/nonexistent"}, // unreadable config
		{"-config", "testdata/does-not-exist.json"},
	}
	for _, args := range cases {
		if code := runServe(args); code != 1 {
			t.Fatalf("runServe(%q) = %d, want 1", args, code)
		}
	}
}
