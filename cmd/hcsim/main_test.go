package main

import (
	"sort"
	"testing"
)

// TestRegisteredNamesSorted pins the unknown -exp listing contract: every
// registered experiment plus the special modes, in sorted order, with no
// duplicates — so the help output stays scannable as experiments accrue.
func TestRegisteredNamesSorted(t *testing.T) {
	names := registeredNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("registered names not sorted: %v", names)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate registered name %q", n)
		}
		seen[n] = true
	}
	for _, e := range experimentOrder {
		if !seen[e.name] {
			t.Fatalf("experiment %q missing from the listing", e.name)
		}
	}
	for _, special := range []string{"single", "all"} {
		if !seen[special] {
			t.Fatalf("special mode %q missing from the listing", special)
		}
	}
	if len(names) != len(experimentOrder)+2 {
		t.Fatalf("listing has %d names, want %d experiments + 2 special modes", len(names), len(experimentOrder))
	}
}

// TestTelemetryFlagsOptions: no consumer → nil options → telemetry stays
// disabled (the zero-cost default); any consumer → options with the chosen
// interval.
func TestTelemetryFlagsOptions(t *testing.T) {
	if (telemetryFlags{Every: 100}).options() != nil {
		t.Fatal("options non-nil with no telemetry consumer")
	}
	for _, tf := range []telemetryFlags{
		{Path: "out.csv", Every: 50},
		{Phases: true, Every: 50},
		{Addr: ":0", Every: 50},
	} {
		opts := tf.options()
		if opts == nil || opts.SampleEvery != 50 {
			t.Fatalf("options for %+v = %+v", tf, opts)
		}
	}
	if (telemetryFlags{}).options() != nil {
		t.Fatal("zero flags yielded options")
	}
}
