package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taskprune/internal/server"
)

// The serve subcommand: `hcsim serve -config fleet.json` boots the
// scheduling daemon — live task submission over HTTP, the embedded status
// page, the what-if advisor, and the telemetry export surface, all on one
// listener. SIGTERM/SIGINT triggers a graceful drain: buffered submissions
// are admitted and settled, the engine finalizes exactly as a batch run
// would, and the process exits 0 with the end-of-run statistics.

// serveDefaults for the subcommand's flags.
const (
	defaultServeAddr    = ":8080"
	defaultDrainTimeout = 30 * time.Second
)

// serveFlags is the parsed `hcsim serve` flag set.
type serveFlags struct {
	Config       string        // deployment config path (required)
	Addr         string        // API listener address
	MetricsAddr  string        // optional dedicated metrics listener
	DrainTimeout time.Duration // graceful-drain budget after a signal
}

// validateServeFlags rejects flag combinations the daemon could not boot
// from, in the same fail-loudly style as the experiment-mode validators:
// each failure names the flag, explains what it needs, and the caller
// exits 1.
func validateServeFlags(f serveFlags) error {
	if f.Config == "" {
		return fmt.Errorf("-config is required: the deployment config (fleet, heuristic, route, queue) boots the daemon\n  hcsim serve -config fleet.json [-addr %s] [-metrics-addr :9090] [-drain-timeout %v]", defaultServeAddr, defaultDrainTimeout)
	}
	if f.Addr == "" {
		return fmt.Errorf("-addr must name a listen address (default %s)", defaultServeAddr)
	}
	if f.DrainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout %v: the graceful-drain budget must be positive", f.DrainTimeout)
	}
	if f.MetricsAddr != "" {
		if _, aPort, err := net.SplitHostPort(f.Addr); err == nil {
			if _, mPort, err := net.SplitHostPort(f.MetricsAddr); err == nil {
				// Port 0 is the ephemeral wildcard: two :0 listeners bind two
				// distinct ports, so only a concrete shared port conflicts.
				if aPort == mPort && aPort != "0" {
					return fmt.Errorf("-metrics-addr %s collides with -addr %s: the API mux already serves /metrics on its own port; a dedicated metrics listener needs a different one", f.MetricsAddr, f.Addr)
				}
			}
		}
	}
	return nil
}

// runServe is the `hcsim serve` entry point; its return value becomes the
// process exit code.
func runServe(args []string) int {
	fs := flag.NewFlagSet("hcsim serve", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "deployment config file (JSON; required — see README \"Running as a service\")")
	addr := fs.String("addr", defaultServeAddr, "API listen address (status page, /v1 API, /metrics)")
	metricsAddr := fs.String("metrics-addr", "", "also serve /metrics, /metrics.json, and pprof on this dedicated address")
	drainTimeout := fs.Duration("drain-timeout", defaultDrainTimeout, "graceful-drain budget after SIGTERM/SIGINT; exceeding it exits 1")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	f := serveFlags{Config: *cfgPath, Addr: *addr, MetricsAddr: *metricsAddr, DrainTimeout: *drainTimeout}
	if err := validateServeFlags(f); err != nil {
		fmt.Fprintln(os.Stderr, "hcsim serve:", err)
		return 1
	}
	if err := serve(f); err != nil {
		fmt.Fprintln(os.Stderr, "hcsim serve:", err)
		return 1
	}
	return 0
}

// serve boots the daemon, serves until a shutdown signal, then drains.
func serve(f serveFlags) error {
	cfg, err := server.LoadConfig(f.Config)
	if err != nil {
		return err
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	s.Start()
	bound, err := s.Serve(f.Addr)
	if err != nil {
		return err
	}
	name := cfg.Name
	if name == "" {
		name = f.Config
	}
	m, _ := cfg.Matrix() // validated at load
	fmt.Printf("serve: %s — %s fleet (%d types × %d machines), %s over %d dc(s) via %s\n",
		name, cfg.Fleet.PET, m.NumTypes(), m.NumMachines(), cfg.Heuristic, cfg.DCs, cfg.Route)
	fmt.Printf("serve: listening on http://%s (status page /, API /v1, metrics /metrics)\n", bound)
	if f.MetricsAddr != "" {
		mbound, err := s.Telemetry().Serve(f.MetricsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("serve: metrics also on http://%s/metrics\n", mbound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Printf("serve: shutdown signal — draining (budget %v)\n", f.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), f.DrainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		return err
	}
	fin := s.Final()
	if fin == nil {
		return fmt.Errorf("drain finished without final statistics")
	}
	fmt.Printf("serve: drained — %d tasks (%d completed, %d missed, %d dropped in the %d-task window), robustness %.1f%%\n",
		fin.Total, fin.Completed, fin.Missed, fin.Dropped, fin.Window, fin.RobustnessPct)
	return nil
}
