// Command hcsim regenerates the paper's evaluation figures (and the
// repository's ablation studies) from the command line.
//
// Usage:
//
//	hcsim -exp fig7                 # regenerate Figure 7 at paper scale
//	hcsim -exp all -trials 10       # every figure, 10 trials per point
//	hcsim -exp single -heuristic PAM -level 34000
//	hcsim -exp single -heuristic PAM -scenario churn.json
//	hcsim -exp single -heuristic PAM -tasks 1000000 -stream
//	hcsim -exp scen-fault           # fleet-churn fault-tolerance study
//	hcsim -exp fig5 -csv fig5.csv   # also export CSV
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 abl-compact abl-eq7
// abl-scenario abl-arrival abl-moc abl-drift ext-preempt ext-approx
// scen-fault single all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"taskprune/internal/experiments"
	"taskprune/internal/report"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/workload"
)

func main() {
	var (
		exp       = flag.String("exp", "fig7", "experiment to run (fig4..fig9, abl-compact, abl-eq7, abl-scenario, abl-arrival, single, all)")
		trials    = flag.Int("trials", 30, "workload trials per configuration point")
		tasks     = flag.Int("tasks", 800, "tasks per trial")
		seed      = flag.Int64("seed", 1, "base seed (trial k uses seed+k)")
		beta      = flag.Float64("beta", 2.0, "deadline slack coefficient β")
		varFrac   = flag.Float64("arrival-var", 0.10, "arrival gamma variance as a fraction of the mean")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		csvPath   = flag.String("csv", "", "also write results as CSV to this file")
		plot      = flag.Bool("plot", false, "also render results as an ASCII bar chart")
		heuristic = flag.String("heuristic", "PAM", "heuristic for -exp single")
		level     = flag.Float64("level", workload.Level34k, "oversubscription level for -exp single")
		scenPath  = flag.String("scenario", "", "JSON fleet-scenario file for -exp single (failures, recoveries, degradations, bursts)")
		stream    = flag.Bool("stream", false, "pull arrivals from the constant-memory streaming source (per-type RNG splits; workloads differ from the replay schedule at equal seeds), enabling -tasks far past materializable scale")
	)
	flag.Parse()

	opts := experiments.Options{
		Trials: *trials, Tasks: *tasks, Seed: *seed,
		Workers: *workers, Beta: *beta, VarFrac: *varFrac,
		Streamed: *stream,
	}

	if *exp == "single" {
		var sc *scenario.Scenario
		if *scenPath != "" {
			var err error
			if sc, err = scenario.Load(*scenPath); err != nil {
				fatal(err)
			}
		}
		if err := runSingle(opts, *heuristic, *level, sc); err != nil {
			fatal(err)
		}
		return
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"abl-compact", "abl-eq7", "abl-scenario", "abl-arrival", "abl-moc", "abl-drift", "ext-preempt", "ext-approx", "scen-fault"}
	}
	for _, name := range names {
		start := time.Now()
		fig, err := runExperiment(name, opts)
		if err != nil {
			fatal(err)
		}
		tables := tablesFor(name, fig)
		for _, tbl := range tables {
			fmt.Println(tbl.String())
		}
		if *plot {
			fmt.Println(fig.RobustnessChart().String())
		}
		fmt.Printf("(%s finished in %v, %d trials/point)\n\n", name, time.Since(start).Round(time.Millisecond), opts.Trials)
		if *csvPath != "" {
			if err := writeCSV(*csvPath, tables); err != nil {
				fatal(err)
			}
			fmt.Printf("CSV written to %s\n", *csvPath)
		}
	}
}

func runExperiment(name string, opts experiments.Options) (*experiments.Figure, error) {
	switch name {
	case "fig4":
		return experiments.Fig4(opts)
	case "fig5":
		return experiments.Fig5(opts)
	case "fig6":
		return experiments.Fig6(opts)
	case "fig7":
		return experiments.Fig7(opts)
	case "fig8":
		return experiments.Fig8(opts)
	case "fig9":
		return experiments.Fig9(opts)
	case "abl-compact":
		return experiments.AblationCompaction(opts)
	case "abl-eq7":
		return experiments.AblationEq7(opts)
	case "abl-scenario":
		return experiments.AblationScenario(opts)
	case "abl-arrival":
		return experiments.AblationArrivalVariance(opts)
	case "abl-moc":
		return experiments.AblationMOCThreshold(opts)
	case "ext-preempt":
		return experiments.ExtensionPreemption(opts)
	case "ext-approx":
		return experiments.ExtensionApproximate(opts)
	case "abl-drift":
		return experiments.AblationPETDrift(opts)
	case "scen-fault":
		return experiments.ScenarioFaultTolerance(opts)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func tablesFor(name string, fig *experiments.Figure) []*report.Table {
	switch name {
	case "fig6":
		return []*report.Table{fig.FairnessTable()}
	case "fig8":
		return []*report.Table{fig.CostTable()}
	case "ext-approx":
		return []*report.Table{experiments.QualityTable(fig)}
	default:
		return []*report.Table{fig.RobustnessTable()}
	}
}

// runSingle executes one trial of one heuristic (optionally under a fleet
// scenario) and prints its statistics — the quickest way to poke at the
// system.
func runSingle(opts experiments.Options, name string, level float64, sc *scenario.Scenario) error {
	matrix := experiments.SPECPET()
	cfg, err := simulator.ConfigFor(name, matrix)
	if err != nil {
		return err
	}
	cfg.Scenario = sc
	wcfg := workload.Config{
		NumTasks: opts.Tasks,
		Rate:     workload.RateForLevel(level),
		VarFrac:  opts.VarFrac,
		Beta:     opts.Beta,
	}
	sc.ApplyBursts(&wcfg)
	rng := stats.NewRNG(opts.Seed)
	var src workload.Source
	if opts.Streamed {
		src, err = workload.NewStream(wcfg, matrix, rng)
	} else {
		src, err = workload.NewSource(wcfg, matrix, rng)
	}
	if err != nil {
		return err
	}
	sim, err := simulator.New(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	st, err := sim.RunSource(src)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s @%s: robustness %.1f%% (completed %d / window %d; dropped %d, missed %d) in %v\n",
		name, workload.LevelLabel(level), st.RobustnessPct, st.Completed, st.Window,
		st.Dropped, st.Missed, elapsed.Round(time.Millisecond))
	if opts.Streamed {
		fmt.Printf("stream: %d tasks pulled at %.0f arrivals/sec (constant-memory source)\n",
			st.Total, float64(st.Total)/elapsed.Seconds())
	}
	if sim.Pruner() != nil {
		fmt.Printf("pruner: %d mapping events, %d pruner drops, %d evictions, final level %.2f\n",
			sim.MappingEvents(), sim.DroppedByPruner(), sim.Evicted(), sim.Pruner().Level())
	}
	if sc != nil {
		fmt.Printf("scenario %q: %d fleet events, %d burst windows, %d tasks requeued by failures\n",
			sc.Name, len(sc.Events), len(sc.Bursts), sim.Requeued())
	}
	return nil
}

func writeCSV(path string, tables []*report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, tbl := range tables {
		if err := tbl.WriteCSV(f); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcsim:", err)
	os.Exit(1)
}
