// Command hcsim regenerates the paper's evaluation figures (and the
// repository's ablation studies) from the command line.
//
// Usage:
//
//	hcsim -exp fig7                 # regenerate Figure 7 at paper scale
//	hcsim -exp all -trials 10       # every figure, 10 trials per point
//	hcsim -exp single -heuristic PAM -level 34000
//	hcsim -exp single -heuristic PAM -scenario churn.json
//	hcsim -exp single -heuristic PAM -tasks 1000000 -stream
//	hcsim -exp single -heuristic PAM -dcs 4 -route pet-aware
//	hcsim -exp single -heuristic PAM -dcs 4 -route round-robin -dcpar
//	hcsim -exp scen-fault           # fleet-churn fault-tolerance study
//	hcsim -exp cluster-fault        # sharded whole-DC outage study
//	hcsim -exp fig5 -csv fig5.csv   # also export CSV
//	hcsim -exp single -heuristic PAM -telemetry out.csv -sample-every 50
//	hcsim -exp single -heuristic PAM -phases
//	hcsim -exp single -heuristic PAM -tasks 1000000 -stream -metrics-addr :9090
//	hcsim serve -config fleet.json  # long-running scheduling daemon (see serve.go)
//
// Run with an unknown -exp name to list every registered experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"taskprune/internal/cluster"
	"taskprune/internal/experiments"
	"taskprune/internal/report"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/telemetry"
	"taskprune/internal/workload"
)

// experimentOrder is the single source of experiment names: it drives the
// registry lookup, the -exp all sweep (in this order), and the listing an
// unknown -exp name prints. Add a new experiment here and nowhere else.
var experimentOrder = []struct {
	name string
	run  func(experiments.Options) (*experiments.Figure, error)
}{
	{"fig4", experiments.Fig4},
	{"fig5", experiments.Fig5},
	{"fig6", experiments.Fig6},
	{"fig7", experiments.Fig7},
	{"fig8", experiments.Fig8},
	{"fig9", experiments.Fig9},
	{"abl-compact", experiments.AblationCompaction},
	{"abl-eq7", experiments.AblationEq7},
	{"abl-scenario", experiments.AblationScenario},
	{"abl-arrival", experiments.AblationArrivalVariance},
	{"abl-moc", experiments.AblationMOCThreshold},
	{"abl-drift", experiments.AblationPETDrift},
	{"ext-preempt", experiments.ExtensionPreemption},
	{"ext-approx", experiments.ExtensionApproximate},
	{"scen-fault", experiments.ScenarioFaultTolerance},
	{"cluster-fault", experiments.ClusterFaultTolerance},
	{"detect-lag", experiments.DetectionLag},
	{"checkpoint", experiments.CheckpointRestore},
	{"stale-pet", experiments.StalePET},
	{"belief-converge", experiments.BeliefConvergence},
}

// registry indexes experimentOrder by name; "single" and "all" are handled
// separately in main.
var registry = func() map[string]func(experiments.Options) (*experiments.Figure, error) {
	m := make(map[string]func(experiments.Options) (*experiments.Figure, error), len(experimentOrder))
	for _, e := range experimentOrder {
		m[e.name] = e.run
	}
	return m
}()

// allNames returns the -exp all sweep in declaration order.
func allNames() []string {
	names := make([]string, 0, len(experimentOrder))
	for _, e := range experimentOrder {
		names = append(names, e.name)
	}
	return names
}

// registeredNames returns every runnable -exp value, sorted, including the
// special modes.
func registeredNames() []string {
	names := append(allNames(), "single", "all")
	sort.Strings(names)
	return names
}

func main() {
	// Subcommand dispatch happens before flag.Parse: `hcsim serve` has its
	// own flag set (the experiment flags make no sense for a daemon).
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}
	var (
		exp       = flag.String("exp", "fig7", "experiment to run (see -exp help: any unknown name lists them)")
		trials    = flag.Int("trials", 30, "workload trials per configuration point")
		tasks     = flag.Int("tasks", 800, "tasks per trial")
		seed      = flag.Int64("seed", 1, "base seed (trial k uses seed+k)")
		beta      = flag.Float64("beta", 2.0, "deadline slack coefficient β")
		varFrac   = flag.Float64("arrival-var", 0.10, "arrival gamma variance as a fraction of the mean")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		csvPath   = flag.String("csv", "", "also write results as CSV to this file")
		plot      = flag.Bool("plot", false, "also render results as an ASCII bar chart")
		heuristic = flag.String("heuristic", "PAM", "heuristic for -exp single")
		level     = flag.Float64("level", workload.Level34k, "oversubscription level for -exp single")
		scenPath  = flag.String("scenario", "", "JSON fleet-scenario file for -exp single (failures, recoveries, degradations, drift ramps, dc outages, bursts)")
		stream    = flag.Bool("stream", false, "pull arrivals from the constant-memory streaming source (per-type RNG splits; workloads differ from the replay schedule at equal seeds), enabling -tasks far past materializable scale")
		dcs       = flag.Int("dcs", 1, "shard -exp single across this many datacenters (1 = the plain single-fleet engine)")
		route     = flag.String("route", "round-robin", "dispatch policy for -dcs > 1: "+strings.Join(cluster.PolicyNames(), ", "))
		dcpar     = flag.Bool("dcpar", false, "step the -dcs datacenters concurrently between cluster-clock barriers (byte-identical results; requires -dcs > 1)")
		belief    = flag.String("belief", "", "mapper knowledge model for -exp single: oracle, frozen, or online (empty = the scenario's, else oracle)")

		telemetryPath = flag.String("telemetry", "", "write per-shard telemetry time series to this file after an -exp single run (.json = JSON series, anything else = CSV)")
		sampleEvery   = flag.Int64("sample-every", telemetry.DefaultSampleEvery, "simulated ticks between telemetry samples")
		phases        = flag.Bool("phases", false, "time the scheduler phases (dispatch/admit/step/eval/convolve) during -exp single and print the breakdown")
		metricsAddr   = flag.String("metrics-addr", "", "serve Prometheus text (/metrics), JSON snapshots (/metrics.json), and pprof on this address during -exp single")
	)
	flag.Parse()
	validateClusterFlags(*exp, *dcs, *route)
	tf := telemetryFlags{Path: *telemetryPath, Every: *sampleEvery, Phases: *phases, Addr: *metricsAddr}
	validateTelemetryFlags(*exp, tf)

	opts := experiments.Options{
		Trials: *trials, Tasks: *tasks, Seed: *seed,
		Workers: *workers, Beta: *beta, VarFrac: *varFrac,
		Streamed: *stream,
	}

	if *exp == "single" {
		var sc *scenario.Scenario
		if *scenPath != "" {
			var err error
			if sc, err = scenario.Load(*scenPath); err != nil {
				fatal(err)
			}
		}
		bp, err := beliefFor(*belief)
		if err != nil {
			fatal(err)
		}
		if *dcs > 1 {
			if err := runCluster(opts, *heuristic, *level, sc, bp, *dcs, *route, *dcpar, tf); err != nil {
				fatal(err)
			}
			return
		}
		if err := runSingle(opts, *heuristic, *level, sc, bp, tf); err != nil {
			fatal(err)
		}
		return
	}

	names := []string{*exp}
	if *exp == "all" {
		names = allNames()
	}
	for _, name := range names {
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hcsim: unknown experiment %q\nregistered experiments:\n", name)
			for _, n := range registeredNames() {
				fmt.Fprintf(os.Stderr, "  %s\n", n)
			}
			os.Exit(1)
		}
		start := time.Now()
		fig, err := run(opts)
		if err != nil {
			fatal(err)
		}
		tables := tablesFor(name, fig)
		for _, tbl := range tables {
			fmt.Println(tbl.String())
		}
		if *plot {
			fmt.Println(fig.RobustnessChart().String())
		}
		fmt.Printf("(%s finished in %v, %d trials/point)\n\n", name, time.Since(start).Round(time.Millisecond), opts.Trials)
		if *csvPath != "" {
			if err := writeCSV(*csvPath, tables); err != nil {
				fatal(err)
			}
			fmt.Printf("CSV written to %s\n", *csvPath)
		}
	}
}

// validateClusterFlags rejects cluster-flag combinations that would
// otherwise be silently ignored: -dcs/-route/-dcpar outside -exp single,
// a stray -route or -dcpar next to a single-fleet run, a -dcs below 1,
// and an unknown -route name. Each failure explains what the flag needs
// and lists the valid values, then exits 1 — the same contract as an
// unknown -exp name, instead of a run that quietly does something else.
func validateClusterFlags(exp string, dcs int, route string) {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var stray []string
	for _, n := range []string{"dcs", "route", "dcpar"} {
		if set[n] {
			stray = append(stray, "-"+n)
		}
	}
	if exp != "single" && len(stray) > 0 {
		fmt.Fprintf(os.Stderr, "hcsim: %s: cluster flags apply only to -exp single (got -exp %s)\n", strings.Join(stray, ", "), exp)
		fmt.Fprintf(os.Stderr, "  hcsim -exp single -dcs 4 -route {%s} [-dcpar]\n", strings.Join(cluster.PolicyNames(), "|"))
		os.Exit(1)
	}
	if exp != "single" {
		return
	}
	if set["dcs"] && dcs < 1 {
		fmt.Fprintf(os.Stderr, "hcsim: -dcs %d: a cluster needs at least one datacenter (1 = the plain single-fleet engine)\n", dcs)
		os.Exit(1)
	}
	if dcs == 1 {
		stray = stray[:0]
		for _, n := range []string{"route", "dcpar"} {
			if set[n] {
				stray = append(stray, "-"+n)
			}
		}
		if len(stray) > 0 {
			fmt.Fprintf(os.Stderr, "hcsim: %s: cluster flags require -dcs > 1; the single-fleet engine has no dispatcher\n", strings.Join(stray, ", "))
			os.Exit(1)
		}
		return
	}
	if _, err := cluster.NewPolicy(route); err != nil {
		fmt.Fprintf(os.Stderr, "hcsim: %v\nregistered dispatch policies:\n", err)
		for _, n := range cluster.PolicyNames() {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
		os.Exit(1)
	}
}

// telemetryFlags bundles the observability knobs for -exp single runs.
type telemetryFlags struct {
	Path   string // time-series export file ("" = none)
	Every  int64  // sampling interval in simulated ticks
	Phases bool   // time scheduler phases and print the breakdown
	Addr   string // live metrics address ("" = no server)
}

// enabled reports whether any probe consumer is wired up — when false the
// simulators run with telemetry fully disabled (nil registry, no-op probes).
func (tf telemetryFlags) enabled() bool {
	return tf.Path != "" || tf.Phases || tf.Addr != ""
}

func (tf telemetryFlags) options() *telemetry.Options {
	if !tf.enabled() {
		return nil
	}
	return &telemetry.Options{SampleEvery: tf.Every}
}

// validateTelemetryFlags rejects observability flags outside -exp single
// and nonsensical sampling intervals, matching validateClusterFlags'
// fail-loudly contract.
func validateTelemetryFlags(exp string, tf telemetryFlags) {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var stray []string
	for _, n := range []string{"telemetry", "sample-every", "phases", "metrics-addr"} {
		if set[n] {
			stray = append(stray, "-"+n)
		}
	}
	if exp != "single" && len(stray) > 0 {
		fmt.Fprintf(os.Stderr, "hcsim: %s: telemetry flags apply only to -exp single (got -exp %s)\n", strings.Join(stray, ", "), exp)
		os.Exit(1)
	}
	if set["sample-every"] && tf.Every <= 0 {
		fmt.Fprintf(os.Stderr, "hcsim: -sample-every %d: the sampling interval must be a positive tick count\n", tf.Every)
		os.Exit(1)
	}
	if set["sample-every"] && !tf.enabled() {
		fmt.Fprintf(os.Stderr, "hcsim: -sample-every needs a consumer: combine it with -telemetry, -phases, or -metrics-addr\n")
		os.Exit(1)
	}
}

// startMetricsServer brings up the live export surface and returns the
// server (nil when -metrics-addr is unset).
func startMetricsServer(addr string) (*telemetry.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv := telemetry.NewServer()
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("metrics: serving http://%s/metrics (+ /metrics.json, /debug/pprof) during the run\n", bound)
	return srv, nil
}

// writeTelemetry exports the per-shard time series, choosing the format by
// file extension (.json = JSON, anything else = CSV).
func writeTelemetry(path string, samplers []telemetry.ScopedSampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = telemetry.WriteSamplersJSON(f, samplers)
	} else {
		err = telemetry.WriteSamplersCSV(f, samplers)
	}
	if err != nil {
		return err
	}
	fmt.Printf("telemetry written to %s (%d shards)\n", path, len(samplers))
	return nil
}

// printPhases renders the merged phase-timer breakdown.
func printPhases(pt *telemetry.PhaseTimer) {
	if pt == nil {
		return
	}
	if err := pt.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

func tablesFor(name string, fig *experiments.Figure) []*report.Table {
	switch name {
	case "fig6":
		return []*report.Table{fig.FairnessTable()}
	case "fig8":
		return []*report.Table{fig.CostTable()}
	case "ext-approx":
		return []*report.Table{experiments.QualityTable(fig)}
	default:
		return []*report.Table{fig.RobustnessTable()}
	}
}

// beliefFor parses the -belief flag into a policy (nil when empty: the
// simulator adopts the scenario's policy, defaulting to the oracle).
func beliefFor(name string) (*scenario.BeliefPolicy, error) {
	switch name {
	case "":
		return nil, nil
	case "oracle":
		return &scenario.BeliefPolicy{Kind: scenario.BeliefOracle}, nil
	case "frozen":
		return &scenario.BeliefPolicy{Kind: scenario.BeliefFrozen}, nil
	case "online":
		return &scenario.BeliefPolicy{Kind: scenario.BeliefOnline}, nil
	default:
		return nil, fmt.Errorf("unknown -belief %q (oracle, frozen, online)", name)
	}
}

// singleSource builds the arrival source for one -exp single trial.
func singleSource(opts experiments.Options, level float64, sc *scenario.Scenario) (workload.Source, error) {
	matrix := experiments.SPECPET()
	wcfg := workload.Config{
		NumTasks: opts.Tasks,
		Rate:     workload.RateForLevel(level),
		VarFrac:  opts.VarFrac,
		Beta:     opts.Beta,
	}
	sc.ApplyBursts(&wcfg)
	rng := stats.NewRNG(opts.Seed)
	if opts.Streamed {
		return workload.NewStream(wcfg, matrix, rng)
	}
	return workload.NewSource(wcfg, matrix, rng)
}

// runSingle executes one trial of one heuristic (optionally under a fleet
// scenario) and prints its statistics — the quickest way to poke at the
// system.
func runSingle(opts experiments.Options, name string, level float64, sc *scenario.Scenario, bp *scenario.BeliefPolicy, tf telemetryFlags) error {
	matrix := experiments.SPECPET()
	cfg, err := simulator.ConfigFor(name, matrix)
	if err != nil {
		return err
	}
	cfg.Scenario = sc
	cfg.Belief = bp
	cfg.Telemetry = tf.options()
	if tf.Phases {
		cfg.PhaseTimer = telemetry.NewPhaseTimer()
	}
	src, err := singleSource(opts, level, sc)
	if err != nil {
		return err
	}
	sim, err := simulator.New(cfg)
	if err != nil {
		return err
	}
	srv, err := startMetricsServer(tf.Addr)
	if err != nil {
		return err
	}
	if srv != nil {
		// The single-fleet engine runs on this goroutine, so publishing a
		// snapshot from the sample hook is safe: the handlers only ever
		// read the last published copy.
		sim.TelemetrySampler().OnSample = func(int64) {
			srv.Publish("sim", sim.Telemetry().Snapshot())
		}
	}
	start := time.Now()
	st, err := sim.RunSource(src)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s @%s: robustness %.1f%% (completed %d / window %d; dropped %d, missed %d) in %v\n",
		name, workload.LevelLabel(level), st.RobustnessPct, st.Completed, st.Window,
		st.Dropped, st.Missed, elapsed.Round(time.Millisecond))
	if opts.Streamed {
		fmt.Printf("stream: %d tasks pulled at %.0f arrivals/sec (constant-memory source)\n",
			st.Total, float64(st.Total)/elapsed.Seconds())
	}
	if sim.Pruner() != nil {
		fmt.Printf("pruner: %d mapping events, %d pruner drops, %d evictions, final level %.2f\n",
			sim.MappingEvents(), sim.DroppedByPruner(), sim.Evicted(), sim.Pruner().Level())
	}
	if sc != nil {
		fmt.Printf("scenario %q: %d fleet events, %d burst windows, %d tasks requeued by failures\n",
			sc.Name, len(sc.Events), len(sc.Bursts), sim.Requeued())
	}
	if p := sim.CheckpointPolicy(); p != nil {
		fmt.Printf("%s: %d checkpoints written, %d of %d requeues restored from a checkpoint\n",
			p, sim.Checkpoints(), sim.Restored(), sim.Requeued())
	}
	if p := sim.BeliefPolicy(); p != nil {
		fmt.Printf("%s: %d completions observed, %d belief refreshes\n",
			p, sim.BeliefObservations(), sim.BeliefRefreshes())
	}
	if srv != nil {
		srv.Publish("sim", sim.Telemetry().Snapshot())
	}
	if tf.Path != "" {
		if err := writeTelemetry(tf.Path, []telemetry.ScopedSampler{{Scope: "sim", S: sim.TelemetrySampler()}}); err != nil {
			return err
		}
	}
	printPhases(cfg.PhaseTimer)
	return nil
}

// runCluster executes one sharded trial — one workload stream fanned out
// across -dcs datacenters through the chosen dispatch policy — and prints
// the cluster aggregate plus a per-datacenter breakdown.
func runCluster(opts experiments.Options, name string, level float64, sc *scenario.Scenario, bp *scenario.BeliefPolicy, dcs int, route string, dcpar bool, tf telemetryFlags) error {
	matrix := experiments.SPECPET()
	simCfg, err := simulator.ConfigFor(name, matrix)
	if err != nil {
		return err
	}
	simCfg.Scenario = sc
	simCfg.Belief = bp
	policy, err := cluster.NewPolicy(route)
	if err != nil {
		return err
	}
	// Cluster runs always carry telemetry: the gate summary below is
	// rendered straight from the engine's probe registry.
	eng, err := cluster.New(cluster.Config{
		DCs: dcs, Policy: policy, Parallel: dcpar, Sim: simCfg,
		Telemetry: &telemetry.Options{SampleEvery: tf.Every},
		Phases:    tf.Phases,
	})
	if err != nil {
		return err
	}
	src, err := singleSource(opts, level, sc)
	if err != nil {
		return err
	}
	srv, err := startMetricsServer(tf.Addr)
	if err != nil {
		return err
	}
	if srv != nil {
		// Only the engine's own shard is published live: the per-DC shards
		// belong to worker goroutines under -dcpar and are readable only
		// after the final barrier (RunSource returning).
		eng.TelemetrySampler().OnSample = func(int64) {
			srv.Publish("cluster", eng.Telemetry().Snapshot())
		}
	}
	start := time.Now()
	st, perDC, err := eng.RunSource(src)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s @%s ×%d DCs (%s routing): robustness %.1f%% (completed %d / window %d; dropped %d, missed %d) in %v\n",
		name, workload.LevelLabel(level), dcs, policy.Name(), st.RobustnessPct, st.Completed, st.Window,
		st.Dropped, st.Missed, elapsed.Round(time.Millisecond))
	lostByDC := eng.LostUndetectedByDC()
	for d, s := range perDC {
		dc := eng.DCList()[d]
		fmt.Printf("  dc%d (machines %v): %d tasks, robustness %.1f%%, %d requeued, %d lost undetected\n",
			d, dc.Machines(), s.Total, s.RobustnessPct, dc.Sim().Requeued(), lostByDC[d])
	}
	if sc != nil {
		fmt.Printf("scenario %q: %d fleet events\n", sc.Name, len(sc.Events))
		if fo := eng.Failover(); fo.Enabled() {
			// The gate's counters — buffering, bounces, retries, detections
			// and their lag — live in the engine's telemetry shard; render
			// them from there instead of duplicating the arithmetic here.
			fmt.Printf("%s:\n", fo)
			if err := telemetry.WriteText(os.Stdout, telemetry.Shard{Scope: "gate", Snap: eng.Telemetry().Snapshot()}); err != nil {
				return err
			}
		}
	}
	for _, sh := range eng.TelemetryShards() {
		srv.Publish(sh.Scope, sh.Snap)
	}
	if tf.Path != "" {
		if err := writeTelemetry(tf.Path, eng.TelemetrySamplers()); err != nil {
			return err
		}
	}
	printPhases(eng.Phases())
	return nil
}

func writeCSV(path string, tables []*report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, tbl := range tables {
		if err := tbl.WriteCSV(f); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcsim:", err)
	os.Exit(1)
}
