// Package taskprune is the public API of a reproduction of "Robust Dynamic
// Resource Allocation via Probabilistic Task Pruning in Heterogeneous
// Computing Systems" (Gentry, Denninnart, Amini Salehi; IPDPS Workshops
// 2019, arXiv:1901.09312).
//
// The library simulates an oversubscribed heterogeneous computing system in
// which deadline-constrained tasks are mapped in batches onto machines with
// bounded FCFS queues, and implements the paper's probabilistic pruning
// mechanism (task deferring + dynamic task dropping) together with the PAM
// and PAMF mapping heuristics and the MM/MSD/MMU/MOC baselines.
//
// # Quick start
//
//	matrix := taskprune.SPECPET()
//	cfg := taskprune.MustConfigFor("PAM", matrix)
//	rng := taskprune.NewRNG(42)
//	tasks := taskprune.MustGenerateWorkload(taskprune.WorkloadConfig{
//		NumTasks: 800,
//		Rate:     taskprune.RateForLevel(taskprune.Level34k),
//		VarFrac:  0.10,
//		Beta:     2.0,
//	}, matrix, rng)
//	sim, _ := taskprune.NewSimulator(cfg)
//	stats, _ := sim.Run(tasks)
//	fmt.Printf("robustness: %.1f%%\n", stats.RobustnessPct)
//
// The subpackages under internal/ contain the substrates (PMF algebra,
// PET profiling, the event-driven engine, the experiment harness); this
// package re-exports the surface a downstream user needs.
//
// # Performance model
//
// Every mapping decision reduces to PMF convolutions, and the engine is
// built so that the steady state performs essentially none of them on the
// heap:
//
//   - Each Simulator owns a PMF arena (internal/pmf.Arena): a bump
//     allocator over pooled blocks that hands out every intermediate
//     distribution of a mapping event — queue tails, pruning chains,
//     commit convolutions — and reclaims them wholesale when the event
//     ends. Arena-backed PMFs are scratch: code inside the engine must
//     never retain one across an event boundary without copying it first
//     (pmf.PMF.CopyFrom exists for exactly that). The pmf package also
//     exposes caller-owned scratch variants (ConvolveInto,
//     ConvolveDropInto) whose zero-allocation steady state is pinned by
//     testing.AllocsPerRun guards.
//
//   - Phase-one mapping evaluations are cached per (task, machine) and
//     keyed by a per-machine tail stamp: committing an assignment bumps
//     exactly one machine's stamp, so each commit round invalidates one
//     column instead of the whole table, and a cross-event tail memo keeps
//     stamps (and thus cached evaluations) alive while a machine's queue
//     and conditioned head distribution are unchanged. SimConfig.NaiveEval
//     disables all of it; the equivalence tests assert the decision traces
//     are byte-identical either way.
//
//   - Arrivals are pull-based: Simulator.RunSource drains a
//     WorkloadSource, pulling each task only when the event horizon
//     reaches it, counting every exit in streaming metrics, and recycling
//     retired tasks (and their TrueExec arrays) through a pool. Trial
//     memory is O(live tasks + fleet), so million-task — or unbounded —
//     streams run in the footprint of an 800-task trial. The replay-mode
//     source (NewWorkloadSource) reproduces GenerateWorkload's slices byte
//     for byte; the pure streaming source (NewWorkloadStream) trades that
//     compatibility for constant memory at any scale, with pluggable
//     arrival-rate shapes (StepRate, RampRate, DiurnalRate).
//
//   - Monte Carlo trials fan out over a fixed worker pool; trial k's RNG
//     seed depends only on (base seed, k), so results are reproducible
//     under any worker count.
package taskprune

import (
	"taskprune/internal/cluster"
	"taskprune/internal/experiments"
	"taskprune/internal/heuristics"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/scenario"
	"taskprune/internal/server"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/telemetry"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// Core model types.
type (
	// PMF is a discrete probability mass function over integer time ticks.
	PMF = pmf.PMF
	// DropMode selects the paper's completion-time scenario (A/B/C).
	DropMode = pmf.DropMode
	// Task is one deadline-constrained request.
	Task = task.Task
	// TaskType indexes a PET matrix row.
	TaskType = task.Type
	// PETMatrix is the Probabilistic Execution Time matrix.
	PETMatrix = pet.Matrix
	// PETBuildConfig controls offline PET profiling.
	PETBuildConfig = pet.BuildConfig
	// RNG is the deterministic random source used everywhere.
	RNG = stats.RNG
)

// Dropping scenarios (paper Section IV).
const (
	NoDrop      = pmf.NoDrop
	PendingDrop = pmf.PendingDrop
	Evict       = pmf.Evict
)

// Simulation and policy types.
type (
	// Simulator runs one trial of the HC system.
	Simulator = simulator.Simulator
	// SimConfig assembles a simulated system.
	SimConfig = simulator.Config
	// Heuristic is a batch mapping policy.
	Heuristic = heuristics.Heuristic
	// PrunerConfig holds the pruning-policy knobs.
	PrunerConfig = pruner.Config
	// TrialStats summarizes one trial.
	TrialStats = metrics.TrialStats
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = workload.Config
	// WorkloadSource is a pull-based arrival stream for Simulator.RunSource.
	WorkloadSource = workload.Source
	// WorkloadStream is the lazy k-way-merged arrival engine behind both
	// the replay-mode and constant-memory streaming sources.
	WorkloadStream = workload.Stream
	// RateFunc shapes arrival rates over time (steps, ramps, diurnal
	// cycles) for streamed workloads.
	RateFunc = workload.RateFunc
	// ExperimentOptions controls figure regeneration scale.
	ExperimentOptions = experiments.Options
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
	// TraceRecorder records the simulator's decision stream.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded simulator decision.
	TraceEvent = trace.Event
	// Scenario declares dynamic fleet events (failures, recoveries,
	// degradations) and arrival bursts for a trial.
	Scenario = scenario.Scenario
	// ScenarioEvent is one timed fleet change.
	ScenarioEvent = scenario.Event
	// Burst is an arrival-rate burst window.
	Burst = workload.Burst
	// ClusterConfig assembles a multi-datacenter sharded system: the PET
	// fleet partitions into per-DC batch queues behind a front-end
	// dispatcher.
	ClusterConfig = cluster.Config
	// ClusterEngine drives one sharded trial across per-DC simulators.
	ClusterEngine = cluster.Engine
	// Datacenter is one fleet partition of a cluster.
	Datacenter = cluster.DC
	// DispatchPolicy routes arriving tasks to datacenters.
	DispatchPolicy = cluster.Policy
	// CheckpointPolicy declares whether (and how often) tasks persist
	// execution progress, what each checkpoint costs, and whether
	// checkpoints survive a whole-DC outage.
	CheckpointPolicy = scenario.CheckpointPolicy
	// BeliefPolicy declares what the mapper believes about execution
	// times: the oracle truth, a view frozen at t=0, or an online
	// re-estimate rebuilt from observed completions.
	BeliefPolicy = scenario.BeliefPolicy
	// FailoverPolicy declares how the cluster dispatcher detects
	// whole-DC outages (oracle vs heartbeat monitoring), how bounced
	// dispatches retry, and whether arrivals buffer at the gate while
	// no datacenter is believed healthy.
	FailoverPolicy = scenario.FailoverPolicy
	// PETView is the read surface every mapping decision goes through; a
	// *PETMatrix is the oracle view, and belief policies substitute
	// imperfect ones.
	PETView = pet.View
	// TelemetryOptions enables a simulator's (or cluster's) probe
	// registry and time-series sampler; leave the config field nil and
	// every probe compiles down to a nil-receiver no-op.
	TelemetryOptions = telemetry.Options
	// TelemetryRegistry is a shard of named counters/gauges/histograms.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySampler snapshots a registry into time-series rows on the
	// simulated clock.
	TelemetrySampler = telemetry.Sampler
	// PhaseTimer aggregates wall-clock spans per scheduler phase
	// (dispatch/admit/step/eval/convolve).
	PhaseTimer = telemetry.PhaseTimer
	// TelemetryServer is the live HTTP export surface (Prometheus text,
	// JSON snapshots, pprof).
	TelemetryServer = telemetry.Server
	// ServeConfig is the persistent `hcsim serve` deployment
	// configuration: fleet, heuristic, route, queue capacity, what-if
	// window, and an optional nested Scenario, round-tripping through
	// JSON with boot-time validation.
	ServeConfig = server.Config
	// ServeFleet selects a deployment's PET matrix ("spec", "video", or
	// a seeded "synthetic" Types×Machines fleet).
	ServeFleet = server.Fleet
	// Daemon is the long-running scheduling daemon behind `hcsim serve`:
	// live HTTP submission, status/metrics export, what-if replays, and
	// graceful drain over one continuously-stepping cluster engine.
	Daemon = server.Server
	// LiveSource is the bounded push side of the daemon: submissions
	// enter via Push (ErrSourceFull = backpressure) and leave through
	// the pull-based WorkloadSource interface.
	LiveSource = workload.LiveSource
)

// Failure policies for scenario machine failures.
const (
	// RequeueOnFailure returns a failed machine's tasks to the batch queue.
	RequeueOnFailure = scenario.Requeue
	// DropOnFailure exits a failed machine's tasks as dropped.
	DropOnFailure = scenario.Drop
)

// Checkpoint kinds and survival modes (CheckpointPolicy fields).
const (
	// CheckpointNone disables checkpointing (failures lose all progress).
	CheckpointNone = scenario.CheckpointNone
	// CheckpointPeriodic checkpoints every Interval nominal ticks of
	// progress, each costing Overhead wall ticks.
	CheckpointPeriodic = scenario.CheckpointPeriodic
	// CheckpointOnPreempt checkpoints only at preemption pauses.
	CheckpointOnPreempt = scenario.CheckpointOnPreempt
	// SurviveLocal keeps checkpoints on DC-local storage: they die with
	// the datacenter in a dc-fail.
	SurviveLocal = scenario.SurviveLocal
	// SurviveReplicated replicates checkpoints across datacenters: a
	// dc-fail failover resumes from the last checkpoint minus the
	// replication lag.
	SurviveReplicated = scenario.SurviveReplicated
)

// Belief kinds (BeliefPolicy.Kind): what PET view drives the mapper.
const (
	// BeliefOracle schedules on the ground truth (the pre-split behavior,
	// byte-identical to no policy at all).
	BeliefOracle = scenario.BeliefOracle
	// BeliefFrozen pins the mapper's view at the t=0 truth while
	// degradation events move the real fleet underneath it.
	BeliefFrozen = scenario.BeliefFrozen
	// BeliefOnline rebuilds per-(type, machine) PMFs from observed
	// completion times, at a configurable refresh cadence past a
	// minimum-sample floor.
	BeliefOnline = scenario.BeliefOnline
)

// Failover kinds and gate-buffer shedding policies (FailoverPolicy
// fields).
const (
	// FailoverOracle detects outages instantly and perfectly (the
	// pre-detection behavior, byte-identical to no policy at all).
	FailoverOracle = scenario.FailoverOracle
	// FailoverHeartbeat detects an outage only after SuspectAfter
	// consecutive missed heartbeats; dispatches keep flowing into the
	// dead datacenter until then.
	FailoverHeartbeat = scenario.FailoverHeartbeat
	// ShedDropNewest refuses the incoming task when the gate buffer
	// overflows.
	ShedDropNewest = scenario.ShedDropNewest
	// ShedDropOldest evicts the buffer head when the gate buffer
	// overflows.
	ShedDropOldest = scenario.ShedDropOldest
	// ShedDeadlineAware evicts the buffered task with the earliest
	// deadline — the one least likely to survive the wait.
	ShedDeadlineAware = scenario.ShedDeadlineAware
)

// Constructors and helpers re-exported from the internal packages.
var (
	// NewRNG returns a seeded deterministic random source.
	NewRNG = stats.NewRNG
	// NewSimulator validates a SimConfig and builds a Simulator.
	NewSimulator = simulator.New
	// ConfigFor returns the paper's evaluation configuration for a named
	// heuristic ("PAM", "PAMF", "MOC", "MM", "MSD", "MMU").
	ConfigFor = simulator.ConfigFor
	// MustConfigFor is ConfigFor for known-good names.
	MustConfigFor = simulator.MustConfigFor
	// NewHeuristic constructs a mapping heuristic by name.
	NewHeuristic = heuristics.New
	// HeuristicNames lists the available heuristics.
	HeuristicNames = heuristics.AllNames
	// DefaultPrunerConfig returns the paper's converged pruning knobs.
	DefaultPrunerConfig = pruner.DefaultConfig
	// GenerateWorkload synthesizes one workload trial.
	GenerateWorkload = workload.Generate
	// MustGenerateWorkload is GenerateWorkload for known-good configs.
	MustGenerateWorkload = workload.MustGenerate
	// NewWorkloadSource builds the replay-mode streaming source: pull-based
	// but byte-identical to GenerateWorkload's slices at equal seeds.
	NewWorkloadSource = workload.NewSource
	// NewWorkloadStream builds the constant-memory streaming source for
	// unbounded (or million-task) trials; NumTasks 0 streams forever.
	NewWorkloadStream = workload.NewStream
	// WorkloadFromTasks adapts a task slice to the Source interface.
	WorkloadFromTasks = workload.FromTasks
	// StepRate, RampRate, and DiurnalRate build arrival-rate shapes for
	// WorkloadConfig.RateFn.
	StepRate    = workload.StepRate
	RampRate    = workload.RampRate
	DiurnalRate = workload.DiurnalRate
	// RateForLevel converts a paper-style oversubscription level into an
	// arrival rate (tasks per tick).
	RateForLevel = workload.RateForLevel
	// VideoRateForLevel is RateForLevel for the Fig. 9 video system.
	VideoRateForLevel = workload.VideoRateForLevel
	// BuildPET profiles a PET matrix from a mean execution-time matrix.
	BuildPET = pet.Build
	// DefaultPETBuildConfig mirrors the paper's profiling setup.
	DefaultPETBuildConfig = pet.DefaultBuildConfig
	// SPECLikeMeans returns the 12×8 main-workload mean matrix.
	SPECLikeMeans = pet.SPECLikeMeans
	// SyntheticMeans generalizes the SPEC-like generator to any
	// Types×Machines fleet at any seed (SPECLikeMeans is
	// SyntheticMeans(12, 8, 0x5EC1), byte for byte).
	SyntheticMeans = pet.SyntheticMeans
	// VideoMeans returns the 4×4 video-workload mean matrix.
	VideoMeans = pet.VideoMeans
	// SPECPET returns the shared main-evaluation PET matrix.
	SPECPET = experiments.SPECPET
	// VideoPET returns the shared video-workload PET matrix.
	VideoPET = experiments.VideoPET
	// DefaultExperimentOptions mirrors the paper's 30-trial scale.
	DefaultExperimentOptions = experiments.DefaultOptions
	// QuickExperimentOptions is a reduced profile for smoke runs.
	QuickExperimentOptions = experiments.QuickOptions
	// NewTraceRecorder returns an unbounded simulator trace recorder.
	NewTraceRecorder = trace.NewRecorder
	// NewRingTraceRecorder keeps only the most recent N trace events.
	NewRingTraceRecorder = trace.NewRingRecorder
	// ReadPETJSON loads a PET matrix serialized with PETMatrix.WriteJSON.
	ReadPETJSON = pet.ReadJSON
	// WriteWorkloadCSV serializes a workload for replay.
	WriteWorkloadCSV = workload.WriteCSV
	// ReadWorkloadCSV parses a workload trace in wlgen's CSV schema.
	ReadWorkloadCSV = workload.ReadCSV
	// NewScenario returns an empty named fleet scenario for the builder
	// methods (FailAt, RecoverAt, DegradeAt, BurstWindow, StartDown).
	NewScenario = scenario.New
	// ParseScenario reads a JSON fleet scenario.
	ParseScenario = scenario.Parse
	// LoadScenario parses the JSON fleet-scenario file at a path.
	LoadScenario = scenario.Load
	// NewDaemon builds the scheduling daemon from a validated
	// ServeConfig; Start launches the pump, Serve binds the HTTP API,
	// Drain shuts down gracefully.
	NewDaemon = server.New
	// ParseServeConfig reads a JSON deployment config (unknown fields
	// rejected, defaults applied).
	ParseServeConfig = server.ParseConfig
	// LoadServeConfig parses and validates the deployment config file at
	// a path — the `hcsim serve -config` boot path.
	LoadServeConfig = server.LoadConfig
	// NewLiveSource builds the bounded live-submission source bridging
	// pushed tasks into a pull-based engine run.
	NewLiveSource = workload.NewLiveSource
	// FaultScenario is the canned mid-trial churn used by the scen-fault
	// experiment.
	FaultScenario = experiments.FaultScenario
	// NewCluster partitions the fleet into datacenters and builds the
	// sharded engine.
	NewCluster = cluster.New
	// NewDispatchPolicy builds a routing policy by name ("round-robin",
	// "least-queued", "pet-aware").
	NewDispatchPolicy = cluster.NewPolicy
	// DispatchPolicyNames lists the canonical routing-policy names.
	DispatchPolicyNames = cluster.PolicyNames
	// NewPhaseTimer builds a phase timer for SimConfig.PhaseTimer (or
	// ClusterConfig.Phases-driven per-DC timers).
	NewPhaseTimer = telemetry.NewPhaseTimer
	// NewTelemetryServer builds the live HTTP metrics surface; publish
	// shard snapshots into it from a sampler's OnSample hook.
	NewTelemetryServer = telemetry.NewServer
)

// Oversubscription level labels used by the paper's figures.
const (
	Level10k  = workload.Level10k
	Level12k5 = workload.Level12k5
	Level15k  = workload.Level15k
	Level17k5 = workload.Level17k5
	Level19k  = workload.Level19k
	Level34k  = workload.Level34k
)
