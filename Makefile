GO                  ?= go
DATE                := $(shell date +%Y%m%d)
BENCH_BASELINE      ?= BENCH_20260808.json
FUZZTIME            ?= 30s
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
DOCKER_IMAGE        ?= hcsim:dev
# Statement-coverage floors. Each is set to (just under) the measured
# coverage when its guard was introduced; raise a floor when coverage
# durably improves, never lower one to make a PR pass.
#  - internal/cluster: the package where a silent test regression would
#    hurt most (detection, gate buffering, the parallel drivers).
#  - internal/report, internal/metrics: the rendering and accounting
#    surfaces every experiment's output flows through.
#  - internal/telemetry: the probe/sampler/export layer whose zero-cost
#    and determinism contracts the rest of the repo leans on.
#  - internal/server: the daemon's admission, drain, and what-if surfaces
#    (handler tables, backpressure, graceful-drain ordering, config
#    validation).
CLUSTER_COVER_FLOOR   ?= 90.0
REPORT_COVER_FLOOR    ?= 94.0
METRICS_COVER_FLOOR   ?= 95.0
TELEMETRY_COVER_FLOOR ?= 88.0
SERVER_COVER_FLOOR    ?= 84.0

.PHONY: build vet test ci lint vulncheck bench bench-smoke bench-guard golden golden-update fuzz-smoke race-stream race-cluster race-telemetry race-serve cover check-tree serve-smoke docker-build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Everything the CI test job runs, in the same order via the same targets —
# the workflow (.github/workflows/ci.yml) calls these recipes instead of
# restating them, so this file is the single source of truth for what green
# means. (The lint job is separate: it downloads staticcheck, so it is not
# part of the offline ci target.)
ci: check-tree vet build test cover golden race-stream race-telemetry race-serve fuzz-smoke bench-smoke bench-guard

# Per-package statement coverage, with hard floors on the gated packages:
# the build fails if any of them drops below its floor. Other packages are
# reported but not gated.
cover:
	$(GO) test -cover ./... | tee /tmp/cover_raw.txt
	@for gate in \
		"taskprune/internal/cluster $(CLUSTER_COVER_FLOOR)" \
		"taskprune/internal/report $(REPORT_COVER_FLOOR)" \
		"taskprune/internal/metrics $(METRICS_COVER_FLOOR)" \
		"taskprune/internal/telemetry $(TELEMETRY_COVER_FLOOR)" \
		"taskprune/internal/server $(SERVER_COVER_FLOOR)"; do \
		set -- $$gate; \
		awk -v pkg=$$1 -v floor=$$2 ' \
		$$2 == pkg { \
			found = 1; \
			for (i = 3; i <= NF; i++) if ($$i == "coverage:") { pct = $$(i+1); sub(/%/, "", pct) } \
			if (pct + 0 < floor + 0) { \
				printf("FAIL: %s coverage %s%% is below the %s%% floor\n", pkg, pct, floor); exit 1 \
			} \
			printf("%s coverage %s%% (floor %s%%)\n", pkg, pct, floor) \
		} \
		END { if (!found) { printf("FAIL: no coverage line for %s\n", pkg); exit 1 } }' /tmp/cover_raw.txt || exit 1; \
	done

# Golden decision-trace determinism: the committed traces (single-fleet
# and 3-DC cluster) must replay byte for byte, twice, so flaky
# nondeterminism cannot hide behind test caching.
golden:
	$(GO) test -run Golden -count=2 ./internal/simulator/ ./internal/cluster/

# Regenerate the golden traces after an intentional behavior change; review
# the diff like any other scheduling change.
golden-update:
	$(GO) test -run Golden -update ./internal/simulator/ ./internal/cluster/

# Allocation-regression tripwire: every benchmark in the committed
# baseline must stay within 2x of its recorded allocs/op and B/op.
bench-guard:
	./scripts/bench_guard.sh $(BENCH_BASELINE)

# Race check of the sharded cluster engine: the 1-DC cluster equivalence
# tests and the parallel-stepping determinism matrix (sequential vs
# per-DC-goroutine runs must produce byte-identical traces across
# GOMAXPROCS settings) — the entire shared-state surface of the barrier
# and wide-window drivers in internal/cluster/parallel.go.
race-cluster:
	$(GO) test -race -run 'ClusterEquivalence|ClusterParallelStepDeterminism|ParallelGateDrops' ./internal/cluster/

# Race check of the parallel trial runner driven by pull-based streaming
# sources (the shared-state surface across workers), including the sharded
# cluster runner via race-cluster, plus the checkpoint-disabled
# equivalence and oracle-belief equivalence tests under -race, and the
# mixed reader/writer hammer on the PET scaled/remaining entry caches
# (shared across parallel trials).
race-stream: race-cluster
	$(GO) test -race -run Streamed ./internal/experiments/
	$(GO) test -race -run 'CheckpointDisabledEquivalence|BeliefOracleEquivalence' ./internal/simulator/
	$(GO) test -race -run ScaledAndRemainingCachesConcurrent ./internal/pet/

# Race check of the telemetry layer: the sampler shard merge under both
# parallel cluster drivers (per-shard rows must stay byte-identical to the
# sequential driver's across GOMAXPROCS settings) and the HTTP export
# server's Publish/render surface hammered from concurrent goroutines.
race-telemetry:
	$(GO) test -race -run 'ClusterParallelTelemetryDeterminism|TelemetryDoesNotPerturbScheduling' ./internal/cluster/
	$(GO) test -race -run 'ServerConcurrentPublish' ./internal/telemetry/

# Short fuzz run of both wire-format parsers, seeded from the committed
# corpora under testdata/fuzz/ (known-interesting inputs, not an empty
# corpus): a CI smoke, not a soak.
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run xxx ./internal/scenario/
	$(GO) test -fuzz FuzzReadCSV -fuzztime $(FUZZTIME) -run xxx ./internal/workload/
	$(GO) test -fuzz FuzzParseConfig -fuzztime $(FUZZTIME) -run xxx ./internal/server/

# Race check of the scheduling daemon: HTTP handlers hammering the bounded
# live source and published snapshots while the pump goroutine owns the
# engine (submission, drain ordering, what-if replays).
race-serve:
	$(GO) test -race ./internal/server/

# Tree hygiene: no tracked compiled test binaries, no tracked >1MB blobs
# outside testdata/ (see scripts/check_tree.sh; checktree_test.go keeps the
# guard honest with scratch-repo negative tests).
check-tree:
	./scripts/check_tree.sh

# End-to-end smoke of `hcsim serve`: static build, boot on a fixed port,
# health check, batch submission, queue drain, what-if replay, metrics,
# SIGTERM, graceful exit 0 (see scripts/serve_smoke.sh).
serve-smoke:
	./scripts/serve_smoke.sh

# Static deployment image (build-only in CI; running it is the smoke
# script's job, against the native binary).
docker-build:
	docker build -t $(DOCKER_IMAGE) .

# Known-vulnerability scan at a pinned govulncheck version (downloads the
# tool, so it lives in the lint job, not the offline ci target).
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Static analysis at a pinned staticcheck version (downloads the tool on
# first run; not part of the offline ci target for that reason).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Quick throughput/allocation smoke: one full trial per heuristic class
# (single-fleet and sharded) and the convolution-core allocation guards.
# The cluster trials run several iterations so the reported numbers are
# warm steady state, not first-run cache warm-up.
bench-smoke:
	$(GO) test -run xxx -bench SingleTrial -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench ClusterTrial -benchtime 5x -benchmem .
	$(GO) test -run xxx -bench Convolve -benchtime 100x -benchmem ./internal/pmf/

# Full benchmark sweep, recorded as BENCH_<date>.json so the performance
# trajectory of the repo is machine-readable PR over PR. Three iterations
# per benchmark amortize first-run warm-up (process-wide PET caches, pool
# fills) out of the recorded allocs/op — bench_guard refuses baselines
# recorded at iterations==1 for exactly that reason.
bench:
	$(GO) test -run xxx -bench . -benchtime 3x -benchmem . | tee /tmp/bench_raw.txt
	awk 'BEGIN { print "["; first = 1 } \
	/^Benchmark/ { \
		sub(/-[0-9]+$$/, "", $$1); \
		if (!first) printf(",\n"); first = 0; \
		printf("  {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $$1, $$2); \
		sep = ""; \
		for (i = 3; i < NF; i += 2) { printf("%s\"%s\":%s", sep, $$(i+1), $$i); sep = "," } \
		printf("}}") \
	} \
	END { print "\n]" }' /tmp/bench_raw.txt > BENCH_$(DATE).json
	@echo "wrote BENCH_$(DATE).json"
