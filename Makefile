GO   ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: build vet test ci bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

ci: vet build test bench-smoke

# Quick throughput/allocation smoke: one full trial per heuristic class and
# the convolution-core allocation guards.
bench-smoke:
	$(GO) test -run xxx -bench SingleTrial -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench Convolve -benchtime 100x -benchmem ./internal/pmf/

# Full benchmark sweep, recorded as BENCH_<date>.json so the performance
# trajectory of the repo is machine-readable PR over PR.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem . | tee /tmp/bench_raw.txt
	awk 'BEGIN { print "["; first = 1 } \
	/^Benchmark/ { \
		if (!first) printf(",\n"); first = 0; \
		printf("  {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $$1, $$2); \
		sep = ""; \
		for (i = 3; i < NF; i += 2) { printf("%s\"%s\":%s", sep, $$(i+1), $$i); sep = "," } \
		printf("}}") \
	} \
	END { print "\n]" }' /tmp/bench_raw.txt > BENCH_$(DATE).json
	@echo "wrote BENCH_$(DATE).json"
