package cluster

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/workload"
)

// churnOutageScenario layers machine-scoped churn (a fail/recover cycle
// and a degradation drift) on top of a whole-DC outage, so the parallel
// drivers are exercised across every event family at once.
func churnOutageScenario(policy scenario.Policy) *scenario.Scenario {
	return scenario.New("churn-outage").
		FailAt(60, 2, policy).
		RecoverAt(180, 2).
		DriftAt(80, 240, 4, 1.0, 1.8, 4).
		DCFailAt(100, 0, policy).
		DCRecoverAt(250, 0)
}

// TestClusterParallelStepDeterminism is the parallel engine's contract:
// for stateful routing (pet-aware, least-queued → barrier-per-arrival)
// and state-free routing (round-robin → wide-window pipelining), under a
// static fleet and under churn-with-outages, the full deterministic
// record — per-DC decision traces, dispatch log, cluster and per-DC
// statistics — is byte-identical to the sequential interleave at every
// GOMAXPROCS setting. Run under -race (make race-cluster / race-stream),
// this doubles as the data-race proof for the shared collector and the
// worker handoffs.
func TestClusterParallelStepDeterminism(t *testing.T) {
	matrix := clusterPET(t)
	scenarios := []struct {
		name string
		sc   *scenario.Scenario
	}{
		{"static", nil},
		{"churn-outage", churnOutageScenario(scenario.Requeue)},
		{"churn-outage-drop", churnOutageScenario(scenario.Drop)},
	}
	for _, route := range []string{"pet-aware", "least-queued", "round-robin"} {
		for _, sc := range scenarios {
			t.Run(fmt.Sprintf("%s/%s", route, sc.name), func(t *testing.T) {
				wantBlob, _, wantStats, wantPerDC := clusterTrialMode(t, matrix, "PAM", route, sc.sc, false)
				for _, gmp := range []int{1, 4, 8} {
					prev := runtime.GOMAXPROCS(gmp)
					blob, _, stats, perDC := clusterTrialMode(t, matrix, "PAM", route, sc.sc, true)
					runtime.GOMAXPROCS(prev)
					if string(blob) != string(wantBlob) {
						t.Fatalf("GOMAXPROCS=%d: parallel record diverges from sequential (%d vs %d bytes)",
							gmp, len(blob), len(wantBlob))
					}
					if !reflect.DeepEqual(stats, wantStats) {
						t.Fatalf("GOMAXPROCS=%d: cluster stats diverge:\nseq: %+v\npar: %+v", gmp, wantStats, stats)
					}
					if !reflect.DeepEqual(perDC, wantPerDC) {
						t.Fatalf("GOMAXPROCS=%d: per-DC stats diverge", gmp)
					}
				}
			})
		}
	}
}

// TestParallelGateDrops pins the wide-window driver's gate-drop path: a
// total blackout drops arrivals at the gate from the dispatcher goroutine
// while workers drain concurrently, and the count and aggregate match the
// sequential run exactly.
func TestParallelGateDrops(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 150, 9)
	sc := scenario.New("blackout").
		DCFailAt(100, 0, scenario.Requeue).
		DCFailAt(100, 1, scenario.Requeue)
	run := func(parallel bool) (int, int) {
		cfg := clusterConfig(t, "MM", matrix, 2, nil, sc)
		cfg.Parallel = parallel
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := eng.RunSource(workload.FromTasks(tasks))
		if err != nil {
			t.Fatal(err)
		}
		return eng.GateDrops(), st.Total
	}
	seqDrops, seqTotal := run(false)
	parDrops, parTotal := run(true)
	if seqDrops == 0 {
		t.Fatal("blackout scenario produced no gate drops")
	}
	if parDrops != seqDrops || parTotal != seqTotal {
		t.Fatalf("parallel gate accounting diverged: drops %d vs %d, total %d vs %d",
			parDrops, seqDrops, parTotal, seqTotal)
	}
}
