package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"taskprune/internal/metrics"
	"taskprune/internal/scenario"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// runFailoverTrial runs one recorded trial and returns the engine for
// counter inspection alongside the aggregate statistics.
func runFailoverTrial(t *testing.T, heuristic string, dcs int, policy Policy, sc *scenario.Scenario, nTasks int, seed int64) (*Engine, metrics.TrialStats, []metrics.TrialStats) {
	t.Helper()
	matrix := clusterPET(t)
	cfg := clusterConfig(t, heuristic, matrix, dcs, policy, sc)
	cfg.RecordDispatch = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, perDC, err := eng.RunSource(workload.FromTasks(clusterWorkload(t, matrix, nTasks, seed)))
	if err != nil {
		t.Fatal(err)
	}
	return eng, st, perDC
}

// assertExitAccounting pins the three-way loss split: every task exits
// either inside exactly one datacenter or at the gate in exactly one of
// the three gate classes (dropped, shed, lost-to-undetected), so the
// per-DC totals plus the sum of the three gate counters must reproduce
// the cluster total exactly (Total is untrimmed, unlike the per-outcome
// window counts).
func assertExitAccounting(t *testing.T, st metrics.TrialStats, perDC []metrics.TrialStats, g metrics.GateStats) {
	t.Helper()
	inDC := 0
	for _, s := range perDC {
		inDC += s.Total
	}
	if st.Total != inDC+g.EngineExits() {
		t.Fatalf("exit accounting broken: cluster total %d, per-DC %d + gate exits %d (%+v)",
			st.Total, inDC, g.EngineExits(), g)
	}
}

// TestDetectionLagWindow pins the heartbeat monitor's timeline. DC 0
// truly fails at t=100 under a 20-tick heartbeat with SuspectAfter=2: the
// fail settles before the observation at 100, so heartbeats 100 and 120
// are missed and detection lands at 120. Until then the dispatcher keeps
// routing arrivals into the dead datacenter (they bounce); from 120 until
// re-trust it must not; after recovery at 250 the first heartbeat (260)
// plus 20 ticks of probation re-admits DC 0 at 280.
func TestDetectionLagWindow(t *testing.T) {
	sc := scenario.New("detect").
		DCFailAt(100, 0, scenario.Requeue).
		DCRecoverAt(250, 0).
		WithFailover(scenario.FailoverPolicy{
			Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 20, SuspectAfter: 2,
			Probation: 20, BounceAfter: 10, RetryBase: 5, RetryCap: 40,
		})
	eng, st, perDC := runFailoverTrial(t, "PAM", 3, nil, sc, 200, 5)
	if st.Total != 200 {
		t.Fatalf("cluster accounted %d of 200 tasks", st.Total)
	}
	intoDead, duringSuspect, afterTrust := 0, 0, 0
	for _, d := range eng.Dispatches() {
		if d.DC != 0 {
			continue
		}
		switch {
		case d.Tick >= 100 && d.Tick < 120:
			intoDead++
		case d.Tick >= 120 && d.Tick < 280:
			duringSuspect++
		case d.Tick >= 280:
			afterTrust++
		}
	}
	if intoDead == 0 {
		t.Error("no arrivals routed into the dead-but-undetected datacenter in [100,120)")
	}
	if duringSuspect != 0 {
		t.Errorf("%d dispatches to DC 0 while it was believed down ([120,280))", duringSuspect)
	}
	if afterTrust == 0 {
		t.Error("re-trusted datacenter never received tasks after probation (t>=280)")
	}
	g := eng.Gate()
	if g.Detections != 1 || g.DetectionLagTicks != 20 {
		t.Errorf("detections=%d lag=%d, want exactly 1 detection with 20 ticks of lag", g.Detections, g.DetectionLagTicks)
	}
	if g.Bounced == 0 {
		t.Error("dispatches into the undetected outage never bounced")
	}
	if g.Bounced != g.Retries+g.LostUndetected {
		t.Errorf("every bounce must end in a retry or a loss: bounced %d, retries %d, lost %d", g.Bounced, g.Retries, g.LostUndetected)
	}
	assertExitAccounting(t, st, perDC, g)
}

// TestUndetectedOutageSalvagesAtRecovery: when the outage is shorter than
// the detection timeout (heartbeat 200, fail at 100, recover at 250 <
// first possible detection at 400), the monitor never flags it. The
// drained tasks resurface at the recovery tick, and the dispatcher keeps
// routing into the dead datacenter for the whole outage.
func TestUndetectedOutageSalvagesAtRecovery(t *testing.T) {
	sc := scenario.New("unseen").
		DCFailAt(100, 0, scenario.Requeue).
		DCRecoverAt(250, 0).
		WithFailover(scenario.FailoverPolicy{
			Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 200, SuspectAfter: 2,
			BounceAfter: 10, RetryBase: 5, RetryCap: 40,
		})
	eng, st, perDC := runFailoverTrial(t, "PAM", 3, nil, sc, 200, 5)
	g := eng.Gate()
	if g.Detections != 0 {
		t.Fatalf("outage shorter than the detection timeout was detected %d times", g.Detections)
	}
	salvaged, duringOutage := 0, 0
	for _, d := range eng.Dispatches() {
		if d.Failover && d.Tick == 250 {
			salvaged++
		}
		if !d.Failover && d.DC == 0 && d.Tick >= 100 && d.Tick < 250 {
			duringOutage++
		}
	}
	if salvaged == 0 {
		t.Error("no drained tasks salvaged at the recovery tick")
	}
	if duringOutage == 0 {
		t.Error("believed-healthy dead datacenter received no arrivals during the outage")
	}
	if g.Bounced == 0 {
		t.Error("dispatches into the undetected outage never bounced")
	}
	if st.Total != 200 {
		t.Fatalf("cluster accounted %d of 200 tasks", st.Total)
	}
	assertExitAccounting(t, st, perDC, g)
}

// TestGateBufferHoldsBlackout: with the oracle detector and a roomy gate
// buffer, a total blackout queues arrivals instead of dropping them and
// drains the backlog in FIFO order when a datacenter returns.
func TestGateBufferHoldsBlackout(t *testing.T) {
	// Drop policy at the dc-fails: the held tasks exit inside their
	// datacenters, so the only gate traffic is arrivals — which keeps the
	// buffer pure FIFO-by-arrival for the drain-order check below.
	outage := func(fo *scenario.FailoverPolicy) *scenario.Scenario {
		sc := scenario.New("blackout").
			DCFailAt(100, 0, scenario.Drop).
			DCFailAt(100, 1, scenario.Drop).
			DCRecoverAt(280, 0)
		if fo != nil {
			sc = sc.WithFailover(*fo)
		}
		return sc
	}
	bareEng, bare, _ := runFailoverTrial(t, "MM", 2, nil, outage(nil), 150, 9)
	if bareEng.GateDrops() == 0 {
		t.Fatal("bufferless blackout dropped nothing at the gate")
	}
	eng, st, perDC := runFailoverTrial(t, "MM", 2, nil, outage(&scenario.FailoverPolicy{GateBuffer: 256}), 150, 9)
	g := eng.Gate()
	if g.Dropped != 0 || g.Shed != 0 {
		t.Fatalf("roomy buffer still lost tasks at the gate: %+v", g)
	}
	if g.Buffered == 0 || g.MaxQueueDepth == 0 {
		t.Fatalf("blackout buffered nothing: %+v", g)
	}
	if st.Total != 150 || bare.Total != 150 {
		t.Fatalf("cluster accounted %d/%d of 150 tasks", st.Total, bare.Total)
	}
	// FIFO drain: the buffer empties at the recovery tick, oldest first.
	drained, prevID, fifo := 0, -1, true
	for _, d := range eng.Dispatches() {
		if d.Tick == 280 && !d.Failover && d.DC >= 0 {
			drained++
			if d.TaskID < prevID {
				fifo = false
			}
			prevID = d.TaskID
		}
	}
	if drained == 0 {
		t.Error("no buffered tasks drained at the recovery tick")
	}
	if !fifo {
		t.Error("buffer drain is not FIFO (task IDs not monotone at the drain tick)")
	}
	assertExitAccounting(t, st, perDC, g)
}

// TestGateBufferOverflowSheds: a blackout that never ends fills a small
// buffer, sheds the overflow, and flushes the stragglers at end of trial —
// all attributed to Shed, never to gate drops.
func TestGateBufferOverflowSheds(t *testing.T) {
	sc := scenario.New("dark").
		DCFailAt(100, 0, scenario.Requeue).
		DCFailAt(100, 1, scenario.Requeue).
		WithFailover(scenario.FailoverPolicy{GateBuffer: 8, Shed: scenario.ShedDropOldest})
	eng, st, perDC := runFailoverTrial(t, "MM", 2, nil, sc, 150, 9)
	g := eng.Gate()
	if g.Dropped != 0 {
		t.Errorf("buffered gate recorded %d plain drops", g.Dropped)
	}
	if g.Shed == 0 {
		t.Error("overflowing buffer shed nothing")
	}
	if g.MaxQueueDepth != 8 {
		t.Errorf("max queue depth %d, want the 8-slot capacity", g.MaxQueueDepth)
	}
	if g.Buffered != g.Shed {
		t.Errorf("permanent blackout: every buffered task must eventually shed (%d buffered, %d shed)", g.Buffered, g.Shed)
	}
	if st.Total != 150 {
		t.Fatalf("cluster accounted %d of 150 tasks", st.Total)
	}
	assertExitAccounting(t, st, perDC, g)
}

// TestShedPolicies pins the overflow victim selection of each ShedKind at
// the unit level, buffer contents included.
func TestShedPolicies(t *testing.T) {
	mk := func(id int, deadline int64) *task.Task {
		return &task.Task{ID: id, Deadline: deadline}
	}
	ids := func(buf []*task.Task) []int {
		out := make([]int, len(buf))
		for i, b := range buf {
			out[i] = b.ID
		}
		return out
	}
	cases := []struct {
		name     string
		shed     scenario.ShedKind
		incoming *task.Task
		wantBuf  []int
		wantShed int // ID of the victim
	}{
		{"drop-newest", scenario.ShedDropNewest, mk(3, 300), []int{1, 2}, 3},
		{"drop-oldest", scenario.ShedDropOldest, mk(3, 300), []int{2, 3}, 1},
		{"deadline-aware picks earliest deadline", scenario.ShedDeadlineAware, mk(3, 150), []int{2, 3}, 1},
		{"deadline-aware keeps buffer on tie", scenario.ShedDeadlineAware, mk(3, 50), []int{1, 2}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := &Engine{
				fo:        &scenario.FailoverPolicy{GateBuffer: 2, Shed: c.shed},
				collector: metrics.NewStream(1, metrics.DefaultTrim),
			}
			e.buf = []*task.Task{mk(1, 50), mk(2, 200)}
			e.bufferTask(c.incoming, 10)
			if got := ids(e.buf); !reflect.DeepEqual(got, c.wantBuf) {
				t.Errorf("buffer after overflow = %v, want %v", got, c.wantBuf)
			}
			if e.gateStats.Shed != 1 {
				t.Errorf("shed counter = %d, want 1", e.gateStats.Shed)
			}
		})
	}
}

// TestRetryExhaustionLoses: every datacenter fails far below the detection
// timeout, so the dispatcher keeps believing in them and every arrival
// bounces through its retry budget (2 retries) before being lost to the
// undetected outage — the third loss class, attributed per datacenter.
func TestRetryExhaustionLoses(t *testing.T) {
	sc := scenario.New("blind").
		DCFailAt(100, 0, scenario.Requeue).
		DCFailAt(100, 1, scenario.Requeue).
		WithFailover(scenario.FailoverPolicy{
			Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 500, SuspectAfter: 2,
			BounceAfter: 10, MaxRetries: 2, RetryBase: 4, RetryCap: 16,
		})
	eng, st, perDC := runFailoverTrial(t, "PAM", 2, nil, sc, 150, 9)
	g := eng.Gate()
	if g.LostUndetected == 0 {
		t.Fatal("no tasks lost to the undetected blackout")
	}
	if g.Shed != 0 {
		t.Errorf("no buffer configured, yet tasks were shed: %+v", g)
	}
	// With no recovery scheduled, the monitor does flag both outages —
	// at heartbeat 500 plus one more missed beat: detection at t=1000,
	// 900 ticks after the t=100 failures. Long after the last arrival,
	// but deterministic, and the remaining in-flight retries then drop
	// at the gate (no believed-healthy datacenter, no buffer).
	if g.Detections != 2 || g.DetectionLagTicks != 1800 {
		t.Errorf("detections=%d lag=%d, want both outages flagged at t=1000 (2 detections, 1800 total lag)", g.Detections, g.DetectionLagTicks)
	}
	if g.Bounced != g.Retries+g.LostUndetected {
		t.Errorf("every bounce must end in a retry or a loss: bounced %d, retries %d, lost %d", g.Bounced, g.Retries, g.LostUndetected)
	}
	perDCLost := eng.LostUndetectedByDC()
	sum := 0
	for _, n := range perDCLost {
		sum += n
	}
	if sum != g.LostUndetected {
		t.Errorf("per-DC loss attribution sums to %d, want %d (%v)", sum, g.LostUndetected, perDCLost)
	}
	if perDCLost[0] == 0 || perDCLost[1] == 0 {
		t.Errorf("round-robin bouncing must lose tasks against both datacenters: %v", perDCLost)
	}
	if st.Total != 150 {
		t.Fatalf("cluster accounted %d of 150 tasks", st.Total)
	}
	assertExitAccounting(t, st, perDC, g)
}

// detectStormScenario is the full detection workout: three staggered
// dc-fails (the last under the Drop policy) blacking the believed-healthy
// set out mid-trial, staggered recoveries with probation, retries with
// backoff, and a small deadline-aware gate buffer that must overflow.
func detectStormScenario() *scenario.Scenario {
	return scenario.New("detect-storm").
		DCFailAt(100, 0, scenario.Requeue).
		DCFailAt(120, 1, scenario.Requeue).
		DCFailAt(140, 2, scenario.Drop).
		DCRecoverAt(250, 0).
		DCRecoverAt(270, 1).
		DCRecoverAt(300, 2).
		WithFailover(scenario.FailoverPolicy{
			Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 25, SuspectAfter: 2,
			Probation: 30, BounceAfter: 10, MaxRetries: 3, RetryBase: 5, RetryCap: 20,
			GateBuffer: 16, Shed: scenario.ShedDeadlineAware,
		})
}

// TestClusterParallelStepDeterminismDetection extends the parallel
// drivers' byte-identity contract to the detection layer: with heartbeat
// detection, bounded buffering with deadline-aware shedding, and
// retry/backoff all active, both the barrier driver (stateful routes) and
// the wide-window driver (round-robin) must reproduce the sequential
// record — traces, dispatch log, statistics, and every gate counter — at
// every GOMAXPROCS setting. Runs under -race via make race-cluster.
func TestClusterParallelStepDeterminismDetection(t *testing.T) {
	matrix := clusterPET(t)
	sc := detectStormScenario()
	for _, route := range []string{"pet-aware", "least-queued", "round-robin"} {
		t.Run(route, func(t *testing.T) {
			wantBlob, _, wantStats, wantPerDC := clusterTrialMode(t, matrix, "PAM", route, sc, false)
			for _, gmp := range []int{1, 4, 8} {
				prev := runtime.GOMAXPROCS(gmp)
				blob, _, stats, perDC := clusterTrialMode(t, matrix, "PAM", route, sc, true)
				runtime.GOMAXPROCS(prev)
				if string(blob) != string(wantBlob) {
					t.Fatalf("GOMAXPROCS=%d: parallel detection record diverges from sequential (%d vs %d bytes)",
						gmp, len(blob), len(wantBlob))
				}
				if !reflect.DeepEqual(stats, wantStats) {
					t.Fatalf("GOMAXPROCS=%d: cluster stats diverge:\nseq: %+v\npar: %+v", gmp, wantStats, stats)
				}
				if !reflect.DeepEqual(perDC, wantPerDC) {
					t.Fatalf("GOMAXPROCS=%d: per-DC stats diverge", gmp)
				}
			}
		})
	}
}

// TestGoldenClusterDetect commits the full deterministic record of a
// detection-enabled storm trial — gate counters included — alongside the
// oracle goldens. Regenerate with -update and review like any scheduling
// change.
func TestGoldenClusterDetect(t *testing.T) {
	blob, _, _, _ := clusterTrial(t, clusterPET(t), "PAM", "pet-aware", detectStormScenario())
	checkGolden(t, "golden_cluster_detect.csv", blob)
}

// TestFailoverConfigPrecedence: an explicit Config policy wins over the
// scenario's, and a malformed policy is rejected at New even on a static
// scenario (which skips cluster scenario validation entirely).
func TestFailoverConfigPrecedence(t *testing.T) {
	matrix := clusterPET(t)
	sc := scenario.New("pol").WithFailover(scenario.FailoverPolicy{GateBuffer: 4})
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, sc)
	cfg.Failover = &scenario.FailoverPolicy{Kind: scenario.FailoverHeartbeat}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fo := eng.Failover(); !fo.Detection() || fo.GateBuffer != 0 {
		t.Fatalf("explicit Config policy did not win: %+v", fo)
	}
	bad := clusterConfig(t, "PAM", matrix, 3, nil, nil) // static scenario
	bad.Failover = &scenario.FailoverPolicy{GateBuffer: -1}
	if _, err := New(bad); err == nil {
		t.Fatal("malformed failover policy accepted on a static scenario")
	}
}
