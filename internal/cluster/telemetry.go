package cluster

import (
	"fmt"

	"taskprune/internal/telemetry"
)

// engineProbes is the cluster engine's telemetry shard: dispatch outcomes,
// gate-buffer behaviour, and believed-vs-true per-DC health. The shard is
// owned by the engine goroutine and reads ONLY engine-owned state — never
// the per-DC simulators, which may be stepping on worker goroutines when
// the wide-window driver samples mid-window. Per-DC queue depths and fleet
// state live in each datacenter's own simulator shard instead.
type engineProbes struct {
	// Event-path counters (engine goroutine only).
	arrivals *telemetry.Counter
	admitted *telemetry.Counter
	injected *telemetry.Counter

	// Sample-time mirrors of metrics.GateStats.
	gateDropped   *telemetry.Counter
	gateShed      *telemetry.Counter
	lostUndetect  *telemetry.Counter
	retries       *telemetry.Counter
	bounced       *telemetry.Counter
	buffered      *telemetry.Counter
	detections    *telemetry.Counter
	detectLagSum  *telemetry.Counter
	gateMaxDepth  *telemetry.Gauge
	detectLagMean *telemetry.Gauge

	// Sample-time gauges over engine-owned state.
	gateDepth    *telemetry.Gauge
	dcsInService *telemetry.Gauge
	dcsHealthy   *telemetry.Gauge
	arrivalRate  *telemetry.Gauge
	dcInService  []*telemetry.Gauge
	dcHealthy    []*telemetry.Gauge

	// Distribution of detection lags (ticks from true failure to the
	// monitor marking the datacenter down), observed at each detection.
	detectLag *telemetry.Histogram
}

// detectLagBounds buckets detection lag in ticks.
var detectLagBounds = []float64{10, 25, 50, 100, 250, 500, 1000}

func newEngineProbes(r *telemetry.Registry, dcs int) engineProbes {
	p := engineProbes{
		arrivals:      r.Counter("gate_arrivals_total", "fresh arrivals reaching the dispatcher gate"),
		admitted:      r.Counter("gate_admitted_total", "arrivals routed straight into a datacenter"),
		injected:      r.Counter("gate_injected_total", "failover/buffer/retry tasks injected into a datacenter"),
		gateDropped:   r.Counter("gate_dropped_total", "tasks dropped at the gate (no believed-healthy DC, no buffer)"),
		gateShed:      r.Counter("gate_shed_total", "tasks shed from the bounded gate buffer"),
		lostUndetect:  r.Counter("gate_lost_undetected_total", "tasks lost bouncing off undetected outages"),
		retries:       r.Counter("gate_retries_total", "re-dispatch attempts after bounced dispatches"),
		bounced:       r.Counter("gate_bounced_total", "dispatches that landed on a down-but-undetected DC"),
		buffered:      r.Counter("gate_buffered_total", "tasks that entered the gate buffer"),
		detections:    r.Counter("gate_detections_total", "outages the health monitor flagged"),
		detectLagSum:  r.Counter("gate_detection_lag_ticks_total", "summed detection lag over all detections"),
		gateMaxDepth:  r.Gauge("gate_max_queue_depth", "deepest the gate buffer ever got"),
		detectLagMean: r.Gauge("gate_detection_lag_mean", "mean detection lag in ticks"),
		gateDepth:     r.Gauge("gate_queue_depth", "tasks currently waiting in the gate buffer"),
		dcsInService:  r.Gauge("dcs_in_service", "datacenters actually up (ground truth)"),
		dcsHealthy:    r.Gauge("dcs_healthy", "datacenters the dispatcher believes are up"),
		arrivalRate:   r.Gauge("gate_arrival_rate", "gate arrivals per simulated tick over the last sample interval"),
		detectLag:     r.Histogram("gate_detection_lag", "detection lag per flagged outage, in ticks", detectLagBounds),
	}
	if r != nil {
		for d := 0; d < dcs; d++ {
			p.dcInService = append(p.dcInService, r.Gauge(dcMetric("dc%d_in_service", d), "ground-truth up/down flag for this datacenter"))
			p.dcHealthy = append(p.dcHealthy, r.Gauge(dcMetric("dc%d_healthy", d), "dispatcher's believed up/down flag for this datacenter"))
		}
	}
	return p
}

func dcMetric(format string, d int) string {
	return fmt.Sprintf(format, d)
}

// prepareSample refreshes the engine shard just before a row is recorded.
// Reads engine-owned state only (gate buffer, health flags, GateStats);
// deterministic given the engine's event sequence, which is identical
// across the sequential and parallel drivers.
func (e *Engine) prepareSample() {
	p := &e.pr
	p.gateDepth.Set(float64(len(e.buf)))
	inService, healthy := 0, 0
	for i, d := range e.dcs {
		if d.alive {
			inService++
		}
		if d.healthy {
			healthy++
		}
		if p.dcInService != nil {
			p.dcInService[i].Set(boolGauge(d.alive))
			p.dcHealthy[i].Set(boolGauge(d.healthy))
		}
	}
	p.dcsInService.Set(float64(inService))
	p.dcsHealthy.Set(float64(healthy))
	g := e.gateStats
	p.gateDropped.Sync(int64(g.Dropped))
	p.gateShed.Sync(int64(g.Shed))
	p.lostUndetect.Sync(int64(g.LostUndetected))
	p.retries.Sync(int64(g.Retries))
	p.bounced.Sync(int64(g.Bounced))
	p.buffered.Sync(int64(g.Buffered))
	p.detections.Sync(int64(g.Detections))
	p.detectLagSum.Sync(g.DetectionLagTicks)
	p.gateMaxDepth.Set(float64(g.MaxQueueDepth))
	lagMean := 0.0
	if g.Detections > 0 {
		lagMean = float64(g.DetectionLagTicks) / float64(g.Detections)
	}
	p.detectLagMean.Set(lagMean)
	arr := p.arrivals.Value()
	p.arrivalRate.Set(float64(arr-e.lastArrivals) / float64(e.sampler.Every()))
	e.lastArrivals = arr
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Telemetry returns the engine's own probe registry (nil when disabled).
// Per-DC shards are reachable via DCList()[i].Sim().Telemetry().
func (e *Engine) Telemetry() *telemetry.Registry { return e.tel }

// TelemetrySampler returns the engine shard's time-series sampler (nil
// when disabled).
func (e *Engine) TelemetrySampler() *telemetry.Sampler { return e.sampler }

// TelemetrySamplers returns every shard's sampler with its export scope —
// the engine ("cluster") followed by each datacenter ("dc0".."dcN") — for
// CSV/JSON time-series export. Call only after RunSource returns (the
// barrier at which worker shards become readable); empty when disabled.
func (e *Engine) TelemetrySamplers() []telemetry.ScopedSampler {
	if e.tel == nil {
		return nil
	}
	out := []telemetry.ScopedSampler{{Scope: "cluster", S: e.sampler}}
	for _, d := range e.dcs {
		out = append(out, telemetry.ScopedSampler{Scope: dcMetric("dc%d", d.index), S: d.sim.TelemetrySampler()})
	}
	return out
}

// TelemetryShards snapshots every shard's registry with its export scope,
// for Prometheus/JSON snapshot export. Same barrier contract as
// TelemetrySamplers.
func (e *Engine) TelemetryShards() []telemetry.Shard {
	if e.tel == nil {
		return nil
	}
	out := []telemetry.Shard{{Scope: "cluster", Snap: e.tel.Snapshot()}}
	for _, d := range e.dcs {
		out = append(out, telemetry.Shard{Scope: dcMetric("dc%d", d.index), Snap: d.sim.Telemetry().Snapshot()})
	}
	return out
}

// Phases returns the merged phase-timer breakdown — the engine's dispatch
// spans plus every datacenter's admit/step/eval/convolve spans. Nil when
// Config.Phases is off; call only after RunSource returns.
func (e *Engine) Phases() *telemetry.PhaseTimer {
	if e.phases == nil {
		return nil
	}
	out := telemetry.NewPhaseTimer()
	out.Merge(e.phases)
	for _, pt := range e.dcPhases {
		out.Merge(pt)
	}
	return out
}
