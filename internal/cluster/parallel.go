// Parallel per-DC stepping. The engine's event order — arrivals first,
// then cluster-scoped events, then per-DC events by index — already makes
// every dispatch decision a synchronization point and everything between
// two sync points embarrassingly parallel: per-DC internal events touch
// only their datacenter's private simulator core, the shared cluster
// collector is interleaving-invariant (metrics.Stream.Share), and the
// task pool is a sync.Pool. The drivers below exploit exactly that
// structure, in two flavors keyed on what the routing policy reads:
//
//   - Barrier-per-arrival (any policy): the trial is cut at every sync
//     point S (next arrival, next dc-fail/dc-recover, or next gate event).
//     One phase hands each datacenter its work up to S — the arrival
//     admitted at the previous sync point, overlapped with every other
//     datacenter's internal events below S — and the engine waits for all
//     of them before routing at S. Stateful policies (least-queued,
//     pet-aware) therefore see bit-for-bit the queue state the sequential
//     interleave would have shown them.
//
//   - Wide-window pipelining (state-free policies, StateFreeRouter): when
//     Pick provably reads nothing but the policy's own cursor and the
//     believed-healthy set, the engine routes the whole window up to the
//     next cluster-scoped or gate event ahead of time, streaming arrivals
//     into bounded per-DC channels while the workers admit and step
//     concurrently; barriers remain only at those engine-level events and
//     at end of stream. The window bound is re-read after every dispatch:
//     routing into a down-but-undetected datacenter plants a retry gate
//     event that may now precede the next arrival.
//
// Gate events (detection, trust, salvage, retry — failover.go) fire on the
// engine goroutine with every worker quiescent at that tick, so their
// simulator injections land in exactly the sequential call order.
//
// Both drivers replay byte-identically against the sequential interleave
// (traces, dispatch log, statistics) — TestClusterParallelStepDeterminism
// pins this across GOMAXPROCS settings under the race detector.
package cluster

import (
	"math"
	"sync"

	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// StateFreeRouter marks a Policy whose Pick depends only on the policy's
// own internal state and each datacenter's Alive flag (the dispatcher's
// health belief — engine-owned, mutated only between barriers) — never on
// queue contents, machine state, or anything else a concurrently stepping
// simulator mutates. The engine pipelines such policies through the
// wide-window driver; a policy that reads more than it declares here
// would race and lose replay determinism, so implement StateFree with
// care (RoundRobin: a cursor over the believed-healthy set, nothing else).
type StateFreeRouter interface {
	Policy
	StateFree() bool
}

// StateFree implements StateFreeRouter: a round-robin pick reads the
// cursor and the alive flags, both owned by the engine goroutine.
func (p *RoundRobin) StateFree() bool { return true }

// wideWindowBuffer bounds each datacenter's in-flight arrival channel in
// the wide-window driver; a full channel backpressures the dispatcher.
const wideWindowBuffer = 128

// dcWork is one unit handed to a datacenter worker: optionally admit one
// task at its arrival tick (internal events strictly before that tick are
// processed first), then burn internal events strictly below horizon.
// Events at exactly horizon stay pending — the next sync point wins ties.
type dcWork struct {
	admit   *task.Task
	horizon int64
	ack     bool // reply on done once handled (a barrier edge)
}

// dcWorker owns one datacenter's goroutine for the lifetime of a parallel
// run. err holds the first Admit failure; the worker keeps draining its
// channel afterwards (acks included) so the engine never blocks, and the
// engine reads err only after receiving an ack — the channel receive is
// the happens-before edge.
type dcWorker struct {
	dc   *DC
	work chan dcWork
	done chan struct{}
	err  error
}

func (w *dcWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for m := range w.work {
		if w.err == nil && m.admit != nil {
			w.dc.sim.StepUntil(m.admit.Arrival)
			w.err = w.dc.sim.Admit(m.admit)
		}
		if w.err == nil {
			w.dc.sim.StepUntil(m.horizon)
		}
		if m.ack {
			w.done <- struct{}{}
		}
	}
}

// parallelRunner drives one parallel trial: the engine plus its worker
// set and the per-phase scratch.
type parallelRunner struct {
	e       *Engine
	workers []*dcWorker
	sent    []int // scratch: worker indices participating in the phase
}

// runParallel steps the datacenters concurrently. It returns only after
// every worker goroutine has exited, so the caller may touch the
// simulators (Finalize) freely afterwards.
func (e *Engine) runParallel(src workload.Source) error {
	e.collector.Share()
	r := &parallelRunner{e: e, sent: make([]int, 0, len(e.dcs))}
	var wg sync.WaitGroup
	for _, d := range e.dcs {
		w := &dcWorker{dc: d, work: make(chan dcWork, wideWindowBuffer), done: make(chan struct{}, 1)}
		r.workers = append(r.workers, w)
		wg.Add(1)
		go w.loop(&wg)
	}
	defer func() {
		for _, w := range r.workers {
			close(w.work)
		}
		wg.Wait()
	}()
	if sf, ok := e.policy.(StateFreeRouter); ok && sf.StateFree() {
		return r.runWide(src)
	}
	return r.runBarrier(src)
}

// nextClusterTick peeks the engine's own dc-fail/dc-recover schedule.
func (e *Engine) nextClusterTick() (int64, bool) {
	if e.evPos < len(e.clusterEvents) {
		return e.clusterEvents[e.evPos].Tick, true
	}
	return 0, false
}

// runBarrier is the any-policy driver: a phase per sync point, the
// pending admit overlapped with the other datacenters' stepping.
//
// Loop invariant: entering an iteration, every datacenter has processed
// exactly its internal events with tick strictly below the previous sync
// point, and the arrival routed there (if any) is still pending — so the
// phase below, whose horizon is the next sync point, first lands that
// admit at its own tick and then steps everyone forward, reproducing the
// sequential order: admit at S, then internal events in [S, S'), then the
// routing decision at S'.
func (r *parallelRunner) runBarrier(src workload.Source) error {
	e := r.e
	next, hasNext, err := e.pull(src)
	if err != nil {
		return err
	}
	var pending *task.Task
	pendingDC := -1
	for {
		// The next engine-level sync point, in the sequential tie order:
		// arrivals beat cluster events beat gate events at the same tick.
		ct, hasCluster := e.nextClusterTick()
		gt, hasGate := e.nextGateTick()
		engineSync := int64(math.MaxInt64)
		isCluster := false
		if hasGate {
			engineSync = gt
		}
		if hasCluster && ct <= engineSync {
			engineSync, isCluster = ct, true
		}
		arrivalSync := hasNext && next.Arrival <= engineSync
		horizon := engineSync
		if arrivalSync {
			horizon = next.Arrival
		}
		if err := r.phase(horizon, pendingDC, pending); err != nil {
			return err
		}
		pending, pendingDC = nil, -1
		switch {
		case arrivalSync:
			t := next
			d, admit, rerr := e.routeArrival(t)
			if rerr != nil {
				return rerr
			}
			if admit {
				pending, pendingDC = t, d
			}
			if next, hasNext, err = e.pull(src); err != nil {
				return err
			}
		case isCluster:
			e.now = ct
			if err := e.stepClusterEvent(); err != nil {
				return err
			}
		case hasGate:
			e.now = gt
			if err := e.stepGateEvent(); err != nil {
				return err
			}
		default:
			return nil // the MaxInt64 phase above drained every queue
		}
	}
}

// phase fans one sync window out to the workers and waits for all of
// them: datacenter admitDC admits the pending arrival (nil for a
// cluster-event or drain phase), every datacenter with internal events
// below horizon steps them, idle datacenters are skipped entirely.
// Peeking their queues from here is safe — workers are quiescent between
// phases.
func (r *parallelRunner) phase(horizon int64, admitDC int, admit *task.Task) error {
	r.sent = r.sent[:0]
	for i, w := range r.workers {
		m := dcWork{horizon: horizon, ack: true}
		if i == admitDC {
			m.admit = admit
		} else if t, ok := r.e.dcs[i].sim.NextEventTick(); !ok || t >= horizon {
			continue
		}
		w.work <- m
		r.sent = append(r.sent, i)
	}
	var firstErr error
	for _, i := range r.sent {
		<-r.workers[i].done
		if err := r.workers[i].err; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// runWide is the state-free driver: the dispatcher routes every arrival
// up to the next engine-level event (cluster-scoped or gate) in one go —
// the policy's picks cannot depend on how far the workers have gotten —
// and each datacenter pipelines its admits and internal events
// concurrently with the dispatch loop. Gate drops, buffering, and bounce
// scheduling fold into engine-owned state from here while workers observe
// exits from their side; Share makes the collector safe and
// order-invariant. The window bound is recomputed after every dispatch
// because a dispatch into a down-but-undetected datacenter plants a retry
// gate event, possibly before the next arrival.
func (r *parallelRunner) runWide(src workload.Source) error {
	e := r.e
	next, hasNext, err := e.pull(src)
	if err != nil {
		return err
	}
	for {
		for hasNext {
			bound := int64(math.MaxInt64)
			if ct, has := e.nextClusterTick(); has {
				bound = ct
			}
			if gt, has := e.nextGateTick(); has && gt < bound {
				bound = gt
			}
			if next.Arrival > bound {
				break
			}
			t := next
			d, admit, rerr := e.routeArrival(t)
			if rerr != nil {
				return rerr
			}
			if admit {
				r.workers[d].work <- dcWork{admit: t, horizon: t.Arrival}
			}
			if next, hasNext, err = e.pull(src); err != nil {
				return err
			}
		}
		ct, hasCluster := e.nextClusterTick()
		gt, hasGate := e.nextGateTick()
		horizon := int64(math.MaxInt64)
		isCluster := false
		if hasGate {
			horizon = gt
		}
		if hasCluster && ct <= horizon {
			horizon, isCluster = ct, true
		}
		if err := r.barrierAll(horizon); err != nil {
			return err
		}
		switch {
		case isCluster:
			e.now = ct
			if err := e.stepClusterEvent(); err != nil {
				return err
			}
		case hasGate:
			e.now = gt
			if err := e.stepGateEvent(); err != nil {
				return err
			}
		default:
			return nil // the MaxInt64 barrier drained every datacenter
		}
	}
}

// barrierAll quiesces every datacenter at horizon: queued admits land,
// internal events below horizon run, and the engine regains exclusive
// access to all simulator state (failover draining, finalization).
func (r *parallelRunner) barrierAll(horizon int64) error {
	for _, w := range r.workers {
		w.work <- dcWork{horizon: horizon, ack: true}
	}
	var firstErr error
	for _, w := range r.workers {
		<-w.done
		if err := w.err; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
