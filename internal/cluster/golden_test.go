package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// Golden cluster regression tests: the full sharded decision stream of a
// 3-DC PAM trial with one dc-fail/dc-recover cycle — dispatcher routing
// log, per-datacenter decision traces, and aggregated statistics — is
// committed under testdata/ and must replay byte for byte, for both
// failover policies. Regenerate after an intentional behavior change with
//
//	go test ./internal/cluster/ -run Golden -update
//
// and review the diff like any other scheduling change.
var updateGolden = flag.Bool("update", false, "rewrite golden cluster trace files")

// clusterTrial runs the fixed 3-DC golden configuration (150 tasks, seed
// 42, PAM, PET-aware routing over the 3×6 test PET) under the given
// scenario and renders the full deterministic record: statistics, the
// dispatch log, and each datacenter's decision trace.
func clusterTrial(t testing.TB, matrix *pet.Matrix, heuristic, route string, sc *scenario.Scenario) ([]byte, []Dispatch, metrics.TrialStats, []metrics.TrialStats) {
	t.Helper()
	return clusterTrialMode(t, matrix, heuristic, route, sc, false)
}

// clusterTrialMode is clusterTrial with the Parallel knob exposed: the
// parallel determinism tests render both drivers through the same code
// and demand byte equality.
func clusterTrialMode(t testing.TB, matrix *pet.Matrix, heuristic, route string, sc *scenario.Scenario, parallel bool) ([]byte, []Dispatch, metrics.TrialStats, []metrics.TrialStats) {
	t.Helper()
	const dcs = 3
	policy, err := NewPolicy(route)
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(t, heuristic, matrix, dcs, policy, sc)
	cfg.RecordDispatch = true
	cfg.Parallel = parallel
	cfg.Traces = make([]*trace.Recorder, dcs)
	for d := range cfg.Traces {
		cfg.Traces[d] = trace.NewRecorder()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := clusterWorkload(t, matrix, 150, 42)
	st, perDC, err := eng.RunSource(workload.FromTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}

	scName := "static"
	if sc != nil {
		scName = sc.Name
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# cluster %s route=%s dcs=%d scenario=%s\n", heuristic, route, dcs, scName)
	fmt.Fprintln(&buf, "# stats scope,total,completed,missed,dropped,approx,robustness_pct")
	writeStats := func(scope string, s metrics.TrialStats) {
		fmt.Fprintf(&buf, "%s,%d,%d,%d,%d,%d,%.6f\n", scope, s.Total, s.Completed, s.Missed, s.Dropped, s.Approx, s.RobustnessPct)
	}
	writeStats("cluster", st)
	for d, s := range perDC {
		writeStats(fmt.Sprintf("dc%d", d), s)
	}
	// Gate counters join the record only when a failover policy is on, so
	// the pre-existing nil-policy goldens stay byte-identical.
	if g := eng.Gate(); eng.Failover().Enabled() {
		fmt.Fprintln(&buf, "# gate dropped,shed,lost,retries,bounced,buffered,maxdepth,detections,lag")
		fmt.Fprintf(&buf, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			g.Dropped, g.Shed, g.LostUndetected, g.Retries, g.Bounced, g.Buffered, g.MaxQueueDepth, g.Detections, g.DetectionLagTicks)
		fmt.Fprintf(&buf, "# lost-per-dc %v\n", eng.LostUndetectedByDC())
	}
	fmt.Fprintln(&buf, "# dispatch tick,task,dc,failover")
	for _, d := range eng.Dispatches() {
		fo := 0
		if d.Failover {
			fo = 1
		}
		fmt.Fprintf(&buf, "%d,%d,%d,%d\n", d.Tick, d.TaskID, d.DC, fo)
	}
	for d, rec := range cfg.Traces {
		fmt.Fprintf(&buf, "# dc%d trace\n", d)
		if err := rec.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), eng.Dispatches(), st, perDC
}

func checkGolden(t *testing.T, file string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if bytes.Equal(want, got) {
		return
	}
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Fatalf("%s: cluster record diverges at line %d:\n  golden: %s\n  got:    %s",
				file, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("%s: record length changed: golden %d lines, got %d", file, len(wantLines), len(gotLines))
}

func TestGoldenClusterOutageRequeue(t *testing.T) {
	blob, _, _, _ := clusterTrial(t, clusterPET(t), "PAM", "pet-aware", outageScenario(scenario.Requeue))
	checkGolden(t, "golden_cluster_requeue.csv", blob)
}

func TestGoldenClusterOutageDrop(t *testing.T) {
	blob, _, _, _ := clusterTrial(t, clusterPET(t), "PAM", "pet-aware", outageScenario(scenario.Drop))
	checkGolden(t, "golden_cluster_drop.csv", blob)
}
