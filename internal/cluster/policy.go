package cluster

import "taskprune/internal/task"

// Policy routes each dispatched task to a datacenter. Pick sees the full
// DC slice — dead datacenters included, which it must skip — and returns
// the index of an alive one; the engine only calls it when at least one DC
// is alive. Policies must be deterministic: an identical sequence of Pick
// calls over identical cluster states yields identical picks, which is
// what keeps sharded replays byte-identical. A policy instance belongs to
// one engine (round-robin carries a cursor); build a fresh one per trial.
type Policy interface {
	// Name returns the short label used in flags and figures.
	Name() string
	// Pick chooses an alive datacenter for t at the given dispatch tick
	// (the task's arrival, or the dc-fail tick during failover).
	Pick(now int64, t *task.Task, dcs []*DC) int
}

// NewPolicy builds a dispatch policy by name: "rr"/"round-robin",
// "lq"/"least-queued", or "pet"/"pet-aware".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "rr", "round-robin":
		return &RoundRobin{}, nil
	case "lq", "least-queued":
		return LeastQueued{}, nil
	case "pet", "pet-aware":
		return PETAware{}, nil
	default:
		return nil, errUnknownPolicy(name)
	}
}

// PolicyNames lists the canonical dispatch-policy names.
func PolicyNames() []string { return []string{"round-robin", "least-queued", "pet-aware"} }

// RoundRobin cycles through the alive datacenters in index order, skipping
// dead ones; with a single DC it degenerates to "always DC 0", which is
// what makes a 1-DC cluster byte-identical to the single-fleet engine.
type RoundRobin struct {
	next int
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(now int64, t *task.Task, dcs []*DC) int {
	n := len(dcs)
	for i := 0; i < n; i++ {
		d := (p.next + i) % n
		if dcs[d].Alive() {
			p.next = (d + 1) % n
			return d
		}
	}
	return -1
}

// LeastQueued routes to the alive datacenter holding the fewest tasks
// (batch queue plus every machine queue, executing included); ties break
// toward the lowest index.
type LeastQueued struct{}

// Name implements Policy.
func (LeastQueued) Name() string { return "least-queued" }

// Pick implements Policy.
func (LeastQueued) Pick(now int64, t *task.Task, dcs []*DC) int {
	best, bestLoad := -1, 0
	for i, d := range dcs {
		if !d.Alive() {
			continue
		}
		load := d.QueuedLoad()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// PETAware scores each alive datacenter by the probability its best
// machine completes the task on time: a machine's expected start is its
// ExpectedReady (queue backlog under current degradation factors), and the
// on-time probability is its scaled execution profile's CDF at the
// remaining slack — the same pet.Matrix/PMF machinery the mapping
// heuristics evaluate with, reduced to one O(1) prefix-sum lookup per
// machine, so dispatch stays allocation-free. Ties break toward the
// lighter queue, then the lower index.
type PETAware struct{}

// Name implements Policy.
func (PETAware) Name() string { return "pet-aware" }

// Pick implements Policy.
func (PETAware) Pick(now int64, t *task.Task, dcs []*DC) int {
	best, bestScore, bestLoad := -1, 0.0, 0
	for i, d := range dcs {
		if !d.Alive() {
			continue
		}
		score := d.onTimeScore(now, t)
		load := d.QueuedLoad()
		if best == -1 || score > bestScore || (score == bestScore && load < bestLoad) {
			best, bestScore, bestLoad = i, score, load
		}
	}
	return best
}
