package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"taskprune/internal/metrics"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// TestClusterEquivalenceSingleDC pins the acceptance bar of the sharding
// layer: a 1-DC cluster under the round-robin policy is not an
// approximation of the single-fleet engine, it IS the single-fleet engine
// — byte-identical decision traces and identical trial statistics, for
// both the cluster aggregate and the lone datacenter's own collector,
// across heuristic classes and under fleet churn (including a drift ramp,
// which exercises the staircase expansion through both paths).
func TestClusterEquivalenceSingleDC(t *testing.T) {
	churn := scenario.New("churn").
		DegradeAt(80, 1, 2).
		FailAt(150, 2, scenario.Requeue).
		RecoverAt(320, 2).
		DriftAt(200, 500, 0, 1, 3, 4)
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		for _, variant := range []struct {
			label string
			sc    *scenario.Scenario
		}{{"static", nil}, {"churn", churn}} {
			t.Run(name+"/"+variant.label, func(t *testing.T) {
				singleTrace, singleStats := runSingleFleet(t, name, variant.sc)
				clusterTraceCSV, clusterStats, dcStats := runOneDCCluster(t, name, variant.sc)
				if !bytes.Equal(singleTrace, clusterTraceCSV) {
					divergeAt(t, singleTrace, clusterTraceCSV)
				}
				if !reflect.DeepEqual(singleStats, clusterStats) {
					t.Errorf("cluster aggregate stats diverge:\n single: %+v\ncluster: %+v", singleStats, clusterStats)
				}
				if !reflect.DeepEqual(singleStats, dcStats) {
					t.Errorf("datacenter stats diverge:\n single: %+v\n     dc: %+v", singleStats, dcStats)
				}
			})
		}
	}
}

func runSingleFleet(t *testing.T, name string, sc *scenario.Scenario) ([]byte, metrics.TrialStats) {
	t.Helper()
	matrix := clusterPET(t)
	cfg, err := simulator.ConfigFor(name, matrix)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trim = 0
	cfg.Scenario = sc
	rec := trace.NewRecorder()
	cfg.Trace = rec
	sim, err := simulator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(clusterWorkload(t, matrix, 150, 42))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

func runOneDCCluster(t *testing.T, name string, sc *scenario.Scenario) ([]byte, metrics.TrialStats, metrics.TrialStats) {
	t.Helper()
	matrix := clusterPET(t)
	cfg := clusterConfig(t, name, matrix, 1, &RoundRobin{}, sc)
	rec := trace.NewRecorder()
	cfg.Traces = []*trace.Recorder{rec}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, perDC, err := eng.RunSource(workload.FromTasks(clusterWorkload(t, matrix, 150, 42)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st, perDC[0]
}

func divergeAt(t *testing.T, want, got []byte) {
	t.Helper()
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Fatalf("decision trace diverges at line %d:\n single: %s\ncluster: %s", i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("trace length changed: single %d lines, cluster %d", len(wantLines), len(gotLines))
}
