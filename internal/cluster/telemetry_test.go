package cluster

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"taskprune/internal/simulator"
	"taskprune/internal/telemetry"
	"taskprune/internal/workload"
)

// telemetryTrial runs the fixed 3-DC detect-storm configuration with
// telemetry and phase timing enabled and returns the engine alongside the
// rendered multi-shard time-series CSV.
func telemetryTrial(t testing.TB, route string, parallel bool) (*Engine, []byte) {
	t.Helper()
	matrix := clusterPET(t)
	policy, err := NewPolicy(route)
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(t, "PAM", matrix, 3, policy, detectStormScenario())
	cfg.RecordDispatch = true
	cfg.Parallel = parallel
	cfg.Telemetry = &telemetry.Options{SampleEvery: 50, RingCap: 256}
	cfg.Phases = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := clusterWorkload(t, matrix, 150, 42)
	if _, _, err := eng.RunSource(workload.FromTasks(tasks)); err != nil {
		t.Fatal(err)
	}

	var series bytes.Buffer
	if err := telemetry.WriteSamplersCSV(&series, eng.TelemetrySamplers()); err != nil {
		t.Fatal(err)
	}
	return eng, series.Bytes()
}

// TestGoldenClusterTelemetryDetect pins the sampler semantics: the full
// multi-shard time-series CSV of the 3-DC detection-storm trial is
// committed under testdata/ and must replay byte for byte. Regenerate
// with -update after an intentional probe change and review the diff.
func TestGoldenClusterTelemetryDetect(t *testing.T) {
	_, series := telemetryTrial(t, "pet-aware", false)
	checkGolden(t, "golden_telemetry_detect.csv", series)
}

// TestTelemetryDoesNotPerturbScheduling: the decision stream of the
// detect-storm trial with telemetry + phase timers enabled must be
// byte-identical to the committed golden produced with them disabled —
// the zero-cost contract seen from the scheduling side.
func TestTelemetryDoesNotPerturbScheduling(t *testing.T) {
	matrix := clusterPET(t)
	sc := detectStormScenario()
	_, wantDispatch, _, _ := clusterTrial(t, matrix, "PAM", "pet-aware", sc)

	policy, err := NewPolicy("pet-aware")
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(t, "PAM", matrix, 3, policy, sc)
	cfg.RecordDispatch = true
	cfg.Telemetry = &telemetry.Options{SampleEvery: 50, RingCap: 256}
	cfg.Phases = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RunSource(workload.FromTasks(clusterWorkload(t, matrix, 150, 42))); err != nil {
		t.Fatal(err)
	}
	got := eng.Dispatches()
	if len(got) != len(wantDispatch) {
		t.Fatalf("telemetry changed the dispatch count: %d vs %d", len(got), len(wantDispatch))
	}
	for i := range got {
		if got[i] != wantDispatch[i] {
			t.Fatalf("telemetry perturbed dispatch %d: %+v vs %+v", i, got[i], wantDispatch[i])
		}
	}
}

// TestClusterParallelTelemetryDeterminism extends the parallel byte-identity
// contract to the telemetry layer: every shard's time-series rows — engine
// gate probes and per-DC simulator probes — must be byte-identical between
// the sequential driver and both parallel drivers (barrier for stateful
// routes, wide-window for round-robin) at every GOMAXPROCS setting. Runs
// under -race via make race-telemetry.
func TestClusterParallelTelemetryDeterminism(t *testing.T) {
	for _, route := range []string{"pet-aware", "least-queued", "round-robin"} {
		t.Run(route, func(t *testing.T) {
			_, want := telemetryTrial(t, route, false)
			for _, gmp := range []int{1, 4, 8} {
				prev := runtime.GOMAXPROCS(gmp)
				_, got := telemetryTrial(t, route, true)
				runtime.GOMAXPROCS(prev)
				if !bytes.Equal(got, want) {
					t.Fatalf("GOMAXPROCS=%d: parallel telemetry rows diverge from sequential (%d vs %d bytes)",
						gmp, len(got), len(want))
				}
			}
		})
	}
}

// TestTelemetryProbeSemantics checks the engine shard's final counters
// against the ground-truth GateStats and the detection-lag histogram
// against the detection count.
func TestTelemetryProbeSemantics(t *testing.T) {
	eng, series := telemetryTrial(t, "pet-aware", false)
	g := eng.Gate()
	if g.Detections == 0 {
		t.Fatalf("detect-storm scenario produced no detections")
	}
	snap := eng.Telemetry().Snapshot()
	vals := map[string]float64{}
	for _, s := range snap.Scalars {
		vals[s.Name] = s.Value
	}
	checks := map[string]float64{
		"gate_detections_total":          float64(g.Detections),
		"gate_detection_lag_ticks_total": float64(g.DetectionLagTicks),
		"gate_max_queue_depth":           float64(g.MaxQueueDepth),
		"gate_dropped_total":             float64(g.Dropped),
		"gate_shed_total":                float64(g.Shed),
		"gate_retries_total":             float64(g.Retries),
		"gate_bounced_total":             float64(g.Bounced),
		"gate_buffered_total":            float64(g.Buffered),
		"gate_lost_undetected_total":     float64(g.LostUndetected),
	}
	for name, want := range checks {
		if vals[name] != want {
			t.Errorf("%s = %v, want %v", name, vals[name], want)
		}
	}
	if wantMean := float64(g.DetectionLagTicks) / float64(g.Detections); vals["gate_detection_lag_mean"] != wantMean {
		t.Errorf("gate_detection_lag_mean = %v, want %v", vals["gate_detection_lag_mean"], wantMean)
	}
	if len(snap.Hists) == 0 || snap.Hists[0].Count != int64(g.Detections) {
		t.Errorf("detection-lag histogram count does not match Detections=%d", g.Detections)
	}
	// The per-DC shards must have accounted every gate-admitted task
	// (injected tasks enter through InjectRequeued and are mirrored by the
	// per-DC requeued/restored counters instead).
	admitted := vals["gate_admitted_total"]
	var dcArrivals float64
	for _, d := range eng.DCList() {
		dsnap := d.Sim().Telemetry().Snapshot()
		for _, s := range dsnap.Scalars {
			if s.Name == "arrivals_total" {
				dcArrivals += s.Value
			}
		}
	}
	if dcArrivals != admitted {
		t.Errorf("per-DC arrivals %v != gate admitted %v", dcArrivals, admitted)
	}
	if !bytes.Contains(series, []byte("# telemetry scope=cluster")) ||
		!bytes.Contains(series, []byte("# telemetry scope=dc2")) {
		t.Fatalf("series CSV missing shard blocks:\n%s", series[:min(len(series), 400)])
	}
}

// TestTelemetryPhaseBreakdown: with Config.Phases on, the merged breakdown
// must carry spans for every phase the trial exercises.
func TestTelemetryPhaseBreakdown(t *testing.T) {
	eng, _ := telemetryTrial(t, "pet-aware", false)
	pt := eng.Phases()
	if pt == nil {
		t.Fatal("Phases() nil with Config.Phases on")
	}
	bd := pt.Breakdown()
	for _, p := range []telemetry.Phase{telemetry.PhaseDispatch, telemetry.PhaseAdmit, telemetry.PhaseStep, telemetry.PhaseEval, telemetry.PhaseConvolve} {
		if bd[p].Count == 0 {
			t.Errorf("phase %s recorded no spans", p)
		}
	}
	var sb strings.Builder
	if err := pt.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dispatch") {
		t.Fatalf("phase table:\n%s", sb.String())
	}
}

// TestTelemetryTemplateValidation: per-DC simulators own their telemetry
// shards and phase timers; a template that smuggles either in is rejected,
// mirroring the existing Trace template rule.
func TestTelemetryTemplateValidation(t *testing.T) {
	matrix := clusterPET(t)
	base := clusterConfig(t, "PAM", matrix, 3, nil, nil)

	bad := base
	bad.Sim.Telemetry = &telemetry.Options{}
	if _, err := New(bad); err == nil {
		t.Error("template-level telemetry options accepted")
	}
	bad = base
	bad.Sim.PhaseTimer = telemetry.NewPhaseTimer()
	if _, err := New(bad); err == nil {
		t.Error("template-level phase timer accepted")
	}
	// Simulator-level knobs still work when used directly.
	simCfg := base.Sim
	simCfg.Machines = []int{0, 1}
	simCfg.Telemetry = &telemetry.Options{SampleEvery: 10}
	simCfg.PhaseTimer = telemetry.NewPhaseTimer()
	if _, err := simulator.New(simCfg); err != nil {
		t.Fatalf("direct simulator telemetry rejected: %v", err)
	}
}
