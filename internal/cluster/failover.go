// Detection-based failover: the engine-side half of scenario.FailoverPolicy.
//
// PR 6 split the mapper's *knowledge* of execution times from the ground
// truth; this file makes the same split for fleet health. Each datacenter
// carries two flags: alive (ground truth, moved by dc-fail/dc-recover) and
// healthy (what the dispatcher believes, moved by the simulated health
// monitor). Under the oracle policy the two are identical and every code
// path below is dormant — the engine is byte-identical to one built before
// this file existed. Under heartbeat detection the belief lags the truth
// in both directions:
//
//   - A failed datacenter keeps its healthy flag until the monitor misses
//     SuspectAfter consecutive heartbeats (observed at multiples of
//     HeartbeatEvery on the cluster clock; a truth event at tick T settles
//     before the heartbeat observation at T). Arrivals routed into that
//     window bounce back after the per-dispatch detection delay and are
//     re-dispatched under capped exponential backoff; tasks drained by the
//     outage are held and only salvaged once the outage becomes known —
//     at detection, or at the recovery that preempts it.
//   - A recovered datacenter re-enters rotation only at its first
//     post-recovery heartbeat plus the probation window.
//
// All of it runs through one engine-level queue of gate events ordered by
// (tick, schedule order), merged into the cluster's deterministic tie
// order as: arrivals, then cluster-scoped truth events, then gate events,
// then per-DC internals. Detection and trust ticks are computed in closed
// form from the heartbeat schedule and the static dc-fail/dc-recover
// list, so the queue holds only O(outages + in-flight retries) events —
// never a periodic heartbeat stream.
//
// The bounded gate buffer rides the same belief: when no datacenter is
// believed healthy, arrivals (and re-dispatched tasks) enqueue in a FIFO
// of GateBuffer capacity instead of dropping at the gate, drain on the
// next believed-health transition, and shed per the policy's ShedKind on
// overflow. The buffer also works under the oracle kind — it is the
// ROADMAP's "arrivals queue rather than drop while every DC is down".
package cluster

import (
	"taskprune/internal/scenario"
	"taskprune/internal/task"
	"taskprune/internal/telemetry"
)

// gateKind classifies an engine-level gate event.
type gateKind int

const (
	// gevDetect marks a datacenter believed-down: the health monitor
	// missed its SuspectAfter-th consecutive heartbeat.
	gevDetect gateKind = iota
	// gevTrust returns a recovered datacenter to rotation after its first
	// post-recovery heartbeat plus the probation window, and drains the
	// gate buffer into the newly believed-healthy fleet.
	gevTrust
	// gevSalvage releases the tasks an undetected dc-fail drained: they
	// re-enter the dispatcher at the tick the outage became known
	// (detection, or the recovery that preempted it).
	gevSalvage
	// gevRedispatch retries a dispatch that bounced off a
	// down-but-undetected datacenter, after the detection delay plus
	// backoff.
	gevRedispatch
)

// gateEvent is one pending entry in the engine's gate queue.
type gateEvent struct {
	tick int64
	seq  int // schedule order: the tie-break within a tick
	kind gateKind
	dc   int

	// epoch guards gevDetect/gevTrust against truth transitions that
	// happened after scheduling: a stale observation must not flip the
	// belief of a datacenter whose truth has since moved on.
	epoch int
	// failTick is the true failure tick behind a gevDetect (lag metric).
	failTick int64
	// attempt counts failed dispatches of a gevRedispatch's task.
	attempt int
	// task is the bounced task of a gevRedispatch.
	task *task.Task
	// tasks are the held drained tasks of a gevSalvage.
	tasks []*task.Task
}

// gateHeap is a binary min-heap of gate events ordered by (tick, seq) —
// the deterministic fire order the drivers share.
type gateHeap []gateEvent

func (h gateHeap) before(i, j int) bool {
	return h[i].tick < h[j].tick || (h[i].tick == h[j].tick && h[i].seq < h[j].seq)
}

func (h gateHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(i, p) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h gateHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.before(l, m) {
			m = l
		}
		if r < len(h) && h.before(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pushGate schedules a gate event, stamping its schedule order.
func (e *Engine) pushGate(ev gateEvent) {
	ev.seq = e.gateSeq
	e.gateSeq++
	e.gate = append(e.gate, ev)
	e.gate.up(len(e.gate) - 1)
}

// popGate removes and returns the earliest gate event.
func (e *Engine) popGate() gateEvent {
	ev := e.gate[0]
	last := len(e.gate) - 1
	e.gate[0] = e.gate[last]
	e.gate[last] = gateEvent{} // drop task references
	e.gate = e.gate[:last]
	if last > 0 {
		e.gate.down(0)
	}
	return ev
}

// nextGateTick peeks the gate queue (the drivers' third sync source, after
// arrivals and cluster truth events).
func (e *Engine) nextGateTick() (int64, bool) {
	if len(e.gate) == 0 {
		return 0, false
	}
	return e.gate[0].tick, true
}

// heartbeatAt returns the first heartbeat observation at or after tick t
// under cadence hb (heartbeats fire at every multiple of hb). A truth
// event at tick T settles before the observation at T, so a failure at a
// heartbeat tick misses that very heartbeat and a recovery at one is seen
// by it.
func heartbeatAt(t, hb int64) int64 {
	return (t + hb - 1) / hb * hb
}

// nextRecoverTick scans the remaining cluster schedule for dc's next
// recovery — detection that would land at or after it never fires (the
// monitor's missed-heartbeat count resets before reaching the threshold).
func (e *Engine) nextRecoverTick(dc int) (int64, bool) {
	for _, ev := range e.clusterEvents[e.evPos:] {
		if ev.Kind == scenario.DCRecover && ev.DC == dc {
			return ev.Tick, true
		}
	}
	return 0, false
}

// scheduleDetection handles a dc-fail the monitor has not seen: the
// datacenter's simulator fails for real (machines down, tasks drained or
// dropped per the event policy) but its healthy flag survives until the
// suspicion threshold trips. Drained tasks are held for salvage at the
// tick the outage becomes known.
func (e *Engine) scheduleDetection(d *DC, failTick int64, drop bool) {
	hb := e.fo.EffectiveHeartbeatEvery()
	detectAt := heartbeatAt(failTick, hb) + int64(e.fo.EffectiveSuspectAfter()-1)*hb
	recoverAt, hasRecover := e.nextRecoverTick(d.index)
	if !hasRecover || detectAt < recoverAt {
		e.pushGate(gateEvent{tick: detectAt, kind: gevDetect, dc: d.index, epoch: e.epochs[d.index], failTick: failTick})
	}
	drained := d.sim.FailDC(failTick, drop, nil)
	if len(drained) == 0 {
		return
	}
	salvageAt := detectAt
	if hasRecover && recoverAt < salvageAt {
		salvageAt = recoverAt
	}
	e.pushGate(gateEvent{tick: salvageAt, kind: gevSalvage, dc: d.index, tasks: drained})
}

// stepGateEvent fires the earliest gate event and ticks the engine's
// telemetry shard — same quiescence contract as stepClusterEvent.
func (e *Engine) stepGateEvent() error {
	err := e.applyGateEvent()
	e.sampler.Tick(e.now)
	return err
}

// applyGateEvent fires the earliest gate event. The caller has already set
// e.now to its tick, and — in the parallel drivers — quiesced every worker
// at that tick, so touching the simulators directly here reproduces the
// sequential interleave exactly.
func (e *Engine) applyGateEvent() error {
	ev := e.popGate()
	switch ev.kind {
	case gevDetect:
		if ev.epoch != e.epochs[ev.dc] {
			return nil // truth moved on; the observation is stale
		}
		e.dcs[ev.dc].healthy = false
		e.gateStats.Detections++
		e.gateStats.DetectionLagTicks += ev.tick - ev.failTick
		e.pr.detectLag.Observe(float64(ev.tick - ev.failTick))
	case gevTrust:
		if ev.epoch != e.epochs[ev.dc] {
			return nil
		}
		e.dcs[ev.dc].healthy = true
		return e.drainGateBuffer(ev.tick)
	case gevSalvage:
		for _, t := range ev.tasks {
			if err := e.routeInjected(t, ev.tick, 0, true); err != nil {
				return err
			}
		}
	case gevRedispatch:
		if ev.task.Expired(ev.tick) || (e.fo.MaxRetries > 0 && ev.attempt > e.fo.MaxRetries) {
			e.loseTask(ev.task, ev.dc, ev.tick)
			return nil
		}
		e.gateStats.Retries++
		return e.routeInjected(ev.task, ev.tick, ev.attempt, true)
	}
	return nil
}

// routeArrival decides a fresh arrival's fate at its arrival tick and
// reports where it went: (dc, true) means the caller must admit it into
// that datacenter's simulator (drivers differ in how — direct Admit,
// pending barrier admit, or worker channel); (_, false) means the gate
// already consumed it (buffered, dropped, or bounced into retry limbo).
// It also counts the arrival, times the dispatch span, and ticks the
// engine's telemetry shard — engine-owned state only, so the wide-window
// driver may call it while workers are mid-window.
func (e *Engine) routeArrival(t *task.Task) (int, bool, error) {
	t0 := e.phases.Start()
	e.pr.arrivals.Inc()
	d, admit, err := e.gateArrival(t)
	if admit {
		e.pr.admitted.Inc()
	}
	e.phases.Observe(telemetry.PhaseDispatch, t0)
	e.sampler.Tick(e.now)
	return d, admit, err
}

// gateArrival is routeArrival's routing decision proper.
func (e *Engine) gateArrival(t *task.Task) (int, bool, error) {
	e.now = t.Arrival
	if !e.anyHealthy() {
		e.record(Dispatch{Tick: t.Arrival, TaskID: t.ID, DC: -1})
		if e.fo.Buffered() {
			e.bufferTask(t, t.Arrival)
		} else {
			e.dropAtGate(t, t.Arrival)
		}
		return -1, false, nil
	}
	d, err := e.pick(t.Arrival, t)
	if err != nil {
		return 0, false, err
	}
	e.record(Dispatch{Tick: t.Arrival, TaskID: t.ID, DC: d})
	if !e.dcs[d].alive {
		e.bounceDispatch(t, d, 1, t.Arrival)
		return d, false, nil
	}
	return d, true, nil
}

// routeInjected routes a task that re-enters the dispatcher after its
// arrival tick — a salvaged drain, a bounced retry, or a buffer drain —
// injecting it into the picked datacenter's batch queue. With no
// believed-healthy datacenter it falls back to the gate buffer, or exits
// at the gate.
func (e *Engine) routeInjected(t *task.Task, now int64, attempt int, failover bool) error {
	if !e.anyHealthy() {
		e.record(Dispatch{Tick: now, TaskID: t.ID, DC: -1, Failover: failover, Attempt: attempt})
		if e.fo.Buffered() {
			e.bufferTask(t, now)
		} else {
			e.dropAtGate(t, now)
		}
		return nil
	}
	d, err := e.pick(now, t)
	if err != nil {
		return err
	}
	e.record(Dispatch{Tick: now, TaskID: t.ID, DC: d, Failover: failover, Attempt: attempt})
	if !e.dcs[d].alive {
		e.bounceDispatch(t, d, attempt+1, now)
		return nil
	}
	e.pr.injected.Inc()
	e.dcs[d].sim.InjectRequeued(t, now)
	return nil
}

// routeDrained re-dispatches one task drained by a *detected* dc-fail, at
// the fail tick — the oracle-detection failover path. With no survivor it
// buffers when the gate buffer is on, else exits the task through the dead
// datacenter's simulator exactly as the engine always has.
func (e *Engine) routeDrained(from *DC, t *task.Task, now int64) error {
	if !e.anyHealthy() {
		e.record(Dispatch{Tick: now, TaskID: t.ID, DC: -1, Failover: true})
		if e.fo.Buffered() {
			e.bufferTask(t, now)
		} else {
			from.sim.DropInjected(t, now)
		}
		return nil
	}
	to, err := e.pick(now, t)
	if err != nil {
		return err
	}
	e.record(Dispatch{Tick: now, TaskID: t.ID, DC: to, Failover: true})
	if !e.dcs[to].alive {
		e.bounceDispatch(t, to, 1, now)
		return nil
	}
	e.pr.injected.Inc()
	e.dcs[to].sim.InjectRequeued(t, now)
	return nil
}

// bounceDispatch puts a task whose dispatch landed on a
// down-but-undetected datacenter into retry limbo: it re-enters the
// dispatcher after the detection delay plus the attempt's backoff.
// attempt counts failed dispatches so far, this one included.
func (e *Engine) bounceDispatch(t *task.Task, dc, attempt int, now int64) {
	e.gateStats.Bounced++
	delay := e.fo.EffectiveBounceAfter() + e.fo.Backoff(attempt)
	e.pushGate(gateEvent{tick: now + delay, kind: gevRedispatch, dc: dc, task: t, attempt: attempt})
}

// bufferTask enqueues a task at the gate, shedding per the policy when the
// buffer is full. Only called with GateBuffer > 0.
func (e *Engine) bufferTask(t *task.Task, now int64) {
	e.gateStats.Buffered++
	if len(e.buf) < e.fo.GateBuffer {
		e.buf = append(e.buf, t)
		if len(e.buf) > e.gateStats.MaxQueueDepth {
			e.gateStats.MaxQueueDepth = len(e.buf)
		}
		return
	}
	switch e.fo.Shed {
	case scenario.ShedDropOldest:
		victim := e.buf[0]
		copy(e.buf, e.buf[1:])
		e.buf[len(e.buf)-1] = t
		e.shedTask(victim, now)
	case scenario.ShedDeadlineAware:
		// Shed the least-likely-on-time task: every buffered task waits
		// from the same tick, so the earliest absolute deadline is the
		// monotone proxy for the lowest on-time probability. Ties break
		// toward the longest-buffered task; the incoming task is shed when
		// it ties the buffer's minimum.
		vi := 0
		for i := 1; i < len(e.buf); i++ {
			if e.buf[i].Deadline < e.buf[vi].Deadline {
				vi = i
			}
		}
		if e.buf[vi].Deadline < t.Deadline {
			victim := e.buf[vi]
			copy(e.buf[vi:], e.buf[vi+1:])
			e.buf[len(e.buf)-1] = t
			e.shedTask(victim, now)
		} else {
			e.shedTask(t, now)
		}
	default: // ShedDropNewest
		e.shedTask(t, now)
	}
}

// drainGateBuffer re-dispatches buffered tasks in FIFO order after a
// believed-health transition brought a datacenter back into rotation.
func (e *Engine) drainGateBuffer(now int64) error {
	for len(e.buf) > 0 && e.anyHealthy() {
		t := e.buf[0]
		copy(e.buf, e.buf[1:])
		e.buf[len(e.buf)-1] = nil
		e.buf = e.buf[:len(e.buf)-1]
		if err := e.routeInjected(t, now, 0, false); err != nil {
			return err
		}
	}
	return nil
}

// flushGateBuffer sheds whatever the trial's end still finds buffered —
// the cluster went dark and never came back.
func (e *Engine) flushGateBuffer() {
	for i, t := range e.buf {
		e.shedTask(t, e.now)
		e.buf[i] = nil
	}
	e.buf = e.buf[:0]
}

// shedTask exits a task shed from the gate buffer (overflow victim or
// end-of-trial flush) at the cluster level: it never reached a datacenter,
// so only the cluster aggregate sees it.
func (e *Engine) shedTask(t *task.Task, now int64) {
	t.State = task.StateDropped
	t.Finish = now
	e.collector.Observe(t)
	e.gateStats.Shed++
	if e.recycler != nil {
		e.recycler.Recycle(t)
	}
}

// loseTask exits a task lost to an undetected outage: its retry budget ran
// out or its deadline expired while it was bouncing off datacenter dc.
func (e *Engine) loseTask(t *task.Task, dc int, now int64) {
	t.State = task.StateDropped
	t.Finish = now
	e.collector.Observe(t)
	e.gateStats.LostUndetected++
	e.lostByDC[dc]++
	if e.recycler != nil {
		e.recycler.Recycle(t)
	}
}

func (e *Engine) anyHealthy() bool {
	for _, d := range e.dcs {
		if d.healthy {
			return true
		}
	}
	return false
}

// bumpEpoch invalidates the in-flight belief observations of datacenter
// dc; called at every applied truth transition.
func (e *Engine) bumpEpoch(dc int) { e.epochs[dc]++ }
