package cluster

import (
	"fmt"

	"taskprune/internal/metrics"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// Live driving: the serve daemon's incremental alternative to RunSource.
// RunSource owns the whole trial — it pulls arrivals until the source is
// exhausted, then finalizes. A server cannot hand over control like that:
// submissions trickle in over wall time, and between them the engine must
// settle its in-flight work so status endpoints see completions, not a
// frozen clock. StartLive/SubmitLive/Quiesce/FinishLive expose exactly the
// runSequential loop, re-cut at submission boundaries:
//
//   - SubmitLive(t) steps every pending event strictly before t.Arrival,
//     then dispatches t — the same "arrivals win ties" order runSequential
//     uses, so submitting a workload task-by-task is byte-equivalent to
//     RunSource over the same tasks (the equivalence test pins this).
//   - Quiesce steps pending events only while tasks are in flight. It
//     deliberately does NOT run the event queue dry: far-future scenario
//     events (a dc-fail at tick 10⁶) must wait for the clock to be pulled
//     forward by real submissions, and gate-buffered tasks legitimately
//     wait for a recovery event with nothing else pending.
//   - FinishLive is RunSource's tail: flush the gate buffer, flush the
//     telemetry sampler at the cluster-wide end of time, finalize.
//
// Like RunSource, live driving is single-goroutine: the daemon's pump owns
// the engine, and HTTP handlers see only published snapshots.

// StartLive arms the engine for incremental driving. rec, when non-nil,
// receives every retired task (the daemon passes its LiveSource so task
// structs return to the pool). Live driving is sequential by construction —
// a Parallel config is rejected rather than silently ignored.
func (e *Engine) StartLive(rec workload.Recycler) error {
	if e.liveOn {
		return fmt.Errorf("cluster: StartLive called twice")
	}
	if e.collector != nil {
		return fmt.Errorf("cluster: engine already driven by RunSource; engines are single-use")
	}
	if e.cfg.Parallel {
		return fmt.Errorf("cluster: live driving is sequential; build the engine with Parallel false")
	}
	trim := e.cfg.Sim.Trim
	if trim == 0 {
		trim = metrics.DefaultTrim
	}
	e.collector = metrics.NewStream(e.matrix.NumTypes(), trim)
	e.recycler = rec
	for _, d := range e.dcs {
		d.sim.Begin(e.collector)
		d.sim.SetRecycler(rec)
	}
	e.liveOn = true
	return nil
}

// stepNext fires the event nextEvent selected — the body of
// runSequential's event arm, shared so both drivers advance the clock and
// route engine-level events identically.
func (e *Engine) stepNext(tick int64, dc int) error {
	e.now = tick
	switch dc {
	case dcCluster:
		return e.stepClusterEvent()
	case dcGate:
		return e.stepGateEvent()
	default:
		e.dcs[dc].sim.StepEvent()
		return nil
	}
}

// SubmitLive admits one task at its stamped Arrival tick: pending events
// strictly before the arrival fire first (arrivals win ties, exactly as in
// runSequential), then the task routes through the gate and dispatcher.
// Arrivals must be non-decreasing across calls — the caller owns the
// simulated clock and stamps ticks via Now.
func (e *Engine) SubmitLive(t *task.Task) error {
	if !e.liveOn {
		return fmt.Errorf("cluster: SubmitLive before StartLive")
	}
	if t.Arrival < e.liveArrival {
		return fmt.Errorf("cluster: live submission %d arrives at %d before the previous submission's %d", t.ID, t.Arrival, e.liveArrival)
	}
	e.liveArrival = t.Arrival
	for {
		tick, dc, ok := e.nextEvent()
		if !ok || tick >= t.Arrival {
			break
		}
		if err := e.stepNext(tick, dc); err != nil {
			return err
		}
	}
	e.liveSubmitted++
	return e.dispatch(t)
}

// Quiesce settles the system after a burst: it steps pending events while
// any submitted task is still in flight (queued in a datacenter, bouncing
// through gate retries, or parked in the gate buffer awaiting a scheduled
// recovery). It returns with either nothing in flight or nothing left to
// step — gate-buffered tasks with no pending recovery stay put, waiting on
// future events.
func (e *Engine) Quiesce() error {
	if !e.liveOn {
		return fmt.Errorf("cluster: Quiesce before StartLive")
	}
	for e.InFlight() > 0 {
		tick, dc, ok := e.nextEvent()
		if !ok {
			return nil
		}
		if err := e.stepNext(tick, dc); err != nil {
			return err
		}
	}
	return nil
}

// InFlight counts submitted tasks that have not yet exited: every exit
// path — completion, miss, drop at any layer, gate shed, undetected-outage
// loss — observes the collector, so submissions minus observations is the
// live set wherever those tasks currently sit.
func (e *Engine) InFlight() int {
	if e.collector == nil {
		return 0
	}
	return e.liveSubmitted - e.collector.Total()
}

// Submitted returns how many tasks SubmitLive has accepted.
func (e *Engine) Submitted() int { return e.liveSubmitted }

// Now returns the engine's clock: the tick of the last event or submission
// it processed. Live producers stamp the next submission's Arrival at or
// after this.
func (e *Engine) Now() int64 {
	if e.liveArrival > e.now {
		return e.liveArrival
	}
	return e.now
}

// LiveCounts snapshots the raw exit tallies mid-run (zero before
// StartLive).
func (e *Engine) LiveCounts() metrics.Counts {
	if e.collector == nil {
		return metrics.Counts{}
	}
	return e.collector.Counts()
}

// LiveStats computes the trimmed-window trial statistics over everything
// observed so far, without finalizing the datacenters — a pure mid-run
// read for status reporting. Cost fields are zero (machine-time cost is
// only summed at FinishLive).
func (e *Engine) LiveStats() metrics.TrialStats {
	if e.collector == nil {
		return metrics.TrialStats{}
	}
	return e.collector.Finalize(0)
}

// FinishLive ends a live run: it quiesces in-flight work, exits anything
// still parked in the gate buffer, flushes the telemetry sampler at the
// cluster-wide end of simulated time, and finalizes — RunSource's tail,
// returning the cluster aggregate plus each datacenter's own statistics.
// The engine is spent afterwards.
func (e *Engine) FinishLive() (metrics.TrialStats, []metrics.TrialStats, error) {
	if !e.liveOn {
		return metrics.TrialStats{}, nil, fmt.Errorf("cluster: FinishLive before StartLive")
	}
	if err := e.Quiesce(); err != nil {
		return metrics.TrialStats{}, nil, err
	}
	e.flushGateBuffer()
	end := e.now
	for _, d := range e.dcs {
		if t := d.sim.Now(); t > end {
			end = t
		}
	}
	e.sampler.Flush(end)
	perDC := make([]metrics.TrialStats, len(e.dcs))
	total := 0.0
	for i, d := range e.dcs {
		perDC[i] = d.sim.Finalize()
		total += perDC[i].TotalCost
	}
	e.liveOn = false
	return e.collector.Finalize(total), perDC, nil
}
