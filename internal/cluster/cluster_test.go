package cluster

import (
	"strings"
	"testing"

	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// clusterPET builds the 3×6 test matrix shared by the cluster tests: six
// machines so three datacenters get two each, with per-type affinities so
// routing decisions actually matter.
func clusterPET(t testing.TB) *pet.Matrix {
	t.Helper()
	cfg := pet.BuildConfig{Samples: 400, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	means := [][]float64{
		{10, 40, 20, 15, 30, 25},
		{40, 10, 30, 25, 15, 20},
		{20, 30, 10, 35, 25, 15},
	}
	m, err := pet.Build(means, cfg, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func clusterWorkload(t testing.TB, matrix *pet.Matrix, n int, seed int64) []*task.Task {
	t.Helper()
	tasks, err := workload.Generate(workload.Config{NumTasks: n, Rate: 0.5, VarFrac: 0.10, Beta: 2.0}, matrix, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func clusterConfig(t testing.TB, name string, matrix *pet.Matrix, dcs int, policy Policy, sc *scenario.Scenario) Config {
	t.Helper()
	simCfg, err := simulator.ConfigFor(name, matrix)
	if err != nil {
		t.Fatal(err)
	}
	simCfg.Scenario = sc
	return Config{DCs: dcs, Policy: policy, Sim: simCfg}
}

func TestNewValidation(t *testing.T) {
	matrix := clusterPET(t)
	base := clusterConfig(t, "PAM", matrix, 3, nil, nil)

	bad := base
	bad.DCs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero datacenters accepted")
	}
	bad = base
	bad.DCs = 7
	if _, err := New(bad); err == nil {
		t.Error("more datacenters than machines accepted")
	}
	bad = base
	bad.Sim.Machines = []int{0, 1}
	if _, err := New(bad); err == nil {
		t.Error("pre-partitioned template accepted")
	}
	bad = base
	bad.Traces = []*trace.Recorder{trace.NewRecorder()}
	if _, err := New(bad); err == nil {
		t.Error("trace recorder count mismatch accepted")
	}
	bad = base
	bad.Sim.Trace = trace.NewRecorder()
	if _, err := New(bad); err == nil {
		t.Error("template-level trace recorder accepted")
	}
	bad = base
	bad.Sim.Scenario = scenario.New("bad").DCFailAt(10, 5, scenario.Requeue)
	if _, err := New(bad); err == nil {
		t.Error("dc-fail with out-of-range datacenter accepted")
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPartitionCoversFleet(t *testing.T) {
	matrix := clusterPET(t)
	for _, dcs := range []int{1, 2, 3, 4, 6} {
		eng, err := New(clusterConfig(t, "MM", matrix, dcs, nil, nil))
		if err != nil {
			t.Fatalf("%d DCs: %v", dcs, err)
		}
		seen := make(map[int]bool)
		for _, d := range eng.DCList() {
			if len(d.Machines()) == 0 {
				t.Fatalf("%d DCs: datacenter %d owns no machines", dcs, d.Index())
			}
			for _, mi := range d.Machines() {
				if seen[mi] {
					t.Fatalf("%d DCs: machine %d owned twice", dcs, mi)
				}
				seen[mi] = true
			}
		}
		if len(seen) != matrix.NumMachines() {
			t.Fatalf("%d DCs: partition covers %d of %d machines", dcs, len(seen), matrix.NumMachines())
		}
	}
}

// primePET builds a 3×7 matrix: a prime machine count, so no DC count in
// 2..6 divides the fleet and every partition exercises the remainder path.
func primePET(t testing.TB) *pet.Matrix {
	t.Helper()
	cfg := pet.BuildConfig{Samples: 400, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	means := [][]float64{
		{10, 40, 20, 15, 30, 25, 12},
		{40, 10, 30, 25, 15, 20, 35},
		{20, 30, 10, 35, 25, 15, 18},
	}
	m, err := pet.Build(means, cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPartitionPrimeFleet pins the contiguous-partition contract on a
// 7-machine fleet, where no DC count >1 divides the machine count: blocks
// are contiguous and adjacent, cover the fleet exactly once, differ in
// size by at most one with exactly nm mod nDCs larger blocks, match
// blockBounds exactly, and dcOfMachine agrees with the ownership New
// actually built.
func TestPartitionPrimeFleet(t *testing.T) {
	matrix := primePET(t)
	nm := matrix.NumMachines()
	for dcs := 1; dcs <= nm; dcs++ {
		eng, err := New(clusterConfig(t, "MM", matrix, dcs, nil, nil))
		if err != nil {
			t.Fatalf("%d DCs: %v", dcs, err)
		}
		next := 0 // contiguity cursor: each block starts where the last ended
		larger := 0
		for _, d := range eng.DCList() {
			cols := d.Machines()
			if len(cols) == 0 {
				t.Fatalf("%d DCs: datacenter %d owns no machines", dcs, d.Index())
			}
			lo, hi := blockBounds(d.Index(), nm, dcs)
			if cols[0] != lo || len(cols) != hi-lo {
				t.Fatalf("%d DCs: datacenter %d owns [%d..%d], blockBounds says [%d..%d)", dcs, d.Index(), cols[0], cols[len(cols)-1], lo, hi)
			}
			for _, mi := range cols {
				if mi != next {
					t.Fatalf("%d DCs: datacenter %d owns machine %d, want contiguous %d", dcs, d.Index(), mi, next)
				}
				if got := dcOfMachine(mi, nm, dcs); got != d.Index() {
					t.Fatalf("%d DCs: dcOfMachine(%d) = %d, but datacenter %d owns it", dcs, mi, got, d.Index())
				}
				next++
			}
			switch len(cols) {
			case nm / dcs:
			case nm/dcs + 1:
				larger++
			default:
				t.Fatalf("%d DCs: datacenter %d owns %d machines; blocks must hold %d or %d", dcs, d.Index(), len(cols), nm/dcs, nm/dcs+1)
			}
		}
		if next != nm {
			t.Fatalf("%d DCs: partition covers %d of %d machines", dcs, next, nm)
		}
		if larger != nm%dcs {
			t.Fatalf("%d DCs: %d oversized blocks, want nm mod dcs = %d", dcs, larger, nm%dcs)
		}
	}
}

// TestPartitionErrorReportsSplit pins the over-partitioned error message:
// it must report how many datacenters end up empty and the split that
// produced them, so the failure is actionable without reading the code.
func TestPartitionErrorReportsSplit(t *testing.T) {
	matrix := primePET(t)
	cfg := clusterConfig(t, "MM", matrix, 9, nil, nil)
	_, err := New(cfg)
	if err == nil {
		t.Fatal("9 datacenters for 7 machines accepted")
	}
	for _, want := range []string{"leaves 2 empty", "0+1+1+1+0+1+1+1+1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestPETAwareUnevenBlocks runs the PET-aware dispatcher over the 2+2+3
// split of the prime fleet: scoring walks each DC's actual machine list,
// so the uneven last block must both receive traffic and leave the trial
// accounting exact.
func TestPETAwareUnevenBlocks(t *testing.T) {
	matrix := primePET(t)
	cfg := clusterConfig(t, "PAM", matrix, 3, NewPolicyOrDie(t, "pet-aware"), nil)
	cfg.RecordDispatch = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(eng.DCList()[2].Machines()); got != 3 {
		t.Fatalf("last datacenter owns %d machines, want the 3-machine remainder block", got)
	}
	tasks := clusterWorkload(t, matrix, 300, 5)
	st, _, err := eng.RunSource(workload.FromTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 300 {
		t.Fatalf("trial accounted %d of 300 tasks", st.Total)
	}
	routed := make(map[int]int)
	for _, d := range eng.Dispatches() {
		routed[d.DC]++
	}
	for dc := 0; dc < 3; dc++ {
		if routed[dc] == 0 {
			t.Errorf("pet-aware routed nothing to datacenter %d (split 2+2+3); routing map: %v", dc, routed)
		}
	}
}

func NewPolicyOrDie(t testing.TB, name string) Policy {
	t.Helper()
	p, err := NewPolicy(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRoundRobinSkipsDeadDCs(t *testing.T) {
	dcs := []*DC{{index: 0, alive: true, healthy: true}, {index: 1, alive: false}, {index: 2, alive: true, healthy: true}}
	p := &RoundRobin{}
	want := []int{0, 2, 0, 2}
	for i, w := range want {
		if got := p.Pick(0, nil, dcs); got != w {
			t.Fatalf("pick %d: got dc%d, want dc%d", i, got, w)
		}
	}
}

func TestPoliciesSpreadLoad(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 200, 3)
	for _, route := range []string{"round-robin", "least-queued", "pet-aware"} {
		policy, err := NewPolicy(route)
		if err != nil {
			t.Fatal(err)
		}
		cfg := clusterConfig(t, "PAM", matrix, 3, policy, nil)
		cfg.RecordDispatch = true
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, perDC, err := eng.RunSource(workload.FromTasks(tasks))
		if err != nil {
			t.Fatal(err)
		}
		if st.Total != len(tasks) {
			t.Fatalf("%s: cluster accounted %d of %d tasks", route, st.Total, len(tasks))
		}
		counts := make([]int, 3)
		for _, d := range eng.Dispatches() {
			counts[d.DC]++
		}
		sum := 0
		for d, c := range counts {
			if c == 0 {
				t.Errorf("%s: datacenter %d received no tasks", route, d)
			}
			sum += c
		}
		if sum != len(tasks) {
			t.Fatalf("%s: dispatch log has %d entries for %d tasks", route, sum, len(tasks))
		}
		acc := 0
		for _, s := range perDC {
			acc += s.Total
		}
		if acc != len(tasks) {
			t.Fatalf("%s: per-DC totals sum to %d of %d", route, acc, len(tasks))
		}
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range []string{"rr", "round-robin", "lq", "least-queued", "pet", "pet-aware"} {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("policy %q rejected: %v", name, err)
		}
	}
}

// outageScenario fails DC 0 mid-trial and recovers it later (trials span
// roughly 400 ticks at the tests' 0.5 tasks/tick rate).
func outageScenario(policy scenario.Policy) *scenario.Scenario {
	return scenario.New("outage").
		DCFailAt(100, 0, policy).
		DCRecoverAt(250, 0)
}

func TestDCFailRequeueFailsOver(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 200, 5)
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, outageScenario(scenario.Requeue))
	cfg.RecordDispatch = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := eng.RunSource(workload.FromTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != len(tasks) {
		t.Fatalf("cluster accounted %d of %d tasks (failover lost tasks)", st.Total, len(tasks))
	}
	failovers, toDeadDuringOutage, dc0After := 0, 0, 0
	for _, d := range eng.Dispatches() {
		if d.Failover {
			failovers++
			if d.DC == 0 {
				t.Fatalf("failover routed a task back to the dead datacenter: %+v", d)
			}
		}
		if !d.Failover && d.DC == 0 && d.Tick >= 100 && d.Tick < 250 {
			toDeadDuringOutage++
		}
		if d.DC == 0 && d.Tick >= 250 {
			dc0After++
		}
	}
	if failovers == 0 {
		t.Fatal("dc-fail with requeue produced no failover dispatches")
	}
	if toDeadDuringOutage != 0 {
		t.Fatalf("%d arrivals routed to the dead datacenter during its outage", toDeadDuringOutage)
	}
	if dc0After == 0 {
		t.Fatal("recovered datacenter never received tasks again")
	}
	if eng.GateDrops() != 0 {
		t.Fatalf("gate dropped %d tasks with survivors available", eng.GateDrops())
	}
}

func TestDCFailDropExitsHeldTasks(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 200, 5)
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, outageScenario(scenario.Drop))
	cfg.RecordDispatch = true
	rec := trace.NewRecorder()
	cfg.Traces = []*trace.Recorder{rec, nil, nil}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, perDC, err := eng.RunSource(workload.FromTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != len(tasks) {
		t.Fatalf("cluster accounted %d of %d tasks", st.Total, len(tasks))
	}
	for _, d := range eng.Dispatches() {
		if d.Failover {
			t.Fatalf("drop policy produced a failover dispatch: %+v", d)
		}
	}
	// The dead datacenter's trace must show the outage exiting its held
	// tasks as drops at the dc-fail tick (per-DC TrialStats counters are
	// steady-state trimmed, so the trace is the exact record).
	droppedAtFail, failed := 0, 0
	for _, ev := range rec.Events() {
		switch {
		case ev.Kind == trace.MachineFailed && ev.Tick == 100:
			failed++
		case ev.Kind == trace.TaskDropped && ev.Tick == 100:
			droppedAtFail++
		}
	}
	if failed != len(eng.DCList()[0].Machines()) {
		t.Fatalf("dc-fail took down %d of %d machines", failed, len(eng.DCList()[0].Machines()))
	}
	if droppedAtFail == 0 {
		t.Fatal("dc-fail with drop policy exited no tasks in the failed datacenter")
	}
	acc := 0
	for _, s := range perDC {
		acc += s.Total
	}
	if acc != len(tasks) {
		t.Fatalf("per-DC totals sum to %d of %d", acc, len(tasks))
	}
}

func TestAllDCsDownDropsAtGate(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 150, 9)
	sc := scenario.New("blackout").
		DCFailAt(100, 0, scenario.Requeue).
		DCFailAt(100, 1, scenario.Requeue)
	eng, err := New(clusterConfig(t, "MM", matrix, 2, nil, sc))
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := eng.RunSource(workload.FromTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	if eng.GateDrops() == 0 {
		t.Fatal("total blackout dropped nothing at the gate")
	}
	if st.Total != len(tasks) {
		t.Fatalf("cluster accounted %d of %d tasks", st.Total, len(tasks))
	}
}

// TestClusterDeterminism3DC replays a 3-DC trial with a mid-trial dc-fail
// twice and demands byte-identical decision traces, dispatch logs, and
// statistics — the sharded engine's analogue of the golden determinism
// harness.
func TestClusterDeterminism3DC(t *testing.T) {
	matrix := clusterPET(t)
	run := func() ([]byte, []Dispatch) {
		traces, dispatches, _, _ := clusterTrial(t, matrix, "PAM", "pet-aware", outageScenario(scenario.Requeue))
		return traces, dispatches
	}
	t1, d1 := run()
	t2, d2 := run()
	if string(t1) != string(t2) {
		t.Fatal("3-DC decision traces differ between identical runs")
	}
	if len(d1) != len(d2) {
		t.Fatalf("dispatch logs differ in length: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("dispatch %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

// TestDCRecoverRespectsMachineScopedFailures pins the outage/brownout
// boundary: a machine that was already down for a machine-scoped reason
// when its datacenter dc-failed stays down through the dc-recover and
// comes back only at its own Recover event.
func TestDCRecoverRespectsMachineScopedFailures(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 200, 11)
	sc := scenario.New("mixed").
		FailAt(50, 0, scenario.Requeue). // machine-scoped: m0 down 50..300
		RecoverAt(300, 0).
		DCFailAt(100, 0, scenario.Requeue). // whole-DC: dc0 (m0, m1) down 100..200
		DCRecoverAt(200, 0)
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, sc)
	rec := trace.NewRecorder()
	cfg.Traces = []*trace.Recorder{rec, nil, nil}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RunSource(workload.FromTasks(tasks)); err != nil {
		t.Fatal(err)
	}
	recoveredAt := map[int][]int64{}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.MachineRecovered {
			recoveredAt[ev.Machine] = append(recoveredAt[ev.Machine], ev.Tick)
		}
	}
	if got := recoveredAt[1]; len(got) != 1 || got[0] != 200 {
		t.Errorf("machine 1 recoveries at %v, want exactly [200] (dc-recover)", got)
	}
	if got := recoveredAt[0]; len(got) != 1 || got[0] != 300 {
		t.Errorf("machine 0 recoveries at %v, want exactly [300] (its own Recover, not the dc-recover)", got)
	}
}

// TestMachineFailDuringOutageStaysDown: a machine-scoped Fail that fires
// while its datacenter is dc-failed takes ownership of the machine's down
// state — the dc-recover must not revive it ahead of its (absent) Recover.
func TestMachineFailDuringOutageStaysDown(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 200, 11)
	sc := scenario.New("mid-outage-fail").
		DCFailAt(100, 0, scenario.Requeue).
		FailAt(150, 0, scenario.Requeue). // machine-scoped, no Recover ever
		DCRecoverAt(200, 0)
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, sc)
	rec := trace.NewRecorder()
	cfg.Traces = []*trace.Recorder{rec, nil, nil}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RunSource(workload.FromTasks(tasks)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.MachineRecovered && ev.Machine == 0 {
			t.Fatalf("machine 0 recovered at t=%d despite its unrecovered machine-scoped failure", ev.Tick)
		}
	}
	for _, m := range eng.DCList()[0].Sim().Machines() {
		if m.ID == 0 && m.Alive() {
			t.Fatal("machine 0 alive after the trial")
		}
		if m.ID == 1 && !m.Alive() {
			t.Fatal("machine 1 not revived by the dc-recover")
		}
	}
}

// TestDoubleDCFailIsNoOp: dc-failing an already-failed datacenter is a
// no-op (mirroring machine.Fail), so the eventual dc-recover still knows
// which machines the outage took down.
func TestDoubleDCFailIsNoOp(t *testing.T) {
	matrix := clusterPET(t)
	tasks := clusterWorkload(t, matrix, 200, 11)
	sc := scenario.New("double-fail").
		DCFailAt(100, 0, scenario.Requeue).
		DCFailAt(150, 0, scenario.Requeue).
		DCRecoverAt(250, 0).
		DCRecoverAt(300, 0) // recovering an in-service DC: also a no-op
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, sc)
	rec := trace.NewRecorder()
	cfg.Traces = []*trace.Recorder{rec, nil, nil}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RunSource(workload.FromTasks(tasks)); err != nil {
		t.Fatal(err)
	}
	recovered := map[int][]int64{}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.MachineRecovered {
			recovered[ev.Machine] = append(recovered[ev.Machine], ev.Tick)
		}
	}
	for _, mi := range eng.DCList()[0].Machines() {
		if got := recovered[mi]; len(got) != 1 || got[0] != 250 {
			t.Errorf("machine %d recoveries at %v, want exactly [250]", mi, got)
		}
	}
	for _, m := range eng.DCList()[0].Sim().Machines() {
		if !m.Alive() {
			t.Fatalf("machine %d still down after the dc-recover", m.ID)
		}
	}
}
