package cluster

import (
	"reflect"
	"sort"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// liveSubmitAll drives an engine through the live API with the given
// workload: tasks go in arrival order (FromTasks's sort), one SubmitLive
// per task, then FinishLive.
func liveSubmitAll(t *testing.T, eng *Engine, tasks []*task.Task) (st, perDC any) {
	t.Helper()
	ordered := append([]*task.Task(nil), tasks...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	if err := eng.StartLive(nil); err != nil {
		t.Fatal(err)
	}
	for _, tk := range ordered {
		if err := eng.SubmitLive(tk); err != nil {
			t.Fatal(err)
		}
	}
	agg, dc, err := eng.FinishLive()
	if err != nil {
		t.Fatal(err)
	}
	return agg, dc
}

// TestLiveEquivalentToRunSource pins the tentpole contract: driving the
// engine one SubmitLive at a time produces byte-identical statistics,
// dispatch log, and gate counters to RunSource over the same workload —
// including under a heartbeat-detection outage that exercises the gate
// buffer, bounce/retry, and cluster truth events.
func TestLiveEquivalentToRunSource(t *testing.T) {
	detect := scenario.New("live-detect").
		DCFailAt(100, 0, scenario.Requeue).
		DCRecoverAt(250, 0).
		WithFailover(scenario.FailoverPolicy{
			Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 20, SuspectAfter: 2,
			Probation: 20, BounceAfter: 10, RetryBase: 5, RetryCap: 40,
		})
	for _, tc := range []struct {
		name      string
		heuristic string
		dcs       int
		sc        *scenario.Scenario
	}{
		{"static-3dc-pam", "PAM", 3, nil},
		{"static-1dc-mm", "MM", 1, nil},
		{"detection-outage", "PAM", 3, detect},
	} {
		t.Run(tc.name, func(t *testing.T) {
			matrix := clusterPET(t)

			cfgA := clusterConfig(t, tc.heuristic, matrix, tc.dcs, nil, tc.sc)
			cfgA.RecordDispatch = true
			ref, err := New(cfgA)
			if err != nil {
				t.Fatal(err)
			}
			refSt, refDC, err := ref.RunSource(workload.FromTasks(clusterWorkload(t, matrix, 300, 11)))
			if err != nil {
				t.Fatal(err)
			}

			cfgB := clusterConfig(t, tc.heuristic, matrix, tc.dcs, nil, tc.sc)
			cfgB.RecordDispatch = true
			live, err := New(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			liveSt, liveDC := liveSubmitAll(t, live, clusterWorkload(t, matrix, 300, 11))

			if !reflect.DeepEqual(refSt, liveSt) {
				t.Errorf("aggregate stats diverge:\n RunSource %+v\n live      %+v", refSt, liveSt)
			}
			if !reflect.DeepEqual(refDC, liveDC) {
				t.Errorf("per-DC stats diverge:\n RunSource %+v\n live      %+v", refDC, liveDC)
			}
			if !reflect.DeepEqual(ref.Dispatches(), live.Dispatches()) {
				t.Errorf("dispatch logs diverge: RunSource %d entries, live %d", len(ref.Dispatches()), len(live.Dispatches()))
			}
			if ref.Gate() != live.Gate() {
				t.Errorf("gate counters diverge:\n RunSource %+v\n live      %+v", ref.Gate(), live.Gate())
			}
		})
	}
}

// TestQuiesceSettlesInFlight pins the status-endpoint contract: after a
// burst, Quiesce steps until the system is steady — every remaining
// in-flight task is one with no pending event to move it (a deferred task
// waiting on a future arrival or on its deadline passing) — and FinishLive
// then accounts for every submission.
func TestQuiesceSettlesInFlight(t *testing.T) {
	matrix := clusterPET(t)
	eng, err := New(clusterConfig(t, "PAM", matrix, 3, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartLive(nil); err != nil {
		t.Fatal(err)
	}
	tasks := clusterWorkload(t, matrix, 50, 3)
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival })
	for _, tk := range tasks {
		if err := eng.SubmitLive(tk); err != nil {
			t.Fatal(err)
		}
	}
	if eng.InFlight() == 0 {
		t.Fatal("nothing in flight right after a 50-task burst (events should not fire until Quiesce)")
	}
	if err := eng.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if left := eng.InFlight(); left > 0 {
		// Steady state with stragglers is legal only when nothing is
		// pending: the stragglers are deferred tasks waiting on time that
		// only future submissions (or FinishLive's flush) can bring.
		if tick, dc, ok := eng.nextEvent(); ok {
			t.Fatalf("Quiesce returned with %d in flight and event (tick %d, dc %d) still pending", left, tick, dc)
		}
	}
	if got := eng.LiveCounts().Total + eng.InFlight(); got != 50 {
		t.Fatalf("exits %d + in-flight %d != 50 submitted", eng.LiveCounts().Total, eng.InFlight())
	}
	if eng.Submitted() != 50 {
		t.Fatalf("Submitted = %d, want 50", eng.Submitted())
	}
	st, _, err := eng.FinishLive()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 50 {
		t.Fatalf("FinishLive accounted %d of 50 submissions", st.Total)
	}
}

// TestQuiesceIdleLeavesFutureEvents pins the boot behavior: with nothing
// in flight, Quiesce must not fast-forward the clock through far-future
// scenario events — a dc-fail scheduled at tick 10⁶ stays pending until
// real submissions pull time forward.
func TestQuiesceIdleLeavesFutureEvents(t *testing.T) {
	matrix := clusterPET(t)
	sc := scenario.New("far-future").DCFailAt(1_000_000, 0, scenario.Requeue)
	eng, err := New(clusterConfig(t, "PAM", matrix, 3, nil, sc))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartLive(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if !eng.DCList()[0].InService() {
		t.Fatal("idle Quiesce burned a dc-fail event a million ticks in the future")
	}
	if eng.Now() != 0 {
		t.Fatalf("idle Quiesce moved the clock to %d", eng.Now())
	}
}

// TestLiveGuards pins the misuse errors: double start, driving before
// start, out-of-order arrivals, parallel configs, and reusing a RunSource
// engine.
func TestLiveGuards(t *testing.T) {
	matrix := clusterPET(t)

	eng, err := New(clusterConfig(t, "PAM", matrix, 2, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SubmitLive(workload.NewPooledTask(matrix.NumMachines())); err == nil {
		t.Error("SubmitLive before StartLive accepted")
	}
	if err := eng.Quiesce(); err == nil {
		t.Error("Quiesce before StartLive accepted")
	}
	if _, _, err := eng.FinishLive(); err == nil {
		t.Error("FinishLive before StartLive accepted")
	}
	if err := eng.StartLive(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartLive(nil); err == nil {
		t.Error("second StartLive accepted")
	}
	tasks := clusterWorkload(t, matrix, 10, 1)
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival })
	last := tasks[len(tasks)-1]
	if err := eng.SubmitLive(last); err != nil {
		t.Fatal(err)
	}
	early := tasks[0]
	if early.Arrival >= last.Arrival {
		t.Fatal("test workload has no arrival spread")
	}
	if err := eng.SubmitLive(early); err == nil {
		t.Error("out-of-order live arrival accepted")
	}

	par := clusterConfig(t, "PAM", matrix, 2, nil, nil)
	par.Parallel = true
	peng, err := New(par)
	if err != nil {
		t.Fatal(err)
	}
	if err := peng.StartLive(nil); err == nil {
		t.Error("StartLive on a parallel engine accepted")
	}

	used, err := New(clusterConfig(t, "PAM", matrix, 2, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := used.RunSource(workload.FromTasks(clusterWorkload(t, matrix, 20, 2))); err != nil {
		t.Fatal(err)
	}
	if err := used.StartLive(nil); err == nil {
		t.Error("StartLive on a spent RunSource engine accepted")
	}
}
