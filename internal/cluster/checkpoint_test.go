package cluster

import (
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/workload"
)

// TestCheckpointSurvivalAcrossDCFail: the survival knob decides whether
// checkpoints cross a whole-DC outage. Under replicated survival some of
// the dead datacenter's drained tasks must arrive at the survivors with
// banked credit (the receiving simulators count them as restored); under
// local survival — checkpoints died with the datacenter — every failover
// lands with zero credit, exactly like no checkpointing at all.
func TestCheckpointSurvivalAcrossDCFail(t *testing.T) {
	matrix := clusterPET(t)
	run := func(p *scenario.CheckpointPolicy) (restored, requeued int) {
		tasks := clusterWorkload(t, matrix, 200, 5)
		cfg := clusterConfig(t, "PAM", matrix, 3, nil, outageScenario(scenario.Requeue))
		cfg.Sim.Checkpoint = p
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.RunSource(workload.FromTasks(tasks)); err != nil {
			t.Fatal(err)
		}
		for _, d := range eng.DCList() {
			restored += d.Sim().Restored()
			requeued += d.Sim().Requeued()
		}
		return restored, requeued
	}

	replicated := &scenario.CheckpointPolicy{
		Kind: scenario.CheckpointPeriodic, Interval: 5,
		Survival: scenario.SurviveReplicated, ReplicationLag: 2,
	}
	gotRestored, gotRequeued := run(replicated)
	if gotRequeued == 0 {
		t.Fatal("outage requeued nothing; the scenario no longer exercises failover")
	}
	if gotRestored == 0 {
		t.Fatal("replicated survival restored no failover task from a checkpoint")
	}

	local := &scenario.CheckpointPolicy{Kind: scenario.CheckpointPeriodic, Interval: 5}
	gotRestored, gotRequeued = run(local)
	if gotRequeued == 0 {
		t.Fatal("outage requeued nothing under local survival")
	}
	if gotRestored != 0 {
		t.Fatalf("local survival restored %d failover tasks; checkpoints must die with the datacenter", gotRestored)
	}
}

// TestCheckpointPolicyPropagatesFromScenario: a policy declared on the
// cluster scenario (the JSON wire path) must reach every per-DC simulator
// even though the scenario itself is split per datacenter.
func TestCheckpointPolicyPropagatesFromScenario(t *testing.T) {
	matrix := clusterPET(t)
	sc := outageScenario(scenario.Requeue).WithCheckpoint(scenario.CheckpointPolicy{
		Kind: scenario.CheckpointPeriodic, Interval: 5,
		Survival: scenario.SurviveReplicated, ReplicationLag: 2,
	})
	cfg := clusterConfig(t, "PAM", matrix, 3, nil, sc)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range eng.DCList() {
		p := d.Sim().CheckpointPolicy()
		if p == nil || p.Interval != 5 || p.Survival != scenario.SurviveReplicated {
			t.Fatalf("dc%d resolved policy %+v, want the scenario's periodic/5/replicated", d.Index(), p)
		}
	}
	if _, _, err := eng.RunSource(workload.FromTasks(clusterWorkload(t, matrix, 200, 5))); err != nil {
		t.Fatal(err)
	}
	restored := 0
	for _, d := range eng.DCList() {
		restored += d.Sim().Restored()
	}
	if restored == 0 {
		t.Fatal("scenario-declared policy produced no restores across the outage")
	}
}
