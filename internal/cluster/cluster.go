// Package cluster shards the simulated HC system across datacenters: the
// PET matrix's machine fleet is partitioned into contiguous blocks, each
// datacenter runs the existing single-DC simulator core — its own batch
// queue, pruner, and heuristic instance — and a front-end dispatcher
// routes every arriving task to one datacenter through a pluggable policy
// (round-robin, least-queued, or PET-aware expected-on-time scoring).
//
// The engine interleaves the per-DC simulators over one global clock using
// the simulator's stepping primitives, with a fixed tie order (arrivals
// first, then cluster-scoped events, then per-DC events by index), so a
// sharded trial replays byte-identically run over run — and a 1-DC cluster
// is byte-identical to the plain single-fleet engine, which the
// equivalence tests pin. Scenario dc-fail/dc-recover events model whole-DC
// outages: a failed datacenter's tasks either drop or fail over to the
// survivors through the same dispatcher that routes arrivals.
//
// By default the dispatcher is an oracle: it sees outages the instant they
// happen. A scenario (or Config) failover policy replaces that oracle with
// a simulated health monitor — heartbeat detection lag, bounded gate
// buffering with shedding, and retry/backoff re-dispatch; see failover.go.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"taskprune/internal/machine"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/task"
	"taskprune/internal/telemetry"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// Config assembles one sharded cluster.
type Config struct {
	// DCs is the number of datacenters the PET fleet is partitioned into:
	// datacenter d owns the contiguous machine block [d·M/N, (d+1)·M/N),
	// so an 8-machine PET split 3 ways yields fleets of 2, 3, and 3.
	DCs int
	// Policy routes dispatched tasks (nil → round-robin). Policies are
	// stateful per engine; do not share one instance across engines.
	Policy Policy
	// Sim is the per-datacenter simulator template: heuristic, PET,
	// pruning, drop mode, prices, trim. Its Machines field must be nil
	// (the engine partitions the fleet) and its Trace nil (use Traces);
	// its Scenario may mix machine-scoped events — applied inside the
	// owning datacenter — with cluster-scoped dc-fail/dc-recover events,
	// which the engine itself handles.
	Sim simulator.Config
	// Traces, when non-nil, carries one decision-trace recorder per
	// datacenter (nil entries disable tracing for that DC).
	Traces []*trace.Recorder
	// RecordDispatch retains the dispatcher's routing log (Dispatches) for
	// auditing and the golden cluster traces.
	RecordDispatch bool
	// Failover configures the dispatcher's failure-detection and admission
	// layer (health monitoring, gate buffering, retry/backoff). An explicit
	// policy wins over one declared on Sim.Scenario; nil falls back to the
	// scenario's, and a disabled policy keeps the oracle dispatcher
	// byte-identical to engines built before the layer existed.
	Failover *scenario.FailoverPolicy
	// Parallel steps the datacenters concurrently between cluster-clock
	// barriers, one goroutine per DC, instead of interleaving them on the
	// caller's goroutine. Traces, dispatch log, and statistics are
	// byte-identical either way (the determinism tests pin this); the knob
	// only trades goroutines for wall-clock. See parallel.go for the
	// barrier/merge semantics.
	Parallel bool
	// Telemetry, when non-nil, enables probe registries and tick-driven
	// samplers: one shard for the engine (gate and health metrics) and one
	// per datacenter simulator. Shards are goroutine-owned and merged only
	// at barriers, so parallel stepping stays race-free and byte-identical
	// to sequential; nil is the zero-cost disabled state.
	Telemetry *telemetry.Options
	// Phases, when true, attributes wall time to dispatch/admit/step/eval/
	// convolve spans (one timer per shard, merged by Engine.Phases). The
	// simulator template's PhaseTimer must stay nil — the engine builds
	// per-DC timers itself so parallel workers never share one.
	Phases bool
}

// DC is one datacenter: a fleet partition running the single-DC simulator
// core behind the dispatcher.
type DC struct {
	index int
	cols  []int
	sim   *simulator.Simulator
	// view is the PET the datacenter's simulator schedules on — the
	// belief, not necessarily the truth — so dispatch scoring and mapping
	// agree on what they believe about execution times.
	view pet.View
	// alive tracks dc-fail/dc-recover only; a datacenter whose machines
	// are individually down (machine-scoped events) still receives
	// arrivals — that is a brownout, not an outage.
	alive bool
	// healthy is the dispatcher's *belief* about alive. Under the oracle
	// failover policy the two never diverge; under heartbeat detection
	// healthy lags alive in both directions (detection delay after a
	// failure, probation after a recovery). Routing policies see healthy.
	healthy bool
}

// Index returns the datacenter's position in the partition order.
func (d *DC) Index() int { return d.index }

// Machines returns the global PET column indices this datacenter owns.
func (d *DC) Machines() []int { return d.cols }

// Sim exposes the datacenter's simulator (counters, machines, tests).
func (d *DC) Sim() *simulator.Simulator { return d.sim }

// Alive reports whether the dispatcher believes the datacenter is in
// service. This is the routing view — policies must only see what the
// health monitor sees — and equals ground truth exactly when the failover
// policy is the oracle (the default).
func (d *DC) Alive() bool { return d.healthy }

// InService reports ground truth: whether the datacenter is actually up
// (not dc-failed), regardless of what the health monitor believes.
func (d *DC) InService() bool { return d.alive }

// QueuedLoad counts every task the datacenter currently holds: the batch
// queue plus each machine's queue, executing task included.
func (d *DC) QueuedLoad() int {
	n := d.sim.BatchLen()
	for _, m := range d.sim.Machines() {
		n += m.QueueLen()
	}
	return n
}

// onTimeScore is the PET-aware dispatch score: the best on-time completion
// probability any alive machine in the datacenter offers the task, taking
// expected queue backlog and current degradation factors into account.
func (d *DC) onTimeScore(now int64, t *task.Task) float64 {
	best := 0.0
	for _, m := range d.sim.Machines() {
		if !m.Alive() {
			continue
		}
		ready := m.ExpectedReady(now, d.view)
		slack := float64(t.Deadline) - ready
		if slack < 0 {
			continue
		}
		p := d.view.ScaledProfile(t.Type, m.ID, m.Speed()).CDF(int64(slack))
		if p > best {
			best = p
		}
	}
	return best
}

// Dispatch is one routing decision of the front-end dispatcher.
type Dispatch struct {
	Tick     int64
	TaskID   int
	DC       int  // -1: consumed at the gate (dropped or buffered)
	Failover bool // re-routing after an outage: salvage, bounce retry, loss
	// Attempt counts prior failed dispatches of this task under detection
	// (0 for fresh arrivals and buffer drains). Not part of the golden
	// dispatch-blob format, which predates it.
	Attempt int
}

// Engine drives one sharded trial. Like the simulator it wraps, it is
// single-use and not safe for concurrent use — parallel trial runners
// build one engine per trial.
type Engine struct {
	cfg    Config
	matrix *pet.Matrix
	policy Policy
	dcs    []*DC

	// clusterEvents is the dc-fail/dc-recover schedule in (tick,
	// declaration) order; evPos is the next to fire.
	clusterEvents []scenario.Event
	evPos         int

	collector  *metrics.Stream
	recycler   workload.Recycler
	dispatches []Dispatch
	scratch    []*task.Task
	now        int64

	// Detection-and-admission layer state (failover.go). With a disabled
	// policy only gateStats.Dropped ever moves.
	fo        *scenario.FailoverPolicy
	gate      gateHeap
	gateSeq   int
	epochs    []int
	buf       []*task.Task
	gateStats metrics.GateStats
	lostByDC  []int

	// Live-driving state (live.go): armed by StartLive, after which the
	// engine is driven one submission at a time instead of by RunSource.
	liveOn        bool
	liveSubmitted int
	liveArrival   int64

	// Telemetry: the engine's own shard (tel/sampler/pr), the engine's
	// dispatch-phase timer, and the per-DC timers it merges at the end.
	tel          *telemetry.Registry
	sampler      *telemetry.Sampler
	pr           engineProbes
	lastArrivals int64
	phases       *telemetry.PhaseTimer
	dcPhases     []*telemetry.PhaseTimer
}

// New validates cfg, partitions the fleet, and builds the per-datacenter
// simulators.
func New(cfg Config) (*Engine, error) {
	if cfg.Sim.PET == nil || cfg.Sim.PET.NumMachines() == 0 {
		return nil, fmt.Errorf("cluster: missing PET matrix")
	}
	nm := cfg.Sim.PET.NumMachines()
	if cfg.DCs < 1 {
		return nil, fmt.Errorf("cluster: %d datacenters for %d machines (need 1..%d)", cfg.DCs, nm, nm)
	}
	if cfg.DCs > nm {
		return nil, fmt.Errorf("cluster: %d datacenters for %d machines leaves %d empty (contiguous split %s; need 1..%d)",
			cfg.DCs, nm, cfg.DCs-nm, partitionSplit(nm, cfg.DCs), nm)
	}
	if cfg.Sim.Machines != nil {
		return nil, fmt.Errorf("cluster: the simulator template must leave Machines nil; the engine partitions the fleet")
	}
	if cfg.Sim.Trace != nil {
		return nil, fmt.Errorf("cluster: set per-DC recorders via Traces, not the simulator template")
	}
	if cfg.Sim.Telemetry != nil {
		return nil, fmt.Errorf("cluster: set telemetry via Config.Telemetry, not the simulator template")
	}
	if cfg.Sim.PhaseTimer != nil {
		return nil, fmt.Errorf("cluster: set phase timing via Config.Phases, not the simulator template (parallel workers must not share a timer)")
	}
	if cfg.Traces != nil && len(cfg.Traces) != cfg.DCs {
		return nil, fmt.Errorf("cluster: %d trace recorders for %d datacenters", len(cfg.Traces), cfg.DCs)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = &RoundRobin{}
	}
	clusterEvents, perDC, err := splitScenario(cfg.Sim.Scenario, nm, cfg.DCs)
	if err != nil {
		return nil, err
	}
	// Resolve the checkpoint/restore policy before the scenario is split:
	// the per-DC sub-scenarios carry only that datacenter's fleet events,
	// so a policy declared on the cluster scenario must be pinned onto the
	// per-DC simulator configs explicitly — every datacenter checkpoints
	// (and applies the same survival mode at dc-fail) identically.
	ckpt := cfg.Sim.Checkpoint
	if ckpt == nil && cfg.Sim.Scenario != nil {
		ckpt = cfg.Sim.Scenario.Checkpoint
	}
	// The belief policy is pinned the same way — each datacenter gets its
	// own belief instance (its own online estimator learning from its own
	// completions) under one shared policy.
	bp := cfg.Sim.Belief
	if bp == nil && cfg.Sim.Scenario != nil {
		bp = cfg.Sim.Scenario.Belief
	}
	// The failover policy is cluster-scoped (it configures the dispatcher,
	// not the datacenters) and resolves like the others: explicit Config
	// wins, else the scenario's. Validate here unconditionally — a static
	// scenario skips ValidateCluster in splitScenario, but a malformed
	// policy must still be rejected.
	fo := cfg.Failover
	if fo == nil && cfg.Sim.Scenario != nil {
		fo = cfg.Sim.Scenario.Failover
	}
	if err := fo.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	e := &Engine{
		cfg: cfg, matrix: cfg.Sim.PET, policy: policy, clusterEvents: clusterEvents,
		fo:     fo,
		epochs: make([]int, cfg.DCs), lostByDC: make([]int, cfg.DCs),
	}
	if cfg.Telemetry != nil {
		e.tel = telemetry.NewRegistry()
		e.pr = newEngineProbes(e.tel, cfg.DCs)
		e.sampler = telemetry.NewSampler(e.tel, cfg.Telemetry)
		e.sampler.Prepare = e.prepareSample
	}
	if cfg.Phases {
		e.phases = telemetry.NewPhaseTimer()
	}
	for d := 0; d < cfg.DCs; d++ {
		lo, hi := blockBounds(d, nm, cfg.DCs)
		cols := make([]int, 0, hi-lo)
		for mi := lo; mi < hi; mi++ {
			cols = append(cols, mi)
		}
		cfgd := cfg.Sim
		cfgd.Machines = cols
		cfgd.Scenario = perDC[d]
		cfgd.Checkpoint = ckpt
		cfgd.Belief = bp
		cfgd.Telemetry = cfg.Telemetry
		if cfg.Phases {
			pt := telemetry.NewPhaseTimer()
			e.dcPhases = append(e.dcPhases, pt)
			cfgd.PhaseTimer = pt
		}
		if cfg.Traces != nil {
			cfgd.Trace = cfg.Traces[d]
		}
		sim, err := simulator.New(cfgd)
		if err != nil {
			return nil, fmt.Errorf("cluster: datacenter %d: %w", d, err)
		}
		e.dcs = append(e.dcs, &DC{index: d, cols: cols, sim: sim, view: sim.View(), alive: true, healthy: true})
	}
	return e, nil
}

// blockBounds returns the half-open global machine range [lo, hi) that
// datacenter d owns under the contiguous partition of nm machines into
// nDCs blocks. When nDCs does not divide nm the remainder spreads
// deterministically: block sizes differ by at most one, with the nm mod
// nDCs larger blocks spread evenly across the index range (8 machines
// into 3 DCs → 2+3+3; 7 into 5 → 1+1+2+1+2). Both New and dcOfMachine
// derive the partition from this single helper, so ownership and
// construction cannot disagree.
func blockBounds(d, nm, nDCs int) (lo, hi int) {
	return d * nm / nDCs, (d + 1) * nm / nDCs
}

// partitionSplit renders the contiguous partition's block sizes ("2+3+3")
// for error messages, so a rejected configuration reports the split it
// would have produced.
func partitionSplit(nm, nDCs int) string {
	var b strings.Builder
	for d := 0; d < nDCs; d++ {
		lo, hi := blockBounds(d, nm, nDCs)
		if d > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", hi-lo)
	}
	return b.String()
}

// dcOfMachine returns the datacenter owning global machine index mi under
// the contiguous partition of nm machines into nDCs blocks.
func dcOfMachine(mi, nm, nDCs int) int {
	for d := 0; d < nDCs; d++ {
		if _, hi := blockBounds(d, nm, nDCs); mi < hi {
			return d
		}
	}
	return nDCs - 1
}

// splitScenario validates a cluster scenario and splits it: cluster-scoped
// dc-fail/dc-recover events are returned in (tick, declaration) order for
// the engine, while machine-scoped events and InitialDown entries go to
// the owning datacenter's sub-scenario (machine IDs stay global; the
// partitioned simulators resolve them). Burst windows stay with the
// caller's workload configuration, exactly as in single-fleet runs.
func splitScenario(sc *scenario.Scenario, nm, nDCs int) ([]scenario.Event, []*scenario.Scenario, error) {
	perDC := make([]*scenario.Scenario, nDCs)
	if sc.IsStatic() {
		return nil, perDC, nil
	}
	if err := sc.ValidateCluster(nm, nDCs); err != nil {
		return nil, nil, fmt.Errorf("cluster: %w", err)
	}
	var clusterEvents []scenario.Event
	sub := func(d int) *scenario.Scenario {
		if perDC[d] == nil {
			perDC[d] = scenario.New(fmt.Sprintf("%s@dc%d", sc.Name, d))
		}
		return perDC[d]
	}
	for _, ev := range sc.Events {
		if ev.Kind == scenario.DCFail || ev.Kind == scenario.DCRecover {
			clusterEvents = append(clusterEvents, ev)
			continue
		}
		d := dcOfMachine(ev.Machine, nm, nDCs)
		s := sub(d)
		s.Events = append(s.Events, ev)
	}
	for _, mi := range sc.InitialDown {
		s := sub(dcOfMachine(mi, nm, nDCs))
		s.InitialDown = append(s.InitialDown, mi)
	}
	sort.SliceStable(clusterEvents, func(i, j int) bool { return clusterEvents[i].Tick < clusterEvents[j].Tick })
	return clusterEvents, perDC, nil
}

// RunSource runs the sharded trial to the end of the stream: arrivals are
// pulled from one shared source and fanned out through the dispatcher, and
// every datacenter's exits aggregate into cluster-level statistics. It
// returns the cluster aggregate (robustness over everything that flowed
// through the cluster, cost summed across datacenters) plus each
// datacenter's own trial statistics.
func (e *Engine) RunSource(src workload.Source) (metrics.TrialStats, []metrics.TrialStats, error) {
	trim := e.cfg.Sim.Trim
	if trim == 0 {
		trim = metrics.DefaultTrim
	}
	e.collector = metrics.NewStream(e.matrix.NumTypes(), trim)
	e.recycler, _ = src.(workload.Recycler)
	for _, d := range e.dcs {
		d.sim.Begin(e.collector)
		d.sim.SetRecycler(e.recycler)
	}
	if e.cfg.Parallel && len(e.dcs) > 1 {
		if err := e.runParallel(src); err != nil {
			return metrics.TrialStats{}, nil, err
		}
	} else if err := e.runSequential(src); err != nil {
		return metrics.TrialStats{}, nil, err
	}
	// The drivers return with every arrival and event consumed; anything
	// still waiting in the gate buffer has nowhere left to go.
	e.flushGateBuffer()
	// Flush the engine shard at the cluster-wide end of simulated time.
	// The sequential driver advances e.now on per-DC events while the
	// parallel drivers leave those to the workers, so e.now alone is
	// driver-dependent; the max over the datacenters' clocks is not.
	end := e.now
	for _, d := range e.dcs {
		if t := d.sim.Now(); t > end {
			end = t
		}
	}
	e.sampler.Flush(end)
	perDC := make([]metrics.TrialStats, len(e.dcs))
	total := 0.0
	for i, d := range e.dcs {
		perDC[i] = d.sim.Finalize()
		total += perDC[i].TotalCost
	}
	return e.collector.Finalize(total), perDC, nil
}

// runSequential interleaves the datacenters on the caller's goroutine —
// the reference event order every other driver must reproduce.
func (e *Engine) runSequential(src workload.Source) error {
	next, hasNext, err := e.pull(src)
	if err != nil {
		return err
	}
	for {
		tick, dc, ok := e.nextEvent()
		switch {
		case hasNext && (!ok || next.Arrival <= tick):
			// Arrivals win ties, exactly as in the single-fleet engine.
			if err := e.dispatch(next); err != nil {
				return err
			}
			if next, hasNext, err = e.pull(src); err != nil {
				return err
			}
		case ok:
			if err := e.stepNext(tick, dc); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// pull fetches and order-checks the stream's next task (per-task
// validation happens in the receiving datacenter's Admit).
func (e *Engine) pull(src workload.Source) (*task.Task, bool, error) {
	t, ok := src.Next()
	if !ok {
		return nil, false, nil
	}
	if t.Arrival < e.now {
		return nil, false, fmt.Errorf("cluster: source emitted task %d arriving at %d after the clock reached %d", t.ID, t.Arrival, e.now)
	}
	return t, true, nil
}

// Sentinel dc values returned by nextEvent for engine-level event sources.
const (
	dcCluster = -1 // dc-fail/dc-recover truth schedule
	dcGate    = -2 // gate-event queue (detection, trust, salvage, retry)
)

// nextEvent returns the earliest pending event across the cluster — the
// engine's own dc-fail/dc-recover schedule, the gate-event queue, and
// every datacenter's internal queue. Ties break cluster-first, then gate,
// then lowest datacenter index: a fixed, documented order that keeps
// multi-DC replays byte-identical (truth events settle before the belief
// observations and retries that depend on them).
func (e *Engine) nextEvent() (tick int64, dc int, ok bool) {
	if e.evPos < len(e.clusterEvents) {
		tick, dc, ok = e.clusterEvents[e.evPos].Tick, dcCluster, true
	}
	if t, has := e.nextGateTick(); has && (!ok || t < tick) {
		tick, dc, ok = t, dcGate, true
	}
	for i, d := range e.dcs {
		if t, has := d.sim.NextEventTick(); has && (!ok || t < tick) {
			tick, dc, ok = t, i, true
		}
	}
	return tick, dc, ok
}

// dispatch routes one arrival through the gate (routeArrival decides its
// fate; admitted tasks enter their datacenter's simulator immediately —
// this is the sequential driver's admit step).
func (e *Engine) dispatch(t *task.Task) error {
	d, admit, err := e.routeArrival(t)
	if err != nil || !admit {
		return err
	}
	return e.dcs[d].sim.Admit(t)
}

// pick runs the routing policy and validates its answer — a custom Policy
// returning an out-of-range index or a dead datacenter is an error on
// every dispatch path (arrivals and failover alike), never a panic or a
// silent injection into a dead fleet.
func (e *Engine) pick(now int64, t *task.Task) (int, error) {
	d := e.policy.Pick(now, t, e.dcs)
	if d < 0 || d >= len(e.dcs) || !e.dcs[d].healthy {
		return 0, fmt.Errorf("cluster: policy %q picked datacenter %d (believed-healthy datacenters only)", e.policy.Name(), d)
	}
	return d, nil
}

// stepClusterEvent fires the next dc-fail/dc-recover and ticks the
// engine's telemetry shard — every driver calls it with workers quiescent
// at e.now, so the shard sequence is identical across drivers.
func (e *Engine) stepClusterEvent() error {
	err := e.applyClusterEvent()
	e.sampler.Tick(e.now)
	return err
}

// applyClusterEvent fires the next dc-fail/dc-recover — a ground-truth
// transition. Under the oracle failover policy the dispatcher's belief
// moves in the same step: a dc-fail drains the datacenter through the
// simulator's FailDC and (under the Requeue policy) re-dispatches the
// drained tasks to surviving datacenters in drain order through the same
// routing policy as arrivals. Under heartbeat detection only the truth
// moves here; the belief follows through the gate events that
// scheduleDetection and the recovery probation plant.
func (e *Engine) applyClusterEvent() error {
	ev := e.clusterEvents[e.evPos]
	e.evPos++
	d := e.dcs[ev.DC]
	switch ev.Kind {
	case scenario.DCFail:
		if !d.alive {
			return nil // failing a failed datacenter is a no-op, like machine.Fail
		}
		e.bumpEpoch(ev.DC)
		d.alive = false
		if e.fo.Detection() && d.healthy {
			e.scheduleDetection(d, ev.Tick, ev.Policy == scenario.Drop)
			return nil
		}
		// Detected instantly: the oracle, or a refail during probation
		// (the monitor never re-trusted the datacenter, so nothing about
		// the belief changes — the drained tasks reroute immediately).
		d.healthy = false
		drained := d.sim.FailDC(ev.Tick, ev.Policy == scenario.Drop, e.scratch[:0])
		for _, t := range drained {
			if err := e.routeDrained(d, t, ev.Tick); err != nil {
				e.scratch = drained[:0]
				return err
			}
		}
		e.scratch = drained[:0]
	case scenario.DCRecover:
		if d.alive {
			return nil // recovering an in-service datacenter is a no-op
		}
		e.bumpEpoch(ev.DC)
		d.alive = true
		d.sim.RecoverDC(ev.Tick)
		if e.fo.Detection() {
			if !d.healthy {
				// Re-trust only after the first post-recovery heartbeat
				// plus the probation window.
				hb := e.fo.EffectiveHeartbeatEvery()
				e.pushGate(gateEvent{tick: heartbeatAt(ev.Tick, hb) + e.fo.Probation, kind: gevTrust, dc: ev.DC, epoch: e.epochs[ev.DC]})
			}
			return nil
		}
		d.healthy = true
		return e.drainGateBuffer(ev.Tick)
	}
	return nil
}

// dropAtGate exits a task that no datacenter can accept and no buffer can
// hold.
func (e *Engine) dropAtGate(t *task.Task, now int64) {
	t.State = task.StateDropped
	t.Finish = now
	e.collector.Observe(t)
	e.gateStats.Dropped++
	if e.recycler != nil {
		e.recycler.Recycle(t)
	}
}

func (e *Engine) record(d Dispatch) {
	if e.cfg.RecordDispatch {
		e.dispatches = append(e.dispatches, d)
	}
}

// DCList exposes the datacenters (inspection, tests, reporting).
func (e *Engine) DCList() []*DC { return e.dcs }

// Dispatches returns the routing log (empty unless Config.RecordDispatch).
func (e *Engine) Dispatches() []Dispatch { return e.dispatches }

// GateDrops returns how many tasks were dropped at the gate because no
// datacenter was believed healthy (and no gate buffer could hold them).
func (e *Engine) GateDrops() int { return e.gateStats.Dropped }

// Gate returns the dispatcher's admission-layer counters: the three
// distinct loss classes (dropped at gate, shed from buffer, lost to
// undetected outages) plus retry, buffering, and detection-lag telemetry.
func (e *Engine) Gate() metrics.GateStats { return e.gateStats }

// LostUndetectedByDC returns, per datacenter, how many tasks were lost
// while bouncing off that datacenter during its undetected outages.
func (e *Engine) LostUndetectedByDC() []int { return e.lostByDC }

// Failover returns the resolved failover policy (nil when disabled).
func (e *Engine) Failover() *scenario.FailoverPolicy { return e.fo }

// Policy returns the engine's dispatch policy.
func (e *Engine) Policy() Policy { return e.policy }

// Machines flattens every datacenter's fleet in partition order
// (diagnostics and tests).
func (e *Engine) Machines() []*machine.Machine {
	var out []*machine.Machine
	for _, d := range e.dcs {
		out = append(out, d.sim.Machines()...)
	}
	return out
}

func errUnknownPolicy(name string) error {
	return fmt.Errorf("cluster: unknown dispatch policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
}
