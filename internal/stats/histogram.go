package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binning of real-valued samples. The PET
// builder turns 500 gamma execution-time samples into a histogram and the
// histogram into a discrete PMF, mirroring the paper's offline profiling
// step ("modeling them via a histogram in an offline manner").
type Histogram struct {
	Origin float64   // left edge of bin 0
	Width  float64   // bin width (> 0)
	Counts []float64 // per-bin counts (float to allow weighting)
	Total  float64   // sum of all counts
}

// NewHistogram creates an empty histogram with nbins bins of the given
// width starting at origin.
func NewHistogram(origin, width float64, nbins int) *Histogram {
	if width <= 0 {
		panic(fmt.Sprintf("stats: histogram width must be positive, got %v", width))
	}
	if nbins <= 0 {
		panic(fmt.Sprintf("stats: histogram needs at least one bin, got %d", nbins))
	}
	return &Histogram{Origin: origin, Width: width, Counts: make([]float64, nbins)}
}

// HistogramFromSamples builds a histogram that spans [min(samples),
// max(samples)] with the requested number of bins. Degenerate inputs
// (all-equal samples) produce a single-bin histogram.
func HistogramFromSamples(samples []float64, nbins int) *Histogram {
	if len(samples) == 0 {
		panic("stats: HistogramFromSamples with no samples")
	}
	lo, hi := MinMax(samples)
	if hi == lo {
		// Degenerate input: one bin centered exactly on the common value.
		h := NewHistogram(lo-0.5, 1, 1)
		for range samples {
			h.Counts[0]++
			h.Total++
		}
		return h
	}
	width := (hi - lo) / float64(nbins)
	h := NewHistogram(lo, width, nbins)
	for _, s := range samples {
		h.Add(s, 1)
	}
	return h
}

// Add records a sample with the given weight. Samples outside the bin range
// are clamped into the first or last bin so no mass is lost.
func (h *Histogram) Add(x, weight float64) {
	idx := int(math.Floor((x - h.Origin) / h.Width))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx] += weight
	h.Total += weight
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Origin + (float64(i)+0.5)*h.Width
}

// Normalized returns the per-bin probabilities (counts divided by total).
// An empty histogram yields all zeros.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / h.Total
	}
	return out
}

// Mean returns the histogram's mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.Counts {
		s += c * h.BinCenter(i)
	}
	return s / h.Total
}
