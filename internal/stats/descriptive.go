package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It returns 0 for fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population (n denominator) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness computes the adjusted Fisher–Pearson sample skewness used by the
// paper's Eq. 6:
//
//	S = sqrt(N(N-1))/(N-2) * (sum (Yi - Ybar)^3 / N) / sigma^3
//
// where sigma is the population standard deviation. It returns 0 when the
// statistic is undefined (fewer than three observations or zero variance).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if len(xs) < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return math.Sqrt(n*(n-1)) / (n - 2) * g1
}

// BoundSkewness clamps a skewness value into [-1, 1], the "bounded
// skewness" s of the paper: |S| >= 1 is considered highly skewed, so the
// per-task threshold adjustment saturates there.
func BoundSkewness(s float64) float64 {
	switch {
	case s > 1:
		return 1
	case s < -1:
		return -1
	case math.IsNaN(s):
		return 0
	default:
		return s
	}
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i); 0 if total weight is 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// WeightedMoments returns the mean, population variance and population
// skewness of a discrete distribution given by values xs with probability
// weights ws. The weights need not be normalized. This is how PMF moments
// are computed without materializing samples.
func WeightedMoments(xs, ws []float64) (mean, variance, skew float64) {
	if len(xs) != len(ws) {
		panic("stats: WeightedMoments length mismatch")
	}
	var w float64
	for _, v := range ws {
		w += v
	}
	if w == 0 {
		return 0, 0, 0
	}
	for i, x := range xs {
		mean += ws[i] * x
	}
	mean /= w
	var m2, m3 float64
	for i, x := range xs {
		d := x - mean
		m2 += ws[i] * d * d
		m3 += ws[i] * d * d * d
	}
	m2 /= w
	m3 /= w
	variance = m2
	if m2 > 0 {
		skew = m3 / math.Pow(m2, 1.5)
	}
	return mean, variance, skew
}

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice because no sensible zero exists for both bounds at once.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
