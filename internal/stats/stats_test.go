package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	// Drawing from the child must not perturb the parent relative to a
	// parent that split but never used its child.
	parent2 := NewRNG(1)
	child2 := parent2.Split()
	for i := 0; i < 50; i++ {
		child.Float64()
	}
	_ = child2
	for i := 0; i < 20; i++ {
		if parent.Float64() != parent2.Float64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.UniformRange(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("UniformRange out of bounds: %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UniformRange(9,5) did not panic")
		}
	}()
	r.UniformRange(9, 5)
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(11)
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0}, {1, 1}, {2.5, 3}, {10, 0.5}, {20, 5},
	}
	const n = 60000
	for _, c := range cases {
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := r.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("Gamma(%v,%v) produced non-positive %v", c.shape, c.scale, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ≈ %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.10*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) var = %v, want ≈ %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaMeanShape(t *testing.T) {
	r := NewRNG(13)
	const n = 40000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.GammaMeanShape(125, 4)
	}
	if mean := sum / n; math.Abs(mean-125) > 3 {
		t.Errorf("GammaMeanShape(125, 4) mean = %v, want ≈ 125", mean)
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { r.Gamma(0, 1) },
		func() { r.Gamma(1, -1) },
		func() { r.GammaMeanShape(-5, 2) },
		func() { r.Exponential(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad parameters did not panic")
				}
			}()
			f()
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(17)
	const n = 40000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(50)
	}
	if mean := sum / n; math.Abs(mean-50) > 2 {
		t.Errorf("Exponential(50) mean = %v, want ≈ 50", mean)
	}
}

func TestGammaRateVariance(t *testing.T) {
	r := NewRNG(19)
	const n = 60000
	mean, varFrac := 40.0, 0.10
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.GammaRate(mean, varFrac)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 1 {
		t.Errorf("GammaRate mean = %v, want ≈ %v", m, mean)
	}
	// Paper: variance = 10% of the mean.
	if want := varFrac * mean; math.Abs(variance-want) > 0.3 {
		t.Errorf("GammaRate variance = %v, want ≈ %v", variance, want)
	}
	// Degenerate varFrac returns the mean deterministically.
	if got := r.GammaRate(mean, 0); got != mean {
		t.Errorf("GammaRate with varFrac 0 = %v, want %v", got, mean)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := PopVariance(xs); got != 4 {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || PopVariance(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
}

func TestSkewnessMatchesEq6(t *testing.T) {
	// Symmetric data: zero skew.
	if got := Skewness([]float64{1, 2, 3, 4, 5}); math.Abs(got) > 1e-12 {
		t.Errorf("symmetric skewness = %v, want 0", got)
	}
	// Right-tailed data: positive.
	if got := Skewness([]float64{1, 1, 1, 1, 10}); got <= 0 {
		t.Errorf("right-tailed skewness = %v, want > 0", got)
	}
	// Left-tailed data: negative.
	if got := Skewness([]float64{-10, 1, 1, 1, 1}); got >= 0 {
		t.Errorf("left-tailed skewness = %v, want < 0", got)
	}
	// Degenerate inputs.
	if got := Skewness([]float64{1, 2}); got != 0 {
		t.Errorf("n<3 skewness = %v, want 0", got)
	}
	if got := Skewness([]float64{3, 3, 3, 3}); got != 0 {
		t.Errorf("zero-variance skewness = %v, want 0", got)
	}
}

func TestBoundSkewness(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {-0.5, -0.5}, {1.5, 1}, {-3, -1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := BoundSkewness(c.in); got != c.want {
			t.Errorf("BoundSkewness(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	xs := []float64{1, 2, 3}
	ws := []float64{1, 0, 1}
	if got := WeightedMean(xs, ws); got != 2 {
		t.Errorf("WeightedMean = %v, want 2", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Errorf("empty WeightedMean = %v, want 0", got)
	}
}

func TestWeightedMoments(t *testing.T) {
	// Uniform weights reproduce population moments.
	xs := []float64{1, 2, 3, 4}
	ws := []float64{1, 1, 1, 1}
	mean, variance, _ := WeightedMoments(xs, ws)
	if mean != 2.5 {
		t.Errorf("mean = %v, want 2.5", mean)
	}
	if math.Abs(variance-1.25) > 1e-12 {
		t.Errorf("variance = %v, want 1.25", variance)
	}
	// Weights need not be normalized.
	mean2, var2, sk2 := WeightedMoments(xs, []float64{2, 2, 2, 2})
	if mean2 != mean || math.Abs(var2-variance) > 1e-12 {
		t.Error("unnormalized weights changed moments")
	}
	if math.Abs(sk2) > 1e-12 {
		t.Errorf("symmetric skew = %v, want 0", sk2)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -2, 8, 0})
	if lo != -2 || hi != 8 {
		t.Errorf("MinMax = (%v, %v), want (-2, 8)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestTCritical95(t *testing.T) {
	if got := TCritical95(29); got != 2.045 {
		t.Errorf("TCritical95(29) = %v, want 2.045 (30-trial experiments)", got)
	}
	if got := TCritical95(1); got != 12.706 {
		t.Errorf("TCritical95(1) = %v, want 12.706", got)
	}
	if got := TCritical95(10000); got != 1.960 {
		t.Errorf("TCritical95(10000) = %v, want 1.960", got)
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) should be NaN")
	}
}

func TestConfidence95(t *testing.T) {
	xs := []float64{10, 12, 14, 16, 18}
	ci := Confidence95(xs)
	if ci.Mean != 14 {
		t.Errorf("CI mean = %v, want 14", ci.Mean)
	}
	// sd = sqrt(10), sem = sqrt(2), t(4) = 2.776
	want := 2.776 * math.Sqrt2 * math.Sqrt(5) / math.Sqrt(5) // = 2.776*sqrt(2)
	if math.Abs(ci.HalfSpan-2.776*math.Sqrt(2)) > 1e-9 {
		t.Errorf("CI half-span = %v, want %v", ci.HalfSpan, want)
	}
	if ci.Lo() >= ci.Mean || ci.Hi() <= ci.Mean {
		t.Error("CI bounds not bracketing mean")
	}
	single := Confidence95([]float64{5})
	if single.HalfSpan != 0 || single.Mean != 5 {
		t.Errorf("single-observation CI = %+v", single)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(5, 1)   // bin 0
	h.Add(15, 2)  // bin 1
	h.Add(-3, 1)  // clamps to bin 0
	h.Add(999, 1) // clamps to bin 4
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total != 5 {
		t.Errorf("Total = %v, want 5", h.Total)
	}
	if got := h.BinCenter(1); got != 15 {
		t.Errorf("BinCenter(1) = %v, want 15", got)
	}
	norm := h.Normalized()
	var sum float64
	for _, v := range norm {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("normalized sum = %v, want 1", sum)
	}
}

func TestHistogramFromSamples(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h := HistogramFromSamples(samples, 5)
	if h.Total != 10 {
		t.Errorf("Total = %v, want 10", h.Total)
	}
	if math.Abs(h.Mean()-5.5) > 1.0 {
		t.Errorf("Mean = %v, want ≈ 5.5", h.Mean())
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := HistogramFromSamples([]float64{7, 7, 7}, 4)
	if len(h.Counts) != 1 {
		t.Fatalf("degenerate bins = %d, want 1", len(h.Counts))
	}
	if got := h.BinCenter(0); got != 7 {
		t.Errorf("degenerate BinCenter = %v, want 7", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
		func() { HistogramFromSamples(nil, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram construction did not panic")
				}
			}()
			f()
		}()
	}
}
