// Package stats provides the statistical substrate used throughout the
// task-pruning simulator: a seedable random number generator, gamma-family
// samplers, histogram construction, descriptive statistics (including the
// bounded sample skewness of paper Eq. 6), and Student-t confidence
// intervals for reporting 30-trial experiment results.
//
// Go's ecosystem lacks a SciPy-equivalent; this package implements the
// small slice of it that the paper's evaluation methodology requires, on
// top of the standard library only.
package stats

import (
	"math/rand"
)

// RNG is a deterministic, seedable source of randomness. Every simulation
// trial owns exactly one RNG so trials are reproducible and independent:
// trial k of an experiment with base seed s uses NewRNG(s + k).
//
// RNG is not safe for concurrent use; the experiment runner gives each
// worker goroutine its own instance.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator from r in a deterministic
// way. It is used to give sub-systems (e.g. workload generation vs. actual
// execution-time draws) decoupled streams so that changing how many values
// one consumer draws does not perturb another consumer's sequence.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// UniformRange returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *RNG) UniformRange(lo, hi float64) float64 {
	if hi < lo {
		panic("stats: UniformRange with hi < lo")
	}
	return lo + (hi-lo)*r.src.Float64()
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
