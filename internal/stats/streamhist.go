package stats

import (
	"fmt"
	"math"
)

// StreamHist is a bounded-memory streaming histogram of non-negative
// samples (execution durations in ticks). Unlike Histogram, whose range is
// fixed at construction, a StreamHist learns its range as samples arrive:
// it always spans [0, width·nbins), and when a sample lands past the right
// edge the bin width doubles (adjacent bins merging pairwise) until the
// sample fits. The bin count never changes, so memory stays O(nbins) over
// an unbounded stream while no mass is ever clamped into an edge bin the
// way Histogram.Add clamps.
//
// The online PET belief feeds one StreamHist per (task type, machine) cell
// with observed completion durations and periodically converts it into a
// PMF (via Snapshot and pmf.FromHistogram), mirroring the paper's offline
// histogram-profiling step in streaming form. The exact running mean is
// tracked separately from the bins, so estimator-convergence checks are
// not limited by bin resolution.
type StreamHist struct {
	width  float64 // current bin width (0 until the first sample)
	counts []float64
	total  float64
	sum    float64
}

// NewStreamHist returns an empty streaming histogram with nbins bins. The
// bin width is chosen by the first sample and doubles as the range grows.
func NewStreamHist(nbins int) *StreamHist {
	if nbins < 2 {
		panic(fmt.Sprintf("stats: StreamHist needs at least two bins, got %d", nbins))
	}
	return &StreamHist{counts: make([]float64, nbins)}
}

// Add records one sample. Negative and non-finite samples panic: durations
// are positive by construction, so such a sample is a caller bug.
func (h *StreamHist) Add(x float64) {
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("stats: StreamHist sample must be finite and non-negative, got %v", x))
	}
	if h.width == 0 {
		// First sample sets the scale: place it around the middle of the
		// range so early streams grow in either direction without an
		// immediate cascade of doublings. Width is at least 1 — durations
		// are integer ticks, so finer bins cannot separate anything.
		h.width = math.Max(1, math.Ceil(2*x/float64(len(h.counts))))
	}
	for x >= h.width*float64(len(h.counts)) {
		h.double()
	}
	idx := int(x / h.width)
	if idx >= len(h.counts) { // float rounding at the right edge
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += x
}

// double merges adjacent bin pairs, doubling the width and halving the
// resolution while keeping the span's left edge at zero.
func (h *StreamHist) double() {
	n := len(h.counts)
	for i := 0; i < n/2; i++ {
		h.counts[i] = h.counts[2*i] + h.counts[2*i+1]
	}
	if n%2 == 1 {
		h.counts[n/2] = h.counts[n-1]
		for i := n/2 + 1; i < n; i++ {
			h.counts[i] = 0
		}
	} else {
		for i := n / 2; i < n; i++ {
			h.counts[i] = 0
		}
	}
	h.width *= 2
}

// Count returns how many samples were added.
func (h *StreamHist) Count() int64 { return int64(h.total) }

// Mean returns the exact running mean of the samples (not the binned
// approximation); 0 when empty.
func (h *StreamHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / h.total
}

// Snapshot returns the current binning as a fixed-range Histogram (counts
// copied), ready for pmf.FromHistogram. It panics on an empty histogram —
// there is no distribution to snapshot yet.
func (h *StreamHist) Snapshot() *Histogram {
	if h.total == 0 {
		panic("stats: Snapshot of an empty StreamHist")
	}
	out := NewHistogram(0, h.width, len(h.counts))
	copy(out.Counts, h.counts)
	out.Total = h.total
	return out
}
