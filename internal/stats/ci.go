package stats

import "math"

// tCritical95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom (index 0 unused). Values beyond the table fall back to
// the normal approximation 1.960. The paper reports the mean and 95%
// confidence interval of 30 workload trials (df = 29 -> 2.045).
var tCritical95 = []float64{
	math.NaN(),
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	2.040, 2.037, 2.035, 2.032, 2.030, 2.028, 2.026, 2.024, 2.023, 2.021,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tCritical95) {
		return tCritical95[df]
	}
	return 1.960
}

// CI is a symmetric confidence interval around a sample mean.
type CI struct {
	Mean     float64 // sample mean
	HalfSpan float64 // half-width of the interval; Mean +/- HalfSpan
	N        int     // number of observations
}

// Lo returns the lower bound of the interval.
func (c CI) Lo() float64 { return c.Mean - c.HalfSpan }

// Hi returns the upper bound of the interval.
func (c CI) Hi() float64 { return c.Mean + c.HalfSpan }

// Confidence95 computes the mean and two-sided 95% Student-t confidence
// interval of xs. With fewer than two observations the half-span is zero.
func Confidence95(xs []float64) CI {
	n := len(xs)
	ci := CI{Mean: Mean(xs), N: n}
	if n < 2 {
		return ci
	}
	sem := StdDev(xs) / math.Sqrt(float64(n))
	ci.HalfSpan = TCritical95(n-1) * sem
	return ci
}
