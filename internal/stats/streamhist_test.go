package stats

import (
	"math"
	"testing"
)

func TestStreamHistMeanIsExact(t *testing.T) {
	h := NewStreamHist(8)
	vals := []float64{3, 17, 42, 5, 9, 130, 7}
	var sum float64
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count %d, want %d", h.Count(), len(vals))
	}
	if got, want := h.Mean(), sum/float64(len(vals)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean %v, want exact %v (not the binned approximation)", got, want)
	}
}

func TestStreamHistGrowsByDoubling(t *testing.T) {
	h := NewStreamHist(4)
	h.Add(4) // width = ceil(2*4/4) = 2, span [0,8)
	if h.width != 2 {
		t.Fatalf("first-sample width %v, want 2", h.width)
	}
	h.Add(31) // needs span > 31: 8 → 16 → 32, width 8
	if h.width != 8 {
		t.Fatalf("width after growth %v, want 8", h.width)
	}
	// No sample lost in the merges.
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	var total float64
	for _, c := range h.counts {
		total += c
	}
	if total != 2 {
		t.Fatalf("binned mass %v, want 2", total)
	}
}

func TestStreamHistSmallWidthFloor(t *testing.T) {
	h := NewStreamHist(16)
	h.Add(0.5) // 2*0.5/16 < 1: width floors at 1 (durations are ticks)
	if h.width != 1 {
		t.Fatalf("width %v, want the 1-tick floor", h.width)
	}
}

func TestStreamHistSnapshot(t *testing.T) {
	h := NewStreamHist(8)
	for _, v := range []float64{2, 2, 6, 10} {
		h.Add(v)
	}
	s := h.Snapshot()
	if s.Origin != 0 || s.Width != h.width || len(s.Counts) != 8 {
		t.Fatalf("snapshot shape origin=%v width=%v bins=%d", s.Origin, s.Width, len(s.Counts))
	}
	if s.Total != 4 {
		t.Fatalf("snapshot total %v, want 4", s.Total)
	}
	// The snapshot owns its counts: mutating it must not touch the stream.
	s.Counts[0] = 99
	if h.counts[0] == 99 {
		t.Fatal("snapshot shares the live counts slice")
	}
}

func TestStreamHistPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"one bin":  func() { NewStreamHist(1) },
		"negative": func() { NewStreamHist(8).Add(-1) },
		"NaN":      func() { NewStreamHist(8).Add(math.NaN()) },
		"empty snapshot": func() {
			NewStreamHist(8).Snapshot()
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStreamHistOddBinMerge(t *testing.T) {
	h := NewStreamHist(5) // odd bin count: the unpaired last bin carries over
	h.Add(2)              // width 1, span [0,5)
	h.Add(4)              // still in span, bin 4
	h.Add(9)              // forces a doubling to width 2, span [0,10)
	if h.width != 2 {
		t.Fatalf("width %v, want 2", h.width)
	}
	var total float64
	for _, c := range h.counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("binned mass %v after odd merge, want 3", total)
	}
}
