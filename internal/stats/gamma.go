package stats

import (
	"fmt"
	"math"
)

// Gamma draws one sample from a Gamma(shape, scale) distribution using the
// Marsaglia–Tsang squeeze method (2000), the standard rejection sampler for
// shape >= 1, with the usual boosting trick for shape < 1.
//
// The paper builds every PET entry by drawing 500 samples from a gamma
// distribution whose mean equals the benchmark-derived mean execution time
// and whose shape is picked uniformly from [1, 20]; this sampler is the
// foundation of that pipeline.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("stats: Gamma requires positive parameters, got shape=%v scale=%v", shape, scale))
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) then X * U^(1/shape) ~ Gamma(shape).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1.0 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaMeanShape draws a Gamma variate parameterized by its mean and shape
// (scale = mean/shape). This is the parameterization the paper uses: a
// task-type/machine pair has a known mean execution time and a randomly
// chosen shape in [1, 20].
func (r *RNG) GammaMeanShape(mean, shape float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: GammaMeanShape requires positive mean, got %v", mean))
	}
	return r.Gamma(shape, mean/shape)
}

// GammaSamples draws n Gamma(mean, shape) samples.
func (r *RNG) GammaSamples(n int, mean, shape float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.GammaMeanShape(mean, shape)
	}
	return out
}

// Exponential draws from an exponential distribution with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: Exponential requires positive mean, got %v", mean))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// GammaRate draws inter-arrival gaps for the workload generator: a gamma
// distribution with the given mean and a variance equal to varFrac * mean
// (the paper uses variance = 10% of the mean except in the Fig. 9 study).
// For a gamma distribution, variance = mean^2/shape, so
// shape = mean^2/variance = mean/varFrac.
func (r *RNG) GammaRate(mean, varFrac float64) float64 {
	if varFrac <= 0 {
		return mean // degenerate: deterministic arrivals
	}
	variance := varFrac * mean
	shape := mean * mean / variance
	return r.GammaMeanShape(mean, shape)
}
