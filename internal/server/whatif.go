package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"taskprune/internal/metrics"
	"taskprune/internal/scenario"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// The what-if advisor: POST /v1/whatif replays the recent submission
// window under an alternative policy configuration and reports the
// robustness delta — the simulator core doubling as an operations tool
// ("would least-queued over 2 DCs have held this morning's burst?").
// Replays run on fresh engines against the captured ground truth, so they
// never touch the live engine; both sides of the comparison (baseline =
// the running config, candidate = the override) replay the same tasks at
// the same ticks.

// Override selects what the candidate configuration changes. Only
// policy-level knobs are overridable: the fleet, beta, and seed are pinned
// — captured tasks carry per-machine ground-truth execution times and
// stamped deadlines, so changing the fleet or the stamping rules would
// invalidate the captures rather than re-judge them.
type Override struct {
	Heuristic *string `json:"heuristic,omitempty"`
	Route     *string `json:"route,omitempty"`
	DCs       *int    `json:"dcs,omitempty"`
	// Scenario, when present, replaces the whole nested scenario document
	// (fleet events and failover/checkpoint/belief policies).
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

// apply builds the candidate config: the live config with the override's
// fields swapped in, re-validated from scratch.
func (ov Override) apply(base *Config) (*Config, error) {
	cand := *base
	if ov.Heuristic != nil {
		cand.Heuristic = *ov.Heuristic
	}
	if ov.Route != nil {
		cand.Route = *ov.Route
	}
	if ov.DCs != nil {
		cand.DCs = *ov.DCs
	}
	if len(ov.Scenario) > 0 {
		sc, err := scenario.Parse(bytes.NewReader(ov.Scenario))
		if err != nil {
			return nil, fmt.Errorf("server: whatif: %w", err)
		}
		cand.Scenario = sc
	}
	if err := cand.Validate(); err != nil {
		return nil, err
	}
	return &cand, nil
}

// Outcome is one side of a what-if comparison.
type Outcome struct {
	Heuristic     string  `json:"heuristic"`
	Route         string  `json:"route"`
	DCs           int     `json:"dcs"`
	RobustnessPct float64 `json:"robustness_pct"`
	Completed     int     `json:"completed"`
	Missed        int     `json:"missed"`
	Dropped       int     `json:"dropped"`
	Total         int     `json:"total"`
	GateDrops     int     `json:"gate_drops"`
}

// WhatifResult is the advisor's answer: both outcomes over the same
// replayed window, and the candidate-minus-baseline robustness delta.
type WhatifResult struct {
	Window    int     `json:"window"`
	Baseline  Outcome `json:"baseline"`
	Candidate Outcome `json:"candidate"`
	DeltaPct  float64 `json:"delta_pct"`
}

// whatif runs the comparison. It is handler-goroutine work end to end —
// the only shared state it touches is the capture window's read side.
func (s *Server) whatif(ov Override) (WhatifResult, error) {
	cand, err := ov.apply(s.cfg)
	if err != nil {
		return WhatifResult{}, err
	}
	tasks := s.win.tasks()
	if len(tasks) == 0 {
		return WhatifResult{}, fmt.Errorf("server: whatif: no submissions in the window yet")
	}
	base, err := s.replay(s.cfg, tasks)
	if err != nil {
		return WhatifResult{}, err
	}
	// Fresh task structs for the second replay: the first mutated its set.
	candStats, err := s.replay(cand, s.win.tasks())
	if err != nil {
		return WhatifResult{}, err
	}
	res := WhatifResult{
		Window:    len(tasks),
		Baseline:  outcome(s.cfg, base),
		Candidate: outcome(cand, candStats),
	}
	res.DeltaPct = res.Candidate.RobustnessPct - res.Baseline.RobustnessPct
	return res, nil
}

// replay runs one fresh, un-instrumented engine over the captured window.
func (s *Server) replay(cfg *Config, tasks []*task.Task) (replayStats, error) {
	eng, err := cfg.NewEngine(s.matrix, nil)
	if err != nil {
		return replayStats{}, err
	}
	st, _, err := eng.RunSource(workload.FromTasks(tasks))
	if err != nil {
		return replayStats{}, err
	}
	return replayStats{st: st, gateDrops: eng.GateDrops()}, nil
}

type replayStats struct {
	st        metrics.TrialStats
	gateDrops int
}

func outcome(cfg *Config, r replayStats) Outcome {
	return Outcome{
		Heuristic:     cfg.Heuristic,
		Route:         cfg.Route,
		DCs:           cfg.DCs,
		RobustnessPct: r.st.RobustnessPct,
		Completed:     r.st.Completed,
		Missed:        r.st.Missed,
		Dropped:       r.st.Dropped,
		Total:         r.st.Total,
		GateDrops:     r.gateDrops,
	}
}
