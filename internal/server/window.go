package server

import (
	"sync"

	"taskprune/internal/task"
)

// capture is one retained submission: everything needed to replay it under
// an alternative configuration, copied out at admission time (TrueExec
// included — a replay must run against the same ground truth the live
// engine saw, or the comparison measures sampling noise, not policy).
type capture struct {
	id       int
	typ      task.Type
	arrival  int64
	deadline int64
	trueExec []int64
}

// window is the bounded ring of recent submissions behind POST /v1/whatif.
// The pump writes, what-if handlers read; a mutex serializes the two (the
// window is far off the admission hot path — one append per submission).
type window struct {
	mu   sync.Mutex
	caps []capture
	pos  int
	full bool
}

func newWindow(capacity int) *window {
	return &window{caps: make([]capture, capacity)}
}

// add copies one stamped task into the ring, evicting the oldest capture
// once full.
func (w *window) add(t *task.Task) {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := &w.caps[w.pos]
	c.id = t.ID
	c.typ = t.Type
	c.arrival = t.Arrival
	c.deadline = t.Deadline
	c.trueExec = append(c.trueExec[:0], t.TrueExec...)
	w.pos++
	if w.pos == len(w.caps) {
		w.pos = 0
		w.full = true
	}
}

// len reports how many captures the window holds.
func (w *window) len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		return len(w.caps)
	}
	return w.pos
}

// tasks materializes the window's captures as fresh task structs in
// submission (= arrival) order, ready for a replay engine. The returned
// tasks are independent of the ring — the replay mutates and discards
// them.
func (w *window) tasks() []*task.Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.pos
	start := 0
	if w.full {
		n = len(w.caps)
		start = w.pos
	}
	out := make([]*task.Task, 0, n)
	for i := 0; i < n; i++ {
		c := &w.caps[(start+i)%len(w.caps)]
		out = append(out, &task.Task{
			ID:       c.id,
			Type:     c.typ,
			Arrival:  c.arrival,
			Deadline: c.deadline,
			State:    task.StatePending,
			Machine:  -1,
			TrueExec: append([]int64(nil), c.trueExec...),
		})
	}
	return out
}
