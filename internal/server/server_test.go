package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testConfig builds a small video-fleet (4×4) config, optionally mutated.
func testConfig(t *testing.T, mut func(*Config)) *Config {
	t.Helper()
	c, err := ParseConfig(strings.NewReader(`{"name":"test","fleet":{"pet":"video"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if mut != nil {
		mut(c)
	}
	return c
}

// newTestServer boots a daemon without starting the pump; tests that need
// the pump call s.Start() themselves.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, http.Handler) {
	t.Helper()
	s, err := New(testConfig(t, mut))
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Handler()
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func getStatus(t *testing.T, h http.Handler) Status {
	t.Helper()
	w := do(t, h, "GET", "/v1/status", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/status = %d: %s", w.Code, w.Body)
	}
	var st Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("status decode: %v\n%s", err, w.Body)
	}
	return st
}

// waitFor polls the status endpoint until cond holds or the deadline hits.
func waitFor(t *testing.T, h http.Handler, what string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStatus(t, h)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last status: %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitStatusDrain(t *testing.T) {
	s, h := newTestServer(t, nil)
	s.Start()

	w := do(t, h, "POST", "/v1/tasks", `{"tasks":[{"type":0,"count":10},{"type":3,"count":10}]}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("batch submit = %d: %s", w.Code, w.Body)
	}
	var resp submitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 20 {
		t.Fatalf("accepted %d of 20", resp.Accepted)
	}

	// A bare single-task object is also a valid body.
	if w := do(t, h, "POST", "/v1/tasks", `{"type":1,"deadline_in":500}`); w.Code != http.StatusAccepted {
		t.Fatalf("single submit = %d: %s", w.Code, w.Body)
	}

	st := waitFor(t, h, "21 admitted", func(st Status) bool {
		return st.Submitted == 21 && st.QueueDepth == 0
	})
	if st.Accepted != 21 {
		t.Fatalf("accepted counter %d, want 21", st.Accepted)
	}
	if st.Window != 21 {
		t.Fatalf("what-if window %d, want 21", st.Window)
	}
	if st.Draining || st.Final != nil || st.Error != "" {
		t.Fatalf("premature terminal state: %+v", st)
	}
	if len(st.DCs) != 1 || len(st.DCs[0].Machines) != 4 {
		t.Fatalf("dc breakdown %+v, want one 4-machine dc", st.DCs)
	}

	drain(t, s)
	fin := s.Final()
	if fin == nil {
		t.Fatal("no final stats after drain")
	}
	if fin.Total != 21 {
		t.Fatalf("final accounts %d tasks, want 21", fin.Total)
	}

	st = getStatus(t, h)
	if !st.Draining || st.Final == nil {
		t.Fatalf("post-drain status lacks terminal state: %+v", st)
	}
	if st.Counts.Total != 21 {
		t.Fatalf("post-drain counts.total %d, want 21", st.Counts.Total)
	}
	if w := do(t, h, "GET", "/healthz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", w.Code)
	}
	if w := do(t, h, "POST", "/v1/tasks", `{"type":0}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", w.Code)
	}
}

func TestBackpressure429(t *testing.T) {
	// No pump: the buffer fills and stays full, so the 429 is deterministic.
	s, h := newTestServer(t, func(c *Config) { c.Queue = 2 })

	w := do(t, h, "POST", "/v1/tasks", `{"type":0,"count":5}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overfull submit = %d: %s", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var resp submitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 {
		t.Fatalf("partial batch accepted %d, want 2 (queue capacity)", resp.Accepted)
	}
	if resp.Error == "" {
		t.Fatal("429 body without error message")
	}

	st := getStatus(t, h)
	if st.Accepted != 2 || st.Rejected != 1 || st.QueueDepth != 2 {
		t.Fatalf("status accepted=%d rejected=%d depth=%d, want 2/1/2", st.Accepted, st.Rejected, st.QueueDepth)
	}
	// The daemon is still healthy — backpressure is not failure.
	if w := do(t, h, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz under backpressure = %d, want 200", w.Code)
	}
	s.Start()
	drain(t, s)
	if fin := s.Final(); fin == nil || fin.Total != 2 {
		t.Fatalf("final = %+v, want the 2 buffered tasks accounted", fin)
	}
}

func TestSubmitRejections(t *testing.T) {
	s, h := newTestServer(t, nil)
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"type":`},
		{"unknown-field", `{"type":0,"priority":9}`},
		{"unknown-field-batch", `{"tasks":[{"type":0}],"mode":"turbo"}`},
		{"type-too-big", `{"type":99}`},
		{"type-negative", `{"type":-1}`},
		{"negative-count", `{"type":0,"count":-2}`},
		{"negative-deadline", `{"type":0,"deadline_in":-5}`},
		{"empty-batch", `{"tasks":[]}`},
		{"over-cap", `{"type":0,"count":10001}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if w := do(t, h, "POST", "/v1/tasks", tc.body); w.Code != http.StatusBadRequest {
				t.Fatalf("%s = %d: %s", tc.body, w.Code, w.Body)
			}
		})
	}
	// Nothing slipped past validation into the buffer.
	if st := getStatus(t, h); st.Accepted != 0 || st.QueueDepth != 0 {
		t.Fatalf("rejected bodies leaked into the buffer: %+v", st)
	}
	if w := do(t, h, "GET", "/v1/tasks", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/tasks = %d, want 405", w.Code)
	}
	s.Start()
	drain(t, s)
}

func TestWhatif(t *testing.T) {
	s, h := newTestServer(t, nil)
	s.Start()
	if w := do(t, h, "POST", "/v1/whatif", `{"heuristic":"MM"}`); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("whatif on empty window = %d, want 422", w.Code)
	}

	if w := do(t, h, "POST", "/v1/tasks", `{"tasks":[{"type":0,"count":15},{"type":2,"count":15}]}`); w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	waitFor(t, h, "window populated", func(st Status) bool { return st.Window == 30 && st.QueueDepth == 0 })

	w := do(t, h, "POST", "/v1/whatif", `{"heuristic":"MM","route":"least-queued"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("whatif = %d: %s", w.Code, w.Body)
	}
	var res WhatifResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Window != 30 {
		t.Fatalf("replayed window %d, want 30", res.Window)
	}
	if res.Baseline.Heuristic != "PAM" || res.Candidate.Heuristic != "MM" {
		t.Fatalf("heuristics %q vs %q, want PAM vs MM", res.Baseline.Heuristic, res.Candidate.Heuristic)
	}
	if res.Candidate.Route != "least-queued" {
		t.Fatalf("candidate route %q", res.Candidate.Route)
	}
	if res.Baseline.Total != 30 || res.Candidate.Total != 30 {
		t.Fatalf("replay totals %d/%d, want 30/30", res.Baseline.Total, res.Candidate.Total)
	}
	if got := res.Candidate.RobustnessPct - res.Baseline.RobustnessPct; got != res.DeltaPct {
		t.Fatalf("delta %v inconsistent with outcomes (%v)", res.DeltaPct, got)
	}

	// Replays are advisory: the live engine's state must be untouched.
	before := getStatus(t, h)
	for i := 0; i < 3; i++ {
		if w := do(t, h, "POST", "/v1/whatif", `{"dcs":2,"route":"pet-aware"}`); w.Code != http.StatusOK {
			t.Fatalf("whatif #%d = %d: %s", i, w.Code, w.Body)
		}
	}
	if after := getStatus(t, h); after.Submitted != before.Submitted || after.Counts != before.Counts {
		t.Fatalf("whatif perturbed the live engine: %+v vs %+v", before, after)
	}

	if w := do(t, h, "POST", "/v1/whatif", `{"heuristic":"YOLO"}`); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid override = %d, want 422", w.Code)
	}
	if w := do(t, h, "POST", "/v1/whatif", `{"beta":9}`); w.Code != http.StatusBadRequest {
		t.Fatalf("non-overridable field = %d, want 400", w.Code)
	}
	drain(t, s)
}

func TestServeEndpoints(t *testing.T) {
	s, h := newTestServer(t, nil)
	s.Start()

	if w := do(t, h, "GET", "/healthz", ""); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", w.Code, w.Body)
	}
	w := do(t, h, "GET", "/", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Header().Get("Content-Type"), "text/html") {
		t.Fatalf("index = %d %q", w.Code, w.Header().Get("Content-Type"))
	}
	if !strings.Contains(w.Body.String(), "hcsim serve") {
		t.Fatal("status page lacks title")
	}
	if w := do(t, h, "GET", "/metrics", ""); w.Code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", w.Code, w.Body)
	}
	w = do(t, h, "GET", "/metrics.json", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics.json = %d", w.Code)
	}
	var anyJSON map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &anyJSON); err != nil {
		t.Fatalf("metrics.json not JSON: %v", err)
	}
	drain(t, s)
}

// TestDrainFlushesBuffered pins the graceful-drain ordering: submissions
// buffered at shutdown are admitted and accounted before the engine
// finalizes, never discarded.
func TestDrainFlushesBuffered(t *testing.T) {
	s, h := newTestServer(t, nil)
	// Fill the buffer before the pump exists, then start and immediately
	// drain: Close delivers everything buffered before reporting exhaustion.
	if w := do(t, h, "POST", "/v1/tasks", `{"type":1,"count":40}`); w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	s.Start()
	drain(t, s)
	fin := s.Final()
	if fin == nil || fin.Total != 40 {
		t.Fatalf("final = %+v, want all 40 buffered tasks accounted", fin)
	}
	// Exit tallies are over the trimmed window, which must itself be fully
	// accounted.
	if fin.Completed+fin.Missed+fin.Dropped != fin.Window {
		t.Fatalf("exit tallies do not add up: %+v", fin)
	}
}
