package server

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"taskprune/internal/task"
	"taskprune/internal/workload"
)

//go:embed static/index.html
var staticFS embed.FS

// submitRequest is the POST /v1/tasks body: one task, or a batch via
// Count. Type indexes the fleet's PET task types; DeadlineIn, when
// positive, overrides the configured per-type deadline span (ticks from
// arrival).
type submitRequest struct {
	Type       int   `json:"type"`
	Count      int   `json:"count,omitempty"`
	DeadlineIn int64 `json:"deadline_in,omitempty"`
}

// submitBatch wraps multiple submit requests: {"tasks": [...]}. A bare
// single-task object also parses (Tasks stays nil).
type submitBatch struct {
	Tasks []submitRequest `json:"tasks"`
}

// submitResponse reports what a POST /v1/tasks call achieved. A partial
// batch (buffer filled mid-way) answers 429 with Accepted < requested and
// Retry-After set; the accepted prefix stays accepted.
type submitResponse struct {
	Accepted int    `json:"accepted"`
	Queued   int    `json:"queue_depth"`
	Error    string `json:"error,omitempty"`
}

// MaxBatch bounds one POST /v1/tasks request; bigger batches should be
// split by the client (the buffer capacity is the real limit anyway).
const MaxBatch = 10_000

// Handler returns the daemon's mux: the v1 API, the embedded status page,
// and the telemetry export surface (/metrics, /metrics.json, /debug/pprof)
// mounted from the same registry the engine publishes to.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", s.handleTasks)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/whatif", s.handleWhatif)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	tel := s.tel.Handler()
	mux.Handle("GET /metrics", tel)
	mux.Handle("GET /metrics.json", tel)
	mux.Handle("/debug/pprof/", tel)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleTasks admits submissions. Responses: 202 all accepted, 429 buffer
// full (backpressure — includes how much of the batch made it), 400
// malformed, 503 draining or failed.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if !s.healthy() {
		writeError(w, http.StatusServiceUnavailable, "not accepting submissions (draining or failed; see /v1/status)")
		return
	}
	reqs, err := parseSubmit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nTypes := s.matrix.NumTypes()
	total := 0
	for i, req := range reqs {
		if req.Type < 0 || req.Type >= nTypes {
			writeError(w, http.StatusBadRequest, "tasks[%d]: type %d out of range [0,%d)", i, req.Type, nTypes)
			return
		}
		if req.Count < 0 {
			writeError(w, http.StatusBadRequest, "tasks[%d]: negative count %d", i, req.Count)
			return
		}
		if req.DeadlineIn < 0 {
			writeError(w, http.StatusBadRequest, "tasks[%d]: negative deadline_in %d", i, req.DeadlineIn)
			return
		}
		n := req.Count
		if n == 0 {
			n = 1
		}
		total += n
	}
	if total > MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d tasks exceeds the %d per-request cap", total, MaxBatch)
		return
	}
	nm := s.matrix.NumMachines()
	accepted := 0
	for _, req := range reqs {
		n := req.Count
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			t := workload.NewPooledTask(nm)
			t.Type = task.Type(req.Type)
			// Relative deadline rides in Deadline until the pump stamps the
			// arrival tick (0 = use the configured span).
			t.Deadline = req.DeadlineIn
			if err := s.src.Push(t); err != nil {
				s.src.Recycle(t)
				s.accepted.Add(int64(accepted))
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, submitResponse{
					Accepted: accepted,
					Queued:   s.src.Len(),
					Error:    fmt.Sprintf("submission buffer full after %d of %d tasks", accepted, total),
				})
				return
			}
			accepted++
		}
	}
	s.accepted.Add(int64(accepted))
	writeJSON(w, http.StatusAccepted, submitResponse{Accepted: accepted, Queued: s.src.Len()})
}

// maxBody bounds a request body read (a full batch of MaxBatch entries
// fits comfortably).
const maxBody = 1 << 20

// parseSubmit decodes a POST /v1/tasks body: a batch wrapper
// {"tasks": [...]} or a bare task object {"type": N, ...}. Both forms
// reject unknown fields, so the body must be read once and tried twice.
func parseSubmit(r *http.Request) ([]submitRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("reading body: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var batch submitBatch
	if err := dec.Decode(&batch); err == nil && batch.Tasks != nil {
		if len(batch.Tasks) == 0 {
			return nil, fmt.Errorf("empty task batch")
		}
		return batch.Tasks, nil
	}
	dec = json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var single submitRequest
	if err := dec.Decode(&single); err != nil {
		return nil, fmt.Errorf(`body must be {"type": N, ...} or {"tasks": [{"type": N, ...}, ...]}: %v`, err)
	}
	return []submitRequest{single}, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var ov Override
	if err := dec.Decode(&ov); err != nil {
		writeError(w, http.StatusBadRequest, "whatif: %v", err)
		return
	}
	res, err := s.whatif(ov)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.healthy() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	page, err := staticFS.ReadFile("static/index.html")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "status page missing from binary")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(page)
}
