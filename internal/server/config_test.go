package server

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/telemetry"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := ParseConfig(strings.NewReader(`{"name":"minimal","fleet":{"pet":"spec"}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		Name: "minimal", Fleet: Fleet{PET: "spec"},
		Heuristic: "PAM", DCs: 1, Route: "round-robin",
		Queue: DefaultQueue, Window: DefaultWindow,
		Beta: DefaultBeta, Seed: DefaultSeed, SampleEvery: telemetry.DefaultSampleEvery,
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("defaults:\n got %+v\nwant %+v", c, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("minimal config invalid: %v", err)
	}
}

func TestParseConfigEmptyFleetDefaultsToSpec(t *testing.T) {
	c, err := ParseConfig(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Fleet.PET != "spec" {
		t.Fatalf("empty config fleet = %q, want spec", c.Fleet.PET)
	}
}

func TestParseConfigRejectsUnknownFields(t *testing.T) {
	for _, body := range []string{
		`{"fleet":{"pet":"spec"},"bogus":1}`,
		`{"fleet":{"pet":"spec","surprise":true}}`,
		`{"fleet":{"pet":"spec"},"scenario":{"name":"x","wat":1}}`,
	} {
		if _, err := ParseConfig(strings.NewReader(body)); err == nil {
			t.Errorf("unknown field accepted: %s", body)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	src := `{
		"name": "prod",
		"fleet": {"pet": "synthetic", "types": 6, "machines": 9, "seed": 42},
		"heuristic": "MM",
		"dcs": 3,
		"route": "least-queued",
		"queue": 64,
		"window": 500,
		"beta": 1.5,
		"seed": 7,
		"sample_every": 250,
		"scenario": {
			"name": "churn",
			"events": [
				{"tick": 100, "kind": "dc-fail", "dc": 0, "policy": "requeue"},
				{"tick": 400, "kind": "dc-recover", "dc": 0}
			],
			"failover": {"kind": "heartbeat", "heartbeat_every": 20, "suspect_after": 2,
				"probation": 20, "bounce_after": 10, "retry_base": 5, "retry_cap": 40}
		}
	}`
	c1, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Validate(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseConfig(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("re-parse of marshaled config failed: %v\n%s", err, raw)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", c1, c2)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Config {
		c, err := ParseConfig(strings.NewReader(`{"fleet":{"pet":"video"}}`))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown-pet", func(c *Config) { c.Fleet.PET = "quantum" }, "unknown fleet pet"},
		{"synthetic-no-dims", func(c *Config) { c.Fleet = Fleet{PET: "synthetic"} }, "positive types and machines"},
		{"unknown-heuristic", func(c *Config) { c.Heuristic = "YOLO" }, "unknown heuristic"},
		{"unknown-route", func(c *Config) { c.Route = "teleport" }, "unknown dispatch policy"},
		{"zero-dcs", func(c *Config) { c.DCs = 0 }, "datacenters"},
		{"too-many-dcs", func(c *Config) { c.DCs = 99 }, "datacenters"},
		{"zero-queue", func(c *Config) { c.Queue = 0 }, "queue capacity"},
		{"zero-window", func(c *Config) { c.Window = 0 }, "what-if window"},
		{"negative-beta", func(c *Config) { c.Beta = -1 }, "beta"},
		{"zero-sample", func(c *Config) { c.SampleEvery = 0 }, "sample_every"},
		{"scenario-out-of-range", func(c *Config) {
			c.Scenario = scenario.New("bad").FailAt(10, 99, scenario.Requeue)
		}, "machine out of range"},
		{"scenario-dc-out-of-range", func(c *Config) {
			c.Scenario = scenario.New("bad").DCFailAt(10, 5, scenario.Requeue)
		}, "datacenter out of range"},
		{"static-scenario-bad-failover", func(c *Config) {
			c.Scenario = scenario.New("bad").WithFailover(scenario.FailoverPolicy{Kind: scenario.FailoverHeartbeat, HeartbeatEvery: -3})
		}, "heartbeat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("accepted invalid config %+v", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSyntheticMeansGeneralizesSPEC pins the refactor: the paper fleet is
// the synthetic generator at its dimensions and seed, byte for byte.
func TestSyntheticMeansGeneralizesSPEC(t *testing.T) {
	if !reflect.DeepEqual(pet.SPECLikeMeans(), pet.SyntheticMeans(pet.SPECNumTypes, pet.SPECNumMachines, 0x5EC1)) {
		t.Fatal("SyntheticMeans(12, 8, 0x5EC1) != SPECLikeMeans")
	}
}

func TestSyntheticFleetBuilds(t *testing.T) {
	c, err := ParseConfig(strings.NewReader(`{"fleet":{"pet":"synthetic","types":3,"machines":5,"seed":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTypes() != 3 || m.NumMachines() != 5 {
		t.Fatalf("synthetic matrix is %d×%d, want 3×5", m.NumTypes(), m.NumMachines())
	}
	spans := c.DeadlineSpans(m)
	if len(spans) != 3 {
		t.Fatalf("%d deadline spans for 3 types", len(spans))
	}
	for ti, sp := range spans {
		if sp <= 0 {
			t.Fatalf("span[%d] = %d, want positive", ti, sp)
		}
	}
}
