// Package server turns the cluster engine into a long-running scheduling
// daemon: an HTTP API accepts live task submissions into the pull-based
// workload source, a single pump goroutine drives the engine through the
// live-stepping API, and the telemetry registry, an embedded status page,
// and a what-if advisor share the same mux. See server.go for the runtime
// and config.go (this file) for the persistent fleet/policy configuration
// a deployment boots from.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"taskprune/internal/cluster"
	"taskprune/internal/experiments"
	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/telemetry"
)

// Defaults applied by ParseConfig when the file omits a field.
const (
	DefaultQueue  = 256  // submission-buffer capacity (backpressure threshold)
	DefaultWindow = 1024 // what-if replay window (recent submissions retained)
	DefaultBeta   = 2.0  // deadline slack coefficient for stamped deadlines
	DefaultSeed   = 1    // execution-time sampling seed
)

// Fleet declares the PET matrix a deployment schedules on.
type Fleet struct {
	// PET selects the matrix: "spec" (the paper's 12×8 evaluation fleet),
	// "video" (the 4×4 transcoding fleet), or "synthetic" (an arbitrary
	// Types×Machines fleet generated from Seed with the SPEC-like recipe).
	PET string `json:"pet"`
	// Types and Machines size a synthetic fleet (ignored otherwise).
	Types    int `json:"types,omitempty"`
	Machines int `json:"machines,omitempty"`
	// Seed fixes a synthetic fleet's generated means across restarts.
	Seed int64 `json:"seed,omitempty"`
}

// Config is the persistent serve configuration: everything `hcsim serve`
// needs to boot a deployment, composed from the existing scenario wire
// formats (fleet events, failover/checkpoint/belief policies ride inside
// the nested scenario). It round-trips through JSON — ParseConfig rejects
// unknown fields, MarshalJSON writes the form ParseConfig reads — and is
// validated once at boot, never per request.
type Config struct {
	// Name labels the deployment in status output.
	Name string
	// Fleet selects the PET matrix.
	Fleet Fleet
	// Heuristic is the per-datacenter mapping heuristic (PAM, PAMF, MOC,
	// MM, MSD, MMU).
	Heuristic string
	// DCs shards the fleet across this many datacenters (1 = one fleet
	// behind the dispatcher).
	DCs int
	// Route is the dispatch policy: round-robin, least-queued, pet-aware.
	Route string
	// Queue is the submission-buffer capacity; a full buffer answers 429.
	Queue int
	// Window is how many recent submissions the what-if advisor retains.
	Window int
	// Beta is the deadline slack coefficient for submissions that do not
	// carry their own deadline: span(type) = mean(type) + Beta·grandMean.
	Beta float64
	// Seed drives ground-truth execution-time sampling.
	Seed int64
	// SampleEvery is the telemetry sampling interval in simulated ticks
	// (0 = telemetry.DefaultSampleEvery).
	SampleEvery int64
	// Scenario, when non-nil, runs the deployment under a dynamic-fleet
	// scenario: timed failures, whole-DC outages, degradations, plus the
	// nested failover/checkpoint/belief policies.
	Scenario *scenario.Scenario
}

// jsonConfig is the wire form of Config. The scenario stays raw so
// scenario.Parse applies its own strict decoding (unknown-field rejection
// included) to the nested document.
type jsonConfig struct {
	Name        string          `json:"name"`
	Fleet       Fleet           `json:"fleet"`
	Heuristic   string          `json:"heuristic,omitempty"`
	DCs         int             `json:"dcs,omitempty"`
	Route       string          `json:"route,omitempty"`
	Queue       int             `json:"queue,omitempty"`
	Window      int             `json:"window,omitempty"`
	Beta        *float64        `json:"beta,omitempty"`
	Seed        *int64          `json:"seed,omitempty"`
	SampleEvery int64           `json:"sample_every,omitempty"`
	Scenario    json.RawMessage `json:"scenario,omitempty"`
}

// ParseConfig reads a JSON serve configuration, rejecting unknown fields
// and applying defaults for omitted ones. Semantic checks (unknown
// heuristics, impossible partitions, malformed scenarios) happen in
// Validate, which LoadConfig calls for the boot path.
func ParseConfig(r io.Reader) (*Config, error) {
	d := json.NewDecoder(r)
	d.DisallowUnknownFields()
	var in jsonConfig
	if err := d.Decode(&in); err != nil {
		return nil, fmt.Errorf("server: config: %w", err)
	}
	c := &Config{
		Name:        in.Name,
		Fleet:       in.Fleet,
		Heuristic:   in.Heuristic,
		DCs:         in.DCs,
		Route:       in.Route,
		Queue:       in.Queue,
		Window:      in.Window,
		Beta:        DefaultBeta,
		Seed:        DefaultSeed,
		SampleEvery: in.SampleEvery,
	}
	if in.Beta != nil {
		c.Beta = *in.Beta
	}
	if in.Seed != nil {
		c.Seed = *in.Seed
	}
	if len(in.Scenario) > 0 {
		sc, err := scenario.Parse(bytes.NewReader(in.Scenario))
		if err != nil {
			return nil, fmt.Errorf("server: config: %w", err)
		}
		c.Scenario = sc
	}
	if c.Fleet.PET == "" {
		c.Fleet.PET = "spec"
	}
	if c.Heuristic == "" {
		c.Heuristic = "PAM"
	}
	if c.DCs == 0 {
		c.DCs = 1
	}
	if c.Route == "" {
		c.Route = "round-robin"
	}
	if c.Queue == 0 {
		c.Queue = DefaultQueue
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = telemetry.DefaultSampleEvery
	}
	return c, nil
}

// LoadConfig parses and validates the serve configuration at path — the
// boot path of `hcsim serve -config`.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	defer f.Close()
	c, err := ParseConfig(f)
	if err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalJSON writes the wire form ParseConfig reads, so configs
// round-trip (the fuzz corpus pins Parse∘Marshal∘Parse fixpointing).
func (c *Config) MarshalJSON() ([]byte, error) {
	out := jsonConfig{
		Name:        c.Name,
		Fleet:       c.Fleet,
		Heuristic:   c.Heuristic,
		DCs:         c.DCs,
		Route:       c.Route,
		Queue:       c.Queue,
		Window:      c.Window,
		SampleEvery: c.SampleEvery,
	}
	beta, seed := c.Beta, c.Seed
	out.Beta, out.Seed = &beta, &seed
	if c.Scenario != nil {
		raw, err := json.Marshal(c.Scenario)
		if err != nil {
			return nil, err
		}
		out.Scenario = raw
	}
	return json.Marshal(out)
}

// Matrix builds (or fetches, for the process-cached named fleets) the PET
// matrix the configuration declares.
func (c *Config) Matrix() (*pet.Matrix, error) {
	switch c.Fleet.PET {
	case "spec":
		return experiments.SPECPET(), nil
	case "video":
		return experiments.VideoPET(), nil
	case "synthetic":
		if c.Fleet.Types < 1 || c.Fleet.Machines < 1 {
			return nil, fmt.Errorf("server: config: synthetic fleet needs positive types and machines, got %d×%d", c.Fleet.Types, c.Fleet.Machines)
		}
		means := pet.SyntheticMeans(c.Fleet.Types, c.Fleet.Machines, c.Fleet.Seed)
		return pet.Build(means, pet.DefaultBuildConfig(), stats.NewRNG(c.Fleet.Seed^0x5EC1))
	default:
		return nil, fmt.Errorf("server: config: unknown fleet pet %q (spec, video, synthetic)", c.Fleet.PET)
	}
}

// Validate rejects a configuration the daemon could not boot: unknown
// fleet/heuristic/route names, impossible fleet partitions, non-positive
// capacities, and scenarios that fail cluster validation. It runs once at
// boot so every later NewEngine call on the same config succeeds.
func (c *Config) Validate() error {
	matrix, err := c.Matrix()
	if err != nil {
		return err
	}
	nm := matrix.NumMachines()
	if _, err := simulator.ConfigFor(c.Heuristic, matrix); err != nil {
		return fmt.Errorf("server: config: %w", err)
	}
	if _, err := cluster.NewPolicy(c.Route); err != nil {
		return fmt.Errorf("server: config: %w", err)
	}
	if c.DCs < 1 || c.DCs > nm {
		return fmt.Errorf("server: config: %d datacenters for %d machines (need 1..%d)", c.DCs, nm, nm)
	}
	if c.Queue < 1 {
		return fmt.Errorf("server: config: queue capacity %d (need >= 1)", c.Queue)
	}
	if c.Window < 1 {
		return fmt.Errorf("server: config: what-if window %d (need >= 1)", c.Window)
	}
	if !(c.Beta >= 0) || math.IsInf(c.Beta, 0) {
		return fmt.Errorf("server: config: beta %v (need finite, >= 0)", c.Beta)
	}
	if c.SampleEvery < 1 {
		return fmt.Errorf("server: config: sample_every %d (need >= 1 tick)", c.SampleEvery)
	}
	if !c.Scenario.IsStatic() {
		if err := c.Scenario.ValidateCluster(nm, c.DCs); err != nil {
			return fmt.Errorf("server: config: %w", err)
		}
	} else if c.Scenario != nil {
		// An event-free scenario skips cluster validation (no fleet changes
		// to range-check), but its nested policies must still hold — the
		// engine resolves and enforces them regardless.
		if err := c.Scenario.Failover.Validate(); err != nil {
			return fmt.Errorf("server: config: %w", err)
		}
		if err := c.Scenario.Checkpoint.Validate(); err != nil {
			return fmt.Errorf("server: config: %w", err)
		}
		if err := c.Scenario.Belief.Validate(); err != nil {
			return fmt.Errorf("server: config: %w", err)
		}
	}
	return nil
}

// NewEngine builds a cluster engine for this configuration over the given
// matrix. tel selects the engine's telemetry options (nil = disabled; the
// what-if replays run dark, the daemon runs instrumented).
func (c *Config) NewEngine(matrix *pet.Matrix, tel *telemetry.Options) (*cluster.Engine, error) {
	simCfg, err := simulator.ConfigFor(c.Heuristic, matrix)
	if err != nil {
		return nil, err
	}
	simCfg.Scenario = c.Scenario
	policy, err := cluster.NewPolicy(c.Route)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{
		DCs:       c.DCs,
		Policy:    policy,
		Sim:       simCfg,
		Telemetry: tel,
	})
}

// DeadlineSpans returns the per-type deadline slack the daemon stamps on
// submissions without an explicit deadline — the same formula the workload
// generator uses: mean(type across machines) + Beta·grandMean, rounded.
func (c *Config) DeadlineSpans(matrix *pet.Matrix) []int64 {
	spans := make([]int64, matrix.NumTypes())
	avgAll := matrix.GrandMean()
	for ti := range spans {
		spans[ti] = int64(matrix.TypeMeanAcrossMachines(task.Type(ti)) + c.Beta*avgAll + 0.5)
	}
	return spans
}
