package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"taskprune/internal/cluster"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/telemetry"
	"taskprune/internal/workload"
)

// Server is the scheduling daemon: one cluster engine driven by one pump
// goroutine, fed through a bounded LiveSource, exported over HTTP.
//
// Ownership is strict — the pump goroutine is the only toucher of the
// engine, the RNG, and the capture window's write side. HTTP handlers
// interact through three safe surfaces: LiveSource.Push (mutex-guarded,
// non-blocking), atomic counters, and the published status snapshot the
// pump refreshes after every settle. The simulated clock is event-driven:
// it advances when submissions and their downstream events demand, never
// with wall time, so an idle daemon holds its clock (and far-future
// scenario events) still.
type Server struct {
	cfg    *Config
	matrix *pet.Matrix
	eng    *cluster.Engine
	src    *workload.LiveSource
	tel    *telemetry.Server
	rng    *stats.RNG
	spans  []int64
	nextID int
	win    *window

	rejected atomic.Int64 // 429s answered
	accepted atomic.Int64 // submissions buffered OK
	draining atomic.Bool

	mu     sync.Mutex
	status Status
	final  *metrics.TrialStats
	runErr error

	done chan struct{}
}

// Status is the daemon's published state snapshot (GET /v1/status). The
// pump refreshes it after every settle; QueueDepth and the rejection
// counter are read live at request time.
type Status struct {
	Name     string `json:"name"`
	Draining bool   `json:"draining"`
	// Now is the simulated clock (event-driven, not wall time).
	Now int64 `json:"now"`
	// Accepted counts submissions buffered; Submitted those the engine has
	// admitted; InFlight those admitted but not yet exited; QueueDepth
	// those buffered but not yet admitted. Rejected counts 429 answers.
	Accepted   int64 `json:"accepted"`
	Submitted  int   `json:"submitted"`
	InFlight   int   `json:"in_flight"`
	QueueDepth int   `json:"queue_depth"`
	Rejected   int64 `json:"rejected"`
	// Counts are the raw exit tallies; RobustnessPct the trimmed-window
	// robustness over everything observed so far.
	Counts        metrics.Counts `json:"counts"`
	RobustnessPct float64        `json:"robustness_pct"`
	// Window is how many recent submissions the what-if advisor holds.
	Window int `json:"window"`
	// DCs is the per-datacenter health/backlog breakdown; Gate the
	// dispatcher's admission-layer counters.
	DCs  []DCStatus        `json:"dcs"`
	Gate metrics.GateStats `json:"gate"`
	// Final carries the end-of-run statistics once a drain completes.
	Final *metrics.TrialStats `json:"final,omitempty"`
	// Error surfaces a pump failure (the daemon stops admitting work).
	Error string `json:"error,omitempty"`
}

// DCStatus is one datacenter's row in the status snapshot.
type DCStatus struct {
	Index    int   `json:"index"`
	Machines []int `json:"machines"`
	// Healthy is the dispatcher's belief; InService the ground truth. They
	// diverge only under heartbeat detection.
	Healthy   bool `json:"healthy"`
	InService bool `json:"in_service"`
	// Queued counts tasks the datacenter holds (batch + machine queues).
	Queued int `json:"queued"`
}

// New builds the daemon from a validated config: engine, live source,
// telemetry registry, capture window. Call Start to begin pumping.
func New(cfg *Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	matrix, err := cfg.Matrix()
	if err != nil {
		return nil, err
	}
	eng, err := cfg.NewEngine(matrix, &telemetry.Options{SampleEvery: cfg.SampleEvery})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		matrix: matrix,
		eng:    eng,
		src:    workload.NewLiveSource(cfg.Queue),
		tel:    telemetry.NewServer(),
		rng:    stats.NewRNG(cfg.Seed),
		spans:  cfg.DeadlineSpans(matrix),
		win:    newWindow(cfg.Window),
		done:   make(chan struct{}),
	}
	if err := eng.StartLive(s.src); err != nil {
		return nil, err
	}
	// Publish the engine shard at every sample boundary so /metrics moves
	// while the pump is mid-burst, not only at settle points. The hook runs
	// on the pump goroutine; Publish hands the handler a self-contained
	// snapshot.
	eng.TelemetrySampler().OnSample = func(int64) {
		s.tel.Publish("cluster", eng.Telemetry().Snapshot())
	}
	s.publish()
	return s, nil
}

// Start launches the pump goroutine. Call exactly once.
func (s *Server) Start() { go s.pump() }

// Matrix exposes the deployment's PET (handlers validate task types
// against it).
func (s *Server) Matrix() *pet.Matrix { return s.matrix }

// Config returns the booted configuration.
func (s *Server) Config() *Config { return s.cfg }

// Telemetry exposes the daemon's telemetry registry, so a deployment can
// bind a dedicated metrics listener next to the API mux.
func (s *Server) Telemetry() *telemetry.Server { return s.tel }

// pump is the engine-owning goroutine: it blocks on the submission
// channel, admits each burst in arrival order, settles the engine between
// bursts, and publishes a fresh status snapshot. It exits when the source
// is closed and drained (graceful shutdown) or the engine errors.
func (s *Server) pump() {
	defer close(s.done)
	for {
		t, ok := s.src.Next()
		if !ok {
			break
		}
		if err := s.submit(t); err != nil {
			s.fail(err)
			return
		}
		// Drain whatever else arrived while we worked, without blocking:
		// one settle per burst, not per task.
		for {
			t2, ok2, _ := s.src.Poll()
			if !ok2 {
				break
			}
			if err := s.submit(t2); err != nil {
				s.fail(err)
				return
			}
		}
		if err := s.eng.Quiesce(); err != nil {
			s.fail(err)
			return
		}
		s.publish()
	}
	st, _, err := s.eng.FinishLive()
	s.mu.Lock()
	if err != nil {
		s.runErr = err
	} else {
		s.final = &st
	}
	s.mu.Unlock()
	s.publish()
}

// submit stamps one buffered submission — ID, arrival at the engine's
// clock, deadline from the per-type span unless the producer set a
// relative one, ground-truth execution times from the daemon's RNG — then
// captures it for the what-if window and admits it.
func (s *Server) submit(t *task.Task) error {
	t.ID = s.nextID
	s.nextID++
	arr := s.eng.Now()
	t.Arrival = arr
	// Handlers stash a relative deadline (ticks from arrival) in Deadline;
	// zero means "use the configured span".
	span := t.Deadline
	if span <= 0 {
		span = s.spans[t.Type]
	}
	t.Deadline = arr + span
	for mi := range t.TrueExec {
		t.TrueExec[mi] = s.matrix.SampleExec(s.rng, t.Type, mi)
	}
	s.win.add(t)
	return s.eng.SubmitLive(t)
}

// fail records a pump error and publishes it; the daemon stops admitting
// (healthz goes unhealthy) but keeps serving status for diagnosis.
func (s *Server) fail(err error) {
	s.mu.Lock()
	s.runErr = err
	s.mu.Unlock()
	s.publish()
}

// publish refreshes the status snapshot from the engine. Pump-goroutine
// only (all engine reads happen here, while it is quiescent).
func (s *Server) publish() {
	st := Status{
		Name:          s.cfg.Name,
		Now:           s.eng.Now(),
		Submitted:     s.eng.Submitted(),
		InFlight:      s.eng.InFlight(),
		Counts:        s.eng.LiveCounts(),
		RobustnessPct: s.eng.LiveStats().RobustnessPct,
		Gate:          s.eng.Gate(),
	}
	for _, d := range s.eng.DCList() {
		st.DCs = append(st.DCs, DCStatus{
			Index:     d.Index(),
			Machines:  d.Machines(),
			Healthy:   d.Alive(),
			InService: d.InService(),
			Queued:    d.QueuedLoad(),
		})
	}
	s.tel.Publish("cluster", s.eng.Telemetry().Snapshot())
	s.mu.Lock()
	st.Window = s.win.len()
	st.Final = s.final
	if s.runErr != nil {
		st.Error = s.runErr.Error()
	}
	s.status = st
	s.mu.Unlock()
}

// snapshot returns the published status with the live request-time fields
// (queue depth, rejections, draining) filled in.
func (s *Server) snapshot() Status {
	s.mu.Lock()
	st := s.status
	s.mu.Unlock()
	st.Accepted = s.accepted.Load()
	st.Rejected = s.rejected.Load()
	st.QueueDepth = s.src.Len()
	st.Draining = s.draining.Load()
	return st
}

// healthy reports whether the daemon is accepting work.
func (s *Server) healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr == nil && !s.draining.Load()
}

// Drain shuts the daemon down gracefully: no further submissions are
// accepted, everything already buffered is admitted and settled, the
// engine finalizes (flushing stragglers exactly as a batch run would), and
// the final statistics land in the status snapshot. It returns when the
// pump has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.src.Close()
	select {
	case <-s.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.runErr
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Final returns the end-of-run statistics once Drain has completed (nil
// before).
func (s *Server) Final() *metrics.TrialStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// Serve binds addr and serves the daemon's mux in a background goroutine,
// returning the bound address (":0" friendly, for tests and smoke runs).
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
