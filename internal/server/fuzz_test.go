package server

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseConfig drives the serve-config parser with arbitrary documents.
// Invariants: no panic on any input; anything that parses must marshal and
// re-parse to the identical config (Parse∘Marshal fixpoints); Validate
// never panics on a parsed config.
func FuzzParseConfig(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"minimal","fleet":{"pet":"spec"}}`,
		`{"fleet":{"pet":"video"},"heuristic":"MM","dcs":2,"route":"least-queued"}`,
		`{"fleet":{"pet":"synthetic","types":6,"machines":9,"seed":42},"beta":0,"seed":-1}`,
		`{"fleet":{"pet":"spec"},"queue":1,"window":1,"sample_every":1}`,
		`{"fleet":{"pet":"spec"},"scenario":{"name":"s","events":[{"tick":5,"kind":"dc-fail","dc":0,"policy":"requeue"}],` +
			`"failover":{"kind":"heartbeat","heartbeat_every":20,"suspect_after":2}}}`,
		`{"fleet":{"pet":"spec"},"scenario":{"name":"static","checkpoint":{"kind":"periodic","interval":50}}}`,
		`{"bogus":true}`,
		`{"fleet":{"pet":"spec"},"beta":1e308}`,
		`{"fleet":`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		c, err := ParseConfig(strings.NewReader(doc))
		if err != nil {
			return
		}
		_ = c.Validate() // must not panic; rejection is fine
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("parsed config failed to marshal: %v\n%+v", err, c)
		}
		c2, err := ParseConfig(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("marshaled config failed to re-parse: %v\n%s", err, raw)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip diverged for %q:\n first %+v\nsecond %+v", doc, c, c2)
		}
	})
}
