package eventq

import (
	"math/rand"
	"testing"
)

// TestPropertyRandomInterleavings drives the queue with random interleaved
// pushes and pops — arrivals, completions, and fleet events with heavy tick
// collisions — and checks it against a brute-force reference model: pops
// come out in nondecreasing tick order, and ties pop in exact insertion
// order. Pushes never go below the last popped tick, mirroring how the
// simulator only schedules into the future.
func TestPropertyRandomInterleavings(t *testing.T) {
	type ref struct {
		tick int64
		seq  int
		ev   Event
	}
	kinds := []Kind{Arrival, Completion, Fleet}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var q Queue
		var model []ref
		seq := 0
		lastPopped := int64(0)
		popOne := func() {
			e, ok := q.Pop()
			if len(model) == 0 {
				if ok {
					t.Fatalf("trial %d: Pop returned %v from an empty queue", trial, e)
				}
				return
			}
			if !ok {
				t.Fatalf("trial %d: Pop empty with %d events pending", trial, len(model))
			}
			// Reference pop: minimum (tick, seq).
			best := 0
			for i := 1; i < len(model); i++ {
				if model[i].tick < model[best].tick ||
					(model[i].tick == model[best].tick && model[i].seq < model[best].seq) {
					best = i
				}
			}
			want := model[best]
			model = append(model[:best], model[best+1:]...)
			if e.Tick != want.ev.Tick || e.Kind != want.ev.Kind || e.TaskID != want.ev.TaskID || e.Machine != want.ev.Machine {
				t.Fatalf("trial %d: popped %+v, reference says %+v", trial, e, want.ev)
			}
			if e.Tick < lastPopped {
				t.Fatalf("trial %d: time went backwards: %d after %d", trial, e.Tick, lastPopped)
			}
			lastPopped = e.Tick
		}
		for step := 0; step < 300; step++ {
			if rng.Intn(3) < 2 || q.Len() == 0 { // bias toward pushes, pop when possible
				// Small tick range on top of lastPopped forces many ties.
				ev := Event{
					Tick:    lastPopped + int64(rng.Intn(6)),
					Kind:    kinds[rng.Intn(len(kinds))],
					TaskID:  seq,
					Machine: rng.Intn(4),
				}
				q.Push(ev)
				model = append(model, ref{tick: ev.Tick, seq: seq, ev: ev})
				seq++
			} else {
				popOne()
			}
		}
		for q.Len() > 0 || len(model) > 0 {
			popOne()
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("trial %d: drained queue still pops", trial)
		}
	}
}

// TestPeekMatchesPop: Peek must preview exactly what Pop returns.
func TestPeekMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(Event{Tick: int64(rng.Intn(20)), Kind: Fleet, TaskID: i})
	}
	for q.Len() > 0 {
		peeked, ok := q.Peek()
		if !ok {
			t.Fatal("Peek failed on non-empty queue")
		}
		popped, _ := q.Pop()
		// Compare the public identity only: the heap's internal bookkeeping
		// fields legitimately differ between the two copies.
		if peeked.Tick != popped.Tick || peeked.Kind != popped.Kind ||
			peeked.TaskID != popped.TaskID || peeked.Machine != popped.Machine {
			t.Fatalf("Peek %+v != Pop %+v", peeked, popped)
		}
	}
}
