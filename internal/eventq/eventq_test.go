package eventq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue returned ok")
	}
}

func TestPopOrder(t *testing.T) {
	var q Queue
	q.Push(Event{Tick: 30, Kind: Completion, Machine: 1})
	q.Push(Event{Tick: 10, Kind: Arrival, TaskID: 5})
	q.Push(Event{Tick: 20, Kind: Arrival, TaskID: 6})
	var ticks []int64
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		ticks = append(ticks, e.Tick)
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", ticks, want)
		}
	}
}

func TestTieBreaksByInsertionOrder(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Event{Tick: 5, Kind: Arrival, TaskID: i})
	}
	for i := 0; i < 10; i++ {
		e, ok := q.Pop()
		if !ok || e.TaskID != i {
			t.Fatalf("tie order broken at %d: got task %d", i, e.TaskID)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(Event{Tick: 1, TaskID: 42})
	e, ok := q.Peek()
	if !ok || e.TaskID != 42 {
		t.Fatalf("Peek = (%+v, %v)", e, ok)
	}
	if q.Len() != 1 {
		t.Errorf("Len after Peek = %d, want 1", q.Len())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	q.Push(Event{Tick: 10})
	q.Push(Event{Tick: 5})
	if e, _ := q.Pop(); e.Tick != 5 {
		t.Fatalf("first pop = %d, want 5", e.Tick)
	}
	q.Push(Event{Tick: 1})
	if e, _ := q.Pop(); e.Tick != 1 {
		t.Fatalf("second pop = %d, want 1", e.Tick)
	}
	if e, _ := q.Pop(); e.Tick != 10 {
		t.Fatalf("third pop = %d, want 10", e.Tick)
	}
}

// Property: popping always yields events in non-decreasing tick order, with
// ties in insertion order.
func TestPropHeapOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			q.Push(Event{Tick: int64(r.Intn(20)), TaskID: i})
		}
		lastTick := int64(-1)
		lastID := -1
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			if e.Tick < lastTick {
				return false
			}
			if e.Tick == lastTick && e.TaskID < lastID {
				return false // violated FIFO within a tick
			}
			lastTick, lastID = e.Tick, e.TaskID
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
