// Package eventq provides the time-ordered event queue driving the
// discrete-event simulator: a binary heap keyed by (tick, sequence) so that
// simultaneous events pop in deterministic insertion order, which keeps
// trials reproducible across runs and platforms.
package eventq

import "container/heap"

// Kind distinguishes the simulator's event types.
type Kind int

const (
	// Arrival: a task enters the batch queue.
	Arrival Kind = iota
	// Completion: a machine finishes its executing task.
	Completion
	// Fleet: a scenario-scheduled fleet change (machine failure, recovery,
	// or degradation) fires. TaskID carries the index of the scenario event
	// so the simulator can look up the full action.
	Fleet
)

// Event is one scheduled occurrence.
type Event struct {
	Tick    int64
	Kind    Kind
	TaskID  int // Arrival: task ID; Fleet: scenario event index
	Machine int // valid for Completion
	seq     uint64
	index   int
}

// Queue is a deterministic min-heap of events. The zero value is ready to
// use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Push schedules an event; ties on Tick break by insertion order.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, &e)
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue) Pop() (Event, bool) {
	if q.h.Len() == 0 {
		return Event{}, false
	}
	e := heap.Pop(&q.h).(*Event)
	return *e, true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if q.h.Len() == 0 {
		return Event{}, false
	}
	return *q.h[0], true
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return q.h.Len() }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Tick != h[j].Tick {
		return h[i].Tick < h[j].Tick
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
