// Package eventq provides the time-ordered event queue driving the
// discrete-event simulator: a binary heap keyed by (tick, sequence) so that
// simultaneous events pop in deterministic insertion order, which keeps
// trials reproducible across runs and platforms.
package eventq

// Kind distinguishes the simulator's event types.
type Kind int

const (
	// Arrival: a task enters the batch queue.
	Arrival Kind = iota
	// Completion: a machine finishes its executing task.
	Completion
	// Fleet: a scenario-scheduled fleet change (machine failure, recovery,
	// or degradation) fires. TaskID carries the index of the scenario event
	// so the simulator can look up the full action.
	Fleet
)

// Event is one scheduled occurrence.
type Event struct {
	Tick    int64
	Kind    Kind
	TaskID  int // Arrival: task ID; Fleet: scenario event index
	Machine int // valid for Completion
	seq     uint64
}

// Queue is a deterministic min-heap of events. The zero value is ready to
// use. Events are stored by value, so a steady push/pop balance performs no
// heap allocation once the backing array reaches its high-water mark — the
// streaming simulator schedules millions of completions through one Queue.
type Queue struct {
	h   []Event
	seq uint64
}

// Push schedules an event; ties on Tick break by insertion order.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	e := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Event{}
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return e, true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.h) }

func (q *Queue) less(i, j int) bool {
	if q.h[i].Tick != q.h[j].Tick {
		return q.h[i].Tick < q.h[j].Tick
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			return
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q.less(l, m) {
			m = l
		}
		if r < n && q.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		q.h[i], q.h[m] = q.h[m], q.h[i]
		i = m
	}
}
