// Package pruner implements the paper's pruning mechanism: probabilistic
// task deferring and dropping thresholds (Section V-B, Eq. 7), dynamic
// engagement of dropping via an exponentially weighted moving average of
// deadline misses with Schmitt-trigger hysteresis (Section V-C, Eq. 8),
// and the per-task-type sufferage accounting behind the fairness-aware
// PAMF heuristic (Section V-D).
package pruner

import "fmt"

// Config holds the pruning-policy knobs. Defaults follow the values the
// paper converges on experimentally.
type Config struct {
	// DropThreshold: tasks in machine queues with success probability at or
	// below this are dropped while dropping is engaged (paper: 0.50).
	DropThreshold float64
	// DeferThreshold: unmapped tasks whose best achievable success
	// probability is below this are deferred to the next mapping event
	// (paper: 0.90; must be >= DropThreshold for sane behaviour).
	DeferThreshold float64
	// Rho scales the Eq. 7 per-task adjustment of the dropping threshold by
	// completion-PMF skewness and queue position. The paper introduces ρ
	// without fixing a value; 0.2 is our calibrated default (ablated in the
	// benches).
	Rho float64
	// Lambda is the Eq. 8 EWMA weight on the most recent mapping event's
	// deadline misses (paper: 0.9 wins).
	Lambda float64
	// ToggleOn is the oversubscription level at which dropping engages
	// (paper: "the dropping toggle is one task").
	ToggleOn float64
	// SchmittSeparation is the relative hysteresis width: dropping
	// disengages at ToggleOn*(1-SchmittSeparation) (paper: 20%).
	SchmittSeparation float64
	// UseSchmitt selects hysteresis; false reproduces the Fig. 4 "default"
	// series with a single on/off threshold.
	UseSchmitt bool
	// PerTaskAdjust enables the Eq. 7 dynamic per-task dropping threshold;
	// false applies the uniform base threshold (an ablation of Section
	// V-B1).
	PerTaskAdjust bool
}

// DefaultConfig returns the configuration the paper's later experiments
// settle on: drop 50%, defer 90%, λ = 0.9, Schmitt trigger on with 20%
// separation, per-task adjustment enabled.
func DefaultConfig() Config {
	return Config{
		DropThreshold:     0.50,
		DeferThreshold:    0.90,
		Rho:               0.2,
		Lambda:            0.9,
		ToggleOn:          1.0,
		SchmittSeparation: 0.20,
		UseSchmitt:        true,
		PerTaskAdjust:     true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DropThreshold < 0 || c.DropThreshold > 1 {
		return fmt.Errorf("pruner: DropThreshold out of [0,1]: %v", c.DropThreshold)
	}
	if c.DeferThreshold < 0 || c.DeferThreshold > 1 {
		return fmt.Errorf("pruner: DeferThreshold out of [0,1]: %v", c.DeferThreshold)
	}
	if c.Lambda < 0 || c.Lambda > 1 {
		return fmt.Errorf("pruner: Lambda out of [0,1]: %v", c.Lambda)
	}
	if c.SchmittSeparation < 0 || c.SchmittSeparation >= 1 {
		return fmt.Errorf("pruner: SchmittSeparation out of [0,1): %v", c.SchmittSeparation)
	}
	if c.ToggleOn < 0 {
		return fmt.Errorf("pruner: ToggleOn must be non-negative: %v", c.ToggleOn)
	}
	return nil
}

// Pruner tracks the oversubscription state of one simulated system and
// answers the two pruning questions at every mapping event: "should this
// queued task be dropped?" and "should this unmapped task be deferred?".
type Pruner struct {
	cfg      Config
	level    float64 // dτ, the EWMA oversubscription level
	dropping bool    // current Schmitt-trigger state
	events   int     // mapping events observed
}

// New creates a pruner. It panics on invalid configuration (catching
// miswired experiments at construction time).
func New(cfg Config) *Pruner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Pruner{cfg: cfg}
}

// Config returns the active configuration.
func (p *Pruner) Config() Config { return p.cfg }

// ObserveMappingEvent feeds the number of deadline misses since the last
// mapping event (µτ) into the Eq. 8 EWMA and updates the dropping toggle.
// It returns whether dropping is now engaged.
func (p *Pruner) ObserveMappingEvent(missed int) bool {
	p.events++
	p.level = float64(missed)*p.cfg.Lambda + p.level*(1-p.cfg.Lambda)
	if p.cfg.UseSchmitt {
		off := p.cfg.ToggleOn * (1 - p.cfg.SchmittSeparation)
		switch {
		case p.level >= p.cfg.ToggleOn:
			p.dropping = true
		case p.level <= off:
			p.dropping = false
		}
		// Between off and on: hold the previous state (hysteresis).
	} else {
		p.dropping = p.level >= p.cfg.ToggleOn
	}
	return p.dropping
}

// Dropping reports whether dropping mode is currently engaged.
func (p *Pruner) Dropping() bool { return p.dropping }

// Level returns the current EWMA oversubscription level dτ.
func (p *Pruner) Level() float64 { return p.level }

// Events returns how many mapping events have been observed.
func (p *Pruner) Events() int { return p.events }

// DropThresholdFor computes the effective dropping threshold for a queued
// task (Eq. 7): base + ρ·(−s)/(κ+1), where s is the bounded skewness of the
// task's completion PMF and κ its queue position (0 = executing). Positive
// skew (likely to finish early) lowers the threshold — the task is
// protected; negative skew raises it — the task is dropped more readily;
// and the effect decays with queue depth. sufferage (PAMF) is subtracted
// before the adjustment. The result is clamped into [0, 1].
func (p *Pruner) DropThresholdFor(skewness float64, position int, sufferage float64) float64 {
	base := p.cfg.DropThreshold - sufferage
	if p.cfg.PerTaskAdjust {
		base += p.cfg.Rho * (-skewness) / float64(position+1)
	}
	return clamp01(base)
}

// ShouldDrop decides whether a queued task with the given success
// probability, completion skewness, queue position and type sufferage is
// pruned. Tasks are dropped when robustness <= threshold (the paper drops
// tasks "whose robustness values are less than or equal to the dropping
// threshold").
func (p *Pruner) ShouldDrop(robustness, skewness float64, position int, sufferage float64) bool {
	if !p.dropping {
		return false
	}
	return robustness <= p.DropThresholdFor(skewness, position, sufferage)
}

// DeferThresholdFor returns the effective deferring threshold for a task
// type with the given sufferage. Per Section V-B1, deferring applies no
// positional/skewness adjustment — at mapping time the candidate would sit
// at the queue tail and has no tasks behind it yet.
func (p *Pruner) DeferThresholdFor(sufferage float64) float64 {
	return clamp01(p.cfg.DeferThreshold - sufferage)
}

// ShouldDefer decides whether an unmapped task whose best achievable
// success probability is bestRobustness should wait for the next mapping
// event instead of being mapped now.
func (p *Pruner) ShouldDefer(bestRobustness, sufferage float64) bool {
	return bestRobustness < p.DeferThresholdFor(sufferage)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
