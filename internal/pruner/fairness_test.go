package pruner

import (
	"math"
	"testing"
	"testing/quick"

	"taskprune/internal/task"
)

func TestFairnessTrackerLifecycle(t *testing.T) {
	f := NewFairnessTracker(3, 0.05)
	if f.Factor() != 0.05 {
		t.Errorf("Factor = %v, want 0.05", f.Factor())
	}
	for ti := 0; ti < 3; ti++ {
		if got := f.Sufferage(task.Type(ti)); got != 0 {
			t.Errorf("initial sufferage[%d] = %v, want 0", ti, got)
		}
	}
	f.RecordFailure(1)
	if got := f.Sufferage(1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("sufferage after failure = %v, want 0.05", got)
	}
	f.RecordFailure(1)
	if got := f.Sufferage(1); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("sufferage after 2 failures = %v, want 0.10", got)
	}
	f.RecordSuccess(1)
	if got := f.Sufferage(1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("sufferage after success = %v, want 0.05", got)
	}
	// Other types untouched.
	if f.Sufferage(0) != 0 || f.Sufferage(2) != 0 {
		t.Error("sufferage leaked across types")
	}
}

func TestFairnessClamping(t *testing.T) {
	f := NewFairnessTracker(1, 0.3)
	f.RecordSuccess(0)
	if got := f.Sufferage(0); got != 0 {
		t.Errorf("sufferage floored at %v, want 0", got)
	}
	for i := 0; i < 10; i++ {
		f.RecordFailure(0)
	}
	if got := f.Sufferage(0); got != 1 {
		t.Errorf("sufferage capped at %v, want 1", got)
	}
}

func TestFairnessZeroFactorInert(t *testing.T) {
	f := NewFairnessTracker(2, 0)
	f.RecordFailure(0)
	f.RecordSuccess(1)
	if f.Sufferage(0) != 0 || f.Sufferage(1) != 0 {
		t.Error("zero-factor tracker changed state")
	}
}

func TestFairnessConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { NewFairnessTracker(0, 0.1) },
		func() { NewFairnessTracker(3, -0.1) },
		func() { NewFairnessTracker(3, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid tracker construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFairnessSnapshotIsCopy(t *testing.T) {
	f := NewFairnessTracker(2, 0.1)
	f.RecordFailure(0)
	snap := f.Snapshot()
	snap[0] = 99
	if f.Sufferage(0) == 99 {
		t.Error("Snapshot shares storage")
	}
}

// Property: sufferage stays in [0, 1] under any event sequence.
func TestPropSufferageBounded(t *testing.T) {
	f := func(events []bool) bool {
		tr := NewFairnessTracker(1, 0.07)
		for _, success := range events {
			if success {
				tr.RecordSuccess(0)
			} else {
				tr.RecordFailure(0)
			}
			if s := tr.Sufferage(0); s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFairnessInteractionWithPruner: a suffered type gets a lower effective
// drop threshold, protecting it from pruning — the PAMF mechanism.
func TestFairnessInteractionWithPruner(t *testing.T) {
	p := New(DefaultConfig())
	p.ObserveMappingEvent(100) // engage dropping
	tr := NewFairnessTracker(2, 0.25)
	tr.RecordFailure(0)
	tr.RecordFailure(0) // type 0 sufferage 0.5

	rob := 0.45 // below the 0.50 base threshold
	if !p.ShouldDrop(rob, 0, 0, tr.Sufferage(1)) {
		t.Error("unsuffered type not dropped at robustness 0.45")
	}
	if p.ShouldDrop(rob, 0, 0, tr.Sufferage(0)) {
		t.Error("suffered type dropped despite relaxed threshold")
	}
}
