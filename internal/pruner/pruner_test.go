package pruner

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	cfg := DefaultConfig()
	if cfg.DropThreshold != 0.50 || cfg.DeferThreshold != 0.90 {
		t.Errorf("defaults differ from the paper's converged values: %+v", cfg)
	}
	if cfg.Lambda != 0.9 || !cfg.UseSchmitt || cfg.SchmittSeparation != 0.20 {
		t.Errorf("oversubscription defaults differ from the paper: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{DropThreshold: -0.1},
		{DropThreshold: 1.1},
		{DeferThreshold: 2},
		{Lambda: -1},
		{Lambda: 2},
		{SchmittSeparation: 1.0},
		{ToggleOn: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{DropThreshold: 5})
}

func TestEWMAEquation8(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lambda = 0.25
	cfg.UseSchmitt = false
	cfg.ToggleOn = 100 // never engage; we only check the level math
	p := New(cfg)
	p.ObserveMappingEvent(4) // d = 4*0.25 + 0*0.75 = 1
	if got := p.Level(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("level = %v, want 1", got)
	}
	p.ObserveMappingEvent(0) // d = 0*0.25 + 1*0.75 = 0.75
	if got := p.Level(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("level = %v, want 0.75", got)
	}
	p.ObserveMappingEvent(8) // d = 8*0.25 + 0.75*0.75 = 2.5625
	if got := p.Level(); math.Abs(got-2.5625) > 1e-12 {
		t.Fatalf("level = %v, want 2.5625", got)
	}
	if p.Events() != 3 {
		t.Errorf("Events = %d, want 3", p.Events())
	}
}

func TestSingleThresholdToggle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lambda = 1 // level == last observation
	cfg.UseSchmitt = false
	cfg.ToggleOn = 1
	p := New(cfg)
	if p.ObserveMappingEvent(0) {
		t.Error("engaged with zero misses")
	}
	if !p.ObserveMappingEvent(1) {
		t.Error("did not engage at the toggle")
	}
	if p.ObserveMappingEvent(0) {
		t.Error("single-threshold mode must disengage immediately below toggle")
	}
}

// TestSchmittHysteresis reproduces the paper's example: "if oversubscription
// level two or higher signals starting dropping, oversubscription value 1.6
// or lower signals stopping it" (20% separation).
func TestSchmittHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lambda = 1 // level == last observation, simplifies the script
	cfg.UseSchmitt = true
	cfg.ToggleOn = 2
	cfg.SchmittSeparation = 0.20
	p := New(cfg)

	if p.ObserveMappingEvent(1) {
		t.Fatal("engaged below the on threshold")
	}
	if !p.ObserveMappingEvent(2) {
		t.Fatal("did not engage at level 2")
	}
	// Level 1.8 sits inside the hysteresis band: state must hold.
	if !p.ObserveMappingEvent(2) || !p.Dropping() {
		t.Fatal("lost state at level 2")
	}
	cfg2 := cfg // replay with fractional observations via lambda
	_ = cfg2
	// Drive level into the band (1.8): still dropping.
	pBand := New(cfg)
	pBand.ObserveMappingEvent(2) // engage at 2
	// with λ=1 we can't hit 1.8 exactly using ints... use λ=0.5:
	cfg3 := DefaultConfig()
	cfg3.Lambda = 0.5
	cfg3.UseSchmitt = true
	cfg3.ToggleOn = 2
	cfg3.SchmittSeparation = 0.20
	q := New(cfg3)
	q.ObserveMappingEvent(4) // level 2 -> on
	if !q.Dropping() {
		t.Fatal("did not engage at level 2")
	}
	q.ObserveMappingEvent(2) // level = 2*0.5 + 2*0.5 = 2 -> on
	q.ObserveMappingEvent(1) // level = 0.5 + 1 = 1.5 <= 1.6 -> off
	if q.Dropping() {
		t.Fatalf("did not disengage at level %v <= 1.6", q.Level())
	}
	// And re-engage requires reaching 2 again, not just 1.61.
	q.ObserveMappingEvent(2) // level = 1 + 0.75 = 1.75: inside band, stays off
	if q.Dropping() {
		t.Fatal("re-engaged inside the hysteresis band")
	}
}

func TestDropThresholdForEq7(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropThreshold = 0.5
	cfg.Rho = 0.2
	cfg.PerTaskAdjust = true
	p := New(cfg)

	// Neutral skew, any position: base threshold.
	if got := p.DropThresholdFor(0, 0, 0); got != 0.5 {
		t.Errorf("neutral threshold = %v, want 0.5", got)
	}
	// Negative skew at the queue head: threshold rises (drop more readily).
	head := p.DropThresholdFor(-1, 0, 0)
	if !(head > 0.5) {
		t.Errorf("negative-skew head threshold = %v, want > 0.5", head)
	}
	if math.Abs(head-0.7) > 1e-12 { // 0.5 + 0.2*1/(0+1)
		t.Errorf("head threshold = %v, want 0.7", head)
	}
	// Positive skew: threshold falls (task protected).
	if got := p.DropThresholdFor(1, 0, 0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("positive-skew head threshold = %v, want 0.3", got)
	}
	// Effect decays with queue position.
	deep := p.DropThresholdFor(-1, 4, 0)
	if !(deep < head && deep > 0.5) {
		t.Errorf("deep-queue threshold = %v, want in (0.5, %v)", deep, head)
	}
	// Sufferage relaxes the threshold.
	if got := p.DropThresholdFor(0, 0, 0.2); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("suffered threshold = %v, want 0.3", got)
	}
	// Clamped to [0, 1].
	if got := p.DropThresholdFor(-1, 0, -5); got != 1 {
		t.Errorf("threshold = %v, want clamp at 1", got)
	}
	if got := p.DropThresholdFor(1, 0, 1); got != 0 {
		t.Errorf("threshold = %v, want clamp at 0", got)
	}
}

func TestPerTaskAdjustDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerTaskAdjust = false
	p := New(cfg)
	if got := p.DropThresholdFor(-1, 0, 0); got != cfg.DropThreshold {
		t.Errorf("uniform threshold = %v, want %v", got, cfg.DropThreshold)
	}
}

func TestShouldDropRequiresEngagement(t *testing.T) {
	p := New(DefaultConfig())
	if p.ShouldDrop(0.01, 0, 0, 0) {
		t.Error("dropped while dropping mode disengaged")
	}
	// Engage via massive misses.
	p.ObserveMappingEvent(100)
	if !p.Dropping() {
		t.Fatal("did not engage")
	}
	if !p.ShouldDrop(0.50, 0, 0, 0) {
		t.Error("robustness == threshold must drop (paper: 'less than or equal')")
	}
	if p.ShouldDrop(0.51, 0, 0, 0) {
		t.Error("robustness above threshold dropped")
	}
}

func TestShouldDefer(t *testing.T) {
	p := New(DefaultConfig())
	if !p.ShouldDefer(0.89, 0) {
		t.Error("robustness below defer threshold not deferred")
	}
	if p.ShouldDefer(0.90, 0) {
		t.Error("robustness at defer threshold deferred (defer is strict)")
	}
	// Sufferage relaxes deferring.
	if p.ShouldDefer(0.80, 0.15) {
		t.Error("suffered type deferred despite relaxed threshold")
	}
}

func TestDeferThresholdClamp(t *testing.T) {
	p := New(DefaultConfig())
	if got := p.DeferThresholdFor(2); got != 0 {
		t.Errorf("DeferThresholdFor(2) = %v, want 0", got)
	}
}

// Property: thresholds are always in [0, 1] regardless of inputs.
func TestPropThresholdBounds(t *testing.T) {
	p := New(DefaultConfig())
	f := func(skew float64, pos int, suff float64) bool {
		if pos < 0 {
			pos = -pos
		}
		s := math.Mod(skew, 1)
		th := p.DropThresholdFor(s, pos%6, math.Mod(suff, 1))
		return th >= 0 && th <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the EWMA level stays within [0, max observation] for
// non-negative miss counts.
func TestPropLevelBounded(t *testing.T) {
	f := func(misses []uint8) bool {
		p := New(DefaultConfig())
		maxM := 0.0
		for _, m := range misses {
			p.ObserveMappingEvent(int(m))
			if float64(m) > maxM {
				maxM = float64(m)
			}
			if p.Level() < 0 || p.Level() > maxM+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
