package pruner

import (
	"fmt"

	"taskprune/internal/task"
)

// FairnessTracker maintains the per-task-type sufferage values εₑf behind
// PAMF (Section V-D2). A task type's sufferage grows by the fairness
// factor ϑ every time one of its tasks misses (is pruned or blows its
// deadline) and shrinks by ϑ on every on-time completion; it is clamped to
// [0, 1]. The effective pruning threshold for a type is the base threshold
// minus its sufferage, protecting chronically pruned types from further
// pruning.
//
// A zero fairness factor makes the tracker inert, which is exactly how PAM
// (no fairness) is expressed internally.
type FairnessTracker struct {
	factor    float64
	sufferage []float64
}

// NewFairnessTracker creates a tracker for nTypes task types with fairness
// factor ϑ in [0, 1].
func NewFairnessTracker(nTypes int, factor float64) *FairnessTracker {
	if factor < 0 || factor > 1 {
		panic(fmt.Sprintf("pruner: fairness factor out of [0,1]: %v", factor))
	}
	if nTypes <= 0 {
		panic(fmt.Sprintf("pruner: need at least one task type, got %d", nTypes))
	}
	return &FairnessTracker{factor: factor, sufferage: make([]float64, nTypes)}
}

// Factor returns the fairness factor ϑ.
func (f *FairnessTracker) Factor() float64 { return f.factor }

// Sufferage returns εf for the given task type.
func (f *FairnessTracker) Sufferage(t task.Type) float64 {
	return f.sufferage[t]
}

// RecordSuccess lowers the type's sufferage after an on-time completion
// (ε ← ε − ϑ, floored at 0).
func (f *FairnessTracker) RecordSuccess(t task.Type) {
	v := f.sufferage[t] - f.factor
	if v < 0 {
		v = 0
	}
	f.sufferage[t] = v
}

// RecordFailure raises the type's sufferage after a miss or prune
// (ε ← ε + ϑ, capped at 1).
func (f *FairnessTracker) RecordFailure(t task.Type) {
	v := f.sufferage[t] + f.factor
	if v > 1 {
		v = 1
	}
	f.sufferage[t] = v
}

// Snapshot copies the current sufferage vector (for metrics/tracing).
func (f *FairnessTracker) Snapshot() []float64 {
	out := make([]float64, len(f.sufferage))
	copy(out, f.sufferage)
	return out
}
