package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestBuildersAndValidate(t *testing.T) {
	s := New("churn").
		StartDown(3).
		FailAt(500, 1, Requeue).
		RecoverAt(900, 1).
		DegradeAt(1200, 0, 2.5).
		RecoverAt(1500, 3).
		BurstWindow(300, 600, 3)
	if err := s.Validate(4); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if s.IsStatic() {
		t.Error("scenario with events reported static")
	}
	if !New("empty").IsStatic() || !(*Scenario)(nil).IsStatic() {
		t.Error("empty and nil scenarios must be static")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
		n    int
	}{
		{"machine out of range", New("x").FailAt(10, 5, Requeue), 4},
		{"negative machine", New("x").RecoverAt(10, -1), 4},
		{"negative tick", New("x").FailAt(-1, 0, Requeue), 4},
		{"zero factor", New("x").DegradeAt(10, 0, 0), 4},
		{"negative factor", New("x").DegradeAt(10, 0, -2), 4},
		{"NaN factor", New("x").DegradeAt(10, 0, nan()), 4},
		{"inf factor", New("x").DegradeAt(10, 0, inf()), 4},
		{"initial_down out of range", New("x").StartDown(9), 4},
		{"initial_down duplicate", New("x").StartDown(1, 1), 4},
		{"all machines down", New("x").StartDown(0, 1), 2},
		{"inverted burst", New("x").BurstWindow(600, 300, 2), 4},
		{"empty burst", New("x").BurstWindow(300, 300, 2), 4},
		{"zero burst factor", New("x").BurstWindow(0, 10, 0), 4},
		{"unknown kind", &Scenario{Events: []Event{{Tick: 1, Kind: EventKind(42)}}}, 4},
		{"unknown policy", &Scenario{Events: []Event{{Tick: 1, Kind: Fail, Policy: Policy(7)}}}, 4},
	}
	for _, c := range cases {
		if err := c.s.Validate(c.n); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func nan() float64 { f := 0.0; return f / f }
func inf() float64 { f := 1.0; return f / 0.0 }

func TestSortedIsStableByTick(t *testing.T) {
	s := New("x").
		RecoverAt(100, 2).
		FailAt(50, 0, Drop).
		DegradeAt(100, 1, 2). // same tick as the recover: declaration order must hold
		FailAt(10, 1, Requeue)
	got := s.Sorted()
	wantTicks := []int64{10, 50, 100, 100}
	for i, e := range got {
		if e.Tick != wantTicks[i] {
			t.Fatalf("sorted[%d].Tick = %d, want %d", i, e.Tick, wantTicks[i])
		}
	}
	if got[2].Kind != Recover || got[3].Kind != Degrade {
		t.Errorf("tie at tick 100 broke declaration order: %v then %v", got[2], got[3])
	}
	// Sorted must not mutate the declared order.
	if s.Events[0].Tick != 100 {
		t.Error("Sorted mutated the scenario's event slice")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `{
		"name": "fail-recover",
		"initial_down": [2],
		"events": [
			{"tick": 500, "kind": "fail", "machine": 1, "policy": "requeue"},
			{"tick": 700, "kind": "fail", "machine": 0, "policy": "drop"},
			{"tick": 900, "kind": "recover", "machine": 1},
			{"tick": 950, "kind": "join", "machine": 2},
			{"tick": 1200, "kind": "degrade", "machine": 0, "factor": 2.0},
			{"tick": 1500, "kind": "restore", "machine": 0}
		],
		"bursts": [{"start": 300, "end": 600, "factor": 3.0}]
	}`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if s.Name != "fail-recover" || len(s.Events) != 6 || len(s.Bursts) != 1 || len(s.InitialDown) != 1 {
		t.Fatalf("parsed scenario shape wrong: %+v", s)
	}
	if s.Events[0].Kind != Fail || s.Events[0].Policy != Requeue {
		t.Errorf("event 0 = %v", s.Events[0])
	}
	if s.Events[1].Policy != Drop {
		t.Errorf("event 1 policy = %v", s.Events[1].Policy)
	}
	if s.Events[3].Kind != Recover {
		t.Errorf("join alias: %v", s.Events[3])
	}
	if s.Events[5].Kind != Degrade || s.Events[5].Factor != 1 {
		t.Errorf("restore alias: %v", s.Events[5])
	}

	// Marshal and re-parse: must be the same scenario.
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("re-parse of marshaled scenario: %v\n%s", err, blob)
	}
	if !reflect.DeepEqual(s, again) {
		t.Errorf("round trip changed the scenario:\nfirst:  %+v\nsecond: %+v", s, again)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"not json", "nope"},
		{"unknown field", `{"name":"x","bogus":1}`},
		{"unknown kind", `{"events":[{"tick":1,"kind":"explode","machine":0}]}`},
		{"unknown policy", `{"events":[{"tick":1,"kind":"fail","machine":0,"policy":"shrug"}]}`},
		{"degrade missing factor", `{"events":[{"tick":1,"kind":"degrade","machine":0}]}`},
		{"string tick", `{"events":[{"tick":"soon","kind":"fail","machine":0}]}`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDriftExpansion(t *testing.T) {
	s := New("drift").DriftAt(100, 500, 1, 1, 3, 4)
	events := s.Sorted()
	wantTicks := []int64{100, 200, 300, 400, 500}
	wantFactors := []float64{1, 1.5, 2, 2.5, 3}
	if len(events) != len(wantTicks) {
		t.Fatalf("drift expanded into %d events, want %d: %v", len(events), len(wantTicks), events)
	}
	for i, e := range events {
		if e.Kind != Degrade {
			t.Fatalf("step %d: kind %v, want degrade", i, e.Kind)
		}
		if e.Machine != 1 {
			t.Fatalf("step %d: machine %d, want 1", i, e.Machine)
		}
		if e.Tick != wantTicks[i] || e.Factor != wantFactors[i] {
			t.Fatalf("step %d: got (t=%d, ×%g), want (t=%d, ×%g)", i, e.Tick, e.Factor, wantTicks[i], wantFactors[i])
		}
	}
	// Default step count and collapse of coincident ticks: a 2-tick window
	// cannot hold DefaultDriftSteps distinct ticks, but the endpoints must
	// survive with their exact endpoint factors.
	tight := New("tight").DriftAt(10, 12, 0, 2, 4, 0).Sorted()
	if len(tight) < 2 || len(tight) > 3 {
		t.Fatalf("tight drift expanded into %d events: %v", len(tight), tight)
	}
	if first := tight[0]; first.Tick != 10 || first.Factor != 2 {
		t.Fatalf("tight drift start: %v, want t=10 ×2", first)
	}
	if last := tight[len(tight)-1]; last.Tick != 12 || last.Factor != 4 {
		t.Fatalf("tight drift end: %v, want t=12 ×4", last)
	}
}

func TestDriftValidation(t *testing.T) {
	if err := New("x").DriftAt(500, 100, 0, 1, 3, 4).Validate(2); err == nil {
		t.Error("inverted drift window accepted")
	}
	if err := New("x").DriftAt(100, 500, 0, -1, 3, 4).Validate(2); err == nil {
		t.Error("negative drift start factor accepted")
	}
	if err := New("x").DriftAt(100, 500, 0, 1, 0, 4).Validate(2); err == nil {
		t.Error("zero drift target factor accepted")
	}
	if err := New("x").DriftAt(100, 500, 0, 1, 3, -2).Validate(2); err == nil {
		t.Error("negative drift step count accepted")
	}
	if err := New("x").DriftAt(100, 500, 0, 1, 3, 4).Validate(2); err != nil {
		t.Errorf("valid drift rejected: %v", err)
	}
}

func TestClusterEventValidation(t *testing.T) {
	s := New("outage").DCFailAt(100, 1, Requeue).DCRecoverAt(300, 1)
	if err := s.Validate(8); err == nil {
		t.Error("single-fleet validation accepted cluster-scoped events")
	}
	if err := s.ValidateCluster(8, 3); err != nil {
		t.Errorf("cluster validation rejected a valid outage: %v", err)
	}
	if err := s.ValidateCluster(8, 1); err == nil {
		t.Error("dc index out of range accepted")
	}
	if err := s.ValidateCluster(8, 0); err == nil {
		t.Error("zero datacenters accepted")
	}
}

func TestDriftAndDCEventsRoundTripJSON(t *testing.T) {
	s := New("mix").
		DriftAt(100, 500, 1, 1, 3, 4).
		DCFailAt(700, 0, Drop).
		DCRecoverAt(900, 0)
	blob, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, blob)
	}
	if !reflect.DeepEqual(s, again) {
		t.Errorf("round trip changed the scenario:\nfirst:  %+v\nsecond: %+v\n%s", s, again, blob)
	}
}
