package scenario

// This file declares the failover policy: what the front-end dispatcher
// *knows* about datacenter health, as opposed to what is true. The cluster
// engine's dc-fail/dc-recover events always move the ground truth; the
// failover policy decides how (and how fast) the dispatcher's believed
// health catches up — per-DC heartbeats with a suspicion threshold, a
// probation window after recovery, bounce-and-retry for dispatches that
// land on a down-but-undetected datacenter, and a bounded gate buffer for
// arrivals that find no healthy datacenter at all. It is part of the
// scenario wire format so a robustness study declares its detection model
// next to the outages that stress it, exactly like CheckpointPolicy and
// BeliefPolicy.

import "fmt"

// FailoverKind selects the dispatcher's failure-detection model.
type FailoverKind int

const (
	// FailoverOracle detects instantly and perfectly: believed health is
	// ground truth, byte-identical to the engine without the subsystem.
	// The gate buffer (GateBuffer/Shed) still applies under this kind.
	FailoverOracle FailoverKind = iota
	// FailoverHeartbeat observes per-DC heartbeats on the cluster clock:
	// a failed datacenter keeps receiving dispatches until SuspectAfter
	// consecutive heartbeats go missing, and a recovered one re-enters
	// rotation only after its first post-recovery heartbeat plus the
	// probation window.
	FailoverHeartbeat
)

// String implements fmt.Stringer.
func (k FailoverKind) String() string {
	switch k {
	case FailoverOracle:
		return "oracle"
	case FailoverHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("FailoverKind(%d)", int(k))
	}
}

// ShedKind selects which task a full gate buffer sheds.
type ShedKind int

const (
	// ShedDropNewest sheds the incoming task (the buffer keeps its FIFO).
	// This is the default.
	ShedDropNewest ShedKind = iota
	// ShedDropOldest sheds the buffer's head to make room for the incoming
	// task.
	ShedDropOldest
	// ShedDeadlineAware sheds the waiting task with the least on-time
	// probability — the earliest absolute deadline (least slack is the
	// monotone proxy: every buffered task waits from the same tick), ties
	// breaking toward the longest-buffered task.
	ShedDeadlineAware
)

// String implements fmt.Stringer.
func (k ShedKind) String() string {
	switch k {
	case ShedDropNewest:
		return "drop-newest"
	case ShedDropOldest:
		return "drop-oldest"
	case ShedDeadlineAware:
		return "deadline-aware"
	default:
		return fmt.Sprintf("ShedKind(%d)", int(k))
	}
}

// Defaults for the heartbeat detector's knobs when left zero.
const (
	// DefaultHeartbeatEvery is the heartbeat cadence in cluster ticks.
	DefaultHeartbeatEvery = 25
	// DefaultSuspectAfter is how many consecutive missed heartbeats mark a
	// datacenter down.
	DefaultSuspectAfter = 2
	// DefaultRetryBase is the first retry's backoff delay in ticks.
	DefaultRetryBase = 8
	// DefaultRetryCap bounds the exponential backoff delay in ticks.
	DefaultRetryCap = 64
)

// FailoverPolicy is the full detection-and-admission specification. The
// zero value (and nil) is the oracle with no gate buffer: instant, perfect
// detection and arrivals dropped at the gate when every datacenter is down
// — exactly today's engine.
type FailoverPolicy struct {
	// Kind selects the detection model.
	Kind FailoverKind
	// HeartbeatEvery is the heartbeat cadence in cluster ticks: heartbeats
	// are observed at every positive multiple of it (FailoverHeartbeat
	// only; 0 means DefaultHeartbeatEvery).
	HeartbeatEvery int64
	// SuspectAfter is how many consecutive missed heartbeats the monitor
	// tolerates before marking the datacenter down (FailoverHeartbeat
	// only; 0 means DefaultSuspectAfter).
	SuspectAfter int
	// Probation is how many ticks after its first post-recovery heartbeat
	// a recovered datacenter waits before re-entering rotation
	// (FailoverHeartbeat only; 0 means it is trusted at that heartbeat).
	Probation int64
	// BounceAfter is the simulated detection delay of one failed dispatch:
	// a task routed to a down-but-undetected datacenter bounces back to
	// the dispatcher this many ticks later (FailoverHeartbeat only; 0
	// means the effective heartbeat timeout, HeartbeatEvery×SuspectAfter).
	BounceAfter int64
	// MaxRetries caps how many bounced dispatches one task survives before
	// it is lost (FailoverHeartbeat only; 0 means unlimited — the task
	// retries until its deadline expires).
	MaxRetries int
	// RetryBase is the first retry's backoff delay in ticks; retry k waits
	// BounceAfter + min(RetryBase·2^(k−1), RetryCap) after its failed
	// dispatch (FailoverHeartbeat only; 0 means DefaultRetryBase).
	RetryBase int64
	// RetryCap bounds the exponential backoff delay (FailoverHeartbeat
	// only; 0 means DefaultRetryCap).
	RetryCap int64
	// GateBuffer is the gate buffer's capacity: arrivals that find no
	// believed-healthy datacenter enqueue in a FIFO of this size and drain
	// on the next health transition, instead of dropping at the gate. 0
	// disables buffering. Valid under both kinds.
	GateBuffer int
	// Shed selects which task a full gate buffer sheds (requires
	// GateBuffer > 0 when set).
	Shed ShedKind
}

// Enabled reports whether the policy changes anything relative to today's
// oracle-detection, no-buffer engine (nil-safe).
func (p *FailoverPolicy) Enabled() bool {
	return p != nil && (p.Kind != FailoverOracle || p.GateBuffer > 0)
}

// Detection reports whether failure detection is imperfect — dispatches
// can land on a down-but-undetected datacenter (nil-safe).
func (p *FailoverPolicy) Detection() bool { return p != nil && p.Kind == FailoverHeartbeat }

// Buffered reports whether gate buffering is on (nil-safe).
func (p *FailoverPolicy) Buffered() bool { return p != nil && p.GateBuffer > 0 }

// EffectiveHeartbeatEvery resolves the heartbeat cadence, applying the
// default.
func (p *FailoverPolicy) EffectiveHeartbeatEvery() int64 {
	if p == nil || p.HeartbeatEvery == 0 {
		return DefaultHeartbeatEvery
	}
	return p.HeartbeatEvery
}

// EffectiveSuspectAfter resolves the suspicion threshold, applying the
// default.
func (p *FailoverPolicy) EffectiveSuspectAfter() int {
	if p == nil || p.SuspectAfter == 0 {
		return DefaultSuspectAfter
	}
	return p.SuspectAfter
}

// EffectiveBounceAfter resolves the per-dispatch detection delay: the
// configured value, else the heartbeat timeout HeartbeatEvery×SuspectAfter.
func (p *FailoverPolicy) EffectiveBounceAfter() int64 {
	if p == nil || p.BounceAfter == 0 {
		return p.EffectiveHeartbeatEvery() * int64(p.EffectiveSuspectAfter())
	}
	return p.BounceAfter
}

// EffectiveRetryBase resolves the backoff base, applying the default.
func (p *FailoverPolicy) EffectiveRetryBase() int64 {
	if p == nil || p.RetryBase == 0 {
		return DefaultRetryBase
	}
	return p.RetryBase
}

// EffectiveRetryCap resolves the backoff cap, applying the default.
func (p *FailoverPolicy) EffectiveRetryCap() int64 {
	if p == nil || p.RetryCap == 0 {
		return DefaultRetryCap
	}
	return p.RetryCap
}

// Backoff returns retry k's backoff delay, min(RetryBase·2^(k−1),
// RetryCap), in ticks (k ≥ 1; nil-safe).
func (p *FailoverPolicy) Backoff(k int) int64 {
	base, cap := p.EffectiveRetryBase(), p.EffectiveRetryCap()
	d := base
	for i := 1; i < k; i++ {
		d *= 2
		if d >= cap || d < 0 { // d < 0: shift past int64 range
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// Validate rejects malformed policies: negative knobs, heartbeat knobs on
// the oracle kind, and a shedding policy without a buffer to shed from
// (nil-safe).
func (p *FailoverPolicy) Validate() error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case FailoverOracle, FailoverHeartbeat:
	default:
		return fmt.Errorf("failover: unknown kind %d", int(p.Kind))
	}
	switch p.Shed {
	case ShedDropNewest, ShedDropOldest, ShedDeadlineAware:
	default:
		return fmt.Errorf("failover: unknown shed policy %d", int(p.Shed))
	}
	if p.Kind != FailoverHeartbeat &&
		(p.HeartbeatEvery != 0 || p.SuspectAfter != 0 || p.Probation != 0 ||
			p.BounceAfter != 0 || p.MaxRetries != 0 || p.RetryBase != 0 || p.RetryCap != 0) {
		return fmt.Errorf("failover: heartbeat/retry knobs only apply to the heartbeat kind (got kind %s)", p.Kind)
	}
	if p.HeartbeatEvery < 0 {
		return fmt.Errorf("failover: negative heartbeat_every %d", p.HeartbeatEvery)
	}
	if p.SuspectAfter < 0 {
		return fmt.Errorf("failover: negative suspect_after %d", p.SuspectAfter)
	}
	if p.Probation < 0 {
		return fmt.Errorf("failover: negative probation %d", p.Probation)
	}
	if p.BounceAfter < 0 {
		return fmt.Errorf("failover: negative bounce_after %d", p.BounceAfter)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("failover: negative max_retries %d", p.MaxRetries)
	}
	if p.RetryBase < 0 {
		return fmt.Errorf("failover: negative retry_base %d", p.RetryBase)
	}
	if p.RetryCap < 0 {
		return fmt.Errorf("failover: negative retry_cap %d", p.RetryCap)
	}
	if p.RetryCap != 0 && p.RetryCap < p.EffectiveRetryBase() {
		return fmt.Errorf("failover: retry_cap %d below retry base %d", p.RetryCap, p.EffectiveRetryBase())
	}
	if p.GateBuffer < 0 {
		return fmt.Errorf("failover: negative gate_buffer %d", p.GateBuffer)
	}
	if p.Shed != ShedDropNewest && p.GateBuffer == 0 {
		return fmt.Errorf("failover: shed policy %s needs a gate_buffer to shed from", p.Shed)
	}
	return nil
}

// String renders the policy compactly for reports and errors.
func (p *FailoverPolicy) String() string {
	if !p.Enabled() {
		return "failover=oracle"
	}
	if p.Kind == FailoverOracle {
		return fmt.Sprintf("failover=oracle/buffer %d (%s)", p.GateBuffer, p.Shed)
	}
	s := fmt.Sprintf("failover=heartbeat/every %d×%d", p.EffectiveHeartbeatEvery(), p.EffectiveSuspectAfter())
	if p.GateBuffer > 0 {
		s += fmt.Sprintf("/buffer %d (%s)", p.GateBuffer, p.Shed)
	}
	return s
}

// jsonFailover is the wire form of a FailoverPolicy.
type jsonFailover struct {
	Kind           string `json:"kind"`
	HeartbeatEvery int64  `json:"heartbeat_every,omitempty"`
	SuspectAfter   int    `json:"suspect_after,omitempty"`
	Probation      int64  `json:"probation,omitempty"`
	BounceAfter    int64  `json:"bounce_after,omitempty"`
	MaxRetries     int    `json:"max_retries,omitempty"`
	RetryBase      int64  `json:"retry_base,omitempty"`
	RetryCap       int64  `json:"retry_cap,omitempty"`
	GateBuffer     int    `json:"gate_buffer,omitempty"`
	Shed           string `json:"shed,omitempty"`
}

// parseFailover decodes the wire form, rejecting unknown kinds and shed
// policies (the knob fields are integers, so the JSON layer already
// rejects non-numeric values).
func parseFailover(jf *jsonFailover) (*FailoverPolicy, error) {
	if jf == nil {
		return nil, nil
	}
	p := &FailoverPolicy{
		HeartbeatEvery: jf.HeartbeatEvery,
		SuspectAfter:   jf.SuspectAfter,
		Probation:      jf.Probation,
		BounceAfter:    jf.BounceAfter,
		MaxRetries:     jf.MaxRetries,
		RetryBase:      jf.RetryBase,
		RetryCap:       jf.RetryCap,
		GateBuffer:     jf.GateBuffer,
	}
	switch jf.Kind {
	case "oracle":
		p.Kind = FailoverOracle
	case "heartbeat":
		p.Kind = FailoverHeartbeat
	default:
		return nil, fmt.Errorf("scenario: failover has unknown kind %q", jf.Kind)
	}
	switch jf.Shed {
	case "", "drop-newest":
		p.Shed = ShedDropNewest
	case "drop-oldest":
		p.Shed = ShedDropOldest
	case "deadline-aware":
		p.Shed = ShedDeadlineAware
	default:
		return nil, fmt.Errorf("scenario: failover has unknown shed policy %q", jf.Shed)
	}
	return p, nil
}

// wireFailover encodes the policy back into its wire form (nil for nil).
func wireFailover(p *FailoverPolicy) *jsonFailover {
	if p == nil {
		return nil
	}
	jf := &jsonFailover{
		Kind:           p.Kind.String(),
		HeartbeatEvery: p.HeartbeatEvery,
		SuspectAfter:   p.SuspectAfter,
		Probation:      p.Probation,
		BounceAfter:    p.BounceAfter,
		MaxRetries:     p.MaxRetries,
		RetryBase:      p.RetryBase,
		RetryCap:       p.RetryCap,
		GateBuffer:     p.GateBuffer,
	}
	if p.Shed != ShedDropNewest {
		jf.Shed = p.Shed.String()
	}
	return jf
}
