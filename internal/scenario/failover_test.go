package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestFailoverValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *FailoverPolicy
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &FailoverPolicy{}, true},
		{"heartbeat defaults", &FailoverPolicy{Kind: FailoverHeartbeat}, true},
		{"heartbeat full", &FailoverPolicy{Kind: FailoverHeartbeat, HeartbeatEvery: 40, SuspectAfter: 3, Probation: 60, BounceAfter: 15, MaxRetries: 4, RetryBase: 5, RetryCap: 80, GateBuffer: 32, Shed: ShedDeadlineAware}, true},
		{"oracle buffer", &FailoverPolicy{GateBuffer: 16, Shed: ShedDropOldest}, true},
		{"unknown kind", &FailoverPolicy{Kind: FailoverKind(9)}, false},
		{"unknown shed", &FailoverPolicy{GateBuffer: 4, Shed: ShedKind(7)}, false},
		{"heartbeat knobs on oracle", &FailoverPolicy{Kind: FailoverOracle, HeartbeatEvery: 10}, false},
		{"retry knobs on oracle", &FailoverPolicy{Kind: FailoverOracle, MaxRetries: 2}, false},
		{"negative heartbeat", &FailoverPolicy{Kind: FailoverHeartbeat, HeartbeatEvery: -1}, false},
		{"negative suspect", &FailoverPolicy{Kind: FailoverHeartbeat, SuspectAfter: -2}, false},
		{"negative probation", &FailoverPolicy{Kind: FailoverHeartbeat, Probation: -5}, false},
		{"negative bounce", &FailoverPolicy{Kind: FailoverHeartbeat, BounceAfter: -5}, false},
		{"negative retries", &FailoverPolicy{Kind: FailoverHeartbeat, MaxRetries: -1}, false},
		{"negative base", &FailoverPolicy{Kind: FailoverHeartbeat, RetryBase: -1}, false},
		{"negative cap", &FailoverPolicy{Kind: FailoverHeartbeat, RetryCap: -1}, false},
		{"cap below base", &FailoverPolicy{Kind: FailoverHeartbeat, RetryBase: 50, RetryCap: 10}, false},
		{"negative buffer", &FailoverPolicy{GateBuffer: -1}, false},
		{"shed without buffer", &FailoverPolicy{Shed: ShedDropOldest}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestFailoverEnabledAndDefaults(t *testing.T) {
	var nilP *FailoverPolicy
	if nilP.Enabled() || nilP.Detection() || nilP.Buffered() {
		t.Error("nil policy must be fully disabled")
	}
	if (&FailoverPolicy{}).Enabled() {
		t.Error("zero policy must be disabled")
	}
	if !(&FailoverPolicy{GateBuffer: 8}).Enabled() {
		t.Error("oracle kind with a buffer is enabled")
	}
	if !(&FailoverPolicy{Kind: FailoverHeartbeat}).Detection() {
		t.Error("heartbeat kind must report imperfect detection")
	}
	p := &FailoverPolicy{Kind: FailoverHeartbeat}
	if got := p.EffectiveHeartbeatEvery(); got != DefaultHeartbeatEvery {
		t.Errorf("EffectiveHeartbeatEvery() = %d, want default %d", got, DefaultHeartbeatEvery)
	}
	if got := p.EffectiveSuspectAfter(); got != DefaultSuspectAfter {
		t.Errorf("EffectiveSuspectAfter() = %d, want default %d", got, DefaultSuspectAfter)
	}
	if got := p.EffectiveBounceAfter(); got != DefaultHeartbeatEvery*DefaultSuspectAfter {
		t.Errorf("EffectiveBounceAfter() = %d, want heartbeat timeout %d", got, DefaultHeartbeatEvery*DefaultSuspectAfter)
	}
	q := &FailoverPolicy{Kind: FailoverHeartbeat, HeartbeatEvery: 40, SuspectAfter: 3, BounceAfter: 7}
	if got := q.EffectiveBounceAfter(); got != 7 {
		t.Errorf("explicit BounceAfter ignored: got %d", got)
	}
}

func TestFailoverBackoff(t *testing.T) {
	p := &FailoverPolicy{Kind: FailoverHeartbeat, RetryBase: 8, RetryCap: 64}
	want := []int64{8, 16, 32, 64, 64, 64}
	for k, w := range want {
		if got := p.Backoff(k + 1); got != w {
			t.Errorf("Backoff(%d) = %d, want %d", k+1, got, w)
		}
	}
	// A huge retry index must saturate at the cap, not overflow.
	if got := p.Backoff(80); got != 64 {
		t.Errorf("Backoff(80) = %d, want cap 64", got)
	}
}

func TestFailoverJSONRoundTrip(t *testing.T) {
	src := `{"name":"detect","events":[{"tick":700,"kind":"dc-fail","dc":1,"policy":"requeue"},{"tick":1400,"kind":"dc-recover","dc":1}],` +
		`"failover":{"kind":"heartbeat","heartbeat_every":40,"suspect_after":3,"probation":60,"bounce_after":15,"max_retries":4,"retry_base":5,"retry_cap":80,"gate_buffer":32,"shed":"deadline-aware"}}`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Failover == nil || s.Failover.Kind != FailoverHeartbeat || s.Failover.HeartbeatEvery != 40 ||
		s.Failover.SuspectAfter != 3 || s.Failover.Probation != 60 || s.Failover.BounceAfter != 15 ||
		s.Failover.MaxRetries != 4 || s.Failover.RetryBase != 5 || s.Failover.RetryCap != 80 ||
		s.Failover.GateBuffer != 32 || s.Failover.Shed != ShedDeadlineAware {
		t.Fatalf("parsed policy wrong: %+v", s.Failover)
	}
	if err := s.ValidateCluster(8, 4); err != nil {
		t.Fatal(err)
	}
	blob, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, blob)
	}
	if again.Failover == nil || *again.Failover != *s.Failover {
		t.Fatalf("round trip changed the failover policy: %+v vs %+v", s.Failover, again.Failover)
	}
}

func TestFailoverParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"unknown kind":  `{"failover":{"kind":"psychic"}}`,
		"missing kind":  `{"failover":{"gate_buffer":8}}`,
		"unknown shed":  `{"failover":{"kind":"oracle","gate_buffer":8,"shed":"coin-flip"}}`,
		"unknown field": `{"failover":{"kind":"oracle","jitter":5}}`,
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestFailoverSingleFleetRejected(t *testing.T) {
	s := New("buffered").WithFailover(FailoverPolicy{GateBuffer: 8})
	if err := s.Validate(6); err == nil {
		t.Fatal("single-fleet validation accepted an enabled failover policy")
	}
	if err := s.ValidateCluster(6, 3); err != nil {
		t.Fatalf("cluster validation rejected an enabled failover policy: %v", err)
	}
	// A disabled (oracle, no-buffer) policy is harmless on a single fleet.
	z := New("zero").WithFailover(FailoverPolicy{})
	if err := z.Validate(6); err != nil {
		t.Fatalf("single-fleet validation rejected a disabled failover policy: %v", err)
	}
}

func TestFailoverString(t *testing.T) {
	var nilP *FailoverPolicy
	if got := nilP.String(); got != "failover=oracle" {
		t.Errorf("nil String() = %q", got)
	}
	p := &FailoverPolicy{GateBuffer: 16, Shed: ShedDropOldest}
	if got := p.String(); !strings.Contains(got, "buffer 16") || !strings.Contains(got, "drop-oldest") {
		t.Errorf("oracle-buffer String() = %q", got)
	}
	h := &FailoverPolicy{Kind: FailoverHeartbeat, HeartbeatEvery: 40, SuspectAfter: 3}
	if got := h.String(); !strings.Contains(got, "heartbeat") || !strings.Contains(got, "40×3") {
		t.Errorf("heartbeat String() = %q", got)
	}
}
