// Package scenario declares dynamic fleet scenarios for the simulator:
// timed machine failures (with their queues requeued or dropped),
// recoveries, elastic join/leave of machines, per-machine performance
// degradation factors, and arrival-rate burst windows. A scenario is a
// small declarative value — built in Go or parsed from JSON — that the
// simulator schedules through its event queue, so fleet churn composes with
// arrivals and completions under the same deterministic tie-ordering as
// everything else.
//
// The paper's evaluation assumes a fixed heterogeneous fleet; scenarios
// open the robustness regime the pruning mechanism is actually for — real
// HC clusters lose machines, get them back, and slow down under background
// load. The PET matrix's column count remains the (maximum) fleet size:
// elastic scenarios start machines absent via InitialDown and join them
// later, so every task still carries one ground-truth execution time per
// potential machine.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"taskprune/internal/workload"
)

// EventKind classifies a fleet event.
type EventKind int

const (
	// Fail removes a machine from the fleet; its queued and executing
	// tasks are requeued to the batch queue or dropped per the event's
	// Policy. "remove" and "leave" parse to Fail (elastic shrink).
	Fail EventKind = iota
	// Recover returns a failed machine to the fleet, idle and empty.
	// "add" and "join" parse to Recover (elastic grow).
	Recover
	// Degrade sets a machine's performance degradation factor: tasks
	// started on it take Factor× their nominal execution time. Factor 1
	// restores nominal speed ("restore" parses to Degrade with Factor 1).
	// The executing task, if any, keeps the factor it started under.
	Degrade
	// Drift ramps a machine's degradation factor from From to Factor over
	// the window [Tick, Until] — thermal throttling building up, a
	// contention ramp releasing. It reuses the workload rate-function ramp
	// shape (workload.RampRate) and is expanded by Sorted into Steps+1
	// discrete Degrade events along the window, so it flows through the
	// same deterministic event queue and cache-invalidation machinery as
	// any step change.
	Drift
	// DCFail is a cluster-scoped event: it takes a whole datacenter out of
	// the cluster. Its Policy selects the fate of the DC's tasks — Requeue
	// fails them over to the surviving datacenters through the dispatcher,
	// Drop exits them. Single-fleet runs reject DC-scoped events; only the
	// cluster engine handles them.
	DCFail
	// DCRecover returns a failed datacenter to the cluster, its machines
	// idle and empty.
	DCRecover
)

// DefaultDriftSteps is how many discrete Degrade steps a Drift event
// expands into when its Steps field is zero.
const DefaultDriftSteps = 8

// MaxDriftSteps bounds a Drift event's step count: the expansion
// materializes Steps+1 Degrade events, so an absurd count would flood the
// event queue.
const MaxDriftSteps = 10_000

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	case Degrade:
		return "degrade"
	case Drift:
		return "drift"
	case DCFail:
		return "dc-fail"
	case DCRecover:
		return "dc-recover"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Policy selects what happens to a failed machine's tasks.
type Policy int

const (
	// Requeue returns the machine's tasks (executing first, then the
	// pending queue in FCFS order) to the batch queue; any execution
	// progress is lost. This is the default.
	Requeue Policy = iota
	// Drop exits the machine's tasks from the system as dropped.
	Drop
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Drop {
		return "drop"
	}
	return "requeue"
}

// Event is one timed fleet change.
type Event struct {
	Tick    int64
	Kind    EventKind
	Machine int
	Factor  float64 // Degrade: new speed factor; Drift: factor at Until (> 0)
	Policy  Policy  // Fail/DCFail: fate of the queued tasks

	// Drift fields: the factor ramps from From at Tick to Factor at Until,
	// discretized into Steps+1 Degrade events (0 → DefaultDriftSteps).
	Until int64
	From  float64
	Steps int

	// DC addresses DCFail/DCRecover events (datacenter index in the
	// cluster's partition order).
	DC int
}

// String renders the event compactly for traces and errors.
func (e Event) String() string {
	switch e.Kind {
	case Degrade:
		return fmt.Sprintf("t=%d degrade m%d ×%g", e.Tick, e.Machine, e.Factor)
	case Drift:
		return fmt.Sprintf("t=%d..%d drift m%d ×%g→×%g", e.Tick, e.Until, e.Machine, e.From, e.Factor)
	case Fail:
		return fmt.Sprintf("t=%d fail m%d (%s)", e.Tick, e.Machine, e.Policy)
	case DCFail:
		return fmt.Sprintf("t=%d dc-fail dc%d (%s)", e.Tick, e.DC, e.Policy)
	case DCRecover:
		return fmt.Sprintf("t=%d dc-recover dc%d", e.Tick, e.DC)
	default:
		return fmt.Sprintf("t=%d %s m%d", e.Tick, e.Kind, e.Machine)
	}
}

// Scenario is a full dynamic-fleet specification. The zero value (or nil)
// is the static fleet the paper evaluates.
type Scenario struct {
	// Name labels the scenario in reports and figures.
	Name string
	// InitialDown lists machines absent at tick 0 (elastic scenarios grow
	// the fleet by recovering them later).
	InitialDown []int
	// Events are the timed fleet changes, in any order; the simulator's
	// event queue orders them by (tick, declaration order).
	Events []Event
	// Bursts are arrival-rate burst windows applied by the workload
	// generator (they shape the task stream, not the fleet).
	Bursts []workload.Burst
	// Checkpoint, when non-nil, is the checkpoint/restore policy tasks run
	// under: how often progress is persisted, what each checkpoint costs,
	// and whether checkpoints survive a whole-DC outage. It rides in the
	// scenario wire format so a fault study declares its recovery policy
	// next to the failures it answers; the simulator reads it through
	// simulator.Config.Checkpoint (an explicitly configured policy wins).
	Checkpoint *CheckpointPolicy
	// Belief, when non-nil, selects what the mapper knows about execution
	// times: the oracle (ground truth, the default), a belief frozen at
	// t=0 while drift/degrade move the truth, or an online estimator
	// rebuilt from observed completions. It rides in the wire format so a
	// robustness study declares its knowledge model next to the events
	// that invalidate it; the simulator reads it through
	// simulator.Config.Belief (an explicitly configured policy wins).
	Belief *BeliefPolicy
	// Failover, when non-nil, selects what the cluster dispatcher knows
	// about datacenter health and how arrivals behave when that knowledge
	// is wrong: heartbeat detection lag, post-recovery probation,
	// bounce-and-retry for dispatches into undetected outages, and the
	// bounded gate buffer. It rides in the wire format so a fault study
	// declares its detection model next to the dc-fail events that stress
	// it; the cluster engine reads it through cluster.Config.Failover (an
	// explicitly configured policy wins). Single-fleet runs reject an
	// enabled policy — there is no dispatcher to mis-inform.
	Failover *FailoverPolicy
}

// New returns an empty named scenario, ready for the builder methods.
func New(name string) *Scenario { return &Scenario{Name: name} }

// FailAt appends a machine failure. Returns s for chaining.
func (s *Scenario) FailAt(tick int64, machine int, policy Policy) *Scenario {
	s.Events = append(s.Events, Event{Tick: tick, Kind: Fail, Machine: machine, Policy: policy})
	return s
}

// RecoverAt appends a machine recovery. Returns s for chaining.
func (s *Scenario) RecoverAt(tick int64, machine int) *Scenario {
	s.Events = append(s.Events, Event{Tick: tick, Kind: Recover, Machine: machine})
	return s
}

// DegradeAt appends a speed-factor change. Returns s for chaining.
func (s *Scenario) DegradeAt(tick int64, machine int, factor float64) *Scenario {
	s.Events = append(s.Events, Event{Tick: tick, Kind: Degrade, Machine: machine, Factor: factor})
	return s
}

// DriftAt appends a gradual speed-factor ramp on a machine: factor from at
// tick start, factor to at tick end, linearly interpolated in between and
// discretized into steps+1 Degrade events (steps 0 → DefaultDriftSteps).
// Returns s for chaining.
func (s *Scenario) DriftAt(start, end int64, machine int, from, to float64, steps int) *Scenario {
	s.Events = append(s.Events, Event{Tick: start, Kind: Drift, Machine: machine, Until: end, From: from, Factor: to, Steps: steps})
	return s
}

// DCFailAt appends a whole-datacenter failure (cluster runs only). Returns
// s for chaining.
func (s *Scenario) DCFailAt(tick int64, dc int, policy Policy) *Scenario {
	s.Events = append(s.Events, Event{Tick: tick, Kind: DCFail, DC: dc, Policy: policy})
	return s
}

// DCRecoverAt appends a whole-datacenter recovery (cluster runs only).
// Returns s for chaining.
func (s *Scenario) DCRecoverAt(tick int64, dc int) *Scenario {
	s.Events = append(s.Events, Event{Tick: tick, Kind: DCRecover, DC: dc})
	return s
}

// BurstWindow appends an arrival-rate burst. Returns s for chaining.
func (s *Scenario) BurstWindow(start, end int64, factor float64) *Scenario {
	s.Bursts = append(s.Bursts, workload.Burst{Start: start, End: end, Factor: factor})
	return s
}

// WithCheckpoint sets the checkpoint/restore policy. Returns s for chaining.
func (s *Scenario) WithCheckpoint(p CheckpointPolicy) *Scenario {
	s.Checkpoint = &p
	return s
}

// WithBelief sets the mapper's knowledge model. Returns s for chaining.
func (s *Scenario) WithBelief(p BeliefPolicy) *Scenario {
	s.Belief = &p
	return s
}

// WithFailover sets the dispatcher's health-detection model. Returns s for
// chaining.
func (s *Scenario) WithFailover(p FailoverPolicy) *Scenario {
	s.Failover = &p
	return s
}

// StartDown marks machines as absent at tick 0. Returns s for chaining.
func (s *Scenario) StartDown(machines ...int) *Scenario {
	s.InitialDown = append(s.InitialDown, machines...)
	return s
}

// IsStatic reports whether the scenario changes nothing (nil-safe), so the
// simulator can skip all scenario bookkeeping on the paper's fixed fleet.
func (s *Scenario) IsStatic() bool {
	return s == nil || (len(s.InitialDown) == 0 && len(s.Events) == 0 && len(s.Bursts) == 0)
}

// ApplyBursts copies the scenario's burst windows onto a workload
// configuration (nil-safe no-op). Every path that pairs a scenario with
// generated workloads must route through this, so the two halves of a
// scenario — fleet events into the simulator, bursts into the generator —
// cannot drift apart. Bursts already present on the config win: the caller
// explicitly shaped that workload.
func (s *Scenario) ApplyBursts(cfg *workload.Config) {
	if s == nil || len(cfg.Bursts) > 0 {
		return
	}
	cfg.Bursts = s.Bursts
}

// Validate checks the scenario against a single fleet of nMachines. It
// rejects out-of-range machine indices, negative ticks, non-positive or
// non-finite degradation factors, malformed burst or drift windows, an
// InitialDown set that empties the fleet, and any cluster-scoped
// (dc-fail/dc-recover) event — those only make sense under the cluster
// engine, which validates with ValidateCluster instead.
func (s *Scenario) Validate(nMachines int) error {
	return s.validate(nMachines, 0)
}

// ValidateCluster is Validate for a sharded run: cluster-scoped events are
// allowed and their datacenter indices checked against nDCs.
func (s *Scenario) ValidateCluster(nMachines, nDCs int) error {
	if nDCs < 1 {
		return fmt.Errorf("scenario: cluster validation needs at least one datacenter, got %d", nDCs)
	}
	return s.validate(nMachines, nDCs)
}

// validate implements Validate (nDCs == 0, cluster events rejected) and
// ValidateCluster (nDCs >= 1, cluster events range-checked).
func (s *Scenario) validate(nMachines, nDCs int) error {
	if s == nil {
		return nil
	}
	if nMachines <= 0 {
		return fmt.Errorf("scenario %q: fleet has %d machines", s.Name, nMachines)
	}
	if err := s.Checkpoint.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Belief.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Failover.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if nDCs == 0 && s.Failover.Enabled() {
		return fmt.Errorf("scenario %q: the failover policy is cluster-scoped; single-fleet runs have no dispatcher", s.Name)
	}
	down := make(map[int]bool, len(s.InitialDown))
	for _, mi := range s.InitialDown {
		if mi < 0 || mi >= nMachines {
			return fmt.Errorf("scenario %q: initial_down machine %d out of range [0,%d)", s.Name, mi, nMachines)
		}
		if down[mi] {
			return fmt.Errorf("scenario %q: machine %d listed in initial_down twice", s.Name, mi)
		}
		down[mi] = true
	}
	if len(down) == nMachines {
		return fmt.Errorf("scenario %q: every machine starts down", s.Name)
	}
	for i, e := range s.Events {
		if e.Tick < 0 {
			return fmt.Errorf("scenario %q: event %d (%s) at negative tick", s.Name, i, e)
		}
		if e.Kind == DCFail || e.Kind == DCRecover {
			if nDCs == 0 {
				return fmt.Errorf("scenario %q: event %d (%s) is cluster-scoped; single-fleet runs cannot honor it", s.Name, i, e)
			}
			if e.DC < 0 || e.DC >= nDCs {
				return fmt.Errorf("scenario %q: event %d (%s) datacenter out of range [0,%d)", s.Name, i, e, nDCs)
			}
			if e.Kind == DCFail && e.Policy != Requeue && e.Policy != Drop {
				return fmt.Errorf("scenario %q: event %d (%s) has unknown policy %d", s.Name, i, e, int(e.Policy))
			}
			continue
		}
		if e.Machine < 0 || e.Machine >= nMachines {
			return fmt.Errorf("scenario %q: event %d (%s) machine out of range [0,%d)", s.Name, i, e, nMachines)
		}
		switch e.Kind {
		case Fail:
			if e.Policy != Requeue && e.Policy != Drop {
				return fmt.Errorf("scenario %q: event %d (%s) has unknown policy %d", s.Name, i, e, int(e.Policy))
			}
		case Recover:
			// No extra fields.
		case Degrade:
			if !(e.Factor > 0) || math.IsInf(e.Factor, 0) {
				return fmt.Errorf("scenario %q: event %d (%s) needs a positive finite factor", s.Name, i, e)
			}
		case Drift:
			if e.Until <= e.Tick {
				return fmt.Errorf("scenario %q: event %d (%s) window is malformed", s.Name, i, e)
			}
			if !(e.From > 0) || math.IsInf(e.From, 0) || !(e.Factor > 0) || math.IsInf(e.Factor, 0) {
				return fmt.Errorf("scenario %q: event %d (%s) needs positive finite factors", s.Name, i, e)
			}
			if e.Steps < 0 || e.Steps > MaxDriftSteps {
				return fmt.Errorf("scenario %q: event %d (%s) needs a step count in [0,%d]", s.Name, i, e, MaxDriftSteps)
			}
			steps := e.Steps
			if steps == 0 {
				steps = DefaultDriftSteps
			}
			// expandDrift interpolates with i·(Until−Tick) in int64; keep
			// the widest intermediate product exactly representable.
			if e.Until-e.Tick > math.MaxInt64/int64(steps) {
				return fmt.Errorf("scenario %q: event %d (%s) window too wide for %d steps", s.Name, i, e, steps)
			}
		default:
			return fmt.Errorf("scenario %q: event %d has unknown kind %d", s.Name, i, int(e.Kind))
		}
	}
	for i, b := range s.Bursts {
		if b.Start < 0 || b.End <= b.Start {
			return fmt.Errorf("scenario %q: burst %d window [%d,%d) is malformed", s.Name, i, b.Start, b.End)
		}
		if !(b.Factor > 0) || math.IsInf(b.Factor, 0) {
			return fmt.Errorf("scenario %q: burst %d needs a positive finite factor, got %v", s.Name, i, b.Factor)
		}
	}
	return nil
}

// Sorted returns the events ordered by (tick, declaration order), with
// every Drift event expanded into its discrete Degrade staircase. The
// simulator pushes events in this order so scenario files may declare them
// in any order without perturbing determinism.
func (s *Scenario) Sorted() []Event {
	out := make([]Event, 0, len(s.Events))
	for _, e := range s.Events {
		if e.Kind == Drift {
			out = append(out, e.expandDrift()...)
			continue
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out
}

// expandDrift discretizes a Drift ramp into Steps+1 Degrade events: one at
// each of Steps+1 evenly spaced ticks across [Tick, Until], each carrying
// the workload.RampRate factor at its tick — From at the window start, the
// target Factor exactly at the end. Steps that land on the same integer
// tick collapse to the last (a later Degrade at the same tick overwrites an
// earlier one anyway, so the collapse only trims redundant events).
func (e Event) expandDrift() []Event {
	steps := e.Steps
	if steps == 0 {
		steps = DefaultDriftSteps
	}
	ramp := workload.RampRate(e.Tick, e.Until, e.From, e.Factor)
	out := make([]Event, 0, steps+1)
	for i := 0; i <= steps; i++ {
		tick := e.Tick + int64(i)*(e.Until-e.Tick)/int64(steps)
		step := Event{Tick: tick, Kind: Degrade, Machine: e.Machine, Factor: ramp(float64(tick))}
		if n := len(out); n > 0 && out[n-1].Tick == tick {
			out[n-1] = step
			continue
		}
		out = append(out, step)
	}
	return out
}

// jsonScenario is the wire form of a Scenario.
type jsonScenario struct {
	Name        string          `json:"name"`
	InitialDown []int           `json:"initial_down,omitempty"`
	Events      []jsonEvent     `json:"events,omitempty"`
	Bursts      []jsonBurst     `json:"bursts,omitempty"`
	Checkpoint  *jsonCheckpoint `json:"checkpoint,omitempty"`
	Belief      *jsonBelief     `json:"belief,omitempty"`
	Failover    *jsonFailover   `json:"failover,omitempty"`
}

type jsonEvent struct {
	Tick    int64    `json:"tick"`
	Kind    string   `json:"kind"`
	Machine int      `json:"machine,omitempty"`
	Factor  *float64 `json:"factor,omitempty"`
	Policy  string   `json:"policy,omitempty"`

	// Drift ramps.
	Until int64    `json:"until,omitempty"`
	From  *float64 `json:"from,omitempty"`
	To    *float64 `json:"to,omitempty"`
	Steps int      `json:"steps,omitempty"`

	// Cluster-scoped events.
	DC *int `json:"dc,omitempty"`
}

type jsonBurst struct {
	Start  int64   `json:"start"`
	End    int64   `json:"end"`
	Factor float64 `json:"factor"`
}

// Parse reads a JSON scenario. Structural problems (unknown kinds or
// policies, NaN factors smuggled in as strings, missing fields) fail here;
// fleet-dependent checks happen in Validate, which the simulator calls with
// the PET's machine count.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in jsonScenario
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s := &Scenario{Name: in.Name, InitialDown: in.InitialDown}
	ckpt, err := parseCheckpoint(in.Checkpoint)
	if err != nil {
		return nil, err
	}
	s.Checkpoint = ckpt
	belief, err := parseBelief(in.Belief)
	if err != nil {
		return nil, err
	}
	s.Belief = belief
	failover, err := parseFailover(in.Failover)
	if err != nil {
		return nil, err
	}
	s.Failover = failover
	for i, je := range in.Events {
		e := Event{Tick: je.Tick, Machine: je.Machine}
		switch je.Kind {
		case "fail", "remove", "leave":
			e.Kind = Fail
			switch je.Policy {
			case "", "requeue":
				e.Policy = Requeue
			case "drop":
				e.Policy = Drop
			default:
				return nil, fmt.Errorf("scenario: event %d has unknown policy %q", i, je.Policy)
			}
		case "recover", "add", "join":
			e.Kind = Recover
		case "degrade":
			if je.Factor == nil {
				return nil, fmt.Errorf("scenario: event %d (degrade) is missing its factor", i)
			}
			e.Kind = Degrade
			e.Factor = *je.Factor
		case "restore":
			e.Kind = Degrade
			e.Factor = 1
		case "drift":
			if je.To == nil {
				return nil, fmt.Errorf("scenario: event %d (drift) is missing its target factor \"to\"", i)
			}
			e.Kind = Drift
			e.Until = je.Until
			e.From = 1
			if je.From != nil {
				e.From = *je.From
			}
			e.Factor = *je.To
			e.Steps = je.Steps
		case "dc-fail":
			if je.DC == nil {
				return nil, fmt.Errorf("scenario: event %d (dc-fail) is missing its datacenter", i)
			}
			e.Kind = DCFail
			e.DC = *je.DC
			switch je.Policy {
			case "", "requeue":
				e.Policy = Requeue
			case "drop":
				e.Policy = Drop
			default:
				return nil, fmt.Errorf("scenario: event %d has unknown policy %q", i, je.Policy)
			}
		case "dc-recover":
			if je.DC == nil {
				return nil, fmt.Errorf("scenario: event %d (dc-recover) is missing its datacenter", i)
			}
			e.Kind = DCRecover
			e.DC = *je.DC
		default:
			return nil, fmt.Errorf("scenario: event %d has unknown kind %q", i, je.Kind)
		}
		s.Events = append(s.Events, e)
	}
	for _, jb := range in.Bursts {
		s.Bursts = append(s.Bursts, workload.Burst{Start: jb.Start, End: jb.End, Factor: jb.Factor})
	}
	return s, nil
}

// Load parses the scenario file at path.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// MarshalJSON implements json.Marshaler so scenarios round-trip through the
// same wire form Parse reads.
func (s *Scenario) MarshalJSON() ([]byte, error) {
	out := jsonScenario{Name: s.Name, InitialDown: s.InitialDown, Checkpoint: wireCheckpoint(s.Checkpoint), Belief: wireBelief(s.Belief), Failover: wireFailover(s.Failover)}
	for _, e := range s.Events {
		je := jsonEvent{Tick: e.Tick, Kind: e.Kind.String(), Machine: e.Machine}
		switch e.Kind {
		case Fail:
			je.Policy = e.Policy.String()
		case Degrade:
			f := e.Factor
			je.Factor = &f
		case Drift:
			from, to := e.From, e.Factor
			je.Until, je.From, je.To, je.Steps = e.Until, &from, &to, e.Steps
		case DCFail:
			dc := e.DC
			je.Machine, je.DC, je.Policy = 0, &dc, e.Policy.String()
		case DCRecover:
			dc := e.DC
			je.Machine, je.DC = 0, &dc
		}
		out.Events = append(out.Events, je)
	}
	for _, b := range s.Bursts {
		out.Bursts = append(out.Bursts, jsonBurst{Start: b.Start, End: b.End, Factor: b.Factor})
	}
	return json.Marshal(out)
}
