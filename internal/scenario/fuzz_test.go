package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes through the scenario parser and, when a
// scenario parses, through validation and a marshal→parse round trip. The
// parser must never panic, and anything it accepts must survive its own
// wire form.
func FuzzParse(f *testing.F) {
	f.Add(`{"name":"x"}`)
	f.Add(`{"name":"churn","initial_down":[1],"events":[{"tick":500,"kind":"fail","machine":1,"policy":"requeue"},{"tick":900,"kind":"recover","machine":1}]}`)
	f.Add(`{"events":[{"tick":1200,"kind":"degrade","machine":0,"factor":2.0}]}`)
	f.Add(`{"bursts":[{"start":300,"end":600,"factor":3.0}]}`)
	f.Add(`{"events":[{"tick":-5,"kind":"fail","machine":99}]}`)
	f.Add(`{"events":[{"tick":1,"kind":"degrade","machine":0,"factor":-1}]}`)
	f.Add(`{"events":[{"tick":1,"kind":"degrade","machine":0,"factor":1e999}]}`)
	f.Add(`{"bursts":[{"start":600,"end":300,"factor":0}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(strings.NewReader(src))
		if err != nil {
			return // malformed input rejected: fine
		}
		// Validation must classify, never panic, for any parsed scenario.
		valid := s.Validate(8) == nil
		_ = s.Validate(0)
		if !valid {
			return
		}
		// A scenario that parses AND validates must round-trip.
		blob, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of valid scenario failed: %v", err)
		}
		again, err := Parse(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("re-parse of marshaled scenario failed: %v\n%s", err, blob)
		}
		if err := again.Validate(8); err != nil {
			t.Fatalf("round-tripped scenario no longer validates: %v", err)
		}
		if len(again.Events) != len(s.Events) || len(again.Bursts) != len(s.Bursts) {
			t.Fatalf("round trip changed shape: %+v vs %+v", s, again)
		}
	})
}
