package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes through the scenario parser and, when a
// scenario parses, through validation and a marshal→parse round trip. The
// parser must never panic, and anything it accepts must survive its own
// wire form.
func FuzzParse(f *testing.F) {
	f.Add(`{"name":"x"}`)
	f.Add(`{"name":"churn","initial_down":[1],"events":[{"tick":500,"kind":"fail","machine":1,"policy":"requeue"},{"tick":900,"kind":"recover","machine":1}]}`)
	f.Add(`{"events":[{"tick":1200,"kind":"degrade","machine":0,"factor":2.0}]}`)
	f.Add(`{"bursts":[{"start":300,"end":600,"factor":3.0}]}`)
	f.Add(`{"events":[{"tick":-5,"kind":"fail","machine":99}]}`)
	f.Add(`{"events":[{"tick":1,"kind":"degrade","machine":0,"factor":-1}]}`)
	f.Add(`{"events":[{"tick":1,"kind":"degrade","machine":0,"factor":1e999}]}`)
	f.Add(`{"bursts":[{"start":600,"end":300,"factor":0}]}`)
	f.Add(`{"events":[{"tick":100,"kind":"drift","machine":1,"until":500,"from":1,"to":3,"steps":4}]}`)
	f.Add(`{"events":[{"tick":100,"kind":"drift","machine":1,"until":50,"to":0}]}`)
	f.Add(`{"events":[{"tick":700,"kind":"dc-fail","dc":1,"policy":"requeue"},{"tick":1400,"kind":"dc-recover","dc":1}]}`)
	f.Add(`{"events":[{"tick":700,"kind":"dc-fail","dc":9,"policy":"drop"}]}`)
	f.Add(`{"checkpoint":{"kind":"periodic","interval":50,"overhead":2}}`)
	f.Add(`{"checkpoint":{"kind":"periodic","interval":50,"survival":"replicated","replication_lag":10},"events":[{"tick":700,"kind":"dc-fail","dc":1}]}`)
	f.Add(`{"checkpoint":{"kind":"on-preempt","survival":"local"}}`)
	f.Add(`{"checkpoint":{"kind":"periodic"}}`)
	f.Add(`{"checkpoint":{"kind":"never","interval":-3}}`)
	f.Add(`{"belief":{"kind":"oracle"}}`)
	f.Add(`{"belief":{"kind":"frozen"},"events":[{"tick":100,"kind":"drift","machine":1,"until":500,"from":1,"to":3,"steps":4}]}`)
	f.Add(`{"belief":{"kind":"online","refresh":10,"min_samples":5,"bins":16}}`)
	f.Add(`{"belief":{"kind":"online","refresh":-1}}`)
	f.Add(`{"belief":{"kind":"frozen","min_samples":5}}`)
	f.Add(`{"belief":{"kind":"psychic"}}`)
	f.Add(`{"failover":{"kind":"oracle"}}`)
	f.Add(`{"failover":{"kind":"oracle","gate_buffer":16,"shed":"drop-oldest"}}`)
	f.Add(`{"failover":{"kind":"heartbeat","heartbeat_every":40,"suspect_after":3,"probation":60,"bounce_after":15,"max_retries":4,"retry_base":5,"retry_cap":80,"gate_buffer":32,"shed":"deadline-aware"},"events":[{"tick":700,"kind":"dc-fail","dc":1,"policy":"requeue"},{"tick":1400,"kind":"dc-recover","dc":1}]}`)
	f.Add(`{"failover":{"kind":"heartbeat","heartbeat_every":-1}}`)
	f.Add(`{"failover":{"kind":"oracle","suspect_after":2}}`)
	f.Add(`{"failover":{"kind":"oracle","shed":"deadline-aware"}}`)
	f.Add(`{"failover":{"kind":"heartbeat","retry_base":50,"retry_cap":10}}`)
	f.Add(`{"failover":{"kind":"psychic"}}`)
	f.Add(`{"failover":{"kind":"oracle","shed":"coin-flip"}}`)
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(strings.NewReader(src))
		if err != nil {
			return // malformed input rejected: fine
		}
		// Validation must classify, never panic, for any parsed scenario —
		// single-fleet and cluster alike (cluster validation additionally
		// admits dc-scoped events).
		valid := s.Validate(8) == nil || s.ValidateCluster(8, 4) == nil
		_ = s.Validate(0)
		_ = s.ValidateCluster(8, 0)
		if !valid {
			return
		}
		// Drift expansion must be total on anything valid (the simulator
		// schedules Sorted()'s output directly).
		for _, e := range s.Sorted() {
			if e.Kind == Drift {
				t.Fatalf("Sorted left a drift event unexpanded: %v", e)
			}
		}
		// A scenario that parses AND validates must round-trip.
		blob, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of valid scenario failed: %v", err)
		}
		again, err := Parse(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("re-parse of marshaled scenario failed: %v\n%s", err, blob)
		}
		if err := again.ValidateCluster(8, 4); err != nil {
			if err2 := again.Validate(8); err2 != nil {
				t.Fatalf("round-tripped scenario no longer validates: %v / %v", err, err2)
			}
		}
		if len(again.Events) != len(s.Events) || len(again.Bursts) != len(s.Bursts) {
			t.Fatalf("round trip changed shape: %+v vs %+v", s, again)
		}
		if (again.Checkpoint == nil) != (s.Checkpoint == nil) ||
			(s.Checkpoint != nil && *again.Checkpoint != *s.Checkpoint) {
			t.Fatalf("round trip changed the checkpoint policy: %+v vs %+v", s.Checkpoint, again.Checkpoint)
		}
		if (again.Belief == nil) != (s.Belief == nil) ||
			(s.Belief != nil && *again.Belief != *s.Belief) {
			t.Fatalf("round trip changed the belief policy: %+v vs %+v", s.Belief, again.Belief)
		}
		if (again.Failover == nil) != (s.Failover == nil) ||
			(s.Failover != nil && *again.Failover != *s.Failover) {
			t.Fatalf("round trip changed the failover policy: %+v vs %+v", s.Failover, again.Failover)
		}
	})
}
