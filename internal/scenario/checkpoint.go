package scenario

// This file declares the checkpoint/restore policy: whether (and how often)
// tasks persist their execution progress, what each checkpoint costs in
// wall-clock overhead, and whether a checkpoint survives the loss of a whole
// datacenter. The policy is part of the scenario wire format so fault
// studies can declare recovery behaviour next to the failures it answers —
// the paper's robustness metric charges a failed machine's in-flight tasks
// their full cost, and this knob quantifies how much of that price
// checkpointing buys back.
//
// Progress is measured in *nominal* execution ticks (the machine-independent
// credit task.Task.Consumed carries): a checkpoint written on one machine
// restores on any other, exactly like the preemption extension's banked
// progress. Checkpoint overhead, by contrast, is wall-clock ticks spent on
// the executing machine per checkpoint written.

import "fmt"

// CheckpointKind selects when checkpoints are written.
type CheckpointKind int

const (
	// CheckpointNone disables checkpointing: a failure loses all progress
	// (requeue resets Consumed to zero), byte-identical to the engine
	// without the subsystem.
	CheckpointNone CheckpointKind = iota
	// CheckpointPeriodic writes a checkpoint every Interval nominal ticks
	// of execution progress, each costing Overhead wall ticks. A failed
	// task restores at its last *completed* checkpoint — progress past it,
	// and a checkpoint still being written, are lost.
	CheckpointPeriodic
	// CheckpointOnPreempt writes a checkpoint only when the pruner pauses
	// an executing task (the preemption extension's scheduling pause
	// already serializes the task's state): banked progress survives later
	// machine failures, but a run interrupted by failure loses everything
	// since its last pause.
	CheckpointOnPreempt
)

// String implements fmt.Stringer.
func (k CheckpointKind) String() string {
	switch k {
	case CheckpointNone:
		return "none"
	case CheckpointPeriodic:
		return "periodic"
	case CheckpointOnPreempt:
		return "on-preempt"
	default:
		return fmt.Sprintf("CheckpointKind(%d)", int(k))
	}
}

// SurvivalMode selects whether checkpoints outlive a whole-datacenter
// outage (the cluster engine's dc-fail).
type SurvivalMode int

const (
	// SurviveLocal stores checkpoints on datacenter-local storage: they
	// survive single-machine failures (the DC's storage keeps them) but die
	// with the datacenter — a dc-fail failover restarts its tasks from
	// zero.
	SurviveLocal SurvivalMode = iota
	// SurviveReplicated replicates checkpoints across datacenters: a
	// dc-fail failover resumes each task from its last checkpoint minus a
	// replication-lag penalty (the freshest ReplicationLag nominal ticks of
	// progress had not reached the surviving replicas yet).
	SurviveReplicated
)

// String implements fmt.Stringer.
func (m SurvivalMode) String() string {
	if m == SurviveReplicated {
		return "replicated"
	}
	return "local"
}

// CheckpointPolicy is the full checkpoint/restore specification. The zero
// value (and nil) disables checkpointing entirely.
type CheckpointPolicy struct {
	// Kind selects when checkpoints are written.
	Kind CheckpointKind
	// Interval is the nominal-progress spacing of periodic checkpoints
	// (CheckpointPeriodic only; must be positive).
	Interval int64
	// Overhead is the wall-clock ticks each periodic checkpoint costs on
	// the executing machine: a run that writes n checkpoints finishes
	// n×Overhead ticks later than it would unchecked. Zero models free
	// checkpoints.
	Overhead int64
	// Survival selects whether checkpoints outlive a whole-DC outage.
	Survival SurvivalMode
	// ReplicationLag is the nominal-progress penalty a replicated
	// checkpoint pays at dc-fail failover (SurviveReplicated only).
	ReplicationLag int64
}

// Enabled reports whether the policy checkpoints anything (nil-safe).
func (p *CheckpointPolicy) Enabled() bool { return p != nil && p.Kind != CheckpointNone }

// Periodic reports whether the policy writes interval checkpoints (nil-safe).
func (p *CheckpointPolicy) Periodic() bool { return p != nil && p.Kind == CheckpointPeriodic }

// Validate rejects malformed policies: a periodic policy needs a positive
// interval, overheads and lags cannot be negative, and interval/overhead
// are meaningless without periodic checkpointing (nil-safe).
func (p *CheckpointPolicy) Validate() error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case CheckpointNone, CheckpointPeriodic, CheckpointOnPreempt:
	default:
		return fmt.Errorf("checkpoint: unknown kind %d", int(p.Kind))
	}
	switch p.Survival {
	case SurviveLocal, SurviveReplicated:
	default:
		return fmt.Errorf("checkpoint: unknown survival mode %d", int(p.Survival))
	}
	if p.Kind == CheckpointPeriodic && p.Interval <= 0 {
		return fmt.Errorf("checkpoint: periodic policy needs a positive interval, got %d", p.Interval)
	}
	if p.Kind != CheckpointPeriodic && (p.Interval != 0 || p.Overhead != 0) {
		return fmt.Errorf("checkpoint: interval/overhead only apply to the periodic kind (got kind %s, interval %d, overhead %d)", p.Kind, p.Interval, p.Overhead)
	}
	if p.Overhead < 0 {
		return fmt.Errorf("checkpoint: negative overhead %d", p.Overhead)
	}
	if p.ReplicationLag < 0 {
		return fmt.Errorf("checkpoint: negative replication lag %d", p.ReplicationLag)
	}
	if p.Survival != SurviveReplicated && p.ReplicationLag != 0 {
		return fmt.Errorf("checkpoint: replication lag only applies to replicated survival, got %d under %s", p.ReplicationLag, p.Survival)
	}
	return nil
}

// PointsWithin counts the periodic checkpoint points a run crosses while
// advancing cumulative nominal progress from `from` (exclusive) to `total`
// (exclusive): checkpoints sit at every multiple of Interval, and one
// landing exactly at completion is never written — the task just finishes.
// Non-periodic policies cross none (nil-safe).
func (p *CheckpointPolicy) PointsWithin(from, total int64) int64 {
	if !p.Periodic() || total <= from {
		return 0
	}
	n := (total-1)/p.Interval - from/p.Interval
	if n < 0 {
		return 0
	}
	return n
}

// FailoverCredit returns the nominal progress credit that survives a
// whole-DC outage for a task whose locally banked (checkpointed) progress
// is banked. Local survival forfeits everything — the checkpoints lived on
// the dead datacenter's storage. Replicated survival pays the
// replication-lag penalty: the freshest ReplicationLag ticks of
// checkpointed progress had not reached the surviving replicas yet, so the
// task resumes that much further back (floored at zero; nil-safe; disabled
// policies carry no credit).
func (p *CheckpointPolicy) FailoverCredit(banked int64) int64 {
	if !p.Enabled() || p.Survival != SurviveReplicated {
		return 0
	}
	c := banked - p.ReplicationLag
	if c <= 0 {
		return 0
	}
	return c
}

// String renders the policy compactly for reports and errors.
func (p *CheckpointPolicy) String() string {
	if !p.Enabled() {
		return "checkpoint=none"
	}
	if p.Kind == CheckpointOnPreempt {
		return fmt.Sprintf("checkpoint=on-preempt/%s", p.Survival)
	}
	return fmt.Sprintf("checkpoint=every %d (+%d) %s", p.Interval, p.Overhead, p.Survival)
}

// jsonCheckpoint is the wire form of a CheckpointPolicy.
type jsonCheckpoint struct {
	Kind           string `json:"kind"`
	Interval       int64  `json:"interval,omitempty"`
	Overhead       int64  `json:"overhead,omitempty"`
	Survival       string `json:"survival,omitempty"`
	ReplicationLag int64  `json:"replication_lag,omitempty"`
}

// parseCheckpoint decodes the wire form, rejecting unknown kinds and
// survival modes as well as NaN-smuggling (the fields are integers, so the
// JSON layer already rejects non-numeric values).
func parseCheckpoint(jc *jsonCheckpoint) (*CheckpointPolicy, error) {
	if jc == nil {
		return nil, nil
	}
	p := &CheckpointPolicy{Interval: jc.Interval, Overhead: jc.Overhead, ReplicationLag: jc.ReplicationLag}
	switch jc.Kind {
	case "none":
		p.Kind = CheckpointNone
	case "periodic":
		p.Kind = CheckpointPeriodic
	case "on-preempt":
		p.Kind = CheckpointOnPreempt
	default:
		return nil, fmt.Errorf("scenario: checkpoint has unknown kind %q", jc.Kind)
	}
	switch jc.Survival {
	case "", "local":
		p.Survival = SurviveLocal
	case "replicated":
		p.Survival = SurviveReplicated
	default:
		return nil, fmt.Errorf("scenario: checkpoint has unknown survival mode %q", jc.Survival)
	}
	return p, nil
}

// wireCheckpoint encodes the policy back into its wire form (nil for nil).
func wireCheckpoint(p *CheckpointPolicy) *jsonCheckpoint {
	if p == nil {
		return nil
	}
	return &jsonCheckpoint{
		Kind:           p.Kind.String(),
		Interval:       p.Interval,
		Overhead:       p.Overhead,
		Survival:       p.Survival.String(),
		ReplicationLag: p.ReplicationLag,
	}
}
