package scenario

// This file declares the belief policy: what the mapper *knows* about
// execution times, as opposed to what is true. The ground-truth PET matrix
// always drives sampled executions and completion clocks; the belief policy
// selects the View every pruning and mapping decision reads. It is part of
// the scenario wire format so robustness studies can declare the knowledge
// model next to the drift/degrade events that invalidate it — the paper's
// robustness figures assume an oracle scheduler, and this knob measures
// what that assumption is worth.

import "fmt"

// BeliefKind selects the mapper's knowledge model.
type BeliefKind int

const (
	// BeliefOracle schedules on the ground truth itself (belief ≡ truth),
	// byte-identical to the engine without the subsystem.
	BeliefOracle BeliefKind = iota
	// BeliefFrozen pins the belief at the t=0 nominal PET: degrade/drift
	// events move the truth but every decision still reads the original
	// profile — the stale-PET mapper.
	BeliefFrozen
	// BeliefOnline starts from the t=0 profile and re-estimates each
	// (type, machine) distribution from observed completions via a
	// streaming histogram, rebuilding a cell's PMF once MinSamples
	// observations accumulate and every Refresh observations thereafter.
	BeliefOnline
)

// String implements fmt.Stringer.
func (k BeliefKind) String() string {
	switch k {
	case BeliefOracle:
		return "oracle"
	case BeliefFrozen:
		return "frozen"
	case BeliefOnline:
		return "online"
	default:
		return fmt.Sprintf("BeliefKind(%d)", int(k))
	}
}

// Defaults for the online estimator's knobs when left zero.
const (
	// DefaultBeliefRefresh is the observation cadence between rebuilds of
	// an already-learned cell.
	DefaultBeliefRefresh = 25
	// DefaultBeliefMinSamples is the observation floor before a cell's
	// first rebuild replaces the prior.
	DefaultBeliefMinSamples = 10
	// DefaultBeliefBins is the per-cell streaming-histogram resolution,
	// matching pet.DefaultBuildConfig's offline profiling bins.
	DefaultBeliefBins = 32
)

// BeliefPolicy is the full knowledge-model specification. The zero value
// (and nil) is the oracle: scheduling on ground truth, exactly today's
// engine.
type BeliefPolicy struct {
	// Kind selects the knowledge model.
	Kind BeliefKind
	// Refresh is the observation cadence between rebuilds of a learned
	// cell (BeliefOnline only; 0 means DefaultBeliefRefresh).
	Refresh int
	// MinSamples is the per-cell observation floor before the first
	// rebuild (BeliefOnline only; 0 means DefaultBeliefMinSamples).
	MinSamples int
	// Bins is the per-cell streaming-histogram bin count (BeliefOnline
	// only; 0 means DefaultBeliefBins).
	Bins int
}

// Enabled reports whether the policy replaces the oracle view (nil-safe).
func (p *BeliefPolicy) Enabled() bool { return p != nil && p.Kind != BeliefOracle }

// Online reports whether the policy re-estimates from observations
// (nil-safe).
func (p *BeliefPolicy) Online() bool { return p != nil && p.Kind == BeliefOnline }

// EffectiveRefresh resolves the rebuild cadence, applying the default.
func (p *BeliefPolicy) EffectiveRefresh() int {
	if p == nil || p.Refresh == 0 {
		return DefaultBeliefRefresh
	}
	return p.Refresh
}

// EffectiveMinSamples resolves the sample floor, applying the default.
func (p *BeliefPolicy) EffectiveMinSamples() int {
	if p == nil || p.MinSamples == 0 {
		return DefaultBeliefMinSamples
	}
	return p.MinSamples
}

// EffectiveBins resolves the histogram resolution, applying the default.
func (p *BeliefPolicy) EffectiveBins() int {
	if p == nil || p.Bins == 0 {
		return DefaultBeliefBins
	}
	return p.Bins
}

// Validate rejects malformed policies: the estimator knobs must be
// positive when set and are meaningless outside the online kind
// (nil-safe).
func (p *BeliefPolicy) Validate() error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case BeliefOracle, BeliefFrozen, BeliefOnline:
	default:
		return fmt.Errorf("belief: unknown kind %d", int(p.Kind))
	}
	if p.Kind != BeliefOnline && (p.Refresh != 0 || p.MinSamples != 0 || p.Bins != 0) {
		return fmt.Errorf("belief: refresh/min_samples/bins only apply to the online kind (got kind %s, refresh %d, min_samples %d, bins %d)", p.Kind, p.Refresh, p.MinSamples, p.Bins)
	}
	if p.Refresh < 0 {
		return fmt.Errorf("belief: negative refresh %d", p.Refresh)
	}
	if p.MinSamples < 0 {
		return fmt.Errorf("belief: negative min_samples %d", p.MinSamples)
	}
	if p.Bins < 0 {
		return fmt.Errorf("belief: negative bins %d", p.Bins)
	}
	if p.Bins == 1 {
		return fmt.Errorf("belief: online estimator needs at least two bins, got %d", p.Bins)
	}
	return nil
}

// String renders the policy compactly for reports and errors.
func (p *BeliefPolicy) String() string {
	if !p.Enabled() {
		return "belief=oracle"
	}
	if p.Kind == BeliefFrozen {
		return "belief=frozen"
	}
	return fmt.Sprintf("belief=online/refresh %d/floor %d", p.EffectiveRefresh(), p.EffectiveMinSamples())
}

// jsonBelief is the wire form of a BeliefPolicy.
type jsonBelief struct {
	Kind       string `json:"kind"`
	Refresh    int    `json:"refresh,omitempty"`
	MinSamples int    `json:"min_samples,omitempty"`
	Bins       int    `json:"bins,omitempty"`
}

// parseBelief decodes the wire form, rejecting unknown kinds (the knob
// fields are integers, so the JSON layer already rejects non-numeric
// values).
func parseBelief(jb *jsonBelief) (*BeliefPolicy, error) {
	if jb == nil {
		return nil, nil
	}
	p := &BeliefPolicy{Refresh: jb.Refresh, MinSamples: jb.MinSamples, Bins: jb.Bins}
	switch jb.Kind {
	case "oracle":
		p.Kind = BeliefOracle
	case "frozen":
		p.Kind = BeliefFrozen
	case "online":
		p.Kind = BeliefOnline
	default:
		return nil, fmt.Errorf("scenario: belief has unknown kind %q", jb.Kind)
	}
	return p, nil
}

// wireBelief encodes the policy back into its wire form (nil for nil).
func wireBelief(p *BeliefPolicy) *jsonBelief {
	if p == nil {
		return nil
	}
	return &jsonBelief{
		Kind:       p.Kind.String(),
		Refresh:    p.Refresh,
		MinSamples: p.MinSamples,
		Bins:       p.Bins,
	}
}
