package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestBeliefPolicyValidate(t *testing.T) {
	valid := []BeliefPolicy{
		{},
		{Kind: BeliefOracle},
		{Kind: BeliefFrozen},
		{Kind: BeliefOnline},
		{Kind: BeliefOnline, Refresh: 10, MinSamples: 5, Bins: 16},
		{Kind: BeliefOnline, Bins: 2},
	}
	for i, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid policy %d (%s) rejected: %v", i, &p, err)
		}
	}
	var nilPolicy *BeliefPolicy
	if err := nilPolicy.Validate(); err != nil {
		t.Errorf("nil policy rejected: %v", err)
	}
	invalid := []BeliefPolicy{
		{Kind: BeliefKind(99)},
		{Kind: BeliefOnline, Refresh: -1},       // negative cadence
		{Kind: BeliefOnline, MinSamples: -5},    // negative floor
		{Kind: BeliefOnline, Bins: -8},          // negative bins
		{Kind: BeliefOnline, Bins: 1},           // one bin cannot bracket a distribution
		{Kind: BeliefFrozen, Refresh: 10},       // knob without the online kind
		{Kind: BeliefOracle, MinSamples: 5},     // knob without the online kind
		{Kind: BeliefFrozen, Bins: 16},          // knob without the online kind
		{Kind: BeliefOracle, Refresh: -1},       // inapplicable and negative
	}
	for i, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid policy %d (%+v) accepted", i, p)
		}
	}
}

func TestBeliefEffectiveKnobs(t *testing.T) {
	var nilPolicy *BeliefPolicy
	if nilPolicy.EffectiveRefresh() != DefaultBeliefRefresh ||
		nilPolicy.EffectiveMinSamples() != DefaultBeliefMinSamples ||
		nilPolicy.EffectiveBins() != DefaultBeliefBins {
		t.Error("nil policy must resolve to the defaults")
	}
	p := &BeliefPolicy{Kind: BeliefOnline}
	if p.EffectiveRefresh() != DefaultBeliefRefresh || p.EffectiveMinSamples() != DefaultBeliefMinSamples || p.EffectiveBins() != DefaultBeliefBins {
		t.Error("zero knobs must resolve to the defaults")
	}
	q := &BeliefPolicy{Kind: BeliefOnline, Refresh: 7, MinSamples: 3, Bins: 8}
	if q.EffectiveRefresh() != 7 || q.EffectiveMinSamples() != 3 || q.EffectiveBins() != 8 {
		t.Error("set knobs must win over the defaults")
	}
	if (&BeliefPolicy{Kind: BeliefFrozen}).Online() || !(&BeliefPolicy{Kind: BeliefOnline}).Online() {
		t.Error("Online() misclassifies")
	}
	if nilPolicy.Enabled() || (&BeliefPolicy{}).Enabled() || !(&BeliefPolicy{Kind: BeliefFrozen}).Enabled() {
		t.Error("Enabled() misclassifies")
	}
}

func TestBeliefJSONRoundTrip(t *testing.T) {
	src := `{"name":"b","events":[{"tick":100,"kind":"drift","machine":1,"until":500,"from":1,"to":3,"steps":4}],
		"belief":{"kind":"online","refresh":10,"min_samples":5,"bins":16}}`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p := s.Belief
	if p == nil || p.Kind != BeliefOnline || p.Refresh != 10 || p.MinSamples != 5 || p.Bins != 16 {
		t.Fatalf("parsed policy %+v, want online/10/5/16", p)
	}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	blob, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, blob)
	}
	if *again.Belief != *p {
		t.Fatalf("round trip changed the policy: %+v vs %+v", again.Belief, p)
	}
	// The frozen and oracle kinds round-trip without knobs.
	for _, kind := range []string{"oracle", "frozen"} {
		s, err := Parse(strings.NewReader(`{"belief":{"kind":"` + kind + `"}}`))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		blob, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		again, err := Parse(bytes.NewReader(blob))
		if err != nil || *again.Belief != *s.Belief {
			t.Fatalf("%s did not round-trip: %v (%+v vs %+v)", kind, err, s.Belief, again.Belief)
		}
	}
}

func TestBeliefJSONRejections(t *testing.T) {
	parseFail := []string{
		`{"belief":{"kind":"psychic"}}`,                   // unknown kind
		`{"belief":{"kind":"online","cadence":5}}`,        // unknown field
		`{"belief":{"kind":"online","refresh":"often"}}`,  // non-numeric cadence
		`{"belief":{"kind":"online","min_samples":2.5}}`,  // fractional floor
		`{"belief":{}}`,                                   // missing kind
	}
	for _, src := range parseFail {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("parser accepted %s", src)
		}
	}
	// Structurally fine JSON whose policy fails fleet-independent validation.
	validateFail := []string{
		`{"belief":{"kind":"online","refresh":-1}}`,     // negative cadence
		`{"belief":{"kind":"online","min_samples":-5}}`, // negative floor
		`{"belief":{"kind":"online","bins":1}}`,         // one bin
		`{"belief":{"kind":"frozen","min_samples":5}}`,  // knob without online
		`{"belief":{"kind":"oracle","refresh":3}}`,      // knob without online
	}
	for _, src := range validateFail {
		s, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Errorf("parser rejected structurally valid %s: %v", src, err)
			continue
		}
		if err := s.Validate(4); err == nil {
			t.Errorf("validation accepted %s", src)
		}
		if err := s.ValidateCluster(4, 2); err == nil {
			t.Errorf("cluster validation accepted %s", src)
		}
	}
}
