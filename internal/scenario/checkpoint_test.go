package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCheckpointPolicyValidate(t *testing.T) {
	valid := []CheckpointPolicy{
		{},
		{Kind: CheckpointNone},
		{Kind: CheckpointPeriodic, Interval: 10},
		{Kind: CheckpointPeriodic, Interval: 10, Overhead: 3},
		{Kind: CheckpointPeriodic, Interval: 1, Survival: SurviveReplicated, ReplicationLag: 5},
		{Kind: CheckpointOnPreempt},
		{Kind: CheckpointOnPreempt, Survival: SurviveReplicated, ReplicationLag: 2},
	}
	for i, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid policy %d (%s) rejected: %v", i, &p, err)
		}
	}
	var nilPolicy *CheckpointPolicy
	if err := nilPolicy.Validate(); err != nil {
		t.Errorf("nil policy rejected: %v", err)
	}
	invalid := []CheckpointPolicy{
		{Kind: CheckpointKind(99)},
		{Kind: CheckpointPeriodic},                             // missing interval
		{Kind: CheckpointPeriodic, Interval: -5},               // negative interval
		{Kind: CheckpointPeriodic, Interval: 10, Overhead: -1}, // negative overhead
		{Kind: CheckpointPeriodic, Interval: 10, Survival: SurvivalMode(7)},
		{Kind: CheckpointOnPreempt, Interval: 10},                   // interval without periodic
		{Kind: CheckpointNone, Overhead: 3},                         // overhead without periodic
		{Kind: CheckpointPeriodic, Interval: 10, ReplicationLag: 5}, // lag without replication
		{Kind: CheckpointPeriodic, Interval: 10, Survival: SurviveReplicated, ReplicationLag: -1},
	}
	for i, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid policy %d (%+v) accepted", i, p)
		}
	}
}

func TestCheckpointPointsWithin(t *testing.T) {
	p := &CheckpointPolicy{Kind: CheckpointPeriodic, Interval: 10}
	cases := []struct {
		from, total, want int64
	}{
		{0, 30, 2}, // checkpoints at 10, 20; 30 is completion
		{0, 31, 3}, // 10, 20, 30
		{0, 10, 0}, // a checkpoint at completion is never written
		{0, 1, 0},
		{10, 30, 1}, // resumed at 10: only 20 remains
		{15, 30, 1}, // resumed mid-interval: 20
		{30, 30, 0},
		{40, 30, 0}, // overshot credit (clamped remaining): nothing
	}
	for _, c := range cases {
		if got := p.PointsWithin(c.from, c.total); got != c.want {
			t.Errorf("PointsWithin(%d, %d) = %d, want %d", c.from, c.total, got, c.want)
		}
	}
	none := &CheckpointPolicy{Kind: CheckpointOnPreempt}
	if got := none.PointsWithin(0, 100); got != 0 {
		t.Errorf("non-periodic PointsWithin = %d, want 0", got)
	}
	var nilPolicy *CheckpointPolicy
	if got := nilPolicy.PointsWithin(0, 100); got != 0 {
		t.Errorf("nil PointsWithin = %d, want 0", got)
	}
}

func TestCheckpointFailoverCredit(t *testing.T) {
	local := &CheckpointPolicy{Kind: CheckpointPeriodic, Interval: 10}
	if got := local.FailoverCredit(40); got != 0 {
		t.Errorf("local survival credit = %d, want 0 (checkpoints die with the DC)", got)
	}
	repl := &CheckpointPolicy{Kind: CheckpointPeriodic, Interval: 10, Survival: SurviveReplicated, ReplicationLag: 5}
	cases := []struct{ banked, want int64 }{
		{40, 35}, // the freshest 5 ticks had not replicated yet
		{30, 25},
		{10, 5},
		{5, 0}, // the whole banked window was still in flight
		{0, 0},
	}
	for _, c := range cases {
		if got := repl.FailoverCredit(c.banked); got != c.want {
			t.Errorf("replicated FailoverCredit(%d) = %d, want %d", c.banked, got, c.want)
		}
	}
	preempt := &CheckpointPolicy{Kind: CheckpointOnPreempt, Survival: SurviveReplicated, ReplicationLag: 3}
	if got := preempt.FailoverCredit(10); got != 7 {
		t.Errorf("on-preempt replicated credit = %d, want 7 (no interval to floor to)", got)
	}
	var nilPolicy *CheckpointPolicy
	if got := nilPolicy.FailoverCredit(50); got != 0 {
		t.Errorf("nil policy credit = %d, want 0", got)
	}
}

func TestCheckpointJSONRoundTrip(t *testing.T) {
	src := `{"name":"ck","events":[{"tick":100,"kind":"fail","machine":1,"policy":"requeue"}],
		"checkpoint":{"kind":"periodic","interval":50,"overhead":2,"survival":"replicated","replication_lag":10}}`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p := s.Checkpoint
	if p == nil || p.Kind != CheckpointPeriodic || p.Interval != 50 || p.Overhead != 2 ||
		p.Survival != SurviveReplicated || p.ReplicationLag != 10 {
		t.Fatalf("parsed policy %+v, want periodic/50/2/replicated/10", p)
	}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	blob, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, blob)
	}
	if *again.Checkpoint != *p {
		t.Fatalf("round trip changed the policy: %+v vs %+v", again.Checkpoint, p)
	}
}

func TestCheckpointJSONRejections(t *testing.T) {
	parseFail := []string{
		`{"checkpoint":{"kind":"hourly"}}`,                        // unknown kind
		`{"checkpoint":{"kind":"periodic","survival":"quantum"}}`, // unknown survival
		`{"checkpoint":{"kind":"periodic","cadence":5}}`,          // unknown field
		`{"checkpoint":{"kind":"periodic","interval":"often"}}`,   // non-numeric interval
		`{"checkpoint":{"kind":"periodic","interval":1.5}}`,       // fractional ticks
		`{"checkpoint":{}}`, // missing kind
	}
	for _, src := range parseFail {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("parser accepted %s", src)
		}
	}
	// Structurally fine JSON whose policy fails fleet-independent validation.
	validateFail := []string{
		`{"checkpoint":{"kind":"periodic"}}`,                                   // no interval
		`{"checkpoint":{"kind":"periodic","interval":-3}}`,                     // negative interval
		`{"checkpoint":{"kind":"periodic","interval":10,"overhead":-1}}`,       // negative overhead
		`{"checkpoint":{"kind":"on-preempt","interval":10}}`,                   // interval without periodic
		`{"checkpoint":{"kind":"periodic","interval":10,"replication_lag":4}}`, // lag without replication
	}
	for _, src := range validateFail {
		s, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Errorf("parser rejected structurally valid %s: %v", src, err)
			continue
		}
		if err := s.Validate(4); err == nil {
			t.Errorf("validation accepted %s", src)
		}
		if err := s.ValidateCluster(4, 2); err == nil {
			t.Errorf("cluster validation accepted %s", src)
		}
	}
}

// TestParseUnknownFieldsPerKind: DisallowUnknownFields must reject a stray
// field on every event kind's wire form — and the known-good spelling of
// each kind must both parse and survive a marshal→parse round trip.
func TestParseUnknownFieldsPerKind(t *testing.T) {
	events := map[string]string{
		"fail":       `{"tick":10,"kind":"fail","machine":0,"policy":"drop"}`,
		"remove":     `{"tick":10,"kind":"remove","machine":0}`,
		"leave":      `{"tick":10,"kind":"leave","machine":0}`,
		"recover":    `{"tick":10,"kind":"recover","machine":0}`,
		"add":        `{"tick":10,"kind":"add","machine":0}`,
		"join":       `{"tick":10,"kind":"join","machine":0}`,
		"degrade":    `{"tick":10,"kind":"degrade","machine":0,"factor":2}`,
		"restore":    `{"tick":10,"kind":"restore","machine":0}`,
		"drift":      `{"tick":10,"kind":"drift","machine":0,"until":50,"from":1,"to":3,"steps":4}`,
		"dc-fail":    `{"tick":10,"kind":"dc-fail","dc":1,"policy":"requeue"}`,
		"dc-recover": `{"tick":10,"kind":"dc-recover","dc":1}`,
	}
	for kind, ev := range events {
		good := `{"name":"k","events":[` + ev + `]}`
		s, err := Parse(strings.NewReader(good))
		if err != nil {
			t.Errorf("%s: known-good event rejected: %v", kind, err)
			continue
		}
		blob, err := json.Marshal(s)
		if err != nil {
			t.Errorf("%s: marshal failed: %v", kind, err)
			continue
		}
		if _, err := Parse(bytes.NewReader(blob)); err != nil {
			t.Errorf("%s: wire form did not round-trip: %v\n%s", kind, err, blob)
		}
		bad := `{"name":"k","events":[` + strings.TrimSuffix(ev, "}") + `,"surprise":1}]}`
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: unknown event field accepted", kind)
		}
	}
	if _, err := Parse(strings.NewReader(`{"name":"k","astonish":true}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := Parse(strings.NewReader(`{"bursts":[{"start":1,"end":2,"factor":2,"shape":"saw"}]}`)); err == nil {
		t.Error("unknown burst field accepted")
	}
}
