// Package telemetry is the observability layer for the simulator and the
// cluster engine: a registry of counters, gauges, and fixed-bucket
// histograms, a tick-driven sampler that turns the registry into bounded
// time-series rows, span-style phase timers, and Prometheus/JSON/CSV
// export surfaces.
//
// The contract that makes probes safe to leave in hot paths is
// zero-cost-when-disabled: every handle method is a nil-receiver no-op, so
// a nil *Registry hands out nil handles and the instrumented code runs the
// exact same instructions (an inlined nil check) with zero allocations and
// zero behavior change. Goldens and allocation baselines recorded with
// telemetry off therefore stay byte-identical.
//
// The contract that keeps parallel drivers deterministic is sharding:
// handles are NOT synchronized. Each goroutine owns its own Registry (the
// engine shard, one shard per DC simulator) and ticks its own sampler from
// its own event sequence; shards are only read or merged at barriers, when
// the owning goroutine is quiescent. No hot-path atomics, nothing for the
// race detector to find.
package telemetry

import "sort"

// Kind distinguishes scalar metric flavors in snapshots and export.
type Kind int

const (
	// KindCounter is a monotonically increasing event count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level that can move both ways.
	KindGauge
)

func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Counter counts events. The zero of a registered counter is 0; a nil
// counter (from a nil registry) ignores every call.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Sync overwrites the counter with an externally maintained cumulative
// value. It exists for mirroring counters that predate the registry
// (eval-cache hits, GateStats fields) at sample boundaries instead of
// double-instrumenting their hot paths.
func (c *Counter) Sync(v int64) {
	if c == nil {
		return
	}
	c.v = v
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge holds an instantaneous level. A nil gauge ignores every call.
type Gauge struct{ v float64 }

// Set overwrites the gauge (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add moves the gauge by d (no-op on a nil receiver).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: counts[i] tallies observations
// v <= bounds[i], and the final bucket is the implicit +Inf overflow.
// Buckets are fixed at registration; Observe is a linear scan over a
// handful of bounds — no allocation, no atomics, nil-safe.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// Observe records one value (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

type scalar struct {
	name    string
	help    string
	kind    Kind
	counter *Counter
	gauge   *Gauge
}

func (s *scalar) value() float64 {
	if s.kind == KindCounter {
		return float64(s.counter.Value())
	}
	return s.gauge.Value()
}

// Registry owns one shard's metrics. It is not synchronized: exactly one
// goroutine registers, updates, and snapshots it, and other goroutines may
// only look via Snapshot results taken at barriers. A nil *Registry is the
// disabled state — every method returns nil handles or zero snapshots.
type Registry struct {
	scalars []*scalar
	hists   []*Histogram
	names   map[string]bool
}

// NewRegistry builds an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) claim(name string) {
	if name == "" || r.names[name] {
		panic("telemetry: duplicate or empty metric name " + name)
	}
	r.names[name] = true
}

// Counter registers a counter. Returns nil (a no-op handle) on a nil
// registry; panics on a duplicate name, which is a programming error.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.claim(name)
	c := &Counter{}
	r.scalars = append(r.scalars, &scalar{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.claim(name)
	g := &Gauge{}
	r.scalars = append(r.scalars, &scalar{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers a fixed-bucket histogram with the given ascending
// upper bounds (the +Inf overflow bucket is implicit). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.claim(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending: " + name)
		}
	}
	h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
	r.hists = append(r.hists, h)
	return h
}

// ScalarNames returns the registered scalar names in registration order —
// the sampler's column schema. Nil-safe.
func (r *Registry) ScalarNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.scalars))
	for i, s := range r.scalars {
		names[i] = s.name
	}
	return names
}

// scalarValues appends the current scalar values in registration order.
func (r *Registry) scalarValues(into []float64) []float64 {
	for _, s := range r.scalars {
		into = append(into, s.value())
	}
	return into
}

// ScalarValue is one scalar's state inside a Snapshot.
type ScalarValue struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64
}

// HistValue is one histogram's state inside a Snapshot.
type HistValue struct {
	Name   string
	Help   string
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot is a self-contained copy of a registry's state, safe to hand
// across goroutines once taken. Take it only while the owning goroutine is
// quiescent (at a barrier, or from the owner itself).
type Snapshot struct {
	Scalars []ScalarValue
	Hists   []HistValue
}

// Snapshot copies the registry state. Nil-safe: a nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Scalars: make([]ScalarValue, len(r.scalars)),
		Hists:   make([]HistValue, len(r.hists)),
	}
	for i, s := range r.scalars {
		snap.Scalars[i] = ScalarValue{Name: s.name, Help: s.help, Kind: s.kind, Value: s.value()}
	}
	for i, h := range r.hists {
		snap.Hists[i] = HistValue{
			Name:   h.name,
			Help:   h.help,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
	}
	return snap
}

// Merge folds other's metrics into a copy of snap, summing counters and
// histograms that share a name and keeping the receiver's gauges (gauges
// are levels, not totals; the caller's shard wins). Metrics only present
// in other are appended. Used when collapsing per-DC shards into one view.
func Merge(snap, other Snapshot) Snapshot {
	out := Snapshot{
		Scalars: append([]ScalarValue(nil), snap.Scalars...),
		Hists:   append([]HistValue(nil), snap.Hists...),
	}
	sIdx := make(map[string]int, len(out.Scalars))
	for i, s := range out.Scalars {
		sIdx[s.Name] = i
	}
	for _, s := range other.Scalars {
		if i, ok := sIdx[s.Name]; ok {
			if out.Scalars[i].Kind == KindCounter && s.Kind == KindCounter {
				out.Scalars[i].Value += s.Value
			}
			continue
		}
		sIdx[s.Name] = len(out.Scalars)
		out.Scalars = append(out.Scalars, s)
	}
	hIdx := make(map[string]int, len(out.Hists))
	for i, h := range out.Hists {
		hIdx[h.Name] = i
	}
	for _, h := range other.Hists {
		if i, ok := hIdx[h.Name]; ok && len(out.Hists[i].Counts) == len(h.Counts) {
			dst := &out.Hists[i]
			dst.Counts = append([]int64(nil), dst.Counts...)
			for j, c := range h.Counts {
				dst.Counts[j] += c
			}
			dst.Sum += h.Sum
			dst.Count += h.Count
			continue
		}
		hIdx[h.Name] = len(out.Hists)
		out.Hists = append(out.Hists, h)
	}
	return out
}

// Sorted returns a copy of snap with scalars and histograms in name order,
// for deterministic rendering of merged snapshots.
func Sorted(snap Snapshot) Snapshot {
	out := Snapshot{
		Scalars: append([]ScalarValue(nil), snap.Scalars...),
		Hists:   append([]HistValue(nil), snap.Hists...),
	}
	sort.Slice(out.Scalars, func(i, j int) bool { return out.Scalars[i].Name < out.Scalars[j].Name })
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	return out
}

// Options configures telemetry for a simulator or cluster engine. A nil
// *Options disables telemetry entirely (nil registries everywhere).
type Options struct {
	// SampleEvery is the simulated-tick interval between sampler rows;
	// 0 means DefaultSampleEvery.
	SampleEvery int64
	// RingCap bounds the retained rows per sampler; 0 means
	// DefaultRingCap. The ring keeps the most recent rows.
	RingCap int
}

// Defaults for Options zero fields.
const (
	DefaultSampleEvery = 100
	DefaultRingCap     = 4096
)

// Every resolves the sampling interval, nil-safe.
func (o *Options) Every() int64 {
	if o == nil || o.SampleEvery <= 0 {
		return DefaultSampleEvery
	}
	return o.SampleEvery
}

// Ring resolves the ring capacity, nil-safe.
func (o *Options) Ring() int {
	if o == nil || o.RingCap <= 0 {
		return DefaultRingCap
	}
	return o.RingCap
}
