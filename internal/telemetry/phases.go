package telemetry

import (
	"fmt"
	"io"
	"time"
)

// Phase labels the disjoint spans of wall time a trial is attributed to.
// Dispatch is cluster routing (policy pick + gate logic), Admit is task
// admission into a fleet, Step is event handling proper (completions and
// fleet events), Eval is heuristic mapping (Map plus applying its result),
// Convolve is queue pruning (the PMF convolution pass), and Other is the
// remaining per-event bookkeeping (deadline drops, machine starts).
type Phase int

// The phases, in display order.
const (
	PhaseDispatch Phase = iota
	PhaseAdmit
	PhaseStep
	PhaseEval
	PhaseConvolve
	PhaseOther
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseDispatch:
		return "dispatch"
	case PhaseAdmit:
		return "admit"
	case PhaseStep:
		return "step"
	case PhaseEval:
		return "eval"
	case PhaseConvolve:
		return "convolve"
	case PhaseOther:
		return "other"
	}
	return "unknown"
}

// PhaseTimer accumulates wall time per phase. Like every other telemetry
// handle it is shard-owned and nil-safe: a nil timer makes Start/Observe
// free no-ops, and one timer belongs to one goroutine until merged at a
// barrier. Spans are disjoint by construction (callers time one phase at
// a time), so phase totals are attributable slices of the trial's wall
// time rather than overlapping measures.
type PhaseTimer struct {
	dur [numPhases]int64 // nanoseconds
	n   [numPhases]int64
}

// NewPhaseTimer builds an enabled timer.
func NewPhaseTimer() *PhaseTimer { return &PhaseTimer{} }

// Start returns the span's start time, or the zero time on a nil receiver.
func (t *PhaseTimer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Observe closes a span opened by Start and attributes it to p. No-op on
// a nil receiver.
func (t *PhaseTimer) Observe(p Phase, t0 time.Time) {
	if t == nil {
		return
	}
	t.dur[p] += int64(time.Since(t0))
	t.n[p]++
}

// Merge folds o into t (barrier-time shard aggregation). Nil-safe on both
// sides.
func (t *PhaseTimer) Merge(o *PhaseTimer) {
	if t == nil || o == nil {
		return
	}
	for i := range t.dur {
		t.dur[i] += o.dur[i]
		t.n[i] += o.n[i]
	}
}

// PhaseStat is one phase's aggregate.
type PhaseStat struct {
	Phase Phase
	Total time.Duration
	Count int64
}

// Breakdown returns the per-phase aggregates in display order. Nil-safe.
func (t *PhaseTimer) Breakdown() []PhaseStat {
	if t == nil {
		return nil
	}
	out := make([]PhaseStat, numPhases)
	for i := range out {
		out[i] = PhaseStat{Phase: Phase(i), Total: time.Duration(t.dur[i]), Count: t.n[i]}
	}
	return out
}

// WriteText prints the phase breakdown as an aligned table with each
// phase's share of the instrumented total. Nil-safe (prints nothing).
func (t *PhaseTimer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	var total time.Duration
	for _, st := range t.Breakdown() {
		total += st.Total
	}
	if _, err := fmt.Fprintf(w, "phase timings (instrumented total %v):\n", total.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, st := range t.Breakdown() {
		if st.Count == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Total) / float64(total)
		}
		mean := time.Duration(0)
		if st.Count > 0 {
			mean = st.Total / time.Duration(st.Count)
		}
		if _, err := fmt.Fprintf(w, "  %-9s %10v  %5.1f%%  n=%-8d mean=%v\n",
			st.Phase, st.Total.Round(time.Microsecond), pct, st.Count, mean.Round(time.Nanosecond)); err != nil {
			return err
		}
	}
	return nil
}
