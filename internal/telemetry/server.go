package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is the HTTP export surface. The hot path never shares state with
// HTTP handlers: shard owners Publish self-contained snapshots at sample
// boundaries (or barriers), and handlers render the last published copy
// under a mutex. /metrics serves Prometheus text format, /metrics.json the
// JSON snapshot, and net/http/pprof is mounted under /debug/pprof/.
type Server struct {
	mu     sync.Mutex
	shards map[string]Snapshot
	order  []string
}

// NewServer builds an empty server.
func NewServer() *Server {
	return &Server{shards: make(map[string]Snapshot)}
}

// Publish replaces scope's snapshot. Safe to call concurrently with
// handlers and other publishers; first-publish order fixes export order.
// No-op on a nil server, so callers can publish unconditionally.
func (s *Server) Publish(scope string, snap Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.shards[scope]; !ok {
		s.order = append(s.order, scope)
	}
	s.shards[scope] = snap
}

func (s *Server) shardList() []Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Shard, 0, len(s.order))
	for _, scope := range s.order {
		out = append(out, Shard{Scope: scope, Snap: s.shards[scope]})
	}
	return out
}

// Handler returns the export mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, s.shardList()...)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, s.shardList()...)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the export server on addr in a background goroutine and
// returns the bound address (useful with ":0"). The listener stays up for
// the life of the process — hcsim runs exit when the run does, and tests
// close over the returned address.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
