package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func sampleShard() Shard {
	r := NewRegistry()
	r.Counter("done_total", "finished tasks").Add(12)
	r.Gauge("depth", "queue depth").Set(3.5)
	h := r.Histogram("lag", "detection lag", []float64{10, 50})
	h.Observe(5)
	h.Observe(60)
	return Shard{Scope: "sim", Snap: r.Snapshot()}
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, sampleShard()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP hcsim_done_total finished tasks",
		"# TYPE hcsim_done_total counter",
		`hcsim_done_total{scope="sim"} 12`,
		"# TYPE hcsim_depth gauge",
		`hcsim_depth{scope="sim"} 3.5`,
		"# TYPE hcsim_lag histogram",
		`hcsim_lag_bucket{scope="sim",le="10"} 1`,
		`hcsim_lag_bucket{scope="sim",le="50"} 1`,
		`hcsim_lag_bucket{scope="sim",le="+Inf"} 2`,
		`hcsim_lag_sum{scope="sim"} 65`,
		`hcsim_lag_count{scope="sim"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, sampleShard()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got map[string]struct {
		Counters   map[string]float64 `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Counts []int64 `json:"counts"`
			Count  int64   `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	sim := got["sim"]
	if sim.Counters["done_total"] != 12 || sim.Gauges["depth"] != 3.5 || sim.Histograms["lag"].Count != 2 {
		t.Fatalf("JSON content wrong: %+v", sim)
	}
}

func TestWriteText(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, sampleShard()); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "sim:") || !strings.Contains(out, "done_total") || !strings.Contains(out, "12") {
		t.Fatalf("text output:\n%s", out)
	}
	if !strings.Contains(out, "3.5") {
		t.Fatalf("gauge missing from text output:\n%s", out)
	}
}

func TestWriteSamplersCSV(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("done_total", "")
	s := NewSampler(r, &Options{SampleEvery: 100, RingCap: 8})
	c.Add(2)
	s.Tick(100)
	c.Add(3)
	s.Tick(200)
	var sb strings.Builder
	if err := WriteSamplersCSV(&sb, []ScopedSampler{{Scope: "dc0", S: s}, {Scope: "empty", S: nil}}); err != nil {
		t.Fatalf("WriteSamplersCSV: %v", err)
	}
	want := "# telemetry scope=dc0 every=100 evicted=0\ntick,done_total\n100,2\n200,5\n"
	if sb.String() != want {
		t.Fatalf("CSV mismatch:\ngot:\n%swant:\n%s", sb.String(), want)
	}
}

func TestWriteSamplersJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("done_total", "")
	s := NewSampler(r, &Options{SampleEvery: 100, RingCap: 8})
	c.Add(2)
	s.Tick(100)
	var sb strings.Builder
	if err := WriteSamplersJSON(&sb, []ScopedSampler{{Scope: "dc0", S: s}}); err != nil {
		t.Fatalf("WriteSamplersJSON: %v", err)
	}
	var got map[string]struct {
		Every   int64       `json:"every"`
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	d := got["dc0"]
	if d.Every != 100 || len(d.Rows) != 1 || d.Rows[0][0] != 100 || d.Rows[0][1] != 2 {
		t.Fatalf("series JSON = %+v", d)
	}
}

func TestServerServesPrometheusAndJSON(t *testing.T) {
	srv := NewServer()
	srv.Publish("sim", sampleShard().Snap)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, `hcsim_done_total{scope="sim"} 12`) {
		t.Fatalf("/metrics:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"done_total": 12`) {
		t.Fatalf("/metrics.json:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatalf("pprof not mounted")
	}
}

// TestServerConcurrentPublish hammers Publish from several goroutines while
// readers render snapshots — the shared surface between shard owners
// publishing at barriers and the HTTP handlers. Run under -race by `make
// race-telemetry`.
func TestServerConcurrentPublish(t *testing.T) {
	srv := NewServer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRegistry()
			c := r.Counter("n_total", "")
			scope := []string{"sim", "cluster", "dc0", "dc1"}[w]
			for i := 0; i < 200; i++ {
				c.Inc()
				srv.Publish(scope, r.Snapshot())
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var sb strings.Builder
				_ = WritePrometheus(&sb, srv.shardList()...)
			}
		}()
	}
	wg.Wait()
	var sb strings.Builder
	if err := WritePrometheus(&sb, srv.shardList()...); err != nil {
		t.Fatalf("final render: %v", err)
	}
	if !strings.Contains(sb.String(), "hcsim_n_total") {
		t.Fatalf("published metrics missing:\n%s", sb.String())
	}
}
