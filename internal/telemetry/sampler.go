package telemetry

// Sampler turns a registry into time-series rows on the simulated clock.
// The owner calls Tick(now) after processing each event; whenever the
// clock crosses a multiple of the sampling interval the sampler calls the
// Prepare hook (so lazily maintained gauges can be refreshed) and records
// one row of every scalar's value, stamped with the boundary tick — not
// the event tick — so rows are a function of simulated time alone. That
// makes sampler output exactly as deterministic as the event sequence
// driving it: the parallel cluster drivers replay identical per-shard
// event sequences, so their rows are byte-identical to sequential ones.
//
// Rows live in a bounded ring that keeps the most recent RingCap rows and
// counts what it evicted; row storage is reused after the ring wraps, so
// steady-state sampling allocates nothing.
type Sampler struct {
	reg   *Registry
	every int64
	next  int64

	// Prepare, when set, runs just before each row is recorded; owners
	// use it to refresh gauges that are too hot to maintain per event
	// (queue depths, cache hit mirrors, arrival rates).
	Prepare func()
	// OnSample, when set, runs after each row is recorded with the
	// boundary tick — the publish hook for live export.
	OnSample func(tick int64)

	rows    [][]float64 // ring storage: row = [tick, scalars...]
	cap     int
	head    int // index of oldest row
	n       int // live rows
	evicted int64
	last    int64 // tick of the most recent row (-1: none yet)
}

// NewSampler builds a sampler over reg. Nil-safe: a nil registry yields a
// nil sampler, whose methods are all no-ops.
func NewSampler(reg *Registry, opts *Options) *Sampler {
	if reg == nil {
		return nil
	}
	every := opts.Every()
	return &Sampler{reg: reg, every: every, next: every, cap: opts.Ring(), last: -1}
}

// Every returns the sampling interval (0 on a nil receiver).
func (s *Sampler) Every() int64 {
	if s == nil {
		return 0
	}
	return s.every
}

// Tick advances the sampler to the simulated time now, recording one row
// per crossed boundary. No-op on a nil receiver.
func (s *Sampler) Tick(now int64) {
	if s == nil {
		return
	}
	for s.next <= now {
		if s.Prepare != nil {
			s.Prepare()
		}
		s.record(s.next)
		if s.OnSample != nil {
			s.OnSample(s.next)
		}
		s.next += s.every
	}
}

// Flush records one final row at now unless a row for now already exists —
// the end-of-run snapshot that captures totals even when the run ends
// between boundaries. Idempotent; no-op on a nil receiver.
func (s *Sampler) Flush(now int64) {
	if s == nil {
		return
	}
	s.Tick(now)
	if s.last == now {
		return // a row for this tick already exists
	}
	if s.Prepare != nil {
		s.Prepare()
	}
	s.record(now)
	if s.OnSample != nil {
		s.OnSample(now)
	}
	s.next = (now/s.every + 1) * s.every
}

func (s *Sampler) record(tick int64) {
	var slot int
	if s.n < s.cap {
		// Still growing: head is 0 until the first eviction, so the
		// next free slot is simply index n. Allocate the row at its
		// final width up front — one allocation per row instead of a
		// cascade of append growths.
		s.rows = append(s.rows, make([]float64, 0, 1+len(s.reg.names)))
		slot = s.n
		s.n++
	} else {
		// Full: reuse the oldest row's storage and advance the ring.
		slot = s.head
		s.head = (s.head + 1) % s.cap
		s.evicted++
	}
	row := append(s.rows[slot][:0], float64(tick))
	s.rows[slot] = s.reg.scalarValues(row)
	s.last = tick
}

// Len returns the number of retained rows.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Evicted returns how many rows the bounded ring dropped (oldest-first).
func (s *Sampler) Evicted() int64 {
	if s == nil {
		return 0
	}
	return s.evicted
}

// Columns returns the row schema: "tick" followed by the registry's scalar
// names. Nil-safe.
func (s *Sampler) Columns() []string {
	if s == nil {
		return nil
	}
	return append([]string{"tick"}, s.reg.ScalarNames()...)
}

// Row returns retained row i (0 = oldest) without copying; the slice is
// owned by the ring and valid until the next Tick.
func (s *Sampler) Row(i int) []float64 {
	return s.rows[(s.head+i)%s.cap]
}
