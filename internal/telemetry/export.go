package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Shard pairs a snapshot with the scope label it is exported under
// ("sim" for a single fleet, "cluster" for the engine, "dc0".."dcN" for
// per-DC simulator shards).
type Shard struct {
	Scope string
	Snap  Snapshot
}

// promFloat renders a float the way Prometheus text format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the shards in Prometheus text exposition format.
// Metric names are prefixed "hcsim_" and shards are distinguished by a
// scope label, so the same probe catalog exported from many shards stays
// one metric family per name.
func WritePrometheus(w io.Writer, shards ...Shard) error {
	seen := map[string]bool{}
	header := func(name, help, typ string) error {
		if seen[name] {
			return nil
		}
		seen[name] = true
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		return err
	}
	for _, sh := range shards {
		for _, s := range sh.Snap.Scalars {
			name := "hcsim_" + s.Name
			if err := header(name, s.Help, s.Kind.String()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s{scope=%q} %s\n", name, sh.Scope, promFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	for _, sh := range shards {
		for _, h := range sh.Snap.Hists {
			name := "hcsim_" + h.Name
			if err := header(name, h.Help, "histogram"); err != nil {
				return err
			}
			cum := int64(0)
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = promFloat(h.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{scope=%q,le=%q} %d\n", name, sh.Scope, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{scope=%q} %s\n%s_count{scope=%q} %d\n",
				name, sh.Scope, promFloat(h.Sum), name, sh.Scope, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

type jsonHist struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

type jsonScope struct {
	Counters   map[string]float64  `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]jsonHist `json:"histograms"`
}

// WriteJSON renders the shards as one JSON object keyed by scope; map keys
// are emitted sorted by encoding/json, so the output is deterministic.
func WriteJSON(w io.Writer, shards ...Shard) error {
	out := make(map[string]jsonScope, len(shards))
	for _, sh := range shards {
		sc := jsonScope{
			Counters:   map[string]float64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]jsonHist{},
		}
		for _, s := range sh.Snap.Scalars {
			if s.Kind == KindCounter {
				sc.Counters[s.Name] = s.Value
			} else {
				sc.Gauges[s.Name] = s.Value
			}
		}
		for _, h := range sh.Snap.Hists {
			sc.Histograms[h.Name] = jsonHist{Bounds: h.Bounds, Counts: h.Counts, Sum: h.Sum, Count: h.Count}
		}
		out[sh.Scope] = sc
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders the shards as a plain indented listing (scalar name
// and value per line) for human-readable run summaries.
func WriteText(w io.Writer, shards ...Shard) error {
	for _, sh := range shards {
		if _, err := fmt.Fprintf(w, "%s:\n", sh.Scope); err != nil {
			return err
		}
		for _, s := range sh.Snap.Scalars {
			if _, err := fmt.Fprintf(w, "  %-28s %s\n", s.Name, trimFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// trimFloat renders integral values without a decimal point.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// ScopedSampler pairs a sampler with its export scope for time-series
// rendering.
type ScopedSampler struct {
	Scope string
	S     *Sampler
}

// WriteSamplersCSV renders each sampler's retained rows as one CSV block:
// a "# telemetry scope=<scope> every=<N>" comment line, a header row, and
// one row per sample. Nil or empty samplers are skipped. Values render
// integers without a decimal point, so counters stay readable.
func WriteSamplersCSV(w io.Writer, samplers []ScopedSampler) error {
	for _, sc := range samplers {
		if sc.S.Len() == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# telemetry scope=%s every=%d evicted=%d\n", sc.Scope, sc.S.Every(), sc.S.Evicted()); err != nil {
			return err
		}
		cols := sc.S.Columns()
		for i, c := range cols {
			sep := ","
			if i == len(cols)-1 {
				sep = "\n"
			}
			if _, err := io.WriteString(w, c+sep); err != nil {
				return err
			}
		}
		for i := 0; i < sc.S.Len(); i++ {
			row := sc.S.Row(i)
			for j, v := range row {
				sep := ","
				if j == len(row)-1 {
					sep = "\n"
				}
				if _, err := io.WriteString(w, trimFloat(v)+sep); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

type jsonSeries struct {
	Every   int64       `json:"every"`
	Evicted int64       `json:"evicted"`
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
}

// WriteSamplersJSON renders the samplers' retained rows as one JSON object
// keyed by scope.
func WriteSamplersJSON(w io.Writer, samplers []ScopedSampler) error {
	out := make(map[string]jsonSeries, len(samplers))
	for _, sc := range samplers {
		if sc.S.Len() == 0 {
			continue
		}
		rows := make([][]float64, sc.S.Len())
		for i := range rows {
			rows[i] = sc.S.Row(i)
		}
		out[sc.Scope] = jsonSeries{Every: sc.S.Every(), Evicted: sc.S.Evicted(), Columns: sc.S.Columns(), Rows: rows}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
