package telemetry

import (
	"strings"
	"testing"
	"time"
)

// A nil registry must hand out nil handles whose every method is a no-op —
// the zero-cost-when-disabled contract the hot paths rely on.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	c.Sync(9)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles accumulated state")
	}
	if names := r.ScalarNames(); names != nil {
		t.Fatalf("nil registry has scalar names %v", names)
	}
	snap := r.Snapshot()
	if len(snap.Scalars) != 0 || len(snap.Hists) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var s *Sampler
	s.Tick(100)
	s.Flush(100)
	if s.Len() != 0 || s.Columns() != nil || s.Every() != 0 || s.Evicted() != 0 {
		t.Fatalf("nil sampler accumulated state")
	}
	var pt *PhaseTimer
	pt.Observe(PhaseEval, pt.Start())
	pt.Merge(NewPhaseTimer())
	if pt.Breakdown() != nil {
		t.Fatalf("nil phase timer has a breakdown")
	}
	if err := pt.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
}

func TestScalarSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("done_total", "finished things")
	g := r.Gauge("depth", "queue depth")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Sync(42)
	if c.Value() != 42 {
		t.Fatalf("Sync: counter = %d, want 42", c.Value())
	}
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v, want 5", g.Value())
	}
	snap := r.Snapshot()
	if len(snap.Scalars) != 2 || snap.Scalars[0].Name != "done_total" || snap.Scalars[0].Value != 42 ||
		snap.Scalars[1].Kind != KindGauge || snap.Scalars[1].Value != 5 {
		t.Fatalf("snapshot = %+v", snap.Scalars)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lag", "", []float64{10, 25, 50})
	for _, v := range []float64{0, 10, 10.5, 25, 49, 50, 51, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hv := snap.Hists[0]
	// v <= bound lands in that bucket: {0,10} | {10.5,25} | {49,50} | {51,1000}
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	if hv.Count != 8 || hv.Sum != 0+10+10.5+25+49+50+51+1000 {
		t.Fatalf("count %d sum %v", hv.Count, hv.Sum)
	}
}

func TestSamplerBoundariesAndFlush(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "")
	prepared := 0
	s := NewSampler(r, &Options{SampleEvery: 100, RingCap: 8})
	s.Prepare = func() { prepared++ }
	c.Inc()
	s.Tick(50) // before the first boundary: no row
	if s.Len() != 0 {
		t.Fatalf("row recorded before the first boundary")
	}
	c.Inc()
	s.Tick(250) // crosses 100 and 200
	if s.Len() != 2 || prepared != 2 {
		t.Fatalf("len=%d prepared=%d, want 2,2", s.Len(), prepared)
	}
	if row := s.Row(0); row[0] != 100 || row[1] != 2 {
		t.Fatalf("row 0 = %v, want [100 2]", row)
	}
	if row := s.Row(1); row[0] != 200 {
		t.Fatalf("row 1 tick = %v, want 200", row[0])
	}
	s.Flush(275) // final off-boundary row
	if s.Len() != 3 || s.Row(2)[0] != 275 {
		t.Fatalf("flush: len=%d last=%v", s.Len(), s.Row(s.Len()-1))
	}
	s.Flush(275) // idempotent: a row for 275 already exists
	if s.Len() != 3 {
		t.Fatalf("second flush duplicated the row: len=%d", s.Len())
	}
	cols := s.Columns()
	if len(cols) != 2 || cols[0] != "tick" || cols[1] != "events_total" {
		t.Fatalf("columns = %v", cols)
	}
}

func TestSamplerFlushOnBoundaryRecordsOnce(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	s := NewSampler(r, &Options{SampleEvery: 100, RingCap: 8})
	s.Flush(200) // crosses 100 and 200; the 200 row must not double
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2 (rows at 100 and 200)", s.Len())
	}
	if s.Row(1)[0] != 200 {
		t.Fatalf("last row tick = %v", s.Row(1)[0])
	}
}

func TestSamplerRingBound(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	s := NewSampler(r, &Options{SampleEvery: 10, RingCap: 4})
	c.Add(1)
	s.Tick(100) // 10 boundaries → 10 rows, 4 retained
	if s.Len() != 4 || s.Evicted() != 6 {
		t.Fatalf("len=%d evicted=%d, want 4,6", s.Len(), s.Evicted())
	}
	if s.Row(0)[0] != 70 || s.Row(3)[0] != 100 {
		t.Fatalf("ring kept [%v..%v], want [70..100]", s.Row(0)[0], s.Row(3)[0])
	}
}

func TestSamplerOnSampleHook(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	s := NewSampler(r, &Options{SampleEvery: 50, RingCap: 4})
	var ticks []int64
	s.OnSample = func(tick int64) { ticks = append(ticks, tick) }
	s.Tick(120)
	if len(ticks) != 2 || ticks[0] != 50 || ticks[1] != 100 {
		t.Fatalf("OnSample ticks = %v", ticks)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	ca := a.Counter("done_total", "")
	ga := a.Gauge("depth", "")
	ha := a.Histogram("lag", "", []float64{10})
	ca.Add(3)
	ga.Set(5)
	ha.Observe(4)
	b := NewRegistry()
	cb := b.Counter("done_total", "")
	gb := b.Gauge("depth", "")
	hb := b.Histogram("lag", "", []float64{10})
	cb.Add(4)
	gb.Set(9)
	hb.Observe(40)
	b.Counter("extra_total", "").Add(1)

	m := Merge(a.Snapshot(), b.Snapshot())
	got := map[string]float64{}
	for _, s := range m.Scalars {
		got[s.Name] = s.Value
	}
	if got["done_total"] != 7 {
		t.Fatalf("merged counter = %v, want 7", got["done_total"])
	}
	if got["depth"] != 5 {
		t.Fatalf("merged gauge = %v, want the receiver's 5", got["depth"])
	}
	if got["extra_total"] != 1 {
		t.Fatalf("appended counter = %v", got["extra_total"])
	}
	if m.Hists[0].Count != 2 || m.Hists[0].Counts[0] != 1 || m.Hists[0].Counts[1] != 1 {
		t.Fatalf("merged hist = %+v", m.Hists[0])
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	t0 := pt.Start()
	time.Sleep(time.Millisecond)
	pt.Observe(PhaseEval, t0)
	other := NewPhaseTimer()
	o0 := other.Start()
	other.Observe(PhaseConvolve, o0)
	pt.Merge(other)
	bd := pt.Breakdown()
	if bd[PhaseEval].Count != 1 || bd[PhaseEval].Total <= 0 {
		t.Fatalf("eval stat = %+v", bd[PhaseEval])
	}
	if bd[PhaseConvolve].Count != 1 {
		t.Fatalf("merge lost the convolve span: %+v", bd[PhaseConvolve])
	}
	var sb strings.Builder
	if err := pt.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "eval") || !strings.Contains(sb.String(), "phase timings") {
		t.Fatalf("WriteText output:\n%s", sb.String())
	}
}
