package pet

import "taskprune/internal/stats"

// This file synthesizes the mean-execution-time matrices that seed PET
// profiling.
//
// Substitution note (see DESIGN.md §5): the paper seeds its PET with the
// mean runtimes of twelve SPECint benchmarks measured on eight named
// physical machines. Those per-machine SPEC tables are not redistributable,
// so we synthesize a fixed 12×8 matrix with the two properties the paper
// actually relies on: (1) means lie in the stated 50–200 ms range, and
// (2) the matrix is *inconsistently* heterogeneous — machine A beats
// machine B on some task types and loses on others, so no machine
// dominates.

// SPECNumTypes and SPECNumMachines give the dimensions of the paper's main
// evaluation PET.
const (
	SPECNumTypes    = 12
	SPECNumMachines = 8
)

// specSeed fixes the synthesized SPEC-like matrix across all builds.
const specSeed = 0x5EC1

// SPECLikeMeans returns the checked 12×8 matrix of mean execution times (in
// ticks ≈ ms) used by every main-workload experiment. The matrix is
// generated once from a fixed seed: each task type has a base cost in
// [50, 200], each machine a consistent speed factor in [0.7, 1.4], and each
// cell an affinity factor in [0.55, 1.8] that injects inconsistent
// heterogeneity (GPU-like machines excelling at some types and struggling
// at others). Results are clamped back into [50, 200] ticks... the paper's
// stated range for task-type mean execution times.
func SPECLikeMeans() [][]float64 {
	return SyntheticMeans(SPECNumTypes, SPECNumMachines, specSeed)
}

// SyntheticMeans generalizes SPECLikeMeans to an arbitrary fleet shape: a
// types×machines matrix with the same generation recipe (base costs in
// [50, 200], machine speed factors in [0.7, 1.4], per-cell affinities in
// [0.55, 1.8], clamped back into [50, 200]) seeded by the caller, so serve
// configs can declare fleets of any size that keep the paper's
// inconsistent-heterogeneity property. SyntheticMeans(12, 8, 0x5EC1) is
// SPECLikeMeans exactly. Both dimensions must be positive.
func SyntheticMeans(types, machines int, seed int64) [][]float64 {
	if types < 1 || machines < 1 {
		panic("pet: SyntheticMeans needs positive dimensions")
	}
	rng := stats.NewRNG(seed)
	base := make([]float64, types)
	for i := range base {
		base[i] = rng.UniformRange(50, 200)
	}
	speed := make([]float64, machines)
	for j := range speed {
		speed[j] = rng.UniformRange(0.7, 1.4)
	}
	means := make([][]float64, types)
	for i := range means {
		means[i] = make([]float64, machines)
		for j := range means[i] {
			affinity := rng.UniformRange(0.55, 1.8)
			v := base[i] * speed[j] * affinity
			if v < 50 {
				v = 50
			}
			if v > 200 {
				v = 200
			}
			means[i][j] = v
		}
	}
	return means
}

// Video workload dimensions (paper Fig. 9: four transcoding task types on
// four heterogeneous Amazon EC2 VM types).
const (
	VideoNumTypes    = 4
	VideoNumMachines = 4
)

// Video machine indices, mirroring the paper's EC2 fleet.
const (
	VideoCPUOptimized = iota
	VideoMemOptimized
	VideoGeneralPurpose
	VideoGPU
)

// VideoTypeNames labels the four transcoding operations of the Fig. 9
// workload.
var VideoTypeNames = []string{"resolution", "codec", "bitrate", "framerate"}

// VideoMachineNames labels the four VM types.
var VideoMachineNames = []string{"cpu-opt", "mem-opt", "general", "gpu"}

// VideoMeans returns the 4×4 mean matrix for the video-transcoding
// workload. Substitution for the paper's 660-video trace (dead link): the
// affinities follow the measurements reported by Li et al. (the paper's
// refs [2], [23]) — compute-heavy transcodes (codec change, resolution
// scaling of slow-motion content) benefit strongly from the GPU VM, while
// memory/IO-bound operations (bitrate, framerate adjustment) run best on
// CPU/memory-optimized VMs and gain little from the GPU.
func VideoMeans() [][]float64 {
	return [][]float64{
		// cpu-opt, mem-opt, general, gpu        (ticks ≈ ms)
		{120, 150, 140, 60}, // resolution: GPU-friendly
		{160, 180, 170, 70}, // codec: strongly GPU-friendly
		{80, 65, 90, 110},   // bitrate: memory-bound, GPU overhead hurts
		{70, 75, 85, 100},   // framerate: CPU-friendly
	}
}
