package pet

import (
	"sync"

	"taskprune/internal/pmf"
	"taskprune/internal/task"
)

// This file serves degradation-scaled views of the PET matrix. A machine
// running under a scenario-injected performance degradation factor f takes
// f× longer per task, so every consumer of its column — mapping heuristics,
// queue-chain walks, the pruner — must see execution-time distributions with
// their ticks stretched by f. Scaled entries are derived lazily and cached
// per (type, machine, factor): a scenario flips each machine through a
// handful of factors, so the cache stays tiny while keeping the hot path
// allocation-free. Factor 1 bypasses the cache entirely and returns the
// nominal entry, keeping scenario-free runs bit-identical and lock-free.

// scaledKey identifies one derived entry.
type scaledKey struct {
	t      task.Type
	mi     int
	factor float64
}

// scaledCache is the lazily populated store of degradation-scaled entries.
// The PET matrix is shared across concurrently running trials, so the cache
// is guarded by an RWMutex (reads vastly outnumber the first-miss writes).
type scaledCache struct {
	mu      sync.RWMutex
	entries map[scaledKey]*Entry
}

// ScaledEntry returns the entry of type t on machine mi with execution time
// stretched by factor (the machine's current speed factor; 1 = nominal).
func (m *Matrix) ScaledEntry(t task.Type, mi int, factor float64) *Entry {
	if factor == 1 {
		return &m.entries[t][mi]
	}
	key := scaledKey{t: t, mi: mi, factor: factor}
	m.scaled.mu.RLock()
	e := m.scaled.entries[key]
	m.scaled.mu.RUnlock()
	if e != nil {
		return e
	}
	m.scaled.mu.Lock()
	defer m.scaled.mu.Unlock()
	if e = m.scaled.entries[key]; e != nil { // lost the race; reuse the winner
		return e
	}
	base := m.entries[t][mi]
	p := pmf.ScaleTicks(base.PMF, factor)
	// Mean/Shape describe the ground-truth gamma of the degraded machine:
	// slowing a machine by f scales the gamma mean linearly and leaves its
	// shape untouched. As with nominal entries, this ground truth differs
	// from the profiled PMF's mean (here additionally by ScaleTicks' ceil
	// rounding) — consumers of the estimate use PMF.Mean()/ScaledEstMean.
	e = &Entry{PMF: p, Prof: pmf.NewProfile(p), Mean: base.Mean * factor, Shape: base.Shape}
	if m.scaled.entries == nil {
		m.scaled.entries = make(map[scaledKey]*Entry)
	}
	m.scaled.entries[key] = e
	return e
}

// ScaledPMF returns the execution-time PMF of type t on machine mi under the
// given speed factor.
func (m *Matrix) ScaledPMF(t task.Type, mi int, factor float64) *pmf.PMF {
	if factor == 1 {
		return m.entries[t][mi].PMF
	}
	return m.ScaledEntry(t, mi, factor).PMF
}

// ScaledProfile returns the prefix-sum profile of type t on machine mi under
// the given speed factor.
func (m *Matrix) ScaledProfile(t task.Type, mi int, factor float64) *pmf.Profile {
	if factor == 1 {
		return m.entries[t][mi].Prof
	}
	return m.ScaledEntry(t, mi, factor).Prof
}

// ScaledEstMean returns the profiled mean execution time of type t on
// machine mi under the given speed factor (what a scalar heuristic believes
// a degraded machine costs).
func (m *Matrix) ScaledEstMean(t task.Type, mi int, factor float64) float64 {
	if factor == 1 {
		return m.entries[t][mi].PMF.Mean()
	}
	return m.ScaledEntry(t, mi, factor).PMF.Mean()
}
