// Package pet builds and serves the Probabilistic Execution Time (PET)
// matrix: one discrete PMF per (task type, machine) pair, profiled offline
// from execution-time samples — the model of heterogeneity every mapping
// heuristic in the system consumes.
package pet

import (
	"fmt"

	"taskprune/internal/pmf"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// Entry is one cell of the PET matrix.
type Entry struct {
	PMF   *pmf.PMF     // profiled execution-time distribution (normalized)
	Prof  *pmf.Profile // prefix-sum profile of PMF for O(|tail|) evaluations
	Mean  float64      // ground-truth gamma mean the profile was drawn from
	Shape float64      // ground-truth gamma shape
}

// Matrix is an inconsistently heterogeneous PET matrix: task types × machines.
// The profiled entries are immutable after construction and safe for
// concurrent reads; the degradation-scaled views in scaled.go are derived
// lazily behind their own lock, so a Matrix may be shared across trials even
// when scenarios degrade machines.
type Matrix struct {
	entries   [][]Entry // [taskType][machine]
	scaled    scaledCache
	remaining remainingCache
}

// BuildConfig controls offline PET profiling.
type BuildConfig struct {
	Samples     int     // execution-time samples per entry (paper: 500)
	Bins        int     // histogram bins per entry
	MaxImpulses int     // PMF compaction bound (0 = no compaction)
	ShapeLo     float64 // gamma shape lower bound (paper: 1)
	ShapeHi     float64 // gamma shape upper bound (paper: 20)
}

// DefaultBuildConfig mirrors the paper's profiling methodology.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		Samples:     500,
		Bins:        32,
		MaxImpulses: pmf.DefaultMaxImpulses,
		ShapeLo:     1,
		ShapeHi:     20,
	}
}

// Build profiles a PET matrix from a matrix of mean execution times
// (means[taskType][machine], in ticks). Each entry samples cfg.Samples
// gamma variates with the entry's mean and a shape drawn uniformly from
// [ShapeLo, ShapeHi], histograms them, and converts the histogram to a
// compacted PMF.
func Build(means [][]float64, cfg BuildConfig, rng *stats.RNG) (*Matrix, error) {
	if len(means) == 0 || len(means[0]) == 0 {
		return nil, fmt.Errorf("pet: empty mean matrix")
	}
	if cfg.Samples <= 0 || cfg.Bins <= 0 {
		return nil, fmt.Errorf("pet: Samples and Bins must be positive (got %d, %d)", cfg.Samples, cfg.Bins)
	}
	if cfg.ShapeLo <= 0 || cfg.ShapeHi < cfg.ShapeLo {
		return nil, fmt.Errorf("pet: invalid shape range [%v, %v]", cfg.ShapeLo, cfg.ShapeHi)
	}
	nm := len(means[0])
	m := &Matrix{entries: make([][]Entry, len(means))}
	for ti, row := range means {
		if len(row) != nm {
			return nil, fmt.Errorf("pet: ragged mean matrix at row %d", ti)
		}
		m.entries[ti] = make([]Entry, nm)
		for mi, mean := range row {
			if mean <= 0 {
				return nil, fmt.Errorf("pet: non-positive mean at (%d,%d)", ti, mi)
			}
			shape := rng.UniformRange(cfg.ShapeLo, cfg.ShapeHi)
			samples := rng.GammaSamples(cfg.Samples, mean, shape)
			p := pmf.FromSamples(samples, cfg.Bins)
			if cfg.MaxImpulses > 0 {
				p = pmf.Compact(p, cfg.MaxImpulses)
			}
			m.entries[ti][mi] = Entry{PMF: p, Prof: pmf.NewProfile(p), Mean: mean, Shape: shape}
		}
	}
	return m, nil
}

// MustBuild is Build for statically known-good inputs; it panics on error.
func MustBuild(means [][]float64, cfg BuildConfig, rng *stats.RNG) *Matrix {
	m, err := Build(means, cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// NumTypes returns the number of task types (matrix rows).
func (m *Matrix) NumTypes() int { return len(m.entries) }

// NumMachines returns the number of machines (matrix columns).
func (m *Matrix) NumMachines() int {
	if len(m.entries) == 0 {
		return 0
	}
	return len(m.entries[0])
}

// PMF returns the profiled execution-time PMF of task type t on machine mi.
func (m *Matrix) PMF(t task.Type, mi int) *pmf.PMF { return m.entries[t][mi].PMF }

// Mean returns the ground-truth mean execution time of type t on machine mi.
func (m *Matrix) Mean(t task.Type, mi int) float64 { return m.entries[t][mi].Mean }

// EstMean returns the mean of the profiled PMF (what a scalar heuristic
// like MinMin "believes" the execution time is).
func (m *Matrix) EstMean(t task.Type, mi int) float64 { return m.entries[t][mi].PMF.Mean() }

// Profile returns the prefix-sum execution profile of type t on machine mi.
func (m *Matrix) Profile(t task.Type, mi int) *pmf.Profile { return m.entries[t][mi].Prof }

// Entry returns the full cell.
func (m *Matrix) Entry(t task.Type, mi int) Entry { return m.entries[t][mi] }

// SampleExec draws a ground-truth execution time (in ticks, >= 1) for one
// task instance of type t on machine mi from the same gamma distribution
// the PET was profiled from.
func (m *Matrix) SampleExec(rng *stats.RNG, t task.Type, mi int) int64 {
	e := m.entries[t][mi]
	v := int64(rng.GammaMeanShape(e.Mean, e.Shape) + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// TypeMeanAcrossMachines returns the mean execution time of type t averaged
// over all machines; the workload generator uses it to set deadlines
// (avg_i in δ = arr + avg_i + β·avg_all).
func (m *Matrix) TypeMeanAcrossMachines(t task.Type) float64 {
	row := m.entries[t]
	var s float64
	for _, e := range row {
		s += e.Mean
	}
	return s / float64(len(row))
}

// GrandMean returns the mean execution time over all entries (avg_all).
func (m *Matrix) GrandMean() float64 {
	var s float64
	var n int
	for _, row := range m.entries {
		for _, e := range row {
			s += e.Mean
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// BestMachine returns the machine with the smallest mean execution time for
// type t (used in workload sanity checks and diagnostics).
func (m *Matrix) BestMachine(t task.Type) int {
	best, bestMean := 0, m.entries[t][0].Mean
	for mi, e := range m.entries[t] {
		if e.Mean < bestMean {
			best, bestMean = mi, e.Mean
		}
	}
	return best
}
