package pet

import (
	"math"
	"testing"

	"taskprune/internal/stats"
)

// TestFrozenBeliefServesNominal: a frozen belief answers every lookup with
// the truth's factor-1 entries — same pointers, so a frozen run on a
// static fleet is bit-identical to the oracle — no matter what degradation
// factor the caller reports.
func TestFrozenBeliefServesNominal(t *testing.T) {
	m := scaledTestMatrix(t)
	b := NewFrozenBelief(m)
	if b.NumTypes() != m.NumTypes() || b.NumMachines() != m.NumMachines() {
		t.Fatal("frozen belief reports a different shape than its truth")
	}
	for _, f := range []float64{1, 2, 3.5} {
		if b.ScaledEntry(0, 1, f) != m.ScaledEntry(0, 1, 1) {
			t.Fatalf("factor %v: frozen entry is not the nominal truth entry", f)
		}
		if b.ScaledPMF(0, 1, f) != m.PMF(0, 1) {
			t.Fatalf("factor %v: frozen PMF is not the nominal pointer", f)
		}
		if b.ScaledEstMean(0, 1, f) != m.EstMean(0, 1) {
			t.Fatalf("factor %v: frozen mean differs from nominal", f)
		}
		if b.RemainingEntry(0, 1, f, 5) != m.RemainingEntry(0, 1, 1, 5) {
			t.Fatalf("factor %v: frozen remaining entry is not the nominal conditioned entry", f)
		}
	}
}

// TestOnlineBeliefColdServesPrior: before any cell reaches the sample
// floor, the online belief is exactly a frozen view of its prior.
func TestOnlineBeliefColdServesPrior(t *testing.T) {
	m := scaledTestMatrix(t)
	b := NewOnlineBelief(m, 10, 5, 16)
	if b.ScaledEntry(0, 0, 2) != m.ScaledEntry(0, 0, 1) {
		t.Fatal("cold cell must serve the prior's nominal entry")
	}
	if b.RemainingEntry(0, 0, 2, 5) != m.RemainingEntry(0, 0, 1, 5) {
		t.Fatal("cold cell must serve the prior's nominal conditioned entry")
	}
	if mean, learned := b.CellMean(0, 0); learned || mean != m.EstMean(0, 0) {
		t.Fatalf("cold cell mean %v learned=%v, want prior %v unlearned", mean, learned, m.EstMean(0, 0))
	}
}

// TestOnlineBeliefRespectsFloorAndCadence: the first rebuild fires exactly
// at minSamples, later ones exactly every refresh observations, and only
// the observed cell learns.
func TestOnlineBeliefRespectsFloorAndCadence(t *testing.T) {
	m := scaledTestMatrix(t)
	b := NewOnlineBelief(m, 4, 6, 16)
	for i := 1; i <= 5; i++ {
		if b.Observe(0, 0, int64(9+i%3)) {
			t.Fatalf("rebuild after %d observations, floor is 6", i)
		}
	}
	if !b.Observe(0, 0, 10) {
		t.Fatal("no rebuild at the sample floor")
	}
	if _, learned := b.CellMean(0, 0); !learned {
		t.Fatal("cell not learned after its first rebuild")
	}
	if _, learned := b.CellMean(0, 1); learned {
		t.Fatal("an unobserved cell learned")
	}
	for i := 1; i <= 3; i++ {
		if b.Observe(0, 0, 10) {
			t.Fatalf("rebuild %d observations after the last, cadence is 4", i)
		}
	}
	if !b.Observe(0, 0, 10) {
		t.Fatal("no rebuild at the refresh cadence")
	}
	if b.Refreshes() != 2 || b.Observations() != 10 {
		t.Fatalf("refreshes %d observations %d, want 2 and 10", b.Refreshes(), b.Observations())
	}
}

// TestOnlineBeliefConvergence is the acceptance-criteria convergence
// bound: feeding an online cell 400 gamma-distributed observations drawn
// from a *moved* truth (the prior's mean tripled — a 3x degradation the
// reported factor never discloses) must land the believed per-cell mean
// within 10% of the moved truth's, and the believed PMF's mass within
// 1e-9 of 1.
func TestOnlineBeliefConvergence(t *testing.T) {
	m := scaledTestMatrix(t)
	b := NewOnlineBelief(m, 25, 10, 32)
	rng := stats.NewRNG(7)
	trueMean := 3 * m.Mean(0, 0) // truth moved: 3x slower than the prior
	const n = 400
	for i := 0; i < n; i++ {
		d := rng.Gamma(10, trueMean/10)
		if d < 1 {
			d = 1
		}
		b.Observe(0, 0, int64(math.Round(d)))
	}
	mean, learned := b.CellMean(0, 0)
	if !learned {
		t.Fatalf("cell unlearned after %d observations", n)
	}
	if rel := math.Abs(mean-trueMean) / trueMean; rel > 0.10 {
		t.Fatalf("believed mean %.2f vs moved truth %.2f: off by %.1f%%, tolerance 10%%", mean, trueMean, 100*rel)
	}
	e := b.ScaledEntry(0, 0, 1)
	if math.Abs(e.PMF.Mass()-1) > 1e-9 {
		t.Fatalf("learned PMF mass %v, want 1", e.PMF.Mass())
	}
	// The reported factor is ignored once learned: the observations already
	// embody the true degradation.
	if b.ScaledEntry(0, 0, 2) != e {
		t.Fatal("learned lookups must ignore the reported factor")
	}
}

// TestOnlineBeliefRemainingCache: conditioned entries are cached per
// (cell, scaled consumed) and the cache is discarded on rebuild.
func TestOnlineBeliefRemainingCache(t *testing.T) {
	m := scaledTestMatrix(t)
	b := NewOnlineBelief(m, 100, 5, 16)
	for i := 0; i < 5; i++ {
		b.Observe(0, 0, 40)
	}
	if _, learned := b.CellMean(0, 0); !learned {
		t.Fatal("cell not learned at the floor")
	}
	r1 := b.RemainingEntry(0, 0, 1, 10)
	if r1 != b.RemainingEntry(0, 0, 1, 10) {
		t.Fatal("repeated conditioned lookups must hit the cache")
	}
	if r1 == b.ScaledEntry(0, 0, 1) {
		t.Fatal("conditioned entry must differ from the unconditioned one")
	}
	// Same nominal consumed under factor 2 conditions on 2x the progress.
	if b.RemainingEntry(0, 0, 2, 10) == r1 {
		t.Fatal("distinct scaled-consumed values share one conditioned entry")
	}
	// Force a rebuild; the conditioned cache must be rebuilt too.
	for i := 0; i < 100; i++ {
		b.Observe(0, 0, 60)
	}
	if b.RemainingEntry(0, 0, 1, 10) == r1 {
		t.Fatal("conditioned cache survived a rebuild")
	}
}
