package pet

import (
	"sync"

	"taskprune/internal/pmf"
	"taskprune/internal/task"
)

// This file serves remaining-work views of the PET matrix for restored
// tasks: a task resuming from a checkpoint has already banked `consumed`
// ticks of progress, so every mapping-time estimate of it must use the
// execution-time distribution conditioned on having survived that long —
// PMF.RemainingAfter on the (degradation-scaled) entry. Conditioned entries
// are derived lazily and cached per (type, machine, factor, consumed):
// checkpoint intervals quantize consumed progress to a handful of
// multiples, so the cache stays tiny while keeping the mapping hot path
// allocation-free. Consumed 0 bypasses the cache entirely and returns the
// scaled entry, keeping checkpoint-free runs bit-identical and lock-free.

// remainingKey identifies one conditioned entry. consumed is the *nominal*
// banked progress (task.Task.Consumed); RemainingEntry scales it into the
// factor's time base internally, so the key stays a pure function of what
// callers know without pre-scaling.
type remainingKey struct {
	t        task.Type
	mi       int
	factor   float64
	consumed int64
}

// remainingCache is the lazily populated store of conditioned entries; like
// scaledCache it is shared across concurrently running trials, so reads
// take an RWMutex.
type remainingCache struct {
	mu      sync.RWMutex
	entries map[remainingKey]*Entry
}

// maxRemainingEntries bounds the cache. Periodic checkpoint intervals
// quantize consumed values to a handful of multiples, but on-preempt
// restore points and replication-lag credits are arbitrary ticks — and the
// Matrix outlives every trial of an experiment — so past this bound a miss
// builds a transient entry instead of storing it, trading a rare
// recomputation for bounded memory.
const maxRemainingEntries = 4096

// RemainingEntry returns the entry of type t on machine mi under speed
// factor, conditioned on the task having already banked consumed *nominal*
// ticks of progress (X−c' | X>c' where c' = ScaleDur(consumed, factor) is
// the progress re-expressed in the factor's time base). Consumed <= 0 is
// exactly ScaledEntry. The returned entry's Mean/Shape carry the
// conditioned PMF's mean (there is no ground-truth gamma for a conditioned
// view).
func (m *Matrix) RemainingEntry(t task.Type, mi int, factor float64, consumed int64) *Entry {
	if consumed <= 0 {
		return m.ScaledEntry(t, mi, factor)
	}
	key := remainingKey{t: t, mi: mi, factor: factor, consumed: consumed}
	m.remaining.mu.RLock()
	e := m.remaining.entries[key]
	m.remaining.mu.RUnlock()
	if e != nil {
		return e
	}
	m.remaining.mu.Lock()
	defer m.remaining.mu.Unlock()
	if e = m.remaining.entries[key]; e != nil { // lost the race; reuse the winner
		return e
	}
	base := m.ScaledEntry(t, mi, factor)
	p := base.PMF.RemainingAfter(pmf.ScaleDur(consumed, factor))
	e = &Entry{PMF: p, Prof: pmf.NewProfile(p), Mean: p.Mean(), Shape: base.Shape}
	if len(m.remaining.entries) < maxRemainingEntries {
		if m.remaining.entries == nil {
			m.remaining.entries = make(map[remainingKey]*Entry)
		}
		m.remaining.entries[key] = e
	}
	return e
}
