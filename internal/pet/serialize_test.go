package pet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := testMatrix(t)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTypes() != orig.NumTypes() || loaded.NumMachines() != orig.NumMachines() {
		t.Fatalf("dimensions changed: %dx%d", loaded.NumTypes(), loaded.NumMachines())
	}
	for ti := 0; ti < orig.NumTypes(); ti++ {
		for mi := 0; mi < orig.NumMachines(); mi++ {
			a, b := orig.Entry(task.Type(ti), mi), loaded.Entry(task.Type(ti), mi)
			if a.Mean != b.Mean || a.Shape != b.Shape {
				t.Fatalf("entry (%d,%d) params changed", ti, mi)
			}
			if math.Abs(a.PMF.Mean()-b.PMF.Mean()) > 1e-9 {
				t.Fatalf("entry (%d,%d) PMF mean changed: %v vs %v", ti, mi, a.PMF.Mean(), b.PMF.Mean())
			}
			if math.Abs(b.PMF.Mass()-1) > 1e-9 {
				t.Fatalf("entry (%d,%d) loaded mass %v", ti, mi, b.PMF.Mass())
			}
			if b.Prof == nil {
				t.Fatalf("entry (%d,%d) missing profile after load", ti, mi)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"bad version":     `{"version":99,"num_types":1,"num_machines":1,"entries":[]}`,
		"bad dims":        `{"version":1,"num_types":0,"num_machines":1,"entries":[]}`,
		"missing entries": `{"version":1,"num_types":2,"num_machines":2,"entries":[]}`,
		"bad entry index": `{"version":1,"num_types":1,"num_machines":1,"entries":[{"type":5,"machine":0,"mean":10,"shape":2,"ticks":[1],"probs":[1]}]}`,
		"zero tick":       `{"version":1,"num_types":1,"num_machines":1,"entries":[{"type":0,"machine":0,"mean":10,"shape":2,"ticks":[0],"probs":[1]}]}`,
		"bad mass":        `{"version":1,"num_types":1,"num_machines":1,"entries":[{"type":0,"machine":0,"mean":10,"shape":2,"ticks":[1],"probs":[0.5]}]}`,
		"bad mean":        `{"version":1,"num_types":1,"num_machines":1,"entries":[{"type":0,"machine":0,"mean":-1,"shape":2,"ticks":[1],"probs":[1]}]}`,
		"ragged impulses": `{"version":1,"num_types":1,"num_machines":1,"entries":[{"type":0,"machine":0,"mean":10,"shape":2,"ticks":[1,2],"probs":[1]}]}`,
	}
	for name, payload := range cases {
		if _, err := ReadJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPerturbed(t *testing.T) {
	orig := testMatrix(t)
	rng := stats.NewRNG(5)
	drifted := orig.Perturbed(0.25, rng)
	if drifted.NumTypes() != orig.NumTypes() || drifted.NumMachines() != orig.NumMachines() {
		t.Fatal("dimensions changed")
	}
	changed := false
	for ti := 0; ti < orig.NumTypes(); ti++ {
		for mi := 0; mi < orig.NumMachines(); mi++ {
			a, b := orig.Entry(task.Type(ti), mi), drifted.Entry(task.Type(ti), mi)
			// Profiled belief untouched (same instance).
			if a.PMF != b.PMF || a.Prof != b.Prof {
				t.Fatal("profile was perturbed; only the truth may drift")
			}
			ratio := b.Mean / a.Mean
			if ratio < 0.75-1e-9 || ratio > 1.25+1e-9 {
				t.Fatalf("entry (%d,%d) drift ratio %v outside [0.75, 1.25]", ti, mi, ratio)
			}
			if ratio != 1 {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("no entry drifted")
	}
	// Zero drift is the identity on means.
	same := orig.Perturbed(0, stats.NewRNG(5))
	for ti := 0; ti < orig.NumTypes(); ti++ {
		for mi := 0; mi < orig.NumMachines(); mi++ {
			if same.Entry(task.Type(ti), mi).Mean != orig.Entry(task.Type(ti), mi).Mean {
				t.Fatal("zero drift changed a mean")
			}
		}
	}
}

func TestPerturbedPanicsOnNegativeDrift(t *testing.T) {
	orig := testMatrix(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative drift accepted")
		}
	}()
	orig.Perturbed(-0.1, stats.NewRNG(1))
}
