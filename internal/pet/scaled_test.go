package pet

import (
	"math"
	"sync"
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

func scaledTestMatrix(t *testing.T) *Matrix {
	t.Helper()
	cfg := BuildConfig{Samples: 300, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	m, err := Build([][]float64{{10, 40}, {40, 10}}, cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScaledFactorOneIsNominal(t *testing.T) {
	m := scaledTestMatrix(t)
	if m.ScaledPMF(0, 1, 1) != m.PMF(0, 1) {
		t.Error("factor 1 PMF is not the nominal entry pointer")
	}
	if m.ScaledProfile(0, 1, 1) != m.Profile(0, 1) {
		t.Error("factor 1 profile is not the nominal entry pointer")
	}
	if m.ScaledEstMean(0, 1, 1) != m.EstMean(0, 1) {
		t.Error("factor 1 mean differs from nominal")
	}
}

func TestScaledEntryCachedAndConsistent(t *testing.T) {
	m := scaledTestMatrix(t)
	a := m.ScaledEntry(1, 0, 2.0)
	b := m.ScaledEntry(1, 0, 2.0)
	if a != b {
		t.Error("repeated lookups must hit the cache (same pointer)")
	}
	if a.Prof.PMF() != a.PMF {
		t.Error("scaled profile not built over the scaled PMF")
	}
	if math.Abs(a.PMF.Mass()-1) > 1e-9 {
		t.Errorf("scaled PMF mass = %v, want 1", a.PMF.Mass())
	}
	nominal := m.EstMean(1, 0)
	if got := m.ScaledEstMean(1, 0, 2.0); math.Abs(got-2*nominal) > 1 {
		t.Errorf("scaled mean %v, want ≈ %v", got, 2*nominal)
	}
	if a.Mean != 2*m.Mean(1, 0) {
		t.Errorf("ground-truth mean %v, want %v", a.Mean, 2*m.Mean(1, 0))
	}
	// Distinct factors are distinct entries.
	if m.ScaledEntry(1, 0, 3.0) == a {
		t.Error("different factors share one entry")
	}
}

// TestScaledAndRemainingCachesConcurrent hammers both RWMutex caches with
// mixed readers and writers at once — ScaledEntry and RemainingEntry
// lookups interleaved across goroutines, cells, factors, and consumed
// values, so first-populate writes race against steady-state reads on both
// maps. The Matrix is shared across parallel trials, so this must be clean
// under -race (make race-stream runs it there) and every goroutine must
// observe identical cached pointers for identical keys.
func TestScaledAndRemainingCachesConcurrent(t *testing.T) {
	m := scaledTestMatrix(t)
	factors := []float64{1, 1.5, 2, 2.5, 3}
	consumed := []int64{0, 3, 5, 8}
	const goroutines, iters = 8, 400
	var wg sync.WaitGroup
	scaled := make([][]*Entry, goroutines)
	remaining := make([][]*Entry, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tt, mi := i%2, (i/2)%2
				f := factors[i%len(factors)]
				c := consumed[i%len(consumed)]
				scaled[g] = append(scaled[g], m.ScaledEntry(task.Type(tt), mi, f))
				remaining[g] = append(remaining[g], m.RemainingEntry(task.Type(tt), mi, f, c))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range scaled[g] {
			if scaled[g][i] != scaled[0][i] {
				t.Fatalf("goroutine %d observed a different scaled entry at %d", g, i)
			}
			if remaining[g][i] != remaining[0][i] {
				t.Fatalf("goroutine %d observed a different remaining entry at %d", g, i)
			}
		}
	}
	// Consumed 0 must have bypassed the remaining cache into the scaled one.
	if m.RemainingEntry(0, 0, 2, 0) != m.ScaledEntry(0, 0, 2) {
		t.Fatal("consumed 0 must be exactly ScaledEntry")
	}
}

// TestScaledEntryConcurrent exercises the lazily populated cache from many
// goroutines (the Matrix is shared across parallel trials).
func TestScaledEntryConcurrent(t *testing.T) {
	m := scaledTestMatrix(t)
	factors := []float64{1.5, 2, 2.5, 3}
	var wg sync.WaitGroup
	results := make([][]*Entry, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := factors[i%len(factors)]
				results[g] = append(results[g], m.ScaledEntry(0, 0, f))
			}
		}(g)
	}
	wg.Wait()
	// All goroutines must have observed the same four entries.
	for g := 1; g < 8; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d observed a different entry at %d", g, i)
			}
		}
	}
}
