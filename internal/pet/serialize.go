package pet

import (
	"encoding/json"
	"fmt"
	"io"

	"taskprune/internal/pmf"
)

// This file provides a stable on-disk representation of PET matrices so
// that profiles built offline (the paper's "historic execution time
// information ... in an offline manner") can be shipped to and loaded by a
// production scheduler without re-sampling.

// matrixJSON is the serialized form.
type matrixJSON struct {
	Version  int         `json:"version"`
	NumTypes int         `json:"num_types"`
	NumMach  int         `json:"num_machines"`
	Entries  []entryJSON `json:"entries"`
}

type entryJSON struct {
	Type    int       `json:"type"`
	Machine int       `json:"machine"`
	Mean    float64   `json:"mean"`
	Shape   float64   `json:"shape"`
	Ticks   []int64   `json:"ticks"`
	Probs   []float64 `json:"probs"`
}

// serializeVersion guards against future format changes.
const serializeVersion = 1

// WriteJSON serializes the matrix.
func (m *Matrix) WriteJSON(w io.Writer) error {
	out := matrixJSON{
		Version:  serializeVersion,
		NumTypes: m.NumTypes(),
		NumMach:  m.NumMachines(),
	}
	for ti := 0; ti < m.NumTypes(); ti++ {
		for mi := 0; mi < m.NumMachines(); mi++ {
			e := m.entries[ti][mi]
			ticks, probs := e.PMF.Impulses()
			out.Entries = append(out.Entries, entryJSON{
				Type: ti, Machine: mi, Mean: e.Mean, Shape: e.Shape,
				Ticks: ticks, Probs: probs,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON deserializes a matrix written by WriteJSON, validating shape and
// probability mass.
func ReadJSON(r io.Reader) (*Matrix, error) {
	var in matrixJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("pet: decode: %w", err)
	}
	if in.Version != serializeVersion {
		return nil, fmt.Errorf("pet: unsupported serialization version %d", in.Version)
	}
	if in.NumTypes <= 0 || in.NumMach <= 0 {
		return nil, fmt.Errorf("pet: invalid dimensions %dx%d", in.NumTypes, in.NumMach)
	}
	if len(in.Entries) != in.NumTypes*in.NumMach {
		return nil, fmt.Errorf("pet: %d entries for %dx%d matrix", len(in.Entries), in.NumTypes, in.NumMach)
	}
	m := &Matrix{entries: make([][]Entry, in.NumTypes)}
	for ti := range m.entries {
		m.entries[ti] = make([]Entry, in.NumMach)
	}
	for _, e := range in.Entries {
		if e.Type < 0 || e.Type >= in.NumTypes || e.Machine < 0 || e.Machine >= in.NumMach {
			return nil, fmt.Errorf("pet: entry (%d,%d) out of range", e.Type, e.Machine)
		}
		if len(e.Ticks) != len(e.Probs) || len(e.Ticks) == 0 {
			return nil, fmt.Errorf("pet: entry (%d,%d) has malformed impulses", e.Type, e.Machine)
		}
		if e.Mean <= 0 || e.Shape <= 0 {
			return nil, fmt.Errorf("pet: entry (%d,%d) has non-positive mean/shape", e.Type, e.Machine)
		}
		p := &pmf.PMF{}
		for i, tk := range e.Ticks {
			if tk < 1 {
				return nil, fmt.Errorf("pet: entry (%d,%d) has execution tick %d < 1", e.Type, e.Machine, tk)
			}
			if e.Probs[i] < 0 {
				return nil, fmt.Errorf("pet: entry (%d,%d) has negative probability", e.Type, e.Machine)
			}
			p.AddMass(tk, e.Probs[i])
		}
		if mass := p.Mass(); mass < 0.999 || mass > 1.001 {
			return nil, fmt.Errorf("pet: entry (%d,%d) mass %v not ~1", e.Type, e.Machine, mass)
		}
		p.Normalize()
		m.entries[e.Type][e.Machine] = Entry{
			PMF: p, Prof: pmf.NewProfile(p), Mean: e.Mean, Shape: e.Shape,
		}
	}
	for ti := range m.entries {
		for mi := range m.entries[ti] {
			if m.entries[ti][mi].PMF == nil {
				return nil, fmt.Errorf("pet: entry (%d,%d) missing", ti, mi)
			}
		}
	}
	return m, nil
}

// Perturbed returns a copy of the matrix whose ground-truth execution
// distributions (the ones SampleExec draws from) have their means scaled by
// a per-entry factor in [1-drift, 1+drift], while the *profiled* PMFs (what
// the scheduler believes) stay untouched. This models PET staleness: the
// world moved, the profile did not. The rng must be deterministic for
// reproducible experiments.
func (m *Matrix) Perturbed(drift float64, rng interface{ UniformRange(lo, hi float64) float64 }) *Matrix {
	if drift < 0 {
		panic(fmt.Sprintf("pet: negative drift %v", drift))
	}
	out := &Matrix{entries: make([][]Entry, len(m.entries))}
	for ti := range m.entries {
		out.entries[ti] = make([]Entry, len(m.entries[ti]))
		for mi, e := range m.entries[ti] {
			factor := rng.UniformRange(1-drift, 1+drift)
			if factor < 0.05 {
				factor = 0.05
			}
			out.entries[ti][mi] = Entry{
				PMF:   e.PMF, // scheduler's (stale) belief
				Prof:  e.Prof,
				Mean:  e.Mean * factor, // the world's new truth
				Shape: e.Shape,
			}
		}
	}
	return out
}
