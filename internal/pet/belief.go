package pet

import (
	"taskprune/internal/pmf"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// This file holds the imperfect-knowledge Views. The Matrix itself is the
// oracle belief (belief ≡ truth); FrozenBelief schedules on the nominal
// t=0 profile forever, and OnlineBelief re-learns per-cell PMFs from
// observed completions. Neither is safe for concurrent use — unlike the
// Matrix, which is shared across a whole experiment's trials, a belief is
// owned by exactly one simulator goroutine, so its caches take no locks.

// FrozenBelief serves the ground-truth matrix as it looked at t=0: every
// lookup ignores the machine's reported degradation factor and answers
// with the nominal (factor-1) entry. Under a static scenario this is
// indistinguishable from the oracle; under degrade/drift events it is the
// stale-PET mapper the robustness study measures — the truth moves, the
// belief does not.
type FrozenBelief struct {
	truth *Matrix
}

// NewFrozenBelief pins a belief to truth's t=0 nominal profile.
func NewFrozenBelief(truth *Matrix) *FrozenBelief {
	return &FrozenBelief{truth: truth}
}

// NumTypes returns the number of task types.
func (b *FrozenBelief) NumTypes() int { return b.truth.NumTypes() }

// NumMachines returns the number of machines.
func (b *FrozenBelief) NumMachines() int { return b.truth.NumMachines() }

// ScaledEntry answers with the nominal entry regardless of factor.
func (b *FrozenBelief) ScaledEntry(t task.Type, mi int, factor float64) *Entry {
	return b.truth.ScaledEntry(t, mi, 1)
}

// ScaledPMF is ScaledEntry's PMF.
func (b *FrozenBelief) ScaledPMF(t task.Type, mi int, factor float64) *pmf.PMF {
	return b.truth.ScaledPMF(t, mi, 1)
}

// ScaledProfile is ScaledEntry's profile.
func (b *FrozenBelief) ScaledProfile(t task.Type, mi int, factor float64) *pmf.Profile {
	return b.truth.ScaledProfile(t, mi, 1)
}

// ScaledEstMean is ScaledEntry's profiled mean.
func (b *FrozenBelief) ScaledEstMean(t task.Type, mi int, factor float64) float64 {
	return b.truth.ScaledEstMean(t, mi, 1)
}

// RemainingEntry conditions the nominal entry on consumed nominal ticks.
func (b *FrozenBelief) RemainingEntry(t task.Type, mi int, factor float64, consumed int64) *Entry {
	return b.truth.RemainingEntry(t, mi, 1, consumed)
}

var _ View = (*FrozenBelief)(nil)

// onlineCell is one (task type, machine) estimator: a streaming histogram
// of observed wall-clock execution durations plus the PMF most recently
// rebuilt from it. Until the sample floor is met the cell is unlearned and
// lookups fall back to the prior.
type onlineCell struct {
	hist         *stats.StreamHist
	entry        *Entry           // learned entry; nil until minSamples reached
	sinceRebuild int              // observations since entry was last rebuilt
	remaining    map[int64]*Entry // learned entry conditioned per scaled-consumed
}

// maxOnlineRemaining bounds each cell's conditioned cache; it is cleared
// wholesale on every rebuild anyway, so the bound only matters within one
// refresh window.
const maxOnlineRemaining = 64

// OnlineBelief re-estimates the PET from observed completions. Each
// (type, machine) cell streams full-execution wall durations into a
// bounded StreamHist; once a cell has minSamples observations its belief
// PMF is rebuilt from the histogram — and rebuilt again every refresh
// observations thereafter — replacing the prior for every lookup of that
// cell. Because observed durations are wall-clock they already embody
// whatever degradation the machine actually suffers, so learned lookups
// ignore the reported factor the way FrozenBelief does; the difference is
// that here the belief converges to the moved truth instead of staying at
// t=0. Unlearned cells serve the prior's nominal entries, making a cold
// OnlineBelief behave exactly like a FrozenBelief of its prior.
//
// Not safe for concurrent use: one instance per simulator.
type OnlineBelief struct {
	prior        *Matrix
	refresh      int // observations between rebuilds of a learned cell
	minSamples   int // observations before a cell's first rebuild
	bins         int // StreamHist bins per cell
	cells        [][]onlineCell
	observations int64 // total observations fed
	refreshes    int64 // total cell rebuilds
}

// NewOnlineBelief returns a cold online belief over prior's shape.
// refresh, minSamples, and bins must be positive.
func NewOnlineBelief(prior *Matrix, refresh, minSamples, bins int) *OnlineBelief {
	if refresh <= 0 || minSamples <= 0 || bins < 2 {
		panic("pet: OnlineBelief needs positive refresh/minSamples and at least two bins")
	}
	cells := make([][]onlineCell, prior.NumTypes())
	for t := range cells {
		cells[t] = make([]onlineCell, prior.NumMachines())
	}
	return &OnlineBelief{prior: prior, refresh: refresh, minSamples: minSamples, bins: bins, cells: cells}
}

// Observe feeds one completed full execution of type tt on machine mi that
// took wall ticks of machine time (net of checkpoint pauses, no banked
// prior progress). It reports whether the cell's belief PMF was rebuilt —
// the caller's cue to invalidate per-machine evaluation caches.
func (b *OnlineBelief) Observe(tt task.Type, mi int, wall int64) bool {
	c := &b.cells[tt][mi]
	if c.hist == nil {
		c.hist = stats.NewStreamHist(b.bins)
	}
	c.hist.Add(float64(wall))
	c.sinceRebuild++
	b.observations++
	if c.hist.Count() < int64(b.minSamples) {
		return false
	}
	if c.entry != nil && c.sinceRebuild < b.refresh {
		return false
	}
	p := pmf.FromHistogram(c.hist.Snapshot())
	base := b.prior.ScaledEntry(tt, mi, 1)
	c.entry = &Entry{PMF: p, Prof: pmf.NewProfile(p), Mean: p.Mean(), Shape: base.Shape}
	c.remaining = nil
	c.sinceRebuild = 0
	b.refreshes++
	return true
}

// NumTypes returns the number of task types.
func (b *OnlineBelief) NumTypes() int { return b.prior.NumTypes() }

// NumMachines returns the number of machines.
func (b *OnlineBelief) NumMachines() int { return b.prior.NumMachines() }

// ScaledEntry returns the learned entry for the cell, or the prior's
// nominal entry while the cell is unlearned. The learned distribution is
// in wall ticks and already absorbs the machine's true degradation, so the
// reported factor is ignored.
func (b *OnlineBelief) ScaledEntry(t task.Type, mi int, factor float64) *Entry {
	if e := b.cells[t][mi].entry; e != nil {
		return e
	}
	return b.prior.ScaledEntry(t, mi, 1)
}

// ScaledPMF is ScaledEntry's PMF.
func (b *OnlineBelief) ScaledPMF(t task.Type, mi int, factor float64) *pmf.PMF {
	return b.ScaledEntry(t, mi, factor).PMF
}

// ScaledProfile is ScaledEntry's profile.
func (b *OnlineBelief) ScaledProfile(t task.Type, mi int, factor float64) *pmf.Profile {
	return b.ScaledEntry(t, mi, factor).Prof
}

// ScaledEstMean is ScaledEntry's profiled mean.
func (b *OnlineBelief) ScaledEstMean(t task.Type, mi int, factor float64) float64 {
	return b.ScaledEntry(t, mi, factor).PMF.Mean()
}

// RemainingEntry conditions the believed entry on consumed nominal ticks
// of banked progress. For a learned cell the belief PMF is in wall ticks,
// so the nominal progress is re-expressed through the reported factor
// before conditioning; conditioned entries are cached per cell until the
// next rebuild discards them.
func (b *OnlineBelief) RemainingEntry(t task.Type, mi int, factor float64, consumed int64) *Entry {
	if consumed <= 0 {
		return b.ScaledEntry(t, mi, factor)
	}
	c := &b.cells[t][mi]
	if c.entry == nil {
		return b.prior.RemainingEntry(t, mi, 1, consumed)
	}
	scaled := pmf.ScaleDur(consumed, factor)
	if e := c.remaining[scaled]; e != nil {
		return e
	}
	p := c.entry.PMF.RemainingAfter(scaled)
	e := &Entry{PMF: p, Prof: pmf.NewProfile(p), Mean: p.Mean(), Shape: c.entry.Shape}
	if len(c.remaining) < maxOnlineRemaining {
		if c.remaining == nil {
			c.remaining = make(map[int64]*Entry)
		}
		c.remaining[scaled] = e
	}
	return e
}

// Observations returns how many completions have been fed in.
func (b *OnlineBelief) Observations() int64 { return b.observations }

// Refreshes returns how many cell rebuilds those observations triggered.
func (b *OnlineBelief) Refreshes() int64 { return b.refreshes }

// CellMean returns the believed mean execution of type t on machine mi —
// the learned mean once the cell has rebuilt, the prior's nominal mean
// before — plus whether the cell is learned. Convergence tests compare it
// against the moved truth.
func (b *OnlineBelief) CellMean(t task.Type, mi int) (mean float64, learned bool) {
	if e := b.cells[t][mi].entry; e != nil {
		return e.Mean, true
	}
	return b.prior.ScaledEstMean(t, mi, 1), false
}

var _ View = (*OnlineBelief)(nil)
