package pet

import (
	"taskprune/internal/pmf"
	"taskprune/internal/task"
)

// View is the read interface every scheduling decision consumes: the
// execution-time distributions a mapper *believes*, as opposed to the
// ground-truth Matrix that drives TrueExec sampling and actual completion
// times. The Matrix itself implements View — the oracle belief, and the
// engine's historical behaviour — while FrozenBelief and OnlineBelief
// serve deliberately imperfect knowledge for the robustness-under-
// stale-PET studies. Every method mirrors the Matrix method of the same
// name, so routing decisions through a View instead of the Matrix is pure
// interface dispatch: no wrapper allocation, and with the Matrix as the
// View the results are bit-identical.
//
// The factor argument is the machine's currently reported degradation
// factor; consumed is the task's banked progress in *nominal* execution
// ticks (task.Task.Consumed). How a belief interprets either — trusting
// them, ignoring them, or substituting learned estimates — is the belief's
// model of the world.
type View interface {
	// NumTypes returns the number of task types.
	NumTypes() int
	// NumMachines returns the number of machines (PET columns).
	NumMachines() int
	// ScaledEntry returns the believed entry of type t on machine mi under
	// speed factor (1 = nominal).
	ScaledEntry(t task.Type, mi int, factor float64) *Entry
	// ScaledPMF is ScaledEntry's PMF.
	ScaledPMF(t task.Type, mi int, factor float64) *pmf.PMF
	// ScaledProfile is ScaledEntry's prefix-sum profile.
	ScaledProfile(t task.Type, mi int, factor float64) *pmf.Profile
	// ScaledEstMean is ScaledEntry's profiled mean (what a scalar
	// heuristic believes the execution costs).
	ScaledEstMean(t task.Type, mi int, factor float64) float64
	// RemainingEntry is ScaledEntry conditioned on consumed nominal ticks
	// of banked progress (X−c | X>c in the factor's time base); consumed
	// <= 0 is exactly ScaledEntry.
	RemainingEntry(t task.Type, mi int, factor float64, consumed int64) *Entry
}

// The Matrix is the oracle View: belief ≡ truth.
var _ View = (*Matrix)(nil)
