package pet

import (
	"math"
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

func testMatrix(t *testing.T) *Matrix {
	t.Helper()
	cfg := DefaultBuildConfig()
	cfg.Samples = 200 // keep unit tests fast
	m, err := Build(SPECLikeMeans(), cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestBuildDimensions(t *testing.T) {
	m := testMatrix(t)
	if got := m.NumTypes(); got != SPECNumTypes {
		t.Errorf("NumTypes = %d, want %d", got, SPECNumTypes)
	}
	if got := m.NumMachines(); got != SPECNumMachines {
		t.Errorf("NumMachines = %d, want %d", got, SPECNumMachines)
	}
}

func TestBuildEntriesNormalized(t *testing.T) {
	m := testMatrix(t)
	for ti := 0; ti < m.NumTypes(); ti++ {
		for mi := 0; mi < m.NumMachines(); mi++ {
			p := m.PMF(task.Type(ti), mi)
			if math.Abs(p.Mass()-1) > 1e-9 {
				t.Errorf("entry (%d,%d) mass = %v, want 1", ti, mi, p.Mass())
			}
			if p.Start() < 1 {
				t.Errorf("entry (%d,%d) has execution time < 1 tick", ti, mi)
			}
			if p.NumImpulses() > DefaultBuildConfig().MaxImpulses {
				t.Errorf("entry (%d,%d) has %d impulses, want <= %d", ti, mi, p.NumImpulses(), DefaultBuildConfig().MaxImpulses)
			}
		}
	}
}

func TestProfiledMeanNearTruth(t *testing.T) {
	m := testMatrix(t)
	for ti := 0; ti < m.NumTypes(); ti++ {
		for mi := 0; mi < m.NumMachines(); mi++ {
			truth := m.Mean(task.Type(ti), mi)
			est := m.EstMean(task.Type(ti), mi)
			// A few hundred gamma samples with shape as low as 1 (high
			// variance): the histogram mean should land within ~25% of
			// the ground truth.
			if math.Abs(est-truth) > 0.25*truth {
				t.Errorf("entry (%d,%d): profiled mean %v vs truth %v", ti, mi, est, truth)
			}
		}
	}
}

func TestProfileMatchesPMF(t *testing.T) {
	m := testMatrix(t)
	p := m.PMF(0, 0)
	prof := m.Profile(0, 0)
	if prof.PMF() != p {
		t.Error("Profile wraps a different PMF instance")
	}
	if math.Abs(prof.Mean()-p.Mean()) > 1e-9 {
		t.Errorf("profile mean %v != pmf mean %v", prof.Mean(), p.Mean())
	}
}

func TestSampleExecPositive(t *testing.T) {
	m := testMatrix(t)
	rng := stats.NewRNG(5)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := m.SampleExec(rng, 0, 0)
		if v < 1 {
			t.Fatalf("SampleExec returned %d < 1", v)
		}
		sum += float64(v)
	}
	truth := m.Mean(0, 0)
	if mean := sum / n; math.Abs(mean-truth) > 0.15*truth {
		t.Errorf("SampleExec mean %v, want ≈ %v", mean, truth)
	}
}

func TestTypeAndGrandMeans(t *testing.T) {
	m := testMatrix(t)
	var total float64
	for ti := 0; ti < m.NumTypes(); ti++ {
		tm := m.TypeMeanAcrossMachines(task.Type(ti))
		var rowSum float64
		for mi := 0; mi < m.NumMachines(); mi++ {
			rowSum += m.Mean(task.Type(ti), mi)
		}
		if math.Abs(tm-rowSum/float64(m.NumMachines())) > 1e-9 {
			t.Errorf("TypeMeanAcrossMachines(%d) = %v, want %v", ti, tm, rowSum/8)
		}
		total += rowSum
	}
	want := total / float64(m.NumTypes()*m.NumMachines())
	if got := m.GrandMean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("GrandMean = %v, want %v", got, want)
	}
}

func TestBestMachine(t *testing.T) {
	m := testMatrix(t)
	for ti := 0; ti < m.NumTypes(); ti++ {
		best := m.BestMachine(task.Type(ti))
		for mi := 0; mi < m.NumMachines(); mi++ {
			if m.Mean(task.Type(ti), mi) < m.Mean(task.Type(ti), best) {
				t.Errorf("type %d: machine %d beats reported best %d", ti, mi, best)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	cfg := DefaultBuildConfig()
	cases := []struct {
		name  string
		means [][]float64
		cfg   BuildConfig
	}{
		{"empty", nil, cfg},
		{"empty row", [][]float64{{}}, cfg},
		{"ragged", [][]float64{{1, 2}, {1}}, cfg},
		{"non-positive mean", [][]float64{{10, -1}}, cfg},
		{"zero samples", [][]float64{{10}}, BuildConfig{Samples: 0, Bins: 4, ShapeLo: 1, ShapeHi: 2}},
		{"bad shapes", [][]float64{{10}}, BuildConfig{Samples: 10, Bins: 4, ShapeLo: 5, ShapeHi: 2}},
	}
	for _, c := range cases {
		if _, err := Build(c.means, c.cfg, rng); err == nil {
			t.Errorf("%s: Build accepted invalid input", c.name)
		}
	}
}

func TestSPECLikeMeansProperties(t *testing.T) {
	means := SPECLikeMeans()
	if len(means) != SPECNumTypes {
		t.Fatalf("rows = %d, want %d", len(means), SPECNumTypes)
	}
	for ti, row := range means {
		if len(row) != SPECNumMachines {
			t.Fatalf("row %d has %d machines, want %d", ti, len(row), SPECNumMachines)
		}
		for mi, v := range row {
			if v < 50 || v > 200 {
				t.Errorf("mean (%d,%d) = %v outside the paper's [50,200] range", ti, mi, v)
			}
		}
	}
	// Determinism: two calls must agree exactly.
	again := SPECLikeMeans()
	for ti := range means {
		for mi := range means[ti] {
			if means[ti][mi] != again[ti][mi] {
				t.Fatal("SPECLikeMeans is not deterministic")
			}
		}
	}
}

// TestSPECLikeMeansInconsistent verifies inconsistent heterogeneity: no
// machine dominates all task types (the defining property of the paper's
// system model).
func TestSPECLikeMeansInconsistent(t *testing.T) {
	means := SPECLikeMeans()
	winners := map[int]bool{}
	for _, row := range means {
		best, bestV := 0, row[0]
		for mi, v := range row {
			if v < bestV {
				best, bestV = mi, v
			}
		}
		winners[best] = true
	}
	if len(winners) < 2 {
		t.Errorf("a single machine wins every task type (consistent heterogeneity); winners = %v", winners)
	}
}

func TestVideoMeansShape(t *testing.T) {
	means := VideoMeans()
	if len(means) != VideoNumTypes || len(means[0]) != VideoNumMachines {
		t.Fatalf("video matrix is %dx%d, want %dx%d", len(means), len(means[0]), VideoNumTypes, VideoNumMachines)
	}
	// GPU-friendly types must be fastest on the GPU column; the
	// memory-bound type must not be.
	if !(means[0][VideoGPU] < means[0][VideoCPUOptimized]) {
		t.Error("resolution transcode should prefer the GPU VM")
	}
	if !(means[1][VideoGPU] < means[1][VideoGeneralPurpose]) {
		t.Error("codec transcode should prefer the GPU VM")
	}
	if !(means[2][VideoMemOptimized] < means[2][VideoGPU]) {
		t.Error("bitrate transcode should prefer the memory-optimized VM")
	}
	if len(VideoTypeNames) != VideoNumTypes || len(VideoMachineNames) != VideoNumMachines {
		t.Error("video name tables out of sync with dimensions")
	}
}
