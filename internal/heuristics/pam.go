package heuristics

import (
	"taskprune/internal/task"
)

// PAM is the paper's Pruning-Aware Mapper (Section V-D1). Phase one pairs
// each unmapped task with the machine offering the highest robustness;
// tasks whose best robustness falls below the deferring threshold are
// pruned (returned to the batch queue). Phase two commits the pair with
// the lowest expected completion time, breaking ties by shortest expected
// execution time. The dropping stage of the pruning mechanism runs in the
// simulator before Map is called (UsesPruning reports true).
type PAM struct{}

// Name implements Heuristic.
func (PAM) Name() string { return "PAM" }

// UsesPruning implements Heuristic.
func (PAM) UsesPruning() bool { return true }

// Map implements Heuristic.
func (PAM) Map(ctx *Context, batch []*task.Task) Result {
	return pruningMap(ctx, batch)
}

// PAMF is the Fair Pruning Mapper (Section V-D2): PAM plus per-task-type
// sufferage values that relax both pruning thresholds for types that have
// been suffering misses. The sufferage bookkeeping lives in the
// FairnessTracker the simulator exposes via the Context; the mapping logic
// is otherwise identical to PAM.
type PAMF struct{}

// Name implements Heuristic.
func (PAMF) Name() string { return "PAMF" }

// UsesPruning implements Heuristic.
func (PAMF) UsesPruning() bool { return true }

// Map implements Heuristic.
func (PAMF) Map(ctx *Context, batch []*task.Task) Result {
	return pruningMap(ctx, batch)
}

type pamPair struct {
	taskIdx int
	machine int
	ev      fastEval
}

// expFreeTieEps is the absolute tolerance under which two expected
// machine-free times count as tied in phase two. Expected-free values are
// sums of tail-scan products whose exact bits depend on evaluation
// history; an epsilon band (plus the deterministic expected-execution and
// task-ID orderings below it) guarantees cached and freshly computed
// evaluations pick the same winner.
const expFreeTieEps = 1e-9

// pruningMap is the shared PAM/PAMF mapping loop.
func pruningMap(ctx *Context, batch []*task.Task) Result {
	st := newProbState(ctx)
	out := st.cache.newResult()
	defer func() { st.cache.keepResult(&out) }()
	remaining := st.cache.takeRemaining(batch)
	defer func() { st.cache.putRemaining(remaining) }()
	deferred := st.cache.deferred
	clear(deferred)

	for totalFreeSlots(ctx.Machines) > 0 && len(remaining) > 0 {
		// Phase 1: best machine by robustness; defer sub-threshold tasks.
		// Deferral is decided first so that pair indices refer to the
		// post-deferral (kept) task list.
		kept := remaining[:0]
		for _, t := range remaining {
			_, ev, ok := st.bestByRobustness(ctx, t)
			if !ok {
				kept = append(kept, t) // no free slot anywhere; keep as-is
				continue
			}
			if ctx.Pruner != nil && ctx.Pruner.ShouldDefer(ev.success, ctx.sufferage(t.Type)) {
				if !deferred[t.ID] {
					deferred[t.ID] = true
					out.Deferred = append(out.Deferred, t)
					t.Defers++
				}
				continue
			}
			kept = append(kept, t)
		}
		remaining = kept
		pairs := st.cache.pairs[:0]
		for i, t := range remaining {
			mi, ev, ok := st.bestByRobustness(ctx, t)
			if !ok {
				break
			}
			pairs = append(pairs, pamPair{taskIdx: i, machine: mi, ev: ev})
		}
		st.cache.pairs = pairs[:0]
		if len(pairs) == 0 {
			break
		}
		// Phase 2: commit the minimum expected-completion pair. Ties — judged
		// within expFreeTieEps, not by exact float equality — break by
		// shortest expected execution time, then by task ID, so the winner
		// never depends on the float dust of evaluation order.
		best := 0
		for i := 1; i < len(pairs); i++ {
			a, b := pairs[i], pairs[best]
			switch {
			case a.ev.expFree < b.ev.expFree-expFreeTieEps:
				best = i
			case a.ev.expFree < b.ev.expFree+expFreeTieEps:
				ta, tb := remaining[a.taskIdx], remaining[b.taskIdx]
				ea, eb := ctx.TaskExecMean(ta, a.machine), ctx.TaskExecMean(tb, b.machine)
				if ea < eb || (ea == eb && ta.ID < tb.ID) {
					best = i
				}
			}
		}
		chosen := pairs[best]
		t := remaining[chosen.taskIdx]
		st.commit(ctx, t, chosen.machine)
		out.Assigned = append(out.Assigned, t)
		remaining = removeTask(remaining, chosen.taskIdx)
	}
	return out
}
