// Package heuristics implements the paper's six batch mapping heuristics:
// the baselines MM (MinCompletion-MinCompletion), MSD
// (MinCompletion-SoonestDeadline), MMU (MinCompletion-MaxUrgency) and MOC
// (Max Ontime Completions), plus the paper's contributions PAM
// (Pruning-Aware Mapper) and PAMF (Fair Pruning Mapper).
//
// All heuristics are two-phase batch mappers (Section V-D): phase one finds
// the best machine for every unmapped task by a per-heuristic objective;
// phase two repeatedly commits the best task-machine pair to that machine's
// (virtual) queue until machine queues are full or the batch is exhausted.
package heuristics

import (
	"fmt"

	"taskprune/internal/machine"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/task"
)

// Context is the system state a heuristic sees at one mapping event.
type Context struct {
	Now         int64
	Machines    []*machine.Machine
	PET         *pet.Matrix
	Mode        pmf.DropMode // governs completion-time convolution semantics
	MaxImpulses int          // PMF compaction bound (0 = none)

	// Pruner is consulted by pruning-aware heuristics for deferring
	// decisions; nil for baselines.
	Pruner *pruner.Pruner
	// Fairness supplies per-type sufferage values for PAMF; nil otherwise.
	Fairness *pruner.FairnessTracker
}

// sufferage returns the current sufferage for a task type, or 0 when no
// fairness tracking is active.
func (c *Context) sufferage(t task.Type) float64 {
	if c.Fairness == nil {
		return 0
	}
	return c.Fairness.Sufferage(t)
}

// Result reports what a mapping event did.
type Result struct {
	// Assigned tasks were enqueued onto machines (already committed).
	Assigned []*task.Task
	// Deferred tasks were considered but held back by the pruner; they
	// remain in the batch queue.
	Deferred []*task.Task
	// Culled tasks were removed from the system by the heuristic itself
	// (MOC's sub-threshold culling — the paper: tasks are "mapped or
	// dropped"). The simulator exits them as dropped.
	Culled []*task.Task
}

// Heuristic is a batch mapping policy.
type Heuristic interface {
	// Name returns the short label used in figures ("PAM", "MM", ...).
	Name() string
	// UsesPruning reports whether the simulator should run the dropping
	// stage of the pruning mechanism for this heuristic.
	UsesPruning() bool
	// Map assigns tasks from batch (all unexpired, unmapped) onto
	// ctx.Machines, enqueueing directly, and reports what happened.
	Map(ctx *Context, batch []*task.Task) Result
}

// New constructs a heuristic by figure label. Recognized names: MM, MSD,
// MMU, MOC, PAM, PAMF.
func New(name string) (Heuristic, error) {
	switch name {
	case "MM":
		return MM{}, nil
	case "MSD":
		return MSD{}, nil
	case "MMU":
		return MMU{}, nil
	case "MOC":
		return NewMOC(DefaultMOCThreshold), nil
	case "PAM":
		return PAM{}, nil
	case "PAMF":
		return PAMF{}, nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
	}
}

// AllNames lists every heuristic label in the order the paper's figures use.
func AllNames() []string { return []string{"PAM", "PAMF", "MOC", "MM", "MSD", "MMU"} }

// totalFreeSlots sums free queue slots across machines.
func totalFreeSlots(ms []*machine.Machine) int {
	n := 0
	for _, m := range ms {
		n += m.FreeSlots()
	}
	return n
}

// scalarState tracks expected machine-ready times for the scalar baselines;
// it is updated incrementally as phase two commits assignments.
type scalarState struct {
	ready []float64
}

func newScalarState(ctx *Context) *scalarState {
	s := &scalarState{ready: make([]float64, len(ctx.Machines))}
	for i, m := range ctx.Machines {
		s.ready[i] = m.ExpectedReady(ctx.Now, ctx.PET)
	}
	return s
}

// ect returns the expected completion time of task t on machine mi.
func (s *scalarState) ect(ctx *Context, t *task.Task, mi int) float64 {
	return s.ready[mi] + ctx.PET.EstMean(t.Type, mi)
}

// bestMachine returns the machine index minimizing expected completion time
// among machines with free slots; ok is false when no machine has room.
func (s *scalarState) bestMachine(ctx *Context, t *task.Task) (mi int, ect float64, ok bool) {
	best := -1
	var bestECT float64
	for i, m := range ctx.Machines {
		if m.FreeSlots() <= 0 {
			continue
		}
		e := s.ect(ctx, t, i)
		if best == -1 || e < bestECT {
			best, bestECT = i, e
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestECT, true
}

// commit enqueues t on machine mi and advances the expected ready time.
func (s *scalarState) commit(ctx *Context, t *task.Task, mi int) {
	if err := ctx.Machines[mi].Enqueue(t); err != nil {
		panic(fmt.Sprintf("heuristics: commit to full machine %d: %v", mi, err))
	}
	s.ready[mi] += ctx.PET.EstMean(t.Type, mi)
}

// probState tracks machine tail free-time PMFs for the robustness-based
// heuristics (MOC, PAM, PAMF), updated incrementally on commit.
//
// Phase one needs only two scalars per (task, machine) pair — success
// probability and expected machine-free time — which the PET's prefix-sum
// profiles yield in O(|tail|) without materializing a convolution
// (pmf.DropSuccess / pmf.DropExpectedFree). Full convolutions happen only
// when a pair is committed, to produce the machine's next tail PMF.
// Evaluations are additionally cached per task and invalidated per machine
// by generation counter, since a commit perturbs exactly one tail.
type probState struct {
	tails []*pmf.PMF
	gen   []uint32
	cache map[*task.Task]*taskEval
}

// fastEval is a cached phase-one evaluation of one (task, machine) pair.
type fastEval struct {
	success float64
	expFree float64
}

type taskEval struct {
	res []fastEval
	gen []uint32
	has []bool
}

func newProbState(ctx *Context) *probState {
	s := &probState{
		tails: make([]*pmf.PMF, len(ctx.Machines)),
		gen:   make([]uint32, len(ctx.Machines)),
		cache: make(map[*task.Task]*taskEval),
	}
	for i, m := range ctx.Machines {
		s.tails[i] = m.FreeTimePMF(ctx.Now, ctx.PET, ctx.Mode, ctx.MaxImpulses)
	}
	return s
}

// evaluate returns the (cached) fast evaluation of task t on machine mi.
func (s *probState) evaluate(ctx *Context, t *task.Task, mi int) fastEval {
	te := s.cache[t]
	if te == nil {
		n := len(ctx.Machines)
		te = &taskEval{res: make([]fastEval, n), gen: make([]uint32, n), has: make([]bool, n)}
		s.cache[t] = te
	}
	if te.has[mi] && te.gen[mi] == s.gen[mi] {
		return te.res[mi]
	}
	prof := ctx.PET.Profile(t.Type, mi)
	r := fastEval{
		success: pmf.DropSuccess(s.tails[mi], prof, t.Deadline),
		expFree: pmf.DropExpectedFree(s.tails[mi], prof, t.Deadline, ctx.Mode),
	}
	te.res[mi], te.gen[mi], te.has[mi] = r, s.gen[mi], true
	return r
}

// bestByRobustness returns the free-slot machine maximizing the task's
// success probability, together with the evaluation; ok is false when no
// machine has room. Ties (common once robustness saturates at 1.0 on
// several machines) break toward the earliest expected completion —
// without this, every saturated task would pile onto the lowest-indexed
// machine.
func (s *probState) bestByRobustness(ctx *Context, t *task.Task) (mi int, ev fastEval, ok bool) {
	const tieEps = 1e-9
	best := -1
	var bestEv fastEval
	for i, m := range ctx.Machines {
		if m.FreeSlots() <= 0 {
			continue
		}
		r := s.evaluate(ctx, t, i)
		switch {
		case best == -1 || r.success > bestEv.success+tieEps:
			best, bestEv = i, r
		case r.success > bestEv.success-tieEps && r.expFree < bestEv.expFree:
			best, bestEv = i, r
		}
	}
	if best == -1 {
		return 0, fastEval{}, false
	}
	return best, bestEv, true
}

// commit enqueues t on machine mi, folds its execution into the tail with
// one full dropping-aware convolution, and invalidates cached evaluations
// against that machine.
func (s *probState) commit(ctx *Context, t *task.Task, mi int) {
	if err := ctx.Machines[mi].Enqueue(t); err != nil {
		panic(fmt.Sprintf("heuristics: commit to full machine %d: %v", mi, err))
	}
	res := pmf.ConvolveDrop(s.tails[mi], ctx.PET.PMF(t.Type, mi), t.Deadline, ctx.Mode)
	s.tails[mi] = pmf.Compact(res.Free, ctx.MaxImpulses)
	s.gen[mi]++
	delete(s.cache, t)
}

// removeTask deletes the element at index i from ts, order-preserving.
func removeTask(ts []*task.Task, i int) []*task.Task {
	return append(ts[:i], ts[i+1:]...)
}
