// Package heuristics implements the paper's six batch mapping heuristics:
// the baselines MM (MinCompletion-MinCompletion), MSD
// (MinCompletion-SoonestDeadline), MMU (MinCompletion-MaxUrgency) and MOC
// (Max Ontime Completions), plus the paper's contributions PAM
// (Pruning-Aware Mapper) and PAMF (Fair Pruning Mapper).
//
// All heuristics are two-phase batch mappers (Section V-D): phase one finds
// the best machine for every unmapped task by a per-heuristic objective;
// phase two repeatedly commits the best task-machine pair to that machine's
// (virtual) queue until machine queues are full or the batch is exhausted.
package heuristics

import (
	"fmt"

	"taskprune/internal/machine"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/task"
)

// Context is the system state a heuristic sees at one mapping event.
type Context struct {
	Now         int64
	Machines    []*machine.Machine
	PET         pet.View
	Mode        pmf.DropMode // governs completion-time convolution semantics
	MaxImpulses int          // PMF compaction bound (0 = none)

	// Pruner is consulted by pruning-aware heuristics for deferring
	// decisions; nil for baselines.
	Pruner *pruner.Pruner
	// Fairness supplies per-type sufferage values for PAMF; nil otherwise.
	Fairness *pruner.FairnessTracker

	// Arena, when non-nil, supplies scratch storage for every intermediate
	// PMF a mapping event builds. The caller (the simulator) resets it
	// between events; heuristics must not let arena-backed PMFs escape Map.
	Arena *pmf.Arena
	// Cache, when non-nil, carries the evaluation cache across mapping
	// events so its storage is reused instead of reallocated. A nil Cache
	// makes Map build a private one (tests, direct library use).
	Cache *EvalCache
	// NaiveEval disables the evaluation cache and the cross-event tail
	// memo: every machine tail is rebuilt from its queue at every event and
	// every phase-one scalar is recomputed on every commit round. Results
	// are identical by construction (the equivalence tests assert it); the
	// only difference is O(rounds × tasks × machines) work instead of
	// O(tasks × machines + rounds × tasks). Used by tests and ablations.
	NaiveEval bool
}

// sufferage returns the current sufferage for a task type, or 0 when no
// fairness tracking is active.
func (c *Context) sufferage(t task.Type) float64 {
	if c.Fairness == nil {
		return 0
	}
	return c.Fairness.Sufferage(t)
}

// ExecPMF returns the execution-time PMF of type tt on the machine at fleet
// position mi under that machine's current speed factor. The PET column is
// the machine's ID, not its slice position: a cluster datacenter runs on a
// partition of the PET's columns, so its machines keep their global IDs
// while occupying positions 0..len(Machines)-1. On a whole-fleet run the
// two coincide, and on a nominal-speed machine the result is exactly the
// PET entry, so the static single-fleet path is untouched.
func (c *Context) ExecPMF(tt task.Type, mi int) *pmf.PMF {
	m := c.Machines[mi]
	return c.PET.ScaledPMF(tt, m.ID, m.Speed())
}

// ExecProfile returns the prefix-sum execution profile of type tt on the
// machine at fleet position mi under its current speed factor (PET column
// = machine ID, as in ExecPMF).
func (c *Context) ExecProfile(tt task.Type, mi int) *pmf.Profile {
	m := c.Machines[mi]
	return c.PET.ScaledProfile(tt, m.ID, m.Speed())
}

// ExecMean returns the profiled mean execution time of type tt on the
// machine at fleet position mi under its current speed factor (PET column
// = machine ID, as in ExecPMF).
func (c *Context) ExecMean(tt task.Type, mi int) float64 {
	m := c.Machines[mi]
	return c.PET.ScaledEstMean(tt, m.ID, m.Speed())
}

// TaskExecPMF returns the execution-time PMF task t owes on the machine at
// fleet position mi: the type's (speed-scaled) PET entry, conditioned on
// the progress the task has already banked when it was restored from a
// checkpoint (t.Consumed > 0 in the batch queue). An unrestored task takes
// exactly the ExecPMF path, so checkpoint-free runs are bit-identical.
func (c *Context) TaskExecPMF(t *task.Task, mi int) *pmf.PMF {
	if t.Consumed == 0 {
		return c.ExecPMF(t.Type, mi)
	}
	m := c.Machines[mi]
	return c.PET.RemainingEntry(t.Type, m.ID, m.Speed(), t.Consumed).PMF
}

// TaskExecProfile is TaskExecPMF's prefix-sum profile (the phase-one
// evaluation form), conditioned the same way.
func (c *Context) TaskExecProfile(t *task.Task, mi int) *pmf.Profile {
	if t.Consumed == 0 {
		return c.ExecProfile(t.Type, mi)
	}
	m := c.Machines[mi]
	return c.PET.RemainingEntry(t.Type, m.ID, m.Speed(), t.Consumed).Prof
}

// TaskExecMean is the mean of TaskExecPMF: the expected remaining execution
// the scalar heuristics price a restored task at.
func (c *Context) TaskExecMean(t *task.Task, mi int) float64 {
	if t.Consumed == 0 {
		return c.ExecMean(t.Type, mi)
	}
	m := c.Machines[mi]
	return c.PET.RemainingEntry(t.Type, m.ID, m.Speed(), t.Consumed).Mean
}

// Result reports what a mapping event did. When the Context carries a
// persistent Cache, the three slices are backed by per-trial scratch
// storage: they stay valid only until the next Map call sharing that cache,
// which is all the simulator's event loop needs and what keeps the
// steady-state mapping path allocation-free over unbounded task streams.
type Result struct {
	// Assigned tasks were enqueued onto machines (already committed).
	Assigned []*task.Task
	// Deferred tasks were considered but held back by the pruner; they
	// remain in the batch queue.
	Deferred []*task.Task
	// Culled tasks were removed from the system by the heuristic itself
	// (MOC's sub-threshold culling — the paper: tasks are "mapped or
	// dropped"). The simulator exits them as dropped.
	Culled []*task.Task
}

// Heuristic is a batch mapping policy.
type Heuristic interface {
	// Name returns the short label used in figures ("PAM", "MM", ...).
	Name() string
	// UsesPruning reports whether the simulator should run the dropping
	// stage of the pruning mechanism for this heuristic.
	UsesPruning() bool
	// Map assigns tasks from batch (all unexpired, unmapped) onto
	// ctx.Machines, enqueueing directly, and reports what happened.
	Map(ctx *Context, batch []*task.Task) Result
}

// New constructs a heuristic by figure label. Recognized names: MM, MSD,
// MMU, MOC, PAM, PAMF.
func New(name string) (Heuristic, error) {
	switch name {
	case "MM":
		return MM{}, nil
	case "MSD":
		return MSD{}, nil
	case "MMU":
		return MMU{}, nil
	case "MOC":
		return NewMOC(DefaultMOCThreshold), nil
	case "PAM":
		return PAM{}, nil
	case "PAMF":
		return PAMF{}, nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
	}
}

// AllNames lists every heuristic label in the order the paper's figures use.
func AllNames() []string { return []string{"PAM", "PAMF", "MOC", "MM", "MSD", "MMU"} }

// totalFreeSlots sums free queue slots across machines.
func totalFreeSlots(ms []*machine.Machine) int {
	n := 0
	for _, m := range ms {
		n += m.FreeSlots()
	}
	return n
}

// EvalCache is the incremental mapping-event cache behind the
// robustness-based heuristics. It persists across mapping events (the
// simulator owns one per trial) so that the per-event working set — machine
// tail PMFs, per-(task, machine) phase-one evaluations, and the phase-two
// pair scratch — reaches a steady state with no heap allocation.
//
// Correctness rests on one invariant: a cached evaluation of task t on
// machine m is valid exactly while m's queue version (machine.Version) is
// unchanged within the current event epoch. Committing an assignment
// enqueues onto exactly one machine, bumping its version and thereby
// invalidating only that machine's column; every other cached evaluation
// stays live. That turns the O(rounds × tasks × machines) convolution bill
// of a naive mapper into O(tasks × machines + rounds × tasks).
type EvalCache struct {
	tails []*pmf.PMF // per-machine queue-tail free-time PMFs for this event

	// stamps[i] counts actual changes of machine i's tail distribution. A
	// cached evaluation is valid while its stamp matches: commits bump the
	// committed machine's stamp (one column), and between events the stamp
	// moves only when the tail memo below misses — so evaluations survive
	// whole stretches of mapping events during which a machine's queue and
	// conditioned head distribution are unchanged.
	stamps []uint64
	memo   []tailMemo

	evals map[int]*taskEval
	free  []*taskEval // recycled taskEval records

	// hits/misses count phase-one evaluation lookups served from (or
	// missing) the cache — plain counters the telemetry sampler mirrors at
	// sample boundaries, so the hot path stays free of probe handles.
	hits   int64
	misses int64

	// Scratch reused by the mapping loops.
	ready     []float64 // scalarState expected-ready times
	pairs     []pamPair
	mpairs    []mocPair
	remaining []*task.Task
	deferred  map[int]bool
	// Result backing slices, recycled across Map calls (see Result).
	assigned    []*task.Task
	deferredOut []*task.Task
	culled      []*task.Task
	// ps is the per-event probState, reused so Map allocates nothing for it.
	ps probState
}

// newResult returns a Result whose slices reuse c's scratch storage (empty
// but with the previous events' capacity); with a nil cache the slices
// start nil and grow on the heap as before.
func (c *EvalCache) newResult() Result {
	if c == nil {
		return Result{}
	}
	return Result{Assigned: c.assigned[:0], Deferred: c.deferredOut[:0], Culled: c.culled[:0]}
}

// keepResult stores a Result's (possibly regrown) backing slices back into
// the cache for the next event.
func (c *EvalCache) keepResult(out *Result) {
	if c == nil {
		return
	}
	c.assigned = out.Assigned
	c.deferredOut = out.Deferred
	c.culled = out.Culled
}

// tailMemo caches one machine's last computed queue-tail PMF across
// mapping events. The key pair (ver, key) pins everything the tail depends
// on: ver is the machine's queue version; key captures how the executing
// task's completion distribution is conditioned on the current clock — the
// tick of its first still-possible completion impulse, or −now once the
// chain head collapses onto an impulse at the clock (idle head, overdue
// task). While both match, recomputing the chain would reproduce the
// stored tail bit for bit, so it is skipped and the stamp stays put.
type tailMemo struct {
	valid   bool
	hasExec bool
	ver     uint64
	key     int64
	tail    pmf.PMF // persistent deep copy (storage reused via CopyFrom)
}

// NewEvalCache returns an empty cache, ready to be shared across the
// mapping events of one simulation trial. A cache is tied to one machine
// fleet and one convolution configuration (mode, compaction bound, PET);
// it is not safe for concurrent use — give each simulator its own.
func NewEvalCache() *EvalCache {
	return &EvalCache{evals: make(map[int]*taskEval), deferred: make(map[int]bool)}
}

// Hits returns how many phase-one evaluations were served from the cache.
func (c *EvalCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits
}

// Misses returns how many phase-one evaluations had to be computed.
func (c *EvalCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses
}

// Forget drops any cached evaluations for the given task ID, recycling the
// record. The simulator calls it when a task exits the system.
func (c *EvalCache) Forget(taskID int) {
	if c == nil {
		return
	}
	if te, ok := c.evals[taskID]; ok {
		delete(c.evals, taskID)
		c.free = append(c.free, te)
	}
}

// taskEval is one task's row of cached phase-one evaluations, one slot per
// machine, each stamped with the tail stamp it was computed against.
type taskEval struct {
	res []fastEval
	ver []uint64
	has []bool
}

// row returns the (possibly recycled) evaluation row for taskID, sized for
// n machines. A fresh or recycled row starts with every slot invalid; an
// existing row keeps its slots — stamp mismatches invalidate them lazily.
func (c *EvalCache) row(taskID, n int) *taskEval {
	te := c.evals[taskID]
	if te == nil {
		if k := len(c.free); k > 0 {
			te = c.free[k-1]
			c.free = c.free[:k-1]
		} else {
			te = &taskEval{}
		}
		c.evals[taskID] = te
		if cap(te.res) < n {
			te.res = make([]fastEval, n)
			te.ver = make([]uint64, n)
			te.has = make([]bool, n)
		} else {
			te.res = te.res[:n]
			te.ver = te.ver[:n]
			te.has = te.has[:n]
		}
		for i := range te.has {
			te.has[i] = false // recycled rows carry another task's slots
		}
	}
	return te
}

// scalarState tracks expected machine-ready times for the scalar baselines;
// it is updated incrementally as phase two commits assignments.
type scalarState struct {
	ready []float64
}

func newScalarState(ctx *Context) scalarState {
	var ready []float64
	if c := ctx.Cache; c != nil {
		if cap(c.ready) < len(ctx.Machines) {
			c.ready = make([]float64, len(ctx.Machines))
		}
		ready = c.ready[:len(ctx.Machines)]
	} else {
		ready = make([]float64, len(ctx.Machines))
	}
	s := scalarState{ready: ready}
	for i, m := range ctx.Machines {
		s.ready[i] = m.ExpectedReady(ctx.Now, ctx.PET)
	}
	return s
}

// takeRemaining copies the batch into the cache's recycled working slice
// (or a fresh one without a cache); putRemaining returns the storage.
func (c *EvalCache) takeRemaining(batch []*task.Task) []*task.Task {
	if c == nil {
		return append([]*task.Task(nil), batch...)
	}
	return append(c.remaining[:0], batch...)
}

func (c *EvalCache) putRemaining(r []*task.Task) {
	if c != nil {
		c.remaining = r[:0]
	}
}

// ect returns the expected completion time of task t on machine mi.
func (s *scalarState) ect(ctx *Context, t *task.Task, mi int) float64 {
	return s.ready[mi] + ctx.TaskExecMean(t, mi)
}

// bestMachine returns the machine index minimizing expected completion time
// among machines with free slots; ok is false when no machine has room.
func (s *scalarState) bestMachine(ctx *Context, t *task.Task) (mi int, ect float64, ok bool) {
	best := -1
	var bestECT float64
	for i, m := range ctx.Machines {
		if m.FreeSlots() <= 0 {
			continue
		}
		e := s.ect(ctx, t, i)
		if best == -1 || e < bestECT {
			best, bestECT = i, e
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestECT, true
}

// commit enqueues t on machine mi and advances the expected ready time.
func (s *scalarState) commit(ctx *Context, t *task.Task, mi int) {
	if err := ctx.Machines[mi].Enqueue(t); err != nil {
		panic(fmt.Sprintf("heuristics: commit to full machine %d: %v", mi, err))
	}
	s.ready[mi] += ctx.TaskExecMean(t, mi)
}

// probState binds one mapping event to the (persistent) evaluation cache
// for the robustness-based heuristics (MOC, PAM, PAMF).
//
// Phase one needs only two scalars per (task, machine) pair — success
// probability and expected machine-free time — which the PET's prefix-sum
// profiles yield in one O(|tail|) scan without materializing a convolution
// (pmf.DropEval). Full convolutions happen only when a pair is committed,
// to produce the machine's next tail PMF. Evaluations are cached per task
// in the EvalCache and invalidated per machine by queue version, since a
// commit perturbs exactly one tail.
type probState struct {
	cache *EvalCache
	tails []*pmf.PMF // == cache.tails, re-sliced for this event
	arena *pmf.Arena
	naive bool
}

// fastEval is a cached phase-one evaluation of one (task, machine) pair.
type fastEval struct {
	success float64
	expFree float64
}

func newProbState(ctx *Context) *probState {
	c := ctx.Cache
	if c == nil {
		c = NewEvalCache()
	}
	n := len(ctx.Machines)
	if cap(c.tails) < n {
		c.tails = make([]*pmf.PMF, n)
		c.stamps = make([]uint64, n)
		c.memo = make([]tailMemo, n)
	}
	c.tails = c.tails[:n]
	c.stamps = c.stamps[:n]
	c.memo = c.memo[:n]
	// The probState lives inside the cache so that binding an event to it
	// allocates nothing — a streaming trial runs millions of mapping events
	// through the same record.
	s := &c.ps
	s.cache, s.tails, s.arena, s.naive = c, c.tails, ctx.Arena, ctx.NaiveEval
	for i, m := range ctx.Machines {
		s.tails[i] = c.tailFor(ctx, i, m)
	}
	return s
}

// tailFor returns machine m's queue-tail PMF for this event, reusing the
// cross-event memo when the queue version and conditioning key both match
// (in which case the stamp — and thus every cached evaluation against this
// machine — stays valid). On a miss the chain is recomputed in the arena,
// snapshotted into the memo, and the stamp advances.
func (c *EvalCache) tailFor(ctx *Context, i int, m *machine.Machine) *pmf.PMF {
	ex := m.Executing()
	if ex == nil && len(m.Pending()) == 0 {
		// Empty machine: the tail is an impulse at the clock. Memoizing is
		// pointless (it changes every tick) and evaluations against it are
		// O(1) profile lookups anyway.
		c.memo[i].valid = false
		c.stamps[i]++
		return ctx.Arena.Impulse(ctx.Now)
	}
	key, hasExec := int64(0), ex != nil
	if ex != nil {
		// Mirror machine.TailPMF's conditioning exactly, including the
		// degradation factor the run started under — ver pins the factor
		// (SetSpeed bumps the version), so the key only needs the
		// conditioned first-impulse tick of the scaled profile.
		f := m.RunFactor()
		exec := ctx.PET.ScaledPMF(ex.Type, m.ID, f)
		if tick, ok := exec.FirstImpulseAt(ctx.Now - (ex.Start - pmf.ScaleDur(ex.Consumed, f))); ok {
			key = tick
		} else {
			key = -ctx.Now // overdue: conditioned head is Impulse(now)
		}
	} else {
		key = -ctx.Now // idle head with pending work: chain starts at now
	}
	e := &c.memo[i]
	if !ctx.NaiveEval && e.valid && e.ver == m.Version() && e.key == key && e.hasExec == hasExec {
		return &e.tail
	}
	t := m.TailPMF(ctx.Arena, ctx.Now, ctx.PET, ctx.Mode, ctx.MaxImpulses)
	e.tail.CopyFrom(t)
	e.valid, e.ver, e.key, e.hasExec = true, m.Version(), key, hasExec
	c.stamps[i]++
	return &e.tail
}

// compute is the uncached phase-one evaluation of task t on machine mi.
func (s *probState) compute(ctx *Context, t *task.Task, mi int) fastEval {
	prof := ctx.TaskExecProfile(t, mi)
	success, expFree := pmf.DropEval(s.tails[mi], prof, t.Deadline, ctx.Mode)
	return fastEval{success: success, expFree: expFree}
}

// evaluate returns the (cached) fast evaluation of task t on machine mi. A
// cache slot is valid while machine mi's tail stamp is unchanged — a
// commit bumps exactly one machine's stamp (invalidating one column), and
// across events the stamp only moves when the tail memo misses.
func (s *probState) evaluate(ctx *Context, t *task.Task, mi int) fastEval {
	if s.naive {
		return s.compute(ctx, t, mi)
	}
	te := s.cache.row(t.ID, len(ctx.Machines))
	stamp := s.cache.stamps[mi]
	if te.has[mi] && te.ver[mi] == stamp {
		s.cache.hits++
		return te.res[mi]
	}
	s.cache.misses++
	r := s.compute(ctx, t, mi)
	te.res[mi], te.ver[mi], te.has[mi] = r, stamp, true
	return r
}

// bestByRobustness returns the free-slot machine maximizing the task's
// success probability, together with the evaluation; ok is false when no
// machine has room. Ties (common once robustness saturates at 1.0 on
// several machines) break toward the earliest expected completion —
// without this, every saturated task would pile onto the lowest-indexed
// machine.
func (s *probState) bestByRobustness(ctx *Context, t *task.Task) (mi int, ev fastEval, ok bool) {
	const tieEps = 1e-9
	best := -1
	var bestEv fastEval
	for i, m := range ctx.Machines {
		if m.FreeSlots() <= 0 {
			continue
		}
		r := s.evaluate(ctx, t, i)
		switch {
		case best == -1 || r.success > bestEv.success+tieEps:
			best, bestEv = i, r
		case r.success > bestEv.success-tieEps && r.expFree < bestEv.expFree:
			best, bestEv = i, r
		}
	}
	if best == -1 {
		return 0, fastEval{}, false
	}
	return best, bestEv, true
}

// commit enqueues t on machine mi and folds its execution into the tail
// with one full dropping-aware convolution. Enqueue bumps the machine's
// queue version, which is what invalidates cached evaluations against this
// machine — no explicit invalidation pass is needed.
func (s *probState) commit(ctx *Context, t *task.Task, mi int) {
	if err := ctx.Machines[mi].Enqueue(t); err != nil {
		panic(fmt.Sprintf("heuristics: commit to full machine %d: %v", mi, err))
	}
	res := s.arena.ConvolveDrop(s.tails[mi], ctx.TaskExecPMF(t, mi), t.Deadline, ctx.Mode)
	s.tails[mi] = s.arena.Compact(res.Free, ctx.MaxImpulses)
	s.cache.stamps[mi]++ // one column of cached evaluations dies, no more
	s.cache.Forget(t.ID)
}

// removeTask deletes the element at index i from ts, order-preserving.
func removeTask(ts []*task.Task, i int) []*task.Task {
	return append(ts[:i], ts[i+1:]...)
}
