package heuristics

import (
	"math"

	"taskprune/internal/task"
)

// MM is the MinCompletion-MinCompletion (MinMin) baseline, used extensively
// in the HC-scheduling literature. Phase one pairs each task with the
// machine minimizing its expected completion time; phase two commits the
// globally minimum-completion pair; repeat.
type MM struct{}

// Name implements Heuristic.
func (MM) Name() string { return "MM" }

// UsesPruning implements Heuristic.
func (MM) UsesPruning() bool { return false }

// Map implements Heuristic.
func (MM) Map(ctx *Context, batch []*task.Task) Result {
	st := newScalarState(ctx)
	out := ctx.Cache.newResult()
	defer func() { ctx.Cache.keepResult(&out) }()
	remaining := ctx.Cache.takeRemaining(batch)
	defer func() { ctx.Cache.putRemaining(remaining) }()
	for totalFreeSlots(ctx.Machines) > 0 && len(remaining) > 0 {
		bestIdx, bestMi := -1, -1
		bestECT := math.Inf(1)
		for i, t := range remaining {
			mi, ect, ok := st.bestMachine(ctx, t)
			if !ok {
				break
			}
			if ect < bestECT {
				bestIdx, bestMi, bestECT = i, mi, ect
			}
		}
		if bestIdx == -1 {
			break
		}
		t := remaining[bestIdx]
		st.commit(ctx, t, bestMi)
		out.Assigned = append(out.Assigned, t)
		remaining = removeTask(remaining, bestIdx)
	}
	return out
}

// MSD is MinCompletion-SoonestDeadline: phase one as MM; phase two commits
// the pair whose task deadline is soonest, breaking ties by minimum
// expected completion time.
type MSD struct{}

// Name implements Heuristic.
func (MSD) Name() string { return "MSD" }

// UsesPruning implements Heuristic.
func (MSD) UsesPruning() bool { return false }

// Map implements Heuristic.
func (MSD) Map(ctx *Context, batch []*task.Task) Result {
	st := newScalarState(ctx)
	out := ctx.Cache.newResult()
	defer func() { ctx.Cache.keepResult(&out) }()
	remaining := ctx.Cache.takeRemaining(batch)
	defer func() { ctx.Cache.putRemaining(remaining) }()
	for totalFreeSlots(ctx.Machines) > 0 && len(remaining) > 0 {
		bestIdx, bestMi := -1, -1
		bestDeadline := int64(math.MaxInt64)
		bestECT := math.Inf(1)
		for i, t := range remaining {
			mi, ect, ok := st.bestMachine(ctx, t)
			if !ok {
				break
			}
			if t.Deadline < bestDeadline || (t.Deadline == bestDeadline && ect < bestECT) {
				bestIdx, bestMi, bestDeadline, bestECT = i, mi, t.Deadline, ect
			}
		}
		if bestIdx == -1 {
			break
		}
		t := remaining[bestIdx]
		st.commit(ctx, t, bestMi)
		out.Assigned = append(out.Assigned, t)
		remaining = removeTask(remaining, bestIdx)
	}
	return out
}

// MMU is MinCompletion-MaxUrgency with urgency U = 1/(δ − E(C)). Phase one
// as MM; phase two commits the most urgent pair. A non-positive slack
// (expected completion at or past the deadline) is treated as infinitely
// urgent, which is exactly why MMU collapses under extreme
// oversubscription: it keeps feeding machines tasks that are already lost.
type MMU struct{}

// Name implements Heuristic.
func (MMU) Name() string { return "MMU" }

// UsesPruning implements Heuristic.
func (MMU) UsesPruning() bool { return false }

// Map implements Heuristic.
func (MMU) Map(ctx *Context, batch []*task.Task) Result {
	st := newScalarState(ctx)
	out := ctx.Cache.newResult()
	defer func() { ctx.Cache.keepResult(&out) }()
	remaining := ctx.Cache.takeRemaining(batch)
	defer func() { ctx.Cache.putRemaining(remaining) }()
	for totalFreeSlots(ctx.Machines) > 0 && len(remaining) > 0 {
		bestIdx, bestMi := -1, -1
		bestUrgency := math.Inf(-1)
		for i, t := range remaining {
			mi, ect, ok := st.bestMachine(ctx, t)
			if !ok {
				break
			}
			slack := float64(t.Deadline) - ect
			urgency := math.Inf(1)
			if slack > 0 {
				urgency = 1 / slack
			}
			if urgency > bestUrgency {
				bestIdx, bestMi, bestUrgency = i, mi, urgency
			}
		}
		if bestIdx == -1 {
			break
		}
		t := remaining[bestIdx]
		st.commit(ctx, t, bestMi)
		out.Assigned = append(out.Assigned, t)
		remaining = removeTask(remaining, bestIdx)
	}
	return out
}
