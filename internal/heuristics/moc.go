package heuristics

import (
	"sort"

	"taskprune/internal/pmf"
	"taskprune/internal/task"
)

// DefaultMOCThreshold is the pre-defined robustness culling threshold of
// the MOC heuristic (paper Section VI-C4: 30%).
const DefaultMOCThreshold = 0.30

// MOC is Max Ontime Completions (Salehi et al., JPDC 2016), the strongest
// baseline: it uses the PET matrix to compute mapping robustness. Phase one
// pairs each task with its highest-robustness machine; a culling phase
// removes pairs under the robustness threshold; the last phase takes the
// three highest-robustness pairs and permutes their commit order to find
// the assignment maximizing overall robustness, committing one pair per
// iteration.
//
// MOC cannot probabilistically drop already-mapped tasks — the paper's
// point is that this inability wastes machine time under oversubscription.
type MOC struct {
	// Threshold is the culling robustness floor.
	Threshold float64
}

// NewMOC builds an MOC instance with the given culling threshold.
func NewMOC(threshold float64) MOC { return MOC{Threshold: threshold} }

// Name implements Heuristic.
func (MOC) Name() string { return "MOC" }

// UsesPruning implements Heuristic.
func (MOC) UsesPruning() bool { return false }

type mocPair struct {
	taskIdx int
	machine int
	ev      fastEval
}

// Map implements Heuristic.
func (h MOC) Map(ctx *Context, batch []*task.Task) Result {
	st := newProbState(ctx)
	out := st.cache.newResult()
	defer func() { st.cache.keepResult(&out) }()
	remaining := st.cache.takeRemaining(batch)
	defer func() { st.cache.putRemaining(remaining) }()
	for totalFreeSlots(ctx.Machines) > 0 && len(remaining) > 0 {
		// Phase 1: best machine per task by robustness.
		pairs := st.cache.mpairs[:0]
		for i, t := range remaining {
			mi, ev, ok := st.bestByRobustness(ctx, t)
			if !ok {
				break
			}
			pairs = append(pairs, mocPair{taskIdx: i, machine: mi, ev: ev})
		}
		st.cache.mpairs = pairs[:0]
		if len(pairs) == 0 {
			break
		}
		// Culling phase: pairs below the robustness threshold are dropped
		// from the system entirely — the paper's MOC maps or drops every
		// batch task ("until all tasks in the batch queue are mapped or
		// dropped").
		kept := pairs[:0]
		for _, p := range pairs {
			if p.ev.success >= h.Threshold {
				kept = append(kept, p)
			} else {
				out.Culled = append(out.Culled, remaining[p.taskIdx])
			}
		}
		if len(out.Culled) > 0 {
			culledSet := make(map[*task.Task]bool, len(out.Culled))
			for _, tk := range out.Culled {
				culledSet[tk] = true
			}
			// Rebuild remaining and re-index surviving pairs.
			idx := make(map[*task.Task]int, len(remaining))
			var next []*task.Task
			for _, tk := range remaining {
				if !culledSet[tk] {
					idx[tk] = len(next)
					next = append(next, tk)
				}
			}
			for i := range kept {
				kept[i].taskIdx = idx[remaining[kept[i].taskIdx]]
			}
			remaining = next
		}
		pairs = kept
		if len(pairs) == 0 {
			break
		}
		// Final phase: among the top three pairs by robustness, pick the
		// commit whose tentative assignment leaves the highest total
		// robustness across the trio (the paper's small permutation
		// search).
		sort.SliceStable(pairs, func(a, b int) bool {
			return pairs[a].ev.success > pairs[b].ev.success
		})
		top := pairs
		if len(top) > 3 {
			top = top[:3]
		}
		bestPick := 0
		if len(top) > 1 {
			bestTotal := -1.0
			for pick, cand := range top {
				tc := remaining[cand.taskIdx]
				full := st.arena.ConvolveDrop(st.tails[cand.machine], ctx.TaskExecPMF(tc, cand.machine), tc.Deadline, ctx.Mode)
				tail := st.arena.Compact(full.Free, ctx.MaxImpulses)
				total := cand.ev.success
				for other, p := range top {
					if other == pick {
						continue
					}
					t := remaining[p.taskIdx]
					if p.machine == cand.machine {
						total += pmf.DropSuccess(tail, ctx.TaskExecProfile(t, p.machine), t.Deadline)
					} else {
						total += p.ev.success
					}
				}
				if total > bestTotal {
					bestTotal, bestPick = total, pick
				}
			}
		}
		chosen := top[bestPick]
		t := remaining[chosen.taskIdx]
		st.commit(ctx, t, chosen.machine)
		out.Assigned = append(out.Assigned, t)
		remaining = removeTask(remaining, chosen.taskIdx)
	}
	return out
}
