package heuristics

import (
	"testing"

	"taskprune/internal/machine"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// testPET: 2 types × 2 machines with strong, unambiguous affinities:
// type 0 is much faster on machine 0, type 1 on machine 1.
func testPET(t *testing.T) *pet.Matrix {
	t.Helper()
	cfg := pet.BuildConfig{Samples: 400, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	m, err := pet.Build([][]float64{
		{10, 50},
		{50, 10},
	}, cfg, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func freshContext(t *testing.T, matrix *pet.Matrix, queueCap int) *Context {
	t.Helper()
	ms := make([]*machine.Machine, matrix.NumMachines())
	for i := range ms {
		ms[i] = machine.New(i, "m", queueCap, 0)
	}
	return &Context{
		Now:         0,
		Machines:    ms,
		PET:         matrix,
		Mode:        pmf.PendingDrop,
		MaxImpulses: 32,
	}
}

func mkTask(id int, typ task.Type, arrival, deadline int64) *task.Task {
	tk := task.New(id, typ, arrival, deadline)
	tk.TrueExec = []int64{1, 1}
	return tk
}

func TestNewByName(t *testing.T) {
	for _, name := range AllNames() {
		h, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if h.Name() != name {
			t.Errorf("Name = %q, want %q", h.Name(), name)
		}
	}
	if _, err := New("NOPE"); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestUsesPruningFlags(t *testing.T) {
	want := map[string]bool{"MM": false, "MSD": false, "MMU": false, "MOC": false, "PAM": true, "PAMF": true}
	for name, w := range want {
		h, _ := New(name)
		if h.UsesPruning() != w {
			t.Errorf("%s.UsesPruning = %v, want %v", name, h.UsesPruning(), w)
		}
	}
}

// TestMMPrefersAffineMachine: with empty queues, MM must map each task type
// to its fast machine.
func TestMMPrefersAffineMachine(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	batch := []*task.Task{mkTask(0, 0, 0, 1000), mkTask(1, 1, 0, 1000)}
	res := MM{}.Map(ctx, batch)
	if len(res.Assigned) != 2 {
		t.Fatalf("assigned %d, want 2", len(res.Assigned))
	}
	for _, tk := range res.Assigned {
		want := matrix.BestMachine(tk.Type)
		if tk.Machine != want {
			t.Errorf("type %d mapped to machine %d, want %d", tk.Type, tk.Machine, want)
		}
	}
}

// TestMMMinCompletionOrder: MM commits the globally smallest completion
// first. Machine 1 starts with a backlog, so the type-1 task's best
// completion (~20) loses to the type-0 task on the idle machine 0 (~10).
func TestMMMinCompletionOrder(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	if err := ctx.Machines[1].Enqueue(mkTask(99, 1, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	slower := mkTask(0, 1, 0, 1000)
	faster := mkTask(1, 0, 0, 1000)
	res := MM{}.Map(ctx, []*task.Task{slower, faster})
	if len(res.Assigned) != 2 {
		t.Fatalf("assigned %d, want 2", len(res.Assigned))
	}
	if res.Assigned[0] != faster {
		t.Error("MM did not commit the minimum-completion task first")
	}
}

func TestMMRespectsQueueCapacity(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 2) // 2 slots per machine, 4 total
	var batch []*task.Task
	for i := 0; i < 10; i++ {
		batch = append(batch, mkTask(i, task.Type(i%2), 0, 1000))
	}
	res := MM{}.Map(ctx, batch)
	if len(res.Assigned) != 4 {
		t.Errorf("assigned %d, want 4 (queue capacity)", len(res.Assigned))
	}
	for _, m := range ctx.Machines {
		if m.QueueLen() > 2 {
			t.Errorf("machine %d overfilled: %d", m.ID, m.QueueLen())
		}
	}
}

// TestMSDPrefersSoonestDeadline: with one free slot, the sooner-deadline
// task goes first even if another completes faster.
func TestMSDPrefersSoonestDeadline(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	urgent := mkTask(0, 1, 0, 100) // slow type but urgent
	relaxed := mkTask(1, 0, 0, 5000)
	res := MSD{}.Map(ctx, []*task.Task{relaxed, urgent})
	if len(res.Assigned) != 2 {
		t.Fatalf("assigned %d, want 2", len(res.Assigned))
	}
	if res.Assigned[0] != urgent {
		t.Error("MSD did not commit the soonest-deadline task first")
	}
}

// TestMMUPrefersMaxUrgency: the task with the smallest positive slack goes
// first; non-positive slack is infinitely urgent.
func TestMMUPrefersMaxUrgency(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	tight := mkTask(0, 0, 0, 14) // slack ≈ 4 on its fast machine
	loose := mkTask(1, 1, 0, 500)
	res := MMU{}.Map(ctx, []*task.Task{loose, tight})
	if res.Assigned[0] != tight {
		t.Error("MMU did not commit the most urgent task first")
	}
	doomed := mkTask(2, 0, 0, 1) // slack < 0: infinite urgency
	res2 := MMU{}.Map(ctx, []*task.Task{mkTask(3, 0, 0, 400), doomed})
	if res2.Assigned[0] != doomed {
		t.Error("MMU did not prioritize the infinitely urgent (doomed) task")
	}
}

// TestMOCCullsHopelessTasks: tasks with sub-threshold robustness stay
// unmapped.
func TestMOCCullsHopelessTasks(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	hopeless := mkTask(0, 0, 0, 2) // deadline 2 with ~10-tick exec: robustness ≈ 0
	fine := mkTask(1, 1, 0, 1000)
	res := NewMOC(0.30).Map(ctx, []*task.Task{hopeless, fine})
	if len(res.Assigned) != 1 || res.Assigned[0] != fine {
		t.Errorf("MOC assigned %v, want only the viable task", res.Assigned)
	}
	if hopeless.State != task.StatePending {
		t.Errorf("culled task state = %v, want pending (stays in batch)", hopeless.State)
	}
}

// TestMOCMapsByRobustness: each type lands on its affine machine where
// robustness is maximal.
func TestMOCMapsByRobustness(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	batch := []*task.Task{mkTask(0, 0, 0, 60), mkTask(1, 1, 0, 60)}
	res := NewMOC(0.30).Map(ctx, batch)
	if len(res.Assigned) != 2 {
		t.Fatalf("assigned %d, want 2", len(res.Assigned))
	}
	for _, tk := range res.Assigned {
		if tk.Machine != matrix.BestMachine(tk.Type) {
			t.Errorf("type %d on machine %d, want %d", tk.Type, tk.Machine, matrix.BestMachine(tk.Type))
		}
	}
}

// pamContext attaches a pruner (defer 90%, drop 50%) to a fresh context.
func pamContext(t *testing.T, matrix *pet.Matrix, queueCap int) *Context {
	ctx := freshContext(t, matrix, queueCap)
	ctx.Mode = pmf.Evict
	p := pruner.New(pruner.DefaultConfig())
	ctx.Pruner = p
	return ctx
}

// TestPAMDefersLowRobustnessTasks: a task that cannot clear the 90% defer
// bar is returned as deferred, not mapped.
func TestPAMDefersLowRobustnessTasks(t *testing.T) {
	matrix := testPET(t)
	ctx := pamContext(t, matrix, 6)
	// Deadline 12 with mean-10 execution: robustness well below 90%.
	marginal := mkTask(0, 0, 0, 12)
	safe := mkTask(1, 1, 0, 1000)
	res := PAM{}.Map(ctx, []*task.Task{marginal, safe})
	if len(res.Assigned) != 1 || res.Assigned[0] != safe {
		t.Errorf("assigned = %v, want only the safe task", res.Assigned)
	}
	if len(res.Deferred) != 1 || res.Deferred[0] != marginal {
		t.Errorf("deferred = %v, want the marginal task", res.Deferred)
	}
	if marginal.Defers != 1 {
		t.Errorf("Defers = %d, want 1", marginal.Defers)
	}
}

// TestPAMMapsGoodTasks: with generous deadlines everything maps, to the
// affine machines.
func TestPAMMapsGoodTasks(t *testing.T) {
	matrix := testPET(t)
	ctx := pamContext(t, matrix, 6)
	batch := []*task.Task{mkTask(0, 0, 0, 1000), mkTask(1, 1, 0, 1000)}
	res := PAM{}.Map(ctx, batch)
	if len(res.Assigned) != 2 || len(res.Deferred) != 0 {
		t.Fatalf("assigned/deferred = %d/%d, want 2/0", len(res.Assigned), len(res.Deferred))
	}
}

// TestPAMDeferralFreesSlotsForViableTasks: PAM's deferral means a viable
// task maps even when it arrived behind many hopeless ones.
func TestPAMDeferralFreesSlotsForViableTasks(t *testing.T) {
	matrix := testPET(t)
	ctx := pamContext(t, matrix, 1) // single slot per machine
	var batch []*task.Task
	for i := 0; i < 5; i++ {
		batch = append(batch, mkTask(i, 0, 0, 11)) // all marginal
	}
	viable := mkTask(9, 0, 0, 1000)
	batch = append(batch, viable)
	res := PAM{}.Map(ctx, batch)
	found := false
	for _, tk := range res.Assigned {
		if tk == viable {
			found = true
		}
	}
	if !found {
		t.Error("viable task not mapped despite deferral of hopeless ones")
	}
}

// TestPAMFUsesSufferage: a type with high sufferage escapes deferral.
func TestPAMFUsesSufferage(t *testing.T) {
	matrix := testPET(t)
	ctx := pamContext(t, matrix, 6)
	fair := pruner.NewFairnessTracker(matrix.NumTypes(), 0.25)
	ctx.Fairness = fair

	// Robustness of this task is ≈ 0.5-0.8 (deadline 14, mean 10): below
	// the 90% defer bar but above 90% − sufferage once the type suffered.
	marginal := mkTask(0, 0, 0, 14)
	res := PAMF{}.Map(ctx, []*task.Task{marginal})
	if len(res.Assigned) != 0 {
		t.Fatalf("unsuffered marginal task mapped; robustness evaluation off")
	}

	for i := 0; i < 3; i++ {
		fair.RecordFailure(0) // sufferage 0.75: defer bar drops to 0.15
	}
	marginal2 := mkTask(1, 0, 0, 14)
	res2 := PAMF{}.Map(ctx, []*task.Task{marginal2})
	if len(res2.Assigned) != 1 {
		t.Error("suffered type still deferred; PAMF sufferage not applied")
	}
}

// TestProbStateCacheConsistency: cached fast evaluations must equal fresh
// ones after commits invalidate a machine.
func TestProbStateCacheConsistency(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	st := newProbState(ctx)
	a := mkTask(0, 0, 0, 500)
	b := mkTask(1, 0, 0, 500)

	evB1 := st.evaluate(ctx, b, 0)
	st.commit(ctx, a, 0) // machine 0's tail changed
	evB2 := st.evaluate(ctx, b, 0)
	fresh := fastEval{
		success: pmf.DropSuccess(st.tails[0], matrix.Profile(0, 0), b.Deadline),
		expFree: pmf.DropExpectedFree(st.tails[0], matrix.Profile(0, 0), b.Deadline, ctx.Mode),
	}
	if evB2 != fresh {
		t.Errorf("post-commit cache = %+v, fresh = %+v", evB2, fresh)
	}
	if evB1 == evB2 {
		t.Error("commit did not invalidate the cached evaluation")
	}
}

// TestHeuristicsNoDuplicateAssignment: no heuristic assigns the same task
// twice or leaves a task both assigned and deferred.
func TestHeuristicsNoDuplicateAssignment(t *testing.T) {
	matrix := testPET(t)
	for _, name := range AllNames() {
		h, _ := New(name)
		ctx := freshContext(t, matrix, 3)
		if h.UsesPruning() {
			ctx.Pruner = pruner.New(pruner.DefaultConfig())
			ctx.Mode = pmf.Evict
		}
		var batch []*task.Task
		for i := 0; i < 12; i++ {
			batch = append(batch, mkTask(i, task.Type(i%2), 0, int64(40+20*i)))
		}
		res := h.Map(ctx, batch)
		seen := map[*task.Task]bool{}
		for _, tk := range res.Assigned {
			if seen[tk] {
				t.Errorf("%s assigned %v twice", name, tk)
			}
			seen[tk] = true
			if tk.Machine < 0 {
				t.Errorf("%s: assigned task has no machine", name)
			}
		}
		for _, tk := range res.Deferred {
			if seen[tk] {
				t.Errorf("%s: task both assigned and deferred", name)
			}
		}
	}
}

// TestHeuristicsHonorFullQueues: nothing maps when all queues are full.
func TestHeuristicsHonorFullQueues(t *testing.T) {
	matrix := testPET(t)
	for _, name := range AllNames() {
		h, _ := New(name)
		ctx := freshContext(t, matrix, 1)
		if h.UsesPruning() {
			ctx.Pruner = pruner.New(pruner.DefaultConfig())
		}
		for _, m := range ctx.Machines {
			if err := m.Enqueue(mkTask(100+m.ID, 0, 0, 1000)); err != nil {
				t.Fatal(err)
			}
		}
		res := h.Map(ctx, []*task.Task{mkTask(0, 0, 0, 1000)})
		if len(res.Assigned) != 0 {
			t.Errorf("%s assigned into full queues", name)
		}
	}
}

// TestRobustnessTieBreak: when two machines offer saturated (1.0)
// robustness, the one with the earlier expected completion wins — tasks
// must not pile onto the lowest-indexed machine.
func TestRobustnessTieBreak(t *testing.T) {
	matrix := testPET(t)
	ctx := freshContext(t, matrix, 6)
	// Machine 0 gets a backlog; machine 1 idle. A type-0 task with a huge
	// deadline has robustness 1.0 on both, but machine 1 frees earlier...
	// for type 0 machine 0 is 10 ticks vs 50 on machine 1, so backlog of
	// two tasks (20 ticks) still leaves machine 0 faster. Use three.
	for i := 0; i < 3; i++ {
		if err := ctx.Machines[0].Enqueue(mkTask(100+i, 0, 0, 100000)); err != nil {
			t.Fatal(err)
		}
	}
	st := newProbState(ctx)
	tk := mkTask(0, 0, 0, 100000)
	mi, ev, ok := st.bestByRobustness(ctx, tk)
	if !ok {
		t.Fatal("no machine")
	}
	if ev.success < 0.999 {
		t.Fatalf("test premise broken: success %v not saturated", ev.success)
	}
	// Machine 0: ~30 ticks backlog + 10 exec = 40. Machine 1: 50 exec.
	// Machine 0 still wins. Add two more to flip it.
	for i := 0; i < 2; i++ {
		if err := ctx.Machines[0].Enqueue(mkTask(200+i, 0, 0, 100000)); err != nil {
			t.Fatal(err)
		}
	}
	st2 := newProbState(ctx)
	mi2, _, _ := st2.bestByRobustness(ctx, mkTask(1, 0, 0, 100000))
	if mi == mi2 {
		t.Errorf("tie-break ignored queue depth: picked machine %d both times", mi)
	}
	if mi2 != 1 {
		t.Errorf("with 5-deep backlog on m0 (≈50 ticks), expected m1 (50-tick exec); got %d", mi2)
	}
}

// TestContextSufferageNilSafe: sufferage lookups without a tracker are 0.
func TestContextSufferageNilSafe(t *testing.T) {
	ctx := &Context{}
	if got := ctx.sufferage(3); got != 0 {
		t.Errorf("sufferage = %v, want 0", got)
	}
}
