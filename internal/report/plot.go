package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders grouped series as a horizontal ASCII bar chart — enough to
// eyeball a regenerated figure in a terminal without plotting tools.
//
//	c := report.NewChart("robustness @34k", "%")
//	c.Add("PAM", 50.2)
//	c.Add("MM", 22.8)
//	fmt.Print(c.String())
type Chart struct {
	Title string
	Unit  string
	Width int // bar field width in characters (default 50)

	labels []string
	values []float64
	errs   []float64 // optional half-spans, NaN = none
}

// NewChart creates an empty chart.
func NewChart(title, unit string) *Chart {
	return &Chart{Title: title, Unit: unit, Width: 50}
}

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.AddWithError(label, value, math.NaN())
}

// AddWithError appends one bar with a ± half-span annotation.
func (c *Chart) AddWithError(label string, value, half float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
	c.errs = append(c.errs, half)
}

// Write renders the chart to w.
func (c *Chart) Write(w io.Writer) error {
	if len(c.values) == 0 {
		_, err := fmt.Fprintf(w, "== %s == (no data)\n", c.Title)
		return err
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxV := c.values[0]
	for _, v := range c.values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labelW := 0
	for _, l := range c.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", c.Title)
	}
	for i, v := range c.values {
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("█", n)
		if n == 0 && v > 0 {
			bar = "▏"
		}
		fmt.Fprintf(&b, "%-*s │%-*s %.2f%s", labelW, c.labels[i], width, bar, v, c.Unit)
		if !math.IsNaN(c.errs[i]) {
			fmt.Fprintf(&b, " ± %.2f", c.errs[i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}
