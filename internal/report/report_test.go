package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.234567)
	tb.AddRow("beta-longer", "raw")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "1.23") {
		t.Errorf("float not formatted to 2 decimals: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2rows = 5
		// Recount: title line, header, separator, two rows = 5 lines.
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d: %q", len(lines), out)
		}
	}
	// Columns align: header and row share the first column width.
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
		}
		if strings.HasPrefix(l, "alpha") {
			row = l
		}
	}
	if header == "" || row == "" {
		t.Fatalf("missing header/row in %q", out)
	}
	if idx1, idx2 := strings.Index(header, "value"), strings.Index(row, "1.23"); idx1 != idx2 {
		t.Errorf("columns misaligned: header %d vs row %d\n%s", idx1, idx2, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Error("empty title rendered")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("plain", `has "quotes", and commas`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"has ""quotes"", and commas"`) {
		t.Errorf("RFC4180 escaping failed: %q", lines[1])
	}
}

func TestFormatCI(t *testing.T) {
	if got := FormatCI(42.123, 1.567); got != "42.12 ± 1.57" {
		t.Errorf("FormatCI = %q", got)
	}
}

func TestChartRendering(t *testing.T) {
	c := NewChart("demo", "%")
	c.Add("PAM", 50)
	c.AddWithError("MM", 25, 1.5)
	out := c.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	// The larger value gets the longer bar.
	pamBars := strings.Count(lines[1], "█")
	mmBars := strings.Count(lines[2], "█")
	if pamBars <= mmBars {
		t.Errorf("bar lengths wrong: PAM %d vs MM %d\n%s", pamBars, mmBars, out)
	}
	if !strings.Contains(lines[2], "± 1.50") {
		t.Errorf("missing error annotation: %q", lines[2])
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("empty", "")
	if !strings.Contains(c.String(), "no data") {
		t.Errorf("empty chart = %q", c.String())
	}
}

func TestChartTinyValueGetsSliver(t *testing.T) {
	c := NewChart("t", "")
	c.Add("big", 1000)
	c.Add("tiny", 0.01)
	out := c.String()
	if !strings.Contains(out, "▏") {
		t.Errorf("tiny positive value should render a sliver:\n%s", out)
	}
}
