package report

import (
	"strings"
	"testing"
)

// TestChartZeroValueDefaults: a zero-value Chart (no NewChart) falls back
// to the default bar width, and an all-nonpositive series still renders
// without dividing by zero.
func TestChartZeroValueDefaults(t *testing.T) {
	c := &Chart{Unit: "%"}
	c.Add("zero", 0)
	c.Add("negative", -3)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("untitled chart should render bars only:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Errorf("empty title rendered: %q", out)
	}
	if strings.Contains(out, "█") || strings.Contains(out, "▏") {
		t.Errorf("nonpositive values drew bars:\n%s", out)
	}
	if !strings.Contains(out, "-3.00%") {
		t.Errorf("negative value missing from labels:\n%s", out)
	}
}

func TestChartExplicitWidth(t *testing.T) {
	c := NewChart("w", "")
	c.Width = 10
	c.Add("full", 5)
	if got := strings.Count(c.String(), "█"); got != 10 {
		t.Errorf("max bar at width 10 drew %d cells", got)
	}
}

// TestTableRowWiderThanHeaders: extra cells beyond the declared headers
// must not panic the width computation.
func TestTableRowWiderThanHeaders(t *testing.T) {
	tb := NewTable("t", "only")
	tb.AddRow("a", "surplus")
	if !strings.Contains(tb.String(), "a") {
		t.Fatalf("row lost: %q", tb.String())
	}
}

// TestTableAddRowDefaultFormatting: non-string, non-float cells render via
// %v (ints, bools).
func TestTableAddRowDefaultFormatting(t *testing.T) {
	tb := NewTable("", "n", "ok")
	tb.AddRow(42, true)
	out := tb.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "true") {
		t.Errorf("default formatting: %q", out)
	}
}

func TestFormatCIPrec(t *testing.T) {
	if got := FormatCIPrec(0.12345, 0.0042, 4); got != "0.1235 ± 0.0042" {
		t.Errorf("FormatCIPrec = %q", got)
	}
}
