// Package report renders experiment results as aligned text tables and CSV
// so that every figure of the paper can be regenerated as rows/series on
// stdout or exported for plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one formatted row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Cells beyond the declared headers render unpadded rather
			// than panicking on the missing width.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (headers first). Cells containing commas
// or quotes are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// FormatCI renders "mean ± half" with two decimals, the way EXPERIMENTS.md
// records figure points.
func FormatCI(mean, half float64) string {
	return FormatCIPrec(mean, half, 2)
}

// FormatCIPrec renders "mean ± half" with the given decimal precision (for
// small-magnitude metrics like cost per robustness point).
func FormatCIPrec(mean, half float64, prec int) string {
	return fmt.Sprintf("%.*f ± %.*f", prec, mean, prec, half)
}
