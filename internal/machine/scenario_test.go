package machine

import (
	"testing"

	"taskprune/internal/task"
)

func mk(id int) *task.Task {
	t := task.New(id, 0, 0, 1000)
	t.TrueExec = []int64{10}
	return t
}

func TestFailReturnsQueueInOrder(t *testing.T) {
	m := New(0, "m0", 6, 0)
	a, b, c := mk(1), mk(2), mk(3)
	for _, tk := range []*task.Task{a, b, c} {
		if err := m.Enqueue(tk); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.StartNext(5); got != a {
		t.Fatalf("StartNext = %v", got)
	}
	v := m.Version()
	held := m.Fail(8)
	if len(held) != 3 || held[0] != a || held[1] != b || held[2] != c {
		t.Fatalf("Fail returned %v, want [a b c] (executing first, FCFS after)", held)
	}
	if m.Alive() {
		t.Error("machine still alive after Fail")
	}
	if m.Version() <= v {
		t.Error("Fail did not bump the queue version")
	}
	if m.BusyTicks(100) != 3 {
		t.Errorf("busy ticks = %d, want 3 (ran 5..8)", m.BusyTicks(100))
	}
	if m.FreeSlots() != 0 {
		t.Errorf("dead machine reports %d free slots", m.FreeSlots())
	}
	if m.Idle() {
		t.Error("dead machine reports idle")
	}
	if err := m.Enqueue(mk(4)); err == nil {
		t.Error("dead machine accepted a task")
	}
	if m.StartNext(9) != nil {
		t.Error("dead machine started a task")
	}
	if m.Fail(9) != nil {
		t.Error("double Fail returned tasks")
	}
}

func TestRecoverRestoresService(t *testing.T) {
	m := New(0, "m0", 6, 0)
	m.Fail(0)
	v := m.Version()
	m.Recover()
	if !m.Alive() || m.Version() <= v {
		t.Fatal("Recover did not restore the machine")
	}
	m.Recover() // idempotent
	if err := m.Enqueue(mk(1)); err != nil {
		t.Fatalf("recovered machine rejected a task: %v", err)
	}
	if m.StartNext(10) == nil {
		t.Error("recovered machine did not start work")
	}
}

func TestSetSpeedAndRunFactor(t *testing.T) {
	m := New(0, "m0", 6, 0)
	if m.Speed() != 1 || m.RunFactor() != 1 {
		t.Fatal("new machine is not at nominal speed")
	}
	v := m.Version()
	m.SetSpeed(2.5)
	if m.Speed() != 2.5 || m.Version() <= v {
		t.Fatal("SetSpeed did not apply or did not bump version")
	}
	// RunFactor freezes at start: a mid-run change must not leak in.
	m.Enqueue(mk(1))
	m.StartNext(0)
	if m.RunFactor() != 2.5 {
		t.Errorf("run factor = %v, want 2.5", m.RunFactor())
	}
	m.SetSpeed(4)
	if m.RunFactor() != 2.5 {
		t.Errorf("mid-run SetSpeed changed the run factor to %v", m.RunFactor())
	}
	m.FinishExecuting(10)
	m.Enqueue(mk(2))
	m.StartNext(10)
	if m.RunFactor() != 4 {
		t.Errorf("next run factor = %v, want 4", m.RunFactor())
	}
	// Speed survives a fail/recover cycle (a recovered machine may still be
	// degraded) and resets with Reset.
	m.Fail(11)
	m.Recover()
	if m.Speed() != 4 {
		t.Errorf("speed after recover = %v, want 4", m.Speed())
	}
	m.Reset()
	if m.Speed() != 1 || m.RunFactor() != 1 || !m.Alive() {
		t.Error("Reset did not restore nominal state")
	}
}

func TestSetSpeedRejectsNonPositive(t *testing.T) {
	m := New(0, "m0", 6, 0)
	defer func() {
		if recover() == nil {
			t.Error("non-positive speed accepted")
		}
	}()
	m.SetSpeed(0)
}
