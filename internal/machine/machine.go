// Package machine models one heterogeneous compute node: a worker with a
// bounded FCFS local queue (paper: size six including the executing task),
// busy-time accounting for the cost study, and the probabilistic
// machine-availability view (tail PCT) that robustness-based mappers
// consume.
package machine

import (
	"errors"
	"fmt"

	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/task"
)

// ErrQueueFull is returned by Enqueue when every slot is taken.
var ErrQueueFull = errors.New("machine: queue full")

// Machine is a single compute node. It is owned by one simulator goroutine
// and is not safe for concurrent mutation.
type Machine struct {
	ID       int
	Name     string
	Price    float64 // dollars per hour of busy time (cost model)
	QueueCap int     // total capacity including the executing task

	executing *task.Task
	pending   []*task.Task

	busyTicks int64
	runStart  int64

	// alive is the scenario-engine membership flag: a failed (or not yet
	// joined) machine accepts no work, reports no free slots, and never
	// starts tasks. All machines start alive.
	alive bool

	// speed is the current performance degradation factor: tasks on this
	// machine take speed× their nominal execution time (1 = nominal,
	// 2 = half speed). runFactor freezes the factor the executing task
	// started under, so a mid-run degradation never perturbs an already
	// scheduled completion event.
	speed     float64
	runFactor float64

	// version counts queue mutations (enqueue, start, finish, removal).
	// Mapping heuristics key their per-(task, machine) evaluation caches on
	// it: a cached evaluation is valid exactly while the machine's version
	// is unchanged, so committing an assignment invalidates only the
	// committed machine's column.
	version uint64
}

// Version returns the monotonically increasing queue-mutation counter.
func (m *Machine) Version() uint64 { return m.version }

// BumpVersion invalidates every cached evaluation of this machine without
// mutating its queue. The simulator calls it when the belief PET refreshes:
// the queue is unchanged but every distribution it was evaluated under is
// stale.
func (m *Machine) BumpVersion() { m.version++ }

// New creates an idle machine at nominal speed.
func New(id int, name string, queueCap int, price float64) *Machine {
	if queueCap < 1 {
		panic(fmt.Sprintf("machine: queue capacity must be >= 1, got %d", queueCap))
	}
	return &Machine{ID: id, Name: name, QueueCap: queueCap, Price: price, alive: true, speed: 1, runFactor: 1}
}

// Alive reports whether the machine is part of the active fleet.
func (m *Machine) Alive() bool { return m.alive }

// Speed returns the current performance degradation factor (1 = nominal).
func (m *Machine) Speed() float64 { return m.speed }

// RunFactor returns the degradation factor the executing task started
// under. It equals Speed unless a degradation event fired mid-run.
func (m *Machine) RunFactor() float64 { return m.runFactor }

// SetSpeed changes the degradation factor for subsequently started tasks
// and bumps the queue version (scaled execution profiles changed, so every
// cached evaluation against this machine is stale). It panics on a
// non-positive factor: scenario validation rejects those up front.
func (m *Machine) SetSpeed(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("machine: speed factor must be positive, got %v", factor))
	}
	m.speed = factor
	m.version++
}

// Fail takes the machine out of the fleet at tick now, returning every task
// it held — the executing task first (its busy time up to now is billed),
// then the pending queue in FCFS order — for the simulator to requeue or
// drop per the scenario's failure policy. Failing an already-down machine
// is a no-op returning nil.
func (m *Machine) Fail(now int64) []*task.Task {
	if !m.alive {
		return nil
	}
	var held []*task.Task
	if m.executing != nil {
		held = append(held, m.FinishExecuting(now))
	}
	held = append(held, m.pending...)
	m.pending = nil
	m.alive = false
	m.version++
	return held
}

// Recover returns a failed machine to the fleet, idle and empty. Its speed
// factor is retained (a recovered machine may still be degraded).
// Recovering an alive machine is a no-op.
func (m *Machine) Recover() {
	if m.alive {
		return
	}
	m.alive = true
	m.version++
}

// Executing returns the running task, or nil when idle.
func (m *Machine) Executing() *task.Task { return m.executing }

// Pending returns the queued (not yet executing) tasks in FCFS order. The
// returned slice is the machine's own; callers must not mutate it.
func (m *Machine) Pending() []*task.Task { return m.pending }

// QueueLen returns the number of tasks on the machine, counting the
// executing one.
func (m *Machine) QueueLen() int {
	n := len(m.pending)
	if m.executing != nil {
		n++
	}
	return n
}

// FreeSlots returns how many more tasks can be enqueued. A dead machine
// has no free slots, which is the single gate that keeps every mapping
// heuristic — scalar and probabilistic alike — away from it.
func (m *Machine) FreeSlots() int {
	if !m.alive {
		return 0
	}
	return m.QueueCap - m.QueueLen()
}

// Idle reports whether the machine could start a task: alive with nothing
// executing.
func (m *Machine) Idle() bool { return m.alive && m.executing == nil }

// Enqueue appends t to the local queue.
func (m *Machine) Enqueue(t *task.Task) error {
	if m.FreeSlots() <= 0 {
		return ErrQueueFull
	}
	t.State = task.StateQueued
	t.Machine = m.ID
	m.pending = append(m.pending, t)
	m.version++
	return nil
}

// StartNext promotes the queue head to executing at tick now and returns
// it, or nil if the queue is empty or something is already running.
func (m *Machine) StartNext(now int64) *task.Task {
	if !m.alive || m.executing != nil || len(m.pending) == 0 {
		return nil
	}
	t := m.pending[0]
	copy(m.pending, m.pending[1:])
	m.pending = m.pending[:len(m.pending)-1]
	m.executing = t
	m.runStart = now
	m.runFactor = m.speed
	m.version++
	t.State = task.StateRunning
	t.Start = now
	return t
}

// FinishExecuting clears the executing slot at tick now, accumulating busy
// time, and returns the task. It panics if nothing is running (a simulator
// bug, not a recoverable condition).
func (m *Machine) FinishExecuting(now int64) *task.Task {
	if m.executing == nil {
		panic("machine: FinishExecuting on idle machine")
	}
	t := m.executing
	m.busyTicks += now - m.runStart
	m.executing = nil
	m.version++
	return t
}

// RemovePending removes the given task from the pending queue, returning
// false if it is not there.
func (m *Machine) RemovePending(t *task.Task) bool {
	for i, q := range m.pending {
		if q == t {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.version++
			return true
		}
	}
	return false
}

// BusyTicks returns the accumulated busy time, including the in-progress
// run up to tick now.
func (m *Machine) BusyTicks(now int64) int64 {
	b := m.busyTicks
	if m.executing != nil && now > m.runStart {
		b += now - m.runStart
	}
	return b
}

// Cost returns the dollar cost of this machine's busy time up to tick now,
// with ticksPerHour converting simulation ticks to billable hours.
func (m *Machine) Cost(now int64, ticksPerHour float64) float64 {
	return float64(m.BusyTicks(now)) / ticksPerHour * m.Price
}

// QueueView is a snapshot of one queued (or executing) task's probabilistic
// state, produced by AnalyzeQueue for the pruner.
type QueueView struct {
	Task       *task.Task
	Position   int      // 0 = executing (or queue head when idle)
	Completion *pmf.PMF // this task's machine-free-time PMF
	Robustness float64  // P(success) under the configured drop mode
	Skewness   float64  // bounded skewness of the completion PMF
}

// AnalyzeQueue chains completion-time PMFs through the executing task and
// every pending task (paper Section IV), returning one QueueView per task
// in queue order. The executing task's remaining time is its PET
// conditioned on having already run for (now - Start) ticks. maxImpulses
// bounds intermediate PMF width (0 disables compaction).
func (m *Machine) AnalyzeQueue(now int64, matrix pet.View, mode pmf.DropMode, maxImpulses int) []QueueView {
	var views []QueueView
	prev := pmf.Impulse(now)
	pos := 0
	if m.executing != nil {
		t := m.executing
		// The run began at t.Start with t.Consumed ticks already banked
		// from earlier (preempted) runs: completion = start - consumed +
		// total duration, conditioned on not having finished yet. The
		// profile (and the consumed credit) is stretched by the factor the
		// run started under.
		comp := matrix.ScaledPMF(t.Type, m.ID, m.runFactor).
			Shift(t.Start - pmf.ScaleDur(t.Consumed, m.runFactor)).ConditionAtLeast(now)
		// The executing task is beyond the "pending" convolution regime:
		// its success is simply the probability its remaining time beats
		// the deadline; under Evict it frees the machine at the deadline.
		rob := comp.SuccessProb(t.Deadline)
		free := comp
		if mode == pmf.Evict {
			free = comp.Clone()
			late := free.TruncateAfter(t.Deadline)
			if late > 0 {
				free.AddMass(t.Deadline, late)
			}
		}
		free = pmf.Compact(free, maxImpulses)
		views = append(views, QueueView{
			Task: t, Position: pos, Completion: free,
			Robustness: rob, Skewness: comp.BoundedSkewness(),
		})
		prev = free
		pos++
	}
	for _, t := range m.pending {
		exec := matrix.RemainingEntry(t.Type, m.ID, m.speed, t.Consumed).PMF
		res := pmf.ConvolveDrop(prev, exec, t.Deadline, mode)
		free := pmf.Compact(res.Free, maxImpulses)
		views = append(views, QueueView{
			Task: t, Position: pos, Completion: free,
			Robustness: res.Success, Skewness: res.Free.BoundedSkewness(),
		})
		prev = free
		pos++
	}
	return views
}

// FreeTimePMF returns the PMF of the tick at which the machine finishes
// everything currently assigned to it (the tail PCT robustness-based
// mappers convolve candidate tasks against). For an empty machine it is an
// impulse at now.
func (m *Machine) FreeTimePMF(now int64, matrix pet.View, mode pmf.DropMode, maxImpulses int) *pmf.PMF {
	return m.TailPMF(nil, now, matrix, mode, maxImpulses)
}

// TailPMF is FreeTimePMF with every intermediate distribution allocated in
// the arena (nil falls back to the heap): it walks the same completion
// chain as AnalyzeQueue without materializing per-task views, which is all
// a mapping event needs. The result is valid until the arena's next Reset.
func (m *Machine) TailPMF(a *pmf.Arena, now int64, matrix pet.View, mode pmf.DropMode, maxImpulses int) *pmf.PMF {
	prev := a.Impulse(now)
	if m.executing != nil {
		t := m.executing
		// The run began at t.Start with t.Consumed ticks already banked from
		// earlier (preempted) runs: completion = start - consumed + total
		// duration, conditioned on not having finished yet — all in the time
		// scale of the factor the run started under.
		f := m.runFactor
		free := a.ShiftConditioned(matrix.ScaledPMF(t.Type, m.ID, f), t.Start-pmf.ScaleDur(t.Consumed, f), now)
		if mode == pmf.Evict {
			free = a.EvictTail(free, t.Deadline)
		}
		prev = a.Compact(free, maxImpulses)
	}
	for _, t := range m.pending {
		// Consumed > 0 (preempted or restored): the matrix's cached
		// conditioned view, bit-identical to RemainingAfter on the heap.
		exec := matrix.RemainingEntry(t.Type, m.ID, m.speed, t.Consumed).PMF
		res := a.ConvolveDrop(prev, exec, t.Deadline, mode)
		prev = a.Compact(res.Free, maxImpulses)
	}
	return prev
}

// ExpectedReady returns the scalar expected tick at which the machine could
// begin one more task: now + expected remaining execution + expected
// pending executions. Scalar heuristics (MM, MSD, MMU) build their
// expected completion times on top of this.
func (m *Machine) ExpectedReady(now int64, matrix pet.View) float64 {
	ready := float64(now)
	if m.executing != nil {
		t := m.executing
		f := m.runFactor
		ready = pmf.CondMeanShifted(matrix.ScaledPMF(t.Type, m.ID, f), t.Start-pmf.ScaleDur(t.Consumed, f), now)
	}
	for _, t := range m.pending {
		if t.Consumed > 0 {
			// Preempted/restored: the cached conditioned view's mean (its
			// Mean field is the conditioned PMF's profiled mean, unlike
			// nominal entries whose Mean is the ground-truth gamma mean).
			ready += matrix.RemainingEntry(t.Type, m.ID, m.speed, t.Consumed).Mean
		} else {
			ready += matrix.ScaledEstMean(t.Type, m.ID, m.speed)
		}
	}
	return ready
}

// Reset returns the machine to its initial idle state (used by tests and
// by trial reuse in benchmarks).
func (m *Machine) Reset() {
	m.executing = nil
	m.pending = nil
	m.busyTicks = 0
	m.runStart = 0
	m.alive = true
	m.speed = 1
	m.runFactor = 1
	m.version++
}
