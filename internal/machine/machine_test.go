package machine

import (
	"errors"
	"math"
	"testing"

	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// tinyPET builds a 2-type × 2-machine matrix with small deterministic-ish
// profiles for queue-math tests.
func tinyPET(t *testing.T) *pet.Matrix {
	t.Helper()
	cfg := pet.BuildConfig{Samples: 300, Bins: 16, MaxImpulses: 16, ShapeLo: 4, ShapeHi: 8}
	m, err := pet.Build([][]float64{{10, 20}, {30, 15}}, cfg, stats.NewRNG(2))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func mkTask(id int, typ task.Type, deadline int64) *task.Task {
	tk := task.New(id, typ, 0, deadline)
	tk.TrueExec = []int64{10, 20}
	return tk
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("queue capacity 0 did not panic")
		}
	}()
	New(0, "m0", 0, 0.1)
}

func TestEnqueueCapacity(t *testing.T) {
	m := New(0, "m0", 3, 0)
	for i := 0; i < 3; i++ {
		if err := m.Enqueue(mkTask(i, 0, 100)); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
	}
	if err := m.Enqueue(mkTask(3, 0, 100)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overfull Enqueue = %v, want ErrQueueFull", err)
	}
	if got := m.QueueLen(); got != 3 {
		t.Errorf("QueueLen = %d, want 3", got)
	}
	if got := m.FreeSlots(); got != 0 {
		t.Errorf("FreeSlots = %d, want 0", got)
	}
}

func TestEnqueueSetsState(t *testing.T) {
	m := New(1, "m1", 2, 0)
	tk := mkTask(0, 0, 100)
	if err := m.Enqueue(tk); err != nil {
		t.Fatal(err)
	}
	if tk.State != task.StateQueued {
		t.Errorf("State = %v, want queued", tk.State)
	}
	if tk.Machine != 1 {
		t.Errorf("Machine = %d, want 1", tk.Machine)
	}
}

func TestStartNextFCFS(t *testing.T) {
	m := New(0, "m0", 6, 0)
	a, b := mkTask(0, 0, 100), mkTask(1, 0, 100)
	m.Enqueue(a)
	m.Enqueue(b)
	got := m.StartNext(5)
	if got != a {
		t.Fatalf("StartNext returned %v, want first-enqueued %v", got, a)
	}
	if a.State != task.StateRunning || a.Start != 5 {
		t.Errorf("started task = %+v", a)
	}
	if m.Executing() != a {
		t.Error("Executing() mismatch")
	}
	// Starting again while busy returns nil.
	if m.StartNext(6) != nil {
		t.Error("StartNext while busy should return nil")
	}
	// Pending preserved in order.
	if len(m.Pending()) != 1 || m.Pending()[0] != b {
		t.Error("pending queue corrupted")
	}
}

func TestFinishExecutingAccountsBusyTime(t *testing.T) {
	m := New(0, "m0", 6, 0)
	a := mkTask(0, 0, 100)
	m.Enqueue(a)
	m.StartNext(10)
	got := m.FinishExecuting(25)
	if got != a {
		t.Fatal("FinishExecuting returned wrong task")
	}
	if m.BusyTicks(25) != 15 {
		t.Errorf("BusyTicks = %d, want 15", m.BusyTicks(25))
	}
	if !m.Idle() {
		t.Error("machine should be idle after finish")
	}
}

func TestFinishExecutingPanicsWhenIdle(t *testing.T) {
	m := New(0, "m0", 6, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("FinishExecuting on idle machine did not panic")
		}
	}()
	m.FinishExecuting(5)
}

func TestBusyTicksIncludesInProgressRun(t *testing.T) {
	m := New(0, "m0", 6, 0)
	m.Enqueue(mkTask(0, 0, 100))
	m.StartNext(10)
	if got := m.BusyTicks(30); got != 20 {
		t.Errorf("BusyTicks mid-run = %d, want 20", got)
	}
}

func TestCost(t *testing.T) {
	m := New(0, "m0", 6, 3.6) // $3.6/hour
	m.Enqueue(mkTask(0, 0, 10_000_000))
	m.StartNext(0)
	m.FinishExecuting(1_800_000) // half an hour at 1000 ticks/sec... using ticksPerHour=3.6e6
	if got := m.Cost(1_800_000, 3_600_000); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("Cost = %v, want 1.8 (half an hour at $3.6)", got)
	}
}

func TestRemovePending(t *testing.T) {
	m := New(0, "m0", 6, 0)
	a, b, c := mkTask(0, 0, 100), mkTask(1, 0, 100), mkTask(2, 0, 100)
	m.Enqueue(a)
	m.Enqueue(b)
	m.Enqueue(c)
	if !m.RemovePending(b) {
		t.Fatal("RemovePending(b) = false")
	}
	if m.RemovePending(b) {
		t.Error("double remove succeeded")
	}
	p := m.Pending()
	if len(p) != 2 || p[0] != a || p[1] != c {
		t.Errorf("pending after removal = %v", p)
	}
}

func TestAnalyzeQueueChains(t *testing.T) {
	matrix := tinyPET(t)
	m := New(0, "m0", 6, 0)
	// Generous deadlines so nothing is hopeless.
	a := mkTask(0, 0, 100)
	b := mkTask(1, 1, 200)
	c := mkTask(2, 0, 300)
	m.Enqueue(a)
	m.Enqueue(b)
	m.Enqueue(c)
	m.StartNext(0)

	views := m.AnalyzeQueue(0, matrix, pmf.PendingDrop, 32)
	if len(views) != 3 {
		t.Fatalf("views = %d, want 3", len(views))
	}
	for i, v := range views {
		if v.Position != i {
			t.Errorf("view %d position = %d", i, v.Position)
		}
		if v.Robustness < 0 || v.Robustness > 1 {
			t.Errorf("view %d robustness = %v", i, v.Robustness)
		}
		if math.Abs(v.Completion.Mass()-1) > 1e-6 {
			t.Errorf("view %d completion mass = %v", i, v.Completion.Mass())
		}
	}
	// With generous deadlines, each later queue position completes later in
	// expectation.
	if !(views[0].Completion.Mean() < views[1].Completion.Mean()) ||
		!(views[1].Completion.Mean() < views[2].Completion.Mean()) {
		t.Errorf("completion means not increasing down the queue: %v %v %v",
			views[0].Completion.Mean(), views[1].Completion.Mean(), views[2].Completion.Mean())
	}
}

func TestAnalyzeQueueExecutingConditioned(t *testing.T) {
	matrix := tinyPET(t)
	m := New(0, "m0", 6, 0)
	a := mkTask(0, 0, 100)
	m.Enqueue(a)
	m.StartNext(0)
	// After running 15 ticks (longer than the ~10-tick mean), the remaining
	// completion time must be conditioned at now.
	views := m.AnalyzeQueue(15, matrix, pmf.PendingDrop, 32)
	if views[0].Completion.Start() < 15 {
		t.Errorf("conditioned completion starts at %d, want >= 15", views[0].Completion.Start())
	}
}

func TestFreeTimePMFIdle(t *testing.T) {
	matrix := tinyPET(t)
	m := New(0, "m0", 6, 0)
	p := m.FreeTimePMF(42, matrix, pmf.PendingDrop, 32)
	if p.At(42) != 1 {
		t.Errorf("idle FreeTimePMF = %v, want impulse at 42", p)
	}
}

func TestFreeTimePMFEvictBoundedByDeadline(t *testing.T) {
	matrix := tinyPET(t)
	m := New(0, "m0", 6, 0)
	a := mkTask(0, 0, 12) // tight deadline
	m.Enqueue(a)
	m.StartNext(0)
	p := m.FreeTimePMF(0, matrix, pmf.Evict, 32)
	if p.End() > 12 {
		t.Errorf("evict free time extends to %d past deadline 12", p.End())
	}
}

func TestExpectedReady(t *testing.T) {
	matrix := tinyPET(t)
	m := New(0, "m0", 6, 0)
	if got := m.ExpectedReady(7, matrix); got != 7 {
		t.Errorf("idle ExpectedReady = %v, want 7", got)
	}
	a, b := mkTask(0, 0, 1000), mkTask(1, 1, 1000)
	m.Enqueue(a)
	m.Enqueue(b)
	m.StartNext(0)
	ready := m.ExpectedReady(0, matrix)
	// Expected: remaining of a (≈ mean 10) plus estimated mean of b on
	// machine 0 (≈ 30).
	want := matrix.PMF(0, 0).Mean() + matrix.EstMean(1, 0)
	if math.Abs(ready-want) > 3 {
		t.Errorf("ExpectedReady = %v, want ≈ %v", ready, want)
	}
}

func TestReset(t *testing.T) {
	m := New(0, "m0", 6, 0)
	m.Enqueue(mkTask(0, 0, 100))
	m.StartNext(0)
	m.FinishExecuting(10)
	m.Reset()
	if !m.Idle() || m.QueueLen() != 0 || m.BusyTicks(100) != 0 {
		t.Error("Reset did not clear state")
	}
}
