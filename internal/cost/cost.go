// Package cost implements the paper's cloud cost model (Section VII-F):
// Amazon EC2 on-demand prices are mapped onto the simulated machines,
// machine busy time is billed at those rates, and the reported metric is
// dollars spent divided by the robustness achieved.
package cost

// Substitution note (DESIGN.md §5): the paper cites 2018 AWS pricing for
// its eight machines. The exact mapping from the eight physical SPEC
// machines to instance types is not given, so we bill each machine at a
// representative 2018 us-east-1 on-demand rate spanning the same ~6× price
// spread the EC2 families exhibit (from t3/m5-class up to GPU-class
// instances). Only relative prices matter to the Fig. 8 comparison.

// TicksPerHour converts simulation ticks (≈ 1 ms) into billable hours.
const TicksPerHour = 3_600_000.0

// SPECMachinePrices returns dollars-per-hour for the eight main-workload
// machines, ordered by machine ID.
func SPECMachinePrices() []float64 {
	return []float64{
		0.096, // m5.large-class general purpose
		0.085, // c5.large-class compute optimized
		0.133, // r5.large-class memory optimized
		0.192, // m5.xlarge-class
		0.170, // c5.xlarge-class
		0.266, // r5.xlarge-class
		0.526, // g3s.xlarge-class GPU
		0.900, // p2.xlarge-class GPU
	}
}

// VideoMachinePrices returns dollars-per-hour for the four video-workload
// VM types (cpu-opt, mem-opt, general, gpu), mirroring the EC2 families
// the paper's Fig. 9 fleet uses.
func VideoMachinePrices() []float64 {
	return []float64{0.170, 0.266, 0.192, 0.900}
}

// Uniform returns n machines priced identically (used by tests and
// ablations to isolate robustness effects from price effects).
func Uniform(n int, price float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = price
	}
	return out
}

// Total bills a set of per-machine busy tick counts at the given prices.
func Total(busyTicks []int64, prices []float64) float64 {
	if len(busyTicks) != len(prices) {
		panic("cost: busyTicks/prices length mismatch")
	}
	var sum float64
	for i, b := range busyTicks {
		sum += float64(b) / TicksPerHour * prices[i]
	}
	return sum
}
