package cost

import (
	"math"
	"testing"
)

func TestSPECMachinePrices(t *testing.T) {
	prices := SPECMachinePrices()
	if len(prices) != 8 {
		t.Fatalf("got %d prices, want 8 machines", len(prices))
	}
	lo, hi := prices[0], prices[0]
	for _, p := range prices {
		if p <= 0 {
			t.Errorf("non-positive price %v", p)
		}
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	// The EC2 family spread the model relies on: roughly an order of
	// magnitude between cheapest and most expensive.
	if hi/lo < 4 {
		t.Errorf("price spread %v too flat to exercise the cost model", hi/lo)
	}
}

func TestVideoMachinePrices(t *testing.T) {
	prices := VideoMachinePrices()
	if len(prices) != 4 {
		t.Fatalf("got %d prices, want 4 VM types", len(prices))
	}
	// GPU (index 3) must be the most expensive, as on EC2.
	for i := 0; i < 3; i++ {
		if prices[i] >= prices[3] {
			t.Errorf("VM %d priced %v >= GPU %v", i, prices[i], prices[3])
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(5, 0.25)
	if len(u) != 5 {
		t.Fatalf("len = %d", len(u))
	}
	for _, p := range u {
		if p != 0.25 {
			t.Errorf("price = %v, want 0.25", p)
		}
	}
}

func TestTotal(t *testing.T) {
	busy := []int64{TicksPerHour, TicksPerHour / 2}
	prices := []float64{1.0, 2.0}
	if got := Total(busy, prices); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Total = %v, want 2.0 (1h@$1 + 0.5h@$2)", got)
	}
	if got := Total(nil, nil); got != 0 {
		t.Errorf("empty Total = %v, want 0", got)
	}
}

func TestTotalPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Total([]int64{1}, []float64{1, 2})
}
