package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// TestClusterStreamedParallelDeterminism: sharded trials add a second
// layer of per-trial state (the engine, per-DC simulators, a fresh policy
// instance each) on top of the streamed sources; this pins that
// RunClusterPoint is race-free and that a 4-DC trial with mid-trial
// whole-DC outages yields identical cluster statistics under any worker
// count. CI runs this test under -race alongside the single-fleet
// streamed job.
func TestClusterStreamedParallelDeterminism(t *testing.T) {
	matrix := SPECPET()
	o := Options{Trials: 6, Tasks: 200, Seed: 5, Beta: 2.0, VarFrac: 0.10, Streamed: true}
	wcfg := o.workloadConfig(workload.Level19k)
	cp := ClusterPoint{DCs: 4, Route: "pet-aware", Scenario: clusterOutageScenario(4, 1)}
	run := func(workers int) []metricsStats {
		o := o
		o.Workers = workers
		trials, err := o.RunClusterPoint(matrix, wcfg, simulator.MustConfigFor("PAM", matrix), cp)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]metricsStats, len(trials))
		for i, tr := range trials {
			out[i] = metricsStats{tr.RobustnessPct, tr.Completed, tr.Dropped, tr.Missed, tr.Total}
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sharded trials depend on worker count:\n 1 worker:  %v\n 4 workers: %v", serial, parallel)
	}
	for i, tr := range serial {
		if tr.Total != o.Tasks {
			t.Fatalf("cluster trial %d accounted %d of %d tasks", i, tr.Total, o.Tasks)
		}
	}
}

// TestClusterDCParallelOptionEquivalence pins Options.DCParallel as a pure
// wall-clock knob: trial statistics are identical with the option off, with
// it on under a worker count that admits per-DC goroutines (workers × DCs
// within GOMAXPROCS), and with it on under a pool already saturating the
// host — where the composition rule must quietly keep trials sequential
// rather than oversubscribe. GOMAXPROCS is pinned so the admission
// boundary is the same on every test host.
func TestClusterDCParallelOptionEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	matrix := SPECPET()
	o := Options{Trials: 4, Tasks: 200, Seed: 5, Beta: 2.0, VarFrac: 0.10, Streamed: true}
	wcfg := o.workloadConfig(workload.Level19k)
	cp := ClusterPoint{DCs: 4, Route: "pet-aware", Scenario: clusterOutageScenario(4, 1)}
	run := func(workers int, dcPar bool) []metricsStats {
		o := o
		o.Workers = workers
		o.DCParallel = dcPar
		trials, err := o.RunClusterPoint(matrix, wcfg, simulator.MustConfigFor("PAM", matrix), cp)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]metricsStats, len(trials))
		for i, tr := range trials {
			out[i] = metricsStats{tr.RobustnessPct, tr.Completed, tr.Dropped, tr.Missed, tr.Total}
		}
		return out
	}
	base := run(1, false)
	if admitted := run(1, true); !reflect.DeepEqual(base, admitted) {
		t.Fatalf("DCParallel (admitted: 1 worker × 4 DCs on 8 procs) changed results:\n off: %v\n on:  %v", base, admitted)
	}
	if saturated := run(4, true); !reflect.DeepEqual(base, saturated) {
		t.Fatalf("DCParallel (suppressed: 4 workers × 4 DCs on 8 procs) changed results:\n off: %v\n on:  %v", base, saturated)
	}
}

// TestClusterFaultToleranceSmoke runs the cluster study at smoke scale and
// checks its shape: every (shard count × outage count) point is present
// and outage-free points are no worse than their 2-outage counterparts.
func TestClusterFaultToleranceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster study sweep in -short mode")
	}
	o := Options{Trials: 2, Tasks: 300, Seed: 1, Beta: 2.0, VarFrac: 0.10}
	fig, err := ClusterFaultTolerance(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 6 {
		t.Fatalf("cluster-fault has %d points, want 6", len(fig.Points))
	}
	for _, series := range []string{"2DC", "4DC"} {
		calm, ok1 := fig.FindPoint(series, "0 outages")
		storm, ok2 := fig.FindPoint(series, "2 outages")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing sweep points", series)
		}
		if calm.Robustness.Mean < storm.Robustness.Mean {
			t.Errorf("%s: robustness rose under outages: calm %.1f%% vs storm %.1f%%",
				series, calm.Robustness.Mean, storm.Robustness.Mean)
		}
	}
}
