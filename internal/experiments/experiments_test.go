package experiments

import (
	"strings"
	"testing"

	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// tinyOptions keeps experiment smoke tests fast on a single core.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Trials = 2
	o.Tasks = 150
	return o
}

func TestSharedPETs(t *testing.T) {
	spec := SPECPET()
	if spec.NumTypes() != 12 || spec.NumMachines() != 8 {
		t.Errorf("SPEC PET is %dx%d, want 12x8", spec.NumTypes(), spec.NumMachines())
	}
	video := VideoPET()
	if video.NumTypes() != 4 || video.NumMachines() != 4 {
		t.Errorf("video PET is %dx%d, want 4x4", video.NumTypes(), video.NumMachines())
	}
	if SPECPET() != spec {
		t.Error("SPECPET not cached (paper holds the PET constant)")
	}
}

func TestRunPointDeterminism(t *testing.T) {
	o := tinyOptions()
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	cfg := simulator.MustConfigFor("MM", matrix)
	a, err := o.RunPoint(matrix, wcfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.RunPoint(matrix, wcfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RobustnessPct != b[i].RobustnessPct {
			t.Errorf("trial %d: %v vs %v", i, a[i].RobustnessPct, b[i].RobustnessPct)
		}
	}
}

func TestRunPointTrialsDiffer(t *testing.T) {
	o := tinyOptions()
	o.Trials = 3
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	trials, err := o.RunPoint(matrix, wcfg, simulator.MustConfigFor("MM", matrix))
	if err != nil {
		t.Fatal(err)
	}
	allSame := true
	for i := 1; i < len(trials); i++ {
		if trials[i].RobustnessPct != trials[0].RobustnessPct {
			allSame = false
		}
	}
	if allSame {
		t.Error("all trials identical; per-trial seeds not applied")
	}
}

func TestRunPointValidation(t *testing.T) {
	o := tinyOptions()
	o.Trials = 0
	_, err := o.RunPoint(SPECPET(), o.workloadConfig(workload.Level19k), simulator.MustConfigFor("MM", SPECPET()))
	if err == nil {
		t.Error("zero trials accepted")
	}
}

func TestFig7Smoke(t *testing.T) {
	fig, err := Fig7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 12 { // 6 heuristics × 2 levels
		t.Fatalf("points = %d, want 12", len(fig.Points))
	}
	for _, p := range fig.Points {
		if p.Robustness.Mean < 0 || p.Robustness.Mean > 100 {
			t.Errorf("%s@%s robustness %v out of range", p.Series, p.Label, p.Robustness.Mean)
		}
	}
	if _, ok := fig.FindPoint("PAM", "34k"); !ok {
		t.Error("PAM@34k point missing")
	}
	tbl := fig.RobustnessTable().String()
	if !strings.Contains(tbl, "PAM") || !strings.Contains(tbl, "±") {
		t.Errorf("table rendering incomplete:\n%s", tbl)
	}
}

func TestFig9Smoke(t *testing.T) {
	fig, err := Fig9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 8 { // 2 heuristics × 4 levels
		t.Fatalf("points = %d, want 8", len(fig.Points))
	}
	if _, ok := fig.FindPoint("PAMF", "12.5k"); !ok {
		t.Error("PAMF@12.5k point missing")
	}
}

func TestFig6Smoke(t *testing.T) {
	o := tinyOptions()
	fig, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 12 { // 6 factors × 2 levels
		t.Fatalf("points = %d, want 12", len(fig.Points))
	}
	tbl := fig.FairnessTable().String()
	if !strings.Contains(tbl, "ϑ=5%") {
		t.Errorf("fairness table missing factor label:\n%s", tbl)
	}
}

func TestFigureTables(t *testing.T) {
	fig := &Figure{Name: "X", Caption: "c"}
	fig.Points = append(fig.Points, NewPoint("S", "L", nil))
	for _, tbl := range []string{
		fig.RobustnessTable().String(),
		fig.CostTable().String(),
		fig.FairnessTable().String(),
	} {
		if !strings.Contains(tbl, "X — c") || !strings.Contains(tbl, "S") {
			t.Errorf("table missing identity:\n%s", tbl)
		}
	}
	if _, ok := fig.FindPoint("S", "nope"); ok {
		t.Error("FindPoint matched a missing label")
	}
}
