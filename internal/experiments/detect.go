package experiments

import (
	"fmt"

	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// This file evaluates the detection-and-admission layer of the cluster
// dispatcher: the fault-tolerance study (cluster.go) assumes an oracle
// that reroutes the instant a datacenter dies, while real failover is
// detection-based — outages go unnoticed for a heartbeat timeout, tasks
// bounce off dead-but-trusted shards, and a fully dark cluster either
// drops arrivals or buffers them against recovery. The study quantifies
// what that imperfection costs and what bounded buffering buys back.

// detectStormSchedule is the outage storm the detection study runs under:
// a single staggered outage early (survivors absorb the load, detection
// lag shows up as bounced dispatches), then a full blackout with
// staggered recoveries (the gate buffer — or its absence — decides the
// fate of every arrival in the dark window). Ticks are calibrated to the
// ≈4100-tick span of an 800-task trial at the 19k level, mirroring
// clusterOutageScenario.
func detectStormSchedule(fo *scenario.FailoverPolicy) *scenario.Scenario {
	sc := scenario.New("detect-storm").
		DCFailAt(1200, 0, scenario.Requeue).
		DCRecoverAt(2200, 0).
		DCFailAt(2600, 0, scenario.Requeue).
		DCFailAt(2600, 1, scenario.Requeue).
		DCFailAt(2650, 2, scenario.Requeue).
		DCFailAt(2650, 3, scenario.Requeue).
		DCRecoverAt(3000, 0).
		DCRecoverAt(3100, 1).
		DCRecoverAt(3200, 2).
		DCRecoverAt(3300, 3)
	if fo != nil {
		sc = sc.WithFailover(*fo)
	}
	return sc
}

// DetectionLag sweeps robustness against the health monitor's detection
// timeout crossed with the gate buffer's capacity and shedding policy, on
// a 4-datacenter PAM cluster with PET-aware routing at the 19k level.
// Series are detectors — the oracle baseline against heartbeat monitors
// with 200- and 600-tick timeouts (heartbeat × suspicion threshold) —
// and x-positions are admission configurations, from drop-at-gate to a
// 64-slot drop-oldest buffer, with 16-slot tiers small enough that the
// blackout overflows them and the shedding policy has to choose victims.
// The interesting reads: how much
// robustness the detection lag itself costs (oracle vs heartbeat at the
// same admission config), and how much of it bounded buffering buys back
// once the blackout window no longer hard-drops arrivals.
func DetectionLag(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	fig := &Figure{
		Name:    "DetectLag",
		Caption: "robustness @19k: PAM, pet-aware routing, 4 DCs under an outage storm — detection timeout vs gate buffering and shedding",
	}
	detectors := []struct {
		name string
		fo   scenario.FailoverPolicy
	}{
		{"oracle", scenario.FailoverPolicy{}},
		{"hb100x2", scenario.FailoverPolicy{Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 100, SuspectAfter: 2, Probation: 50}},
		{"hb300x2", scenario.FailoverPolicy{Kind: scenario.FailoverHeartbeat, HeartbeatEvery: 300, SuspectAfter: 2, Probation: 50}},
	}
	admissions := []struct {
		name string
		cap  int
		shed scenario.ShedKind
	}{
		{"no-buffer", 0, scenario.ShedDropNewest},
		{"buf16-newest", 16, scenario.ShedDropNewest},
		{"buf16-deadline", 16, scenario.ShedDeadlineAware},
		{"buf64-oldest", 64, scenario.ShedDropOldest},
	}
	for _, det := range detectors {
		for _, adm := range admissions {
			fo := det.fo
			fo.GateBuffer = adm.cap
			fo.Shed = adm.shed
			simCfg := simulator.MustConfigFor("PAM", matrix)
			cp := ClusterPoint{DCs: 4, Route: "pet-aware", Scenario: detectStormSchedule(&fo)}
			trials, err := o.RunClusterPoint(matrix, wcfg, simCfg, cp)
			if err != nil {
				return nil, fmt.Errorf("detect-lag %s/%s: %w", det.name, adm.name, err)
			}
			fig.Points = append(fig.Points, NewPoint(det.name, adm.name, trials))
		}
	}
	return fig, nil
}
