// Package experiments regenerates every figure of the paper's evaluation
// (Section VII) plus the ablation studies called out in DESIGN.md. Each
// experiment sweeps its parameter, fans independent workload trials out
// over a worker pool, and aggregates robustness/fairness/cost with 95%
// confidence intervals.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/report"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/workload"
)

// Options controls experiment scale. The zero value is unusable; start
// from DefaultOptions.
type Options struct {
	// Trials per configuration point (paper: 30).
	Trials int
	// Tasks per trial (paper: 800).
	Tasks int
	// Seed is the base seed; trial k uses Seed + k so all series at the
	// same load level see identical workloads.
	Seed int64
	// Workers bounds trial parallelism (0 → GOMAXPROCS).
	Workers int
	// Beta is the deadline slack coefficient for generated workloads.
	Beta float64
	// VarFrac is the arrival-gamma variance fraction (paper: 0.10).
	VarFrac float64
	// DCParallel lets sharded trials step their datacenters on parallel
	// goroutines (cluster.Config.Parallel). Results are byte-identical
	// either way, so this is purely a wall-clock knob; RunClusterPoint
	// only honors it when the trial worker pool leaves cores idle —
	// workers × DCs must fit in GOMAXPROCS — since oversubscribing cores
	// with nested parallelism makes both levels slower.
	DCParallel bool
	// Streamed switches trials to the pure streaming arrival source
	// (workload.NewStream): constant memory in the trial length, per-type
	// RNG splits. Off, trials use the replay-mode source, whose workloads
	// are byte-identical to the historical pre-generated slices.
	Streamed bool
}

// DefaultOptions mirrors the paper's experimental scale.
func DefaultOptions() Options {
	return Options{Trials: 30, Tasks: 800, Seed: 1, Workers: 0, Beta: 2.0, VarFrac: 0.10}
}

// QuickOptions is a reduced-scale profile for smoke tests and benchmarks.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Trials = 5
	return o
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) workloadConfig(level float64) workload.Config {
	return workload.Config{
		NumTasks: o.Tasks,
		Rate:     workload.RateForLevel(level),
		VarFrac:  o.VarFrac,
		Beta:     o.Beta,
	}
}

// petCache builds each PET matrix exactly once per process: the paper
// holds the PET "constant across all of our experiments".
var petCache struct {
	once  sync.Once
	spec  *pet.Matrix
	video *pet.Matrix
}

// petSeed fixes PET profiling randomness across the whole evaluation.
const petSeed = 0xBEEF

// SPECPET returns the shared 12×8 SPEC-like PET matrix.
func SPECPET() *pet.Matrix {
	petCache.once.Do(buildPETs)
	return petCache.spec
}

// VideoPET returns the shared 4×4 video-transcoding PET matrix.
func VideoPET() *pet.Matrix {
	petCache.once.Do(buildPETs)
	return petCache.video
}

func buildPETs() {
	rng := stats.NewRNG(petSeed)
	petCache.spec = pet.MustBuild(pet.SPECLikeMeans(), pet.DefaultBuildConfig(), rng)
	petCache.video = pet.MustBuild(pet.VideoMeans(), pet.DefaultBuildConfig(), rng)
}

// TrialSeed derives the RNG seed of trial k under base seed. The
// derivation depends only on (base, k) — never on which worker goroutine
// picks the trial up or in what order trials finish — so every experiment
// is reproducible under any Workers setting, including Workers=1. All
// series at the same load level see identical workloads because they share
// the base seed.
func TrialSeed(base int64, k int) int64 { return base + int64(k) }

// RunPoint executes Trials independent workload trials of one system
// configuration across a fixed pool of worker goroutines and returns the
// per-trial statistics in trial order.
//
// Each worker owns its trial end to end (workload generation, a private
// simulator, metrics collection), so trials share no mutable state; the
// simulators' PMF arenas draw their scratch blocks from a process-wide
// pool, which keeps the steady-state allocation rate flat no matter how
// many trials run.
func (o Options) RunPoint(matrix *pet.Matrix, wcfg workload.Config, simCfg simulator.Config) ([]metrics.TrialStats, error) {
	if o.Trials <= 0 {
		return nil, fmt.Errorf("experiments: Trials must be positive, got %d", o.Trials)
	}
	results := make([]metrics.TrialStats, o.Trials)
	errs := make([]error, o.Trials)
	workers := o.workers()
	if workers > o.Trials {
		workers = o.Trials
	}
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trials {
				errs[trial] = o.runTrial(trial, matrix, wcfg, simCfg, &results[trial])
			}
		}()
	}
	for trial := 0; trial < o.Trials; trial++ {
		trials <- trial
	}
	close(trials)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runTrial simulates one trial end to end, writing its statistics into
// out. A scenario on the simulator config also shapes the workload: its
// burst windows apply to the arrival source. Arrivals are pulled from a
// streaming source (replay mode by default, so results match the old
// pre-generated slices byte for byte; pure-stream mode under Streamed), so
// a trial's live heap holds in-flight tasks, not the whole workload.
func (o Options) runTrial(trial int, matrix *pet.Matrix, wcfg workload.Config, simCfg simulator.Config, out *metrics.TrialStats) error {
	rng := stats.NewRNG(TrialSeed(o.Seed, trial))
	simCfg.Scenario.ApplyBursts(&wcfg)
	var src workload.Source
	var err error
	if o.Streamed {
		src, err = workload.NewStream(wcfg, matrix, rng)
	} else {
		src, err = workload.NewSource(wcfg, matrix, rng)
	}
	if err != nil {
		return err
	}
	sim, err := simulator.New(simCfg)
	if err != nil {
		return err
	}
	st, err := sim.RunSource(src)
	if err != nil {
		return err
	}
	*out = st
	return nil
}

// Point is one x-position of one series in a figure.
type Point struct {
	Series string // series label (heuristic name, configuration, ...)
	Label  string // x-axis label ("19k", "λ=0.9", ...)

	Robustness stats.CI // % tasks completed on time
	Variance   stats.CI // variance of per-type completion % (fairness)
	CostPerPct stats.CI // $ per robustness point

	Trials []metrics.TrialStats
}

// NewPoint aggregates trial statistics into a Point.
func NewPoint(series, label string, trials []metrics.TrialStats) Point {
	return Point{
		Series:     series,
		Label:      label,
		Robustness: stats.Confidence95(metrics.RobustnessValues(trials)),
		Variance:   stats.Confidence95(metrics.VarianceValues(trials)),
		CostPerPct: stats.Confidence95(metrics.CostValues(trials)),
		Trials:     trials,
	}
}

// Figure is a regenerated paper figure: a named set of points.
type Figure struct {
	Name    string
	Caption string
	Points  []Point
}

// RobustnessTable renders the figure's robustness series as a text table.
func (f *Figure) RobustnessTable() *report.Table {
	t := report.NewTable(fmt.Sprintf("%s — %s", f.Name, f.Caption),
		"series", "x", "robustness % (mean ± 95% CI)")
	for _, p := range f.Points {
		t.AddRow(p.Series, p.Label, report.FormatCI(p.Robustness.Mean, p.Robustness.HalfSpan))
	}
	return t
}

// CostTable renders the figure's cost series (millidollars per robustness
// point).
func (f *Figure) CostTable() *report.Table {
	t := report.NewTable(fmt.Sprintf("%s — %s", f.Name, f.Caption),
		"series", "x", "cost m$ / robustness pct (mean ± 95% CI)")
	for _, p := range f.Points {
		t.AddRow(p.Series, p.Label, report.FormatCIPrec(p.CostPerPct.Mean, p.CostPerPct.HalfSpan, 3))
	}
	return t
}

// FairnessTable renders variance-of-type-completions plus robustness.
func (f *Figure) FairnessTable() *report.Table {
	t := report.NewTable(fmt.Sprintf("%s — %s", f.Name, f.Caption),
		"series", "x", "type-completion variance", "robustness %")
	for _, p := range f.Points {
		t.AddRow(p.Series, p.Label,
			report.FormatCI(p.Variance.Mean, p.Variance.HalfSpan),
			report.FormatCI(p.Robustness.Mean, p.Robustness.HalfSpan))
	}
	return t
}

// RobustnessChart renders the figure's robustness points as an ASCII bar
// chart for terminal eyeballing.
func (f *Figure) RobustnessChart() *report.Chart {
	c := report.NewChart(fmt.Sprintf("%s — %s", f.Name, f.Caption), "%")
	for _, p := range f.Points {
		c.AddWithError(p.Series+" @"+p.Label, p.Robustness.Mean, p.Robustness.HalfSpan)
	}
	return c
}

// FindPoint returns the first point with the given series and label, for
// tests and cross-experiment assertions.
func (f *Figure) FindPoint(series, label string) (Point, bool) {
	for _, p := range f.Points {
		if p.Series == series && p.Label == label {
			return p, true
		}
	}
	return Point{}, false
}
