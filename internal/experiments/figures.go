package experiments

import (
	"fmt"

	"taskprune/internal/cost"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// Fig4 reproduces the paper's Figure 4: robustness of PAM at the 34k load
// as a function of the Eq. 8 EWMA weight λ, with and without the Schmitt
// trigger. The paper's finding: higher λ (weight on the most recent
// mapping event) wins, and the Schmitt trigger beats a single threshold.
func Fig4(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level34k)
	fig := &Figure{Name: "Fig4", Caption: "robustness vs λ, single threshold (default) vs Schmitt trigger, PAM @34k"}
	for _, schmitt := range []bool{false, true} {
		series := "default"
		if schmitt {
			series = "schmitt"
		}
		for i := 1; i <= 10; i++ {
			lambda := float64(i) / 10
			cfg := simulator.MustConfigFor("PAM", matrix)
			pc := *cfg.Pruner
			pc.Lambda = lambda
			pc.UseSchmitt = schmitt
			cfg.Pruner = &pc
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig4 λ=%.1f schmitt=%v: %w", lambda, schmitt, err)
			}
			fig.Points = append(fig.Points, NewPoint(series, fmt.Sprintf("λ=%.1f", lambda), trials))
		}
	}
	return fig, nil
}

// Fig5 reproduces Figure 5: robustness of PAM at 34k as the deferring
// threshold grows from each dropping threshold (25%, 50%, 75%) in 5-point
// steps up to 90%. The paper's finding: a high deferring threshold
// dominates, and with it the dropping threshold barely matters.
func Fig5(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level34k)
	fig := &Figure{Name: "Fig5", Caption: "robustness vs deferring threshold per dropping threshold, PAM @34k"}
	for _, drop := range []float64{0.25, 0.50, 0.75} {
		series := fmt.Sprintf("drop=%.0f%%", drop*100)
		for defer_ := drop + 0.05; defer_ <= 0.901; defer_ += 0.05 {
			cfg := simulator.MustConfigFor("PAM", matrix)
			pc := *cfg.Pruner
			pc.DropThreshold = drop
			pc.DeferThreshold = defer_
			cfg.Pruner = &pc
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig5 drop=%.2f defer=%.2f: %w", drop, defer_, err)
			}
			fig.Points = append(fig.Points, NewPoint(series, fmt.Sprintf("defer=%.0f%%", defer_*100), trials))
		}
	}
	return fig, nil
}

// Fig6 reproduces Figure 6: PAMF's fairness/robustness trade-off as the
// fairness factor sweeps 0–25% at the 19k and 34k loads. The paper's
// finding: a 5% factor sharply cuts the variance of per-type completions
// at a ~10% relative robustness cost; larger factors add little.
func Fig6(o Options) (*Figure, error) {
	matrix := SPECPET()
	fig := &Figure{Name: "Fig6", Caption: "type-completion variance and robustness vs fairness factor, PAMF @19k/34k"}
	for _, level := range []float64{workload.Level19k, workload.Level34k} {
		wcfg := o.workloadConfig(level)
		series := workload.LevelLabel(level)
		for _, factor := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25} {
			cfg := simulator.MustConfigFor("PAMF", matrix)
			cfg.FairnessFactor = factor
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig6 level=%s ϑ=%.2f: %w", series, factor, err)
			}
			fig.Points = append(fig.Points, NewPoint(series, fmt.Sprintf("ϑ=%.0f%%", factor*100), trials))
		}
	}
	return fig, nil
}

// Fig7 reproduces Figure 7: robustness of PAM, PAMF, MOC, MM, MSD, MMU at
// the 19k and 34k loads. The paper's finding: PAM ≈ 70% > PAMF ≈ MOC ≈ 50%
// ≫ MM ≈ 25% > MSD/MMU ≈ 0 at high oversubscription.
func Fig7(o Options) (*Figure, error) {
	return heuristicComparison(o, "Fig7",
		"robustness by heuristic and oversubscription level",
		SPECPET(), []string{"PAM", "PAMF", "MOC", "MM", "MSD", "MMU"},
		[]float64{workload.Level19k, workload.Level34k}, cost.SPECMachinePrices())
}

// Fig8 reproduces Figure 8: incurred cost per robustness point for PAM,
// PAMF, MOC and MM at 19k and 34k. The paper's finding: pruning cuts the
// cost per completed-task percentage by roughly 40% versus MOC.
func Fig8(o Options) (*Figure, error) {
	return heuristicComparison(o, "Fig8",
		"cost per robustness point by heuristic and oversubscription level",
		SPECPET(), []string{"PAM", "PAMF", "MOC", "MM"},
		[]float64{workload.Level19k, workload.Level34k}, cost.SPECMachinePrices())
}

// Fig9 reproduces Figure 9: PAMF vs MM on the video-transcoding workload
// across four oversubscription levels. The paper's finding: PAMF's margin
// over MinMin widens as oversubscription grows.
func Fig9(o Options) (*Figure, error) {
	matrix := VideoPET()
	fig := &Figure{Name: "Fig9", Caption: "robustness on the video-transcoding workload, PAMF vs MM"}
	for _, level := range []float64{workload.Level10k, workload.Level12k5, workload.Level15k, workload.Level17k5} {
		wcfg := o.workloadConfig(level)
		wcfg.Rate = workload.VideoRateForLevel(level) // video system span (see levels.go)
		label := workload.LevelLabel(level)
		for _, hname := range []string{"PAMF", "MM"} {
			cfg, err := simulator.ConfigFor(hname, matrix)
			if err != nil {
				return nil, err
			}
			cfg.Prices = cost.VideoMachinePrices()
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("Fig9 %s @%s: %w", hname, label, err)
			}
			fig.Points = append(fig.Points, NewPoint(hname, label, trials))
		}
	}
	return fig, nil
}

// heuristicComparison runs a set of heuristics across load levels on one
// PET matrix.
func heuristicComparison(o Options, name, caption string, matrix *pet.Matrix, names []string, levels []float64, prices []float64) (*Figure, error) {
	fig := &Figure{Name: name, Caption: caption}
	for _, level := range levels {
		wcfg := o.workloadConfig(level)
		label := workload.LevelLabel(level)
		for _, hname := range names {
			cfg, err := simulator.ConfigFor(hname, matrix)
			if err != nil {
				return nil, err
			}
			cfg.Prices = prices
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s @%s: %w", name, hname, label, err)
			}
			fig.Points = append(fig.Points, NewPoint(hname, label, trials))
		}
	}
	return fig, nil
}

// MeanRobustness averages a point's trial robustness (convenience for
// tests).
func MeanRobustness(trials []metrics.TrialStats) float64 {
	if len(trials) == 0 {
		return 0
	}
	var s float64
	for _, t := range trials {
		s += t.RobustnessPct
	}
	return s / float64(len(trials))
}
