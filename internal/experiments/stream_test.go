package experiments

import (
	"reflect"
	"testing"

	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// TestStreamedParallelDeterminism: pull-based sources put new per-trial
// state (the arrival stream, its RNG splits, the shared task pool) inside
// each worker goroutine; this pins that RunPoint with streamed trials is
// race-free and yields identical statistics under any worker count. CI
// runs this test under -race.
func TestStreamedParallelDeterminism(t *testing.T) {
	matrix := SPECPET()
	o := Options{Trials: 8, Tasks: 200, Seed: 5, Beta: 2.0, VarFrac: 0.10, Streamed: true}
	wcfg := o.workloadConfig(workload.Level19k)
	run := func(workers int) []metricsStats {
		o := o
		o.Workers = workers
		trials, err := o.RunPoint(matrix, wcfg, simulator.MustConfigFor("PAM", matrix))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]metricsStats, len(trials))
		for i, tr := range trials {
			out[i] = metricsStats{tr.RobustnessPct, tr.Completed, tr.Dropped, tr.Missed, tr.Total}
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("streamed trials depend on worker count:\n 1 worker:  %v\n 4 workers: %v", serial, parallel)
	}
}

type metricsStats struct {
	Robustness float64
	Completed  int
	Dropped    int
	Missed     int
	Total      int
}

// TestStreamedMatchesReplayScale: a streamed point must run the same
// number of tasks through the same fleet as the replay path even though
// its workloads differ draw for draw — the scale knobs thread through.
func TestStreamedMatchesReplayScale(t *testing.T) {
	matrix := SPECPET()
	o := Options{Trials: 2, Tasks: 150, Seed: 9, Beta: 2.0, VarFrac: 0.10, Streamed: true}
	trials, err := o.RunPoint(matrix, o.workloadConfig(workload.Level19k), simulator.MustConfigFor("MM", matrix))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trials {
		if tr.Total != o.Tasks {
			t.Fatalf("streamed trial %d simulated %d tasks, want %d", i, tr.Total, o.Tasks)
		}
	}
}
