package experiments

import (
	"fmt"

	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/workload"
)

// This file measures what the paper's oracle-scheduler assumption is worth.
// Every robustness figure so far let the mapper read the true PET at every
// eval site — even while drift events moved it. The belief split makes the
// knowledge model a variable: the stale-pet study re-runs the robustness
// figure with the mapper's PET frozen at t=0 while the truth drifts, and
// the belief-converge study starts the mapper from a deliberately
// uninformative prior and watches online re-estimation claw the oracle's
// robustness back as completions accumulate.

// beliefVariant is one knowledge model under test.
type beliefVariant struct {
	label string
	p     *scenario.BeliefPolicy
}

// beliefVariants is the standard sweep: the oracle (today's engine), the
// frozen t=0 belief, and the online estimator at its default cadence.
func beliefVariants() []beliefVariant {
	return []beliefVariant{
		{"oracle", nil},
		{"frozen", &scenario.BeliefPolicy{Kind: scenario.BeliefFrozen}},
		{"online", &scenario.BeliefPolicy{Kind: scenario.BeliefOnline}},
	}
}

// beliefDriftScenario degrades machines 0, 3, and 6 from nominal speed to
// `to` with linear ramps over ticks 800–2400 — roughly the middle half of
// an 800-task trial's ≈4100-tick span at the 19k level, like
// FaultScenario's calibration. Three of eight machines slowing down moves
// enough of the fleet that a mapper still scheduling on the t=0 profile
// keeps packing queues the degraded machines can no longer drain.
func beliefDriftScenario(to float64) *scenario.Scenario {
	return scenario.New(fmt.Sprintf("stale-pet-%.1fx", to)).
		DriftAt(800, 2400, 0, 1, to, 0).
		DriftAt(800, 2400, 3, 1, to, 0).
		DriftAt(800, 2400, 6, 1, to, 0)
}

// StalePET sweeps PAM's robustness against drift magnitude under the three
// knowledge models at the 19k level. The oracle column is the paper's
// assumption (the mapper sees every degradation instantly), the frozen
// column is the worst case (it never sees any), and the online column is
// the realistic middle (it re-learns each machine's distribution from the
// completions it observes). The gap between oracle and frozen at each
// drift magnitude is the price of scheduling on stale knowledge; how much
// of that gap the online column closes is what re-estimation buys.
func StalePET(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	fig := &Figure{
		Name:    "StalePET",
		Caption: "PAM robustness @19k: drift magnitude vs mapper knowledge model (oracle / frozen / online belief)",
	}
	for _, v := range beliefVariants() {
		for _, drift := range []float64{1, 1.5, 2, 3} {
			cfg := simulator.MustConfigFor("PAM", matrix)
			label := "no drift"
			if drift > 1 {
				cfg.Scenario = beliefDriftScenario(drift)
				label = fmt.Sprintf("drift x%.1f", drift)
			}
			cfg.Belief = v.p
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("stale-pet PAM/%s/%s: %w", v.label, label, err)
			}
			fig.Points = append(fig.Points, NewPoint("PAM "+v.label, label, trials))
		}
	}
	return fig, nil
}

// coldPrior returns a deliberately uninformative PET: every (type,
// machine) cell profiled at the truth's grand mean, so the prior knows the
// overall workload scale but nothing about which machines are fast for
// which types — the knowledge PAM's pruning actually runs on.
func coldPrior(truth *pet.Matrix) *pet.Matrix {
	g := truth.GrandMean()
	means := make([][]float64, truth.NumTypes())
	for t := range means {
		row := make([]float64, truth.NumMachines())
		for mi := range row {
			row[mi] = g
		}
		means[t] = row
	}
	return pet.MustBuild(means, pet.DefaultBuildConfig(), stats.NewRNG(petSeed+1))
}

// BeliefConvergence starts PAM from the cold prior on a static fleet and
// sweeps trial length: with no per-cell knowledge the frozen mapper cannot
// tell fast machines from slow ones and prunes on wrong success
// probabilities for the whole trial, while the online mapper earns the
// truth back one completion at a time — its robustness trajectory versus
// tasks observed is the convergence curve, with the oracle rows as the
// ceiling. The refresh cadence knob is the entry point for studying how
// much estimation lag multi-tenant fairness can tolerate.
func BeliefConvergence(o Options) (*Figure, error) {
	matrix := SPECPET()
	prior := coldPrior(matrix)
	fig := &Figure{
		Name:    "BeliefConverge",
		Caption: "PAM robustness @19k vs trial length: cold-prior frozen and online beliefs against the oracle ceiling",
	}
	variants := []beliefVariant{
		{"oracle", nil},
		{"frozen", &scenario.BeliefPolicy{Kind: scenario.BeliefFrozen}},
		// An eager estimator (half the default floor and cadence): with a
		// cold prior every observation is better than what the mapper has,
		// so waiting for large samples just prolongs the blind window.
		{"online", &scenario.BeliefPolicy{Kind: scenario.BeliefOnline, Refresh: 10, MinSamples: 5}},
	}
	for _, v := range variants {
		for _, tasks := range []int{200, 400, 800, 1600} {
			oo := o
			oo.Tasks = tasks
			wcfg := oo.workloadConfig(workload.Level19k)
			cfg := simulator.MustConfigFor("PAM", matrix)
			cfg.Belief = v.p
			if v.p.Enabled() {
				cfg.BeliefPrior = prior
			}
			trials, err := oo.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("belief-converge PAM/%s/%d tasks: %w", v.label, tasks, err)
			}
			series := "PAM " + v.label
			if v.p.Enabled() {
				series += " cold"
			}
			fig.Points = append(fig.Points, NewPoint(series, fmt.Sprintf("%d tasks", tasks), trials))
		}
	}
	return fig, nil
}
