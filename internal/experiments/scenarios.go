package experiments

import (
	"fmt"

	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// This file evaluates the dynamic-fleet scenario engine: the paper's
// experiments hold the fleet fixed, but probabilistic pruning is supposed
// to shine exactly when capacity is yanked away mid-stream — the pruner
// sheds the tasks the shrunken fleet can no longer save instead of wasting
// the survivors' time on them.

// FaultScenario is the canned mid-trial churn used by the scen-fault
// experiment against the 8-machine SPEC-like PET: at roughly one third of
// the trial span two machines fail (their queues requeued), both recover at
// roughly two thirds, and a third machine runs 2× degraded in between. The
// ticks are calibrated to the ≈4100-tick span of an 800-task trial at the
// 19k arrival level.
func FaultScenario() *scenario.Scenario {
	return scenario.New("fault-tolerance").
		DegradeAt(900, 0, 2).
		FailAt(1200, 2, scenario.Requeue).
		FailAt(1400, 5, scenario.Requeue).
		RecoverAt(2600, 2).
		RecoverAt(2800, 5).
		DegradeAt(3000, 0, 1)
}

// ScenarioFaultTolerance compares every major heuristic on identical
// workloads with and without the FaultScenario churn at the 19k level. The
// interesting read is the churn column: the pruning mappers should hold on
// to most of their static robustness, while the baselines pay full price
// for every task they keep feeding the shrunken fleet.
func ScenarioFaultTolerance(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	fig := &Figure{
		Name:    "ScenFault",
		Caption: "robustness @19k: static fleet vs mid-trial churn (2 failures + recovery, 1 degradation)",
	}
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		for _, variant := range []struct {
			label string
			sc    *scenario.Scenario
		}{
			{"static", nil},
			{"churn", FaultScenario()},
		} {
			cfg := simulator.MustConfigFor(name, matrix)
			cfg.Scenario = variant.sc
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("scen-fault %s/%s: %w", name, variant.label, err)
			}
			fig.Points = append(fig.Points, NewPoint(name, variant.label, trials))
		}
	}
	return fig, nil
}
