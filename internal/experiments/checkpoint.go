package experiments

import (
	"fmt"

	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/workload"
)

// This file quantifies what checkpoint/restore buys back from failures.
// The paper's robustness metric charges a failed machine's in-flight tasks
// their full cost — every requeue restarts from zero — so the fault studies
// systematically overstate the price of churn for any real system that
// checkpoints. The sweep crosses checkpoint interval with outage count,
// single-fleet and sharded: the single-fleet half shows how much of the
// churn penalty each interval recovers (and what the per-checkpoint
// overhead costs when nothing fails over), while the 3-DC half isolates
// the survival question — a checkpoint that dies with its datacenter
// (local) is worthless under dc-fail, one that replicated out (minus the
// replication-lag window) keeps most of the drained tasks' progress.

// ckptVariant is one checkpoint policy under test.
type ckptVariant struct {
	label string
	p     *scenario.CheckpointPolicy
}

// checkpointVariants are the single-fleet policy sweep: no checkpointing
// (the engine's historical behaviour), a coarse and a fine interval at
// zero overhead (isolating the pure restore benefit), and the fine
// interval paying a realistic per-checkpoint overhead (the net effect —
// every task in the trial pays the checkpoint tax, only the failed ones
// collect the insurance). Intervals are in nominal execution ticks against
// task means of 50–200 ticks, so ck=100 checkpoints roughly once per mean
// task and ck=25 several times.
func checkpointVariants() []ckptVariant {
	return []ckptVariant{
		{"none", nil},
		{"ck=100", &scenario.CheckpointPolicy{Kind: scenario.CheckpointPeriodic, Interval: 100}},
		{"ck=25", &scenario.CheckpointPolicy{Kind: scenario.CheckpointPeriodic, Interval: 25}},
		{"ck=25+2", &scenario.CheckpointPolicy{Kind: scenario.CheckpointPeriodic, Interval: 25, Overhead: 2}},
	}
}

// checkpointChurnScenario builds the staggered failure storm for the
// single-fleet half: failure k takes machine k mod 8 down at tick 500+220·k
// (queues requeued) and brings it back 700 ticks later, so high failure
// counts keep 3–4 of the 8 machines dark at once and every failure
// interrupts whatever its machine was executing — the regime where restore
// credit has the most work to do. Calibrated like FaultScenario to the
// ≈4100-tick span of an 800-task trial at the 19k level.
func checkpointChurnScenario(failures int) *scenario.Scenario {
	sc := scenario.New(fmt.Sprintf("ckpt-churn-%d", failures))
	for k := 0; k < failures; k++ {
		fail := int64(500 + 220*k)
		sc.FailAt(fail, k%8, scenario.Requeue)
		sc.RecoverAt(fail+700, k%8)
	}
	return sc
}

// CheckpointRestore sweeps robustness against checkpoint interval and
// outage count at the 19k level. Single-fleet: PAM and MM under a 4- and a
// 12-failure storm, checkpointing off / coarse / fine / fine-with-overhead.
// 3-DC cluster (PAM, pet-aware routing, staggered whole-DC outages): the
// fine interval under both survival modes, pinning how much of the
// checkpoint benefit actually crosses a dc-fail failover.
//
// The headline finding is a calibrated null: at the paper's workload scale
// (50–200-tick tasks, β=2 deadline slack) restores are rare — one
// executing task per failure — and the slack usually absorbs a from-zero
// restart anyway, so the pure restore benefit is only a few tenths of a
// robustness point even under a 12-failure storm, while a 2-tick overhead
// on a 25-tick interval costs a full 4–6 points. The churn price measured
// by the fault studies is capacity loss, not lost progress; checkpointing
// at this scale buys back wasted work (machine busy time), not deadlines.
func CheckpointRestore(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	fig := &Figure{
		Name:    "Checkpoint",
		Caption: "robustness @19k: checkpoint interval vs failures (single fleet) and survival mode vs whole-DC outages (3 DCs)",
	}
	for _, name := range []string{"PAM", "MM"} {
		for _, v := range checkpointVariants() {
			for _, failures := range []int{4, 12} {
				cfg := simulator.MustConfigFor(name, matrix)
				cfg.Scenario = checkpointChurnScenario(failures)
				cfg.Checkpoint = v.p
				trials, err := o.RunPoint(matrix, wcfg, cfg)
				if err != nil {
					return nil, fmt.Errorf("checkpoint %s/%s/%d failures: %w", name, v.label, failures, err)
				}
				fig.Points = append(fig.Points, NewPoint(name+" "+v.label, fmt.Sprintf("%d failures", failures), trials))
			}
		}
	}
	replicated := &scenario.CheckpointPolicy{
		Kind: scenario.CheckpointPeriodic, Interval: 25,
		Survival: scenario.SurviveReplicated, ReplicationLag: 10,
	}
	local := &scenario.CheckpointPolicy{Kind: scenario.CheckpointPeriodic, Interval: 25}
	for _, v := range []ckptVariant{{"none", nil}, {"ck=25 local", local}, {"ck=25 repl", replicated}} {
		for outages := 1; outages <= 2; outages++ {
			simCfg := simulator.MustConfigFor("PAM", matrix)
			simCfg.Checkpoint = v.p
			cp := ClusterPoint{DCs: 3, Route: "pet-aware", Scenario: clusterOutageScenario(3, outages)}
			trials, err := o.RunClusterPoint(matrix, wcfg, simCfg, cp)
			if err != nil {
				return nil, fmt.Errorf("checkpoint 3DC/%s/%d outages: %w", v.label, outages, err)
			}
			fig.Points = append(fig.Points, NewPoint("3DC "+v.label, fmt.Sprintf("%d outages", outages), trials))
		}
	}
	return fig, nil
}
