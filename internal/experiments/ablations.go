package experiments

import (
	"fmt"
	"sync"

	"taskprune/internal/heuristics"
	"taskprune/internal/metrics"
	"taskprune/internal/pmf"
	"taskprune/internal/report"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/workload"
)

// The ablations quantify the design decisions DESIGN.md calls out beyond
// what the paper reports. Each is exposed both here and as a bench target.

// AblationCompaction measures PAM robustness at 34k as the PMF compaction
// bound varies: how much approximation the "aggregate impulses" overhead
// mitigation (Section IV) actually costs.
func AblationCompaction(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level34k)
	fig := &Figure{Name: "AblCompact", Caption: "PAM robustness vs PMF compaction bound @34k"}
	for _, maxImp := range []int{16, 32, 64, 128} {
		cfg := simulator.MustConfigFor("PAM", matrix)
		cfg.MaxImpulses = maxImp
		trials, err := o.RunPoint(matrix, wcfg, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation compaction %d: %w", maxImp, err)
		}
		fig.Points = append(fig.Points, NewPoint("PAM", fmt.Sprintf("imp=%d", maxImp), trials))
	}
	return fig, nil
}

// AblationEq7 compares PAM with and without the Eq. 7 per-task dropping
// threshold adjustment (skewness and queue position) at 19k and 34k.
func AblationEq7(o Options) (*Figure, error) {
	matrix := SPECPET()
	fig := &Figure{Name: "AblEq7", Caption: "PAM robustness with/without per-task threshold adjustment"}
	for _, level := range []float64{workload.Level19k, workload.Level34k} {
		wcfg := o.workloadConfig(level)
		for _, adjust := range []bool{true, false} {
			series := "uniform-threshold"
			if adjust {
				series = "eq7-adjusted"
			}
			cfg := simulator.MustConfigFor("PAM", matrix)
			pc := *cfg.Pruner
			pc.PerTaskAdjust = adjust
			cfg.Pruner = &pc
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation eq7 adjust=%v: %w", adjust, err)
			}
			fig.Points = append(fig.Points, NewPoint(series, workload.LevelLabel(level), trials))
		}
	}
	return fig, nil
}

// AblationScenario compares PAM under scenario-B (pending-only dropping
// estimates, no deadline eviction) against the default scenario-C system
// (evict at deadline) at 34k.
func AblationScenario(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level34k)
	fig := &Figure{Name: "AblScenario", Caption: "PAM robustness under scenario B vs C dropping @34k"}
	type variant struct {
		name  string
		mode  pmf.DropMode
		evict bool
	}
	for _, v := range []variant{
		{"C-evict", pmf.Evict, true},
		{"B-pending", pmf.PendingDrop, false},
	} {
		cfg := simulator.MustConfigFor("PAM", matrix)
		cfg.Mode = v.mode
		cfg.EvictAtDeadline = v.evict
		trials, err := o.RunPoint(matrix, wcfg, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation scenario %s: %w", v.name, err)
		}
		fig.Points = append(fig.Points, NewPoint(v.name, "34k", trials))
	}
	return fig, nil
}

// AblationArrivalVariance sweeps the arrival-process variance fraction
// (the paper fixes 10% outside one side study) for PAM at 34k.
func AblationArrivalVariance(o Options) (*Figure, error) {
	matrix := SPECPET()
	fig := &Figure{Name: "AblArrival", Caption: "PAM robustness vs arrival variance fraction @34k"}
	for _, vf := range []float64{0.05, 0.10, 0.25, 0.50, 1.00} {
		opt := o
		opt.VarFrac = vf
		wcfg := opt.workloadConfig(workload.Level34k)
		cfg := simulator.MustConfigFor("PAM", matrix)
		trials, err := opt.RunPoint(matrix, wcfg, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation arrival var=%.2f: %w", vf, err)
		}
		fig.Points = append(fig.Points, NewPoint("PAM", fmt.Sprintf("var=%.0f%%", vf*100), trials))
	}
	return fig, nil
}

// AblationMOCThreshold sweeps MOC's culling threshold at 34k. MOC's
// robustness is strongly monotone in this knob — a higher culling bar
// approaches PAM's deferring behaviour — which explains why the gap
// between MOC and the scalar baselines is sensitive to the exact PET and
// load calibration (see EXPERIMENTS.md, deviations).
func AblationMOCThreshold(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level34k)
	fig := &Figure{Name: "AblMOC", Caption: "MOC robustness vs culling threshold @34k"}
	for _, th := range []float64{0.05, 0.15, 0.30, 0.50, 0.70} {
		cfg := simulator.MustConfigFor("MOC", matrix)
		cfg.Heuristic = heuristics.NewMOC(th)
		trials, err := o.RunPoint(matrix, wcfg, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation moc threshold %.2f: %w", th, err)
		}
		fig.Points = append(fig.Points, NewPoint("MOC", fmt.Sprintf("cull=%.0f%%", th*100), trials))
	}
	return fig, nil
}

// ExtensionPreemption evaluates the paper's stated future work — extending
// probabilistic pruning with task preemption. Instead of discarding an
// executing task whose success probability fell below the dropping
// threshold, PAM+preempt pauses it when it is still inside the gray zone
// (success > ½·threshold), banking its progress and re-queueing it; the
// task later resumes with only its remaining execution owed.
//
// The sweep runs at dropping threshold 75% (Fig. 5 shows robustness is
// insensitive to it): under the converged 50% threshold the pruner almost
// never drops *executing* tasks — deferral already prevented the bad
// mappings — so preemption would have nothing to act on. That near-inertness
// is itself a finding recorded in EXPERIMENTS.md.
func ExtensionPreemption(o Options) (*Figure, error) {
	matrix := SPECPET()
	fig := &Figure{Name: "ExtPreempt", Caption: "PAM vs PAM+preemption at drop=75% (future-work extension)"}
	for _, level := range []float64{workload.Level19k, workload.Level34k} {
		wcfg := o.workloadConfig(level)
		for _, preempt := range []bool{false, true} {
			series := "PAM"
			if preempt {
				series = "PAM+preempt"
			}
			cfg := simulator.MustConfigFor("PAM", matrix)
			pc := *cfg.Pruner
			pc.DropThreshold = 0.75
			cfg.Pruner = &pc
			cfg.Preempt = preempt
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("extension preempt=%v: %w", preempt, err)
			}
			fig.Points = append(fig.Points, NewPoint(series, workload.LevelLabel(level), trials))
		}
	}
	return fig, nil
}

// ExtensionApproximate evaluates the paper's second future-work item —
// approximately computing tasks instead of purely dropping them. A task
// evicted at its deadline that already received at least 70% of its
// execution exits as an approximate (degraded-quality) completion worth
// half a full completion in the quality-weighted robustness metric.
func ExtensionApproximate(o Options) (*Figure, error) {
	matrix := SPECPET()
	fig := &Figure{Name: "ExtApprox", Caption: "PAM with approximate completions (quality-weighted robustness)"}
	for _, level := range []float64{workload.Level19k, workload.Level34k} {
		wcfg := o.workloadConfig(level)
		for _, frac := range []float64{0, 0.5, 0.7, 0.9} {
			series := "PAM"
			if frac > 0 {
				series = fmt.Sprintf("PAM+approx>=%.0f%%", frac*100)
			}
			cfg := simulator.MustConfigFor("PAM", matrix)
			cfg.ApproxFraction = frac
			trials, err := o.RunPoint(matrix, wcfg, cfg)
			if err != nil {
				return nil, fmt.Errorf("extension approx=%.2f: %w", frac, err)
			}
			fig.Points = append(fig.Points, NewPoint(series, workload.LevelLabel(level), trials))
		}
	}
	return fig, nil
}

// QualityTable renders a figure's quality-weighted robustness alongside
// plain robustness (for the approximate-computing extension).
func QualityTable(f *Figure) *report.Table {
	t := report.NewTable(fmt.Sprintf("%s — %s", f.Name, f.Caption),
		"series", "x", "robustness %", "quality-weighted %", "approx completions")
	for _, p := range f.Points {
		var quality, approx float64
		for _, tr := range p.Trials {
			quality += tr.QualityPct
			approx += float64(tr.Approx)
		}
		n := float64(len(p.Trials))
		if n > 0 {
			quality /= n
			approx /= n
		}
		t.AddRow(p.Series, p.Label,
			report.FormatCI(p.Robustness.Mean, p.Robustness.HalfSpan),
			quality, approx)
	}
	return t
}

// AblationPETDrift measures how PAM degrades when the PET profile is stale:
// the scheduler keeps the original profile while the world's true execution
// distributions drift by a per-entry factor in [1−d, 1+d]. The paper assumes
// an accurate PET; this quantifies the cost of violating that assumption.
func AblationPETDrift(o Options) (*Figure, error) {
	estimate := SPECPET()
	wcfgBase := o.workloadConfig(workload.Level34k)
	fig := &Figure{Name: "AblDrift", Caption: "PAM robustness vs PET staleness (true means drift, profile does not) @34k"}
	for _, drift := range []float64{0, 0.10, 0.25, 0.50} {
		truth := estimate.Perturbed(drift, stats.NewRNG(int64(drift*1000)+7))
		// Workloads (deadlines + true execution times) come from the
		// drifted truth; the simulator maps with the stale estimate.
		trials := make([]metrics.TrialStats, o.Trials)
		errs := make([]error, o.Trials)
		var wg sync.WaitGroup
		sem := make(chan struct{}, o.workers())
		for trial := 0; trial < o.Trials; trial++ {
			wg.Add(1)
			go func(trial int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rng := stats.NewRNG(o.Seed + int64(trial))
				tasks, err := workload.Generate(wcfgBase, truth, rng)
				if err != nil {
					errs[trial] = err
					return
				}
				sim, err := simulator.New(simulator.MustConfigFor("PAM", estimate))
				if err != nil {
					errs[trial] = err
					return
				}
				st, err := sim.Run(tasks)
				if err != nil {
					errs[trial] = err
					return
				}
				trials[trial] = st
			}(trial)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("ablation drift=%.2f: %w", drift, err)
			}
		}
		fig.Points = append(fig.Points, NewPoint("PAM", fmt.Sprintf("drift=%.0f%%", drift*100), trials))
	}
	return fig, nil
}
