package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"taskprune/internal/cluster"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/scenario"
	"taskprune/internal/simulator"
	"taskprune/internal/stats"
	"taskprune/internal/workload"
)

// This file evaluates the multi-datacenter sharding layer: the paper's
// system is one batch queue over one fleet, and the cluster engine shards
// it behind a front-end dispatcher. The headline study asks the
// availability question sharding exists to answer — how much robustness
// survives losing whole datacenters, and how the answer moves with the
// shard count.

// ClusterPoint describes one sharded configuration for RunClusterPoint.
type ClusterPoint struct {
	// DCs is the datacenter count (the PET fleet partitions contiguously).
	DCs int
	// Route names the dispatch policy (cluster.NewPolicy); "" means
	// round-robin. A fresh policy instance is built per trial — policies
	// carry per-engine state, so sharing one across parallel trials would
	// break worker-count determinism.
	Route string
	// Scenario may mix machine-scoped churn with dc-fail/dc-recover
	// outages; its burst windows shape the workload exactly as in
	// single-fleet runs.
	Scenario *scenario.Scenario
}

// RunClusterPoint is RunPoint for a sharded system: Trials independent
// workload trials of one cluster configuration across a fixed worker
// pool, each trial owning its engine, per-DC simulators, and source end
// to end. Returned statistics are the cluster-level aggregates in trial
// order; determinism per (seed, trial) holds under any worker count.
func (o Options) RunClusterPoint(matrix *pet.Matrix, wcfg workload.Config, simCfg simulator.Config, cp ClusterPoint) ([]metrics.TrialStats, error) {
	if o.Trials <= 0 {
		return nil, fmt.Errorf("experiments: Trials must be positive, got %d", o.Trials)
	}
	results := make([]metrics.TrialStats, o.Trials)
	errs := make([]error, o.Trials)
	workers := o.workers()
	if workers > o.Trials {
		workers = o.Trials
	}
	// Per-DC stepping goroutines compose with the trial pool only when the
	// pool leaves cores idle: each parallel trial occupies up to DCs cores,
	// so enabling both at full trial fan-out just oversubscribes the host
	// and slows every level down. Trial results are byte-identical with the
	// flag on or off (the cluster determinism tests pin this), so the
	// composition rule is free to be purely about wall-clock.
	dcPar := o.DCParallel && workers*cp.DCs <= runtime.GOMAXPROCS(0)
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trials {
				errs[trial] = o.runClusterTrial(trial, matrix, wcfg, simCfg, cp, dcPar, &results[trial])
			}
		}()
	}
	for trial := 0; trial < o.Trials; trial++ {
		trials <- trial
	}
	close(trials)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runClusterTrial simulates one sharded trial end to end, writing the
// cluster-level statistics into out.
func (o Options) runClusterTrial(trial int, matrix *pet.Matrix, wcfg workload.Config, simCfg simulator.Config, cp ClusterPoint, dcPar bool, out *metrics.TrialStats) error {
	route := cp.Route
	if route == "" {
		route = "round-robin"
	}
	policy, err := cluster.NewPolicy(route)
	if err != nil {
		return err
	}
	simCfg.Scenario = cp.Scenario
	eng, err := cluster.New(cluster.Config{DCs: cp.DCs, Policy: policy, Parallel: dcPar, Sim: simCfg})
	if err != nil {
		return err
	}
	rng := stats.NewRNG(TrialSeed(o.Seed, trial))
	cp.Scenario.ApplyBursts(&wcfg)
	var src workload.Source
	if o.Streamed {
		src, err = workload.NewStream(wcfg, matrix, rng)
	} else {
		src, err = workload.NewSource(wcfg, matrix, rng)
	}
	if err != nil {
		return err
	}
	st, _, err := eng.RunSource(src)
	if err != nil {
		return err
	}
	*out = st
	return nil
}

// clusterOutageScenario builds the canned whole-DC outage schedule for the
// fault-tolerance study: outage k takes datacenter k mod nDCs down at tick
// 1200 + 1200·k and brings it back 1000 ticks later, so outages are
// staggered (the cluster is never fully dark with outages < nDCs). Tasks
// of a dead datacenter fail over to the survivors. The ticks are
// calibrated to the ≈4100-tick span of an 800-task trial at the 19k level.
func clusterOutageScenario(nDCs, outages int) *scenario.Scenario {
	if outages == 0 {
		return nil
	}
	sc := scenario.New(fmt.Sprintf("%d-dc-outages-%d", nDCs, outages))
	for k := 0; k < outages; k++ {
		fail := int64(1200 + 1200*k)
		sc.DCFailAt(fail, k%nDCs, scenario.Requeue)
		sc.DCRecoverAt(fail+1000, k%nDCs)
	}
	return sc
}

// ClusterFaultTolerance sweeps robustness against datacenter count and
// whole-DC outage count at the 19k level under PAM with PET-aware
// routing: series are shard counts, x-positions are how many staggered
// dc-fail/dc-recover cycles the trial suffers. The interesting read is
// how gracefully robustness degrades as outages mount — failover requeues
// every drained task through the dispatcher, so survivors absorb the dead
// shard's load at the price of their own headroom — and whether more,
// smaller shards beat fewer, bigger ones under the same outage schedule.
func ClusterFaultTolerance(o Options) (*Figure, error) {
	matrix := SPECPET()
	wcfg := o.workloadConfig(workload.Level19k)
	fig := &Figure{
		Name:    "ClusterFault",
		Caption: "robustness @19k: PAM, pet-aware routing — datacenter count vs whole-DC outages (failover requeue)",
	}
	for _, nDCs := range []int{2, 4} {
		for outages := 0; outages <= 2; outages++ {
			simCfg := simulator.MustConfigFor("PAM", matrix)
			cp := ClusterPoint{DCs: nDCs, Route: "pet-aware", Scenario: clusterOutageScenario(nDCs, outages)}
			trials, err := o.RunClusterPoint(matrix, wcfg, simCfg, cp)
			if err != nil {
				return nil, fmt.Errorf("cluster-fault %dDC/%d outages: %w", nDCs, outages, err)
			}
			fig.Points = append(fig.Points, NewPoint(fmt.Sprintf("%dDC", nDCs), fmt.Sprintf("%d outages", outages), trials))
		}
	}
	return fig, nil
}
