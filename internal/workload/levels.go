package workload

import "strconv"

// Oversubscription levels.
//
// The paper labels experiment loads by the task count of a full-length
// simulation span ("19k tasks", "34k tasks") while each trial actually
// simulates 800 tasks drawn at the corresponding arrival *intensity*. We
// reproduce the intensity: a level L maps to an aggregate arrival rate of
// L / FullSpanTicks tasks per tick.
//
// Calibration: with the SPEC-like PET (8 machines, grand-mean execution
// ≈ 125 ticks) aggregate service capacity is ≈ 0.064 tasks/tick, so
//
//	level 19k → rate ≈ 0.109 tasks/tick ≈ 1.7× capacity
//	level 34k → rate ≈ 0.194 tasks/tick ≈ 3.0× capacity
//
// matching the paper's description of 19k as oversubscribed and 34k as
// extremely oversubscribed. (The Fig. 9 video system uses its own span,
// VideoFullSpanTicks, below.)
const FullSpanTicks = 175_000.0

// VideoFullSpanTicks is the nominal span for the Fig. 9 video-transcoding
// system. Its 4-machine fleet (grand-mean exec ≈ 109 ticks, capacity
// ≈ 0.037 tasks/tick) is calibrated so that the figure's lowest level
// (10k) sits at ≈ 1.0× capacity and its highest (17.5k) at ≈ 1.75× —
// matching the paper's narrative that PAMF's advantage over MinMin grows
// as oversubscription rises from mild to heavy.
const VideoFullSpanTicks = 272_000.0

// Named levels used across the evaluation figures.
const (
	Level10k  = 10_000.0
	Level12k5 = 12_500.0
	Level15k  = 15_000.0
	Level17k5 = 17_500.0
	Level19k  = 19_000.0
	Level34k  = 34_000.0
)

// RateForLevel converts a paper-style oversubscription level (total tasks
// over the nominal full span) into an aggregate arrival rate in tasks per
// tick.
func RateForLevel(level float64) float64 {
	return level / FullSpanTicks
}

// VideoRateForLevel is RateForLevel against the video system's span.
func VideoRateForLevel(level float64) float64 {
	return level / VideoFullSpanTicks
}

// LevelLabel renders a level the way the paper's figure axes do
// ("19k", "12.5k").
func LevelLabel(level float64) string {
	k := level / 1000
	if k == float64(int64(k)) {
		return strconv.FormatInt(int64(k), 10) + "k"
	}
	return strconv.FormatFloat(k, 'f', 1, 64) + "k"
}
