package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"taskprune/internal/task"
)

// This file round-trips workloads through CSV so that externally captured
// traces (or wlgen output) can be replayed byte-identically: the schema is
// id,type,arrival,deadline,true_exec_per_machine with the per-machine
// execution times semicolon-separated.

// WriteCSV serializes tasks in arrival order.
func WriteCSV(w io.Writer, tasks []*task.Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "type", "arrival", "deadline", "true_exec_per_machine"}); err != nil {
		return err
	}
	for _, t := range tasks {
		execs := make([]string, len(t.TrueExec))
		for i, e := range t.TrueExec {
			execs[i] = strconv.FormatInt(e, 10)
		}
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.Itoa(int(t.Type)),
			strconv.FormatInt(t.Arrival, 10),
			strconv.FormatInt(t.Deadline, 10),
			strings.Join(execs, ";"),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a workload written by WriteCSV (or hand-authored in the
// same schema), validating structure: nMachines execution times per task,
// deadlines after arrivals, non-decreasing arrival order is NOT required
// (tasks are re-sorted), IDs are reassigned in arrival order.
func ReadCSV(r io.Reader, nMachines int) ([]*task.Task, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty csv")
	}
	start := 0
	if records[0][0] == "id" {
		start = 1 // header row
	}
	var tasks []*task.Task
	for line, rec := range records[start:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("workload: line %d has %d fields, want 5", line+start+1, len(rec))
		}
		typ, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d type: %w", line+start+1, err)
		}
		arrival, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d arrival: %w", line+start+1, err)
		}
		deadline, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d deadline: %w", line+start+1, err)
		}
		if deadline <= arrival {
			return nil, fmt.Errorf("workload: line %d deadline %d <= arrival %d", line+start+1, deadline, arrival)
		}
		parts := strings.Split(rec[4], ";")
		if len(parts) != nMachines {
			return nil, fmt.Errorf("workload: line %d has %d exec times for %d machines", line+start+1, len(parts), nMachines)
		}
		execs := make([]int64, nMachines)
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d exec %d: %w", line+start+1, i, err)
			}
			if v < 1 {
				return nil, fmt.Errorf("workload: line %d exec %d = %d < 1", line+start+1, i, v)
			}
			execs[i] = v
		}
		t := task.New(0, task.Type(typ), arrival, deadline)
		t.TrueExec = execs
		tasks = append(tasks, t)
	}
	sortByArrival(tasks)
	for i, t := range tasks {
		t.ID = i
	}
	return tasks, nil
}

// sortByArrival orders tasks by (arrival, type) the way Generate does.
func sortByArrival(tasks []*task.Task) {
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].Arrival != tasks[j].Arrival {
			return tasks[i].Arrival < tasks[j].Arrival
		}
		return tasks[i].Type < tasks[j].Type
	})
}
