package workload

import (
	"testing"

	"taskprune/internal/pet"
	"taskprune/internal/stats"
)

func burstPET(t *testing.T) *pet.Matrix {
	t.Helper()
	cfg := pet.BuildConfig{Samples: 300, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	m, err := pet.Build([][]float64{{10, 40}, {40, 10}}, cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func countIn(tasks []int64, lo, hi int64) int {
	n := 0
	for _, a := range tasks {
		if a >= lo && a < hi {
			n++
		}
	}
	return n
}

// TestBurstWindowConcentratesArrivals: a surge window must hold visibly
// more arrivals than the same window without the burst.
func TestBurstWindowConcentratesArrivals(t *testing.T) {
	matrix := burstPET(t)
	base := Config{NumTasks: 400, Rate: 0.05, VarFrac: 0.10, Beta: 2.0}
	gen := func(cfg Config) []int64 {
		tasks, err := Generate(cfg, matrix, stats.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		arr := make([]int64, len(tasks))
		for i, tk := range tasks {
			arr[i] = tk.Arrival
		}
		return arr
	}
	plain := gen(base)
	burst := base
	burst.Bursts = []Burst{{Start: 1000, End: 3000, Factor: 4}}
	surged := gen(burst)
	pn, sn := countIn(plain, 1000, 3000), countIn(surged, 1000, 3000)
	if sn <= pn {
		t.Errorf("burst window holds %d arrivals, plain %d — surge had no effect", sn, pn)
	}
	// Determinism: same seed and config, same workload.
	again := gen(burst)
	for i := range surged {
		if surged[i] != again[i] {
			t.Fatalf("burst workload not deterministic at task %d", i)
		}
	}
}

func TestBurstValidation(t *testing.T) {
	cfg := Default()
	cfg.Bursts = []Burst{{Start: 600, End: 300, Factor: 2}}
	if err := cfg.Validate(); err == nil {
		t.Error("inverted burst window accepted")
	}
	cfg.Bursts = []Burst{{Start: 0, End: 100, Factor: 0}}
	if err := cfg.Validate(); err == nil {
		t.Error("zero burst factor accepted")
	}
	nan := 0.0
	nan /= nan
	cfg.Bursts = []Burst{{Start: 0, End: 100, Factor: nan}}
	if err := cfg.Validate(); err == nil {
		t.Error("NaN burst factor accepted")
	}
	zero := 0.0
	cfg.Bursts = []Burst{{Start: 0, End: 100, Factor: 1 / zero}}
	if err := cfg.Validate(); err == nil {
		t.Error("Inf burst factor accepted (it would freeze the arrival clock)")
	}
}
