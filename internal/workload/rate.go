package workload

import "math"

// RateFunc maps an arrival-clock position to a rate multiplier: while a
// type's arrival clock sits at clock, its next inter-arrival gap is divided
// by the returned factor (> 1 compresses gaps — a surge; < 1 stretches
// them — a lull). Burst windows are the step-function special case; ramps
// and diurnal cycles are first-class workloads through the same hook.
//
// A RateFunc must return positive, finite values for every non-negative
// clock; the stream panics on a non-positive or infinite factor because it
// would freeze or reverse the arrival clock. Exactly one gamma gap is drawn
// per arrival regardless of the factor, so swapping rate functions never
// desynchronizes the execution-time RNG stream.
type RateFunc func(clock float64) float64

// StepRate returns the step rate function equivalent to the given burst
// windows: inside each [Start, End) window the rate is multiplied by the
// window's factor; overlapping windows multiply.
func StepRate(bursts ...Burst) RateFunc {
	b := append([]Burst(nil), bursts...)
	return func(clock float64) float64 { return factorAt(b, clock) }
}

// RampRate returns a linear ramp: factor `from` before start, `to` after
// end, linearly interpolated in between (contention building up, a fleet
// warming its caches, a thermal throttle releasing).
func RampRate(start, end int64, from, to float64) RateFunc {
	s, e := float64(start), float64(end)
	return func(clock float64) float64 {
		switch {
		case clock <= s:
			return from
		case clock >= e:
			return to
		default:
			return from + (to-from)*(clock-s)/(e-s)
		}
	}
}

// DiurnalRate returns a sinusoidal day/night cycle with the given period in
// ticks: factor = 1 + amplitude·sin(2π·clock/period). amplitude must sit in
// [0, 1) so the factor stays positive.
func DiurnalRate(period, amplitude float64) RateFunc {
	if period <= 0 {
		panic("workload: DiurnalRate period must be positive")
	}
	if amplitude < 0 || amplitude >= 1 {
		panic("workload: DiurnalRate amplitude must be in [0, 1)")
	}
	return func(clock float64) float64 {
		return 1 + amplitude*math.Sin(2*math.Pi*clock/period)
	}
}

// effectiveRate combines a Config's burst windows and custom rate function
// into the single multiplier the arrival streams consume (the two compose
// by multiplication, so a scenario's bursts still apply under a custom
// shape).
func (c Config) effectiveRate() RateFunc {
	if c.RateFn == nil {
		if len(c.Bursts) == 0 {
			return nil
		}
		return StepRate(c.Bursts...)
	}
	if len(c.Bursts) == 0 {
		return c.RateFn
	}
	step := StepRate(c.Bursts...)
	fn := c.RateFn
	return func(clock float64) float64 { return step(clock) * fn(clock) }
}
