package workload

import (
	"math"
	"sort"
	"testing"

	"taskprune/internal/pet"
	"taskprune/internal/stats"
)

func testPET(t *testing.T) *pet.Matrix {
	t.Helper()
	cfg := pet.DefaultBuildConfig()
	cfg.Samples = 150
	m, err := pet.Build(pet.SPECLikeMeans(), cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func baseConfig() Config {
	return Config{NumTasks: 400, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumTasks: 0, Rate: 1, VarFrac: 0.1, Beta: 1},
		{NumTasks: 10, Rate: 0, VarFrac: 0.1, Beta: 1},
		{NumTasks: 10, Rate: 1, VarFrac: -0.1, Beta: 1},
		{NumTasks: 10, Rate: 1, VarFrac: 0.1, Beta: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	matrix := testPET(t)
	tasks, err := Generate(baseConfig(), matrix, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 400 {
		t.Fatalf("generated %d tasks, want 400", len(tasks))
	}
	for i, tk := range tasks {
		if tk.ID != i {
			t.Errorf("task %d has ID %d (IDs must follow arrival order)", i, tk.ID)
		}
		if i > 0 && tk.Arrival < tasks[i-1].Arrival {
			t.Errorf("arrivals not sorted at %d", i)
		}
		if tk.Deadline <= tk.Arrival {
			t.Errorf("task %d deadline %d <= arrival %d", i, tk.Deadline, tk.Arrival)
		}
		if len(tk.TrueExec) != matrix.NumMachines() {
			t.Errorf("task %d TrueExec size %d", i, len(tk.TrueExec))
		}
		for mi, e := range tk.TrueExec {
			if e < 1 {
				t.Errorf("task %d machine %d true exec %d < 1", i, mi, e)
			}
		}
		if int(tk.Type) < 0 || int(tk.Type) >= matrix.NumTypes() {
			t.Errorf("task %d type %d out of range", i, tk.Type)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	matrix := testPET(t)
	a, _ := Generate(baseConfig(), matrix, stats.NewRNG(9))
	b, _ := Generate(baseConfig(), matrix, stats.NewRNG(9))
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Type != b[i].Type || a[i].Deadline != b[i].Deadline {
			t.Fatalf("same-seed workloads differ at %d", i)
		}
		for mi := range a[i].TrueExec {
			if a[i].TrueExec[mi] != b[i].TrueExec[mi] {
				t.Fatalf("same-seed true exec differs at %d/%d", i, mi)
			}
		}
	}
	c, _ := Generate(baseConfig(), matrix, stats.NewRNG(10))
	diff := false
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateAggregateRate(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	cfg.NumTasks = 2000
	tasks, err := Generate(cfg, matrix, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	span := tasks[len(tasks)-1].Arrival - tasks[0].Arrival
	gotRate := float64(len(tasks)) / float64(span)
	if math.Abs(gotRate-cfg.Rate) > 0.25*cfg.Rate {
		t.Errorf("empirical rate %v, want ≈ %v", gotRate, cfg.Rate)
	}
}

func TestGenerateDeadlineRule(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	avgAll := matrix.GrandMean()
	tasks, err := Generate(cfg, matrix, stats.NewRNG(33))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks[:50] {
		avgType := matrix.TypeMeanAcrossMachines(tk.Type)
		want := tk.Arrival + int64(avgType+cfg.Beta*avgAll+0.5)
		if tk.Deadline != want {
			t.Fatalf("task %d deadline %d, want %d (δ = arr + avg_i + β·avg_all)", tk.ID, tk.Deadline, want)
		}
	}
}

func TestGenerateTypeBalance(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	cfg.NumTasks = 1200
	tasks, _ := Generate(cfg, matrix, stats.NewRNG(41))
	counts := CountByType(tasks, matrix.NumTypes())
	expected := float64(cfg.NumTasks) / float64(matrix.NumTypes())
	for ti, c := range counts {
		if math.Abs(float64(c)-expected) > 0.5*expected {
			t.Errorf("type %d count %d, want ≈ %v (balanced per-type streams)", ti, c, expected)
		}
	}
}

func TestRateForLevelCalibration(t *testing.T) {
	// The documented calibration: 19k ≈ 1.7× and 34k ≈ 3.0× the SPEC
	// system's ≈0.064 tasks/tick service capacity.
	capacity := 8.0 / 125.0
	if ratio := RateForLevel(Level19k) / capacity; ratio < 1.3 || ratio > 2.1 {
		t.Errorf("19k load ratio = %v, want ≈ 1.7", ratio)
	}
	if ratio := RateForLevel(Level34k) / capacity; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("34k load ratio = %v, want ≈ 3.0", ratio)
	}
	if RateForLevel(Level10k) >= RateForLevel(Level17k5) {
		t.Error("rates must increase with level")
	}
}

func TestLevelLabel(t *testing.T) {
	cases := map[float64]string{
		Level10k:  "10k",
		Level12k5: "12.5k",
		Level15k:  "15k",
		Level17k5: "17.5k",
		Level19k:  "19k",
		Level34k:  "34k",
	}
	for level, want := range cases {
		if got := LevelLabel(level); got != want {
			t.Errorf("LevelLabel(%v) = %q, want %q", level, got, want)
		}
	}
}

func TestCountByType(t *testing.T) {
	matrix := testPET(t)
	tasks, _ := Generate(baseConfig(), matrix, stats.NewRNG(5))
	counts := CountByType(tasks, matrix.NumTypes())
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(tasks) {
		t.Errorf("counts sum to %d, want %d", total, len(tasks))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	matrix := testPET(t)
	if _, err := Generate(Config{}, matrix, stats.NewRNG(1)); err == nil {
		t.Error("Generate accepted zero config")
	}
}

func TestArrivalSpread(t *testing.T) {
	// With 10% variance, inter-arrival gaps should cluster tightly around
	// the per-type mean; sanity-check the merged stream is not bursty in a
	// pathological way (no half of all tasks in one tick).
	matrix := testPET(t)
	tasks, _ := Generate(baseConfig(), matrix, stats.NewRNG(55))
	byTick := map[int64]int{}
	for _, tk := range tasks {
		byTick[tk.Arrival]++
	}
	var ticks []int64
	for tk := range byTick {
		ticks = append(ticks, tk)
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
	for _, tk := range ticks {
		if byTick[tk] > len(tasks)/4 {
			t.Fatalf("pathological burst: %d tasks at tick %d", byTick[tk], tk)
		}
	}
}
