package workload

import (
	"bytes"
	"strings"
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

func TestCSVRoundTrip(t *testing.T) {
	matrix := testPET(t)
	orig, err := Generate(baseConfig(), matrix, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCSV(&buf, matrix.NumMachines())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(orig) {
		t.Fatalf("loaded %d tasks, want %d", len(loaded), len(orig))
	}
	for i := range orig {
		a, b := orig[i], loaded[i]
		if a.ID != b.ID || a.Type != b.Type || a.Arrival != b.Arrival || a.Deadline != b.Deadline {
			t.Fatalf("task %d fields changed: %+v vs %+v", i, a, b)
		}
		for mi := range a.TrueExec {
			if a.TrueExec[mi] != b.TrueExec[mi] {
				t.Fatalf("task %d exec %d changed", i, mi)
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad field count":   "1,2,3\n",
		"bad type":          "0,x,0,10,5;5\n",
		"bad arrival":       "0,0,x,10,5;5\n",
		"deadline<=arrival": "0,0,10,10,5;5\n",
		"wrong machines":    "0,0,0,10,5\n",
		"zero exec":         "0,0,0,10,0;5\n",
	}
	for name, payload := range cases {
		if _, err := ReadCSV(strings.NewReader(payload), 2); err == nil {
			t.Errorf("%s: accepted %q", name, payload)
		}
	}
}

func TestReadCSVSortsAndRenumbers(t *testing.T) {
	csvData := "id,type,arrival,deadline,true_exec_per_machine\n" +
		"99,1,50,100,5;5\n" +
		"98,0,10,60,4;4\n"
	tasks, err := ReadCSV(strings.NewReader(csvData), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Arrival != 10 || tasks[0].ID != 0 {
		t.Errorf("first task = %+v, want earliest arrival with ID 0", tasks[0])
	}
	if tasks[1].Arrival != 50 || tasks[1].ID != 1 {
		t.Errorf("second task = %+v", tasks[1])
	}
	if tasks[0].Type != task.Type(0) {
		t.Errorf("type = %v", tasks[0].Type)
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	tasks, err := ReadCSV(strings.NewReader("0,0,0,10,5;6\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].TrueExec[1] != 6 {
		t.Errorf("tasks = %+v", tasks)
	}
}
