package workload

import (
	"errors"
	"testing"
)

func TestLiveSourceBackpressure(t *testing.T) {
	s := NewLiveSource(2)
	a, b, c := NewPooledTask(4), NewPooledTask(4), NewPooledTask(4)
	if err := s.Push(a); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if err := s.Push(b); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if err := s.Push(c); !errors.Is(err, ErrSourceFull) {
		t.Fatalf("push over capacity: err = %v, want ErrSourceFull", err)
	}
	// Draining one slot re-admits.
	if got, ok := s.Next(); !ok || got != a {
		t.Fatalf("Next = %v, %v; want first pushed task", got, ok)
	}
	if err := s.Push(c); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

func TestLiveSourceCloseDrainsBuffered(t *testing.T) {
	s := NewLiveSource(4)
	a, b := NewPooledTask(2), NewPooledTask(2)
	if err := s.Push(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(b); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Push(NewPooledTask(2)); !errors.Is(err, ErrSourceClosed) {
		t.Fatalf("push after close: err = %v, want ErrSourceClosed", err)
	}
	// Buffered submissions still deliver in order, then exhaustion.
	if got, ok := s.Next(); !ok || got != a {
		t.Fatalf("Next after close = %v, %v; want first buffered task", got, ok)
	}
	if got, ok := s.Next(); !ok || got != b {
		t.Fatalf("Next after close = %v, %v; want second buffered task", got, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next on closed drained source reported a task")
	}
}

func TestLiveSourcePoll(t *testing.T) {
	s := NewLiveSource(1)
	if _, ok, open := s.Poll(); ok || !open {
		t.Fatalf("Poll on empty open source = ok=%v open=%v, want false/true", ok, open)
	}
	a := NewPooledTask(2)
	if err := s.Push(a); err != nil {
		t.Fatal(err)
	}
	if got, ok, open := s.Poll(); !ok || !open || got != a {
		t.Fatalf("Poll with buffered task = %v ok=%v open=%v", got, ok, open)
	}
	s.Close()
	if _, ok, open := s.Poll(); ok || open {
		t.Fatalf("Poll on closed drained source = ok=%v open=%v, want false/false", ok, open)
	}
}

func TestNewPooledTaskReset(t *testing.T) {
	s := NewLiveSource(1)
	a := NewPooledTask(3)
	a.ID = 99
	a.Defers = 7
	a.TrueExec[0] = 42
	s.Recycle(a)
	b := NewPooledTask(3)
	if b.ID != 0 || b.Defers != 0 {
		t.Fatalf("pooled task not reset: ID=%d Defers=%d", b.ID, b.Defers)
	}
	if len(b.TrueExec) != 3 {
		t.Fatalf("TrueExec sized %d, want 3", len(b.TrueExec))
	}
}
