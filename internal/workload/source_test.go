package workload

import (
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// drain pulls every task out of a bounded source.
func drain(t *testing.T, src Source) []*task.Task {
	t.Helper()
	var out []*task.Task
	for {
		tk, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, tk)
	}
}

// sameWorkload asserts two task lists are identical in every field the
// simulator reads.
func sameWorkload(t *testing.T, a, b []*task.Task) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Type != b[i].Type || a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline {
			t.Fatalf("task %d differs: %v vs %v", i, a[i], b[i])
		}
		for mi := range a[i].TrueExec {
			if a[i].TrueExec[mi] != b[i].TrueExec[mi] {
				t.Fatalf("task %d true exec differs on machine %d", i, mi)
			}
		}
	}
}

// TestReplaySourceMatchesGenerate: pulling the replay-mode source task by
// task yields exactly the slice Generate returns at the same seed — the
// pull path and the materialized path are the same workload.
func TestReplaySourceMatchesGenerate(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	want := MustGenerate(cfg, matrix, stats.NewRNG(11))
	src, err := NewSource(cfg, matrix, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	sameWorkload(t, want, drain(t, src))
}

// TestBurstTypeMixRegression pins the corrected type distribution under a
// strong (×8) arrival burst. The historical generate-all-then-sort code
// pre-drew only NumTasks/nTypes+2 arrivals per type and cut the merged
// stream at NumTasks, silently capping any type at 202 of 400 here and
// backfilling with the other type's later arrivals. The streaming merge has
// no cut: the earliest 400 arrivals carry their true (skewed) type mix —
// for this seed, 206 of one type, which the old margin could not represent.
func TestBurstTypeMixRegression(t *testing.T) {
	matrix := burstPET(t)
	cfg := Config{
		NumTasks: 400, Rate: 0.05, VarFrac: 1.0, Beta: 2.0,
		Bursts: []Burst{{Start: 200, End: 1500, Factor: 8}},
	}
	tasks, err := Generate(cfg, matrix, stats.NewRNG(94))
	if err != nil {
		t.Fatal(err)
	}
	counts := CountByType(tasks, matrix.NumTypes())
	oldCap := cfg.NumTasks/matrix.NumTypes() + 2
	if want := []int{206, 194}; counts[0] != want[0] || counts[1] != want[1] {
		t.Fatalf("type mix under ×8 burst = %v, want %v (corrected, cut-free distribution)", counts, want)
	}
	if counts[0] <= oldCap {
		t.Fatalf("regression seed no longer exceeds the old per-type margin (%d <= %d): pick a new seed", counts[0], oldCap)
	}
	if counts[0]+counts[1] != cfg.NumTasks {
		t.Fatalf("counts %v do not sum to %d", counts, cfg.NumTasks)
	}
}

// TestPureStreamBasics: the constant-memory source emits sequential IDs,
// non-decreasing arrivals, the paper's deadline rule, full TrueExec rows,
// and exactly NumTasks tasks.
func TestPureStreamBasics(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	src, err := NewStream(cfg, matrix, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	tasks := drain(t, src)
	if len(tasks) != cfg.NumTasks {
		t.Fatalf("pure stream emitted %d tasks, want %d", len(tasks), cfg.NumTasks)
	}
	avgAll := matrix.GrandMean()
	for i, tk := range tasks {
		if tk.ID != i {
			t.Errorf("task %d has ID %d", i, tk.ID)
		}
		if i > 0 && tk.Arrival < tasks[i-1].Arrival {
			t.Errorf("arrivals not sorted at %d", i)
		}
		want := tk.Arrival + int64(matrix.TypeMeanAcrossMachines(tk.Type)+cfg.Beta*avgAll+0.5)
		if tk.Deadline != want {
			t.Errorf("task %d deadline %d, want %d", i, tk.Deadline, want)
		}
		if len(tk.TrueExec) != matrix.NumMachines() {
			t.Errorf("task %d TrueExec size %d", i, len(tk.TrueExec))
		}
	}
}

// TestPureStreamDeterminism: same seed, same stream; different seed,
// different stream.
func TestPureStreamDeterminism(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	mk := func(seed int64) []*task.Task {
		src, err := NewStream(cfg, matrix, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, src)
	}
	sameWorkload(t, mk(5), mk(5))
	a, c := mk(5), mk(6)
	diff := false
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical pure streams")
	}
}

// TestPureStreamUnbounded: NumTasks 0 streams past any materializable
// bound; spot-check a 50k prefix stays well-formed and roughly on rate.
func TestPureStreamUnbounded(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	cfg.NumTasks = 0
	src, err := NewStream(cfg, matrix, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	var last int64
	for i := 0; i < n; i++ {
		tk, ok := src.Next()
		if !ok {
			t.Fatalf("unbounded stream ended at task %d", i)
		}
		if tk.Arrival < last {
			t.Fatalf("arrival went backwards at task %d", i)
		}
		last = tk.Arrival
		src.Recycle(tk)
	}
	if src.Emitted() != n {
		t.Fatalf("Emitted = %d, want %d", src.Emitted(), n)
	}
	rate := float64(n) / float64(last)
	if rate < 0.75*cfg.Rate || rate > 1.25*cfg.Rate {
		t.Errorf("empirical rate %v, want ≈ %v", rate, cfg.Rate)
	}
}

// TestArrivalPathAllocs: the steady-state arrival path — Next plus Recycle
// — must allocate only from the task pool, i.e. amortize to zero heap
// allocations once the pool is warm.
func TestArrivalPathAllocs(t *testing.T) {
	matrix := testPET(t)
	cfg := baseConfig()
	cfg.NumTasks = 0
	src, err := NewStream(cfg, matrix, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ { // warm the pool and the RNG paths
		tk, _ := src.Next()
		src.Recycle(tk)
	}
	avg := testing.AllocsPerRun(2000, func() {
		tk, _ := src.Next()
		src.Recycle(tk)
	})
	if avg >= 1 {
		t.Fatalf("steady-state arrival path allocates %.2f objects/op, want pool-only (≈0)", avg)
	}
}

// TestStepRateEquivalentToBursts: declaring windows via RateFn=StepRate
// must reproduce the Bursts path draw for draw.
func TestStepRateEquivalentToBursts(t *testing.T) {
	matrix := burstPET(t)
	base := Config{NumTasks: 300, Rate: 0.05, VarFrac: 0.10, Beta: 2.0}
	viaBursts := base
	viaBursts.Bursts = []Burst{{Start: 1000, End: 3000, Factor: 4}}
	viaFn := base
	viaFn.RateFn = StepRate(Burst{Start: 1000, End: 3000, Factor: 4})
	a := MustGenerate(viaBursts, matrix, stats.NewRNG(9))
	b := MustGenerate(viaFn, matrix, stats.NewRNG(9))
	sameWorkload(t, a, b)
}

// TestRampRate checks the ramp's anchor points and interpolation.
func TestRampRate(t *testing.T) {
	r := RampRate(100, 200, 1, 3)
	cases := map[float64]float64{0: 1, 100: 1, 150: 2, 200: 3, 999: 3}
	for clock, want := range cases {
		if got := r(clock); got != want {
			t.Errorf("RampRate(%v) = %v, want %v", clock, got, want)
		}
	}
}

// TestDiurnalRate checks the cycle's shape and its constructor validation.
func TestDiurnalRate(t *testing.T) {
	d := DiurnalRate(1000, 0.5)
	if got := d(0); got != 1 {
		t.Errorf("diurnal at clock 0 = %v, want 1", got)
	}
	if got := d(250); got < 1.49 || got > 1.51 { // peak of the sine
		t.Errorf("diurnal peak = %v, want ≈ 1.5", got)
	}
	if got := d(750); got < 0.49 || got > 0.51 { // trough
		t.Errorf("diurnal trough = %v, want ≈ 0.5", got)
	}
	for _, bad := range []func(){
		func() { DiurnalRate(0, 0.5) },
		func() { DiurnalRate(100, 1) },
		func() { DiurnalRate(100, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid DiurnalRate parameters accepted")
				}
			}()
			bad()
		}()
	}
}

// TestRateFnComposesWithBursts: a custom rate function multiplies with the
// scenario's burst windows rather than replacing them — arrivals in the
// overlap compress by both factors.
func TestRateFnComposesWithBursts(t *testing.T) {
	cfg := Config{NumTasks: 300, Rate: 0.05, VarFrac: 0.10, Beta: 2.0,
		Bursts: []Burst{{Start: 0, End: 1 << 40, Factor: 2}},
		RateFn: StepRate(Burst{Start: 0, End: 1 << 40, Factor: 3}),
	}
	eff := cfg.effectiveRate()
	if got := eff(5); got != 6 {
		t.Fatalf("composed rate = %v, want 6 (2×3)", got)
	}
}

// TestBadRateFnPanics: a rate function returning a non-positive factor
// must fail loudly instead of corrupting the arrival clock.
func TestBadRateFnPanics(t *testing.T) {
	matrix := burstPET(t)
	cfg := Config{NumTasks: 10, Rate: 0.05, VarFrac: 0.10, Beta: 2.0,
		RateFn: func(float64) float64 { return 0 }}
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate factor did not panic")
		}
	}()
	src, err := NewStream(cfg, matrix, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	src.Next()
}

// TestFromTasksOrder: the slice adapter yields arrival order with ties in
// slice order (the order the event queue used to pop simultaneous
// arrivals) and leaves the caller's slice untouched.
func TestFromTasksOrder(t *testing.T) {
	a := task.New(0, 0, 50, 100)
	b := task.New(1, 1, 10, 100)
	c := task.New(2, 0, 50, 100) // ties with a: slice order, a first
	src := FromTasks([]*task.Task{a, b, c})
	if src.Len() != 3 {
		t.Fatalf("Len = %d, want 3", src.Len())
	}
	want := []*task.Task{b, a, c}
	for i, w := range want {
		got, ok := src.Next()
		if !ok || got != w {
			t.Fatalf("position %d: got %v, want %v", i, got, w)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("adapter yielded past its end")
	}
}

// TestNewStreamRejectsBadConfig mirrors Generate's validation (negative
// NumTasks stays invalid even though 0 becomes "unbounded").
func TestNewStreamRejectsBadConfig(t *testing.T) {
	matrix := burstPET(t)
	if _, err := NewStream(Config{NumTasks: -1, Rate: 1, VarFrac: 0.1}, matrix, stats.NewRNG(1)); err == nil {
		t.Error("negative NumTasks accepted")
	}
	if _, err := NewStream(Config{NumTasks: 0, Rate: 0, VarFrac: 0.1}, matrix, stats.NewRNG(1)); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSource(Config{NumTasks: 0, Rate: 1, VarFrac: 0.1}, matrix, stats.NewRNG(1)); err == nil {
		t.Error("replay source accepted an unbounded config")
	}
}
