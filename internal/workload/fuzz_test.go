package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hammers the workload CSV parser with arbitrary input: it must
// never panic, and everything it accepts must be a structurally sound
// workload (correct exec-time fan-out, deadlines after arrivals, IDs in
// arrival order) that survives a write→read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,type,arrival,deadline,true_exec_per_machine\n0,0,0,100,10;20\n", 2)
	f.Add("0,0,0,100,10;20\n1,1,5,200,30;40\n", 2)
	f.Add("0,0,5,100,10\n", 1)
	f.Add("0,0,0,100,10;20;30\n", 2)    // machine-count mismatch
	f.Add("0,0,100,50,10;20\n", 2)      // deadline before arrival
	f.Add("0,0,0,100,0;20\n", 2)        // exec < 1
	f.Add("0,0,0,100,-7;20\n", 2)       // negative exec
	f.Add("0,0,NaN,100,10;20\n", 2)     // non-numeric arrival
	f.Add("0,0,0,1e18,10;20\n", 2)      // float deadline
	f.Add("0,0,0,100,10;20,extra\n", 2) // field-count mismatch
	f.Add("id,type,arrival,deadline,true_exec_per_machine\n", 2)
	f.Add("", 3)
	f.Add("0,0,9223372036854775807,9223372036854775807,1;1\n", 2) // overflow edges
	f.Fuzz(func(t *testing.T, src string, nMachines int) {
		if nMachines < 1 || nMachines > 16 {
			return
		}
		tasks, err := ReadCSV(strings.NewReader(src), nMachines)
		if err != nil {
			return // rejected: fine, as long as it never panics
		}
		prev := int64(-1 << 62)
		for i, tk := range tasks {
			if tk.ID != i {
				t.Fatalf("task %d has ID %d (IDs must be reassigned in order)", i, tk.ID)
			}
			if len(tk.TrueExec) != nMachines {
				t.Fatalf("task %d has %d exec times for %d machines", i, len(tk.TrueExec), nMachines)
			}
			for mi, e := range tk.TrueExec {
				if e < 1 {
					t.Fatalf("task %d exec[%d] = %d < 1 accepted", i, mi, e)
				}
			}
			if tk.Deadline <= tk.Arrival {
				t.Fatalf("task %d deadline %d <= arrival %d accepted", i, tk.Deadline, tk.Arrival)
			}
			if tk.Arrival < prev {
				t.Fatalf("task %d out of arrival order", i)
			}
			prev = tk.Arrival
		}
		// Round trip: what we write, we must read back identically.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tasks); err != nil {
			t.Fatalf("WriteCSV of accepted workload failed: %v", err)
		}
		again, err := ReadCSV(bytes.NewReader(buf.Bytes()), nMachines)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again) != len(tasks) {
			t.Fatalf("round trip changed task count: %d vs %d", len(again), len(tasks))
		}
		for i := range tasks {
			a, b := tasks[i], again[i]
			if a.Type != b.Type || a.Arrival != b.Arrival || a.Deadline != b.Deadline {
				t.Fatalf("round trip changed task %d: %v vs %v", i, a, b)
			}
			for mi := range a.TrueExec {
				if a.TrueExec[mi] != b.TrueExec[mi] {
					t.Fatalf("round trip changed task %d exec[%d]", i, mi)
				}
			}
		}
	})
}
