package workload

import (
	"errors"
	"sync"

	"taskprune/internal/task"
)

// Live-submission bridge: a bounded channel-backed Source that turns the
// pull-based streaming engine into a server. HTTP handlers (or any
// producer) Push partially filled tasks in; the single consumer goroutine
// that drives the engine pulls them out with Next/Poll, stamps arrival
// ticks, and admits them. The buffer is the backpressure surface — a full
// channel returns ErrSourceFull immediately (the serve daemon maps it to
// HTTP 429) instead of blocking the producer or growing without bound.
//
// Unlike Stream, a LiveSource emits tasks in submission order with their
// Arrival fields unset: the consumer owns the simulated clock, so it — not
// the producers — decides the arrival tick each task is admitted at. The
// Source contract (non-decreasing arrival order) is therefore the
// consumer's stamping discipline, not a property of the channel.

// Errors reported by LiveSource.Push.
var (
	// ErrSourceFull means the submission buffer is at capacity; the caller
	// should shed load or retry later.
	ErrSourceFull = errors.New("workload: submission buffer full")
	// ErrSourceClosed means the source is draining: no further submissions
	// are accepted.
	ErrSourceClosed = errors.New("workload: source closed")
)

// LiveSource is the bounded channel-backed Source. Push may be called from
// many goroutines; Next/Poll/Chan belong to the single consumer. Retired
// tasks return to the process-wide task pool through Recycle, the same
// sync.Pool recycler Stream uses, so a long-running daemon's steady-state
// submission path allocates nothing once the live-set high-water mark is
// reached.
type LiveSource struct {
	ch chan *task.Task

	mu     sync.Mutex
	closed bool
}

// NewLiveSource builds a live source with the given submission-buffer
// capacity (minimum 1).
func NewLiveSource(capacity int) *LiveSource {
	if capacity < 1 {
		capacity = 1
	}
	return &LiveSource{ch: make(chan *task.Task, capacity)}
}

// NewPooledTask returns a reset task from the process-wide pool with its
// TrueExec sized for nm machines — the allocation-free way for a live
// producer to materialize a submission before Push.
func NewPooledTask(nm int) *task.Task { return getTask(nm) }

// Push enqueues one submission without blocking. It returns ErrSourceFull
// when the buffer is at capacity and ErrSourceClosed after Close; on error
// the caller still owns the task (recycle or drop it).
func (s *LiveSource) Push(t *task.Task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSourceClosed
	}
	select {
	case s.ch <- t:
		return nil
	default:
		return ErrSourceFull
	}
}

// Close stops admissions: subsequent Push calls fail with ErrSourceClosed,
// while the consumer keeps draining whatever is already buffered; after the
// buffer empties, Next reports exhaustion. Closing twice is a no-op.
func (s *LiveSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// Next implements Source: it blocks until a submission arrives, and
// reports exhaustion only once the source is closed and drained.
func (s *LiveSource) Next() (*task.Task, bool) {
	t, ok := <-s.ch
	return t, ok
}

// Poll is the non-blocking Next: ok is false when the buffer is momentarily
// empty OR the source is exhausted; open distinguishes the two.
func (s *LiveSource) Poll() (t *task.Task, ok, open bool) {
	select {
	case t, ok = <-s.ch:
		return t, ok, ok
	default:
		return nil, false, true
	}
}

// Chan exposes the receive side so the consumer can select over
// submissions, shutdown signals, and timers at once. Receiving from it is
// equivalent to Next.
func (s *LiveSource) Chan() <-chan *task.Task { return s.ch }

// Len returns how many submissions are buffered right now.
func (s *LiveSource) Len() int { return len(s.ch) }

// Recycle implements Recycler: the task and its TrueExec array return to
// the process-wide pool for the next submission.
func (s *LiveSource) Recycle(t *task.Task) {
	if t != nil {
		taskPool.Put(t)
	}
}
