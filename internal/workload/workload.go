// Package workload synthesizes the dynamic task streams driving every
// experiment: per-type gamma arrival processes, deadlines with the paper's
// slack rule δ = arrival + avg_type + β·avg_all, and pre-sampled
// ground-truth execution times.
package workload

import (
	"fmt"
	"math"
	"sort"

	"taskprune/internal/pet"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// Config parameterizes one generated workload trial.
type Config struct {
	// NumTasks is the number of tasks in the trial (paper: 800).
	NumTasks int
	// Rate is the aggregate mean arrival rate in tasks per tick across all
	// types. Use RateForLevel to derive it from a paper-style
	// oversubscription level label.
	Rate float64
	// VarFrac sets the variance of each type's inter-arrival gamma
	// distribution as a fraction of its mean (paper: 0.10 except in the
	// arrival-variance study).
	VarFrac float64
	// Beta is the deadline slack coefficient β in
	// δ_i = arr_i + avg_i + β·avg_all.
	Beta float64
	// Bursts, when non-empty, are arrival-rate burst windows (scenario
	// engine): while a type's arrival clock sits inside a window, its
	// inter-arrival gaps shrink by the window's factor. The number of RNG
	// draws is unchanged, so adding a burst never desynchronizes the
	// execution-time sampling stream.
	Bursts []Burst
}

// Burst is one arrival-rate burst window: gaps drawn while the arrival
// clock is in [Start, End) are divided by Factor (> 1 means a surge,
// < 1 a lull).
type Burst struct {
	Start  int64
	End    int64
	Factor float64
}

// factorAt returns the burst factor in effect at the given arrival clock
// (1 outside every window; overlapping windows multiply).
func factorAt(bursts []Burst, clock float64) float64 {
	f := 1.0
	for _, b := range bursts {
		if clock >= float64(b.Start) && clock < float64(b.End) {
			f *= b.Factor
		}
	}
	return f
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.NumTasks <= 0 {
		return fmt.Errorf("workload: NumTasks must be positive, got %d", c.NumTasks)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("workload: Rate must be positive, got %v", c.Rate)
	}
	if c.VarFrac < 0 {
		return fmt.Errorf("workload: VarFrac must be non-negative, got %v", c.VarFrac)
	}
	if c.Beta < 0 {
		return fmt.Errorf("workload: Beta must be non-negative, got %v", c.Beta)
	}
	for i, b := range c.Bursts {
		if b.Start < 0 || b.End <= b.Start {
			return fmt.Errorf("workload: burst %d window [%d,%d) is malformed", i, b.Start, b.End)
		}
		if !(b.Factor > 0) || math.IsInf(b.Factor, 0) {
			return fmt.Errorf("workload: burst %d factor must be positive and finite, got %v", i, b.Factor)
		}
	}
	return nil
}

// Default returns the baseline trial configuration used throughout the
// evaluation (800 tasks, 10% arrival variance, slack β = 2).
func Default() Config {
	return Config{NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0}
}

// Generate builds one workload trial: NumTasks tasks with types, arrival
// times, deadlines, and pre-sampled true execution times on every machine
// of the PET matrix. Following the paper, each of the matrix's task types
// gets an independent gamma arrival stream whose mean inter-arrival time is
// numTypes/Rate; the streams are merged and the earliest NumTasks tasks
// kept.
func Generate(cfg Config, matrix *pet.Matrix, rng *stats.RNG) ([]*task.Task, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nTypes := matrix.NumTypes()
	if nTypes == 0 {
		return nil, fmt.Errorf("workload: PET matrix has no task types")
	}
	perTypeMeanGap := float64(nTypes) / cfg.Rate
	perTypeCount := cfg.NumTasks/nTypes + 2 // small margin before the merge cut

	avgAll := matrix.GrandMean()
	arrivalRNG := rng.Split()
	execRNG := rng.Split()

	all := make([]*task.Task, 0, nTypes*perTypeCount)
	for ti := 0; ti < nTypes; ti++ {
		typ := task.Type(ti)
		avgType := matrix.TypeMeanAcrossMachines(typ)
		var clock float64
		for k := 0; k < perTypeCount; k++ {
			clock += arrivalRNG.GammaRate(perTypeMeanGap, cfg.VarFrac) / factorAt(cfg.Bursts, clock)
			arr := int64(clock)
			deadline := arr + int64(avgType+cfg.Beta*avgAll+0.5)
			all = append(all, task.New(0, typ, arr, deadline))
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Arrival != all[j].Arrival {
			return all[i].Arrival < all[j].Arrival
		}
		return all[i].Type < all[j].Type
	})
	if len(all) > cfg.NumTasks {
		all = all[:cfg.NumTasks]
	}
	nm := matrix.NumMachines()
	for id, t := range all {
		t.ID = id
		t.TrueExec = make([]int64, nm)
		for mi := 0; mi < nm; mi++ {
			t.TrueExec[mi] = matrix.SampleExec(execRNG, t.Type, mi)
		}
	}
	return all, nil
}

// MustGenerate is Generate for known-good configurations.
func MustGenerate(cfg Config, matrix *pet.Matrix, rng *stats.RNG) []*task.Task {
	ts, err := Generate(cfg, matrix, rng)
	if err != nil {
		panic(err)
	}
	return ts
}

// CountByType tallies how many tasks of each type a workload contains.
func CountByType(tasks []*task.Task, nTypes int) []int {
	counts := make([]int, nTypes)
	for _, t := range tasks {
		counts[t.Type]++
	}
	return counts
}
