// Package workload synthesizes the dynamic task streams driving every
// experiment: per-type gamma arrival processes, deadlines with the paper's
// slack rule δ = arrival + avg_type + β·avg_all, and pre-sampled
// ground-truth execution times.
package workload

import (
	"fmt"
	"math"

	"taskprune/internal/pet"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// Config parameterizes one generated workload trial.
type Config struct {
	// NumTasks is the number of tasks in the trial (paper: 800).
	NumTasks int
	// Rate is the aggregate mean arrival rate in tasks per tick across all
	// types. Use RateForLevel to derive it from a paper-style
	// oversubscription level label.
	Rate float64
	// VarFrac sets the variance of each type's inter-arrival gamma
	// distribution as a fraction of its mean (paper: 0.10 except in the
	// arrival-variance study).
	VarFrac float64
	// Beta is the deadline slack coefficient β in
	// δ_i = arr_i + avg_i + β·avg_all.
	Beta float64
	// Bursts, when non-empty, are arrival-rate burst windows (scenario
	// engine): while a type's arrival clock sits inside a window, its
	// inter-arrival gaps shrink by the window's factor. The number of RNG
	// draws is unchanged, so adding a burst never desynchronizes the
	// execution-time sampling stream.
	Bursts []Burst
	// RateFn, when non-nil, is a pluggable arrival-rate shape (step, ramp,
	// sinusoidal diurnal, ...) applied on top of Bursts: each gap is divided
	// by RateFn(clock)·factorAt(Bursts, clock). See RateFunc for the
	// contract. Like Bursts, it never changes how many RNG values a stream
	// draws per arrival.
	RateFn RateFunc
}

// Burst is one arrival-rate burst window: gaps drawn while the arrival
// clock is in [Start, End) are divided by Factor (> 1 means a surge,
// < 1 a lull).
type Burst struct {
	Start  int64
	End    int64
	Factor float64
}

// factorAt returns the burst factor in effect at the given arrival clock
// (1 outside every window; overlapping windows multiply).
func factorAt(bursts []Burst, clock float64) float64 {
	f := 1.0
	for _, b := range bursts {
		if clock >= float64(b.Start) && clock < float64(b.End) {
			f *= b.Factor
		}
	}
	return f
}

// Validate reports configuration errors early.
func (c Config) Validate() error { return c.validate(false) }

// validate is Validate with an escape hatch for the pure streaming source,
// where NumTasks is an emission limit and 0 means unbounded.
func (c Config) validate(allowUnbounded bool) error {
	if c.NumTasks < 0 || (c.NumTasks == 0 && !allowUnbounded) {
		return fmt.Errorf("workload: NumTasks must be positive, got %d", c.NumTasks)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("workload: Rate must be positive, got %v", c.Rate)
	}
	if c.VarFrac < 0 {
		return fmt.Errorf("workload: VarFrac must be non-negative, got %v", c.VarFrac)
	}
	if c.Beta < 0 {
		return fmt.Errorf("workload: Beta must be non-negative, got %v", c.Beta)
	}
	for i, b := range c.Bursts {
		if b.Start < 0 || b.End <= b.Start {
			return fmt.Errorf("workload: burst %d window [%d,%d) is malformed", i, b.Start, b.End)
		}
		if !(b.Factor > 0) || math.IsInf(b.Factor, 0) {
			return fmt.Errorf("workload: burst %d factor must be positive and finite, got %v", i, b.Factor)
		}
	}
	return nil
}

// Default returns the baseline trial configuration used throughout the
// evaluation (800 tasks, 10% arrival variance, slack β = 2).
func Default() Config {
	return Config{NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0}
}

// Generate builds one workload trial: NumTasks tasks with types, arrival
// times, deadlines, and pre-sampled true execution times on every machine
// of the PET matrix. Following the paper, each of the matrix's task types
// gets an independent gamma arrival stream whose mean inter-arrival time is
// numTypes/Rate; the streams are merged lazily and the first NumTasks
// emissions kept. Generate drains the replay-mode streaming source
// (NewSource), so the slice it returns is the stream's emission order;
// unlike the historical generate-all-then-sort implementation, no type is
// ever truncated to NumTasks/nTypes+2 of the earliest arrivals — under a
// strong burst the merged prefix now carries the true (skewed) type mix
// instead of a silently clipped one.
func Generate(cfg Config, matrix *pet.Matrix, rng *stats.RNG) ([]*task.Task, error) {
	src, err := NewSource(cfg, matrix, rng)
	if err != nil {
		return nil, err
	}
	all := make([]*task.Task, 0, cfg.NumTasks)
	for {
		t, ok := src.Next()
		if !ok {
			return all, nil
		}
		all = append(all, t)
	}
}

// MustGenerate is Generate for known-good configurations.
func MustGenerate(cfg Config, matrix *pet.Matrix, rng *stats.RNG) []*task.Task {
	ts, err := Generate(cfg, matrix, rng)
	if err != nil {
		panic(err)
	}
	return ts
}

// CountByType tallies how many tasks of each type a workload contains.
func CountByType(tasks []*task.Task, nTypes int) []int {
	counts := make([]int, nTypes)
	for _, t := range tasks {
		counts[t.Type]++
	}
	return counts
}
