package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"taskprune/internal/pet"
	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// Source is a pull-based task stream: the simulator asks for the next
// arrival only when its event horizon reaches it, so a trial's live heap
// holds the in-flight tasks instead of the whole workload. Next returns
// tasks in non-decreasing Arrival order (ties in the order the legacy
// sorted-slice workload would have produced them); ok is false once the
// stream is exhausted. Sources are single-trial and not safe for
// concurrent use — the parallel trial runner gives each worker its own.
type Source interface {
	Next() (*task.Task, bool)
}

// Recycler is implemented by sources that pool task structs. The simulator
// hands every retired (completed/missed/dropped) task back through Recycle
// so the steady-state arrival path reuses the task and its TrueExec
// backing array instead of allocating; callers that retain tasks after the
// trial must not recycle them.
type Recycler interface {
	Recycle(*task.Task)
}

// SliceSource adapts a pre-generated workload slice (Generate, ReadCSV,
// hand-built tests) to the Source interface. It yields the tasks in
// non-decreasing arrival order with ties kept in slice order — exactly the
// order the push-based simulator used to drain them from its event queue —
// without mutating the caller's slice. It does not implement Recycler: the
// caller owns the tasks and may inspect them after the trial.
type SliceSource struct {
	tasks []*task.Task
	pos   int
}

// FromTasks wraps a workload slice in a SliceSource.
func FromTasks(tasks []*task.Task) *SliceSource {
	ordered := append([]*task.Task(nil), tasks...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Arrival < ordered[j].Arrival
	})
	return &SliceSource{tasks: ordered}
}

// Next implements Source.
func (s *SliceSource) Next() (*task.Task, bool) {
	if s.pos >= len(s.tasks) {
		return nil, false
	}
	t := s.tasks[s.pos]
	s.pos++
	return t, true
}

// Len returns how many tasks remain.
func (s *SliceSource) Len() int { return len(s.tasks) - s.pos }

// taskPool recycles task structs (and their TrueExec backing arrays)
// process-wide, mirroring the pmf arena's process-wide block pool: a
// million-task trial's steady state allocates tasks only while growing to
// its live-set high-water mark.
var taskPool = sync.Pool{New: func() any { return &task.Task{} }}

// getTask returns a reset pooled task with TrueExec sized for nm machines.
func getTask(nm int) *task.Task {
	t := taskPool.Get().(*task.Task)
	if cap(t.TrueExec) < nm {
		t.TrueExec = make([]int64, nm)
	} else {
		t.TrueExec = t.TrueExec[:nm]
	}
	t.ID = 0
	t.Type = 0
	t.Arrival = 0
	t.Deadline = 0
	t.State = task.StatePending
	t.Machine = -1
	t.Start = 0
	t.Finish = 0
	t.Defers = 0
	t.Consumed = 0
	t.Preemptions = 0
	t.LastCheckpoint = 0
	t.Checkpoints = 0
	return t
}

// typeClock is one task type's gamma arrival process: its next (not yet
// emitted) arrival, and where the gaps come from — a pre-drawn clock buffer
// in replay mode, a private RNG in pure-stream mode.
type typeClock struct {
	next float64 // arrival clock of the head task
	arr  int64   // int64(next), the merge key (legacy sorts truncated ticks)
	buf  []float64
	pos  int
	rng  *stats.RNG
}

// Stream is the lazy k-way merge of the per-type arrival processes: a small
// heap holds one head arrival per type, tasks materialize (and sample their
// TrueExec) only at emission, and retired tasks return through Recycle. Two
// RNG schedules exist:
//
//   - Replay mode (NewSource): the per-type arrival clocks are pre-drawn
//     from a single shared stream in type-major order — the exact draw
//     order of the legacy Generate — so for any configuration the legacy
//     margin handled, the emitted workload is byte-identical to the old
//     sorted slice (the committed golden decision traces pin this). Only
//     NumTasks/nTypes+2 float64 clocks per type are buffered, never task
//     structs. If a type's buffer runs out before NumTasks emissions (the
//     old margin-cut bias case, e.g. under a strong burst), the clock
//     extends with further draws from the same shared stream instead of
//     silently truncating the type.
//
//   - Pure mode (NewStream): each type owns an RNG split, gaps are drawn
//     on demand, and memory is O(nTypes + live tasks) no matter how long
//     the stream runs — NumTasks may be 0 for an unbounded stream. Values
//     differ from replay mode at equal seeds; determinism per (config,
//     seed) still holds.
type Stream struct {
	matrix  *pet.Matrix
	nm      int
	limit   int // 0 = unbounded
	emitted int
	execRNG *stats.RNG
	// extRNG continues the shared arrival stream past the replay buffers;
	// nil in pure mode.
	extRNG  *stats.RNG
	rate    RateFunc // nil = constant 1
	meanGap float64
	varFrac float64
	spans   []int64
	clocks  []typeClock
	heap    []int
}

// NewSource builds the replay-mode stream for cfg: a drop-in pull-based
// replacement for Generate whose emitted tasks match the legacy slice
// byte for byte (same seed, same configuration) while buffering only
// per-type arrival clocks. cfg.NumTasks must be positive.
func NewSource(cfg Config, matrix *pet.Matrix, rng *stats.RNG) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return newStream(cfg, matrix, rng, true)
}

// NewStream builds the pure streaming source: constant memory in the
// stream length, per-type RNG splits, NumTasks as an emission limit
// (0 = unbounded). Use it for trials far past the scale a materialized
// workload allows; its RNG schedule differs from Generate/NewSource.
func NewStream(cfg Config, matrix *pet.Matrix, rng *stats.RNG) (*Stream, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	return newStream(cfg, matrix, rng, false)
}

func newStream(cfg Config, matrix *pet.Matrix, rng *stats.RNG, replay bool) (*Stream, error) {
	nTypes := matrix.NumTypes()
	if nTypes == 0 {
		return nil, fmt.Errorf("workload: PET matrix has no task types")
	}
	st := &Stream{
		matrix:  matrix,
		nm:      matrix.NumMachines(),
		limit:   cfg.NumTasks,
		meanGap: float64(nTypes) / cfg.Rate,
		varFrac: cfg.VarFrac,
		rate:    cfg.effectiveRate(),
		spans:   make([]int64, nTypes),
		clocks:  make([]typeClock, nTypes),
	}
	avgAll := matrix.GrandMean()
	for ti := range st.spans {
		avgType := matrix.TypeMeanAcrossMachines(task.Type(ti))
		st.spans[ti] = int64(avgType + cfg.Beta*avgAll + 0.5)
	}
	// Split order matches Generate: the arrival stream first, the
	// execution-time stream second, so both replay the legacy draws.
	arrivalRNG := rng.Split()
	st.execRNG = rng.Split()
	if replay {
		st.extRNG = arrivalRNG
		perTypeCount := cfg.NumTasks/nTypes + 2
		for ti := range st.clocks {
			buf := make([]float64, perTypeCount)
			var clock float64
			for k := range buf {
				clock += arrivalRNG.GammaRate(st.meanGap, st.varFrac) / st.factor(clock)
				buf[k] = clock
			}
			st.clocks[ti].buf = buf
		}
	} else {
		for ti := range st.clocks {
			st.clocks[ti].rng = arrivalRNG.Split()
		}
	}
	for ti := range st.clocks {
		st.advance(ti)
	}
	st.heap = make([]int, nTypes)
	for i := range st.heap {
		st.heap[i] = i
	}
	for i := nTypes/2 - 1; i >= 0; i-- {
		st.siftDown(i)
	}
	return st, nil
}

// factor evaluates the effective rate multiplier at an arrival clock,
// guarding against rate functions that would freeze or reverse the clock.
func (st *Stream) factor(clock float64) float64 {
	if st.rate == nil {
		return 1
	}
	f := st.rate(clock)
	if !(f > 0) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("workload: rate function returned %v at clock %v (must be positive and finite)", f, clock))
	}
	return f
}

// advance moves type ti's head to its next arrival.
func (st *Stream) advance(ti int) {
	tc := &st.clocks[ti]
	switch {
	case tc.pos < len(tc.buf): // replay: pre-drawn clock
		tc.next = tc.buf[tc.pos]
		tc.pos++
	case tc.rng != nil: // pure: private gap stream
		tc.next += tc.rng.GammaRate(st.meanGap, st.varFrac) / st.factor(tc.next)
	default: // replay past the buffer: continue the shared stream
		tc.next += st.extRNG.GammaRate(st.meanGap, st.varFrac) / st.factor(tc.next)
	}
	tc.arr = int64(tc.next)
}

// less orders the merge heap by (arrival tick, type index); within a type
// the clock is monotone, so emission order matches the legacy stable sort
// on (Arrival, Type) exactly.
func (st *Stream) less(a, b int) bool {
	ca, cb := &st.clocks[a], &st.clocks[b]
	if ca.arr != cb.arr {
		return ca.arr < cb.arr
	}
	return a < b
}

func (st *Stream) siftDown(i int) {
	h := st.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && st.less(h[l], h[m]) {
			m = l
		}
		if r < len(h) && st.less(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Next implements Source: it pops the earliest head, materializes the task
// from the pool (sampling its ground-truth execution times in emission
// order, which is the legacy sorted order), and advances that type's clock.
func (st *Stream) Next() (*task.Task, bool) {
	if st.limit > 0 && st.emitted >= st.limit {
		return nil, false
	}
	ti := st.heap[0]
	tc := &st.clocks[ti]
	t := getTask(st.nm)
	t.ID = st.emitted
	t.Type = task.Type(ti)
	t.Arrival = tc.arr
	t.Deadline = tc.arr + st.spans[ti]
	for mi := 0; mi < st.nm; mi++ {
		t.TrueExec[mi] = st.matrix.SampleExec(st.execRNG, t.Type, mi)
	}
	st.emitted++
	st.advance(ti)
	st.siftDown(0)
	return t, true
}

// Recycle implements Recycler: the task and its TrueExec array return to
// the process-wide pool for the next emission.
func (st *Stream) Recycle(t *task.Task) {
	if t != nil {
		taskPool.Put(t)
	}
}

// Emitted returns how many tasks the stream has produced so far.
func (st *Stream) Emitted() int { return st.emitted }
