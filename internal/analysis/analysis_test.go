package analysis

import (
	"strings"
	"testing"

	"taskprune/internal/machine"
	"taskprune/internal/task"
	"taskprune/internal/trace"
)

func doneTask(id int, st task.State, arrival, start, finish, deadline int64) *task.Task {
	t := task.New(id, 0, arrival, deadline)
	t.TrueExec = []int64{finish - start}
	t.State = st
	t.Start = start
	t.Finish = finish
	if st != task.StatePending {
		t.Machine = 0
	}
	return t
}

func TestAnalyzeTrialOutcomes(t *testing.T) {
	ok := doneTask(0, task.StateCompleted, 0, 10, 30, 100)
	late := doneTask(1, task.StateMissed, 0, 10, 120, 100)
	evicted := doneTask(2, task.StateDropped, 0, 50, 100, 100)
	expiredUnmapped := doneTask(3, task.StateDropped, 0, 0, 150, 100)
	expiredUnmapped.Machine = -1
	tasks := []*task.Task{ok, late, evicted, expiredUnmapped}

	m := machine.New(0, "m0", 6, 0)
	a := AnalyzeTrial(tasks, []*machine.Machine{m}, 200)
	if a.Completed != 1 || a.Failed != 3 {
		t.Errorf("completed/failed = %d/%d", a.Completed, a.Failed)
	}
	if a.Breakdown[ReasonMissedLate] != 1 {
		t.Errorf("missed-late = %d", a.Breakdown[ReasonMissedLate])
	}
	if a.Breakdown[ReasonEvicted] != 1 {
		t.Errorf("evicted = %d (breakdown %v)", a.Breakdown[ReasonEvicted], a.Breakdown)
	}
	if a.Breakdown[ReasonExpiredUnmapped] != 1 {
		t.Errorf("expired-unmapped = %d", a.Breakdown[ReasonExpiredUnmapped])
	}
	if a.ResponseP50 != 30 {
		t.Errorf("response p50 = %d, want 30", a.ResponseP50)
	}
	if a.QueueWaitP50 != 10 {
		t.Errorf("wait p50 = %d, want 10", a.QueueWaitP50)
	}
}

func TestAnalyzeTrialDefersAndPreemptions(t *testing.T) {
	a1 := doneTask(0, task.StateCompleted, 0, 1, 2, 10)
	a1.Defers = 3
	a2 := doneTask(1, task.StateCompleted, 0, 1, 2, 10)
	a2.Preemptions = 2
	a := AnalyzeTrial([]*task.Task{a1, a2}, nil, 10)
	if a.DeferredTasks != 1 || a.TotalDefers != 3 || a.MaxDefers != 3 {
		t.Errorf("defer stats = %d/%d/%d", a.DeferredTasks, a.TotalDefers, a.MaxDefers)
	}
	if a.PreemptedTasks != 1 || a.TotalPreemptions != 2 {
		t.Errorf("preempt stats = %d/%d", a.PreemptedTasks, a.TotalPreemptions)
	}
}

func TestAnalyzeTrialUtilization(t *testing.T) {
	m := machine.New(0, "m0", 6, 0)
	tk := doneTask(0, task.StateCompleted, 0, 0, 50, 100)
	if err := m.Enqueue(tk); err != nil {
		t.Fatal(err)
	}
	m.StartNext(0)
	m.FinishExecuting(50)
	a := AnalyzeTrial([]*task.Task{tk}, []*machine.Machine{m}, 100)
	if len(a.Utilization) != 1 {
		t.Fatalf("utilization entries = %d", len(a.Utilization))
	}
	if a.Utilization[0] != 0.5 {
		t.Errorf("utilization = %v, want 0.5", a.Utilization[0])
	}
}

func TestPercentilesEmpty(t *testing.T) {
	a := AnalyzeTrial(nil, nil, 100)
	if a.ResponseP50 != 0 || a.ResponseP95 != 0 {
		t.Error("empty percentiles should be zero")
	}
}

func TestDropReasonString(t *testing.T) {
	for reason, want := range map[DropReason]string{
		ReasonExpiredUnmapped: "expired-unmapped",
		ReasonExpiredQueued:   "expired-queued",
		ReasonEvicted:         "evicted",
		ReasonPruned:          "pruned",
		ReasonMissedLate:      "missed-late",
		DropReason(9):         "DropReason(9)",
	} {
		if got := reason.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestTableRendersBreakdown(t *testing.T) {
	ok := doneTask(0, task.StateCompleted, 0, 10, 30, 100)
	a := AnalyzeTrial([]*task.Task{ok}, nil, 100)
	out := a.Table().String()
	for _, frag := range []string{"tasks", "completed on time", "response p50"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

func TestQueueTimeline(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Record(trace.Event{Tick: 1, Kind: trace.TaskArrived, TaskID: 0, Machine: -1})
	rec.Record(trace.Event{Tick: 1, Kind: trace.TaskArrived, TaskID: 1, Machine: -1})
	rec.Record(trace.Event{Tick: 2, Kind: trace.TaskMapped, TaskID: 0, Machine: 0})
	rec.Record(trace.Event{Tick: 5, Kind: trace.TaskCompleted, TaskID: 0, Machine: 0})
	rec.Record(trace.Event{Tick: 9, Kind: trace.TaskDropped, TaskID: 1, Machine: -1})

	tl := QueueTimeline(rec)
	if len(tl) != 4 { // ticks 1, 2, 5, 9
		t.Fatalf("timeline samples = %d, want 4: %+v", len(tl), tl)
	}
	if tl[0].Batch != 2 || tl[0].InSys != 0 {
		t.Errorf("tick1 = %+v, want batch=2", tl[0])
	}
	if tl[1].Batch != 1 || tl[1].InSys != 1 {
		t.Errorf("tick2 = %+v", tl[1])
	}
	if tl[2].InSys != 0 {
		t.Errorf("tick5 = %+v", tl[2])
	}
	if tl[3].Batch != 0 {
		t.Errorf("tick9 = %+v", tl[3])
	}
	if PeakBatch(tl) != 2 {
		t.Errorf("PeakBatch = %d, want 2", PeakBatch(tl))
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteTimelineCSV(&sb, []QueueSample{{Tick: 3, Batch: 2, InSys: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tick,batch,in_system\n3,2,1\n") {
		t.Errorf("CSV = %q", sb.String())
	}
}
