// Package analysis post-processes simulation traces and outcomes into the
// operational views a practitioner needs when studying a pruning policy:
// machine utilization, queue-length dynamics, drop breakdowns, deferral
// distributions, and latency percentiles. The experiment harness reports
// figure-level aggregates; this package answers "what actually happened
// inside a trial".
package analysis

import (
	"fmt"
	"io"
	"sort"

	"taskprune/internal/machine"
	"taskprune/internal/report"
	"taskprune/internal/task"
	"taskprune/internal/trace"
)

// DropReason classifies why a task failed.
type DropReason int

const (
	// ReasonExpiredUnmapped: deadline passed while in the batch queue.
	ReasonExpiredUnmapped DropReason = iota
	// ReasonExpiredQueued: deadline passed while pending on a machine.
	ReasonExpiredQueued
	// ReasonEvicted: killed at the deadline while executing.
	ReasonEvicted
	// ReasonPruned: removed by the probabilistic dropper before its
	// deadline passed.
	ReasonPruned
	// ReasonMissedLate: ran to completion after the deadline (baselines).
	ReasonMissedLate
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case ReasonExpiredUnmapped:
		return "expired-unmapped"
	case ReasonExpiredQueued:
		return "expired-queued"
	case ReasonEvicted:
		return "evicted"
	case ReasonPruned:
		return "pruned"
	case ReasonMissedLate:
		return "missed-late"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// TrialAnalysis aggregates one finished trial.
type TrialAnalysis struct {
	Tasks int

	// Outcomes.
	Completed int
	Approx    int // approximate completions (extension)
	Failed    int
	Breakdown map[DropReason]int

	// Timing (completed tasks only).
	ResponseP50  int64 // arrival -> finish
	ResponseP95  int64
	QueueWaitP50 int64 // arrival -> first start
	QueueWaitP95 int64

	// Pruning behaviour.
	DeferredTasks    int // tasks deferred at least once
	TotalDefers      int
	MaxDefers        int
	PreemptedTasks   int
	TotalPreemptions int

	// Per-machine utilization: busy ticks / trial span.
	Utilization []float64
	SpanTicks   int64
}

// AnalyzeTrial computes a TrialAnalysis from finished tasks and the machine
// fleet at the end of a trial. endTick is the simulator's final clock.
func AnalyzeTrial(tasks []*task.Task, machines []*machine.Machine, endTick int64) TrialAnalysis {
	a := TrialAnalysis{
		Tasks:     len(tasks),
		Breakdown: make(map[DropReason]int),
		SpanTicks: endTick,
	}
	var responses, waits []int64
	for _, t := range tasks {
		if t.Defers > 0 {
			a.DeferredTasks++
			a.TotalDefers += t.Defers
			if t.Defers > a.MaxDefers {
				a.MaxDefers = t.Defers
			}
		}
		if t.Preemptions > 0 {
			a.PreemptedTasks++
			a.TotalPreemptions += t.Preemptions
		}
		switch t.State {
		case task.StateCompleted:
			a.Completed++
			responses = append(responses, t.Finish-t.Arrival)
			waits = append(waits, t.Start-t.Arrival)
		case task.StateApprox:
			a.Approx++
		case task.StateMissed:
			a.Failed++
			a.Breakdown[ReasonMissedLate]++
		case task.StateDropped:
			a.Failed++
			a.Breakdown[classifyDrop(t)]++
		}
	}
	a.ResponseP50, a.ResponseP95 = percentiles(responses)
	a.QueueWaitP50, a.QueueWaitP95 = percentiles(waits)
	if endTick > 0 {
		for _, m := range machines {
			a.Utilization = append(a.Utilization, float64(m.BusyTicks(endTick))/float64(endTick))
		}
	}
	return a
}

// classifyDrop infers why a dropped task failed from its final state.
func classifyDrop(t *task.Task) DropReason {
	switch {
	case t.Machine < 0:
		return ReasonExpiredUnmapped
	case t.State == task.StateDropped && t.Start > 0 && t.Finish == t.Deadline:
		return ReasonEvicted
	case t.Finish > t.Deadline:
		return ReasonExpiredQueued
	default:
		return ReasonPruned
	}
}

// percentiles returns the 50th and 95th percentile of xs (0, 0 if empty).
func percentiles(xs []int64) (p50, p95 int64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return idx(0.50), idx(0.95)
}

// Table renders the analysis as a report table.
func (a TrialAnalysis) Table() *report.Table {
	t := report.NewTable("trial analysis", "metric", "value")
	t.AddRow("tasks", a.Tasks)
	t.AddRow("completed on time", a.Completed)
	if a.Approx > 0 {
		t.AddRow("approximate completions", a.Approx)
	}
	t.AddRow("failed", a.Failed)
	for _, reason := range []DropReason{ReasonExpiredUnmapped, ReasonExpiredQueued, ReasonEvicted, ReasonPruned, ReasonMissedLate} {
		if n := a.Breakdown[reason]; n > 0 {
			t.AddRow("  "+reason.String(), n)
		}
	}
	t.AddRow("response p50 (ticks)", a.ResponseP50)
	t.AddRow("response p95 (ticks)", a.ResponseP95)
	t.AddRow("queue wait p50 (ticks)", a.QueueWaitP50)
	t.AddRow("queue wait p95 (ticks)", a.QueueWaitP95)
	t.AddRow("tasks deferred >= once", a.DeferredTasks)
	t.AddRow("total deferrals", a.TotalDefers)
	t.AddRow("max deferrals of one task", a.MaxDefers)
	if a.TotalPreemptions > 0 {
		t.AddRow("tasks preempted", a.PreemptedTasks)
		t.AddRow("total preemptions", a.TotalPreemptions)
	}
	for i, u := range a.Utilization {
		t.AddRow(fmt.Sprintf("machine %d utilization", i), fmt.Sprintf("%.1f%%", u*100))
	}
	return t
}

// QueueSample is one point of a queue-length time series.
type QueueSample struct {
	Tick  int64
	Batch int // tasks waiting unmapped
	InSys int // tasks mapped or executing
}

// QueueTimeline reconstructs batch-queue and in-system occupancy over time
// from a trace. It requires an unbounded recorder that observed the whole
// trial.
func QueueTimeline(rec *trace.Recorder) []QueueSample {
	var out []QueueSample
	batch, inSys := 0, 0
	var lastTick int64 = -1
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.TaskArrived:
			batch++
		case trace.TaskMapped:
			batch--
			inSys++
		case trace.TaskCompleted, trace.TaskMissed:
			inSys--
		case trace.TaskDropped:
			// A drop can hit either side; infer from machine field.
			if e.Machine >= 0 {
				inSys--
			} else {
				batch--
			}
		default:
			continue
		}
		if e.Tick != lastTick {
			out = append(out, QueueSample{Tick: e.Tick, Batch: batch, InSys: inSys})
			lastTick = e.Tick
		} else if len(out) > 0 {
			out[len(out)-1].Batch = batch
			out[len(out)-1].InSys = inSys
		}
	}
	return out
}

// PeakBatch returns the maximum batch-queue occupancy in a timeline.
func PeakBatch(samples []QueueSample) int {
	peak := 0
	for _, s := range samples {
		if s.Batch > peak {
			peak = s.Batch
		}
	}
	return peak
}

// WriteTimelineCSV dumps a queue timeline as CSV.
func WriteTimelineCSV(w io.Writer, samples []QueueSample) error {
	if _, err := fmt.Fprintln(w, "tick,batch,in_system"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d\n", s.Tick, s.Batch, s.InSys); err != nil {
			return err
		}
	}
	return nil
}
