package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Tick: 1, Kind: TaskArrived}) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder has state")
	}
	if r.Events() != nil {
		t.Error("nil recorder returned events")
	}
	if len(r.CountByKind()) != 0 {
		t.Error("nil recorder counted events")
	}
}

func TestUnboundedRecorder(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 1000; i++ {
		r.Record(Event{Tick: int64(i), Kind: TaskArrived, TaskID: i})
	}
	if r.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", r.Len())
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.TaskID != i {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestRingRecorderKeepsRecent(t *testing.T) {
	r := NewRingRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Tick: int64(i), TaskID: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", r.Dropped())
	}
	evs := r.Events()
	want := []int{7, 8, 9}
	for i, e := range evs {
		if e.TaskID != want[i] {
			t.Errorf("retained event %d = task %d, want %d", i, e.TaskID, want[i])
		}
	}
	// Chronological order must be preserved across the wrap point.
	for i := 1; i < len(evs); i++ {
		if evs[i].Tick < evs[i-1].Tick {
			t.Error("events out of chronological order after wrap")
		}
	}
}

func TestRingRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity ring accepted")
		}
	}()
	NewRingRecorder(0)
}

func TestCountByKind(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Kind: TaskArrived})
	r.Record(Event{Kind: TaskArrived})
	r.Record(Event{Kind: TaskDropped})
	counts := r.CountByKind()
	if counts[TaskArrived] != 2 || counts[TaskDropped] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		TaskArrived: "arrived", TaskMapped: "mapped", TaskDeferred: "deferred",
		TaskStarted: "started", TaskCompleted: "completed", TaskMissed: "missed",
		TaskDropped: "dropped", PrunerEngaged: "pruner-on", PrunerDisengaged: "pruner-off",
		Kind(42): "Kind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Tick: 5, Kind: TaskDropped, TaskID: 3, Machine: 2, Value: 0.42}
	s := e.String()
	for _, frag := range []string{"t=5", "dropped", "task=3", "machine=2", "v=0.420"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Event.String() = %q missing %q", s, frag)
		}
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Tick: 1, Kind: TaskArrived, TaskID: 0, Machine: -1})
	r.Record(Event{Tick: 2, Kind: TaskMapped, TaskID: 0, Machine: 3})
	var text, csv strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(text.String(), "\n"); lines != 2 {
		t.Errorf("text lines = %d, want 2", lines)
	}
	if !strings.HasPrefix(csv.String(), "tick,kind,task,machine,value\n") {
		t.Errorf("CSV missing header: %q", csv.String())
	}
	if !strings.Contains(csv.String(), "2,mapped,0,3,0") {
		t.Errorf("CSV missing row: %q", csv.String())
	}
}
