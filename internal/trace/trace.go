// Package trace records the simulator's decision stream — arrivals,
// mapping decisions, deferrals, drops, evictions, completions, pruner
// state flips — so that runs can be audited, visualized, or diffed. The
// recorder is allocation-light (a preallocated ring buffer) so tracing can
// stay on during benchmarks without distorting them.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies a trace event.
type Kind int

const (
	// TaskArrived: a task entered the batch queue.
	TaskArrived Kind = iota
	// TaskMapped: the heuristic committed a task to a machine queue.
	TaskMapped
	// TaskDeferred: the pruner held a task back at a mapping event.
	TaskDeferred
	// TaskStarted: a machine began executing a task.
	TaskStarted
	// TaskCompleted: a task finished at or before its deadline.
	TaskCompleted
	// TaskMissed: a task finished after its deadline.
	TaskMissed
	// TaskDropped: a task was removed (expired, pruned, or evicted).
	TaskDropped
	// TaskPreempted: the pruner paused an executing task, re-queueing it
	// with its progress retained (preemption extension).
	TaskPreempted
	// PrunerEngaged: the oversubscription detector switched dropping on.
	PrunerEngaged
	// PrunerDisengaged: the detector switched dropping off.
	PrunerDisengaged
	// MachineFailed: a scenario event took a machine out of the fleet.
	MachineFailed
	// MachineRecovered: a scenario event returned a machine to the fleet.
	MachineRecovered
	// MachineDegraded: a scenario event changed a machine's speed factor
	// (Value carries the new factor).
	MachineDegraded
	// TaskRequeued: a machine failure returned a queued or executing task
	// to the batch queue (its progress, if any, is lost).
	TaskRequeued
	// TaskRestored: a machine failure returned a task to the batch queue
	// with checkpointed progress surviving (Value carries the restored
	// Consumed credit in nominal ticks).
	TaskRestored
	// BeliefRefreshed: the online PET belief rebuilt one (type, machine)
	// cell's distribution from observed completions (Machine carries the
	// cell's machine, TaskID the task type, Value the learned mean).
	BeliefRefreshed
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TaskArrived:
		return "arrived"
	case TaskMapped:
		return "mapped"
	case TaskDeferred:
		return "deferred"
	case TaskStarted:
		return "started"
	case TaskCompleted:
		return "completed"
	case TaskMissed:
		return "missed"
	case TaskDropped:
		return "dropped"
	case TaskPreempted:
		return "preempted"
	case PrunerEngaged:
		return "pruner-on"
	case PrunerDisengaged:
		return "pruner-off"
	case MachineFailed:
		return "m-failed"
	case MachineRecovered:
		return "m-recovered"
	case MachineDegraded:
		return "m-degraded"
	case TaskRequeued:
		return "requeued"
	case TaskRestored:
		return "restored"
	case BeliefRefreshed:
		return "belief-refresh"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence. Fields not applicable to a Kind are
// zero.
type Event struct {
	Tick    int64
	Kind    Kind
	TaskID  int
	Machine int     // -1 when not machine-related
	Value   float64 // kind-specific: robustness at drop/defer, EWMA level at flips
}

// String renders one event compactly.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-8d %-10s", e.Tick, e.Kind)
	if e.TaskID >= 0 {
		fmt.Fprintf(&b, " task=%d", e.TaskID)
	}
	if e.Machine >= 0 {
		fmt.Fprintf(&b, " machine=%d", e.Machine)
	}
	if e.Value != 0 {
		fmt.Fprintf(&b, " v=%.3f", e.Value)
	}
	return b.String()
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so call sites never need nil checks beyond the method receiver.
type Recorder struct {
	events   []Event
	capacity int // 0 = unbounded
	dropped  int // events discarded once the ring wrapped
	head     int // ring start when capacity > 0 and full
}

// NewRecorder returns an unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRingRecorder keeps only the most recent capacity events.
func NewRingRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: ring capacity must be positive, got %d", capacity))
	}
	return &Recorder{capacity: capacity, events: make([]Event, 0, capacity)}
}

// Record appends an event. Safe on a nil receiver (no-op).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.capacity == 0 {
		r.events = append(r.events, e)
		return
	}
	if len(r.events) < r.capacity {
		r.events = append(r.events, e)
		return
	}
	r.events[r.head] = e
	r.head = (r.head + 1) % r.capacity
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped returns how many events the ring discarded.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained events in chronological order (copies).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	counts := make(map[Kind]int)
	if r == nil {
		return counts
	}
	for _, e := range r.events {
		counts[e.Kind]++
	}
	return counts
}

// WriteText dumps the trace in chronological order, one line per event.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the trace as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "tick,kind,task,machine,value"); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%g\n", e.Tick, e.Kind, e.TaskID, e.Machine, e.Value); err != nil {
			return err
		}
	}
	return nil
}
