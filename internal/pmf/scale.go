package pmf

import (
	"fmt"
	"math"
)

// ScaleTicks returns the distribution of ceil(X · factor) where p is the
// distribution of a duration X: the execution-time profile of a machine
// running factor× slower than nominal (factor > 1) or faster (factor < 1).
// The scenario engine uses it to derive degradation-adjusted PET entries —
// every impulse tick is stretched by the machine's current speed factor
// (minimum 1 tick: an execution can never take zero time), with mass merged
// when distinct ticks collide. factor == 1 returns p itself, so the nominal
// path costs nothing and stays bit-identical to a scenario-free run.
func ScaleTicks(p *PMF, factor float64) *PMF {
	if factor == 1 || p.IsZero() {
		return p
	}
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("pmf: ScaleTicks with invalid factor %v", factor))
	}
	lo := scaleTick(p.start, factor)
	hi := scaleTick(p.End(), factor)
	probs := make([]float64, hi-lo+1)
	for i, v := range p.probs {
		if v == 0 {
			continue
		}
		t := scaleTick(p.start+int64(i), factor)
		probs[t-lo] += v
	}
	return wrap(lo, probs)
}

// scaleTick stretches one duration tick by factor, clamping to at least 1.
func scaleTick(t int64, factor float64) int64 {
	s := int64(math.Ceil(float64(t) * factor))
	if s < 1 {
		s = 1
	}
	return s
}

// ScaleDur stretches an integer duration by a machine speed factor using the
// same rounding as ScaleTicks, so the simulator's ground-truth run times and
// the heuristics' scaled profiles agree on what a degraded machine does.
// Non-positive durations pass through (no progress is no progress at any
// speed).
func ScaleDur(d int64, factor float64) int64 {
	if factor == 1 || d <= 0 {
		return d
	}
	return scaleTick(d, factor)
}

// UnscaleDur converts wall-clock ticks spent on a machine with the given
// speed factor back into nominal execution progress (floor division — a
// preempted task never gets credited more progress than it made).
func UnscaleDur(wall int64, factor float64) int64 {
	if factor == 1 || wall <= 0 {
		return wall
	}
	return int64(float64(wall) / factor)
}
