package pmf

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

const tol = 1e-12

func TestNewTrimsZeros(t *testing.T) {
	p := New(10, []float64{0, 0, 0.5, 0.5, 0, 0})
	if got := p.Start(); got != 12 {
		t.Errorf("Start = %d, want 12", got)
	}
	if got := p.End(); got != 13 {
		t.Errorf("End = %d, want 13", got)
	}
	if got := p.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	src := []float64{0.5, 0.5}
	p := New(0, src)
	src[0] = 99
	if got := p.At(0); got != 0.5 {
		t.Errorf("At(0) = %v after mutating source, want 0.5", got)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative probability did not panic")
		}
	}()
	New(0, []float64{0.5, -0.1})
}

func TestImpulse(t *testing.T) {
	p := Impulse(7)
	if got := p.At(7); got != 1 {
		t.Errorf("At(7) = %v, want 1", got)
	}
	if got := p.Mass(); got != 1 {
		t.Errorf("Mass = %v, want 1", got)
	}
	if got := p.Mean(); got != 7 {
		t.Errorf("Mean = %v, want 7", got)
	}
	if got := p.Variance(); got != 0 {
		t.Errorf("Variance = %v, want 0", got)
	}
}

func TestZeroPMF(t *testing.T) {
	var p PMF
	if !p.IsZero() {
		t.Error("zero value should be IsZero")
	}
	if got := p.Mass(); got != 0 {
		t.Errorf("Mass = %v, want 0", got)
	}
	if got := p.CDF(100); got != 0 {
		t.Errorf("CDF = %v, want 0", got)
	}
	if got := p.Mean(); got != 0 {
		t.Errorf("Mean = %v, want 0", got)
	}
}

func TestAtOutOfRange(t *testing.T) {
	p := New(5, []float64{1})
	for _, tick := range []int64{4, 6, -100, 100} {
		if got := p.At(tick); got != 0 {
			t.Errorf("At(%d) = %v, want 0", tick, got)
		}
	}
}

func TestNormalize(t *testing.T) {
	p := New(0, []float64{1, 2, 1})
	p.Normalize()
	if !almostEqual(p.Mass(), 1, tol) {
		t.Errorf("Mass after Normalize = %v, want 1", p.Mass())
	}
	if !almostEqual(p.At(1), 0.5, tol) {
		t.Errorf("At(1) = %v, want 0.5", p.At(1))
	}
}

func TestShift(t *testing.T) {
	p := New(2, []float64{0.25, 0.5, 0.25})
	q := p.Shift(10)
	if got := q.Start(); got != 12 {
		t.Errorf("shifted Start = %d, want 12", got)
	}
	if !almostEqual(q.Mean(), p.Mean()+10, tol) {
		t.Errorf("shifted Mean = %v, want %v", q.Mean(), p.Mean()+10)
	}
	// Original untouched.
	if got := p.Start(); got != 2 {
		t.Errorf("original Start mutated to %d", got)
	}
}

func TestCDFAndSuccessProb(t *testing.T) {
	p := New(1, []float64{0.25, 0.5, 0.25}) // impulses at 1, 2, 3
	cases := []struct {
		t    int64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := p.CDF(c.t); !almostEqual(got, c.want, tol) {
			t.Errorf("CDF(%d) = %v, want %v", c.t, got, c.want)
		}
		if got := p.SuccessProb(c.t); !almostEqual(got, c.want, tol) {
			t.Errorf("SuccessProb(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestMeanVariance(t *testing.T) {
	p := New(1, []float64{0.25, 0.5, 0.25})
	if !almostEqual(p.Mean(), 2, tol) {
		t.Errorf("Mean = %v, want 2", p.Mean())
	}
	if !almostEqual(p.Variance(), 0.5, tol) {
		t.Errorf("Variance = %v, want 0.5", p.Variance())
	}
}

func TestSkewnessSigns(t *testing.T) {
	sym := New(1, []float64{0.25, 0.5, 0.25})
	if got := sym.Skewness(); !almostEqual(got, 0, tol) {
		t.Errorf("symmetric skewness = %v, want 0", got)
	}
	// Tail to the right -> positive skew.
	right := New(1, []float64{0.7, 0.2, 0.05, 0.05})
	if got := right.Skewness(); got <= 0 {
		t.Errorf("right-tailed skewness = %v, want > 0", got)
	}
	// Tail to the left -> negative skew.
	left := New(1, []float64{0.05, 0.05, 0.2, 0.7})
	if got := left.Skewness(); got >= 0 {
		t.Errorf("left-tailed skewness = %v, want < 0", got)
	}
}

func TestBoundedSkewnessClamps(t *testing.T) {
	// A long right tail produces |S| > 1, which must clamp to 1.
	p := New(1, []float64{0.9, 0.05, 0.01, 0.01, 0.01, 0.01, 0.005, 0.005})
	if raw := p.Skewness(); raw <= 1 {
		t.Skipf("test distribution not extreme enough (S=%v); adjust", raw)
	}
	if got := p.BoundedSkewness(); got != 1 {
		t.Errorf("BoundedSkewness = %v, want 1", got)
	}
}

func TestQuantile(t *testing.T) {
	p := New(1, []float64{0.25, 0.5, 0.25})
	cases := []struct {
		q    float64
		want int64
	}{{0.1, 1}, {0.25, 1}, {0.5, 2}, {0.75, 2}, {0.9, 3}, {1.0, 3}}
	for _, c := range cases {
		if got := p.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestConditionAtLeast(t *testing.T) {
	p := New(1, []float64{0.25, 0.5, 0.25})
	q := p.ConditionAtLeast(2)
	if got := q.Start(); got != 2 {
		t.Errorf("conditioned Start = %d, want 2", got)
	}
	if !almostEqual(q.Mass(), 1, tol) {
		t.Errorf("conditioned Mass = %v, want 1", q.Mass())
	}
	if !almostEqual(q.At(2), 0.5/0.75, tol) {
		t.Errorf("conditioned At(2) = %v, want %v", q.At(2), 0.5/0.75)
	}
	// Conditioning before the support is the identity.
	if r := p.ConditionAtLeast(0); !ApproxEqual(r, p, tol) {
		t.Error("conditioning before support should be identity")
	}
	// Conditioning past the support collapses to an impulse at t.
	r := p.ConditionAtLeast(10)
	if got := r.At(10); got != 1 {
		t.Errorf("overdue conditioning At(10) = %v, want 1", got)
	}
}

func TestTruncateAfter(t *testing.T) {
	p := New(1, []float64{0.25, 0.5, 0.25})
	removed := p.TruncateAfter(2)
	if !almostEqual(removed, 0.25, tol) {
		t.Errorf("removed = %v, want 0.25", removed)
	}
	if !almostEqual(p.Mass(), 0.75, tol) {
		t.Errorf("Mass after truncate = %v, want 0.75", p.Mass())
	}
	if got := p.End(); got != 2 {
		t.Errorf("End after truncate = %d, want 2", got)
	}
	// Truncating before the whole support removes everything.
	q := New(5, []float64{0.5, 0.5})
	if removed := q.TruncateAfter(3); !almostEqual(removed, 1, tol) {
		t.Errorf("full truncation removed = %v, want 1", removed)
	}
	if !q.IsZero() {
		t.Error("fully truncated PMF should be zero")
	}
}

func TestAddMassGrowsSupport(t *testing.T) {
	p := New(5, []float64{1})
	p.AddMass(2, 0.5)  // grow left
	p.AddMass(9, 0.25) // grow right
	p.AddMass(5, 0.25) // in place
	if got := p.Start(); got != 2 {
		t.Errorf("Start = %d, want 2", got)
	}
	if got := p.End(); got != 9 {
		t.Errorf("End = %d, want 9", got)
	}
	if !almostEqual(p.Mass(), 2.0, tol) {
		t.Errorf("Mass = %v, want 2.0", p.Mass())
	}
	if !almostEqual(p.At(5), 1.25, tol) {
		t.Errorf("At(5) = %v, want 1.25", p.At(5))
	}
}

func TestAddMassOnEmpty(t *testing.T) {
	var p PMF
	p.AddMass(3, 0.7)
	if got := p.At(3); got != 0.7 {
		t.Errorf("At(3) = %v, want 0.7", got)
	}
}

func TestImpulsesRoundTrip(t *testing.T) {
	p := New(4, []float64{0.125, 0, 0.375, 0.5})
	ticks, probs := p.Impulses()
	if len(ticks) != 3 {
		t.Fatalf("got %d impulses, want 3", len(ticks))
	}
	wantTicks := []int64{4, 6, 7}
	wantProbs := []float64{0.125, 0.375, 0.5}
	for i := range ticks {
		if ticks[i] != wantTicks[i] || !almostEqual(probs[i], wantProbs[i], tol) {
			t.Errorf("impulse %d = (%d, %v), want (%d, %v)", i, ticks[i], probs[i], wantTicks[i], wantProbs[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(1, []float64{0.5, 0.5})
	q := p.Clone()
	q.AddMass(1, 0.5)
	if !almostEqual(p.At(1), 0.5, tol) {
		t.Error("Clone shares storage with original")
	}
}

func TestStringRendering(t *testing.T) {
	p := New(1, []float64{0.25, 0.75})
	if got, want := p.String(), "{1:0.25 2:0.75}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	var z PMF
	if got := z.String(); got != "{}" {
		t.Errorf("zero String = %q, want {}", got)
	}
}

func TestApproxEqual(t *testing.T) {
	a := New(1, []float64{0.5, 0.5})
	b := New(1, []float64{0.5, 0.5 + 1e-15})
	if !ApproxEqual(a, b, 1e-9) {
		t.Error("nearly identical PMFs reported unequal")
	}
	c := New(2, []float64{0.5, 0.5})
	if ApproxEqual(a, c, 1e-9) {
		t.Error("shifted PMFs reported equal")
	}
}

func TestCompactPreservesMassAndMean(t *testing.T) {
	probs := make([]float64, 200)
	for i := range probs {
		probs[i] = float64(i%7) + 1
	}
	p := New(100, probs)
	p.Normalize()
	c := Compact(p, 32)
	if c.NumImpulses() > 32 {
		t.Errorf("compacted NumImpulses = %d, want <= 32", c.NumImpulses())
	}
	if !almostEqual(c.Mass(), p.Mass(), 1e-9) {
		t.Errorf("compacted Mass = %v, want %v", c.Mass(), p.Mass())
	}
	groupWidth := float64(p.Len())/32 + 1
	if math.Abs(c.Mean()-p.Mean()) > groupWidth {
		t.Errorf("compacted Mean = %v, drifted more than one group from %v", c.Mean(), p.Mean())
	}
}

func TestCompactNarrowIsIdentity(t *testing.T) {
	p := New(1, []float64{0.25, 0.5, 0.25})
	if got := Compact(p, 32); got != p {
		t.Error("Compact of a narrow PMF should return the same instance")
	}
}

func TestFromSamples(t *testing.T) {
	samples := []float64{10, 10, 10, 20, 20, 30}
	p := FromSamples(samples, 3)
	if !almostEqual(p.Mass(), 1, tol) {
		t.Errorf("Mass = %v, want 1", p.Mass())
	}
	if p.Start() < 1 {
		t.Errorf("Start = %d, want >= 1", p.Start())
	}
	if math.Abs(p.Mean()-16.67) > 4 {
		t.Errorf("Mean = %v, want near 16.67", p.Mean())
	}
}

func TestFromSamplesDegenerate(t *testing.T) {
	p := FromSamples([]float64{42, 42, 42}, 10)
	if got := p.At(42); !almostEqual(got, 1, tol) {
		t.Errorf("degenerate At(42) = %v, want 1", got)
	}
}

func TestRemainingAfter(t *testing.T) {
	p := New(2, []float64{0.25, 0.25, 0.25, 0.25}) // duration 2..5
	r := p.RemainingAfter(3)                       // given X > 3: X in {4,5}, remaining {1,2}
	if got := r.Start(); got != 1 {
		t.Errorf("remaining Start = %d, want 1", got)
	}
	if !almostEqual(r.At(1), 0.5, tol) || !almostEqual(r.At(2), 0.5, tol) {
		t.Errorf("remaining = %v, want {1:0.5 2:0.5}", r)
	}
	if !almostEqual(r.Mass(), 1, tol) {
		t.Errorf("remaining mass = %v", r.Mass())
	}
	// No consumption: identity copy.
	if !ApproxEqual(p.RemainingAfter(0), p, tol) {
		t.Error("RemainingAfter(0) should be identity")
	}
	// Fully outrun: collapses to one tick.
	if got := p.RemainingAfter(10); got.At(1) != 1 {
		t.Errorf("outrun remaining = %v, want impulse at 1", got)
	}
}

func TestRemainingAfterMeanDecreases(t *testing.T) {
	p := New(5, []float64{0.2, 0.2, 0.2, 0.2, 0.2})
	last := p.Mean()
	for c := int64(1); c < 8; c++ {
		m := p.RemainingAfter(c).Mean()
		if m > last+tol {
			t.Fatalf("expected remaining mean to shrink with consumption: c=%d mean=%v last=%v", c, m, last)
		}
		last = m
	}
}
