package pmf

import "fmt"

// DropMode selects which of the paper's three completion-time scenarios
// governs a convolution (Section IV):
//
//	NoDrop      (A) every mapped task runs to completion (Eq. 2).
//	PendingDrop (B) a pending task is dropped if its predecessor finishes
//	            at or after the task's deadline (Eqs. 3–4).
//	Evict       (C) additionally, an executing task is killed the moment
//	            its deadline passes (Eq. 5).
type DropMode int

const (
	NoDrop DropMode = iota
	PendingDrop
	Evict
)

// String implements fmt.Stringer.
func (m DropMode) String() string {
	switch m {
	case NoDrop:
		return "nodrop"
	case PendingDrop:
		return "pending"
	case Evict:
		return "evict"
	default:
		return fmt.Sprintf("DropMode(%d)", int(m))
	}
}

// convolveCore accumulates the plain convolution of prev and exec into out,
// which must be zeroed and have length >= prev.Len()+exec.Len()-1. Impulse
// operands take a copy/scale fast path; the generic path skips zero mass.
func convolveCore(out []float64, prev, exec *PMF) {
	if len(prev.probs) == 1 {
		a := prev.probs[0]
		if a == 1 {
			copy(out, exec.probs)
			return
		}
		for j, b := range exec.probs {
			out[j] = a * b
		}
		return
	}
	if len(exec.probs) == 1 {
		b := exec.probs[0]
		if b == 1 {
			copy(out, prev.probs)
			return
		}
		for i, a := range prev.probs {
			out[i] = a * b
		}
		return
	}
	if prev.nz != nil {
		for _, off := range prev.nz {
			accumRow(out[off:int(off)+len(exec.probs)], prev.probs[off], exec)
		}
		return
	}
	for i, a := range prev.probs {
		if a == 0 {
			continue
		}
		accumRow(out[i:i+len(exec.probs)], a, exec)
	}
}

// accumRow adds a·exec into row, walking only exec's non-zero impulses
// when the sparse index is available. Skipping exact zeros (and scaling by
// a) is bit-identical to the dense accumulation it replaces. This is the
// innermost convolution kernel, so both paths are shaped for the compiler:
// the row is re-sliced to exec's width up front (one bounds check instead
// of one per element) and the sparse walk is unrolled four wide — each
// row slot is its own accumulator, so the unroll reorders nothing.
func accumRow(row []float64, a float64, exec *PMF) {
	probs := exec.probs
	row = row[:len(probs)]
	if nz := exec.nz; nz != nil {
		i := 0
		for ; i+4 <= len(nz); i += 4 {
			j0, j1, j2, j3 := nz[i], nz[i+1], nz[i+2], nz[i+3]
			row[j0] += a * probs[j0]
			row[j1] += a * probs[j1]
			row[j2] += a * probs[j2]
			row[j3] += a * probs[j3]
		}
		for _, j := range nz[i:] {
			row[j] += a * probs[j]
		}
		return
	}
	// Dense: branch-free. Adding a·0 = +0.0 is the bitwise identity on the
	// non-negative masses a row can hold (they start at +0.0 and only ever
	// gain non-negative products), so dropping the zero test changes no
	// result while letting the loop pipeline without mispredictions.
	for j, b := range probs {
		row[j] += a * b
	}
}

// Convolve returns the plain convolution of two PMFs (Eq. 2): the
// distribution of the sum of the two independent random variables. This is
// the completion time of a task whose execution time is exec and whose
// start time is distributed as prev, when no dropping can occur.
func Convolve(prev, exec *PMF) *PMF {
	return (*Arena)(nil).Convolve(prev, exec)
}

// Convolve is the arena-allocating form of the package-level Convolve: the
// result is valid until the arena's next Reset.
func (a *Arena) Convolve(prev, exec *PMF) *PMF {
	if prev.IsZero() || exec.IsZero() {
		return a.hdr()
	}
	out := a.Floats(len(prev.probs) + len(exec.probs) - 1)
	convolveCore(out, prev, exec)
	return a.wrap(prev.start+exec.start, out)
}

// ConvolveInto computes Convolve(prev, exec) into dst, reusing dst's
// backing storage when its capacity suffices — the steady state allocates
// nothing (asserted by TestConvolveIntoAllocFree). dst must not alias prev
// or exec.
func ConvolveInto(dst, prev, exec *PMF) {
	if prev.IsZero() || exec.IsZero() {
		dst.adopt(0, dst.probs[:0])
		return
	}
	buf := dst.scratch(len(prev.probs) + len(exec.probs) - 1)
	convolveCore(buf, prev, exec)
	dst.adopt(prev.start+exec.start, buf)
}

// Result carries the outcome of a dropping-aware convolution. Free is the
// distribution of the time at which the machine becomes free of the task
// (by completion, by eviction at the deadline, or — when the task never
// starts — the predecessor's completion carried through). Success is the
// probability that the task itself completes at or before its deadline
// (Eq. 1 applied to execution mass only): under PendingDrop/Evict the Free
// PMF mixes carried and evicted mass with true completions, so the success
// probability cannot be recovered from Free alone and is computed during
// the convolution.
type Result struct {
	Free    *PMF
	Success float64
}

// dropBounds computes the dense output support of a dropping-aware
// convolution. The support spans execution completions (start+exec for
// starts strictly before the deadline) plus carried predecessor mass (prev
// ticks at or after the deadline); one dense buffer covers both.
func dropBounds(prev, exec *PMF, deadline int64) (outLo, outHi int64) {
	outLo = prev.start + exec.start
	outHi = prev.End() + exec.End()
	if prev.End() > outHi {
		outHi = prev.End()
	}
	if deadline > outHi {
		outHi = deadline
	}
	if prev.start < outLo {
		outLo = prev.start
	}
	if deadline < outLo {
		// A deadline before any possible completion: no execution mass can
		// land on time, but Evict still needs the deadline slot to exist.
		outLo = deadline
	}
	return outLo, outHi
}

// convolveDropCore runs the PendingDrop/Evict convolution into buf (zeroed,
// spanning [outLo, outHi] per dropBounds) and returns the success
// probability. It is the single implementation behind ConvolveDrop,
// ConvolveDropInto, and the arena variant.
func convolveDropCore(buf []float64, outLo int64, prev, exec *PMF, deadline int64, mode DropMode) float64 {
	// Predecessor slots split at the deadline: indices below cut start the
	// task (they convolve with exec), indices at or above carry through
	// untouched. prev's support — and its nz index — is ascending, so one
	// boundary split replaces the per-element deadline branch of both loops
	// below while visiting the exact same elements in the exact same order.
	cut := deadline - prev.start
	if cut < 0 {
		cut = 0
	}
	if cut > int64(len(prev.probs)) {
		cut = int64(len(prev.probs))
	}
	nz := prev.nz
	nzCut := 0
	for nzCut < len(nz) && int64(nz[nzCut]) < cut {
		nzCut++
	}

	// Execution part (Eq. 3's helper f): convolve only predecessor
	// completions strictly before the deadline.
	ew := int64(len(exec.probs))
	if nz != nil {
		for _, off := range nz[:nzCut] {
			base := prev.start + int64(off) + exec.start - outLo
			accumRow(buf[base:base+ew], prev.probs[off], exec)
		}
	} else {
		for i, a := range prev.probs[:cut] {
			if a == 0 {
				continue
			}
			base := prev.start + int64(i) + exec.start - outLo
			accumRow(buf[base:base+ew], a, exec)
		}
	}

	// Success (Eq. 1): execution mass landing at or before the deadline.
	var success float64
	dlIdx := deadline - outLo
	limit := dlIdx
	if limit >= int64(len(buf)) {
		limit = int64(len(buf)) - 1
	}
	for _, v := range buf[:limit+1] {
		success += v
	}
	if success > 1 {
		success = 1 // floating-point accumulation guard
	}

	if mode == Evict {
		// Eq. 5: execution mass strictly after the deadline collapses onto
		// an impulse at the deadline — the task is killed at δi and the
		// machine freed.
		var late float64
		tail := buf[dlIdx+1:]
		for _, v := range tail {
			late += v
		}
		clear(tail)
		buf[dlIdx] += late
	} else if mode != PendingDrop {
		panic(fmt.Sprintf("pmf: unknown drop mode %v", mode))
	}

	// Carried predecessor mass (Eq. 4's c_pend(i-1)(t) term): the task
	// never starts; the machine frees up when the predecessor finishes.
	if nz != nil {
		for _, off := range nz[nzCut:] {
			buf[prev.start+int64(off)-outLo] += prev.probs[off]
		}
	} else {
		base := prev.start + cut - outLo
		for i, a := range prev.probs[cut:] {
			if a == 0 {
				continue
			}
			buf[base+int64(i)] += a
		}
	}
	return success
}

// ConvolveDrop convolves the predecessor's machine-free-time PMF (prev)
// with a task's execution-time PMF (exec) under the given dropping mode and
// the task's deadline.
//
// Semantics per mode:
//
//   - NoDrop: Free = prev * exec; Success = CDF(Free, deadline).
//
//   - PendingDrop (Eqs. 3–4): execution only begins for the part of prev
//     strictly before the deadline ("helper" Eq. 3 discards impulses of
//     PCT(i-1) at or after δi). Mass of prev at t >= deadline is carried
//     into Free unchanged — the task is dropped before starting and the
//     machine frees up when the predecessor finishes.
//
//   - Evict (Eq. 5): as PendingDrop, but execution mass that would land
//     strictly after the deadline collapses onto an impulse at the deadline:
//     the task is killed at δi and the machine is free at δi. Completion
//     exactly at the deadline still counts as success (Eq. 1 uses t <= δi).
func ConvolveDrop(prev, exec *PMF, deadline int64, mode DropMode) Result {
	return (*Arena)(nil).ConvolveDrop(prev, exec, deadline, mode)
}

// ConvolveDrop is the arena-allocating form of the package-level
// ConvolveDrop: the Result's Free PMF is valid until the arena's next
// Reset.
func (a *Arena) ConvolveDrop(prev, exec *PMF, deadline int64, mode DropMode) Result {
	if mode == NoDrop {
		free := a.Convolve(prev, exec)
		return Result{Free: free, Success: free.SuccessProb(deadline)}
	}
	if prev.IsZero() || exec.IsZero() {
		return Result{Free: a.hdr()}
	}
	outLo, outHi := dropBounds(prev, exec, deadline)
	buf := a.Floats(int(outHi - outLo + 1))
	success := convolveDropCore(buf, outLo, prev, exec, deadline, mode)
	return Result{Free: a.wrap(outLo, buf), Success: success}
}

// ConvolveDropInto is ConvolveDrop writing the Free distribution into dst
// (caller-owned scratch, reused across calls — zero heap allocations in the
// steady state) and returning the success probability. dst must not alias
// prev or exec.
func ConvolveDropInto(dst *PMF, prev, exec *PMF, deadline int64, mode DropMode) float64 {
	if mode == NoDrop {
		ConvolveInto(dst, prev, exec)
		return dst.SuccessProb(deadline)
	}
	if prev.IsZero() || exec.IsZero() {
		dst.adopt(0, dst.probs[:0])
		return 0
	}
	outLo, outHi := dropBounds(prev, exec, deadline)
	buf := dst.scratch(int(outHi - outLo + 1))
	success := convolveDropCore(buf, outLo, prev, exec, deadline, mode)
	dst.adopt(outLo, buf)
	return success
}

// ChainCompletion computes the completion Result for a whole FCFS queue:
// base is the machine-availability PMF ahead of the queue; entries are
// (exec PMF, deadline) pairs in queue order. It returns the per-entry
// results, where entry k's Free feeds entry k+1. This mirrors how the
// mapper evaluates the robustness of each task in a (virtual) machine
// queue.
func ChainCompletion(base *PMF, execs []*PMF, deadlines []int64, mode DropMode) []Result {
	if len(execs) != len(deadlines) {
		panic("pmf: ChainCompletion length mismatch")
	}
	out := make([]Result, len(execs))
	prev := base
	for i := range execs {
		out[i] = ConvolveDrop(prev, execs[i], deadlines[i], mode)
		prev = out[i].Free
	}
	return out
}
