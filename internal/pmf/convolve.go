package pmf

import "fmt"

// DropMode selects which of the paper's three completion-time scenarios
// governs a convolution (Section IV):
//
//	NoDrop      (A) every mapped task runs to completion (Eq. 2).
//	PendingDrop (B) a pending task is dropped if its predecessor finishes
//	            at or after the task's deadline (Eqs. 3–4).
//	Evict       (C) additionally, an executing task is killed the moment
//	            its deadline passes (Eq. 5).
type DropMode int

const (
	NoDrop DropMode = iota
	PendingDrop
	Evict
)

// String implements fmt.Stringer.
func (m DropMode) String() string {
	switch m {
	case NoDrop:
		return "nodrop"
	case PendingDrop:
		return "pending"
	case Evict:
		return "evict"
	default:
		return fmt.Sprintf("DropMode(%d)", int(m))
	}
}

// Convolve returns the plain convolution of two PMFs (Eq. 2): the
// distribution of the sum of the two independent random variables. This is
// the completion time of a task whose execution time is exec and whose
// start time is distributed as prev, when no dropping can occur.
func Convolve(prev, exec *PMF) *PMF {
	if prev.IsZero() || exec.IsZero() {
		return &PMF{}
	}
	out := make([]float64, len(prev.probs)+len(exec.probs)-1)
	for i, a := range prev.probs {
		if a == 0 {
			continue
		}
		for j, b := range exec.probs {
			out[i+j] += a * b
		}
	}
	return New(prev.start+exec.start, out)
}

// Result carries the outcome of a dropping-aware convolution. Free is the
// distribution of the time at which the machine becomes free of the task
// (by completion, by eviction at the deadline, or — when the task never
// starts — the predecessor's completion carried through). Success is the
// probability that the task itself completes at or before its deadline
// (Eq. 1 applied to execution mass only): under PendingDrop/Evict the Free
// PMF mixes carried and evicted mass with true completions, so the success
// probability cannot be recovered from Free alone and is computed during
// the convolution.
type Result struct {
	Free    *PMF
	Success float64
}

// ConvolveDrop convolves the predecessor's machine-free-time PMF (prev)
// with a task's execution-time PMF (exec) under the given dropping mode and
// the task's deadline.
//
// Semantics per mode:
//
//   - NoDrop: Free = prev * exec; Success = CDF(Free, deadline).
//
//   - PendingDrop (Eqs. 3–4): execution only begins for the part of prev
//     strictly before the deadline ("helper" Eq. 3 discards impulses of
//     PCT(i-1) at or after δi). Mass of prev at t >= deadline is carried
//     into Free unchanged — the task is dropped before starting and the
//     machine frees up when the predecessor finishes.
//
//   - Evict (Eq. 5): as PendingDrop, but execution mass that would land
//     strictly after the deadline collapses onto an impulse at the deadline:
//     the task is killed at δi and the machine is free at δi. Completion
//     exactly at the deadline still counts as success (Eq. 1 uses t <= δi).
func ConvolveDrop(prev, exec *PMF, deadline int64, mode DropMode) Result {
	if mode == NoDrop {
		free := Convolve(prev, exec)
		return Result{Free: free, Success: free.SuccessProb(deadline)}
	}
	if prev.IsZero() || exec.IsZero() {
		return Result{Free: &PMF{}}
	}

	// The output support spans execution completions (start+exec for
	// starts strictly before the deadline) plus carried predecessor mass
	// (prev ticks at or after the deadline). One dense buffer covers both.
	outLo := prev.start + exec.start
	outHi := prev.End() + exec.End()
	if prev.End() > outHi {
		outHi = prev.End()
	}
	if deadline > outHi {
		outHi = deadline
	}
	if prev.start < outLo {
		outLo = prev.start
	}
	if deadline < outLo {
		// A deadline before any possible completion: no execution mass can
		// land on time, but Evict still needs the deadline slot to exist.
		outLo = deadline
	}
	buf := make([]float64, outHi-outLo+1)

	// Execution part (Eq. 3's helper f): convolve only predecessor
	// completions strictly before the deadline.
	for i, a := range prev.probs {
		if a == 0 {
			continue
		}
		st := prev.start + int64(i) // predecessor finishes / task would start
		if st >= deadline {
			continue // the task is dropped before starting
		}
		base := st + exec.start - outLo
		for j, b := range exec.probs {
			if b != 0 {
				buf[base+int64(j)] += a * b
			}
		}
	}

	// Success (Eq. 1): execution mass landing at or before the deadline.
	var success float64
	dlIdx := deadline - outLo
	limit := dlIdx
	if limit >= int64(len(buf)) {
		limit = int64(len(buf)) - 1
	}
	for k := int64(0); k <= limit; k++ {
		success += buf[k]
	}
	if success > 1 {
		success = 1 // floating-point accumulation guard
	}

	if mode == Evict {
		// Eq. 5: execution mass strictly after the deadline collapses onto
		// an impulse at the deadline — the task is killed at δi and the
		// machine freed.
		var late float64
		for k := dlIdx + 1; k < int64(len(buf)); k++ {
			late += buf[k]
			buf[k] = 0
		}
		buf[dlIdx] += late
	} else if mode != PendingDrop {
		panic(fmt.Sprintf("pmf: unknown drop mode %v", mode))
	}

	// Carried predecessor mass (Eq. 4's c_pend(i-1)(t) term): the task
	// never starts; the machine frees up when the predecessor finishes.
	for i, a := range prev.probs {
		if a == 0 {
			continue
		}
		st := prev.start + int64(i)
		if st >= deadline {
			buf[st-outLo] += a
		}
	}

	return Result{Free: wrap(outLo, buf), Success: success}
}

// ChainCompletion computes the completion Result for a whole FCFS queue:
// base is the machine-availability PMF ahead of the queue; entries are
// (exec PMF, deadline) pairs in queue order. It returns the per-entry
// results, where entry k's Free feeds entry k+1. This mirrors how the
// mapper evaluates the robustness of each task in a (virtual) machine
// queue.
func ChainCompletion(base *PMF, execs []*PMF, deadlines []int64, mode DropMode) []Result {
	if len(execs) != len(deadlines) {
		panic("pmf: ChainCompletion length mismatch")
	}
	out := make([]Result, len(execs))
	prev := base
	for i := range execs {
		out[i] = ConvolveDrop(prev, execs[i], deadlines[i], mode)
		prev = out[i].Free
	}
	return out
}
