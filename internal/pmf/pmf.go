// Package pmf implements the discrete probability-mass-function algebra at
// the heart of the paper: Probabilistic Execution Time (PET) entries and
// Probabilistic Completion Time (PCT) distributions are PMFs over integer
// time ticks, combined by convolution — including the paper's Eqs. 2–5
// closed forms for convolution in the presence of task dropping.
//
// A PMF is stored densely: a start tick plus a contiguous slice of
// probabilities. All operations preserve total mass up to floating-point
// rounding; invariants are exercised by property-based tests.
package pmf

import (
	"fmt"
	"math"
	"strings"

	"taskprune/internal/stats"
)

// PMF is a probability mass function over integer time ticks.
// The zero value is an empty PMF with no mass.
type PMF struct {
	start int64
	probs []float64
	// nz, when non-nil, lists the offsets of all non-zero probabilities in
	// ascending order. Compact populates it (a compacted PMF has few
	// impulses spread over a wide dense support, so scans that honor nz
	// skip the interior zeros); any mutation that can change the zero
	// pattern resets it to nil. Scaling (Normalize) preserves it.
	nz []int32
}

// New builds a PMF whose first impulse sits at start. The probs slice is
// copied; leading and trailing zeros are trimmed. Negative probabilities
// panic: they can only arise from a programming error.
func New(start int64, probs []float64) *PMF {
	lo := 0
	for lo < len(probs) && probs[lo] == 0 {
		lo++
	}
	hi := len(probs)
	for hi > lo && probs[hi-1] == 0 {
		hi--
	}
	p := &PMF{start: start + int64(lo), probs: make([]float64, hi-lo)}
	copy(p.probs, probs[lo:hi])
	for _, v := range p.probs {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("pmf: invalid probability %v", v))
		}
	}
	return p
}

// wrap adopts probs without copying (callers hand over ownership),
// trimming zero edges in place. It skips the validation New performs and
// exists for hot paths that construct mass buffers themselves.
func wrap(start int64, probs []float64) *PMF {
	lo := 0
	for lo < len(probs) && probs[lo] == 0 {
		lo++
	}
	hi := len(probs)
	for hi > lo && probs[hi-1] == 0 {
		hi--
	}
	return &PMF{start: start + int64(lo), probs: probs[lo:hi]}
}

// Impulse returns a PMF with all mass concentrated at tick t.
func Impulse(t int64) *PMF {
	return &PMF{start: t, probs: []float64{1}}
}

// scratch returns a zeroed length-n slice reusing p's backing storage when
// its capacity suffices, growing (one allocation) otherwise. It is the
// storage half of the ConvolveInto/ConvolveDropInto scratch API.
func (p *PMF) scratch(n int) []float64 {
	buf := p.probs[:0]
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// adopt points p at probs (taking ownership), trimming trailing zeros.
// Leading zeros are kept deliberately: a PMF may start at a zero slot
// (Start documents this), and re-slicing the front would surrender the
// prefix of the backing array — scratch could then never reuse it and the
// Into fast paths would allocate on every call.
func (p *PMF) adopt(start int64, probs []float64) {
	hi := len(probs)
	for hi > 0 && probs[hi-1] == 0 {
		hi--
	}
	p.start = start
	p.probs = probs[:hi]
	p.nz = nil
}

// FromSamples bins real-valued samples into nbins histogram bins and
// converts the result into a PMF whose impulses sit at the rounded bin
// centers (minimum tick 1: an execution can never take zero time). This is
// the paper's offline PET-profiling step.
func FromSamples(samples []float64, nbins int) *PMF {
	h := stats.HistogramFromSamples(samples, nbins)
	return FromHistogram(h)
}

// FromHistogram converts a histogram into a PMF at rounded bin centers,
// merging bins that round to the same tick and clamping ticks below 1 up
// to 1.
func FromHistogram(h *stats.Histogram) *PMF {
	mass := map[int64]float64{}
	var lo, hi int64 = math.MaxInt64, math.MinInt64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		t := int64(math.Round(h.BinCenter(i)))
		if t < 1 {
			t = 1
		}
		mass[t] += c
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if len(mass) == 0 {
		return &PMF{}
	}
	probs := make([]float64, hi-lo+1)
	for t, c := range mass {
		probs[t-lo] = c
	}
	p := New(lo, probs)
	p.Normalize()
	return p
}

// IsZero reports whether the PMF carries no mass.
func (p *PMF) IsZero() bool { return p == nil || len(p.probs) == 0 }

// Start returns the tick of the first (possibly zero-probability) impulse.
func (p *PMF) Start() int64 { return p.start }

// End returns the tick of the last impulse. For an empty PMF, End < Start.
func (p *PMF) End() int64 { return p.start + int64(len(p.probs)) - 1 }

// Len returns the number of stored impulse slots (dense width including
// interior zeros).
func (p *PMF) Len() int { return len(p.probs) }

// NumImpulses returns the number of non-zero impulses. Convolution cost is
// governed by this count, which is what Compact bounds.
func (p *PMF) NumImpulses() int {
	n := 0
	for _, v := range p.probs {
		if v != 0 {
			n++
		}
	}
	return n
}

// At returns the probability mass at tick t.
func (p *PMF) At(t int64) float64 {
	if p.IsZero() || t < p.start || t > p.End() {
		return 0
	}
	return p.probs[t-p.start]
}

// Mass returns the total probability mass (1.0 for a normalized PMF).
func (p *PMF) Mass() float64 {
	var s float64
	for _, v := range p.probs {
		s += v
	}
	return s
}

// Normalize scales the PMF in place so its mass is exactly 1. It is a
// no-op for an empty or zero-mass PMF.
func (p *PMF) Normalize() {
	m := p.Mass()
	if m == 0 || m == 1 {
		return
	}
	for i := range p.probs {
		p.probs[i] /= m
	}
}

// Clone returns an independent deep copy. The sparse index is copied too:
// sharing it would tie the clone to the original's arena block, and Clone
// is exactly the escape hatch for outliving an arena Reset.
func (p *PMF) Clone() *PMF {
	if p.IsZero() {
		return &PMF{}
	}
	q := &PMF{start: p.start, probs: make([]float64, len(p.probs))}
	copy(q.probs, p.probs)
	if p.nz != nil {
		q.nz = make([]int32, len(p.nz))
		copy(q.nz, p.nz)
	}
	return q
}

// CopyFrom makes dst an independent deep copy of src, reusing dst's
// backing storage when possible. It exists so long-lived caches (the
// heuristics tail memo) can snapshot arena-backed PMFs without allocating
// in the steady state.
func (dst *PMF) CopyFrom(src *PMF) {
	dst.start = src.start
	if cap(dst.probs) < len(src.probs) {
		dst.probs = make([]float64, len(src.probs))
	}
	dst.probs = dst.probs[:len(src.probs)]
	copy(dst.probs, src.probs)
	if src.nz == nil {
		dst.nz = nil
		return
	}
	if cap(dst.nz) < len(src.nz) {
		dst.nz = make([]int32, len(src.nz))
	}
	dst.nz = dst.nz[:len(src.nz)]
	copy(dst.nz, src.nz)
}

// FirstImpulseAt returns the tick of the first non-zero impulse at or
// after tick t, with ok false when no mass lies there. The heuristics tail
// memo uses it to detect when advancing the clock actually changes a
// conditioned completion distribution.
func (p *PMF) FirstImpulseAt(t int64) (tick int64, ok bool) {
	if p.IsZero() {
		return 0, false
	}
	i := int64(0)
	if t > p.start {
		i = t - p.start
	}
	for ; i < int64(len(p.probs)); i++ {
		if p.probs[i] != 0 {
			return p.start + i, true
		}
	}
	return 0, false
}

// Shift returns a copy of p translated by dt ticks. Shifting a PET by a
// task's start time yields its PCT on an idle machine.
func (p *PMF) Shift(dt int64) *PMF {
	q := p.Clone()
	q.start += dt
	return q
}

// CDF returns P(T <= t).
func (p *PMF) CDF(t int64) float64 {
	if p.IsZero() || t < p.start {
		return 0
	}
	end := t - p.start
	if end >= int64(len(p.probs)) {
		end = int64(len(p.probs)) - 1
	}
	var s float64
	for _, v := range p.probs[:end+1] {
		s += v
	}
	return s
}

// SuccessProb is the paper's Eq. 1: the probability that a completion-time
// PMF lands at or before the deadline. It is a synonym for CDF and exists
// to keep call sites legible.
func (p *PMF) SuccessProb(deadline int64) float64 { return p.CDF(deadline) }

// Mean returns the expected tick, 0 for an empty PMF. Mass and the
// weighted sum accumulate in one fused pass — each in its own accumulator,
// element order unchanged, so the result is bit-identical to the separate
// Mass() pass it replaces at half the memory traffic.
func (p *PMF) Mean() float64 {
	var m, s float64
	// Incrementing the tick as a float is exact — ticks stay integral and
	// far below 2^53 — and avoids a per-element int→float conversion.
	x := float64(p.start)
	for _, v := range p.probs {
		m += v
		s += v * x
		x++
	}
	if m == 0 {
		return 0
	}
	return s / m
}

// Variance returns the distribution variance.
func (p *PMF) Variance() float64 {
	m := p.Mass()
	if m == 0 {
		return 0
	}
	mu := p.Mean()
	var s float64
	for i, v := range p.probs {
		d := float64(p.start+int64(i)) - mu
		s += v * d * d
	}
	return s / m
}

// Skewness returns the (population) skewness of the distribution; 0 when
// undefined. The pruner consumes the bounded version via BoundedSkewness.
// The accumulation order mirrors stats.WeightedMoments exactly (so results
// are bit-identical to the slice-based formulation) but materializes no
// support slice — this runs once per queued task per pruning pass.
func (p *PMF) Skewness() float64 {
	if p.IsZero() {
		return 0
	}
	var w float64
	for _, v := range p.probs {
		w += v
	}
	if w == 0 {
		return 0
	}
	var mean float64
	for i, v := range p.probs {
		mean += v * float64(p.start+int64(i))
	}
	mean /= w
	var m2, m3 float64
	for i, v := range p.probs {
		d := float64(p.start+int64(i)) - mean
		m2 += v * d * d
		m3 += v * d * d * d
	}
	m2 /= w
	m3 /= w
	if m2 <= 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// BoundedSkewness returns Skewness clamped into [-1, 1], the paper's
// bounded skewness s used by the Eq. 7 per-task dropping threshold.
func (p *PMF) BoundedSkewness() float64 { return stats.BoundSkewness(p.Skewness()) }

// Quantile returns the smallest tick t with CDF(t) >= q, for q in (0, 1].
// For an empty PMF it returns 0.
func (p *PMF) Quantile(q float64) int64 {
	if p.IsZero() {
		return 0
	}
	var acc float64
	for i, v := range p.probs {
		acc += v
		if acc >= q {
			return p.start + int64(i)
		}
	}
	return p.End()
}

// ConditionAtLeast returns the distribution of T given T >= t, renormalized.
// The simulator uses it for the remaining completion time of a task that
// has already been executing for some elapsed time. If no mass lies at or
// beyond t, the entire mass collapses onto an impulse at t (the task is
// "overdue" relative to its profile and is modeled as finishing now).
func (p *PMF) ConditionAtLeast(t int64) *PMF {
	if p.IsZero() {
		return &PMF{}
	}
	if t <= p.start {
		return p.Clone()
	}
	if t > p.End() {
		return Impulse(t)
	}
	probs := make([]float64, p.End()-t+1)
	copy(probs, p.probs[t-p.start:])
	q := New(t, probs)
	if q.Mass() == 0 {
		return Impulse(t)
	}
	q.Normalize()
	return q
}

// RemainingAfter returns the distribution of X - c given X > c, where p is
// the distribution of a duration X: the remaining execution time of a task
// that has already consumed c ticks. The preemption extension uses it to
// chain completion times of partially executed tasks. If no mass lies
// beyond c (the task has outrun its profile), the remainder collapses to a
// single tick.
func (p *PMF) RemainingAfter(c int64) *PMF {
	if c <= 0 {
		return p.Clone()
	}
	cond := p.ConditionAtLeast(c + 1)
	if cond.IsZero() {
		return Impulse(1)
	}
	return cond.Shift(-c)
}

// TruncateAfter removes all mass strictly after tick t and returns the
// removed mass. The PMF is not renormalized.
func (p *PMF) TruncateAfter(t int64) float64 {
	if p.IsZero() || t >= p.End() {
		return 0
	}
	if t < p.start {
		var m float64
		for _, v := range p.probs {
			m += v
		}
		p.probs = nil
		p.nz = nil
		return m
	}
	var removed float64
	cut := t - p.start + 1
	for _, v := range p.probs[cut:] {
		removed += v
	}
	p.probs = p.probs[:cut]
	p.nz = nil
	return removed
}

// AddMass adds mass w at tick t, growing the support as needed.
func (p *PMF) AddMass(t int64, w float64) {
	if w == 0 {
		return
	}
	p.nz = nil
	if w < 0 {
		panic("pmf: AddMass with negative mass")
	}
	if len(p.probs) == 0 {
		p.start = t
		p.probs = []float64{w}
		return
	}
	switch {
	case t < p.start:
		grown := make([]float64, p.End()-t+1)
		copy(grown[p.start-t:], p.probs)
		p.probs = grown
		p.start = t
		p.probs[0] += w
	case t > p.End():
		grown := make([]float64, t-p.start+1)
		copy(grown, p.probs)
		p.probs = grown
		p.probs[t-p.start] += w
	default:
		p.probs[t-p.start] += w
	}
}

// String renders the PMF compactly for debugging: "{t:p t:p ...}".
func (p *PMF) String() string {
	if p.IsZero() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range p.probs {
		if v == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%.4g", p.start+int64(i), v)
	}
	b.WriteByte('}')
	return b.String()
}

// Impulses returns parallel slices of ticks and probabilities for all
// non-zero impulses, in increasing tick order.
func (p *PMF) Impulses() (ticks []int64, probs []float64) {
	for i, v := range p.probs {
		if v == 0 {
			continue
		}
		ticks = append(ticks, p.start+int64(i))
		probs = append(probs, v)
	}
	return ticks, probs
}

// ApproxEqual reports whether two PMFs agree impulse-by-impulse within tol.
func ApproxEqual(a, b *PMF, tol float64) bool {
	lo := minI64(a.start, b.start)
	hi := maxI64(a.End(), b.End())
	if a.IsZero() && b.IsZero() {
		return true
	}
	for t := lo; t <= hi; t++ {
		if math.Abs(a.At(t)-b.At(t)) > tol {
			return false
		}
	}
	return true
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
