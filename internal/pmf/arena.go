package pmf

import "sync"

// arenaBlockFloats is the float64 capacity of one pooled arena block
// (512 KiB). Simulator PMF supports span at most a few thousand ticks, so
// one block serves many scratch distributions between resets.
const arenaBlockFloats = 65536

// hdrSlabLen is how many PMF headers one arena slab holds.
const hdrSlabLen = 512

// blockPool recycles arena blocks across arenas and goroutines, so a
// parallel trial runner reaches a steady state with no per-trial block
// allocation.
var blockPool = sync.Pool{
	New: func() any {
		b := make([]float64, arenaBlockFloats)
		return &b
	},
}

// arenaBlockInts is the int32 capacity of one pooled offset block.
const arenaBlockInts = 16384

// intBlockPool recycles offset blocks (sparse non-zero indexes).
var intBlockPool = sync.Pool{
	New: func() any {
		b := make([]int32, arenaBlockInts)
		return &b
	},
}

// Arena is a bump allocator for convolution scratch: mass buffers and PMF
// headers are carved out of pooled blocks and reclaimed wholesale by Reset.
// The simulator owns one arena per trial and resets it at every mapping
// event, which removes per-convolution heap traffic from the hot path.
//
// Ownership contract: every PMF or slice obtained from an arena is only
// valid until the next Reset. Callers must never retain arena-backed
// buffers across a Reset — copy (Clone) anything that outlives the event.
//
// A nil *Arena is valid and falls back to ordinary heap allocation, so
// arena-aware code paths need no branching at call sites.
//
// An Arena is not safe for concurrent use; give each goroutine its own.
type Arena struct {
	blocks []*[]float64 // in-use mass blocks; the last one is current
	off    int          // bump offset into the current block

	hdrs   []PMF // current header slab, rewound (not freed) by Reset
	hdrOff int

	iblocks []*[]int32 // in-use offset blocks; the last one is current
	ioff    int

	// maxBlocks is the high-water mark of simultaneously held mass blocks —
	// how deep one mapping event's convolution scratch ever got. Reset
	// keeps it, so the trial-level peak survives for telemetry.
	maxBlocks int
}

// NewArena returns an empty arena. Blocks are drawn lazily from a shared
// pool on first use.
func NewArena() *Arena { return &Arena{} }

// Floats returns a zeroed scratch slice of length n carved from the arena
// (or from the heap for a nil arena or an oversized request). The slice is
// valid until the next Reset.
func (a *Arena) Floats(n int) []float64 {
	if a == nil || n > arenaBlockFloats {
		return make([]float64, n)
	}
	if len(a.blocks) == 0 || a.off+n > arenaBlockFloats {
		a.blocks = append(a.blocks, blockPool.Get().(*[]float64))
		a.off = 0
		if len(a.blocks) > a.maxBlocks {
			a.maxBlocks = len(a.blocks)
		}
	}
	blk := *a.blocks[len(a.blocks)-1]
	buf := blk[a.off : a.off+n : a.off+n]
	a.off += n
	clear(buf)
	return buf
}

// ints returns an uninitialized int32 scratch slice of length 0 and
// capacity n from the arena (heap for nil or oversized requests), valid
// until the next Reset. Used for sparse non-zero offset lists.
func (a *Arena) ints(n int) []int32 {
	if a == nil || n > arenaBlockInts {
		return make([]int32, 0, n)
	}
	if len(a.iblocks) == 0 || a.ioff+n > arenaBlockInts {
		a.iblocks = append(a.iblocks, intBlockPool.Get().(*[]int32))
		a.ioff = 0
	}
	blk := *a.iblocks[len(a.iblocks)-1]
	buf := blk[a.ioff : a.ioff : a.ioff+n]
	a.ioff += n
	return buf
}

// hdr returns a zeroed PMF header owned by the arena (heap for nil).
func (a *Arena) hdr() *PMF {
	if a == nil {
		return &PMF{}
	}
	if a.hdrOff == len(a.hdrs) {
		// A fresh slab. The previous slab (if any) stays alive through the
		// pointers already handed out and is collected with them.
		a.hdrs = make([]PMF, hdrSlabLen)
		a.hdrOff = 0
	}
	p := &a.hdrs[a.hdrOff]
	a.hdrOff++
	*p = PMF{}
	return p
}

// wrap adopts probs into an arena-owned PMF header, trimming zero edges
// exactly like the package-level wrap.
func (a *Arena) wrap(start int64, probs []float64) *PMF {
	lo := 0
	for lo < len(probs) && probs[lo] == 0 {
		lo++
	}
	hi := len(probs)
	for hi > lo && probs[hi-1] == 0 {
		hi--
	}
	p := a.hdr()
	p.start = start + int64(lo)
	p.probs = probs[lo:hi]
	return p
}

// Impulse returns an arena-owned PMF with all mass at tick t.
func (a *Arena) Impulse(t int64) *PMF {
	buf := a.Floats(1)
	buf[0] = 1
	p := a.hdr()
	p.start = t
	p.probs = buf
	return p
}

// Clone returns an arena-owned deep copy of p.
func (a *Arena) Clone(p *PMF) *PMF {
	q := a.hdr()
	if p.IsZero() {
		return q
	}
	q.start = p.start
	q.probs = a.Floats(len(p.probs))
	copy(q.probs, p.probs)
	return q
}

// HighWater returns the peak number of mass blocks the arena ever held at
// once (512 KiB each) — a measure of the deepest convolution scratch any
// mapping event needed. Nil-safe; Reset does not clear it.
func (a *Arena) HighWater() int {
	if a == nil {
		return 0
	}
	return a.maxBlocks
}

// Reset reclaims every buffer and header handed out since the previous
// Reset. One mass block is kept hot; the rest return to the shared pool.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for len(a.blocks) > 1 {
		last := len(a.blocks) - 1
		blockPool.Put(a.blocks[last])
		a.blocks[last] = nil
		a.blocks = a.blocks[:last]
	}
	for len(a.iblocks) > 1 {
		last := len(a.iblocks) - 1
		intBlockPool.Put(a.iblocks[last])
		a.iblocks[last] = nil
		a.iblocks = a.iblocks[:last]
	}
	a.off = 0
	a.ioff = 0
	a.hdrOff = 0
}
