package pmf

import (
	"math/rand"
	"testing"
)

// benchPMFs builds a deterministic (tail, exec) pair shaped like the hot
// path: a compacted queue tail (sparse impulses over a wide dense support)
// and a PET-like execution profile.
func benchPMFs() (tail, exec *PMF) {
	r := rand.New(rand.NewSource(42))
	wide := make([]float64, 600)
	for i := 0; i < 120; i++ {
		wide[r.Intn(len(wide))] = r.Float64()
	}
	tail = New(100, wide)
	tail.Normalize()
	tail = Compact(tail, DefaultMaxImpulses)

	ex := make([]float64, 300)
	for i := 0; i < 64; i++ {
		ex[r.Intn(len(ex))] = r.Float64()
	}
	exec = New(5, ex)
	exec.Normalize()
	exec = Compact(exec, DefaultMaxImpulses)
	return tail, exec
}

// TestConvolveIntoAllocFree: once the destination scratch is warm, the
// ConvolveInto fast path must not touch the heap at all.
func TestConvolveIntoAllocFree(t *testing.T) {
	tail, exec := benchPMFs()
	dst := &PMF{}
	ConvolveInto(dst, tail, exec) // warm the scratch buffer
	if n := testing.AllocsPerRun(100, func() {
		ConvolveInto(dst, tail, exec)
	}); n != 0 {
		t.Errorf("ConvolveInto allocates %.1f objects per call, want 0", n)
	}
}

// TestConvolveDropIntoAllocFree: same guarantee for the dropping-aware
// scratch convolution, in both dropping modes.
func TestConvolveDropIntoAllocFree(t *testing.T) {
	tail, exec := benchPMFs()
	deadline := tail.Start() + 150
	for _, mode := range []DropMode{PendingDrop, Evict} {
		dst := &PMF{}
		ConvolveDropInto(dst, tail, exec, deadline, mode)
		if n := testing.AllocsPerRun(100, func() {
			ConvolveDropInto(dst, tail, exec, deadline, mode)
		}); n != 0 {
			t.Errorf("%v: ConvolveDropInto allocates %.1f objects per call, want 0", mode, n)
		}
	}
}

// TestArenaConvolveDropAllocFree: the arena path — one ConvolveDrop +
// Compact cycle per Reset, the shape of a mapping-event commit — must be
// allocation-free once the arena holds its block.
func TestArenaConvolveDropAllocFree(t *testing.T) {
	tail, exec := benchPMFs()
	deadline := tail.Start() + 150
	a := NewArena()
	res := a.ConvolveDrop(tail, exec, deadline, Evict)
	_ = a.Compact(res.Free, DefaultMaxImpulses)
	a.Reset() // retains one block: steady state reached
	if n := testing.AllocsPerRun(100, func() {
		r := a.ConvolveDrop(tail, exec, deadline, Evict)
		_ = a.Compact(r.Free, DefaultMaxImpulses)
		a.Reset()
	}); n != 0 {
		t.Errorf("arena ConvolveDrop+Compact allocates %.1f objects per cycle, want 0", n)
	}
}

// TestCloneDeepCopiesSparseIndex: Clone is the documented escape hatch
// for PMFs that must outlive an arena Reset, so it cannot share the
// sparse index backing array — that may live in a pooled arena block.
func TestCloneDeepCopiesSparseIndex(t *testing.T) {
	tail, _ := benchPMFs() // compacted: carries a sparse index
	if tail.nz == nil {
		t.Fatal("premise broken: compacted PMF should carry a sparse index")
	}
	q := tail.Clone()
	if q.nz == nil {
		t.Fatal("clone lost the sparse index")
	}
	if &q.nz[0] == &tail.nz[0] {
		t.Fatal("clone shares the sparse index backing array with the original")
	}
}

// TestConvolveIntoMatchesConvolve: the scratch path must agree with the
// allocating path impulse for impulse.
func TestConvolveIntoMatchesConvolve(t *testing.T) {
	tail, exec := benchPMFs()
	want := Convolve(tail, exec)
	dst := &PMF{}
	ConvolveInto(dst, tail, exec)
	if !ApproxEqual(want, dst, 0) {
		t.Fatalf("ConvolveInto disagrees with Convolve:\nwant %v\ngot  %v", want, dst)
	}
	for _, mode := range []DropMode{NoDrop, PendingDrop, Evict} {
		deadline := tail.Start() + 150
		res := ConvolveDrop(tail, exec, deadline, mode)
		d2 := &PMF{}
		success := ConvolveDropInto(d2, tail, exec, deadline, mode)
		if success != res.Success {
			t.Fatalf("%v: success %v != %v", mode, success, res.Success)
		}
		if !ApproxEqual(res.Free, d2, 0) {
			t.Fatalf("%v: ConvolveDropInto free PMF disagrees", mode)
		}
	}
}

// BenchmarkConvolve measures the allocating baseline convolution.
func BenchmarkConvolve(b *testing.B) {
	tail, exec := benchPMFs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Convolve(tail, exec)
	}
}

// BenchmarkConvolveInto measures the zero-allocation scratch convolution.
func BenchmarkConvolveInto(b *testing.B) {
	tail, exec := benchPMFs()
	dst := &PMF{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvolveInto(dst, tail, exec)
	}
}

// BenchmarkConvolveDrop measures the allocating dropping-aware convolution.
func BenchmarkConvolveDrop(b *testing.B) {
	tail, exec := benchPMFs()
	deadline := tail.Start() + 150
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvolveDrop(tail, exec, deadline, Evict)
	}
}

// BenchmarkConvolveDropInto measures the zero-allocation scratch variant.
func BenchmarkConvolveDropInto(b *testing.B) {
	tail, exec := benchPMFs()
	deadline := tail.Start() + 150
	dst := &PMF{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvolveDropInto(dst, tail, exec, deadline, Evict)
	}
}

// BenchmarkConvolveDropArena measures the arena path used by the
// simulator's mapping events (one Reset per iteration, as per event).
func BenchmarkConvolveDropArena(b *testing.B) {
	tail, exec := benchPMFs()
	deadline := tail.Start() + 150
	a := NewArena()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := a.ConvolveDrop(tail, exec, deadline, Evict)
		_ = a.Compact(r.Free, DefaultMaxImpulses)
		a.Reset()
	}
}
