package pmf

import (
	"math"
	"testing"
)

// execPMF is the execution-time PMF the paper uses in its worked examples
// (Figures 2 and 3): impulses {1: .25, 2: .50, 3: .25}.
func execPMF() *PMF { return New(1, []float64{0.25, 0.50, 0.25}) }

// TestPaperFigure2 reproduces the paper's Figure 2 exactly: the PET of an
// arriving task i (deadline 7) is convolved with the PCT of the last task
// on machine j, {3: .50, 4: .25, 5: .25}, producing
// {4: .125, 5: .3125, 6: .3125, 7: .1875, 8: .0625}.
func TestPaperFigure2(t *testing.T) {
	prev := New(3, []float64{0.50, 0.25, 0.25})
	got := Convolve(prev, execPMF())
	want := New(4, []float64{0.125, 0.3125, 0.3125, 0.1875, 0.0625})
	if !ApproxEqual(got, want, tol) {
		t.Fatalf("Figure 2 convolution = %v, want %v", got, want)
	}
	// Robustness with deadline 7 (Eq. 1): all mass except the impulse at 8.
	if rob := got.SuccessProb(7); !almostEqual(rob, 0.9375, tol) {
		t.Errorf("robustness = %v, want 0.9375", rob)
	}
}

// TestPaperFigure3a reproduces Figure 3(a): a no-skew predecessor PCT
// {2: .25, 3: .50, 4: .25} (robustness .75 at δi = 3) yields successor
// completion {3: .0625, 4: .25, 5: .375, 6: .25, 7: .0625} and robustness
// .6875 at δ = 5.
func TestPaperFigure3a(t *testing.T) {
	mid := New(2, []float64{0.25, 0.50, 0.25})
	if rob := mid.SuccessProb(3); !almostEqual(rob, 0.75, tol) {
		t.Fatalf("predecessor robustness = %v, want 0.75", rob)
	}
	if s := mid.Skewness(); !almostEqual(s, 0, tol) {
		t.Fatalf("predecessor skewness = %v, want 0", s)
	}
	got := Convolve(mid, execPMF())
	want := New(3, []float64{0.0625, 0.25, 0.375, 0.25, 0.0625})
	if !ApproxEqual(got, want, tol) {
		t.Fatalf("Figure 3a convolution = %v, want %v", got, want)
	}
	if rob := got.SuccessProb(5); !almostEqual(rob, 0.6875, tol) {
		t.Errorf("successor robustness = %v, want 0.6875", rob)
	}
}

// TestPaperFigure3b reproduces Figure 3(b): a left-skewed predecessor
// {2: .15, 3: .60, 4: .25} (same .75 robustness) drags the successor down
// to robustness .6625.
func TestPaperFigure3b(t *testing.T) {
	mid := New(2, []float64{0.15, 0.60, 0.25})
	if rob := mid.SuccessProb(3); !almostEqual(rob, 0.75, tol) {
		t.Fatalf("predecessor robustness = %v, want 0.75", rob)
	}
	if s := mid.Skewness(); s >= 0 {
		t.Fatalf("predecessor skewness = %v, want negative (left skew)", s)
	}
	got := Convolve(mid, execPMF())
	want := New(3, []float64{0.0375, 0.225, 0.400, 0.275, 0.0625})
	if !ApproxEqual(got, want, tol) {
		t.Fatalf("Figure 3b convolution = %v, want %v", got, want)
	}
	if rob := got.SuccessProb(5); !almostEqual(rob, 0.6625, tol) {
		t.Errorf("successor robustness = %v, want 0.6625", rob)
	}
}

// TestPaperFigure3c reproduces Figure 3(c): a right-skewed predecessor
// {2: .50, 3: .25, 4: .25} lifts the successor to robustness .75.
func TestPaperFigure3c(t *testing.T) {
	mid := New(2, []float64{0.50, 0.25, 0.25})
	if rob := mid.SuccessProb(3); !almostEqual(rob, 0.75, tol) {
		t.Fatalf("predecessor robustness = %v, want 0.75", rob)
	}
	if s := mid.Skewness(); s <= 0 {
		t.Fatalf("predecessor skewness = %v, want positive (right skew)", s)
	}
	got := Convolve(mid, execPMF())
	want := New(3, []float64{0.125, 0.3125, 0.3125, 0.1875, 0.0625})
	if !ApproxEqual(got, want, tol) {
		t.Fatalf("Figure 3c convolution = %v, want %v", got, want)
	}
	if rob := got.SuccessProb(5); !almostEqual(rob, 0.75, tol) {
		t.Errorf("successor robustness = %v, want 0.75", rob)
	}
}

func TestConvolveEmptyOperands(t *testing.T) {
	var z PMF
	if got := Convolve(&z, execPMF()); !got.IsZero() {
		t.Error("convolving a zero PMF should be zero")
	}
	if got := Convolve(execPMF(), &z); !got.IsZero() {
		t.Error("convolving with a zero PMF should be zero")
	}
}

func TestConvolveWithImpulseIsShift(t *testing.T) {
	e := execPMF()
	got := Convolve(Impulse(10), e)
	if !ApproxEqual(got, e.Shift(10), tol) {
		t.Errorf("conv with impulse = %v, want %v", got, e.Shift(10))
	}
}

func TestConvolveDropNoDropMatchesPlain(t *testing.T) {
	prev := New(3, []float64{0.50, 0.25, 0.25})
	res := ConvolveDrop(prev, execPMF(), 7, NoDrop)
	plain := Convolve(prev, execPMF())
	if !ApproxEqual(res.Free, plain, tol) {
		t.Errorf("NoDrop Free = %v, want %v", res.Free, plain)
	}
	if !almostEqual(res.Success, plain.SuccessProb(7), tol) {
		t.Errorf("NoDrop Success = %v, want %v", res.Success, plain.SuccessProb(7))
	}
}

// TestConvolveDropPendingCarriesMass checks Eq. 3/4 semantics: predecessor
// mass at or after the task's deadline is carried into the Free PMF
// unchanged (the task never starts), and only execution mass counts toward
// success.
func TestConvolveDropPendingCarriesMass(t *testing.T) {
	// Predecessor finishes at 2 (60%) or at 6 (40%); deadline is 5.
	prev := New(2, []float64{0.6, 0, 0, 0, 0.4})
	exec := New(1, []float64{0.5, 0.5}) // 1 or 2 ticks
	res := ConvolveDrop(prev, exec, 5, PendingDrop)

	// Execution only from the start at 2: completes at 3 (.3) or 4 (.3).
	// Carried mass: .4 at tick 6.
	want := &PMF{}
	want.AddMass(3, 0.3)
	want.AddMass(4, 0.3)
	want.AddMass(6, 0.4)
	if !ApproxEqual(res.Free, want, tol) {
		t.Errorf("Free = %v, want %v", res.Free, want)
	}
	if !almostEqual(res.Success, 0.6, tol) {
		t.Errorf("Success = %v, want 0.6", res.Success)
	}
	if !almostEqual(res.Free.Mass(), 1, tol) {
		t.Errorf("Free mass = %v, want 1", res.Free.Mass())
	}
}

// TestConvolveDropPendingLateCompletion checks that execution that starts
// before the deadline but finishes after it stays in the Free PMF at its
// true completion tick (the machine remains busy) while not counting as
// success.
func TestConvolveDropPendingLateCompletion(t *testing.T) {
	prev := Impulse(4)                  // starts at 4
	exec := New(1, []float64{0.5, 0.5}) // finish 5 or 6
	res := ConvolveDrop(prev, exec, 5, PendingDrop)
	if !almostEqual(res.Success, 0.5, tol) {
		t.Errorf("Success = %v, want 0.5", res.Success)
	}
	if !almostEqual(res.Free.At(6), 0.5, tol) {
		t.Errorf("late mass at 6 = %v, want 0.5", res.Free.At(6))
	}
}

// TestConvolveDropEvictCollapsesLateMass checks Eq. 5: execution mass that
// would land strictly after the deadline collapses onto the deadline (the
// task is killed there, freeing the machine), and completion exactly at
// the deadline still counts as success.
func TestConvolveDropEvictCollapsesLateMass(t *testing.T) {
	prev := Impulse(4)
	exec := New(1, []float64{0.25, 0.5, 0.25}) // finish 5, 6 or 7
	res := ConvolveDrop(prev, exec, 5, Evict)
	if !almostEqual(res.Success, 0.25, tol) {
		t.Errorf("Success = %v, want 0.25", res.Success)
	}
	// Mass at 5 = on-time completion (.25) + evicted (.75).
	if !almostEqual(res.Free.At(5), 1.0, tol) {
		t.Errorf("Free at deadline = %v, want 1.0", res.Free.At(5))
	}
	if got := res.Free.End(); got != 5 {
		t.Errorf("Free End = %d, want 5 (nothing may outlive the deadline)", got)
	}
}

// TestConvolveDropEvictCarriedMassStays: under Evict, carried predecessor
// mass (task never started) may still lie beyond the task's deadline — the
// machine stays busy with the predecessor.
func TestConvolveDropEvictCarriedMassStays(t *testing.T) {
	prev := New(2, []float64{0.5, 0, 0, 0, 0, 0.5}) // finishes at 2 or 7
	exec := Impulse(1)                              // exactly 1 tick
	res := ConvolveDrop(prev, exec, 5, Evict)
	if !almostEqual(res.Success, 0.5, tol) {
		t.Errorf("Success = %v, want 0.5", res.Success)
	}
	if !almostEqual(res.Free.At(3), 0.5, tol) {
		t.Errorf("completion mass at 3 = %v, want 0.5", res.Free.At(3))
	}
	if !almostEqual(res.Free.At(7), 0.5, tol) {
		t.Errorf("carried mass at 7 = %v, want 0.5", res.Free.At(7))
	}
}

// TestConvolveDropDeadlineBeforeSupport: a deadline before any possible
// start means the task can never run; all of prev is carried.
func TestConvolveDropDeadlineBeforeSupport(t *testing.T) {
	prev := New(10, []float64{0.5, 0.5})
	exec := execPMF()
	for _, mode := range []DropMode{PendingDrop, Evict} {
		res := ConvolveDrop(prev, exec, 5, mode)
		if !almostEqual(res.Success, 0, tol) {
			t.Errorf("%v: Success = %v, want 0", mode, res.Success)
		}
		if !ApproxEqual(res.Free, prev, tol) {
			t.Errorf("%v: Free = %v, want carried prev %v", mode, res.Free, prev)
		}
	}
}

// TestConvolveDropMassConservation: all three modes conserve probability
// mass exactly (completion + eviction + carry = 1).
func TestConvolveDropMassConservation(t *testing.T) {
	prev := New(2, []float64{0.1, 0.2, 0.3, 0.2, 0.1, 0.1})
	exec := New(1, []float64{0.3, 0.4, 0.2, 0.1})
	for _, mode := range []DropMode{NoDrop, PendingDrop, Evict} {
		for _, deadline := range []int64{0, 3, 5, 7, 100} {
			res := ConvolveDrop(prev, exec, deadline, mode)
			if !almostEqual(res.Free.Mass(), 1, 1e-9) {
				t.Errorf("mode=%v δ=%d: Free mass = %v, want 1", mode, deadline, res.Free.Mass())
			}
			if res.Success < -tol || res.Success > 1+tol {
				t.Errorf("mode=%v δ=%d: Success = %v out of [0,1]", mode, deadline, res.Success)
			}
		}
	}
}

// TestEvictSuccessLowerThanPending: eviction can only remove late
// completions, so success probabilities agree between B and C for the same
// inputs.
func TestEvictSuccessMatchesPending(t *testing.T) {
	prev := New(2, []float64{0.25, 0.25, 0.25, 0.25})
	exec := New(1, []float64{0.5, 0.3, 0.2})
	for _, deadline := range []int64{3, 5, 8} {
		b := ConvolveDrop(prev, exec, deadline, PendingDrop)
		c := ConvolveDrop(prev, exec, deadline, Evict)
		if !almostEqual(b.Success, c.Success, tol) {
			t.Errorf("δ=%d: pending success %v != evict success %v", deadline, b.Success, c.Success)
		}
	}
}

// TestEvictFreeDominatesPending: the evict Free PMF is stochastically no
// later than the pending one — eviction frees machines earlier, which is
// the mechanism behind the paper's robustness gain.
func TestEvictFreeDominatesPending(t *testing.T) {
	prev := New(2, []float64{0.25, 0.25, 0.25, 0.25})
	exec := New(1, []float64{0.5, 0.3, 0.2})
	deadline := int64(5)
	b := ConvolveDrop(prev, exec, deadline, PendingDrop)
	c := ConvolveDrop(prev, exec, deadline, Evict)
	lo := b.Free.Start()
	if c.Free.Start() < lo {
		lo = c.Free.Start()
	}
	hi := b.Free.End()
	if c.Free.End() > hi {
		hi = c.Free.End()
	}
	for tick := lo; tick <= hi; tick++ {
		if c.Free.CDF(tick) < b.Free.CDF(tick)-tol {
			t.Fatalf("evict CDF(%d)=%v < pending CDF(%d)=%v", tick, c.Free.CDF(tick), tick, b.Free.CDF(tick))
		}
	}
}

func TestChainCompletion(t *testing.T) {
	base := Impulse(0)
	execs := []*PMF{execPMF(), execPMF(), execPMF()}
	deadlines := []int64{4, 6, 8}
	results := ChainCompletion(base, execs, deadlines, PendingDrop)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	// First task starts at 0: completes at 1..3, all before deadline 4.
	if !almostEqual(results[0].Success, 1, tol) {
		t.Errorf("first success = %v, want 1", results[0].Success)
	}
	// Success must not increase down the chain with equal slack growth.
	for i := range results {
		if results[i].Success < 0 || results[i].Success > 1 {
			t.Errorf("chain success[%d] = %v out of range", i, results[i].Success)
		}
		if !almostEqual(results[i].Free.Mass(), 1, 1e-9) {
			t.Errorf("chain Free[%d] mass = %v, want 1", i, results[i].Free.Mass())
		}
	}
}

func TestChainCompletionLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ChainCompletion(Impulse(0), []*PMF{execPMF()}, nil, NoDrop)
}

func TestDropModeString(t *testing.T) {
	cases := map[DropMode]string{NoDrop: "nodrop", PendingDrop: "pending", Evict: "evict", DropMode(9): "DropMode(9)"}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(mode), got, want)
		}
	}
}

// TestDroppingImprovesSuccessor demonstrates the core thesis of Section IV:
// excluding a (dropped) predecessor from the convolution improves the
// success probability of the task behind it.
func TestDroppingImprovesSuccessor(t *testing.T) {
	base := Impulse(0)
	doomed := New(8, []float64{0.5, 0.5}) // a slow predecessor
	exec := execPMF()
	deadline := int64(6)

	withPred := ConvolveDrop(Convolve(base, doomed), exec, deadline, PendingDrop)
	withoutPred := ConvolveDrop(base, exec, deadline, PendingDrop)
	if withoutPred.Success <= withPred.Success {
		t.Errorf("dropping predecessor did not help: %v <= %v", withoutPred.Success, withPred.Success)
	}
	if math.Abs(withoutPred.Success-1) > tol {
		t.Errorf("unobstructed success = %v, want 1", withoutPred.Success)
	}
}
