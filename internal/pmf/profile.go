package pmf

// Profile augments an execution-time PMF with precomputed prefix sums so
// that the two quantities mapping heuristics evaluate millions of times —
// a task's success probability and its expected machine-free time against
// a candidate queue tail — cost O(|tail|) instead of a full O(|tail|·|exec|)
// convolution. Full convolutions are then only needed when an assignment is
// actually committed (to update the tail) or when a queue chain is walked.
type Profile struct {
	p    *PMF
	cdf  []float64 // cdf[i]  = P(X <= start+i)
	ccdf []float64 // ccdf[i] = 1 − cdf[i]: suffix (deadline-miss) mass
	pex  []float64 // pex[i]  = E[X · 1(X <= start+i)]
	mean float64
}

// NewProfile precomputes prefix statistics for p. The PMF is retained by
// reference and must not be mutated afterwards.
func NewProfile(p *PMF) *Profile {
	pr := &Profile{p: p}
	pr.cdf = make([]float64, len(p.probs))
	pr.ccdf = make([]float64, len(p.probs))
	pr.pex = make([]float64, len(p.probs))
	var c, e float64
	for i, v := range p.probs {
		x := float64(p.start + int64(i))
		c += v
		e += v * x
		pr.cdf[i] = c
		pr.ccdf[i] = 1 - c
		pr.pex[i] = e
	}
	pr.mean = p.Mean()
	return pr
}

// PMF returns the underlying distribution.
func (pr *Profile) PMF() *PMF { return pr.p }

// Mean returns E[X].
func (pr *Profile) Mean() float64 { return pr.mean }

// CDF returns P(X <= t).
func (pr *Profile) CDF(t int64) float64 {
	if len(pr.cdf) == 0 || t < pr.p.start {
		return 0
	}
	i := t - pr.p.start
	if i >= int64(len(pr.cdf)) {
		i = int64(len(pr.cdf)) - 1
	}
	return pr.cdf[i]
}

// PartialMean returns E[X · 1(X <= t)].
func (pr *Profile) PartialMean(t int64) float64 {
	if len(pr.pex) == 0 || t < pr.p.start {
		return 0
	}
	i := t - pr.p.start
	if i >= int64(len(pr.pex)) {
		i = int64(len(pr.pex)) - 1
	}
	return pr.pex[i]
}

// CCDF returns the suffix mass P(X > t) = 1 − CDF(t) — the probability a
// task whose execution profile is pr misses a deadline t ticks away — as
// a precomputed O(1) lookup. For a normalized profile the table stores the
// expression 1 − CDF(t) exactly; below (or without) support the result
// saturates at 1, matching 1 − CDF(t) there too.
func (pr *Profile) CCDF(t int64) float64 {
	if len(pr.ccdf) == 0 || t < pr.p.start {
		return 1
	}
	i := t - pr.p.start
	if i >= int64(len(pr.ccdf)) {
		i = int64(len(pr.ccdf)) - 1
	}
	return pr.ccdf[i]
}

// MeanCappedAt returns E[min(X, d)] = E[X·1(X<=d)] + d·P(X>d).
func (pr *Profile) MeanCappedAt(d int64) float64 {
	return pr.PartialMean(d) + float64(d)*pr.CCDF(d)
}

// DropSuccess computes the success probability of a task with the given
// deadline whose execution profile is exec and whose start time is
// distributed as prev — without materializing the convolution:
//
//	P(success) = Σ_{s < δ} prev(s) · P(exec <= δ − s)
//
// The formula is identical under all three dropping scenarios: starts at or
// after the deadline contribute nothing either way (under NoDrop their
// completion necessarily lands after δ because executions take at least one
// tick — a precondition PET profiles guarantee; under PendingDrop/Evict the
// task is dropped before starting). It matches ConvolveDrop's Success field
// exactly, which the property tests assert.
func DropSuccess(prev *PMF, exec *Profile, deadline int64) float64 {
	if prev.IsZero() {
		return 0
	}
	var s float64
	// Only slots strictly before the deadline contribute; prev's support is
	// ascending, so the prefix below the boundary index is exactly the set
	// the per-element break used to visit, in the same order.
	cut := startsBefore(prev, deadline)
	if nz := prev.nz; nz != nil {
		for _, off := range nz {
			if int64(off) >= cut {
				break
			}
			s += prev.probs[off] * exec.CDF(deadline-prev.start-int64(off))
		}
	} else {
		for i, a := range prev.probs[:cut] {
			if a == 0 {
				continue
			}
			s += a * exec.CDF(deadline-prev.start-int64(i))
		}
	}
	if s > 1 {
		s = 1 // floating-point accumulation guard
	}
	return s
}

// startsBefore returns the count of prev's dense slots whose tick lies
// strictly before the deadline, clamped into [0, len].
func startsBefore(prev *PMF, deadline int64) int64 {
	cut := deadline - prev.start
	if cut < 0 {
		return 0
	}
	if cut > int64(len(prev.probs)) {
		return int64(len(prev.probs))
	}
	return cut
}

// DropExpectedFree computes the mean of ConvolveDrop(prev, exec, δ, mode)'s
// Free PMF in O(|prev|):
//
//	PendingDrop: Σ_{s<δ} prev(s)·(s + E[exec])        + Σ_{s>=δ} prev(s)·s
//	Evict:       Σ_{s<δ} prev(s)·(s + E[min(exec,δ−s)]) + Σ_{s>=δ} prev(s)·s
//	NoDrop:      E[prev] + E[exec]
func DropExpectedFree(prev *PMF, exec *Profile, deadline int64, mode DropMode) float64 {
	if prev.IsZero() {
		return 0
	}
	if mode == NoDrop {
		return prev.Mean() + exec.Mean()
	}
	var e, mass float64
	for i, a := range prev.probs {
		if a == 0 {
			continue
		}
		st := prev.start + int64(i)
		mass += a
		switch {
		case st >= deadline:
			e += a * float64(st)
		case mode == Evict:
			e += a * (float64(st) + exec.MeanCappedAt(deadline-st))
		default: // PendingDrop
			e += a * (float64(st) + exec.Mean())
		}
	}
	if mass == 0 {
		return 0
	}
	return e / mass
}

// DropEval computes DropSuccess and DropExpectedFree in one scan of prev —
// the two scalars phase-one mapping evaluates for every (task, machine)
// pair. The accumulation order of each result replicates its standalone
// function exactly, so DropEval is a bit-identical drop-in for the pair of
// calls at half the tail-scanning cost.
func DropEval(prev *PMF, exec *Profile, deadline int64, mode DropMode) (success, expFree float64) {
	if prev.IsZero() {
		return 0, 0
	}
	if mode == NoDrop {
		return DropSuccess(prev, exec, deadline), prev.Mean() + exec.Mean()
	}
	// One boundary split replaces the per-element deadline test, and the
	// loop-invariant mode test is hoisted into dedicated loops: ascending
	// support means every slot before the boundary takes the mode branch
	// and every slot after it takes the carried branch, so the split loops
	// visit the same elements in the same order as the single switch-laden
	// scan they replace — bit-identical sums at a fraction of the branches.
	cut := startsBefore(prev, deadline)
	var s, e, mass float64
	if nz := prev.nz; nz != nil {
		// Sparse fast path: a compacted tail stores few impulses over a
		// wide dense support; walking the non-zero index skips only exact
		// zeros, so the sums are bit-identical to the dense scan below.
		nzCut := 0
		for nzCut < len(nz) && int64(nz[nzCut]) < cut {
			nzCut++
		}
		probs := prev.probs
		if mode == Evict {
			for _, off := range nz[:nzCut] {
				a := probs[off]
				st := prev.start + int64(off)
				mass += a
				s += a * exec.CDF(deadline-st)
				e += a * (float64(st) + exec.MeanCappedAt(deadline-st))
			}
		} else {
			em := exec.Mean()
			for _, off := range nz[:nzCut] {
				a := probs[off]
				st := prev.start + int64(off)
				mass += a
				s += a * exec.CDF(deadline-st)
				e += a * (float64(st) + em)
			}
		}
		for _, off := range nz[nzCut:] {
			a := probs[off]
			mass += a
			e += a * float64(prev.start+int64(off))
		}
	} else {
		if mode == Evict {
			for i, a := range prev.probs[:cut] {
				if a == 0 {
					continue
				}
				st := prev.start + int64(i)
				mass += a
				s += a * exec.CDF(deadline-st)
				e += a * (float64(st) + exec.MeanCappedAt(deadline-st))
			}
		} else {
			em := exec.Mean()
			for i, a := range prev.probs[:cut] {
				if a == 0 {
					continue
				}
				st := prev.start + int64(i)
				mass += a
				s += a * exec.CDF(deadline-st)
				e += a * (float64(st) + em)
			}
		}
		base := prev.start + cut
		for i, a := range prev.probs[cut:] {
			if a == 0 {
				continue
			}
			mass += a
			e += a * float64(base+int64(i))
		}
	}
	if s > 1 {
		s = 1 // floating-point accumulation guard
	}
	if mass == 0 {
		return s, 0
	}
	return s, e / mass
}
