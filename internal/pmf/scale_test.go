package pmf

import (
	"math"
	"testing"
)

func TestScaleTicksIdentity(t *testing.T) {
	p := New(10, []float64{0.25, 0.5, 0.25})
	if got := ScaleTicks(p, 1); got != p {
		t.Error("factor 1 must return the PMF itself")
	}
}

func TestScaleTicksStretch(t *testing.T) {
	p := New(10, []float64{0.25, 0.5, 0.25}) // impulses at 10, 11, 12
	q := ScaleTicks(p, 2)
	for _, c := range []struct {
		tick int64
		want float64
	}{{20, 0.25}, {22, 0.5}, {24, 0.25}} {
		if got := q.At(c.tick); got != c.want {
			t.Errorf("At(%d) = %v, want %v", c.tick, got, c.want)
		}
	}
	if m := q.Mass(); math.Abs(m-1) > 1e-12 {
		t.Errorf("mass = %v, want 1", m)
	}
}

func TestScaleTicksMergesCollisions(t *testing.T) {
	// Shrinking by 0.5: ticks 10 and 11 both ceil to 5 and 6? ceil(10*.5)=5,
	// ceil(11*.5)=6, ceil(12*.5)=6 — 11 and 12 collide.
	p := New(10, []float64{0.25, 0.5, 0.25})
	q := ScaleTicks(p, 0.5)
	if got := q.At(5); got != 0.25 {
		t.Errorf("At(5) = %v, want 0.25", got)
	}
	if got := q.At(6); got != 0.75 {
		t.Errorf("At(6) = %v, want 0.75 (merged)", got)
	}
	if m := q.Mass(); math.Abs(m-1) > 1e-12 {
		t.Errorf("mass = %v, want 1", m)
	}
}

func TestScaleTicksClampsToOne(t *testing.T) {
	p := New(1, []float64{1}) // a 1-tick execution
	q := ScaleTicks(p, 0.25)  // would scale to tick 1 (ceil 0.25 → 1)
	if got := q.At(1); got != 1 {
		t.Errorf("mass at tick 1 = %v, want 1 (durations never reach 0)", got)
	}
}

func TestScaleTicksMeanScalesApproximately(t *testing.T) {
	p := New(40, []float64{0.1, 0.2, 0.4, 0.2, 0.1})
	for _, f := range []float64{1.5, 2, 3.25} {
		q := ScaleTicks(p, f)
		want := p.Mean() * f
		if got := q.Mean(); math.Abs(got-want) > 1 { // ceil rounds up by < 1 tick
			t.Errorf("factor %v: mean %v, want ≈ %v", f, got, want)
		}
	}
}

func TestScaleTicksInvalidFactorPanics(t *testing.T) {
	p := New(10, []float64{1})
	for _, f := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("factor %v did not panic", f)
				}
			}()
			ScaleTicks(p, f)
		}()
	}
}

func TestScaleDurUnscaleDur(t *testing.T) {
	if got := ScaleDur(10, 1); got != 10 {
		t.Errorf("ScaleDur(10,1) = %d", got)
	}
	if got := ScaleDur(10, 2.5); got != 25 {
		t.Errorf("ScaleDur(10,2.5) = %d, want 25", got)
	}
	if got := ScaleDur(0, 3); got != 0 {
		t.Errorf("ScaleDur(0,3) = %d, want 0 (no progress at any speed)", got)
	}
	if got := ScaleDur(1, 0.1); got != 1 {
		t.Errorf("ScaleDur(1,0.1) = %d, want 1 (clamped)", got)
	}
	if got := UnscaleDur(25, 2.5); got != 10 {
		t.Errorf("UnscaleDur(25,2.5) = %d, want 10", got)
	}
	if got := UnscaleDur(24, 2.5); got != 9 {
		t.Errorf("UnscaleDur(24,2.5) = %d, want 9 (floor)", got)
	}
	if got := UnscaleDur(0, 2); got != 0 {
		t.Errorf("UnscaleDur(0,2) = %d, want 0", got)
	}
	// Round trip never over-credits progress.
	for d := int64(1); d < 50; d++ {
		for _, f := range []float64{1.25, 2, 3.7} {
			if back := UnscaleDur(ScaleDur(d, f), f); back > d {
				t.Fatalf("UnscaleDur(ScaleDur(%d,%v)) = %d over-credits", d, f, back)
			}
		}
	}
}
