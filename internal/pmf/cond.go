package pmf

// This file holds the arena-allocating forms of the conditioning operations
// the simulator's dequeue/requeue hot loop performs on every mapping event
// for every machine with an executing task. Each replicates the exact
// floating-point accumulation order of the heap-allocating composition it
// replaces (Shift + ConditionAtLeast + Clone/TruncateAfter/AddMass), so
// switching a call site to the arena form never changes simulation results.

// ShiftConditioned returns p.Shift(dt).ConditionAtLeast(t) allocated in the
// arena: the completion-time distribution of a task whose execution profile
// is p, started at dt, given that it has not finished before tick t.
func (a *Arena) ShiftConditioned(p *PMF, dt, t int64) *PMF {
	if p.IsZero() {
		return a.hdr()
	}
	start := p.start + dt
	if t <= start {
		q := a.Clone(p)
		q.start = start
		return q
	}
	if t > start+int64(len(p.probs))-1 {
		return a.Impulse(t)
	}
	cut := t - start
	src := p.probs[cut:]
	buf := a.Floats(len(src))
	copy(buf, src)
	q := a.wrap(t, buf)
	var m float64
	for _, v := range q.probs {
		m += v
	}
	if m == 0 {
		return a.Impulse(t)
	}
	if m != 1 {
		for i := range q.probs {
			q.probs[i] /= m
		}
	}
	return q
}

// EvictTail returns a copy of the free-time distribution p with all mass
// strictly after deadline collapsed onto the deadline tick (scenario C: the
// task is killed at its deadline and the machine freed). p is not modified;
// the result lives in the arena.
func (a *Arena) EvictTail(p *PMF, deadline int64) *PMF {
	if p.IsZero() || deadline >= p.End() {
		return p
	}
	if deadline < p.start {
		// Everything lands late: the whole mass collapses onto the deadline.
		var m float64
		for _, v := range p.probs {
			m += v
		}
		q := a.hdr()
		q.start = deadline
		q.probs = a.Floats(1)
		q.probs[0] = m
		return q
	}
	cut := deadline - p.start + 1
	buf := a.Floats(int(cut))
	copy(buf, p.probs[:cut])
	var late float64
	for _, v := range p.probs[cut:] {
		late += v
	}
	buf[cut-1] += late
	return a.wrap(p.start, buf)
}

// CondMeanShifted returns p.Shift(dt).ConditionAtLeast(t).Mean() without
// materializing either intermediate: the expected completion tick of an
// already-running task. The accumulation replicates ConditionAtLeast
// (renormalize element-wise) followed by Mean (mass recomputed from the
// renormalized values) bit-for-bit.
func CondMeanShifted(p *PMF, dt, t int64) float64 {
	if p.IsZero() {
		return 0
	}
	start := p.start + dt
	end := start + int64(len(p.probs)) - 1
	lo := int64(0)
	if t > start {
		if t > end {
			return float64(t) // outran the profile: modeled as finishing now
		}
		lo = t - start
	}
	var m float64
	for _, v := range p.probs[lo:] {
		m += v
	}
	if m == 0 {
		if t > start {
			return float64(t)
		}
		return 0
	}
	// Mean() divides by the recomputed mass of the (renormalized) values;
	// replicate that by accumulating the renormalized terms themselves.
	// The per-element normalization test is loop-invariant, so each case
	// gets its own branch-free loop with an exact incremental float tick.
	var m2, s float64
	x := float64(start + lo)
	if m != 1 && t > start {
		for _, v := range p.probs[lo:] {
			q := v / m
			m2 += q
			s += q * x
			x++
		}
	} else {
		for _, v := range p.probs[lo:] {
			m2 += v
			s += v * x
			x++
		}
	}
	return s / m2
}
