package pmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPMF builds a normalized PMF with 1..maxLen impulses from quick's
// rand source.
func randomPMF(r *rand.Rand, maxLen int) *PMF {
	return randomPMFFrom(r, maxLen, 0)
}

// randomExecPMF builds a normalized PMF starting at tick >= 1, matching the
// PET invariant that executions take at least one tick (FromHistogram
// clamps). DropSuccess/DropExpectedFree rely on that invariant.
func randomExecPMF(r *rand.Rand, maxLen int) *PMF {
	return randomPMFFrom(r, maxLen, 1)
}

func randomPMFFrom(r *rand.Rand, maxLen int, minStart int64) *PMF {
	n := 1 + r.Intn(maxLen)
	probs := make([]float64, n)
	var total float64
	for i := range probs {
		probs[i] = r.Float64()
		total += probs[i]
	}
	if total == 0 {
		probs[0] = 1
		total = 1
	}
	for i := range probs {
		probs[i] /= total
	}
	return New(minStart+int64(r.Intn(50)), probs)
}

var quickCfg = &quick.Config{MaxCount: 300}

// Property: convolution preserves total mass.
func TestPropConvolveMass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomPMF(r, 24)
		b := randomPMF(r, 24)
		c := Convolve(a, b)
		return math.Abs(c.Mass()-a.Mass()*b.Mass()) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: convolution adds means (E[X+Y] = E[X] + E[Y]).
func TestPropConvolveMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomPMF(r, 24)
		b := randomPMF(r, 24)
		c := Convolve(a, b)
		return math.Abs(c.Mean()-(a.Mean()+b.Mean())) < 1e-6
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: convolution adds variances for independent variables.
func TestPropConvolveVariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomPMF(r, 24)
		b := randomPMF(r, 24)
		c := Convolve(a, b)
		return math.Abs(c.Variance()-(a.Variance()+b.Variance())) < 1e-6
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: convolution is commutative.
func TestPropConvolveCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomPMF(r, 16)
		b := randomPMF(r, 16)
		return ApproxEqual(Convolve(a, b), Convolve(b, a), 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: dropping-aware convolution conserves mass in every mode and
// keeps success within [0, CDF-bound].
func TestPropConvolveDropMass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prev := randomPMF(r, 24)
		exec := randomPMF(r, 16)
		deadline := prev.Start() + int64(r.Intn(40))
		for _, mode := range []DropMode{NoDrop, PendingDrop, Evict} {
			res := ConvolveDrop(prev, exec, deadline, mode)
			if math.Abs(res.Free.Mass()-1) > 1e-9 {
				return false
			}
			if res.Success < -1e-12 || res.Success > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: DropSuccess (the O(|prev|) fast path) agrees exactly with the
// Success field of the full convolution, in every mode.
func TestPropDropSuccessMatchesConvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prev := randomPMF(r, 24)
		exec := randomExecPMF(r, 16)
		prof := NewProfile(exec)
		deadline := prev.Start() + int64(r.Intn(40))
		fast := DropSuccess(prev, prof, deadline)
		for _, mode := range []DropMode{NoDrop, PendingDrop, Evict} {
			res := ConvolveDrop(prev, exec, deadline, mode)
			if math.Abs(res.Success-fast) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: DropExpectedFree agrees with the mean of the fully convolved
// Free PMF in every mode.
func TestPropDropExpectedFreeMatchesConvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prev := randomPMF(r, 24)
		exec := randomExecPMF(r, 16)
		prof := NewProfile(exec)
		deadline := prev.Start() + int64(r.Intn(40))
		for _, mode := range []DropMode{NoDrop, PendingDrop, Evict} {
			res := ConvolveDrop(prev, exec, deadline, mode)
			fast := DropExpectedFree(prev, prof, deadline, mode)
			if math.Abs(res.Free.Mean()-fast) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: success probability is monotone in the deadline.
func TestPropSuccessMonotoneInDeadline(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prev := randomPMF(r, 24)
		exec := randomExecPMF(r, 16)
		prof := NewProfile(exec)
		last := -1.0
		for d := prev.Start() - 2; d < prev.End()+20; d++ {
			s := DropSuccess(prev, prof, d)
			if s < last-1e-12 {
				return false
			}
			last = s
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: Compact preserves mass exactly and never widens support.
func TestPropCompact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPMF(r, 200)
		bound := 1 + r.Intn(64)
		c := Compact(p, bound)
		if c.NumImpulses() > bound {
			return false
		}
		if math.Abs(c.Mass()-p.Mass()) > 1e-9 {
			return false
		}
		return c.Start() >= p.Start() && c.End() <= p.End()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: ConditionAtLeast yields a normalized PMF supported at or after
// the conditioning point, and conditioning at the support start is the
// identity.
func TestPropConditionAtLeast(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPMF(r, 24)
		at := p.Start() + int64(r.Intn(30))
		q := p.ConditionAtLeast(at)
		if math.Abs(q.Mass()-1) > 1e-9 {
			return false
		}
		return q.Start() >= at
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing and reaches total mass.
func TestPropCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPMF(r, 32)
		prev := 0.0
		for tk := p.Start() - 1; tk <= p.End()+1; tk++ {
			c := p.CDF(tk)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(prev-p.Mass()) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: TruncateAfter + removed mass = original mass.
func TestPropTruncateConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPMF(r, 32)
		orig := p.Mass()
		cut := p.Start() + int64(r.Intn(40)) - 2
		removed := p.TruncateAfter(cut)
		return math.Abs(p.Mass()+removed-orig) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: Profile prefix sums match direct computation.
func TestPropProfileConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPMF(r, 32)
		prof := NewProfile(p)
		for tk := p.Start() - 1; tk <= p.End()+2; tk++ {
			if math.Abs(prof.CDF(tk)-p.CDF(tk)) > 1e-9 {
				return false
			}
			var pm float64
			for u := p.Start(); u <= tk && u <= p.End(); u++ {
				pm += p.At(u) * float64(u)
			}
			if math.Abs(prof.PartialMean(tk)-pm) > 1e-6 {
				return false
			}
		}
		return math.Abs(prof.Mean()-p.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
