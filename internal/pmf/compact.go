package pmf

// DefaultMaxImpulses bounds PMF support length after compaction. The paper
// notes the convolution overhead "can be mitigated ... by aggregating
// impulses"; 32 impulses keeps chained convolutions cheap while measured
// robustness differences against wider bounds stay within trial noise
// (see the compaction ablation bench).
const DefaultMaxImpulses = 32

// compactStackGroups is the group count served from stack scratch; larger
// bounds (ablation sweeps) fall back to a temporary allocation.
const compactStackGroups = 64

// Compact returns a PMF with at most maxImpulses non-zero impulses,
// aggregating neighboring impulses into the center-of-mass tick of each
// group. Total mass is preserved exactly; the mean moves by less than one
// group width. A PMF already narrow enough is returned as-is (shared, not
// copied — PMFs are treated as immutable once built). Note the dense
// support may remain wide; what is bounded — and what governs convolution
// cost — is the non-zero impulse count.
func Compact(p *PMF, maxImpulses int) *PMF {
	return (*Arena)(nil).Compact(p, maxImpulses)
}

// Compact is the arena-allocating form of the package-level Compact. When p
// is already narrow enough it is returned as-is, so the result's lifetime
// is the shorter of p's and the arena's.
func (a *Arena) Compact(p *PMF, maxImpulses int) *PMF {
	if p.IsZero() || maxImpulses <= 0 || len(p.probs) <= maxImpulses {
		return p
	}
	groups := maxImpulses
	n := len(p.probs)

	var tickArr [compactStackGroups]int64
	var massArr [compactStackGroups]float64
	ticks, masses := tickArr[:0], massArr[:0]
	if groups > compactStackGroups {
		ticks = make([]int64, 0, groups)
		masses = make([]float64, 0, groups)
	}
	for g := 0; g < groups; g++ {
		lo := g * n / groups
		hi := (g + 1) * n / groups
		var mass, center float64
		// The group scan dominates compaction cost: sub-slicing drops the
		// per-element bounds checks, the incremental float tick is exact
		// (ticks stay integral, far below 2^53), and the scan is branch-free —
		// zero slots contribute +0.0 identity terms to non-negative
		// accumulators, so the sums match a zero-skipping scan bit for bit
		// while the loop pipelines without mispredictions.
		x := float64(p.start + int64(lo))
		for _, v := range p.probs[lo:hi] {
			mass += v
			center += v * x
			x++
		}
		if mass == 0 {
			continue
		}
		ticks = append(ticks, int64(center/mass+0.5))
		masses = append(masses, mass)
	}
	if len(ticks) == 0 {
		return a.hdr()
	}
	// Group centers of mass are nondecreasing (groups partition increasing
	// index ranges), so the dense output spans [ticks[0], ticks[last]] and
	// coinciding centers accumulate — exactly the sums sequential AddMass
	// calls would produce, without the quadratic regrow-and-copy.
	lo, hi := ticks[0], ticks[len(ticks)-1]
	buf := a.Floats(int(hi - lo + 1))
	nz := a.ints(len(ticks))
	for i, t := range ticks {
		if buf[t-lo] == 0 {
			nz = append(nz, int32(t-lo)) // centers coincide only rarely
		}
		buf[t-lo] += masses[i]
	}
	out := a.hdr()
	out.start = lo
	out.probs = buf
	out.nz = nz
	return out
}
