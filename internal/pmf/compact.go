package pmf

// DefaultMaxImpulses bounds PMF support length after compaction. The paper
// notes the convolution overhead "can be mitigated ... by aggregating
// impulses"; 32 impulses keeps chained convolutions cheap while measured
// robustness differences against wider bounds stay within trial noise
// (see the compaction ablation bench).
const DefaultMaxImpulses = 32

// Compact returns a PMF with at most maxImpulses non-zero impulses,
// aggregating neighboring impulses into the center-of-mass tick of each
// group. Total mass is preserved exactly; the mean moves by less than one
// group width. A PMF already narrow enough is returned as-is (shared, not
// copied — PMFs are treated as immutable once built). Note the dense
// support may remain wide; what is bounded — and what governs convolution
// cost — is the non-zero impulse count.
func Compact(p *PMF, maxImpulses int) *PMF {
	if p.IsZero() || maxImpulses <= 0 || len(p.probs) <= maxImpulses {
		return p
	}
	groups := maxImpulses
	n := len(p.probs)
	out := &PMF{}
	for g := 0; g < groups; g++ {
		lo := g * n / groups
		hi := (g + 1) * n / groups
		var mass, center float64
		for i := lo; i < hi; i++ {
			mass += p.probs[i]
			center += p.probs[i] * float64(p.start+int64(i))
		}
		if mass == 0 {
			continue
		}
		t := int64(center/mass + 0.5)
		out.AddMass(t, mass)
	}
	return out
}
