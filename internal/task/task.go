// Package task defines the unit of work flowing through the heterogeneous
// computing system: typed, deadline-constrained, independent tasks.
package task

import "fmt"

// Type identifies a task type (an index into the PET matrix rows). The
// paper's main workload has twelve types derived from SPECint benchmarks;
// the video workload has four transcoding types.
type Type int

// State tracks a task through its lifecycle.
type State int

const (
	// StatePending: in the batch queue, not yet mapped.
	StatePending State = iota
	// StateQueued: mapped to a machine queue, waiting to execute.
	StateQueued
	// StateRunning: currently executing on a machine.
	StateRunning
	// StateCompleted: finished execution before its deadline.
	StateCompleted
	// StateMissed: finished execution after its deadline (counted as a
	// miss; under eviction it is killed at the deadline instead).
	StateMissed
	// StateDropped: removed by the pruner or by deadline expiry before
	// completing.
	StateDropped
	// StateApprox: evicted at its deadline after receiving enough of its
	// execution to deliver a degraded-but-useful result (approximate
	// computing extension; the paper's second future-work item).
	StateApprox
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateMissed:
		return "missed"
	case StateDropped:
		return "dropped"
	case StateApprox:
		return "approx"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Task is one deadline-constrained request. Times are integer simulation
// ticks (~milliseconds).
type Task struct {
	ID       int   // unique, in arrival order
	Type     Type  // row of the PET matrix
	Arrival  int64 // arrival tick
	Deadline int64 // hard deadline tick (absolute)

	// TrueExec holds the pre-sampled actual execution time of this task on
	// each machine (indexed by machine ID). The mapper never sees it; the
	// simulator uses it once the task starts. Sampling per-(task, machine)
	// up front keeps trials reproducible regardless of mapping order.
	TrueExec []int64

	// Mutable simulation state.
	State   State
	Machine int   // machine ID once mapped, else -1
	Start   int64 // tick of the latest execution start (valid in Running and later)
	Finish  int64 // tick the task left the system (completed/missed/dropped)
	Defers  int   // number of times the pruner deferred mapping this task

	// Preemption extension (the paper's stated future work): Consumed is
	// how many ticks of execution the task has already received across
	// earlier (preempted) runs; Preemptions counts how often it was paused.
	Consumed    int64
	Preemptions int

	// Checkpoint/restore state: LastCheckpoint is the cumulative nominal
	// progress (in the same machine-independent ticks as Consumed) at the
	// task's last completed checkpoint — the point a machine failure
	// restores it to; Checkpoints counts how many checkpoints it has
	// written across all runs. Both stay zero when checkpointing is off.
	LastCheckpoint int64
	Checkpoints    int
}

// New constructs a pending task. TrueExec is filled in by the workload
// generator.
func New(id int, typ Type, arrival, deadline int64) *Task {
	return &Task{ID: id, Type: typ, Arrival: arrival, Deadline: deadline, Machine: -1}
}

// Slack returns the time remaining until the deadline at tick now;
// negative when the deadline has passed.
func (t *Task) Slack(now int64) int64 { return t.Deadline - now }

// Expired reports whether the task's deadline has passed at tick now. A
// task completing exactly at its deadline still succeeds (Eq. 1 uses
// t <= δ), so expiry is strict.
func (t *Task) Expired(now int64) bool { return now > t.Deadline }

// Done reports whether the task has left the system.
func (t *Task) Done() bool {
	switch t.State {
	case StateCompleted, StateMissed, StateDropped, StateApprox:
		return true
	default:
		return false
	}
}

// Succeeded reports whether the task completed by its deadline.
func (t *Task) Succeeded() bool { return t.State == StateCompleted }

// Remaining returns the execution time still owed on machine mi, at least
// one tick while the task is unfinished.
func (t *Task) Remaining(mi int) int64 {
	r := t.TrueExec[mi] - t.Consumed
	if r < 1 {
		r = 1
	}
	return r
}

// String implements fmt.Stringer for debugging and trace output.
func (t *Task) String() string {
	return fmt.Sprintf("task{id=%d type=%d arr=%d dl=%d %s}", t.ID, t.Type, t.Arrival, t.Deadline, t.State)
}
