package task

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	tk := New(3, Type(2), 100, 250)
	if tk.ID != 3 || tk.Type != 2 || tk.Arrival != 100 || tk.Deadline != 250 {
		t.Errorf("unexpected fields: %+v", tk)
	}
	if tk.State != StatePending {
		t.Errorf("State = %v, want pending", tk.State)
	}
	if tk.Machine != -1 {
		t.Errorf("Machine = %d, want -1 (unmapped)", tk.Machine)
	}
}

func TestSlackAndExpired(t *testing.T) {
	tk := New(0, 0, 0, 100)
	if got := tk.Slack(40); got != 60 {
		t.Errorf("Slack(40) = %d, want 60", got)
	}
	if got := tk.Slack(140); got != -40 {
		t.Errorf("Slack(140) = %d, want -40", got)
	}
	// Completion exactly at the deadline succeeds (Eq. 1 uses t <= δ), so
	// expiry must be strict.
	if tk.Expired(100) {
		t.Error("task expired exactly at deadline; expiry must be strict")
	}
	if !tk.Expired(101) {
		t.Error("task not expired after deadline")
	}
}

func TestDoneAndSucceeded(t *testing.T) {
	tk := New(0, 0, 0, 100)
	cases := []struct {
		state     State
		done, win bool
	}{
		{StatePending, false, false},
		{StateQueued, false, false},
		{StateRunning, false, false},
		{StateCompleted, true, true},
		{StateMissed, true, false},
		{StateDropped, true, false},
	}
	for _, c := range cases {
		tk.State = c.state
		if tk.Done() != c.done {
			t.Errorf("%v: Done = %v, want %v", c.state, tk.Done(), c.done)
		}
		if tk.Succeeded() != c.win {
			t.Errorf("%v: Succeeded = %v, want %v", c.state, tk.Succeeded(), c.win)
		}
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StatePending:   "pending",
		StateQueued:    "queued",
		StateRunning:   "running",
		StateCompleted: "completed",
		StateMissed:    "missed",
		StateDropped:   "dropped",
		State(99):      "State(99)",
	}
	for s, str := range want {
		if got := s.String(); got != str {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, str)
		}
	}
}

func TestTaskString(t *testing.T) {
	tk := New(7, Type(3), 10, 20)
	s := tk.String()
	for _, frag := range []string{"id=7", "type=3", "arr=10", "dl=20", "pending"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
