package simulator

import (
	"math"
	"reflect"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/stats"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// TestBeliefOracleEquivalence: with the oracle belief — no policy at all,
// an explicit oracle-kind policy, or the zero value — the engine must be
// byte-identical to the pre-split engine for every heuristic class, static
// and churning alike. The committed golden traces pin the nil case against
// history; this pins the three oracle spellings against each other, so the
// belief gates can never leak into an oracle run. Runs under -race in CI
// (make race-stream).
func TestBeliefOracleEquivalence(t *testing.T) {
	matrix := simPET(t)
	churn := scenario.New("churn").
		DegradeAt(200, 0, 2).
		FailAt(300, 1, scenario.Requeue).
		RecoverAt(600, 1).
		DegradeAt(700, 0, 1)
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		for scName, sc := range map[string]*scenario.Scenario{"static": nil, "churn": churn} {
			t.Run(name+"/"+scName, func(t *testing.T) {
				base := MustConfigFor(name, matrix)
				base.Scenario = sc
				evWant, stWant := runTraced(t, base, matrix, 11)

				oracleKind := base
				oracleKind.Belief = &scenario.BeliefPolicy{Kind: scenario.BeliefOracle}
				zero := base
				zero.Belief = &scenario.BeliefPolicy{}
				for variant, cfg := range map[string]Config{"oracle-kind": oracleKind, "zero-value": zero} {
					ev, st := runTraced(t, cfg, matrix, 11)
					if !reflect.DeepEqual(ev, evWant) {
						for i := range evWant {
							if i >= len(ev) || ev[i] != evWant[i] {
								t.Fatalf("%s: traces diverge at event %d: nil-policy %v, %s %v",
									variant, i, evWant[i], variant, ev[i])
							}
						}
						t.Fatalf("%s: trace length %d, want %d", variant, len(ev), len(evWant))
					}
					if !reflect.DeepEqual(st, stWant) {
						t.Fatalf("%s: stats diverge:\nnil-policy: %+v\n%s: %+v", variant, stWant, variant, st)
					}
				}
			})
		}
	}
}

// TestFrozenBeliefMatchesOracleOnStaticFleet: when nothing degrades, a
// belief frozen at t=0 *is* the truth, so the frozen engine must replay the
// oracle byte for byte — the frozen view must introduce no perturbation of
// its own.
func TestFrozenBeliefMatchesOracleOnStaticFleet(t *testing.T) {
	matrix := simPET(t)
	base := MustConfigFor("PAM", matrix)
	evWant, stWant := runTraced(t, base, matrix, 11)

	frozen := base
	frozen.Belief = &scenario.BeliefPolicy{Kind: scenario.BeliefFrozen}
	ev, st := runTraced(t, frozen, matrix, 11)
	if !reflect.DeepEqual(ev, evWant) || !reflect.DeepEqual(st, stWant) {
		t.Fatalf("frozen belief diverged from the oracle on a static fleet:\noracle %+v\nfrozen %+v", stWant, st)
	}
}

// TestFrozenBeliefDivergesUnderDegradation: once the truth moves, the
// frozen mapper must actually schedule differently from the oracle —
// otherwise the belief split is wired to nothing.
func TestFrozenBeliefDivergesUnderDegradation(t *testing.T) {
	matrix := simPET(t)
	base := MustConfigFor("PAM", matrix)
	base.Scenario = scenario.New("slow").DegradeAt(100, 0, 3).DegradeAt(100, 1, 3)
	evWant, _ := runTraced(t, base, matrix, 11)

	frozen := base
	frozen.Belief = &scenario.BeliefPolicy{Kind: scenario.BeliefFrozen}
	ev, _ := runTraced(t, frozen, matrix, 11)
	if reflect.DeepEqual(ev, evWant) {
		t.Fatal("frozen belief replayed the oracle exactly under a 3x degradation; the belief view is not reaching the decision sites")
	}
}

// TestOnlineBeliefObservesAndRefreshes: an online run must feed completed
// executions to the estimator, trigger rebuilds past the sample floor,
// record BeliefRefreshed trace events, and expose matching counters.
func TestOnlineBeliefObservesAndRefreshes(t *testing.T) {
	matrix := simPET(t)
	cfg := MustConfigFor("PAM", matrix)
	cfg.Belief = &scenario.BeliefPolicy{Kind: scenario.BeliefOnline, MinSamples: 5, Refresh: 5}
	ev, _ := runTraced(t, cfg, matrix, 11)
	refreshes := 0
	for _, e := range ev {
		if e.Kind == trace.BeliefRefreshed {
			refreshes++
			if e.Value <= 0 || math.IsNaN(e.Value) {
				t.Fatalf("belief-refresh event carries learned mean %v, want positive", e.Value)
			}
		}
	}
	if refreshes == 0 {
		t.Fatal("250-task online run triggered no belief refreshes at floor 5")
	}
}

// TestOnlineBeliefCounters: the simulator's observation/refresh counters
// must reflect what the estimator saw.
func TestOnlineBeliefCounters(t *testing.T) {
	matrix := simPET(t)
	cfg := MustConfigFor("MM", matrix)
	cfg.Belief = &scenario.BeliefPolicy{Kind: scenario.BeliefOnline, MinSamples: 5, Refresh: 5}
	rng := stats.NewRNG(11)
	wcfg := workload.Config{NumTasks: 250, Rate: workload.RateForLevel(workload.Level34k), VarFrac: 0.10, Beta: 2.0}
	tasks, err := workload.Generate(wcfg, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if sim.BeliefObservations() == 0 {
		t.Fatal("no completions observed")
	}
	ob := sim.Belief()
	if ob == nil {
		t.Fatal("online policy but no estimator")
	}
	if int(ob.Observations()) != sim.BeliefObservations() {
		t.Fatalf("simulator counted %d observations, estimator %d", sim.BeliefObservations(), ob.Observations())
	}
	if int(ob.Refreshes()) != sim.BeliefRefreshes() {
		t.Fatalf("simulator counted %d refreshes, estimator %d", sim.BeliefRefreshes(), ob.Refreshes())
	}
}

// TestBeliefPriorRequiresPolicy: a prior without a non-oracle policy is a
// configuration bug, not a silent no-op.
func TestBeliefPriorRequiresPolicy(t *testing.T) {
	matrix := simPET(t)
	cfg := MustConfigFor("MM", matrix)
	cfg.BeliefPrior = matrix
	if _, err := New(cfg); err == nil {
		t.Fatal("BeliefPrior with an oracle policy must be rejected")
	}
}
