package simulator

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/stats"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// Golden decision-trace regression tests: each heuristic's full decision
// stream on a fixed seed is committed under testdata/ and must replay byte
// for byte. Any future cache, refactor, or optimization PR that silently
// changes a scheduling decision — even one deferred task or one tie broken
// the other way — fails here instead of shipping. Regenerate with
//
//	go test ./internal/simulator/ -run Golden -update
//
// and review the diff like any other behavior change.
var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenTrace runs the fixed golden workload (150 tasks, seed 42, heavy
// oversubscription on the 2×2 test PET) under the named heuristic and an
// optional scenario, returning the trace in its canonical CSV form.
func goldenTrace(t *testing.T, name string, sc *scenario.Scenario) []byte {
	t.Helper()
	matrix := simPET(t)
	cfg := baseConfig(t, name, matrix)
	cfg.Scenario = sc
	wcfg := workload.Config{NumTasks: 150, Rate: 0.2, VarFrac: 0.10, Beta: 2.0}
	sc.ApplyBursts(&wcfg)
	tasks, err := workload.Generate(wcfg, matrix, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	cfg.Trace = rec
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenChurn is the committed scenario variant: a mid-trial failure with
// requeue, a later recovery, a degradation window, and an arrival burst.
func goldenChurn() *scenario.Scenario {
	return scenario.New("golden-churn").
		DegradeAt(150, 0, 2).
		FailAt(250, 1, scenario.Requeue).
		RecoverAt(500, 1).
		DegradeAt(650, 0, 1).
		BurstWindow(100, 400, 2)
}

func checkGolden(t *testing.T, file string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if bytes.Equal(want, got) {
		return
	}
	// Locate the first divergent line for an actionable failure message.
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Fatalf("%s: decision trace diverges at line %d:\n  golden: %s\n  got:    %s",
				file, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("%s: trace length changed: golden %d lines, got %d", file, len(wantLines), len(gotLines))
}

func TestGoldenTracePAM(t *testing.T) { checkGolden(t, "golden_PAM.csv", goldenTrace(t, "PAM", nil)) }
func TestGoldenTracePAMF(t *testing.T) {
	checkGolden(t, "golden_PAMF.csv", goldenTrace(t, "PAMF", nil))
}
func TestGoldenTraceMOC(t *testing.T) { checkGolden(t, "golden_MOC.csv", goldenTrace(t, "MOC", nil)) }
func TestGoldenTraceMM(t *testing.T)  { checkGolden(t, "golden_MM.csv", goldenTrace(t, "MM", nil)) }

func TestGoldenTraceChurnPAM(t *testing.T) {
	checkGolden(t, "golden_churn_PAM.csv", goldenTrace(t, "PAM", goldenChurn()))
}
func TestGoldenTraceChurnPAMF(t *testing.T) {
	checkGolden(t, "golden_churn_PAMF.csv", goldenTrace(t, "PAMF", goldenChurn()))
}
func TestGoldenTraceChurnMOC(t *testing.T) {
	checkGolden(t, "golden_churn_MOC.csv", goldenTrace(t, "MOC", goldenChurn()))
}
