package simulator

import (
	"bytes"
	"reflect"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// traceOf runs one simulator over the given source and returns the trace
// CSV plus the trial statistics.
func traceOf(t *testing.T, cfg Config, run func(*Simulator) (any, error)) ([]byte, any) {
	t.Helper()
	rec := trace.NewRecorder()
	cfg.Trace = rec
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := run(sim)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

// TestSourceSliceEquivalence: for every major heuristic — with and without
// mid-trial fleet churn — pulling arrivals straight from the replay-mode
// streaming source must produce a byte-identical decision trace and
// identical trial statistics to materializing the workload slice first and
// running it through the slice adapter. This pins the whole contract at
// once: the stream's RNG draw order, the k-way merge's tie-breaking, the
// pull loop's arrival-versus-event ordering, and the streaming metrics
// collector.
func TestSourceSliceEquivalence(t *testing.T) {
	matrix := simPET(t)
	wcfg := workload.Config{NumTasks: 250, Rate: 0.2, VarFrac: 0.10, Beta: 2.0}
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		for _, variant := range []struct {
			label string
			sc    *scenario.Scenario
		}{
			{"static", nil},
			{"churn", goldenChurn()},
		} {
			t.Run(name+"/"+variant.label, func(t *testing.T) {
				cfg := baseConfig(t, name, matrix)
				cfg.Scenario = variant.sc
				w := wcfg
				variant.sc.ApplyBursts(&w)

				sliceTrace, sliceStats := traceOf(t, cfg, func(sim *Simulator) (any, error) {
					tasks, err := workload.Generate(w, matrix, stats.NewRNG(77))
					if err != nil {
						t.Fatal(err)
					}
					return sim.Run(tasks)
				})
				streamTrace, streamStats := traceOf(t, cfg, func(sim *Simulator) (any, error) {
					src, err := workload.NewSource(w, matrix, stats.NewRNG(77))
					if err != nil {
						t.Fatal(err)
					}
					return sim.RunSource(src)
				})
				if !bytes.Equal(sliceTrace, streamTrace) {
					line := firstDiffLine(sliceTrace, streamTrace)
					t.Fatalf("decision traces diverge at line %d:\n slice:  %s\n stream: %s",
						line+1, lineAt(sliceTrace, line), lineAt(streamTrace, line))
				}
				if !reflect.DeepEqual(sliceStats, streamStats) {
					t.Fatalf("trial stats diverge:\n slice:  %+v\n stream: %+v", sliceStats, streamStats)
				}
			})
		}
	}
}

func firstDiffLine(a, b []byte) int {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := min(len(al), len(bl))
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return i
		}
	}
	return n
}

func lineAt(a []byte, i int) []byte {
	lines := bytes.Split(a, []byte("\n"))
	if i < len(lines) {
		return lines[i]
	}
	return []byte("<EOF>")
}

// TestGoldenTracesViaStream replays every committed golden decision trace
// through the streaming source directly (no intermediate slice at all):
// the pull-based engine with the replay-mode source is the default path
// and must reproduce the committed bytes unmodified.
func TestGoldenTracesViaStream(t *testing.T) {
	matrix := simPET(t)
	for _, tc := range []struct {
		file string
		name string
		sc   *scenario.Scenario
	}{
		{"golden_PAM.csv", "PAM", nil},
		{"golden_PAMF.csv", "PAMF", nil},
		{"golden_MOC.csv", "MOC", nil},
		{"golden_MM.csv", "MM", nil},
		{"golden_churn_PAM.csv", "PAM", goldenChurn()},
		{"golden_churn_PAMF.csv", "PAMF", goldenChurn()},
		{"golden_churn_MOC.csv", "MOC", goldenChurn()},
	} {
		t.Run(tc.file, func(t *testing.T) {
			cfg := baseConfig(t, tc.name, matrix)
			cfg.Scenario = tc.sc
			wcfg := workload.Config{NumTasks: 150, Rate: 0.2, VarFrac: 0.10, Beta: 2.0}
			tc.sc.ApplyBursts(&wcfg)
			got, _ := traceOf(t, cfg, func(sim *Simulator) (any, error) {
				src, err := workload.NewSource(wcfg, matrix, stats.NewRNG(42))
				if err != nil {
					t.Fatal(err)
				}
				return sim.RunSource(src)
			})
			checkGolden(t, tc.file, got)
		})
	}
}

// TestPureStreamTrial: a trial driven by the constant-memory source (task
// recycling active) completes, counts every emission, and produces sane
// statistics.
func TestPureStreamTrial(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	wcfg := workload.Config{NumTasks: 2000, Rate: 0.2, VarFrac: 0.10, Beta: 2.0}
	src, err := workload.NewStream(wcfg, matrix, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != wcfg.NumTasks {
		t.Fatalf("accounted %d exits for %d emissions", st.Total, wcfg.NumTasks)
	}
	if st.Completed+st.Missed+st.Dropped+st.Approx != st.Window {
		t.Fatalf("window states do not add up: %+v", st)
	}
	if st.RobustnessPct <= 0 || st.RobustnessPct > 100 {
		t.Fatalf("implausible robustness %v", st.RobustnessPct)
	}
}

// TestRunSourceRejectsMisordering: a source violating the non-decreasing
// arrival contract must fail loudly, not corrupt the clock.
func TestRunSourceRejectsMisordering(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunSource(&backwardsSource{nm: matrix.NumMachines()}); err == nil {
		t.Fatal("RunSource accepted a time-travelling arrival stream")
	}
}

// backwardsSource emits two tasks with decreasing arrival ticks.
type backwardsSource struct {
	nm int
	n  int
}

func (s *backwardsSource) Next() (*task.Task, bool) {
	if s.n >= 2 {
		return nil, false
	}
	tk := task.New(s.n, 0, int64(100-90*s.n), 1000)
	tk.TrueExec = make([]int64, s.nm)
	for i := range tk.TrueExec {
		tk.TrueExec[i] = 10
	}
	s.n++
	return tk, true
}
