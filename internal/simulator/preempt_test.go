package simulator

import (
	"testing"

	"taskprune/internal/pruner"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// preemptConfig builds a PAM config with preemption on and a hair-trigger
// pruner so the preemption path actually exercises.
func preemptConfig(t *testing.T, gray float64) Config {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	pc := *cfg.Pruner
	pc.ToggleOn = 0.0001 // engage dropping almost immediately
	cfg.Pruner = &pc
	cfg.Preempt = true
	cfg.PreemptGrayFraction = gray
	return cfg
}

// TestPreemptionBanksProgress: a preempted task that later resumes owes
// only its remaining execution time.
func TestPreemptionBanksProgress(t *testing.T) {
	tk := task.New(0, 0, 0, 100)
	tk.TrueExec = []int64{40, 40}
	tk.Consumed = 25
	if got := tk.Remaining(0); got != 15 {
		t.Errorf("Remaining = %d, want 15", got)
	}
	tk.Consumed = 45 // outran its sampled time (can happen after conditioning)
	if got := tk.Remaining(0); got != 1 {
		t.Errorf("over-consumed Remaining = %d, want 1 (floor)", got)
	}
}

// TestPreemptionOccursUnderLoad: at a crushing load with a hair-trigger
// pruner and a wide gray zone, some executing tasks must be preempted
// rather than dropped, and the trial still accounts for every task.
func TestPreemptionOccursUnderLoad(t *testing.T) {
	cfg := preemptConfig(t, 0.01) // gray zone ≈ everything below threshold
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	matrix := cfg.PET
	tasks, err := workload.Generate(workload.Config{NumTasks: 300, Rate: 0.35, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 300 {
		t.Errorf("accounted %d, want 300", st.Total)
	}
	if sim.Preempted() == 0 {
		t.Error("no preemptions at 10x capacity with a hair-trigger pruner")
	}
	for _, tk := range tasks {
		if !tk.Done() {
			t.Errorf("task %d not terminal: %v", tk.ID, tk.State)
		}
		if tk.State == task.StateCompleted && tk.Finish > tk.Deadline {
			t.Errorf("task %d completed late", tk.ID)
		}
	}
}

// TestPreemptDisabledNeverPreempts: the counter stays zero without the
// extension enabled.
func TestPreemptDisabledNeverPreempts(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	sim, _ := New(cfg)
	tasks, err := workload.Generate(workload.Config{NumTasks: 300, Rate: 0.35, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if sim.Preempted() != 0 {
		t.Errorf("preempted %d times with extension disabled", sim.Preempted())
	}
}

// TestPreemptGrayFractionValidation: out-of-range fractions rejected.
func TestPreemptGrayFractionValidation(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	cfg.Preempt = true
	cfg.PreemptGrayFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("gray fraction 1.5 accepted")
	}
	cfg.PreemptGrayFraction = -0.2
	if _, err := New(cfg); err == nil {
		t.Error("negative gray fraction accepted")
	}
}

// TestPreemptedTaskCanStillComplete: a task paused once can still finish on
// time when the system drains.
func TestPreemptedTaskCanStillComplete(t *testing.T) {
	// Construct the scenario by hand: run a trial and look for at least one
	// task that was preempted and later completed. With a generous deadline
	// slack this is overwhelmingly likely across seeds; assert over several.
	for seed := int64(1); seed <= 5; seed++ {
		cfg := preemptConfig(t, 0.01)
		sim, _ := New(cfg)
		tasks, err := workload.Generate(workload.Config{NumTasks: 300, Rate: 0.3, VarFrac: 0.1, Beta: 3}, cfg.PET, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(tasks); err != nil {
			t.Fatal(err)
		}
		for _, tk := range tasks {
			if tk.Preemptions > 0 && tk.State == task.StateCompleted {
				if tk.Finish > tk.Deadline {
					t.Fatalf("preempted task %d 'completed' late", tk.ID)
				}
				return // found the witness
			}
		}
	}
	t.Skip("no preempted-then-completed task across seeds; scenario too harsh")
}

// TestPreemptionBeatsDroppingInGrayZone: the extension should not hurt —
// across a few trials at heavy load, PAM+preempt robustness is at least
// (PAM robustness − noise).
func TestPreemptionBeatsDroppingInGrayZone(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison is slow")
	}
	matrix := simPET(t)
	run := func(preempt bool) float64 {
		var sum float64
		const trials = 4
		for trial := int64(0); trial < trials; trial++ {
			cfg := baseConfig(t, "PAM", matrix)
			cfg.Preempt = preempt
			sim, _ := New(cfg)
			tasks, err := workload.Generate(workload.Config{NumTasks: 400, Rate: 0.25, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(40+trial))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.RobustnessPct
		}
		return sum / trials
	}
	plain, withPre := run(false), run(true)
	t.Logf("PAM %.1f%% vs PAM+preempt %.1f%%", plain, withPre)
	if withPre < plain-8 {
		t.Errorf("preemption hurt robustness badly: %.1f vs %.1f", withPre, plain)
	}
}

// TestStaleEventAfterPreemptRestart: a task preempted and immediately
// restarted must not be completed early by the stale event of its first
// run.
func TestStaleEventAfterPreemptRestart(t *testing.T) {
	cfg := preemptConfig(t, 0.01)
	sim, _ := New(cfg)
	tasks, err := workload.Generate(workload.Config{NumTasks: 200, Rate: 0.4, VarFrac: 0.1, Beta: 2}, cfg.PET, stats.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks {
		if tk.State != task.StateCompleted {
			continue
		}
		// A completed task must have received its full execution time:
		// finish - last start == remaining at last start, i.e. total
		// consumed + final run == TrueExec (within the eviction clamp,
		// which never applies to on-time completions).
		ran := tk.Finish - tk.Start
		if ran+tk.Consumed != tk.TrueExec[tk.Machine] && ran != 1 {
			t.Fatalf("task %d completed after %d+%d ticks, TrueExec %d",
				tk.ID, tk.Consumed, ran, tk.TrueExec[tk.Machine])
		}
	}
}

// TestPrunerConfigInteraction: with pruning disabled entirely (nil config),
// preemption can never trigger even when enabled.
func TestPrunerConfigInteraction(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	cfg.Pruner = nil // pruning off
	cfg.Preempt = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Generate(workload.Config{NumTasks: 150, Rate: 0.3, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if sim.Pruner() != nil {
		t.Error("pruner built despite nil config")
	}
	if sim.Preempted() != 0 {
		t.Error("preempted without a pruner")
	}
	_ = pruner.DefaultConfig() // keep import for clarity of intent
}
