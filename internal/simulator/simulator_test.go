package simulator

import (
	"testing"

	"taskprune/internal/heuristics"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// simPET builds a small 2×2 matrix with clear affinities.
func simPET(t *testing.T) *pet.Matrix {
	t.Helper()
	cfg := pet.BuildConfig{Samples: 400, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	m, err := pet.Build([][]float64{{10, 40}, {40, 10}}, cfg, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fixedTask builds a task with identical true exec on both machines.
func fixedTask(id int, typ task.Type, arrival, deadline, exec int64) *task.Task {
	tk := task.New(id, typ, arrival, deadline)
	tk.TrueExec = []int64{exec, exec}
	return tk
}

func baseConfig(t *testing.T, name string, matrix *pet.Matrix) Config {
	t.Helper()
	cfg, err := ConfigFor(name, matrix)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trim = 0 // unit tests inspect every task
	return cfg
}

func TestNewValidation(t *testing.T) {
	matrix := simPET(t)
	if _, err := New(Config{}); err == nil {
		t.Error("nil heuristic accepted")
	}
	h, _ := heuristics.New("MM")
	if _, err := New(Config{Heuristic: h}); err == nil {
		t.Error("missing PET accepted")
	}
	if _, err := New(Config{Heuristic: h, PET: matrix, QueueCap: -1}); err == nil {
		t.Error("negative queue capacity accepted")
	}
	if _, err := New(Config{Heuristic: h, PET: matrix, Prices: []float64{1}}); err == nil {
		t.Error("price/machine mismatch accepted")
	}
}

func TestConfigForDefaults(t *testing.T) {
	matrix := simPET(t)
	for _, name := range []string{"MM", "MSD", "MMU", "MOC"} {
		cfg := MustConfigFor(name, matrix)
		if cfg.Pruner != nil || cfg.EvictAtDeadline {
			t.Errorf("%s: baselines must not prune or evict", name)
		}
		if cfg.Mode != pmf.PendingDrop {
			t.Errorf("%s: mode = %v, want pending (scenario B estimates)", name, cfg.Mode)
		}
	}
	for _, name := range []string{"PAM", "PAMF"} {
		cfg := MustConfigFor(name, matrix)
		if cfg.Pruner == nil || !cfg.EvictAtDeadline || cfg.Mode != pmf.Evict {
			t.Errorf("%s: expected full scenario-C pruning config", name)
		}
	}
	if MustConfigFor("PAM", matrix).FairnessFactor != 0 {
		t.Error("PAM must not track fairness")
	}
	if MustConfigFor("PAMF", matrix).FairnessFactor != 0.05 {
		t.Error("PAMF fairness factor != the paper's 5%")
	}
	if _, err := ConfigFor("bogus", matrix); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

// TestSingleTaskCompletes: one task, ample deadline: completed on time and
// accounted.
func TestSingleTaskCompletes(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := fixedTask(0, 0, 5, 100, 10)
	st, err := sim.Run([]*task.Task{tk})
	if err != nil {
		t.Fatal(err)
	}
	if tk.State != task.StateCompleted {
		t.Fatalf("state = %v, want completed", tk.State)
	}
	if tk.Start != 5 || tk.Finish != 15 {
		t.Errorf("start/finish = %d/%d, want 5/15", tk.Start, tk.Finish)
	}
	if st.Completed != 1 || st.RobustnessPct != 100 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLateTaskMissesWithoutEviction: baselines let late tasks run to
// completion and count them missed.
func TestLateTaskMissesWithoutEviction(t *testing.T) {
	matrix := simPET(t)
	sim, _ := New(baseConfig(t, "MM", matrix))
	tk := fixedTask(0, 0, 0, 5, 20) // will finish at 20, deadline 5
	st, err := sim.Run([]*task.Task{tk})
	if err != nil {
		t.Fatal(err)
	}
	if tk.State != task.StateMissed {
		t.Fatalf("state = %v, want missed", tk.State)
	}
	if tk.Finish != 20 {
		t.Errorf("finish = %d, want 20 (ran to completion)", tk.Finish)
	}
	if st.Missed != 1 {
		t.Errorf("missed = %d", st.Missed)
	}
}

// TestEvictAtDeadline: with scenario-C semantics the executing task is
// killed at its deadline and the machine freed.
func TestEvictAtDeadline(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	sim, _ := New(cfg)
	doomed := fixedTask(0, 0, 0, 1000, 30)
	doomed.Deadline = 15 // mapped (robustness fine at t=0? exec mean 10, deadline 15 → ~0.9)... adjusted below
	st, err := sim.Run([]*task.Task{doomed})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	if doomed.State == task.StateMissed {
		t.Error("scenario C must never produce 'missed' (evicted at deadline instead)")
	}
	if doomed.State == task.StateDropped && doomed.Finish > 15 {
		t.Errorf("evicted at %d, want <= deadline 15", doomed.Finish)
	}
}

// TestFCFSQueueing: two tasks on one machine run in order.
func TestFCFSQueueing(t *testing.T) {
	cfgPET := pet.BuildConfig{Samples: 400, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	// Single machine so both tasks share a queue.
	matrix, err := pet.Build([][]float64{{10}}, cfgPET, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, "MM", matrix)
	sim, _ := New(cfg)
	a := task.New(0, 0, 0, 1000)
	a.TrueExec = []int64{10}
	b := task.New(1, 0, 0, 1000)
	b.TrueExec = []int64{10}
	if _, err := sim.Run([]*task.Task{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.State != task.StateCompleted || b.State != task.StateCompleted {
		t.Fatalf("states = %v/%v", a.State, b.State)
	}
	if !(a.Start < b.Start) {
		t.Errorf("FCFS violated: a starts %d, b starts %d", a.Start, b.Start)
	}
	if b.Start < a.Finish {
		t.Errorf("b started at %d before a finished at %d", b.Start, a.Finish)
	}
}

// TestExpiredBatchTaskDropped: a task whose deadline passes in the batch
// queue exits as dropped.
func TestExpiredBatchTaskDropped(t *testing.T) {
	cfgPET := pet.BuildConfig{Samples: 400, Bins: 16, MaxImpulses: 16, ShapeLo: 8, ShapeHi: 12}
	matrix, err := pet.Build([][]float64{{10}}, cfgPET, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := New(baseConfig(t, "MM", matrix))
	// One long task occupies the single machine+queue... queue cap 6 so the
	// second maps too; make the machine busy enough that the third task
	// expires in the batch queue: fill all 6 slots.
	var tasks []*task.Task
	for i := 0; i < 6; i++ {
		tk := task.New(i, 0, 0, 10_000)
		tk.TrueExec = []int64{100}
		tasks = append(tasks, tk)
	}
	victim := task.New(6, 0, 1, 50) // arrives while queues full, expires at 50
	victim.TrueExec = []int64{10}
	tasks = append(tasks, victim)
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if victim.State != task.StateDropped {
		t.Fatalf("victim state = %v, want dropped", victim.State)
	}
	if victim.Machine != -1 {
		t.Errorf("victim was mapped to machine %d", victim.Machine)
	}
}

// TestTrueExecMismatchRejected: tasks must carry one true exec per machine.
func TestTrueExecMismatchRejected(t *testing.T) {
	matrix := simPET(t)
	sim, _ := New(baseConfig(t, "MM", matrix))
	bad := task.New(0, 0, 0, 100)
	bad.TrueExec = []int64{5} // 2 machines
	if _, err := sim.Run([]*task.Task{bad}); err == nil {
		t.Error("mismatched TrueExec accepted")
	}
}

// TestPrunerEngagesUnderOversubscription: at a crushing load, PAM's pruner
// must engage and drop tasks.
func TestPrunerEngagesUnderOversubscription(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	sim, _ := New(cfg)
	rng := stats.NewRNG(77)
	wcfg := workload.Config{NumTasks: 300, Rate: 0.5, VarFrac: 0.1, Beta: 1.5}
	tasks, err := workload.Generate(wcfg, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Pruner() == nil {
		t.Fatal("PAM simulator has no pruner")
	}
	if sim.Pruner().Events() == 0 {
		t.Error("pruner observed no mapping events")
	}
	if st.Completed+st.Missed+st.Dropped != st.Window {
		t.Error("window accounting broken")
	}
	if st.Dropped == 0 {
		t.Error("no tasks dropped at 7x capacity; pruning apparently inert")
	}
}

// TestAllTasksAccounted: every generated task exits in exactly one terminal
// state, for every heuristic.
func TestAllTasksAccounted(t *testing.T) {
	matrix := simPET(t)
	rng := stats.NewRNG(99)
	wcfg := workload.Config{NumTasks: 200, Rate: 0.15, VarFrac: 0.1, Beta: 2}
	tasks, err := workload.Generate(wcfg, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range heuristics.AllNames() {
		// Fresh copies per heuristic: simulation mutates tasks.
		fresh := make([]*task.Task, len(tasks))
		for i, tk := range tasks {
			c := task.New(tk.ID, tk.Type, tk.Arrival, tk.Deadline)
			c.TrueExec = tk.TrueExec
			fresh[i] = c
		}
		sim, err := New(baseConfig(t, name, matrix))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(fresh)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Total != len(fresh) {
			t.Errorf("%s: %d tasks accounted, want %d", name, st.Total, len(fresh))
		}
		for _, tk := range fresh {
			if !tk.Done() {
				t.Errorf("%s: task %d left in state %v", name, tk.ID, tk.State)
			}
			if tk.State == task.StateCompleted && tk.Finish > tk.Deadline {
				t.Errorf("%s: task %d 'completed' after its deadline", name, tk.ID)
			}
		}
	}
}

// TestDeterminism: identical seeds and configs yield identical statistics.
func TestDeterminism(t *testing.T) {
	matrix := simPET(t)
	run := func() metrics.TrialStats {
		rng := stats.NewRNG(123)
		tasks, err := workload.Generate(workload.Config{NumTasks: 150, Rate: 0.2, VarFrac: 0.1, Beta: 2}, matrix, rng)
		if err != nil {
			t.Fatal(err)
		}
		sim, _ := New(baseConfig(t, "PAM", matrix))
		st, err := sim.Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Dropped != b.Dropped || a.Missed != b.Missed {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestCostAccounting: machine busy time is billed.
func TestCostAccounting(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Prices = []float64{1.0, 1.0}
	sim, _ := New(cfg)
	tk := fixedTask(0, 0, 0, 1000, 36)
	st, err := sim.Run([]*task.Task{tk})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCost <= 0 {
		t.Errorf("TotalCost = %v, want > 0", st.TotalCost)
	}
	if st.CostPerPct <= 0 {
		t.Errorf("CostPerPct = %v, want > 0", st.CostPerPct)
	}
}

// TestFairnessTrackerWiring: PAMF updates sufferage on completions.
func TestFairnessTrackerWiring(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAMF", matrix)
	sim, _ := New(cfg)
	rng := stats.NewRNG(31)
	tasks, err := workload.Generate(workload.Config{NumTasks: 200, Rate: 0.4, VarFrac: 0.1, Beta: 1.5}, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if sim.fairness == nil {
		t.Fatal("PAMF simulator has no fairness tracker")
	}
	// At this load some type must have accumulated sufferage at some point;
	// at minimum the tracker must be consistent (all values in [0,1]).
	for ti, s := range sim.fairness.Snapshot() {
		if s < 0 || s > 1 {
			t.Errorf("sufferage[%d] = %v out of range", ti, s)
		}
	}
}

// TestStaleCompletionIgnored: when the pruner kills an executing task, its
// scheduled completion event must not corrupt the machine.
func TestStaleCompletionIgnored(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	// Hair-trigger pruner: drops engage immediately and the executing task
	// is always below threshold.
	pc := pruner.DefaultConfig()
	pc.ToggleOn = 0.0001
	pc.DropThreshold = 1.0
	pc.DeferThreshold = 1.0
	cfg.Pruner = &pc
	sim, _ := New(cfg)
	rng := stats.NewRNG(13)
	tasks, err := workload.Generate(workload.Config{NumTasks: 100, Rate: 0.3, VarFrac: 0.1, Beta: 2}, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 100 {
		t.Errorf("accounted %d, want 100", st.Total)
	}
}

// TestMappingEventsFire: mapping events occur on arrivals and completions.
func TestMappingEventsFire(t *testing.T) {
	matrix := simPET(t)
	sim, _ := New(baseConfig(t, "MM", matrix))
	tasks := []*task.Task{fixedTask(0, 0, 0, 500, 10), fixedTask(1, 1, 3, 500, 10)}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	// 2 arrivals + 2 completions = 4 mapping events.
	if got := sim.MappingEvents(); got != 4 {
		t.Errorf("MappingEvents = %d, want 4", got)
	}
}
