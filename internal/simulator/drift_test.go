package simulator

import (
	"bytes"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/workload"
)

// TestDriftMatchesDegradeStaircase pins the drift scenario extension: a
// drift event is, by definition, the Degrade staircase obtained by
// sampling workload.RampRate at its step ticks — so a trial run under the
// drift must replay byte-identically to the same trial under the
// hand-built staircase. This is the regression test for the PET-drift
// entry point: any change to the expansion (step placement, factor
// interpolation, endpoint handling) shows up as a trace divergence here.
func TestDriftMatchesDegradeStaircase(t *testing.T) {
	const (
		start, end = 100, 500
		machineIdx = 0
		from, to   = 1.0, 3.0
		steps      = 4
	)
	drift := scenario.New("drift").DriftAt(start, end, machineIdx, from, to, steps)
	stairs := scenario.New("stairs")
	ramp := workload.RampRate(start, end, from, to)
	for i := 0; i <= steps; i++ {
		tick := int64(start + i*(end-start)/steps)
		stairs.DegradeAt(tick, machineIdx, ramp(float64(tick)))
	}
	for _, name := range []string{"PAM", "MM"} {
		got := goldenTrace(t, name, drift)
		want := goldenTrace(t, name, stairs)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: drift trace diverges from its Degrade staircase", name)
		}
		// The ramp must actually fire: the trial spans the window, so the
		// trace needs one m-degraded event per step plus the start point.
		degraded := 0
		for _, line := range bytes.Split(got, []byte("\n")) {
			if bytes.Contains(line, []byte("m-degraded")) {
				degraded++
			}
		}
		if degraded != steps+1 {
			t.Errorf("%s: drift fired %d degrade steps, want %d", name, degraded, steps+1)
		}
	}
}
