package simulator

import (
	"reflect"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// churnScenario is the canonical mid-trial churn: machine 1 fails (queue
// requeued), recovers later, and machine 0 is degraded for a stretch.
func churnScenario() *scenario.Scenario {
	return scenario.New("churn").
		FailAt(300, 1, scenario.Requeue).
		RecoverAt(600, 1).
		DegradeAt(200, 0, 2).
		DegradeAt(800, 0, 1)
}

func TestScenarioValidationAtNew(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("bad").FailAt(10, 7, scenario.Requeue) // machine 7 of 2
	if _, err := New(cfg); err == nil {
		t.Error("out-of-fleet scenario accepted")
	}
	cfg.Scenario = scenario.New("bad").DegradeAt(10, 0, -1)
	if _, err := New(cfg); err == nil {
		t.Error("negative degradation factor accepted")
	}
}

// TestScenarioFailureRequeuesTasks: tasks on a failing machine return to
// the batch queue and finish elsewhere.
func TestScenarioFailureRequeuesTasks(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("fail").FailAt(12, 0, scenario.Requeue)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Type 0 prefers machine 0 (mean 10 vs 40): both tasks land there, the
	// failure at tick 12 interrupts the second (and likely the first).
	a, b := fixedTask(0, 0, 0, 10_000, 30), fixedTask(1, 0, 0, 10_000, 30)
	if _, err := sim.Run([]*task.Task{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.State != task.StateCompleted || b.State != task.StateCompleted {
		t.Fatalf("states %v/%v, want completed (requeued tasks must finish on the survivor)", a.State, b.State)
	}
	if sim.Requeued() == 0 {
		t.Error("failure requeued nothing")
	}
	if a.Machine != 1 || b.Machine != 1 {
		t.Errorf("tasks finished on machines %d/%d, want the surviving machine 1", a.Machine, b.Machine)
	}
}

// TestScenarioFailureAtCompletionTick: a task whose genuine completion
// lands on the exact tick of its machine's failure has finished its work —
// it must exit completed, not be requeued or dropped (fleet events are
// scheduled ahead of completion events in the queue's tie order, so the
// failure handler has to look for the boundary case itself).
func TestScenarioFailureAtCompletionTick(t *testing.T) {
	matrix := simPET(t)
	for _, policy := range []scenario.Policy{scenario.Requeue, scenario.Drop} {
		cfg := baseConfig(t, "MM", matrix)
		cfg.Scenario = scenario.New("boundary").FailAt(30, 0, policy)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tk := fixedTask(0, 0, 0, 10_000, 30) // starts at 0 on machine 0, finishes at exactly 30
		if _, err := sim.Run([]*task.Task{tk}); err != nil {
			t.Fatal(err)
		}
		if tk.Machine != 0 {
			t.Skipf("task mapped to machine %d; PET draw changed affinity", tk.Machine)
		}
		if tk.State != task.StateCompleted || tk.Finish != 30 {
			t.Errorf("policy %v: state %v finish %d, want completed at 30", policy, tk.State, tk.Finish)
		}
		if sim.Requeued() != 0 {
			t.Errorf("policy %v: completed task was requeued", policy)
		}
	}
}

// TestScenarioFailureDropPolicy: under the drop policy the failing
// machine's tasks exit the system.
func TestScenarioFailureDropPolicy(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("fail-drop").FailAt(12, 0, scenario.Drop)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fixedTask(0, 0, 0, 10_000, 30), fixedTask(1, 0, 0, 10_000, 30)
	if _, err := sim.Run([]*task.Task{a, b}); err != nil {
		t.Fatal(err)
	}
	if sim.Requeued() != 0 {
		t.Error("drop policy requeued tasks")
	}
	dropped := 0
	for _, tk := range []*task.Task{a, b} {
		if !tk.Done() {
			t.Errorf("task %d left in state %v", tk.ID, tk.State)
		}
		if tk.State == task.StateDropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("drop policy dropped nothing")
	}
}

// TestScenarioInitialDownJoinsLater: a machine absent at tick 0 receives
// no work until its join event.
func TestScenarioInitialDownJoinsLater(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("elastic").StartDown(1).RecoverAt(50, 1)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	cfg2 := cfg
	cfg2.Trace = rec
	sim, err = New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Type 1 tasks prefer machine 1 — but it is absent until tick 50.
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tk := task.New(i, 1, int64(i), 10_000)
		tk.TrueExec = []int64{40, 10}
		tasks = append(tasks, tk)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks {
		if tk.State != task.StateCompleted {
			t.Fatalf("task %d finished %v, want completed", tk.ID, tk.State)
		}
	}
	for _, e := range rec.Events() {
		if e.Kind == trace.TaskStarted && e.Machine == 1 && e.Tick < 50 {
			t.Fatalf("machine 1 started task %d at tick %d while absent", e.TaskID, e.Tick)
		}
	}
}

// TestScenarioDegradeStretchesExecution: a task started on a ×2-degraded
// machine takes twice its true execution time, and restoring the factor
// returns new runs to nominal.
func TestScenarioDegradeStretchesExecution(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("slow").DegradeAt(0, 0, 2).DegradeAt(100, 0, 1)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both tasks are type 0 (machine 0 affinity). The first runs degraded
	// (20 wall ticks for 10 of work), the second starts after the restore.
	a := fixedTask(0, 0, 1, 10_000, 10)
	b := fixedTask(1, 0, 150, 10_000, 10)
	if _, err := sim.Run([]*task.Task{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.Machine != 0 || b.Machine != 0 {
		t.Skipf("tasks mapped to %d/%d, not machine 0; PET draw changed affinity", a.Machine, b.Machine)
	}
	if got := a.Finish - a.Start; got != 20 {
		t.Errorf("degraded run took %d ticks, want 20", got)
	}
	if got := b.Finish - b.Start; got != 10 {
		t.Errorf("restored run took %d ticks, want 10", got)
	}
}

// TestScenarioDeterminism: a mid-trial failure + recovery (plus degradation
// and a burst) must replay byte-identically under every robustness-based
// heuristic — the acceptance bar for the scenario engine.
func TestScenarioDeterminism(t *testing.T) {
	matrix := simPET(t)
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(t, name, matrix)
			cfg.Scenario = churnScenario().BurstWindow(100, 400, 2)
			run := func() ([]trace.Event, interface{}) {
				ev, st := runTraced(t, cfg, matrix, 21)
				return ev, st
			}
			ev1, st1 := run()
			ev2, st2 := run()
			if !reflect.DeepEqual(ev1, ev2) {
				t.Fatal("scenario trace not deterministic across runs")
			}
			if !reflect.DeepEqual(st1, st2) {
				t.Fatal("scenario stats not deterministic across runs")
			}
			sawFail, sawRecover := false, false
			for _, e := range ev1 {
				switch e.Kind {
				case trace.MachineFailed:
					sawFail = true
				case trace.MachineRecovered:
					sawRecover = true
				}
			}
			if !sawFail || !sawRecover {
				t.Error("trace is missing the fleet events")
			}
		})
	}
}

// TestScenarioAllTasksAccounted: under heavy churn every task still exits
// in exactly one terminal state, for every heuristic.
func TestScenarioAllTasksAccounted(t *testing.T) {
	matrix := simPET(t)
	rng := stats.NewRNG(55)
	wcfg := workload.Config{NumTasks: 200, Rate: 0.2, VarFrac: 0.1, Beta: 2}
	tasks, err := workload.Generate(wcfg, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.New("heavy-churn").
		FailAt(150, 0, scenario.Drop).
		RecoverAt(320, 0).
		FailAt(400, 1, scenario.Requeue).
		RecoverAt(550, 1).
		DegradeAt(100, 1, 3).
		DegradeAt(700, 1, 1)
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM", "MSD", "MMU"} {
		fresh := make([]*task.Task, len(tasks))
		for i, tk := range tasks {
			c := task.New(tk.ID, tk.Type, tk.Arrival, tk.Deadline)
			c.TrueExec = tk.TrueExec
			fresh[i] = c
		}
		cfg := baseConfig(t, name, matrix)
		cfg.Scenario = sc
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(fresh)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Total != len(fresh) {
			t.Errorf("%s: %d tasks accounted, want %d", name, st.Total, len(fresh))
		}
		for _, tk := range fresh {
			if !tk.Done() {
				t.Errorf("%s: task %d left in state %v", name, tk.ID, tk.State)
			}
		}
	}
}
