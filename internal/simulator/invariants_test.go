package simulator

import (
	"math/rand"
	"testing"

	"taskprune/internal/heuristics"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// TestRandomizedInvariants fuzzes system configurations — random fleet
// shapes, queue capacities, loads, deadline slacks, pruning knobs,
// extensions — and checks the accounting invariants that must hold in every
// universe:
//
//  1. every task reaches exactly one terminal state;
//  2. no task "completes" after its deadline;
//  3. a completed task ran on exactly one machine and its timeline is
//     consistent (arrival <= start, start < finish);
//  4. trial statistics partition the window;
//  5. machine busy time never exceeds the trial span.
func TestRandomizedInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz-style invariants are slow")
	}
	heurNames := heuristics.AllNames()
	for iter := 0; iter < 12; iter++ {
		r := rand.New(rand.NewSource(int64(1000 + iter)))

		// Random fleet: 1-4 types × 1-5 machines, means in [8, 120].
		nTypes := 1 + r.Intn(4)
		nMachines := 1 + r.Intn(5)
		means := make([][]float64, nTypes)
		for ti := range means {
			means[ti] = make([]float64, nMachines)
			for mi := range means[ti] {
				means[ti][mi] = 8 + r.Float64()*112
			}
		}
		matrix, err := pet.Build(means, pet.BuildConfig{
			Samples: 150, Bins: 12, MaxImpulses: 12,
			ShapeLo: 1, ShapeHi: 20,
		}, stats.NewRNG(int64(iter)))
		if err != nil {
			t.Fatal(err)
		}

		name := heurNames[r.Intn(len(heurNames))]
		cfg := MustConfigFor(name, matrix)
		cfg.Trim = 0
		cfg.QueueCap = 1 + r.Intn(8)
		if cfg.Pruner != nil {
			pc := *cfg.Pruner
			pc.DropThreshold = r.Float64()
			pc.DeferThreshold = pc.DropThreshold + (1-pc.DropThreshold)*r.Float64()
			pc.Lambda = 0.1 + 0.9*r.Float64()
			pc.UseSchmitt = r.Intn(2) == 0
			pc.PerTaskAdjust = r.Intn(2) == 0
			cfg.Pruner = &pc
			cfg.Preempt = r.Intn(2) == 0
			if r.Intn(2) == 0 {
				cfg.ApproxFraction = 0.3 + 0.6*r.Float64()
			}
		}

		capacity := float64(nMachines) / matrix.GrandMean()
		load := 0.5 + 3.5*r.Float64() // undersubscribed through crushed
		wcfg := workload.Config{
			NumTasks: 80 + r.Intn(200),
			Rate:     capacity * load,
			VarFrac:  r.Float64(),
			Beta:     0.5 + 3*r.Float64(),
		}
		tasks, err := workload.Generate(wcfg, matrix, stats.NewRNG(int64(500+iter)))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(tasks)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, name, err)
		}

		// (1), (2), (3)
		for _, tk := range tasks {
			if !tk.Done() {
				t.Fatalf("iter %d (%s): task %d non-terminal: %v", iter, name, tk.ID, tk.State)
			}
			switch tk.State {
			case task.StateCompleted:
				if tk.Finish > tk.Deadline {
					t.Fatalf("iter %d: task %d completed late (finish %d > deadline %d)", iter, tk.ID, tk.Finish, tk.Deadline)
				}
				fallthrough
			case task.StateMissed, task.StateApprox:
				if tk.Machine < 0 || tk.Machine >= nMachines {
					t.Fatalf("iter %d: executed task %d has machine %d", iter, tk.ID, tk.Machine)
				}
				if tk.Start < tk.Arrival {
					t.Fatalf("iter %d: task %d started before arrival", iter, tk.ID)
				}
				if tk.Finish <= tk.Start && tk.Finish != tk.Start+1 {
					// one-tick floor allows finish == start+1
					t.Fatalf("iter %d: task %d finish %d <= start %d", iter, tk.ID, tk.Finish, tk.Start)
				}
			}
		}
		// (4)
		if st.Completed+st.Missed+st.Dropped+st.Approx != st.Window {
			t.Fatalf("iter %d: window partition broken: %+v", iter, st)
		}
		if st.Total != len(tasks) {
			t.Fatalf("iter %d: total %d != %d", iter, st.Total, len(tasks))
		}
		// (5)
		for _, m := range sim.Machines() {
			if m.BusyTicks(sim.Now()) > sim.Now() {
				t.Fatalf("iter %d: machine %d busy %d > span %d", iter, m.ID, m.BusyTicks(sim.Now()), sim.Now())
			}
		}
	}
}

// TestOversubscriptionMonotonicity: for the pruning mapper, robustness must
// not improve as load rises (averaged over trials) — the most basic sanity
// property of the whole evaluation.
func TestOversubscriptionMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial comparison is slow")
	}
	matrix := simPET(t)
	meanRob := func(rate float64) float64 {
		var sum float64
		const trials = 4
		for trial := int64(0); trial < trials; trial++ {
			cfg := baseConfig(t, "PAM", matrix)
			sim, _ := New(cfg)
			tasks, err := workload.Generate(workload.Config{NumTasks: 300, Rate: rate, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(trial+7))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.RobustnessPct
		}
		return sum / trials
	}
	low, mid, high := meanRob(0.08), meanRob(0.16), meanRob(0.32)
	t.Logf("robustness at 1x/2x/4x capacity: %.1f / %.1f / %.1f", low, mid, high)
	const slack = 3.0 // trial noise tolerance in percentage points
	if mid > low+slack || high > mid+slack {
		t.Errorf("robustness not monotone in load: %.1f, %.1f, %.1f", low, mid, high)
	}
}

// TestDeferThresholdEffect: raising the deferring threshold from a low
// value to the paper's 90% must improve PAM robustness at heavy load — the
// finding of Figure 5.
func TestDeferThresholdEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial comparison is slow")
	}
	matrix := simPET(t)
	meanRob := func(deferTh float64) float64 {
		var sum float64
		const trials = 4
		for trial := int64(0); trial < trials; trial++ {
			cfg := baseConfig(t, "PAM", matrix)
			pc := *cfg.Pruner
			pc.DropThreshold = 0.25
			pc.DeferThreshold = deferTh
			cfg.Pruner = &pc
			sim, _ := New(cfg)
			tasks, err := workload.Generate(workload.Config{NumTasks: 400, Rate: 0.3, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(trial+31))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.RobustnessPct
		}
		return sum / trials
	}
	lowDefer, highDefer := meanRob(0.30), meanRob(0.90)
	t.Logf("robustness defer=30%%: %.1f, defer=90%%: %.1f", lowDefer, highDefer)
	if highDefer <= lowDefer {
		t.Errorf("high deferring threshold did not help: %.1f vs %.1f", highDefer, lowDefer)
	}
}

// TestFairnessReducesVariance: PAMF with a 5% factor must cut per-type
// completion variance versus a 0% factor at heavy load — Figure 6's
// finding.
func TestFairnessReducesVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial comparison is slow")
	}
	matrix := experimentsSPEC(t)
	meanVar := func(factor float64) float64 {
		var sum float64
		const trials = 3
		for trial := int64(0); trial < trials; trial++ {
			cfg := MustConfigFor("PAMF", matrix)
			cfg.Trim = 50
			cfg.FairnessFactor = factor
			sim, _ := New(cfg)
			tasks, err := workload.Generate(workload.Config{NumTasks: 600, Rate: 0.19, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(trial+11))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.TypeVariancePct
		}
		return sum / trials
	}
	noFair, withFair := meanVar(0), meanVar(0.05)
	t.Logf("type variance ϑ=0: %.1f, ϑ=5%%: %.1f", noFair, withFair)
	if withFair >= noFair {
		t.Errorf("fairness factor did not reduce variance: %.1f vs %.1f", withFair, noFair)
	}
}

// experimentsSPEC builds the 12×8 SPEC-like matrix (without importing the
// experiments package, which would create a cycle through simulator).
func experimentsSPEC(t *testing.T) *pet.Matrix {
	t.Helper()
	cfg := pet.DefaultBuildConfig()
	cfg.Samples = 200
	m, err := pet.Build(pet.SPECLikeMeans(), cfg, stats.NewRNG(0xBEEF))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPrunerNeverRunsForBaselines: even with a pruner config present,
// baselines (UsesPruning() == false) must not get one.
func TestPrunerNeverRunsForBaselines(t *testing.T) {
	matrix := simPET(t)
	cfg := MustConfigFor("MM", matrix)
	pc := pruner.DefaultConfig()
	cfg.Pruner = &pc // deliberately miswired
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Pruner() != nil {
		t.Error("baseline got a pruner")
	}
	_ = pmf.NoDrop // document that baselines run scenario-A/B estimates
}
