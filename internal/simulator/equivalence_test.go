package simulator

import (
	"reflect"
	"testing"

	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/scenario"
	"taskprune/internal/stats"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// runTraced simulates one fixed workload under cfg and returns the full
// decision trace plus the trial statistics.
func runTraced(t *testing.T, cfg Config, matrix *pet.Matrix, seed int64) ([]trace.Event, metrics.TrialStats) {
	t.Helper()
	rng := stats.NewRNG(seed)
	wcfg := workload.Config{
		NumTasks: 250,
		Rate:     workload.RateForLevel(workload.Level34k),
		VarFrac:  0.10,
		Beta:     2.0,
	}
	cfg.Scenario.ApplyBursts(&wcfg)
	tasks, err := workload.Generate(wcfg, matrix, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	cfg.Trace = rec
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events(), st
}

// TestCachedEvalEquivalence: the incremental evaluation cache (per-(task,
// machine) slots keyed by tail stamps, plus the cross-event tail memo) must
// be a pure optimization — the same workload and seed must yield a
// byte-identical decision trace and identical robustness statistics with
// the cache enabled and with NaiveEval recomputing everything, under all
// three dropping scenarios.
func TestCachedEvalEquivalence(t *testing.T) {
	matrix := simPET(t)
	for _, name := range []string{"PAM", "PAMF"} {
		for _, mode := range []pmf.DropMode{pmf.NoDrop, pmf.PendingDrop, pmf.Evict} {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				cfg := MustConfigFor(name, matrix)
				cfg.Mode = mode
				cfg.EvictAtDeadline = mode == pmf.Evict

				cached := cfg
				cached.NaiveEval = false
				naive := cfg
				naive.NaiveEval = true

				for seed := int64(1); seed <= 3; seed++ {
					evC, stC := runTraced(t, cached, matrix, seed)
					evN, stN := runTraced(t, naive, matrix, seed)
					if !reflect.DeepEqual(evC, evN) {
						for i := range evC {
							if i >= len(evN) || evC[i] != evN[i] {
								t.Fatalf("seed %d: traces diverge at event %d: cached %v, naive %v",
									seed, i, evC[i], evN[i])
							}
						}
						t.Fatalf("seed %d: cached trace has %d events, naive %d", seed, len(evC), len(evN))
					}
					if !reflect.DeepEqual(stC, stN) {
						t.Fatalf("seed %d: stats diverge:\ncached: %+v\nnaive:  %+v", seed, stC, stN)
					}
				}
			})
		}
	}
}

// TestCachedEvalEquivalenceMOC extends the cache equivalence check to MOC,
// whose permutation search reads the cached tails directly.
func TestCachedEvalEquivalenceMOC(t *testing.T) {
	matrix := simPET(t)
	cfg := MustConfigFor("MOC", matrix)
	for _, mode := range []pmf.DropMode{pmf.NoDrop, pmf.PendingDrop, pmf.Evict} {
		cfg.Mode = mode
		naive := cfg
		naive.NaiveEval = true
		evC, stC := runTraced(t, cfg, matrix, 7)
		evN, stN := runTraced(t, naive, matrix, 7)
		if !reflect.DeepEqual(evC, evN) || !reflect.DeepEqual(stC, stN) {
			t.Fatalf("mode %v: cached and naive MOC runs diverge", mode)
		}
	}
}

// TestCachedEvalEquivalenceUnderScenario is the churn counterpart: fleet
// events invalidate evaluation-cache columns and tail memos mid-trial
// (failure empties a queue, recovery revives a column, degradation swaps
// every scaled profile on a machine), and the cached run must still retrace
// the naive run byte for byte through all of it.
func TestCachedEvalEquivalenceUnderScenario(t *testing.T) {
	matrix := simPET(t)
	scenarios := map[string]*scenario.Scenario{
		"fail-requeue-recover": scenario.New("frr").
			FailAt(300, 1, scenario.Requeue).
			RecoverAt(600, 1),
		"fail-drop": scenario.New("fd").
			FailAt(250, 0, scenario.Drop).
			RecoverAt(500, 0),
		"degrade-mid-trial": scenario.New("deg").
			DegradeAt(200, 0, 2).
			DegradeAt(700, 0, 1).
			DegradeAt(350, 1, 1.5),
		"everything-at-once": scenario.New("all").
			StartDown(1).
			RecoverAt(150, 1).
			DegradeAt(250, 0, 2.5).
			FailAt(400, 0, scenario.Requeue).
			RecoverAt(650, 0).
			BurstWindow(100, 500, 3),
	}
	for _, name := range []string{"PAM", "PAMF", "MOC"} {
		for scName, sc := range scenarios {
			t.Run(name+"/"+scName, func(t *testing.T) {
				cfg := MustConfigFor(name, matrix)
				cfg.Scenario = sc

				cached := cfg
				cached.NaiveEval = false
				naive := cfg
				naive.NaiveEval = true

				for seed := int64(1); seed <= 2; seed++ {
					evC, stC := runTraced(t, cached, matrix, seed)
					evN, stN := runTraced(t, naive, matrix, seed)
					if !reflect.DeepEqual(evC, evN) {
						for i := range evC {
							if i >= len(evN) || evC[i] != evN[i] {
								t.Fatalf("seed %d: traces diverge at event %d: cached %v, naive %v",
									seed, i, evC[i], evN[i])
							}
						}
						t.Fatalf("seed %d: cached trace has %d events, naive %d", seed, len(evC), len(evN))
					}
					if !reflect.DeepEqual(stC, stN) {
						t.Fatalf("seed %d: stats diverge:\ncached: %+v\nnaive:  %+v", seed, stC, stN)
					}
				}
			})
		}
	}
}
