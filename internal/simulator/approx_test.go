package simulator

import (
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/task"
	"taskprune/internal/workload"
)

// TestApproxCompletionOnEviction: an evicted task that received enough of
// its execution exits as an approximate completion; one that did not exits
// as dropped.
func TestApproxCompletionOnEviction(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	cfg.ApproxFraction = 0.5
	// Disable deferring/dropping so the marginal tasks actually get mapped;
	// eviction-at-deadline (the mechanism under test) stays on.
	cfg.Pruner = nil

	// Task needs 20 ticks, deadline allows ~12 of them after a start at 0:
	// received 12/20 = 60% >= 50% -> approximate completion.
	sim, _ := New(cfg)
	enough := fixedTask(0, 0, 0, 12, 20)
	if _, err := sim.Run([]*task.Task{enough}); err != nil {
		t.Fatal(err)
	}
	if enough.State != task.StateApprox {
		t.Errorf("60%%-executed evictee state = %v, want approx", enough.State)
	}

	// Same setup with a tighter deadline: 6/20 = 30% < 50% -> dropped.
	sim2, _ := New(cfg)
	tooLittle := fixedTask(0, 0, 0, 6, 20)
	if _, err := sim2.Run([]*task.Task{tooLittle}); err != nil {
		t.Fatal(err)
	}
	if tooLittle.State != task.StateDropped {
		t.Errorf("30%%-executed evictee state = %v, want dropped", tooLittle.State)
	}
}

// TestApproxDisabledByDefault: without the extension every evictee drops.
func TestApproxDisabledByDefault(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	sim, _ := New(cfg)
	evictee := fixedTask(0, 0, 0, 12, 20)
	if _, err := sim.Run([]*task.Task{evictee}); err != nil {
		t.Fatal(err)
	}
	if evictee.State == task.StateApprox {
		t.Error("approximate completion with extension disabled")
	}
}

// TestApproxValidation: out-of-range fractions rejected.
func TestApproxValidation(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	cfg.ApproxFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("ApproxFraction 1.5 accepted")
	}
}

// TestApproxCountsInMetrics: quality-weighted robustness credits half a
// completion per approximate exit and the plain robustness is unchanged.
func TestApproxCountsInMetrics(t *testing.T) {
	matrix := simPET(t)
	run := func(frac float64) (rob, quality float64, approx int) {
		cfg := baseConfig(t, "PAM", matrix)
		cfg.ApproxFraction = frac
		sim, _ := New(cfg)
		tasks, err := workload.Generate(workload.Config{NumTasks: 400, Rate: 0.3, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		return st.RobustnessPct, st.QualityPct, st.Approx
	}
	robOff, qualOff, approxOff := run(0)
	robOn, qualOn, approxOn := run(0.5)
	if approxOff != 0 {
		t.Errorf("approx completions with extension off: %d", approxOff)
	}
	if robOn != robOff {
		t.Errorf("plain robustness changed: %v vs %v (accounting must not affect scheduling)", robOn, robOff)
	}
	if qualOff != robOff {
		t.Errorf("quality == robustness expected with extension off: %v vs %v", qualOff, robOff)
	}
	if approxOn > 0 && qualOn <= robOn {
		t.Errorf("quality %v should exceed robustness %v with %d approx exits", qualOn, robOn, approxOn)
	}
}
