package simulator

import (
	"bytes"
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/telemetry"
	"taskprune/internal/workload"
)

// TestTelemetryProbesPopulated runs a full PAM trial with telemetry and
// phase timing on and checks that every probe family carries data and the
// event-path counters reconcile with the trial statistics.
func TestTelemetryProbesPopulated(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	cfg.Telemetry = &telemetry.Options{SampleEvery: 50, RingCap: 128}
	cfg.PhaseTimer = telemetry.NewPhaseTimer()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Generate(workload.Config{NumTasks: 300, Rate: 0.5, VarFrac: 0.1, Beta: 1.5}, matrix, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}

	snap := sim.Telemetry().Snapshot()
	vals := map[string]float64{}
	for _, s := range snap.Scalars {
		vals[s.Name] = s.Value
	}
	if vals["arrivals_total"] != float64(st.Total) {
		t.Errorf("arrivals_total = %v, want %d", vals["arrivals_total"], st.Total)
	}
	// Exit counters cover every task (TrialStats windows its counts), so
	// they must reconcile with arrivals, not with the windowed stats.
	exits := vals["completed_total"] + vals["missed_total"] + vals["dropped_total"] + vals["approx_total"]
	if exits != vals["arrivals_total"] {
		t.Errorf("exit counters sum to %v, want arrivals %v", exits, vals["arrivals_total"])
	}
	if vals["completed_total"] == 0 || vals["dropped_total"] == 0 {
		t.Errorf("oversubscribed PAM trial should both complete and drop tasks: %v", vals)
	}
	if vals["mapping_events_total"] == 0 {
		t.Error("no mapping events counted")
	}
	if vals["pruner_drops_total"] == 0 {
		t.Error("pruner drops not mirrored (PAM at 7x load must prune)")
	}
	if vals["eval_cache_hits_total"]+vals["eval_cache_misses_total"] == 0 {
		t.Error("eval-cache mirrors empty")
	}
	if vals["arena_blocks_highwater"] == 0 {
		t.Error("arena high-water gauge empty")
	}
	var batch *telemetry.HistValue
	for i := range snap.Hists {
		if snap.Hists[i].Name == "mapping_batch_size" {
			batch = &snap.Hists[i]
		}
	}
	if batch == nil || batch.Count != int64(vals["mapping_events_total"]) {
		t.Errorf("batch-size histogram count does not match mapping events")
	}

	s := sim.TelemetrySampler()
	if s.Len() == 0 {
		t.Fatal("sampler recorded no rows")
	}
	last := s.Row(s.Len() - 1)
	if last[0] != float64(sim.Now()) {
		t.Errorf("final row flushed at %v, want sim clock %d", last[0], sim.Now())
	}
	var csv bytes.Buffer
	if err := telemetry.WriteSamplersCSV(&csv, []telemetry.ScopedSampler{{Scope: "sim", S: s}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("robustness_pct")) {
		t.Fatalf("CSV missing robustness column:\n%s", csv.Bytes())
	}

	bd := cfg.PhaseTimer.Breakdown()
	for _, p := range []telemetry.Phase{telemetry.PhaseAdmit, telemetry.PhaseStep, telemetry.PhaseEval, telemetry.PhaseConvolve, telemetry.PhaseOther} {
		if bd[p].Count == 0 {
			t.Errorf("phase %s recorded no spans", p)
		}
	}
}

// TestTelemetryDisabledIsInert: with no Options the simulator hands out nil
// telemetry handles and a trial behaves identically (the goldens pin the
// byte-level contract; this pins the accessor surface).
func TestTelemetryDisabledIsInert(t *testing.T) {
	matrix := simPET(t)
	sim, err := New(baseConfig(t, "PAM", matrix))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Telemetry() != nil || sim.TelemetrySampler() != nil {
		t.Fatal("telemetry handles non-nil with telemetry disabled")
	}
}
