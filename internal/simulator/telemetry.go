package simulator

import "taskprune/internal/telemetry"

// simProbes is the simulator's probe catalog: one handle per metric, all
// nil (inlined no-ops) when telemetry is disabled. Counters on event paths
// are incremented in place; everything else is refreshed lazily by
// prepareSample, so the hot path pays nothing between sample boundaries.
type simProbes struct {
	// Event-path counters.
	arrivals      *telemetry.Counter
	completed     *telemetry.Counter
	approx        *telemetry.Counter
	missed        *telemetry.Counter
	dropped       *telemetry.Counter
	mappingEvents *telemetry.Counter

	// Sample-time mirrors of pre-existing engine counters.
	prunerDrops *telemetry.Counter
	evicted     *telemetry.Counter
	preempted   *telemetry.Counter
	requeued    *telemetry.Counter
	restored    *telemetry.Counter
	checkpoints *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter

	// Sample-time gauges.
	eventDepth  *telemetry.Gauge
	batchDepth  *telemetry.Gauge
	queuedLoad  *telemetry.Gauge
	machinesUp  *telemetry.Gauge
	arenaHW     *telemetry.Gauge
	robustness  *telemetry.Gauge
	arrivalRate *telemetry.Gauge

	// Distribution of the batch-queue size seen by each mapping event.
	batchSize *telemetry.Histogram
}

// batchSizeBounds buckets the per-mapping-event batch depth.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

func newSimProbes(r *telemetry.Registry) simProbes {
	return simProbes{
		arrivals:      r.Counter("arrivals_total", "tasks admitted into the batch queue"),
		completed:     r.Counter("completed_total", "tasks completed on time"),
		approx:        r.Counter("approx_total", "tasks exiting as approximate completions"),
		missed:        r.Counter("missed_total", "tasks finishing after their deadlines"),
		dropped:       r.Counter("dropped_total", "tasks dropped (deadline, pruner, failures)"),
		mappingEvents: r.Counter("mapping_events_total", "mapping events fired"),
		prunerDrops:   r.Counter("pruner_drops_total", "tasks dropped by the pruning mechanism"),
		evicted:       r.Counter("evicted_total", "executing tasks killed at their deadlines"),
		preempted:     r.Counter("preempted_total", "pruner preemptions (gray-zone pauses)"),
		requeued:      r.Counter("requeued_total", "tasks requeued by machine/DC failures"),
		restored:      r.Counter("restored_total", "failure requeues resumed from a checkpoint"),
		checkpoints:   r.Counter("checkpoints_total", "checkpoint writes"),
		cacheHits:     r.Counter("eval_cache_hits_total", "phase-one evaluations served from the eval cache"),
		cacheMisses:   r.Counter("eval_cache_misses_total", "phase-one evaluations recomputed on cache miss"),
		eventDepth:    r.Gauge("event_queue_depth", "pending internal events (completions + fleet events)"),
		batchDepth:    r.Gauge("batch_queue_depth", "tasks waiting in the batch queue"),
		queuedLoad:    r.Gauge("machine_queued_load", "tasks held by machine queues, executing included"),
		machinesUp:    r.Gauge("machines_up", "alive machines in this fleet"),
		arenaHW:       r.Gauge("arena_blocks_highwater", "peak 512KiB arena blocks held by one mapping event"),
		robustness:    r.Gauge("robustness_pct", "100 * on-time completions / exits so far"),
		arrivalRate:   r.Gauge("arrival_rate", "arrivals per simulated tick over the last sample interval"),
		batchSize:     r.Histogram("mapping_batch_size", "batch-queue depth at each mapping event", batchSizeBounds),
	}
}

// prepareSample refreshes the lazily maintained probes just before the
// sampler records a row. Everything read here is a pure function of the
// simulator's deterministic state at the sample boundary, so sampled rows
// replay byte-for-byte with the decision stream.
func (s *Simulator) prepareSample() {
	p := &s.pr
	p.eventDepth.Set(float64(s.events.Len()))
	p.batchDepth.Set(float64(len(s.batch)))
	queued, up := 0, 0
	for _, m := range s.machines {
		queued += m.QueueLen()
		if m.Alive() {
			up++
		}
	}
	p.queuedLoad.Set(float64(queued))
	p.machinesUp.Set(float64(up))
	p.arenaHW.Set(float64(s.arena.HighWater()))
	p.prunerDrops.Sync(int64(s.droppedByPruner))
	p.evicted.Sync(int64(s.evicted))
	p.preempted.Sync(int64(s.preempted))
	p.requeued.Sync(int64(s.requeued))
	p.restored.Sync(int64(s.restored))
	p.checkpoints.Sync(int64(s.checkpoints))
	p.cacheHits.Sync(s.evalCache.Hits())
	p.cacheMisses.Sync(s.evalCache.Misses())
	done := p.completed.Value()
	exits := done + p.approx.Value() + p.missed.Value() + p.dropped.Value()
	rob := 0.0
	if exits > 0 {
		rob = 100 * float64(done) / float64(exits)
	}
	p.robustness.Set(rob)
	arr := p.arrivals.Value()
	p.arrivalRate.Set(float64(arr-s.lastArrivals) / float64(s.sampler.Every()))
	s.lastArrivals = arr
}

// Telemetry returns the simulator's probe registry (nil when disabled).
func (s *Simulator) Telemetry() *telemetry.Registry { return s.tel }

// TelemetrySampler returns the time-series sampler (nil when disabled).
func (s *Simulator) TelemetrySampler() *telemetry.Sampler { return s.sampler }
