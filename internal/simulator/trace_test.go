package simulator

import (
	"testing"

	"taskprune/internal/stats"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// TestTraceStreamConsistency runs a PAM trial with tracing on and checks
// the decision stream is internally consistent: every task arrives exactly
// once, every task exits exactly once, starts never exceed mappings, and
// pruner engage/disengage events alternate.
func TestTraceStreamConsistency(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "PAM", matrix)
	rec := trace.NewRecorder()
	cfg.Trace = rec
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Generate(workload.Config{NumTasks: 250, Rate: 0.3, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}

	counts := rec.CountByKind()
	if counts[trace.TaskArrived] != 250 {
		t.Errorf("arrivals = %d, want 250", counts[trace.TaskArrived])
	}
	exits := counts[trace.TaskCompleted] + counts[trace.TaskMissed] + counts[trace.TaskDropped]
	if exits != 250 {
		t.Errorf("exits = %d, want 250", exits)
	}
	if counts[trace.TaskStarted] > counts[trace.TaskMapped] {
		t.Errorf("starts (%d) exceed mappings (%d)", counts[trace.TaskStarted], counts[trace.TaskMapped])
	}

	// Per-task: one arrival, one exit; mapped before started.
	arrived := map[int]int{}
	exited := map[int]int{}
	prevPrunerOn := false
	var lastTick int64
	for _, e := range rec.Events() {
		if e.Tick < lastTick {
			t.Fatalf("trace out of chronological order at %+v", e)
		}
		lastTick = e.Tick
		switch e.Kind {
		case trace.TaskArrived:
			arrived[e.TaskID]++
		case trace.TaskCompleted, trace.TaskMissed, trace.TaskDropped:
			exited[e.TaskID]++
		case trace.PrunerEngaged:
			if prevPrunerOn {
				t.Fatal("double pruner-engage without disengage")
			}
			prevPrunerOn = true
		case trace.PrunerDisengaged:
			if !prevPrunerOn {
				t.Fatal("pruner-disengage without engage")
			}
			prevPrunerOn = false
		}
	}
	for id, n := range arrived {
		if n != 1 {
			t.Errorf("task %d arrived %d times", id, n)
		}
		if exited[id] != 1 {
			t.Errorf("task %d exited %d times", id, exited[id])
		}
	}
}

// TestTraceRingBounded: a ring recorder on a long run stays within bounds.
func TestTraceRingBounded(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	rec := trace.NewRingRecorder(64)
	cfg.Trace = rec
	sim, _ := New(cfg)
	tasks, err := workload.Generate(workload.Config{NumTasks: 200, Rate: 0.3, VarFrac: 0.1, Beta: 2}, matrix, stats.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 64 {
		t.Errorf("ring Len = %d, want 64", rec.Len())
	}
	if rec.Dropped() == 0 {
		t.Error("ring should have wrapped on a 200-task run")
	}
}
