// Package simulator is the discrete-event engine tying the system together:
// tasks arrive into a batch queue, mapping events fire on every arrival and
// completion, the pruning mechanism defers/drops unlikely-to-succeed tasks,
// and machines execute their FCFS queues — reproducing the experimental
// apparatus of the paper's Section VI.
package simulator

import (
	"fmt"

	"taskprune/internal/cost"
	"taskprune/internal/eventq"
	"taskprune/internal/heuristics"
	"taskprune/internal/machine"
	"taskprune/internal/metrics"
	"taskprune/internal/pet"
	"taskprune/internal/pmf"
	"taskprune/internal/pruner"
	"taskprune/internal/scenario"
	"taskprune/internal/task"
	"taskprune/internal/telemetry"
	"taskprune/internal/trace"
	"taskprune/internal/workload"
)

// DefaultQueueCap is the per-machine queue capacity including the
// executing task (paper: six).
const DefaultQueueCap = 6

// DefaultPreemptGrayFraction is the default preemption gray zone: an
// executing task at more than half its dropping threshold is paused with
// progress retained instead of being discarded outright.
const DefaultPreemptGrayFraction = 0.5

// Config assembles one simulated HC system.
type Config struct {
	// Heuristic is the mapping policy under test.
	Heuristic heuristics.Heuristic
	// PET is the system's probabilistic execution time model; its column
	// count defines the machine fleet size.
	PET *pet.Matrix
	// Machines, when non-nil, restricts this simulator to the given PET
	// columns: the fleet is those machines only, each keeping its global
	// column index as its machine ID (PET lookups, TrueExec indexing,
	// prices, scenario events, and traces all speak global IDs). This is
	// how the cluster engine shards one PET across datacenters; nil means
	// the whole fleet, exactly as before. Indices must be unique and in
	// range; tasks still carry one TrueExec entry per PET column.
	Machines []int
	// QueueCap is the per-machine queue capacity (0 → DefaultQueueCap).
	QueueCap int
	// Mode selects the completion-time convolution scenario used for
	// robustness estimates (paper Section IV). ConfigFor picks the
	// scenario matching each heuristic's dropping behaviour.
	Mode pmf.DropMode
	// MaxImpulses bounds PMF width during chained convolutions.
	MaxImpulses int
	// Pruner configures the pruning mechanism; nil disables pruning even
	// for pruning-aware heuristics.
	Pruner *pruner.Config
	// FairnessFactor is PAMF's ϑ; 0 disables fairness tracking.
	FairnessFactor float64
	// EvictAtDeadline kills an executing task the instant its deadline
	// passes (scenario C semantics). Baselines leave it false: they waste
	// machine time finishing doomed tasks, which is the paper's point.
	EvictAtDeadline bool
	// Preempt enables the preemption extension (the paper's stated future
	// work): when the pruner would drop an *executing* task whose success
	// probability still sits in the gray zone, the task is paused instead —
	// its progress is retained and it re-queues at its machine's tail,
	// resuming later with only its remaining execution time owed.
	Preempt bool
	// PreemptGrayFraction defines the gray zone: an executing task with
	// success probability above grayFraction × (its effective dropping
	// threshold) is preempted rather than dropped. 0 means
	// DefaultPreemptGrayFraction.
	PreemptGrayFraction float64
	// ApproxFraction enables the approximate-computing extension (the
	// paper's second future-work item): a task evicted at its deadline
	// that has already received at least this fraction of its true
	// execution time exits as an approximate completion instead of a drop
	// (e.g. a transcode that delivered most of its frames). 0 disables;
	// values are in (0, 1].
	ApproxFraction float64
	// Prices gives dollars/hour per machine for the cost model; nil bills
	// nothing.
	Prices []float64
	// Trim is the steady-state trim count for metrics (0 → DefaultTrim).
	Trim int
	// Trace, when non-nil, records the simulator's decision stream
	// (arrivals, mapping decisions, drops, pruner flips) for auditing.
	Trace *trace.Recorder
	// NaiveEval disables the incremental per-(task, machine) evaluation
	// cache inside the mapping heuristics, recomputing every phase-one
	// scalar on every commit round. Assignments and statistics are
	// identical either way (asserted by the cache equivalence tests); this
	// exists for those tests and for measuring what the cache buys.
	NaiveEval bool
	// Scenario, when non-nil and non-static, injects timed fleet events —
	// machine failures (queues requeued or dropped), recoveries, and
	// performance degradations — into the trial. Fleet events are mapping
	// events: the heuristic re-maps immediately after each one. Burst
	// windows declared by the scenario shape the workload, not the
	// simulator; apply them at generation time (experiments does this).
	Scenario *scenario.Scenario
	// Checkpoint, when enabled, makes tasks persist execution progress so a
	// machine failure requeues them at their last checkpoint instead of
	// zero: periodic checkpoints every Interval nominal ticks (each adding
	// Overhead wall ticks to the run), or on-preemption checkpoints that
	// merely make the preemption extension's banked progress survive
	// failures. The policy's Survival mode decides whether checkpoints
	// outlive a whole-DC outage (FailDC). Nil adopts the scenario's policy
	// (Scenario.Checkpoint) when one is declared; a zero-kind policy — like
	// no policy at all — leaves the engine byte-identical to one without
	// the subsystem.
	Checkpoint *scenario.CheckpointPolicy
	// Belief, when enabled, splits what the mapper knows from what is
	// true: the ground-truth PET keeps driving TrueExec sampling and
	// completion clocks, while every pruning/mapping decision reads a
	// belief view — frozen at the t=0 nominal profile, or re-estimated
	// online from observed completions. Nil adopts the scenario's policy
	// (Scenario.Belief) when one is declared; a zero-kind (oracle) policy
	// — like no policy at all — schedules on the truth itself,
	// byte-identical to the engine without the subsystem.
	Belief *scenario.BeliefPolicy
	// BeliefPrior, when non-nil, is the t=0 profile a frozen or online
	// belief starts from instead of the ground-truth PET — a cold or
	// deliberately wrong prior for convergence studies. Nil means the
	// mapper's initial knowledge is the truth as of t=0 (Config.PET).
	BeliefPrior *pet.Matrix
	// Telemetry, when non-nil, enables the probe registry and the
	// tick-driven time-series sampler for this simulator. Nil is the
	// zero-cost disabled state: every probe handle is nil, so the hot path
	// runs identical instructions with no allocations and no behavior
	// change (goldens and allocation baselines are unaffected).
	Telemetry *telemetry.Options
	// PhaseTimer, when non-nil, attributes wall time to the admit / step /
	// eval / convolve spans of every event this simulator processes. The
	// timer is caller-owned (merge shard timers at barriers); nil disables
	// timing entirely.
	PhaseTimer *telemetry.PhaseTimer
}

// ConfigFor returns the evaluation configuration the paper uses for the
// named heuristic on the given PET: baselines run without pruning under
// scenario-B estimates; PAM and PAMF run the full pruning mechanism under
// scenario-C (evict) semantics; PAMF additionally tracks fairness with the
// paper's chosen 5% factor.
func ConfigFor(name string, matrix *pet.Matrix) (Config, error) {
	h, err := heuristics.New(name)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Heuristic:   h,
		PET:         matrix,
		QueueCap:    DefaultQueueCap,
		Mode:        pmf.PendingDrop,
		MaxImpulses: pmf.DefaultMaxImpulses,
		Trim:        metrics.DefaultTrim,
	}
	if h.UsesPruning() {
		pc := pruner.DefaultConfig()
		cfg.Pruner = &pc
		cfg.Mode = pmf.Evict
		cfg.EvictAtDeadline = true
		if name == "PAMF" {
			cfg.FairnessFactor = 0.05
		}
	}
	return cfg, nil
}

// MustConfigFor is ConfigFor for statically known heuristic names.
func MustConfigFor(name string, matrix *pet.Matrix) Config {
	cfg, err := ConfigFor(name, matrix)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Simulator executes one trial. Create one per trial; it is single-use and
// not safe for concurrent use (run trials in parallel by creating one
// Simulator per goroutine).
type Simulator struct {
	cfg      Config
	machines []*machine.Machine
	// byID maps global machine IDs to fleet slice positions; nil when the
	// fleet is the whole PET and IDs equal positions.
	byID map[int]int
	// execWidth is the TrueExec length every task must carry: the PET's
	// column count, even when this simulator runs on a partition of it.
	execWidth int
	events    eventq.Queue
	batch     []*task.Task

	// collector folds every task exit into streaming counters the moment
	// it happens, so the simulator never retains the finished-task set;
	// aux, when non-nil, observes the same exits (the cluster engine's
	// cluster-level aggregate); recycler (non-nil when the source pools
	// tasks) takes each retired task back right after it is counted and
	// traced.
	collector *metrics.Stream
	aux       *metrics.Stream
	recycler  workload.Recycler

	pruner   *pruner.Pruner
	fairness *pruner.FairnessTracker

	// arena supplies scratch storage for every PMF the dequeue/requeue loop
	// builds (queue tails, pruning chains, mapping evaluations); it is
	// reset wholesale at each mapping event, eliminating per-convolution
	// heap traffic. evalCache persists phase-one mapping evaluations across
	// events, invalidated per machine by queue version. ctx and taskScratch
	// are reused event to event for the same reason.
	arena       *pmf.Arena
	evalCache   *heuristics.EvalCache
	ctx         heuristics.Context
	taskScratch []*task.Task
	gone        map[*task.Task]bool

	// fleetEvents is the scenario's event list in scheduling order; eventq
	// Fleet events carry indices into it.
	fleetEvents []scenario.Event

	// dcDowned remembers which machines the last FailDC actually failed,
	// so RecoverDC revives exactly those — machines down for machine-scoped
	// reasons keep their own fail/recover schedule.
	dcDowned []int

	// ckpt is the resolved checkpoint/restore policy (nil or zero-kind =
	// disabled, the engine's historical behaviour).
	ckpt *scenario.CheckpointPolicy

	// view is the PET the mapper believes: cfg.PET itself under the oracle
	// policy (making every decision path bit-identical to the engine
	// before the split), a FrozenBelief or OnlineBelief otherwise. online
	// is non-nil only under the online policy — the completion handler
	// feeds it observations.
	view   pet.View
	belief *scenario.BeliefPolicy
	online *pet.OnlineBelief

	// tel/sampler/pr are the telemetry shard this simulator owns (nil
	// registry → nil handles → no-ops); phases is the caller-owned wall
	// time attributor; lastArrivals backs the arrival-rate gauge.
	tel          *telemetry.Registry
	sampler      *telemetry.Sampler
	phases       *telemetry.PhaseTimer
	pr           simProbes
	lastArrivals int64

	now              int64
	missedSinceEvent int
	droppedByPruner  int
	evicted          int
	preempted        int
	requeued         int
	restored         int
	checkpoints      int
	mappingEvents    int
	beliefRefreshes  int
	beliefObserved   int
}

// New validates cfg and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Heuristic == nil {
		return nil, fmt.Errorf("simulator: nil heuristic")
	}
	if cfg.PET == nil || cfg.PET.NumMachines() == 0 {
		return nil, fmt.Errorf("simulator: missing PET matrix")
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("simulator: queue capacity must be >= 1, got %d", cfg.QueueCap)
	}
	if cfg.MaxImpulses == 0 {
		cfg.MaxImpulses = pmf.DefaultMaxImpulses
	}
	if cfg.Trim == 0 {
		cfg.Trim = metrics.DefaultTrim
	}
	if cfg.PreemptGrayFraction == 0 {
		cfg.PreemptGrayFraction = DefaultPreemptGrayFraction
	}
	if cfg.PreemptGrayFraction < 0 || cfg.PreemptGrayFraction > 1 {
		return nil, fmt.Errorf("simulator: PreemptGrayFraction out of [0,1]: %v", cfg.PreemptGrayFraction)
	}
	if cfg.ApproxFraction < 0 || cfg.ApproxFraction > 1 {
		return nil, fmt.Errorf("simulator: ApproxFraction out of [0,1]: %v", cfg.ApproxFraction)
	}
	if cfg.Prices != nil && len(cfg.Prices) != cfg.PET.NumMachines() {
		return nil, fmt.Errorf("simulator: %d prices for %d machines", len(cfg.Prices), cfg.PET.NumMachines())
	}
	if err := cfg.Scenario.Validate(cfg.PET.NumMachines()); err != nil {
		return nil, fmt.Errorf("simulator: %w", err)
	}
	if cfg.Checkpoint == nil && cfg.Scenario != nil {
		cfg.Checkpoint = cfg.Scenario.Checkpoint
	}
	if err := cfg.Checkpoint.Validate(); err != nil {
		return nil, fmt.Errorf("simulator: %w", err)
	}
	if cfg.Belief == nil && cfg.Scenario != nil {
		cfg.Belief = cfg.Scenario.Belief
	}
	if err := cfg.Belief.Validate(); err != nil {
		return nil, fmt.Errorf("simulator: %w", err)
	}
	s := &Simulator{
		cfg:       cfg,
		execWidth: cfg.PET.NumMachines(),
		arena:     pmf.NewArena(),
		evalCache: heuristics.NewEvalCache(),
		gone:      make(map[*task.Task]bool),
	}
	if cfg.Checkpoint.Enabled() {
		s.ckpt = cfg.Checkpoint
	}
	s.view = cfg.PET
	if cfg.Belief.Enabled() {
		s.belief = cfg.Belief
		prior := cfg.BeliefPrior
		if prior == nil {
			prior = cfg.PET
		} else if prior.NumTypes() != cfg.PET.NumTypes() || prior.NumMachines() != cfg.PET.NumMachines() {
			return nil, fmt.Errorf("simulator: belief prior is %dx%d but the PET is %dx%d",
				prior.NumTypes(), prior.NumMachines(), cfg.PET.NumTypes(), cfg.PET.NumMachines())
		}
		switch cfg.Belief.Kind {
		case scenario.BeliefFrozen:
			s.view = pet.NewFrozenBelief(prior)
		case scenario.BeliefOnline:
			s.online = pet.NewOnlineBelief(prior,
				cfg.Belief.EffectiveRefresh(), cfg.Belief.EffectiveMinSamples(), cfg.Belief.EffectiveBins())
			s.view = s.online
		}
	} else if cfg.BeliefPrior != nil {
		return nil, fmt.Errorf("simulator: BeliefPrior set but the belief policy is the oracle (%s)", cfg.Belief)
	}
	cols := cfg.Machines
	if cols == nil {
		for mi := 0; mi < cfg.PET.NumMachines(); mi++ {
			cols = append(cols, mi)
		}
	} else {
		if len(cols) == 0 {
			return nil, fmt.Errorf("simulator: empty machine partition")
		}
		s.byID = make(map[int]int, len(cols))
	}
	for pos, gid := range cols {
		if gid < 0 || gid >= cfg.PET.NumMachines() {
			return nil, fmt.Errorf("simulator: machine %d out of the PET's range [0,%d)", gid, cfg.PET.NumMachines())
		}
		if s.byID != nil {
			if _, dup := s.byID[gid]; dup {
				return nil, fmt.Errorf("simulator: machine %d listed in the partition twice", gid)
			}
			s.byID[gid] = pos
		}
		price := 0.0
		if cfg.Prices != nil {
			price = cfg.Prices[gid]
		}
		s.machines = append(s.machines, machine.New(gid, fmt.Sprintf("m%d", gid), cfg.QueueCap, price))
	}
	if cfg.Scenario != nil {
		for _, ev := range cfg.Scenario.Sorted() {
			if _, ok := s.machineFor(ev.Machine); !ok {
				return nil, fmt.Errorf("simulator: scenario event (%s) targets a machine outside this fleet partition", ev)
			}
		}
		for _, mi := range cfg.Scenario.InitialDown {
			m, ok := s.machineFor(mi)
			if !ok {
				return nil, fmt.Errorf("simulator: initial_down machine %d is outside this fleet partition", mi)
			}
			m.Fail(0) // absent at tick 0; a Recover event joins it
		}
	}
	if cfg.Pruner != nil && cfg.Heuristic.UsesPruning() {
		s.pruner = pruner.New(*cfg.Pruner)
		if cfg.FairnessFactor > 0 {
			s.fairness = pruner.NewFairnessTracker(cfg.PET.NumTypes(), cfg.FairnessFactor)
		}
	}
	if cfg.Telemetry != nil {
		s.tel = telemetry.NewRegistry()
		s.pr = newSimProbes(s.tel)
		s.sampler = telemetry.NewSampler(s.tel, cfg.Telemetry)
		s.sampler.Prepare = s.prepareSample
	}
	s.phases = cfg.PhaseTimer
	return s, nil
}

// Run simulates the full lifetime of the given workload slice and returns
// the trial statistics. Tasks must have TrueExec populated for every
// machine. It is the slice-backed adapter over RunSource: the tasks are
// pulled in non-decreasing arrival order (ties in slice order, exactly the
// order the event queue used to drain them) and remain caller-owned — their
// final State/Finish fields stay inspectable after the trial.
func (s *Simulator) Run(tasks []*task.Task) (metrics.TrialStats, error) {
	for _, t := range tasks {
		if len(t.TrueExec) != s.execWidth {
			return metrics.TrialStats{}, fmt.Errorf("simulator: task %d has %d true execs for %d machines", t.ID, len(t.TrueExec), s.execWidth)
		}
	}
	return s.RunSource(workload.FromTasks(tasks))
}

// RunSource simulates the full lifetime of a pull-based workload stream
// and returns the trial statistics. The next arrival is pulled only when
// the event horizon reaches it, every exit folds into streaming counters,
// and — when the source implements workload.Recycler — each retired task
// returns to the source's pool, so trial memory is O(live tasks + fleet),
// not O(total tasks). With an unbounded source, RunSource runs until the
// stream ends; bound the stream (workload.Config.NumTasks) to bound the
// trial.
//
// RunSource is the single-fleet driver over the stepping primitives
// (Begin, Admit, StepEvent, Finalize) the cluster engine interleaves
// across datacenters; the two produce byte-identical decision streams for
// the same event order.
func (s *Simulator) RunSource(src workload.Source) (metrics.TrialStats, error) {
	s.Begin(nil)
	s.recycler, _ = src.(workload.Recycler)
	next, hasNext, err := s.pull(src)
	if err != nil {
		return metrics.TrialStats{}, err
	}
loop:
	for {
		tick, ok := s.NextEventTick()
		switch {
		case hasNext && (!ok || next.Arrival <= tick):
			// The stream's head arrives before (or with) every scheduled
			// event: admit it. Arrivals at the same tick as a completion or
			// fleet event fire first, exactly as when every arrival was
			// pushed into the queue ahead of them.
			if err := s.Admit(next); err != nil {
				return metrics.TrialStats{}, err
			}
			if next, hasNext, err = s.pull(src); err != nil {
				return metrics.TrialStats{}, err
			}
		case ok:
			s.StepEvent()
		default:
			break loop
		}
	}
	return s.Finalize(), nil
}

// Begin readies the simulator for event-by-event driving: it allocates the
// trial's streaming collector, registers an optional auxiliary collector
// that observes every exit alongside the simulator's own (the cluster
// engine passes its cluster-level aggregate), and schedules scenario fleet
// events up front in (tick, declaration) order — at equal ticks they fire
// after arrivals (Admit wins ties by construction of the drivers) and
// before completions, matching the historical push-based engine. RunSource
// calls Begin itself; external drivers call it exactly once before
// Admit/StepEvent/Finalize.
func (s *Simulator) Begin(aux *metrics.Stream) {
	s.collector = metrics.NewStream(s.cfg.PET.NumTypes(), s.cfg.Trim)
	s.aux = aux
	if sc := s.cfg.Scenario; !sc.IsStatic() {
		s.fleetEvents = sc.Sorted()
		for i, fe := range s.fleetEvents {
			s.events.Push(eventq.Event{Tick: fe.Tick, Kind: eventq.Fleet, TaskID: i, Machine: fe.Machine})
		}
	}
}

// SetRecycler routes retired tasks back to a pool-backed source. RunSource
// wires it from the source itself; the cluster engine wires every
// datacenter to the shared stream's pool.
func (s *Simulator) SetRecycler(r workload.Recycler) { s.recycler = r }

// NextEventTick returns the tick of the earliest scheduled internal event
// (completion or fleet change); ok is false when none is pending.
func (s *Simulator) NextEventTick() (int64, bool) {
	e, ok := s.events.Peek()
	return e.Tick, ok
}

// StepUntil handles every scheduled internal event with tick strictly
// before horizon, in tick order, and returns how many it handled. It is
// the per-datacenter work contract of the parallel cluster engine: between
// two cluster-clock sync points A and B the engine hands each datacenter
// StepUntil(B) — optionally preceded by an Admit at A — and the datacenter
// burns down its private event queue on its own goroutine. Events at
// exactly horizon are left pending, because the next sync point (an
// arrival, or a cluster-scoped event) wins ties over internal events.
func (s *Simulator) StepUntil(horizon int64) int {
	n := 0
	for {
		tick, ok := s.NextEventTick()
		if !ok || tick >= horizon {
			return n
		}
		s.StepEvent()
		n++
	}
}

// Admit delivers one arriving task to the batch queue at its arrival tick
// and runs the mapping event every arrival triggers. Drivers must admit in
// global time order — a task arriving before the simulator clock is
// rejected — and tasks must carry one TrueExec entry per PET column.
func (s *Simulator) Admit(t *task.Task) error {
	if len(t.TrueExec) != s.execWidth {
		return fmt.Errorf("simulator: task %d has %d true execs for %d machines", t.ID, len(t.TrueExec), s.execWidth)
	}
	if t.Arrival < s.now {
		return fmt.Errorf("simulator: source emitted task %d arriving at %d after the clock reached %d", t.ID, t.Arrival, s.now)
	}
	t0 := s.phases.Start()
	s.now = t.Arrival
	s.batch = append(s.batch, t)
	s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.TaskArrived, TaskID: t.ID, Machine: -1})
	s.pr.arrivals.Inc()
	s.phases.Observe(telemetry.PhaseAdmit, t0)
	s.afterEvent()
	return nil
}

// StepEvent pops and handles the earliest internal event, advancing the
// clock. A stale completion (its task was pruned, preempted, or lost to a
// failure after scheduling) advances the clock without triggering a
// mapping event — the same short-circuit RunSource's loop always took.
func (s *Simulator) StepEvent() {
	e, ok := s.events.Pop()
	if !ok {
		return
	}
	t0 := s.phases.Start()
	s.now = e.Tick
	switch e.Kind {
	case eventq.Completion:
		if !s.handleCompletion(e) {
			s.phases.Observe(telemetry.PhaseStep, t0)
			return // stale completion for an already-dropped task
		}
	case eventq.Fleet:
		s.handleFleetEvent(s.fleetEvents[e.TaskID])
	}
	s.phases.Observe(telemetry.PhaseStep, t0)
	s.afterEvent()
}

// afterEvent is the post-step every admitted arrival and handled event
// triggers: expired tasks drop, the heuristic re-maps, idle machines start.
func (s *Simulator) afterEvent() {
	t0 := s.phases.Start()
	s.dropExpired()
	s.phases.Observe(telemetry.PhaseOther, t0)
	s.mappingEvent()
	t1 := s.phases.Start()
	s.startIdleMachines()
	s.phases.Observe(telemetry.PhaseOther, t1)
	s.sampler.Tick(s.now)
}

// Finalize flushes every task still in the system, bills machine busy
// time, and returns the trial statistics. Call once, after the last event;
// RunSource calls it itself.
func (s *Simulator) Finalize() metrics.TrialStats {
	s.flushUnfinished()
	s.sampler.Flush(s.now)
	totalCost := 0.0
	if s.cfg.Prices != nil {
		busy := make([]int64, len(s.machines))
		prices := make([]float64, len(s.machines))
		for i, m := range s.machines {
			busy[i] = m.BusyTicks(s.now)
			prices[i] = s.cfg.Prices[m.ID]
		}
		totalCost = cost.Total(busy, prices)
	}
	return s.collector.Finalize(totalCost)
}

// pull fetches and validates the stream's next task.
func (s *Simulator) pull(src workload.Source) (*task.Task, bool, error) {
	t, ok := src.Next()
	if !ok {
		return nil, false, nil
	}
	if len(t.TrueExec) != s.execWidth {
		return nil, false, fmt.Errorf("simulator: task %d has %d true execs for %d machines", t.ID, len(t.TrueExec), s.execWidth)
	}
	if t.Arrival < s.now {
		return nil, false, fmt.Errorf("simulator: source emitted task %d arriving at %d after the clock reached %d", t.ID, t.Arrival, s.now)
	}
	return t, true, nil
}

// machineFor resolves a global machine ID to this fleet's machine; ok is
// false when the ID lies outside the partition.
func (s *Simulator) machineFor(id int) (*machine.Machine, bool) {
	if s.byID == nil {
		if id < 0 || id >= len(s.machines) {
			return nil, false
		}
		return s.machines[id], true
	}
	pos, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.machines[pos], true
}

// machineByID is machineFor for IDs the simulator itself produced (New
// validated scenario events, and completion events carry fleet IDs).
func (s *Simulator) machineByID(id int) *machine.Machine {
	m, ok := s.machineFor(id)
	if !ok {
		panic(fmt.Sprintf("simulator: machine %d not in this fleet partition", id))
	}
	return m
}

// handleFleetEvent applies one scenario fleet change. Fleet events are
// mapping events: the event loop runs dropExpired/mappingEvent right after,
// so surviving tasks are re-mapped against the new fleet immediately.
func (s *Simulator) handleFleetEvent(ev scenario.Event) {
	m := s.machineByID(ev.Machine)
	switch ev.Kind {
	case scenario.Fail:
		// A machine-scoped failure takes ownership of the machine's down
		// state even when the machine is already dead from a whole-DC
		// outage: striking it from dcDowned keeps RecoverDC from reviving
		// it ahead of its own Recover event.
		for i, id := range s.dcDowned {
			if id == m.ID {
				s.dcDowned = append(s.dcDowned[:i], s.dcDowned[i+1:]...)
				break
			}
		}
		held := s.failMachine(m)
		for _, t := range held {
			if ev.Policy == scenario.Drop {
				s.exitTask(t, task.StateDropped)
				continue
			}
			// Requeue: the task returns to the batch queue as if never
			// mapped. Without checkpointing, execution progress on the dead
			// machine is lost; with it, the task restores at its last
			// checkpoint (failMachine already rolled the executing task back
			// to its banked credit) — checkpointed progress is nominal,
			// machine-independent credit, so it transfers to whichever
			// machine the task is remapped onto.
			s.requeueFailed(t)
		}
	case scenario.Recover:
		m.Recover()
		s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.MachineRecovered, TaskID: -1, Machine: m.ID})
	case scenario.Degrade:
		m.SetSpeed(ev.Factor)
		s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.MachineDegraded, TaskID: -1, Machine: m.ID, Value: ev.Factor})
	}
}

// failMachine takes one alive machine out of the fleet at the current
// tick and returns the tasks it held. A task whose genuine completion
// falls on this very tick has finished its work: its completion event is
// merely queued behind the fleet event (fleet events are scheduled up
// front, completions as runs start), so it completes here rather than
// counting finished work as lost — the queued completion event then
// no-ops as stale. Both single-machine Fail events and whole-DC outages
// (FailDC) go through this one helper so their failure semantics cannot
// drift apart.
func (s *Simulator) failMachine(m *machine.Machine) []*task.Task {
	if ex := m.Executing(); ex != nil {
		due := ex.Start + s.runWall(ex, m)
		if s.cfg.EvictAtDeadline && due > ex.Deadline {
			due = ex.Deadline
		}
		if due == s.now {
			s.handleCompletion(eventq.Event{Tick: s.now, Kind: eventq.Completion, TaskID: ex.ID, Machine: m.ID})
		}
	}
	// The failure interrupts whatever is still running: roll the task back
	// to its last completed periodic checkpoint before draining it, so both
	// the single-machine requeue path and the whole-DC failover see the
	// banked credit.
	if ex := m.Executing(); ex != nil {
		s.bankCheckpoint(ex, m)
	}
	held := m.Fail(s.now)
	s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.MachineFailed, TaskID: -1, Machine: m.ID})
	return held
}

// runRemaining returns the wall-clock ticks the executing task of m still
// owes: its nominal remaining execution stretched by the degradation factor
// its run started under.
func runRemaining(t *task.Task, m *machine.Machine) int64 {
	return pmf.ScaleDur(t.Remaining(m.ID), m.RunFactor())
}

// runWall returns the total wall-clock ticks the executing task of m owes
// from its run start: the degradation-stretched remaining execution plus
// the overhead of every periodic checkpoint the run will write along the
// way. Every site that schedules, verifies, or reasons about a completion
// tick uses this one formula, so the three can never drift apart. With
// checkpointing disabled it is exactly runRemaining.
func (s *Simulator) runWall(t *task.Task, m *machine.Machine) int64 {
	w := runRemaining(t, m)
	if s.ckpt.Periodic() {
		w += s.ckpt.Overhead * s.ckpt.PointsWithin(t.Consumed, t.TrueExec[m.ID])
	}
	return w
}

// completedCheckpoints returns the cumulative nominal progress at the last
// periodic checkpoint the current run of t on m fully wrote within
// wall-elapsed w ticks (t.Consumed when none — the progress banked before
// the run started), plus how many checkpoints that is. Checkpoint k of the
// run, at cumulative progress c, completes at wall offset
// ScaleDur(c−Consumed, runFactor) + k×Overhead: a failure mid-checkpoint
// loses that checkpoint.
func (s *Simulator) completedCheckpoints(t *task.Task, m *machine.Machine, w int64) (banked, n int64) {
	banked = t.Consumed
	if !s.ckpt.Periodic() {
		return banked, 0
	}
	f := m.RunFactor()
	total := t.TrueExec[m.ID]
	iv := s.ckpt.Interval
	for c := (t.Consumed/iv + 1) * iv; c < total; c += iv {
		n++
		if pmf.ScaleDur(c-t.Consumed, f)+s.ckpt.Overhead*n > w {
			n--
			return banked, n
		}
		banked = c
	}
	return banked, n
}

// ckptFreeWall strips the run's checkpoint-writing pauses out of
// wall-elapsed w, leaving the ticks actually spent executing: completed
// checkpoints subtract their full overhead, and an instant caught
// mid-write maps to the write's start — execution is paused at the
// checkpointed progress, so none of the partial write time counts as
// work. Identity with checkpointing disabled.
func (s *Simulator) ckptFreeWall(t *task.Task, m *machine.Machine, w int64) int64 {
	if !s.ckpt.Periodic() {
		return w
	}
	f := m.RunFactor()
	total := t.TrueExec[m.ID]
	iv, ov := s.ckpt.Interval, s.ckpt.Overhead
	var k int64
	for c := (t.Consumed/iv + 1) * iv; c < total; c += iv {
		execW := pmf.ScaleDur(c-t.Consumed, f) // exec wall ticks to reach progress c
		if execW+ov*k >= w {
			break // still executing toward c
		}
		if w < execW+ov*(k+1) {
			return execW // mid-write: execution paused at progress c
		}
		k++
	}
	w -= ov * k
	if w < 0 {
		w = 0
	}
	return w
}

// runProgress converts wall-elapsed ticks of the current run of t on m into
// nominal execution progress, excluding the wall time the run spent writing
// periodic checkpoints. With checkpointing disabled it is exactly
// UnscaleDur(w, runFactor).
func (s *Simulator) runProgress(t *task.Task, m *machine.Machine, w int64) int64 {
	return pmf.UnscaleDur(s.ckptFreeWall(t, m, w), m.RunFactor())
}

// bankCheckpoint rolls the executing task of a failing machine back to its
// last completed checkpoint: its Consumed credit becomes the banked
// progress (monotonically non-decreasing — the run-start credit survives
// even when no new checkpoint completed), and the newly written checkpoints
// are counted. No-op unless periodic checkpointing is on; the on-preempt
// kind banks at preemption time instead, so a failed run simply keeps the
// credit it started with.
func (s *Simulator) bankCheckpoint(t *task.Task, m *machine.Machine) {
	if !s.ckpt.Periodic() {
		return
	}
	banked, n := s.completedCheckpoints(t, m, s.now-t.Start)
	if n > 0 {
		t.Consumed = banked
		t.LastCheckpoint = banked
		t.Checkpoints += int(n)
		s.checkpoints += int(n)
	}
}

// requeueFailed returns a task a machine failure drained back to the batch
// queue. Without checkpointing its progress is lost (Consumed resets, the
// historical behaviour); with checkpointing enabled the banked credit
// survives and the trace records a restore instead of a plain requeue. A
// restored task's cached mapping evaluations are stale — its remaining-work
// distribution changed — so they are forgotten here.
func (s *Simulator) requeueFailed(t *task.Task) {
	t.State = task.StatePending
	t.Machine = -1
	kind := trace.TaskRequeued
	if s.ckpt.Enabled() {
		s.evalCache.Forget(t.ID)
		if t.Consumed > 0 {
			kind = trace.TaskRestored
			s.restored++
		}
	} else {
		t.Consumed = 0
	}
	s.batch = append(s.batch, t)
	s.requeued++
	s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: kind, TaskID: t.ID, Machine: -1, Value: float64(t.Consumed)})
}

// handleCompletion finalizes a machine's executing task. It returns false
// when the event is stale (the task was pruned after scheduling).
func (s *Simulator) handleCompletion(e eventq.Event) bool {
	m := s.machineByID(e.Machine)
	ex := m.Executing()
	if ex == nil || ex.ID != e.TaskID {
		return false
	}
	// Guard against a stale event from a run that was preempted (or lost to
	// a machine failure) and restarted: the genuine completion tick of the
	// *current* run is start + remaining — stretched by the degradation
	// factor the run started under — clamped to the deadline under eviction.
	expected := ex.Start + s.runWall(ex, m)
	if s.cfg.EvictAtDeadline && expected > ex.Deadline {
		expected = ex.Deadline
	}
	if s.now != expected {
		return false
	}
	trueFinish := ex.Start + s.runWall(ex, m)
	m.FinishExecuting(s.now)
	if s.ckpt.Periodic() {
		// Account the checkpoints this run wrote (the wall time they cost is
		// already inside runWall): all of them for a genuine finish, only the
		// ones completed before the kill for an eviction.
		var n int64
		if s.cfg.EvictAtDeadline && trueFinish > ex.Deadline {
			_, n = s.completedCheckpoints(ex, m, s.now-ex.Start)
		} else {
			n = s.ckpt.PointsWithin(ex.Consumed, ex.TrueExec[m.ID])
		}
		ex.Checkpoints += int(n)
		s.checkpoints += int(n)
	}
	if s.online != nil && ex.Consumed == 0 && !(s.cfg.EvictAtDeadline && trueFinish > ex.Deadline) {
		// Feed the online estimator genuine full executions only: an
		// eviction censors the duration and a restored run's wall time
		// covers just the remainder, so either would bias the belief low.
		// Completed and missed both ran to the end; checkpoint-writing
		// pauses are stripped so the sample is pure execution wall time.
		s.beliefObserved++
		if s.online.Observe(ex.Type, m.ID, s.ckptFreeWall(ex, m, s.now-ex.Start)) {
			s.beliefRefreshes++
			mean, _ := s.online.CellMean(ex.Type, m.ID)
			s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.BeliefRefreshed, TaskID: int(ex.Type), Machine: m.ID, Value: mean})
			// The cell's distribution changed: every cached evaluation of
			// this machine was computed under the old belief.
			m.BumpVersion()
		}
	}
	switch {
	case s.cfg.EvictAtDeadline && trueFinish > ex.Deadline:
		// The task was killed at its deadline (scenario C): it never fully
		// completed. Under the approximate-computing extension, a task that
		// already received enough of its execution exits with a degraded
		// but useful result. Wall-clock ticks on a degraded machine convert
		// back to nominal execution progress before the comparison —
		// excluding any ticks the run spent writing checkpoints.
		received := float64(ex.Consumed) + float64(s.ckptFreeWall(ex, m, s.now-ex.Start))/m.RunFactor()
		if s.cfg.ApproxFraction > 0 && received >= s.cfg.ApproxFraction*float64(ex.TrueExec[m.ID]) {
			s.exitTask(ex, task.StateApprox)
		} else {
			s.exitTask(ex, task.StateDropped)
		}
		s.evicted++
	case s.now <= ex.Deadline:
		s.exitTask(ex, task.StateCompleted)
	default:
		s.exitTask(ex, task.StateMissed)
	}
	return true
}

// exitTask records a task leaving the system at the current tick: its exit
// folds into the streaming counters, and the struct returns to the source's
// pool when the source recycles. Nothing may touch t after this returns.
func (s *Simulator) exitTask(t *task.Task, st task.State) {
	t.State = st
	t.Finish = s.now
	s.collector.Observe(t)
	if s.aux != nil {
		s.aux.Observe(t)
	}
	var kind trace.Kind
	switch st {
	case task.StateCompleted:
		kind = trace.TaskCompleted
		s.pr.completed.Inc()
	case task.StateApprox:
		kind = trace.TaskCompleted
		s.pr.approx.Inc()
	case task.StateMissed:
		kind = trace.TaskMissed
		s.pr.missed.Inc()
	default:
		kind = trace.TaskDropped
		s.pr.dropped.Inc()
	}
	s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: kind, TaskID: t.ID, Machine: t.Machine})
	s.evalCache.Forget(t.ID)
	if st != task.StateCompleted {
		s.missedSinceEvent++
	}
	if s.fairness != nil {
		if st == task.StateCompleted {
			s.fairness.RecordSuccess(t.Type)
		} else {
			s.fairness.RecordFailure(t.Type)
		}
	}
	if s.recycler != nil {
		s.recycler.Recycle(t)
	}
}

// dropExpired removes tasks whose deadlines have passed from the batch
// queue and from machine pending queues (paper Section III: "Before the
// mapping event, tasks that have missed their deadlines are dropped").
func (s *Simulator) dropExpired() {
	kept := s.batch[:0]
	for _, t := range s.batch {
		if t.Expired(s.now) {
			s.exitTask(t, task.StateDropped)
		} else {
			kept = append(kept, t)
		}
	}
	s.batch = kept
	for _, m := range s.machines {
		s.taskScratch = append(s.taskScratch[:0], m.Pending()...)
		for _, t := range s.taskScratch {
			if t.Expired(s.now) {
				m.RemovePending(t)
				s.exitTask(t, task.StateDropped)
			}
		}
	}
}

// mappingEvent runs the pruning stage (for pruning-aware heuristics) and
// the mapping heuristic.
func (s *Simulator) mappingEvent() {
	s.mappingEvents++
	s.pr.mappingEvents.Inc()
	s.pr.batchSize.Observe(float64(len(s.batch)))
	// Everything PMF-shaped built during this event — pruning chains, queue
	// tails, mapping evaluations — lives in the arena and dies here.
	s.arena.Reset()
	if s.pruner != nil {
		wasDropping := s.pruner.Dropping()
		dropping := s.pruner.ObserveMappingEvent(s.missedSinceEvent)
		s.missedSinceEvent = 0
		if dropping != wasDropping {
			kind := trace.PrunerEngaged
			if !dropping {
				kind = trace.PrunerDisengaged
			}
			s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: kind, TaskID: -1, Machine: -1, Value: s.pruner.Level()})
		}
		if dropping {
			tc := s.phases.Start()
			s.pruneQueues()
			s.phases.Observe(telemetry.PhaseConvolve, tc)
		}
	} else {
		s.missedSinceEvent = 0
	}
	s.ctx = heuristics.Context{
		Now:         s.now,
		Machines:    s.machines,
		PET:         s.view,
		Mode:        s.cfg.Mode,
		MaxImpulses: s.cfg.MaxImpulses,
		Pruner:      s.pruner,
		Fairness:    s.fairness,
		Arena:       s.arena,
		Cache:       s.evalCache,
		NaiveEval:   s.cfg.NaiveEval,
	}
	te := s.phases.Start()
	res := s.cfg.Heuristic.Map(&s.ctx, s.batch)
	if s.cfg.Trace != nil {
		for _, t := range res.Assigned {
			s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.TaskMapped, TaskID: t.ID, Machine: t.Machine})
		}
		for _, t := range res.Deferred {
			s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.TaskDeferred, TaskID: t.ID, Machine: -1})
		}
	}
	if len(res.Assigned) > 0 || len(res.Culled) > 0 {
		gone := s.gone
		clear(gone)
		for _, t := range res.Assigned {
			gone[t] = true
		}
		for _, t := range res.Culled {
			gone[t] = true
		}
		kept := s.batch[:0]
		for _, t := range s.batch {
			if !gone[t] {
				kept = append(kept, t)
			}
		}
		s.batch = kept
		for _, t := range res.Culled {
			s.exitTask(t, task.StateDropped)
		}
	}
	s.phases.Observe(telemetry.PhaseEval, te)
}

// pruneQueues walks every machine queue head-to-tail, dropping tasks whose
// success probability is at or below their per-task adjusted dropping
// threshold (Section V-A). Dropped tasks are excluded from the completion
// chain, which is exactly how dropping improves the tasks behind them.
func (s *Simulator) pruneQueues() {
	for _, m := range s.machines {
		if !m.Alive() {
			continue // a dead machine holds nothing to prune
		}
		prev := s.arena.Impulse(s.now)
		pos := 0
		if ex := m.Executing(); ex != nil {
			f := m.RunFactor()
			comp := s.arena.ShiftConditioned(s.view.ScaledPMF(ex.Type, m.ID, f), ex.Start-pmf.ScaleDur(ex.Consumed, f), s.now)
			rob := comp.SuccessProb(ex.Deadline)
			skew := comp.BoundedSkewness()
			if s.pruner.ShouldDrop(rob, skew, pos, s.sufferage(ex.Type)) {
				m.FinishExecuting(s.now)
				threshold := s.pruner.DropThresholdFor(skew, pos, s.sufferage(ex.Type))
				if s.cfg.Preempt && rob > s.cfg.PreemptGrayFraction*threshold {
					// Gray zone: pause with progress retained instead of
					// discarding the work done so far (wall ticks convert
					// back to nominal progress on a degraded machine, net of
					// any checkpoint-writing pauses). The pause serializes
					// the task's state exactly, so under a checkpoint policy
					// it doubles as a restore point: the on-preempt kind
					// counts it as its checkpoint write, and the interval
					// checkpoints the interrupted run already wrote are
					// accounted here (its completion event never fires).
					if s.ckpt.Periodic() {
						_, n := s.completedCheckpoints(ex, m, s.now-ex.Start)
						ex.Checkpoints += int(n)
						s.checkpoints += int(n)
					}
					ex.Consumed += s.runProgress(ex, m, s.now-ex.Start)
					ex.Preemptions++
					if s.ckpt.Enabled() {
						ex.LastCheckpoint = ex.Consumed
						if s.ckpt.Kind == scenario.CheckpointOnPreempt {
							ex.Checkpoints++
							s.checkpoints++
						}
					}
					s.preempted++
					if err := m.Enqueue(ex); err != nil {
						// Queue full can't happen: we just freed the
						// executing slot. Treat defensively as a drop.
						s.exitTask(ex, task.StateDropped)
						s.droppedByPruner++
					} else {
						s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.TaskPreempted, TaskID: ex.ID, Machine: m.ID, Value: rob})
					}
				} else {
					s.exitTask(ex, task.StateDropped)
					s.droppedByPruner++
				}
				// prev stays: the machine is free right now.
			} else {
				free := comp
				if s.cfg.Mode == pmf.Evict {
					free = s.arena.EvictTail(comp, ex.Deadline)
				}
				prev = s.arena.Compact(free, s.cfg.MaxImpulses)
				pos++
			}
		}
		s.taskScratch = append(s.taskScratch[:0], m.Pending()...)
		for _, t := range s.taskScratch {
			// Consumed > 0 (preempted or restored): the cached conditioned
			// view, bit-identical to RemainingAfter on the scaled PMF.
			exec := s.view.RemainingEntry(t.Type, m.ID, m.Speed(), t.Consumed).PMF
			res := s.arena.ConvolveDrop(prev, exec, t.Deadline, s.cfg.Mode)
			if s.pruner.ShouldDrop(res.Success, res.Free.BoundedSkewness(), pos, s.sufferage(t.Type)) {
				m.RemovePending(t)
				s.exitTask(t, task.StateDropped)
				s.droppedByPruner++
				continue
			}
			prev = s.arena.Compact(res.Free, s.cfg.MaxImpulses)
			pos++
		}
	}
}

func (s *Simulator) sufferage(tt task.Type) float64 {
	if s.fairness == nil {
		return 0
	}
	return s.fairness.Sufferage(tt)
}

// startIdleMachines begins execution on any idle machine with pending work
// and schedules the corresponding completion events.
func (s *Simulator) startIdleMachines() {
	for _, m := range s.machines {
		if !m.Idle() {
			continue
		}
		t := m.StartNext(s.now)
		if t == nil {
			continue
		}
		s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.TaskStarted, TaskID: t.ID, Machine: m.ID})
		finish := s.now + s.runWall(t, m)
		if s.cfg.EvictAtDeadline && finish > t.Deadline {
			finish = t.Deadline // killed at the deadline, machine freed
		}
		s.events.Push(eventq.Event{Tick: finish, Kind: eventq.Completion, TaskID: t.ID, Machine: m.ID})
	}
}

// flushUnfinished drains tasks still in the system after the last event
// (deferred tasks that never became mappable); they exit as dropped at
// their deadlines.
func (s *Simulator) flushUnfinished() {
	for _, t := range s.batch {
		if t.Deadline > s.now {
			s.now = t.Deadline
		}
		s.exitTask(t, task.StateDropped)
	}
	s.batch = nil
	for _, m := range s.machines {
		s.taskScratch = append(s.taskScratch[:0], m.Pending()...)
		for _, t := range s.taskScratch {
			m.RemovePending(t)
			s.exitTask(t, task.StateDropped)
		}
		if ex := m.Executing(); ex != nil {
			m.FinishExecuting(s.now)
			s.exitTask(ex, task.StateDropped)
		}
	}
}

// FailDC takes every alive machine down at tick now — the cluster engine's
// dc-fail. Under drop, every task the datacenter holds (executing, pending,
// and batched) exits as dropped here; otherwise the tasks are reset to
// pending and appended to out in deterministic order — machines in fleet
// order, each yielding its executing task first and then its FCFS pending
// queue, followed by the batch queue — for the engine to fail over to
// surviving datacenters. As with single-machine failures, an executing
// task whose completion is genuinely due at this very tick completes
// rather than counting as lost. Machines already down for machine-scoped
// reasons (a scenario Fail, InitialDown) are untouched and remembered as
// NOT the outage's doing, so RecoverDC will not revive them ahead of
// their own Recover events. The mapping post-step runs (fleet events are
// mapping events), keeping pruner bookkeeping consistent even though the
// dead fleet can map nothing.
func (s *Simulator) FailDC(now int64, drop bool, out []*task.Task) []*task.Task {
	s.now = now
	s.dcDowned = s.dcDowned[:0]
	for _, m := range s.machines {
		if !m.Alive() {
			continue
		}
		s.dcDowned = append(s.dcDowned, m.ID)
		held := s.failMachine(m)
		for _, t := range held {
			if drop {
				s.exitTask(t, task.StateDropped)
				continue
			}
			s.failoverRestore(t)
			out = append(out, t)
			s.requeued++
		}
	}
	for _, t := range s.batch {
		if drop {
			s.exitTask(t, task.StateDropped)
			continue
		}
		s.failoverRestore(t)
		out = append(out, t)
		s.requeued++
	}
	s.batch = s.batch[:0]
	s.afterEvent()
	return out
}

// RecoverDC ends the whole-DC outage at tick now — the cluster engine's
// dc-recover — returning exactly the machines FailDC took down. A machine
// that was already down for a machine-scoped reason when the outage hit
// stays down until its own Recover event; one that a machine-scoped
// Recover revived mid-outage stays up. The mapping post-step runs so
// anything already in the batch queue maps against the recovered fleet
// immediately.
func (s *Simulator) RecoverDC(now int64) {
	s.now = now
	for _, id := range s.dcDowned {
		m := s.machineByID(id)
		if m.Alive() {
			continue
		}
		m.Recover()
		s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: trace.MachineRecovered, TaskID: -1, Machine: m.ID})
	}
	s.dcDowned = s.dcDowned[:0]
	s.afterEvent()
}

// failoverRestore prepares a drained task for cross-DC failover: the
// policy's survival mode decides what progress crosses the datacenter
// boundary. Local survival (and no checkpointing at all) loses everything —
// checkpoints lived on the dead datacenter's storage; replicated survival
// resumes from the last checkpoint the surviving replicas hold, forfeiting
// the replication-lag window. failMachine already rolled executing tasks
// back to their banked credit, so this only applies the survival cut.
func (s *Simulator) failoverRestore(t *task.Task) {
	t.State = task.StatePending
	t.Machine = -1
	if s.ckpt.Enabled() {
		t.Consumed = s.ckpt.FailoverCredit(t.Consumed)
		// The credit that crossed the DC boundary is the task's new restore
		// point — a checkpoint the outage destroyed must not linger in the
		// bookkeeping.
		t.LastCheckpoint = t.Consumed
		s.evalCache.Forget(t.ID)
	} else {
		t.Consumed = 0
	}
}

// InjectRequeued places a failed-over task (drained from another
// datacenter by FailDC) into the batch queue at tick now and runs the
// mapping event, mirroring how a single-fleet machine failure requeues its
// tasks. A task arriving with surviving checkpoint credit is recorded as
// restored, and any stale cached evaluations of it (from an earlier stay in
// this datacenter) are dropped.
func (s *Simulator) InjectRequeued(t *task.Task, now int64) {
	s.now = now
	s.batch = append(s.batch, t)
	kind := trace.TaskRequeued
	if s.ckpt.Enabled() {
		s.evalCache.Forget(t.ID)
		if t.Consumed > 0 {
			kind = trace.TaskRestored
			s.restored++
		}
	}
	s.cfg.Trace.Record(trace.Event{Tick: s.now, Kind: kind, TaskID: t.ID, Machine: -1, Value: float64(t.Consumed)})
	s.afterEvent()
}

// DropInjected exits a drained task as dropped at tick now — the failover
// path when no surviving datacenter can take it.
func (s *Simulator) DropInjected(t *task.Task, now int64) {
	s.now = now
	s.exitTask(t, task.StateDropped)
}

// BatchLen returns how many tasks currently wait in the batch queue (the
// cluster dispatcher's least-queued signal).
func (s *Simulator) BatchLen() int { return len(s.batch) }

// Machines exposes the fleet for inspection (tests, cost accounting).
func (s *Simulator) Machines() []*machine.Machine { return s.machines }

// Pruner exposes the pruner state (nil when pruning is disabled).
func (s *Simulator) Pruner() *pruner.Pruner { return s.pruner }

// Stats counters for diagnostics.
func (s *Simulator) DroppedByPruner() int { return s.droppedByPruner }

// Evicted returns how many executing tasks were killed at their deadlines.
func (s *Simulator) Evicted() int { return s.evicted }

// Preempted returns how many times the pruner paused an executing task
// instead of dropping it (preemption extension).
func (s *Simulator) Preempted() int { return s.preempted }

// Requeued returns how many tasks machine failures returned to the batch
// queue (scenario engine).
func (s *Simulator) Requeued() int { return s.requeued }

// Restored returns how many failure requeues resumed from a checkpoint
// (surviving Consumed credit) instead of restarting from zero.
func (s *Simulator) Restored() int { return s.restored }

// Checkpoints returns how many checkpoints tasks wrote during the trial
// (periodic interval crossings plus on-preempt pauses).
func (s *Simulator) Checkpoints() int { return s.checkpoints }

// CheckpointPolicy returns the resolved checkpoint/restore policy (nil when
// disabled).
func (s *Simulator) CheckpointPolicy() *scenario.CheckpointPolicy { return s.ckpt }

// View returns the PET the mapper schedules on: the ground-truth matrix
// under the oracle belief, a frozen or online belief otherwise.
func (s *Simulator) View() pet.View { return s.view }

// BeliefPolicy returns the resolved belief policy (nil when scheduling on
// the oracle).
func (s *Simulator) BeliefPolicy() *scenario.BeliefPolicy { return s.belief }

// Belief returns the online estimator, nil unless the belief policy is
// online.
func (s *Simulator) Belief() *pet.OnlineBelief { return s.online }

// BeliefObservations returns how many completed full executions were fed
// to the online estimator.
func (s *Simulator) BeliefObservations() int { return s.beliefObserved }

// BeliefRefreshes returns how many per-cell belief rebuilds those
// observations triggered.
func (s *Simulator) BeliefRefreshes() int { return s.beliefRefreshes }

// MappingEvents returns how many mapping events fired.
func (s *Simulator) MappingEvents() int { return s.mappingEvents }

// Now returns the simulator clock (final tick after Run).
func (s *Simulator) Now() int64 { return s.now }
