package simulator

import (
	"reflect"
	"testing"

	"taskprune/internal/scenario"
	"taskprune/internal/task"
	"taskprune/internal/trace"
)

// periodic builds a periodic checkpoint policy for tests.
func periodic(interval, overhead int64) *scenario.CheckpointPolicy {
	return &scenario.CheckpointPolicy{Kind: scenario.CheckpointPeriodic, Interval: interval, Overhead: overhead}
}

// TestCheckpointDisabledEquivalence: with checkpointing off — no policy at
// all, an explicit none-kind policy, or the zero value — the engine must be
// byte-identical to the pre-checkpoint engine for every heuristic class,
// static and churning alike. The committed golden traces pin the nil case
// against history; this pins the three disabled spellings against each
// other, so the checkpoint gates can never leak into a disabled run. Runs
// under -race in CI (make race-stream).
func TestCheckpointDisabledEquivalence(t *testing.T) {
	matrix := simPET(t)
	churn := scenario.New("churn").
		DegradeAt(200, 0, 2).
		FailAt(300, 1, scenario.Requeue).
		RecoverAt(600, 1).
		DegradeAt(700, 0, 1)
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		for scName, sc := range map[string]*scenario.Scenario{"static": nil, "churn": churn} {
			t.Run(name+"/"+scName, func(t *testing.T) {
				base := MustConfigFor(name, matrix)
				base.Scenario = sc
				evWant, stWant := runTraced(t, base, matrix, 11)

				noneKind := base
				noneKind.Checkpoint = &scenario.CheckpointPolicy{Kind: scenario.CheckpointNone}
				zero := base
				zero.Checkpoint = &scenario.CheckpointPolicy{}
				for variant, cfg := range map[string]Config{"none-kind": noneKind, "zero-value": zero} {
					ev, st := runTraced(t, cfg, matrix, 11)
					if !reflect.DeepEqual(ev, evWant) {
						for i := range evWant {
							if i >= len(ev) || ev[i] != evWant[i] {
								t.Fatalf("%s: traces diverge at event %d: nil-policy %v, %s %v",
									variant, i, evWant[i], variant, ev[i])
							}
						}
						t.Fatalf("%s: trace length %d, want %d", variant, len(ev), len(evWant))
					}
					if !reflect.DeepEqual(st, stWant) {
						t.Fatalf("%s: stats diverge:\nnil-policy: %+v\n%s: %+v", variant, stWant, variant, st)
					}
				}
			})
		}
	}
}

// TestCheckpointOverheadDelaysCompletion: a 30-tick task under interval 10
// / overhead 3 writes checkpoints at progress 10 and 20 (never at
// completion), so it finishes at 30 + 2×3 = 36 — and the scheduled
// completion event, the staleness guard, and the counters must all agree
// on that arithmetic.
func TestCheckpointOverheadDelaysCompletion(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Checkpoint = periodic(10, 3)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := fixedTask(0, 0, 0, 10_000, 30)
	if _, err := sim.Run([]*task.Task{tk}); err != nil {
		t.Fatal(err)
	}
	if tk.State != task.StateCompleted || tk.Finish != 36 {
		t.Fatalf("state %v finish %d, want completed at 36 (30 exec + 2 checkpoints × 3)", tk.State, tk.Finish)
	}
	if tk.Checkpoints != 2 || sim.Checkpoints() != 2 {
		t.Fatalf("checkpoints task=%d sim=%d, want 2 each", tk.Checkpoints, sim.Checkpoints())
	}
}

// TestCheckpointRestoreOnFailure: interval 5 / no overhead, failure at
// wall 12 of a 30-tick run — checkpoints at 5 and 10 completed, 15 was
// never reached, so the task restores with 10 ticks banked and finishes on
// the surviving machine owing only the remaining 20.
func TestCheckpointRestoreOnFailure(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("fail").FailAt(12, 0, scenario.Requeue)
	cfg.Checkpoint = periodic(5, 0)
	rec := trace.NewRecorder()
	cfg.Trace = rec
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := fixedTask(0, 0, 0, 10_000, 30) // type 0 prefers machine 0
	if _, err := sim.Run([]*task.Task{tk}); err != nil {
		t.Fatal(err)
	}
	if tk.Machine != 1 || tk.State != task.StateCompleted {
		t.Fatalf("task on m%d in state %v, want completed on survivor m1", tk.Machine, tk.State)
	}
	if tk.Consumed != 10 || tk.LastCheckpoint != 10 {
		t.Fatalf("consumed %d, last checkpoint %d, want 10 banked at failure", tk.Consumed, tk.LastCheckpoint)
	}
	if tk.Finish != 12+20 {
		t.Fatalf("finish %d, want 32 (restored at 10 of 30 when the failure hit at 12)", tk.Finish)
	}
	if sim.Restored() != 1 || sim.Requeued() != 1 {
		t.Fatalf("restored %d / requeued %d, want 1 / 1", sim.Restored(), sim.Requeued())
	}
	sawRestore := false
	for _, e := range rec.Events() {
		if e.Kind == trace.TaskRestored {
			sawRestore = true
			if e.Value != 10 {
				t.Fatalf("restore trace carries credit %g, want 10", e.Value)
			}
		}
		if e.Kind == trace.TaskRequeued {
			t.Fatal("restored task traced as a plain requeue")
		}
	}
	if !sawRestore {
		t.Fatal("no restore event in the trace")
	}
}

// TestCheckpointMidWriteLost: a checkpoint still being written when the
// machine dies does not count. Interval 5 / overhead 4: checkpoint 1
// (progress 5) completes at wall 9, checkpoint 2 (progress 10) would
// complete at wall 18 — a failure at wall 12 catches it mid-write, so only
// 5 ticks are banked.
func TestCheckpointMidWriteLost(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("fail").FailAt(12, 0, scenario.Requeue)
	cfg.Checkpoint = periodic(5, 4)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := fixedTask(0, 0, 0, 10_000, 30)
	if _, err := sim.Run([]*task.Task{tk}); err != nil {
		t.Fatal(err)
	}
	if tk.Consumed < 5 {
		t.Fatalf("consumed %d: the completed first checkpoint was lost", tk.Consumed)
	}
	if sim.Restored() != 1 {
		t.Fatalf("restored %d, want 1", sim.Restored())
	}
	if got := tk.LastCheckpoint; got != 5 {
		t.Fatalf("last checkpoint %d, want 5 (checkpoint 2 was mid-write at the failure)", got)
	}
}

// TestCheckpointOnPreemptKeepsBankedCredit: under the on-preempt kind a
// failed run loses progress since its start, but credit banked by earlier
// pauses survives the failure (that is the whole point of the kind).
func TestCheckpointOnPreemptKeepsBankedCredit(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("fail").FailAt(12, 0, scenario.Requeue)
	cfg.Checkpoint = &scenario.CheckpointPolicy{Kind: scenario.CheckpointOnPreempt}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := fixedTask(0, 0, 0, 10_000, 30)
	tk.Consumed = 7 // banked by an earlier preemption pause elsewhere
	if _, err := sim.Run([]*task.Task{tk}); err != nil {
		t.Fatal(err)
	}
	if tk.State != task.StateCompleted || tk.Machine != 1 {
		t.Fatalf("task on m%d in state %v, want completed on survivor m1", tk.Machine, tk.State)
	}
	if tk.Consumed != 7 {
		t.Fatalf("consumed %d after failure, want the banked 7 (progress since run start lost, pause credit kept)", tk.Consumed)
	}
	if tk.Finish != 12+23 {
		t.Fatalf("finish %d, want 35 (remaining 23 on the survivor from tick 12)", tk.Finish)
	}
	if sim.Restored() != 1 {
		t.Fatalf("restored %d, want 1", sim.Restored())
	}
}

// TestCheckpointNoneLosesProgress pins the historical contrast: the same
// failure without checkpointing restarts the task from zero, finishing a
// full 10 ticks later than the periodic-checkpoint run above.
func TestCheckpointNoneLosesProgress(t *testing.T) {
	matrix := simPET(t)
	cfg := baseConfig(t, "MM", matrix)
	cfg.Scenario = scenario.New("fail").FailAt(12, 0, scenario.Requeue)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := fixedTask(0, 0, 0, 10_000, 30)
	if _, err := sim.Run([]*task.Task{tk}); err != nil {
		t.Fatal(err)
	}
	if tk.Consumed != 0 {
		t.Fatalf("consumed %d without checkpointing, want 0", tk.Consumed)
	}
	if tk.Finish != 12+30 {
		t.Fatalf("finish %d, want 42 (full restart on the survivor)", tk.Finish)
	}
	if sim.Restored() != 0 {
		t.Fatalf("restored %d without checkpointing, want 0", sim.Restored())
	}
}

// TestCheckpointFailoverCredit drives the FailDC primitive directly: local
// survival forfeits the banked credit at a whole-DC outage, replicated
// survival keeps it minus the lag window rounded down to a checkpoint
// boundary.
func TestCheckpointFailoverCredit(t *testing.T) {
	matrix := simPET(t)
	for _, tc := range []struct {
		name   string
		policy *scenario.CheckpointPolicy
		want   int64
	}{
		{"local", periodic(5, 0), 0},
		{"replicated", &scenario.CheckpointPolicy{
			Kind: scenario.CheckpointPeriodic, Interval: 5,
			Survival: scenario.SurviveReplicated, ReplicationLag: 3,
		}, 7}, // banked 10, minus the 3-tick lag window still in flight
		{"replicated-no-lag", &scenario.CheckpointPolicy{
			Kind: scenario.CheckpointPeriodic, Interval: 5,
			Survival: scenario.SurviveReplicated,
		}, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(t, "MM", matrix)
			cfg.Checkpoint = tc.policy
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.Begin(nil)
			tk := fixedTask(0, 0, 0, 10_000, 30)
			if err := sim.Admit(tk); err != nil {
				t.Fatal(err)
			}
			if tk.State != task.StateRunning {
				t.Fatalf("task not running after admission: %v", tk.State)
			}
			out := sim.FailDC(12, false, nil)
			if len(out) != 1 {
				t.Fatalf("FailDC drained %d tasks, want 1", len(out))
			}
			if out[0].Consumed != tc.want {
				t.Fatalf("failover credit %d, want %d", out[0].Consumed, tc.want)
			}
		})
	}
}

// TestGoldenTraceCheckpointChurnPAM pins the checkpointed-churn decision
// stream — restore arithmetic, overhead-shifted completions, restored-task
// re-mapping — byte for byte, alongside the other golden traces.
func TestGoldenTraceCheckpointChurnPAM(t *testing.T) {
	sc := goldenChurn().WithCheckpoint(scenario.CheckpointPolicy{
		Kind: scenario.CheckpointPeriodic, Interval: 4, Overhead: 1,
	})
	checkGolden(t, "golden_ckpt_churn_PAM.csv", goldenTrace(t, "PAM", sc))
}

// TestGoldenTraceCheckpointChurnMM is the baseline-heuristic counterpart
// (no pruner in the loop, so restores re-map through the scalar path).
func TestGoldenTraceCheckpointChurnMM(t *testing.T) {
	sc := goldenChurn().WithCheckpoint(scenario.CheckpointPolicy{
		Kind: scenario.CheckpointPeriodic, Interval: 4, Overhead: 1,
	})
	checkGolden(t, "golden_ckpt_churn_MM.csv", goldenTrace(t, "MM", sc))
}
