package metrics

import (
	"math"
	"testing"

	"taskprune/internal/task"
)

// mkExit builds a finished task for Collect tests.
func mkExit(id int, typ task.Type, state task.State, finish int64) *task.Task {
	t := task.New(id, typ, 0, 1000)
	t.State = state
	t.Finish = finish
	return t
}

func TestCollectBasics(t *testing.T) {
	finished := []*task.Task{
		mkExit(0, 0, task.StateCompleted, 10),
		mkExit(1, 0, task.StateMissed, 20),
		mkExit(2, 1, task.StateCompleted, 30),
		mkExit(3, 1, task.StateDropped, 40),
	}
	st := Collect(finished, 2, 0, 12.0)
	if st.Total != 4 || st.Window != 4 {
		t.Fatalf("Total/Window = %d/%d, want 4/4", st.Total, st.Window)
	}
	if st.Completed != 2 || st.Missed != 1 || st.Dropped != 1 {
		t.Errorf("counts = %d/%d/%d", st.Completed, st.Missed, st.Dropped)
	}
	if st.RobustnessPct != 50 {
		t.Errorf("RobustnessPct = %v, want 50", st.RobustnessPct)
	}
	if st.PerTypePct[0] != 50 || st.PerTypePct[1] != 50 {
		t.Errorf("PerTypePct = %v", st.PerTypePct)
	}
	if st.TypeVariancePct != 0 {
		t.Errorf("variance = %v, want 0 (both types at 50%%)", st.TypeVariancePct)
	}
	if st.TotalCost != 12 {
		t.Errorf("TotalCost = %v", st.TotalCost)
	}
	if math.Abs(st.CostPerPct-12.0/50*1000) > 1e-9 {
		t.Errorf("CostPerPct = %v m$, want %v", st.CostPerPct, 12.0/50*1000)
	}
}

func TestCollectTrimsByExitOrder(t *testing.T) {
	// 10 tasks; trim 2 from each end of *exit* order. Finish times are
	// deliberately shuffled relative to IDs.
	var finished []*task.Task
	for i := 0; i < 10; i++ {
		st := task.StateCompleted
		if i < 2 || i >= 8 { // earliest and latest exits fail
			st = task.StateDropped
		}
		finished = append(finished, mkExit(i, 0, st, int64(100*i)))
	}
	// Shuffle the slice to prove Collect sorts by Finish.
	finished[0], finished[5] = finished[5], finished[0]
	st := Collect(finished, 1, 2, 0)
	if st.Window != 6 {
		t.Fatalf("Window = %d, want 6", st.Window)
	}
	if st.Completed != 6 {
		t.Errorf("Completed = %d, want 6 (all failures trimmed)", st.Completed)
	}
	if st.RobustnessPct != 100 {
		t.Errorf("RobustnessPct = %v, want 100", st.RobustnessPct)
	}
}

func TestCollectSmallTrialShrinksTrim(t *testing.T) {
	finished := []*task.Task{
		mkExit(0, 0, task.StateCompleted, 1),
		mkExit(1, 0, task.StateCompleted, 2),
		mkExit(2, 0, task.StateDropped, 3),
	}
	st := Collect(finished, 1, 100, 0)
	if st.Window == 0 {
		t.Fatal("full trim left no window")
	}
}

func TestCollectVarianceAcrossTypes(t *testing.T) {
	var finished []*task.Task
	// Type 0: 4/4 complete; type 1: 0/4 complete.
	for i := 0; i < 4; i++ {
		finished = append(finished, mkExit(i, 0, task.StateCompleted, int64(i)))
		finished = append(finished, mkExit(4+i, 1, task.StateDropped, int64(10+i)))
	}
	st := Collect(finished, 2, 0, 0)
	// Per-type percentages 100 and 0: population variance 2500.
	if math.Abs(st.TypeVariancePct-2500) > 1e-9 {
		t.Errorf("TypeVariancePct = %v, want 2500", st.TypeVariancePct)
	}
}

func TestCollectIgnoresAbsentTypes(t *testing.T) {
	finished := []*task.Task{mkExit(0, 0, task.StateCompleted, 1)}
	st := Collect(finished, 5, 0, 0)
	// Types 1..4 have no tasks in the window; the variance must consider
	// only type 0 (variance of a single value = 0), not treat absents as 0%.
	if st.TypeVariancePct != 0 {
		t.Errorf("variance = %v, want 0", st.TypeVariancePct)
	}
}

func TestCollectPanicsOnUnfinished(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unfinished task accepted")
		}
	}()
	Collect([]*task.Task{task.New(0, 0, 0, 10)}, 1, 0, 0)
}

func TestCollectZeroRobustnessCost(t *testing.T) {
	finished := []*task.Task{mkExit(0, 0, task.StateDropped, 1)}
	st := Collect(finished, 1, 0, 100)
	if st.CostPerPct != 0 {
		t.Errorf("CostPerPct with zero robustness = %v, want 0 sentinel", st.CostPerPct)
	}
}

func TestAggregateAndExtractors(t *testing.T) {
	trials := []TrialStats{
		{RobustnessPct: 40, TypeVariancePct: 4, CostPerPct: 2},
		{RobustnessPct: 60, TypeVariancePct: 6, CostPerPct: 4},
	}
	if got := RobustnessValues(trials); got[0] != 40 || got[1] != 60 {
		t.Errorf("RobustnessValues = %v", got)
	}
	if got := VarianceValues(trials); got[0] != 4 || got[1] != 6 {
		t.Errorf("VarianceValues = %v", got)
	}
	if got := CostValues(trials); got[0] != 2 || got[1] != 4 {
		t.Errorf("CostValues = %v", got)
	}
	s := Aggregate([]float64{40, 60})
	if s.CI.Mean != 50 {
		t.Errorf("aggregate mean = %v, want 50", s.CI.Mean)
	}
	if s.CI.HalfSpan <= 0 {
		t.Errorf("aggregate half-span = %v, want > 0", s.CI.HalfSpan)
	}
}

func TestCollectCountsDefers(t *testing.T) {
	a := mkExit(0, 0, task.StateCompleted, 1)
	a.Defers = 3
	b := mkExit(1, 0, task.StateDropped, 2)
	b.Defers = 2
	st := Collect([]*task.Task{a, b}, 1, 0, 0)
	if st.TotalDefers != 5 {
		t.Errorf("TotalDefers = %d, want 5", st.TotalDefers)
	}
}
