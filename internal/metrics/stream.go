package metrics

import (
	"fmt"
	"sort"
	"sync"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// exitRec is the fixed-size record a streaming trial keeps per candidate
// trim task: everything Collect reads from a *task.Task, copied out so the
// task struct itself can return to the workload pool the moment it exits.
type exitRec struct {
	finish int64
	id     int
	typ    task.Type
	state  task.State
	defers int
}

// before orders exit records the way trimWindow sorts tasks: by finish
// tick, ties by ID. Distinct tasks have distinct IDs, so this is a strict
// total order and the bounded heaps below select exactly the tasks the
// sort-based trim would.
func (a exitRec) before(b exitRec) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.id < b.id
}

// boundedHeap keeps the k extreme records of a stream: with max=true it is
// a max-heap holding the k smallest (its root is the largest of them), with
// max=false a min-heap holding the k largest.
type boundedHeap struct {
	recs []exitRec
	k    int
	max  bool
}

func (h *boundedHeap) higher(a, b exitRec) bool {
	if h.max {
		return b.before(a)
	}
	return a.before(b)
}

func (h *boundedHeap) add(r exitRec) {
	if h.k == 0 {
		return
	}
	if len(h.recs) < h.k {
		h.recs = append(h.recs, r)
		i := len(h.recs) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !h.higher(h.recs[i], h.recs[p]) {
				break
			}
			h.recs[i], h.recs[p] = h.recs[p], h.recs[i]
			i = p
		}
		return
	}
	// Full: r belongs inside the kept extreme set iff it ranks below the
	// root (the heap's least extreme member), which it then evicts.
	if !h.higher(h.recs[0], r) {
		return
	}
	h.recs[0] = r
	i := 0
	for {
		l, m := 2*i+1, i
		if l < len(h.recs) && h.higher(h.recs[l], h.recs[m]) {
			m = l
		}
		if r := l + 1; r < len(h.recs) && h.higher(h.recs[r], h.recs[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.recs[i], h.recs[m] = h.recs[m], h.recs[i]
		i = m
	}
}

// Stream accumulates TrialStats incrementally from task exits, so a trial
// never needs the full finished-task set: memory is O(trim + nTypes)
// regardless of how many tasks flow through. Finalize returns exactly what
// Collect would have returned for the same exit sequence — the steady-state
// trim (first and last trim exits in (finish, ID) order, with Collect's
// small-trial clamping) is reproduced by keeping the trim smallest and trim
// largest exit records in two bounded heaps and subtracting them from
// whole-stream counters.
type Stream struct {
	nTypes int
	trim   int
	total  int

	// Whole-stream tallies (window = these minus the trimmed records).
	perType          []int
	perTypeCompleted []int
	completed        int
	missed           int
	dropped          int
	approx           int
	defers           int

	head boundedHeap // trim smallest exits
	tail boundedHeap // trim largest exits

	// mu, when set via Share, serializes Observe so several goroutines can
	// feed one stream. Everything Observe folds in is order-invariant —
	// integer tallies plus two bounded extreme-record heaps whose kept sets
	// depend only on the strict (finish, ID) total order — so Finalize
	// returns the same TrialStats for any interleaving of the same exits.
	mu *sync.Mutex
}

// NewStream returns a streaming collector for nTypes task types and the
// given steady-state trim count.
func NewStream(nTypes, trim int) *Stream {
	if trim < 0 {
		trim = 0
	}
	return &Stream{
		nTypes:           nTypes,
		trim:             trim,
		perType:          make([]int, nTypes),
		perTypeCompleted: make([]int, nTypes),
		head:             boundedHeap{k: trim, max: true},
		tail:             boundedHeap{k: trim, max: false},
	}
}

// Share arms the stream for concurrent observation: after Share, Observe
// may be called from several goroutines (the parallel cluster engine's
// per-DC workers all exit into one cluster aggregate). The final statistics
// are interleaving-independent — see the mu field note. Total and Finalize
// stay single-goroutine: call them only after every observer has quiesced.
func (s *Stream) Share() *Stream {
	if s.mu == nil {
		s.mu = new(sync.Mutex)
	}
	return s
}

// Observe records one task exit. Tasks must be observed in the order they
// leave the system (the same order Collect receives them); the task may be
// recycled immediately after Observe returns. A shared stream (Share) drops
// the ordering requirement: its statistics do not depend on it.
func (s *Stream) Observe(t *task.Task) {
	if s.mu != nil {
		s.mu.Lock()
		s.observe(t)
		s.mu.Unlock()
		return
	}
	s.observe(t)
}

func (s *Stream) observe(t *task.Task) {
	s.total++
	s.perType[t.Type]++
	s.defers += t.Defers
	switch t.State {
	case task.StateCompleted:
		s.completed++
		s.perTypeCompleted[t.Type]++
	case task.StateMissed:
		s.missed++
	case task.StateDropped:
		s.dropped++
	case task.StateApprox:
		s.approx++
	default:
		panic(fmt.Sprintf("metrics: unfinished task in exit stream: %v", t))
	}
	r := exitRec{finish: t.Finish, id: t.ID, typ: t.Type, state: t.State, defers: t.Defers}
	s.head.add(r)
	s.tail.add(r)
}

// Total returns how many exits have been observed.
func (s *Stream) Total() int { return s.total }

// Counts is a point-in-time snapshot of the raw exit tallies — no trim
// window, no derived percentages. The serve daemon's status endpoint reads
// it between submissions; Finalize remains the end-of-trial view.
type Counts struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Missed    int `json:"missed"`
	Dropped   int `json:"dropped"`
	Approx    int `json:"approx"`
}

// Counts returns the current raw exit tallies. Like Total it is a
// single-goroutine read: on a shared stream call it only while observers
// are quiescent.
func (s *Stream) Counts() Counts {
	return Counts{Total: s.total, Completed: s.completed, Missed: s.missed, Dropped: s.dropped, Approx: s.approx}
}

// Finalize computes the TrialStats for everything observed so far.
// totalCost is the machine-time dollar cost of the whole trial.
func (s *Stream) Finalize(totalCost float64) TrialStats {
	st := TrialStats{
		Total:            s.total,
		Completed:        s.completed,
		Missed:           s.missed,
		Dropped:          s.dropped,
		Approx:           s.approx,
		TotalDefers:      s.defers,
		PerTypeWindow:    append([]int(nil), s.perType...),
		PerTypeCompleted: append([]int(nil), s.perTypeCompleted...),
		PerTypePct:       make([]float64, s.nTypes),
		TotalCost:        totalCost,
	}
	// Collect's clamp: shrink the trim until a window survives.
	trim := s.trim
	for s.total <= 2*trim && trim > 0 {
		trim /= 2
	}
	s.exclude(&st, s.head.recs, trim, false)
	s.exclude(&st, s.tail.recs, trim, true)
	st.Window = st.Total - 2*trim
	if st.Window > 0 {
		st.RobustnessPct = 100 * float64(st.Completed) / float64(st.Window)
		st.QualityPct = 100 * (float64(st.Completed) + ApproxQualityWeight*float64(st.Approx)) / float64(st.Window)
	}
	var pcts []float64
	for ti := 0; ti < s.nTypes; ti++ {
		if st.PerTypeWindow[ti] == 0 {
			continue
		}
		p := 100 * float64(st.PerTypeCompleted[ti]) / float64(st.PerTypeWindow[ti])
		st.PerTypePct[ti] = p
		pcts = append(pcts, p)
	}
	st.TypeVariancePct = stats.PopVariance(pcts)
	if st.RobustnessPct > 0 {
		st.CostPerPct = totalCost / st.RobustnessPct * 1000 // millidollars
	}
	return st
}

// exclude removes the n most extreme records of one heap from the window
// counters (fromTail selects the largest n of the tail heap, otherwise the
// smallest n of the head heap).
func (s *Stream) exclude(st *TrialStats, recs []exitRec, n int, fromTail bool) {
	if n == 0 {
		return
	}
	ordered := append([]exitRec(nil), recs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].before(ordered[j]) })
	if fromTail {
		ordered = ordered[len(ordered)-n:]
	} else {
		ordered = ordered[:n]
	}
	for _, r := range ordered {
		st.PerTypeWindow[r.typ]--
		st.TotalDefers -= r.defers
		switch r.state {
		case task.StateCompleted:
			st.Completed--
			st.PerTypeCompleted[r.typ]--
		case task.StateMissed:
			st.Missed--
		case task.StateDropped:
			st.Dropped--
		case task.StateApprox:
			st.Approx--
		}
	}
}
