// Package metrics turns raw trial outcomes into the quantities the paper
// reports: robustness (% of tasks completed on time), per-task-type
// completion percentages and their variance (the fairness metric), and
// cost per robustness point — all computed over the paper's steady-state
// window (first and last 100 task exits trimmed away).
package metrics

import (
	"fmt"
	"sort"

	"taskprune/internal/stats"
	"taskprune/internal/task"
)

// ApproxQualityWeight is the value credited to an approximate completion
// relative to a full one in the quality-weighted robustness metric.
const ApproxQualityWeight = 0.5

// DefaultTrim is the number of earliest and latest task exits excluded
// from analysis (paper Section VI-B: "the first and last hundred (100)
// tasks to complete are removed from the results").
const DefaultTrim = 100

// TrialStats summarizes one simulation trial.
type TrialStats struct {
	Total     int // tasks simulated
	Window    int // tasks analyzed after trimming
	Completed int // on-time completions within the window
	Missed    int // executed but finished late (within window)
	Dropped   int // pruned or expired before completing (within window)
	// Approx counts approximate completions (evicted at the deadline with
	// enough execution received to deliver a degraded result; 0 unless the
	// approximate-computing extension is enabled).
	Approx int

	RobustnessPct float64 // 100 * Completed / Window
	// QualityPct is the extension's quality-weighted robustness:
	// 100 * (Completed + ApproxQualityWeight*Approx) / Window.
	QualityPct float64

	PerTypeWindow    []int     // tasks of each type within the window
	PerTypeCompleted []int     // on-time completions per type
	PerTypePct       []float64 // per-type completion percentage
	TypeVariancePct  float64   // population variance of PerTypePct

	TotalDefers int     // pruner deferrals across window tasks
	TotalCost   float64 // dollars of machine busy time (whole trial)
	// CostPerPct is the paper's Fig. 8 metric: machine-time cost divided
	// by the robustness percentage achieved. An 800-task trial's absolute
	// dollar figure is tiny, so the metric is expressed in millidollars
	// (m$) per robustness point — only relative magnitudes matter to the
	// comparison.
	CostPerPct float64
}

// Collect computes TrialStats from the exit-ordered finished tasks of one
// trial. nTypes sizes the per-type slices; trim tasks are removed from each
// end of the exit order (clamped so a small trial still yields a window).
// totalCost is the machine-time dollar cost of the whole trial.
func Collect(finished []*task.Task, nTypes, trim int, totalCost float64) TrialStats {
	st := TrialStats{
		Total:            len(finished),
		PerTypeWindow:    make([]int, nTypes),
		PerTypeCompleted: make([]int, nTypes),
		PerTypePct:       make([]float64, nTypes),
		TotalCost:        totalCost,
	}
	window := trimWindow(finished, trim)
	st.Window = len(window)
	for _, t := range window {
		st.PerTypeWindow[t.Type]++
		st.TotalDefers += t.Defers
		switch t.State {
		case task.StateCompleted:
			st.Completed++
			st.PerTypeCompleted[t.Type]++
		case task.StateMissed:
			st.Missed++
		case task.StateDropped:
			st.Dropped++
		case task.StateApprox:
			st.Approx++
		default:
			panic(fmt.Sprintf("metrics: unfinished task in exit list: %v", t))
		}
	}
	if st.Window > 0 {
		st.RobustnessPct = 100 * float64(st.Completed) / float64(st.Window)
		st.QualityPct = 100 * (float64(st.Completed) + ApproxQualityWeight*float64(st.Approx)) / float64(st.Window)
	}
	var pcts []float64
	for ti := 0; ti < nTypes; ti++ {
		if st.PerTypeWindow[ti] == 0 {
			continue
		}
		p := 100 * float64(st.PerTypeCompleted[ti]) / float64(st.PerTypeWindow[ti])
		st.PerTypePct[ti] = p
		pcts = append(pcts, p)
	}
	st.TypeVariancePct = stats.PopVariance(pcts)
	if st.RobustnessPct > 0 {
		st.CostPerPct = totalCost / st.RobustnessPct * 1000 // millidollars
	}
	return st
}

// trimWindow sorts tasks by exit tick (stable on ID) and removes trim tasks
// from each end. If the trial is too small for full trimming, the trim is
// shrunk symmetrically so at least one task remains.
func trimWindow(finished []*task.Task, trim int) []*task.Task {
	ordered := append([]*task.Task(nil), finished...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Finish != ordered[j].Finish {
			return ordered[i].Finish < ordered[j].Finish
		}
		return ordered[i].ID < ordered[j].ID
	})
	if trim < 0 {
		trim = 0
	}
	for len(ordered) <= 2*trim && trim > 0 {
		trim /= 2
	}
	if 2*trim >= len(ordered) {
		return ordered
	}
	return ordered[trim : len(ordered)-trim]
}

// Series aggregates one metric across trials into a mean and 95% CI.
type Series struct {
	Values []float64
	CI     stats.CI
}

// Aggregate computes a Series from per-trial values.
func Aggregate(values []float64) Series {
	return Series{Values: values, CI: stats.Confidence95(values)}
}

// RobustnessValues extracts RobustnessPct from each trial.
func RobustnessValues(trials []TrialStats) []float64 {
	out := make([]float64, len(trials))
	for i, t := range trials {
		out[i] = t.RobustnessPct
	}
	return out
}

// VarianceValues extracts TypeVariancePct from each trial.
func VarianceValues(trials []TrialStats) []float64 {
	out := make([]float64, len(trials))
	for i, t := range trials {
		out[i] = t.TypeVariancePct
	}
	return out
}

// CostValues extracts CostPerPct from each trial.
func CostValues(trials []TrialStats) []float64 {
	out := make([]float64, len(trials))
	for i, t := range trials {
		out[i] = t.CostPerPct
	}
	return out
}
