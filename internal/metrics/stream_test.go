package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"taskprune/internal/task"
)

// randomExits builds a synthetic exit sequence with non-decreasing finish
// ticks (the order the simulator emits exits), dense tie groups, and a mix
// of every terminal state.
func randomExits(r *rand.Rand, n, nTypes int) []*task.Task {
	states := []task.State{task.StateCompleted, task.StateMissed, task.StateDropped, task.StateApprox}
	out := make([]*task.Task, n)
	finish := int64(0)
	ids := r.Perm(n) // exit order decoupled from ID order, as in real trials
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			finish += int64(r.Intn(5))
		}
		out[i] = &task.Task{
			ID:     ids[i],
			Type:   task.Type(r.Intn(nTypes)),
			Finish: finish,
			State:  states[r.Intn(len(states))],
			Defers: r.Intn(4),
		}
	}
	return out
}

// TestStreamMatchesCollect: the streaming collector must return exactly
// what Collect computes from the materialized exit list — same trimming,
// same tie-breaks, same clamping on tiny trials — across random exit
// sequences, trial sizes around the trim boundaries, and costs.
func TestStreamMatchesCollect(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	sizes := []int{0, 1, 2, 3, 5, 10, 99, 100, 150, 199, 200, 201, 250, 400, 1000}
	for _, trim := range []int{0, 1, 3, 100} {
		for _, n := range sizes {
			for rep := 0; rep < 3; rep++ {
				exits := randomExits(r, n, 5)
				cost := float64(r.Intn(100)) / 7
				want := Collect(exits, 5, trim, cost)
				s := NewStream(5, trim)
				for _, tk := range exits {
					s.Observe(tk)
				}
				got := s.Finalize(cost)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trim=%d n=%d rep=%d: stream stats diverge from Collect\nwant %+v\ngot  %+v",
						trim, n, rep, want, got)
				}
			}
		}
	}
}

// TestStreamNegativeTrim mirrors Collect's trim<0 clamp.
func TestStreamNegativeTrim(t *testing.T) {
	exits := randomExits(rand.New(rand.NewSource(5)), 30, 3)
	want := Collect(exits, 3, -7, 0)
	s := NewStream(3, -7)
	for _, tk := range exits {
		s.Observe(tk)
	}
	if got := s.Finalize(0); !reflect.DeepEqual(want, got) {
		t.Fatalf("negative trim: want %+v got %+v", want, got)
	}
}

// TestStreamPanicsOnUnfinished mirrors Collect's invariant that only
// terminal-state tasks may appear in the exit stream.
func TestStreamPanicsOnUnfinished(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Observe accepted a pending task")
		}
	}()
	NewStream(1, 0).Observe(&task.Task{State: task.StatePending})
}

// TestStreamTotal: Total tracks observations as they stream in.
func TestStreamTotal(t *testing.T) {
	s := NewStream(2, 10)
	for i := 0; i < 7; i++ {
		s.Observe(&task.Task{ID: i, Finish: int64(i), State: task.StateCompleted})
		if s.Total() != i+1 {
			t.Fatalf("Total = %d after %d observations", s.Total(), i+1)
		}
	}
}

// TestStreamCounts: the raw exit tallies (the daemon's live status
// surface) must track every terminal state exactly, independent of the
// trimmed-window statistics.
func TestStreamCounts(t *testing.T) {
	s := NewStream(2, 10)
	if (s.Counts() != Counts{}) {
		t.Fatalf("fresh stream counts = %+v, want zero", s.Counts())
	}
	exits := []struct {
		state task.State
		want  Counts
	}{
		{task.StateCompleted, Counts{Total: 1, Completed: 1}},
		{task.StateMissed, Counts{Total: 2, Completed: 1, Missed: 1}},
		{task.StateDropped, Counts{Total: 3, Completed: 1, Missed: 1, Dropped: 1}},
		{task.StateApprox, Counts{Total: 4, Completed: 1, Missed: 1, Dropped: 1, Approx: 1}},
		{task.StateCompleted, Counts{Total: 5, Completed: 2, Missed: 1, Dropped: 1, Approx: 1}},
	}
	for i, e := range exits {
		s.Observe(&task.Task{ID: i, Finish: int64(i), State: e.state})
		if got := s.Counts(); got != e.want {
			t.Fatalf("after exit %d (%v): counts = %+v, want %+v", i, e.state, got, e.want)
		}
	}
}
