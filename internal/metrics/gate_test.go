package metrics

import "testing"

// TestEngineExits: the three loss counters — and only those — make up the
// gate-level exits; tasks that bounced, buffered, or retried but still
// reached a datacenter don't count.
func TestEngineExits(t *testing.T) {
	g := GateStats{
		Dropped:        3,
		Shed:           5,
		LostUndetected: 7,
		// Non-exit activity must not leak into the sum.
		Retries:           11,
		Bounced:           13,
		Buffered:          17,
		MaxQueueDepth:     19,
		Detections:        2,
		DetectionLagTicks: 50,
	}
	if got := g.EngineExits(); got != 15 {
		t.Fatalf("EngineExits = %d, want 3+5+7", got)
	}
	if (GateStats{}).EngineExits() != 0 {
		t.Fatal("zero stats should have zero exits")
	}
}
